// Package repro is a from-scratch Go reproduction of "Understanding
// Scheduling Replay Schemes" (Ilhyun Kim and Mikko H. Lipasti, HPCA
// 2004): a cycle-level out-of-order superscalar simulator with
// speculative scheduling and the paper's full design space of
// scheduling replay schemes, including its contribution, token-based
// selective replay.
//
// This package is the public facade. A minimal run:
//
//	res, err := repro.Run(repro.Options{
//		Benchmark: "gcc",
//		Scheme:    repro.TkSel,
//	})
//	fmt.Printf("IPC %.3f, miss rate %.2f%%\n", res.IPC, 100*res.LoadMissRate)
//
// The full paper reproduction lives in cmd/paper; per-experiment
// benchmarks in bench_test.go regenerate each table and figure.
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/smpred"
	"repro/internal/workload"
)

// Scheme selects a scheduling replay scheme. See the paper's §3–§4.
type Scheme = core.Scheme

// The available replay schemes.
const (
	// PosSel is position-based selective replay (§3.4.3), the ideal
	// baseline.
	PosSel = core.PosSel
	// IDSel is ID-based selective replay (§3.4.1).
	IDSel = core.IDSel
	// NonSel is non-selective (squashing) replay (§3.3).
	NonSel = core.NonSel
	// DSel is delayed selective replay (§3.4.2).
	DSel = core.DSel
	// TkSel is token-based selective replay (§4.2), the paper's
	// contribution.
	TkSel = core.TkSel
	// ReInsert recovers every miss by re-inserting from the ROB.
	ReInsert = core.ReInsert
	// Refetch treats scheduling misses like branch mispredictions
	// (§3.2).
	Refetch = core.Refetch
	// Conservative schedules predicted-miss loads pessimistically
	// (§5.4).
	Conservative = core.Conservative
	// SerialVerify propagates verification serially (§2.1, Figure 2a).
	SerialVerify = core.SerialVerify
)

// Schemes returns every implemented replay scheme.
func Schemes() []Scheme { return core.Schemes() }

// ParseScheme resolves a replay scheme by its registered name,
// case-insensitively; unknown names return an error listing every
// valid one.
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// SchemeNames returns every registered scheme name in the paper's
// presentation order.
func SchemeNames() []string { return core.SchemeNames() }

// Benchmarks returns the modeled SPEC CINT2000 benchmark names in the
// paper's table order.
func Benchmarks() []string {
	out := make([]string, len(workload.Benchmarks))
	copy(out, workload.Benchmarks)
	return out
}

// Options selects one simulation.
type Options struct {
	// Benchmark names one of Benchmarks(). Required unless Workload is
	// set.
	Benchmark string
	// Workload overrides Benchmark with a custom workload model.
	Workload *Workload
	// Wide8 selects the 8-wide Table 3 machine (default: 4-wide).
	Wide8 bool
	// Scheme is the replay scheme (default PosSel).
	Scheme Scheme
	// Insts is the measured instruction count (default 200k).
	Insts int64
	// Warmup is the unmeasured warmup instruction count (default 60k).
	Warmup int64
	// Seed drives the deterministic workload generator (default 1).
	Seed int64
	// Tokens overrides the token pool size for TkSel (default: the
	// Table 3 value for the selected width).
	Tokens int
	// ValuePrediction enables load value prediction, the
	// data-speculation technique the paper's §3.5 argues selective
	// replay must support. Valid with IDSel, TkSel, ReInsert and
	// Refetch only — the timing-based schemes cannot recover it.
	ValuePrediction bool
	// ReplayQueue selects the Figure 4b replay-queue model instead of
	// the default issue-queue-based model (PosSel/IDSel/NonSel/DSel).
	ReplayQueue bool
}

// Workload is a custom synthetic benchmark model. Zero-valued fields
// are invalid; start from a preset via BenchmarkWorkload and adjust.
type Workload struct {
	// Name labels the workload in output.
	Name string
	// LoadFrac/StoreFrac/BranchFrac set the instruction mix.
	LoadFrac, StoreFrac, BranchFrac float64
	// DepMean controls instruction-level parallelism: the mean distance
	// to the producing instruction (small = long serial chains).
	DepMean float64
	// ColdFrac/WarmFrac set references that miss to memory / hit the
	// L2; the remainder stays cache-resident.
	ColdFrac, WarmFrac float64
	// MissyBias concentrates misses on few static loads (what makes
	// them predictable).
	MissyBias float64
	// AliasFrac sets the store-to-load aliasing rate.
	AliasFrac float64
	// BranchRandFrac sets the fraction of data-dependent (hard to
	// predict) branch sites.
	BranchRandFrac float64
	// StaticInsts is the static code footprint.
	StaticInsts int
}

// BenchmarkWorkload returns an editable copy of a calibrated
// benchmark's workload model.
func BenchmarkWorkload(name string) (Workload, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name: p.Name, LoadFrac: p.LoadFrac, StoreFrac: p.StoreFrac,
		BranchFrac: p.BranchFrac, DepMean: p.DepMean,
		ColdFrac: p.ColdFrac, WarmFrac: p.WarmFrac,
		MissyBias: p.MissyBias, AliasFrac: p.AliasFrac,
		BranchRandFrac: p.BranchRandFrac, StaticInsts: p.StaticInsts,
	}, nil
}

// Result summarizes one simulation.
type Result struct {
	// IPC is retired instructions per cycle.
	IPC float64
	// LoadMissRate is load scheduling misses per load issue (Table 5).
	LoadMissRate float64
	// ReplayRate is replayed issues per total issue (Table 5).
	ReplayRate float64
	// TokenCoverage is the fraction of misses recovered with a token
	// (TkSel only; Table 6).
	TokenCoverage float64
	// BranchMispredictRate is mispredictions per branch.
	BranchMispredictRate float64
	// Stats exposes every raw counter.
	Stats *core.Stats
	// PredictorCoverage[t] is the scheduling-miss predictor's coverage
	// at confidence threshold t (Figure 9a).
	PredictorCoverage [4]float64
	// PredictedFraction[t] is the fraction of loads predicted to miss
	// at threshold t (Figure 9b).
	PredictedFraction [4]float64
	// ValueAccuracy is correct value predictions per consumed
	// prediction (value prediction runs only).
	ValueAccuracy float64
}

// Run simulates one configuration and returns its results.
func Run(opts Options) (*Result, error) {
	prof, err := resolveWorkload(opts)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(prof, seedOr(opts.Seed))
	if err != nil {
		return nil, err
	}
	cfg := core.Config4Wide()
	if opts.Wide8 {
		cfg = core.Config8Wide()
	}
	cfg.Scheme = opts.Scheme
	if opts.Insts > 0 {
		cfg.MaxInsts = opts.Insts
	}
	if opts.Warmup > 0 {
		cfg.Warmup = opts.Warmup
	} else {
		cfg.Warmup = 60_000
	}
	if opts.Tokens > 0 {
		cfg.Tokens = opts.Tokens
	}
	cfg.ValuePrediction = opts.ValuePrediction
	cfg.ReplayQueue = opts.ReplayQueue
	m, err := core.New(cfg, gen)
	if err != nil {
		return nil, err
	}
	st, err := m.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{
		IPC:           st.IPC(),
		LoadMissRate:  st.LoadMissRate(),
		ReplayRate:    st.ReplayRate(),
		TokenCoverage: st.TokenCoverage(),
		Stats:         st,
	}
	if st.BranchLookups > 0 {
		res.BranchMispredictRate = float64(st.BranchMispredicts) / float64(st.BranchLookups)
	}
	meter := m.Meter()
	for t := 0; t < 4; t++ {
		res.PredictorCoverage[t] = meter.Coverage(smpred.Confidence(t))
		res.PredictedFraction[t] = meter.PredictedFraction(smpred.Confidence(t))
	}
	if vp := m.ValuePredictor(); vp != nil {
		res.ValueAccuracy = vp.Accuracy()
	}
	return res, nil
}

// Comparison holds one benchmark's results across schemes, normalized
// to the first scheme.
type Comparison struct {
	Schemes []Scheme
	Results []*Result
	// RelativeIPC[i] = Results[i].IPC / Results[0].IPC.
	RelativeIPC []float64
	// RelativeIssues[i] mirrors Figure 12's normalized issue counts.
	RelativeIssues []float64
}

// CompareSchemes runs the same workload under several schemes; the
// first scheme is the normalization baseline (use PosSel to mirror the
// paper's figures).
func CompareSchemes(opts Options, schemes ...Scheme) (*Comparison, error) {
	if len(schemes) == 0 {
		return nil, fmt.Errorf("repro: no schemes given")
	}
	c := &Comparison{Schemes: schemes}
	for _, s := range schemes {
		o := opts
		o.Scheme = s
		r, err := Run(o)
		if err != nil {
			return nil, err
		}
		c.Results = append(c.Results, r)
	}
	base := c.Results[0]
	for _, r := range c.Results {
		c.RelativeIPC = append(c.RelativeIPC, r.IPC/base.IPC)
		c.RelativeIssues = append(c.RelativeIssues,
			float64(r.Stats.TotalIssues)/float64(base.Stats.TotalIssues))
	}
	return c, nil
}

func resolveWorkload(opts Options) (workload.Profile, error) {
	if opts.Workload != nil {
		w := opts.Workload
		base := workload.Profile{
			Name: w.Name, LoadFrac: w.LoadFrac, StoreFrac: w.StoreFrac,
			BranchFrac: w.BranchFrac, DepMean: w.DepMean,
			TwoSrcFrac: 0.45,
			ColdFrac:   w.ColdFrac, WarmFrac: w.WarmFrac,
			HotLines: 320, WarmLines: 2800,
			MissyPCFrac: 0.10, MissyBias: w.MissyBias,
			AliasFrac: w.AliasFrac, BranchRandFrac: w.BranchRandFrac,
			AddrReadyFrac: 0.5, StaticInsts: w.StaticInsts,
		}
		return base, base.Validate()
	}
	if opts.Benchmark == "" {
		return workload.Profile{}, fmt.Errorf("repro: Options needs Benchmark or Workload")
	}
	return workload.ByName(opts.Benchmark)
}

func seedOr(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}
