// Quickstart: simulate one benchmark on the paper's 4-wide machine
// under token-based selective replay and print the headline numbers.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	res, err := repro.Run(repro.Options{
		Benchmark: "gcc",
		Scheme:    repro.TkSel,
		Insts:     100_000,
		Warmup:    60_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("gcc on the 4-wide machine with token-based selective replay")
	fmt.Printf("  IPC:                   %.3f\n", res.IPC)
	fmt.Printf("  load scheduling miss:  %.2f%% of load issues\n", 100*res.LoadMissRate)
	fmt.Printf("  issue bandwidth spent replaying: %.2f%%\n", 100*res.ReplayRate)
	fmt.Printf("  misses recovered with a token:   %.1f%%\n", 100*res.TokenCoverage)
	fmt.Printf("  branch mispredict rate: %.2f%%\n", 100*res.BranchMispredictRate)
}
