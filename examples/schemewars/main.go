// Schemewars compares every scheduling replay scheme on one benchmark,
// reproducing the shape of the paper's Figure 13 for a single workload:
// position-based (ideal) on top, squashing replay losing ground as the
// machine widens, token-based riding within a couple percent of ideal.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	bench := flag.String("bench", "twolf", "benchmark to compare on")
	flag.Parse()

	for _, wide8 := range []bool{false, true} {
		width := "4-wide"
		if wide8 {
			width = "8-wide"
		}
		cmp, err := repro.CompareSchemes(repro.Options{
			Benchmark: *bench,
			Wide8:     wide8,
			Insts:     100_000,
			Warmup:    60_000,
		},
			repro.PosSel, repro.NonSel, repro.DSel, repro.TkSel,
			repro.ReInsert, repro.Refetch, repro.Conservative)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s on the %s machine (normalized to PosSel):\n", *bench, width)
		fmt.Printf("  %-14s %8s %10s %12s\n", "scheme", "IPC", "rel. IPC", "rel. issues")
		for i, s := range cmp.Schemes {
			fmt.Printf("  %-14v %8.3f %10.3f %12.3f\n",
				s, cmp.Results[i].IPC, cmp.RelativeIPC[i], cmp.RelativeIssues[i])
		}
		fmt.Println()
	}
}
