// Predictor explores the scheduling-miss predictor standalone (the
// paper's §4.1 / Figure 9): how much of the miss traffic a tagged
// 4k-entry 2-bit table captures per benchmark, and the coverage/
// accuracy trade-off as the confidence threshold rises.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("scheduling-miss predictor on the 8-wide machine")
	fmt.Printf("%-8s %9s | %s\n", "bench", "miss%", "coverage@1..3   predicted-fraction@1..3")
	for _, bench := range repro.Benchmarks() {
		res, err := repro.Run(repro.Options{
			Benchmark: bench,
			Wide8:     true,
			Scheme:    repro.PosSel,
			Insts:     80_000,
			Warmup:    40_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.2f%% | %.2f %.2f %.2f    %.3f %.3f %.3f\n",
			bench, 100*res.LoadMissRate,
			res.PredictorCoverage[1], res.PredictorCoverage[2], res.PredictorCoverage[3],
			res.PredictedFraction[1], res.PredictedFraction[2], res.PredictedFraction[3])
	}
	fmt.Println("\nThe paper's observation holds when a benchmark concentrates its")
	fmt.Println("misses on few loads: high coverage at a tiny predicted fraction")
	fmt.Println("(perl); mcf predicts much of its load stream and still misses more.")
}
