// Valuespec demonstrates the paper's §3.5 argument in action: load
// value prediction — a data-speculation technique that violates data
// dependences inside the scheduler — composes with token-based
// selective replay (and re-insert) because they track dependences in
// rename order, while the timing-based schemes are structurally unable
// to recover it (the library rejects those combinations).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("load value prediction over the SPEC-like suite, 8-wide, TkSel")
	fmt.Printf("%-8s %12s %12s %9s %10s %9s\n",
		"bench", "IPC base", "IPC +VP", "gain", "VP acc.", "kills")

	for _, bench := range repro.Benchmarks() {
		base, err := repro.Run(repro.Options{
			Benchmark: bench, Wide8: true, Scheme: repro.TkSel,
			Insts: 60_000, Warmup: 40_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		vp, err := repro.Run(repro.Options{
			Benchmark: bench, Wide8: true, Scheme: repro.TkSel,
			ValuePrediction: true, Insts: 60_000, Warmup: 40_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %12.3f %+8.1f%% %9.2f %9d\n",
			bench, base.IPC, vp.IPC, 100*(vp.IPC/base.IPC-1),
			vp.ValueAccuracy, vp.Stats.ValueKilledInsts)
	}

	// The rejection the paper predicts: squashing replay relies on
	// issue-order timing and cannot verify value speculation.
	_, err := repro.Run(repro.Options{
		Benchmark: "gcc", Scheme: repro.NonSel, ValuePrediction: true,
	})
	fmt.Printf("\nNonSel + value prediction -> %v\n", err)
}
