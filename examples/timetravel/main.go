// Timetravel: walk a committed pipeline-event recording (.evs) without
// running the simulator at all — the stream *is* the run.
//
// The artifact next to this file was recorded once with
//
//	go run ./cmd/pipeview -bench mcf -scheme NonSel -skip 800 -rows 32 \
//	    -record examples/timetravel/mcf-nonsel.evs
//
// and replays bit-identically forever after: mcf on the paper's 4-wide
// machine under non-selective (squashing) replay, every fetch,
// dispatch, issue, execute, complete, squash, replay and retire event,
// cycle-stamped, at ~2.6 bytes each. This program decodes it, finds
// the busiest squash burst, and re-renders a window around it — the
// same time travel `pipeview -replay -seek` does interactively.
package main

import (
	"bytes"
	_ "embed"
	"fmt"
	"io"
	"log"

	"repro/internal/core"
	"repro/internal/evstream"
)

//go:embed mcf-nonsel.evs
var recording []byte

func main() {
	// Pass 1: stream statistics and the squash-heaviest cycle. A linear
	// decode of the whole file — this is the expensive path, and it is
	// ~30 KB.
	d, err := evstream.NewReader(bytes.NewReader(recording))
	if err != nil {
		log.Fatal(err)
	}
	hdr := d.Header()

	var (
		total              int64
		firstCycle         int64 = -1
		lastCycle, burstAt int64
		burst, burstBest   int64
		burstCycle         int64 = -1
		perKind            [8]int64
	)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if rec.Kind != evstream.RecEvent {
			continue
		}
		ev := rec.Event
		if firstCycle < 0 {
			firstCycle = ev.Cycle
		}
		lastCycle = ev.Cycle
		total++
		perKind[ev.Kind]++
		if ev.Kind == core.EvSquash {
			if ev.Cycle != burstAt {
				burstAt, burst = ev.Cycle, 0
			}
			burst++
			if burst > burstBest {
				burstBest, burstCycle = burst, ev.Cycle
			}
		}
	}

	fmt.Printf("%s (seed %d): %d events over cycles %d..%d, %.2f B/event\n",
		hdr.Spec, hdr.Seed, total, firstCycle, lastCycle,
		float64(len(recording))/float64(total))
	for k := core.PipeEventKind(0); k < 8; k++ {
		if perKind[k] > 0 {
			fmt.Printf("  %-8v %6d\n", k, perKind[k])
		}
	}
	fmt.Printf("busiest squash burst: %d squashes in cycle %d\n\n", burstBest, burstCycle)

	// Pass 2: time-travel straight to that burst. SeekCycle decodes
	// forward to the first event at or past the target; a fresh reader
	// is all the state a seek needs.
	d2, err := evstream.NewReader(bytes.NewReader(recording))
	if err != nil {
		log.Fatal(err)
	}
	ev, err := d2.SeekCycle(burstCycle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events from cycle %d (the replay scheme squashing the load's shadow):\n", burstCycle)
	for n := 0; n < 16; n++ {
		fmt.Printf("  cycle %6d  %-8v seq %5d\n", ev.Cycle, ev.Kind, ev.Seq)
		rec, err := d2.Next()
		if err != nil || rec.Kind != evstream.RecEvent {
			break
		}
		ev = rec.Event
	}
	fmt.Printf("\nthe same window, rendered as a timeline:\n")
	fmt.Printf("  go run ./cmd/pipeview -replay examples/timetravel/mcf-nonsel.evs -seek %d\n", burstCycle)
}
