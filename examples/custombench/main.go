// Custombench models a workload that is not in the SPEC suite — a
// pointer-chasing, cache-hostile key-value-store-like kernel — and asks
// the question the paper's §5.5 raises: with misses this frequent, how
// much of the ideal scheme's performance does token-based replay keep,
// and how many tokens does that take?
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Start from mcf (the most memory-bound preset) and push it harder:
	// more loads, hotter pointer chains, a bigger miss fraction.
	w, err := repro.BenchmarkWorkload("mcf")
	if err != nil {
		log.Fatal(err)
	}
	w.Name = "kvstore"
	w.LoadFrac = 0.34
	w.ColdFrac = 0.20
	w.WarmFrac = 0.16
	w.DepMean = 2.6
	w.MissyBias = 0.85

	fmt.Println("synthetic kv-store kernel, 8-wide machine")

	base, err := repro.Run(repro.Options{Workload: &w, Wide8: true,
		Scheme: repro.PosSel, Insts: 80_000, Warmup: 40_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PosSel (ideal): IPC %.3f, miss rate %.1f%%\n",
		base.IPC, 100*base.LoadMissRate)

	for _, tokens := range []int{8, 16, 32, 64} {
		res, err := repro.Run(repro.Options{Workload: &w, Wide8: true,
			Scheme: repro.TkSel, Tokens: tokens, Insts: 80_000, Warmup: 40_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  TkSel %2d tokens: IPC %.3f (%.1f%% of ideal), coverage %.1f%%\n",
			tokens, res.IPC, 100*res.IPC/base.IPC, 100*res.TokenCoverage)
	}
}
