package repro

import "testing"

func TestRunBasic(t *testing.T) {
	res, err := Run(Options{Benchmark: "gap", Insts: 20_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0.5 || res.IPC > 4 {
		t.Fatalf("implausible IPC %.3f", res.IPC)
	}
	// Retire batching can shift the measured window by up to Width.
	if res.Stats == nil || res.Stats.Retired < 20_000-8 {
		t.Fatal("stats missing or truncated")
	}
	if res.PredictorCoverage[0] != 1.0 {
		t.Errorf("coverage at threshold 0 must be 1, got %v", res.PredictorCoverage[0])
	}
}

func TestRunRejectsJunk(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := Run(Options{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	w := Workload{Name: "bad", DepMean: 0}
	if _, err := Run(Options{Workload: &w}); err == nil {
		t.Fatal("invalid custom workload accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 12 || b[0] != "bzip" || b[6] != "mcf" {
		t.Fatalf("unexpected benchmark list %v", b)
	}
	// The returned slice must be a copy.
	b[0] = "clobbered"
	if Benchmarks()[0] != "bzip" {
		t.Fatal("Benchmarks() exposes internal state")
	}
}

func TestBenchmarkWorkloadRoundTrip(t *testing.T) {
	w, err := BenchmarkWorkload("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "mcf" || w.ColdFrac < 0.1 {
		t.Fatalf("mcf workload looks wrong: %+v", w)
	}
	// A custom run from the preset must work.
	w.ColdFrac = 0.05
	w.WarmFrac = 0.05
	res, err := Run(Options{Workload: &w, Insts: 10_000, Warmup: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("zero IPC")
	}
}

func TestCompareSchemes(t *testing.T) {
	c, err := CompareSchemes(Options{Benchmark: "gzip", Insts: 20_000, Warmup: 10_000},
		PosSel, NonSel, TkSel)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 3 || c.RelativeIPC[0] != 1.0 || c.RelativeIssues[0] != 1.0 {
		t.Fatalf("baseline not normalized: %+v", c.RelativeIPC)
	}
	// NonSel replays independents: at least as many issues as PosSel.
	if c.RelativeIssues[1] < 1.0 {
		t.Errorf("NonSel normalized issues %.3f < 1", c.RelativeIssues[1])
	}
	if _, err := CompareSchemes(Options{Benchmark: "gzip"}); err == nil {
		t.Fatal("empty scheme list accepted")
	}
}

func TestTokensOverride(t *testing.T) {
	run := func(tokens int) float64 {
		res, err := Run(Options{Benchmark: "mcf", Scheme: TkSel, Insts: 20_000,
			Warmup: 10_000, Tokens: tokens})
		if err != nil {
			t.Fatal(err)
		}
		return res.TokenCoverage
	}
	small, big := run(2), run(48)
	if big <= small {
		t.Errorf("coverage with 48 tokens (%.3f) should exceed 2 tokens (%.3f)", big, small)
	}
}

func TestValuePredictionOption(t *testing.T) {
	base, err := Run(Options{Benchmark: "perl", Scheme: TkSel, Insts: 20_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := Run(Options{Benchmark: "perl", Scheme: TkSel, ValuePrediction: true,
		Insts: 20_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if vp.Stats.ValuePredictions == 0 {
		t.Fatal("no value predictions consumed")
	}
	if vp.ValueAccuracy < 0.6 {
		t.Errorf("value accuracy %.2f too low for a confidence-gated predictor", vp.ValueAccuracy)
	}
	if vp.IPC < base.IPC*0.95 {
		t.Errorf("value prediction dropped IPC from %.3f to %.3f", base.IPC, vp.IPC)
	}
	// Timing-based schemes must reject it, as §3.5 argues.
	if _, err := Run(Options{Benchmark: "perl", Scheme: NonSel, ValuePrediction: true}); err == nil {
		t.Fatal("NonSel accepted value prediction")
	}
}

func TestReplayQueueOption(t *testing.T) {
	res, err := Run(Options{Benchmark: "twolf", Scheme: PosSel, ReplayQueue: true,
		Insts: 20_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RQReplays == 0 {
		t.Error("replay-queue model recorded no blind replays on twolf")
	}
	if _, err := Run(Options{Benchmark: "twolf", Scheme: TkSel, ReplayQueue: true}); err == nil {
		t.Fatal("TkSel accepted the replay-queue model")
	}
}
