package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablations over the design choices DESIGN.md calls out. Each bench
// regenerates its artifact end-to-end and reports the headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// is the full reproduction. The simulated instruction budget per run is
// kept moderate so the suite finishes in minutes; cmd/paper accepts
// -insts for longer runs.

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Insts: 60_000, Warmup: 40_000, Seed: 1}
}

// BenchmarkTable1 regenerates the dependence-tracking bound (Table 1)
// from the reconstructed graph model.
func BenchmarkTable1(b *testing.B) {
	match := 0
	for i := 0; i < b.N; i++ {
		t := experiments.RunTable1()
		match = 0
		for di := range t.Distances {
			for pi := range t.Ports {
				if t.Model[di][pi] == t.Paper[di][pi] {
					match++
				}
			}
		}
	}
	b.ReportMetric(float64(match), "cells-matching-paper/42")
}

// BenchmarkWires regenerates the §3.5/§5.5 wiring-cost comparison.
func BenchmarkWires(b *testing.B) {
	var w *experiments.Wires
	for i := 0; i < b.N; i++ {
		w = experiments.RunWires()
	}
	b.ReportMetric(float64(w.PosSelTotal8), "possel-wires-8w")
	b.ReportMetric(float64(w.TkSelTotal8), "tksel-wires-8w")
}

// BenchmarkTable4 regenerates base IPC under PosSel on both machines.
func BenchmarkTable4(b *testing.B) {
	var t4 *experiments.Table4
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable4(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		t4 = t
	}
	var sum4, sum8 float64
	for i := range t4.Bench {
		sum4 += t4.IPC4[i]
		sum8 += t4.IPC8[i]
	}
	b.ReportMetric(sum4/float64(len(t4.Bench)), "mean-ipc-4w")
	b.ReportMetric(sum8/float64(len(t4.Bench)), "mean-ipc-8w")
}

// BenchmarkTable5 regenerates the scheduling statistics under PosSel.
func BenchmarkTable5(b *testing.B) {
	var t5 *experiments.Table5
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable5(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		t5 = t
	}
	var worst float64
	for _, r := range t5.MissRate4 {
		if r > worst {
			worst = r
		}
	}
	b.ReportMetric(100*worst, "worst-miss-pct-4w")
}

// BenchmarkTable6 regenerates token coverage under TkSel.
func BenchmarkTable6(b *testing.B) {
	var t6 *experiments.Table6
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable6(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		t6 = t
	}
	var sum float64
	for _, c := range t6.Coverage8 {
		sum += c
	}
	b.ReportMetric(100*sum/float64(len(t6.Coverage8)), "mean-coverage-pct-8w")
}

// BenchmarkFigure3 regenerates the serial-verification wavefront study.
func BenchmarkFigure3(b *testing.B) {
	var f *experiments.Figure3
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure3(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		f = r
	}
	b.ReportMetric(100*f.AvgInflation, "avg-issue-inflation-pct")
	b.ReportMetric(float64(f.MaxDepth), "max-propagation-depth")
}

// BenchmarkFigure9 regenerates the predictor coverage curves.
func BenchmarkFigure9(b *testing.B) {
	var f *experiments.Figure9
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure9(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		f = r
	}
	var sum float64
	for _, c := range f.Coverage[1] {
		sum += c
	}
	b.ReportMetric(sum/float64(len(f.Coverage[1])), "mean-coverage-conf1")
}

// BenchmarkFigure12 regenerates the normalized issue counts.
func BenchmarkFigure12(b *testing.B) {
	var f *experiments.Figure12
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure12(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		f = r
	}
	// NonSel on the 8-wide machine: the scalability headline.
	var sum float64
	for _, v := range f.Norm[1][0] {
		sum += v
	}
	b.ReportMetric(sum/float64(len(f.Norm[1][0])), "nonsel-norm-issues-8w")
}

// BenchmarkFigure13 regenerates the normalized performance comparison.
func BenchmarkFigure13(b *testing.B) {
	var f *experiments.Figure13
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure13(experiments.NewEngine(benchOpts()))
		if err != nil {
			b.Fatal(err)
		}
		f = r
	}
	b.ReportMetric(100*f.TkSelSlowdown[0], "tksel-slowdown-pct-4w")
	b.ReportMetric(100*f.TkSelSlowdown[1], "tksel-slowdown-pct-8w")
}

// --- Ablations beyond the paper ---

func ablationRun(b *testing.B, mutate func(*core.Config)) *core.Stats {
	b.Helper()
	prof, err := workload.ByName("twolf")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config8Wide()
	cfg.MaxInsts = 40_000
	cfg.Warmup = 30_000
	mutate(&cfg)
	m, err := core.New(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkAblationTokenPool sweeps the token pool (Table 6
// sensitivity): coverage bought per token.
func BenchmarkAblationTokenPool(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo = ablationRun(b, func(c *core.Config) { c.Scheme = core.TkSel; c.Tokens = 4 }).TokenCoverage()
		hi = ablationRun(b, func(c *core.Config) { c.Scheme = core.TkSel; c.Tokens = 32 }).TokenCoverage()
	}
	b.ReportMetric(100*lo, "coverage-pct-4tok")
	b.ReportMetric(100*hi, "coverage-pct-32tok")
}

// BenchmarkAblationPipelineDepth sweeps the schedule-to-execute
// distance (the §3.5 scaling argument): deeper pipes inflate the
// squashing scheme's replay cost.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	var shallow, deep float64
	for i := 0; i < b.N; i++ {
		shallow = ablationRun(b, func(c *core.Config) { c.Scheme = core.NonSel; c.SchedToExec = 3 }).ReplayRate()
		deep = ablationRun(b, func(c *core.Config) { c.Scheme = core.NonSel; c.SchedToExec = 12 }).ReplayRate()
	}
	b.ReportMetric(100*shallow, "nonsel-replay-pct-depth3")
	b.ReportMetric(100*deep, "nonsel-replay-pct-depth12")
}

// BenchmarkAblationPredictorSize sweeps the scheduling-miss predictor
// table (the design-space note in §4.1).
func BenchmarkAblationPredictorSize(b *testing.B) {
	var small, big float64
	for i := 0; i < b.N; i++ {
		small = ablationRun(b, func(c *core.Config) { c.Scheme = core.TkSel; c.SMPred.Entries = 256 }).TokenCoverage()
		big = ablationRun(b, func(c *core.Config) { c.Scheme = core.TkSel; c.SMPred.Entries = 16384 }).TokenCoverage()
	}
	b.ReportMetric(100*small, "coverage-pct-256e")
	b.ReportMetric(100*big, "coverage-pct-16384e")
}

// BenchmarkAblationTable1Model times the Table 1 dynamic program at its
// most expensive cell.
func BenchmarkAblationTable1Model(b *testing.B) {
	v := 0
	for i := 0; i < b.N; i++ {
		v = analytic.MaxParentLoads(32, 7)
	}
	b.ReportMetric(float64(v), "max-parent-loads-32p-7d")
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions per second of host time), the practical cost of every
// experiment above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	b.ResetTimer()
	total := int64(0)
	for i := 0; i < b.N; i++ {
		gen, _ := workload.NewGenerator(prof, int64(i+1))
		cfg := core.Config8Wide()
		cfg.MaxInsts = 50_000
		m, _ := core.New(cfg, gen)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += st.Retired
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-insts/s")
}
