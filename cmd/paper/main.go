// Command paper regenerates the tables and figures of "Understanding
// Scheduling Replay Schemes" (Kim & Lipasti, HPCA 2004) from the
// simulator in this repository.
//
// Usage:
//
//	paper [-exp all|table1|table3|table4|table5|table6|fig3|fig9|fig12|fig13|wires]
//	      [-insts N] [-warmup N] [-seed N] [-par N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma-separated): all, table1, table3, table4, table5, table6, fig3, fig9, fig12, fig13, wires, ext")
	insts := flag.Int64("insts", 200_000, "measured instructions per simulation")
	warmup := flag.Int64("warmup", 60_000, "warmup instructions per simulation")
	seed := flag.Int64("seed", 1, "workload generator seed")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	flag.Parse()

	eng := experiments.NewEngine(experiments.Options{
		Insts: *insts, Warmup: *warmup, Seed: *seed, Parallelism: *par,
	})

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := false

	emit := func(name string, f func() (string, error)) {
		if !all && !want[name] {
			return
		}
		ran = true
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	emit("table1", func() (string, error) { return experiments.RunTable1().Render(), nil })
	emit("wires", func() (string, error) { return experiments.RunWires().Render(), nil })
	emit("table3", func() (string, error) { return experiments.Table3(), nil })
	emit("table4", func() (string, error) {
		t, err := experiments.RunTable4(eng)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	emit("table5", func() (string, error) {
		t, err := experiments.RunTable5(eng)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	emit("table6", func() (string, error) {
		t, err := experiments.RunTable6(eng)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	emit("fig3", func() (string, error) {
		f, err := experiments.RunFigure3(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	emit("fig9", func() (string, error) {
		f, err := experiments.RunFigure9(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	emit("fig12", func() (string, error) {
		f, err := experiments.RunFigure12(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	emit("fig13", func() (string, error) {
		f, err := experiments.RunFigure13(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})

	emit("ext", func() (string, error) {
		x, err := experiments.RunExtensions(eng)
		if err != nil {
			return "", err
		}
		return x.Render(), nil
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
