// Command paper regenerates the tables and figures of "Understanding
// Scheduling Replay Schemes" (Kim & Lipasti, HPCA 2004) from the
// simulator in this repository.
//
// The batch is interruptible and resumable: Ctrl-C cancels the
// in-flight simulations at cycle granularity, and with -journal set,
// completed runs are checkpointed as they finish and replayed —
// bit-identically — on the next invocation.
//
// Usage:
//
//	paper [-exp all|table1|table3|table4|table5|table6|fig3|fig9|fig12|fig13|wires|ext]
//	      [-insts N] [-warmup N] [-seed N] [-par N] [-journal file.jsonl] [-check level]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/simflag"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma-separated): all, table1, table3, table4, table5, table6, fig3, fig9, fig12, fig13, wires, ext, frontier")
	f := simflag.New()
	f.RegisterLength(flag.CommandLine)
	f.RegisterSeed(flag.CommandLine)
	f.RegisterBatch(flag.CommandLine)
	f.RegisterCheck(flag.CommandLine)
	flag.Parse()
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	status := simflag.NewStatus(os.Stderr, f.Progress)
	opts := f.Options()
	opts.OnProgress = status.Update
	eng := experiments.NewEngineContext(ctx, opts)
	defer eng.Close()
	if n := eng.Sim().JournalSkipped(); n > 0 {
		fmt.Fprintf(os.Stderr, "journal: skipped %d stale or torn lines\n", n)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := false

	fail := func(name string, err error) {
		status.Close()
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		if ctx.Err() != nil && f.Journal != "" {
			fmt.Fprintf(os.Stderr, "interrupted; completed runs are checkpointed — rerun with -journal %s to resume\n", f.Journal)
		}
		eng.Close()
		os.Exit(1)
	}
	emit := func(name string, fn func() (string, error)) {
		if !all && !want[name] {
			return
		}
		ran = true
		out, err := fn()
		if err != nil {
			fail(name, err)
		}
		status.Close()
		fmt.Println(out)
	}

	emit("table1", func() (string, error) { return experiments.RunTable1().Render(), nil })
	emit("wires", func() (string, error) { return experiments.RunWires().Render(), nil })
	emit("table3", func() (string, error) { return experiments.Table3(), nil })
	emit("table4", func() (string, error) {
		t, err := experiments.RunTable4(eng)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	emit("table5", func() (string, error) {
		t, err := experiments.RunTable5(eng)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	emit("table6", func() (string, error) {
		t, err := experiments.RunTable6(eng)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	emit("fig3", func() (string, error) {
		f, err := experiments.RunFigure3(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	emit("fig9", func() (string, error) {
		f, err := experiments.RunFigure9(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	emit("fig12", func() (string, error) {
		f, err := experiments.RunFigure12(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	emit("fig13", func() (string, error) {
		f, err := experiments.RunFigure13(eng)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})

	emit("ext", func() (string, error) {
		x, err := experiments.RunExtensions(eng)
		if err != nil {
			return "", err
		}
		return x.Render(), nil
	})

	emit("frontier", func() (string, error) {
		x, err := experiments.RunFrontier(eng)
		if err != nil {
			return "", err
		}
		return x.Render(), nil
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
