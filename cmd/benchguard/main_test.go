package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBench(t *testing.T) {
	p := write(t, "bench.txt", `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkMachineSteadyState-8   100000   1200 ns/op   0 B/op   0 allocs/op
BenchmarkMachineSteadyState-8   100000   1000 ns/op   0 B/op   0 allocs/op
BenchmarkOther-8                 50000   3000 ns/op
PASS
`)
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got["BenchmarkMachineSteadyState"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if s.runs != 2 || s.nsPerOp != 1100 {
		t.Errorf("repeat averaging: runs=%d ns/op=%v, want 2 runs at 1100", s.runs, s.nsPerOp)
	}
	if !s.hasAllocs || s.allocsPerOp != 0 {
		t.Errorf("allocs/op not picked up: %+v", s)
	}
	if o := got["BenchmarkOther"]; o == nil || o.hasAllocs {
		t.Errorf("benchmark without -benchmem mis-parsed: %+v", o)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	p := write(t, "noise.txt", "ok  \trepro\t1.2s\n--- BENCH: something\ncpu: fake\n")
	got, err := parseBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed benchmarks out of noise: %v", got)
	}
}
