// Command benchguard compares two `go test -bench` output files and
// fails when a benchmark regressed: ns/op beyond a percentage
// threshold, or any increase in allocs/op. It is the repository's
// dependency-free stand-in for benchstat in CI, where the old file is
// the committed baseline (internal/core/testdata/bench_baseline.txt).
//
// Usage:
//
//	go test -run=NONE -bench=MachineSteadyState -count=5 ./internal/core/ > new.txt
//	benchguard -old internal/core/testdata/bench_baseline.txt -new new.txt -max-regress 10
//
// Benchmarks present in only one file are reported but do not fail the
// run, so adding or retiring a benchmark does not require touching the
// baseline in the same commit. Repeated runs of one benchmark
// (-count=N) are averaged.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
	runs        int
}

// parseBench reads `go test -bench` output, averaging repeated runs of
// the same benchmark. The -N GOMAXPROCS suffix is stripped so baselines
// survive a core-count change.
func parseBench(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]*sample{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &sample{}
			out[name] = s
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp += v
			case "allocs/op":
				s.allocsPerOp += v
				s.hasAllocs = true
			}
		}
		s.runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, s := range out {
		s.nsPerOp /= float64(s.runs)
		s.allocsPerOp /= float64(s.runs)
	}
	return out, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline bench output (required)")
	newPath := flag.String("new", "", "current bench output (required)")
	maxRegress := flag.Float64("max-regress", 10, "maximum ns/op regression in percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -old and -new are required")
		os.Exit(2)
	}

	oldB, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	newB, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if len(oldB) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no benchmarks in %s\n", *oldPath)
		os.Exit(2)
	}

	names := make([]string, 0, len(newB))
	for name := range newB {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	compared := 0
	for _, name := range names {
		n := newB[name]
		o, ok := oldB[name]
		if !ok {
			fmt.Printf("%-40s %12.1f ns/op  (no baseline, skipped)\n", name, n.nsPerOp)
			continue
		}
		compared++
		delta := 100 * (n.nsPerOp - o.nsPerOp) / o.nsPerOp
		verdict := "ok"
		if delta > *maxRegress {
			verdict = fmt.Sprintf("FAIL (>%.0f%%)", *maxRegress)
			failed = true
		}
		fmt.Printf("%-40s %12.1f -> %12.1f ns/op  %+6.1f%%  %s\n",
			name, o.nsPerOp, n.nsPerOp, delta, verdict)
		if o.hasAllocs && n.hasAllocs && n.allocsPerOp > o.allocsPerOp {
			fmt.Printf("%-40s %12.1f -> %12.1f allocs/op  FAIL (allocation regression)\n",
				name, o.allocsPerOp, n.allocsPerOp)
			failed = true
		}
	}
	for name := range oldB {
		if _, ok := newB[name]; !ok {
			fmt.Printf("%-40s baseline only (not run)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark appears in both files")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
