// Command pipeview renders an ASCII pipeline timeline — the textual
// analogue of the paper's Figures 5–7 timing diagrams. Each row is one
// dynamic instruction, each column a cycle:
//
//	F fetch   D dispatch   I issue   X execute   C complete
//	! squash  r replay     R retire
//
// A load scheduling miss is visible as an I…X…! sequence followed by a
// second I once the data returns, with the configured replay scheme
// deciding which neighbours get dragged along.
//
// The command runs in three modes:
//
//	pipeview -bench mcf -scheme NonSel -skip 3000 -rows 48
//	    simulate and render a window picked by instruction number
//	pipeview -bench mcf -scheme NonSel -record run.evs
//	    the same, but also record the full event stream to run.evs
//	pipeview -replay run.evs -seek 41000
//	    no simulation: re-render any cycle range of a recorded run
//
// Replay streams from the file with a bounded window — memory is
// O(rows), independent of stream length — so seeking deep into a long
// recording is instant and cheap.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/evstream"
	"repro/internal/isa"
	"repro/internal/simflag"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	f := simflag.New()
	f.Bench = "mcf"
	f.RegisterBench(flag.CommandLine)
	f.RegisterMachine(flag.CommandLine)
	f.RegisterSeed(flag.CommandLine)
	skip := flag.Int64("skip", 5_000, "instructions to run before the window (warms caches)")
	rows := flag.Int64("rows", 40, "instructions to display")
	cols := flag.Int64("cols", 110, "cycles to display")
	record := flag.String("record", "", "record the full event stream to this .evs file")
	replay := flag.String("replay", "", "render from this .evs file instead of simulating")
	seek := flag.Int64("seek", -1, "with -replay: start the window at this cycle")
	flag.Parse()

	if f.HandleListSchemes(os.Stdout) {
		return nil
	}
	if *rows <= 0 || *cols <= 0 {
		return fmt.Errorf("pipeview: -rows and -cols must be positive")
	}

	if *replay != "" {
		return replayRender(*replay, *seek, *rows, *cols)
	}
	if *seek >= 0 {
		return fmt.Errorf("pipeview: -seek requires -replay (record a stream first, then time-travel in it)")
	}
	return liveRender(f, *skip, *rows, *cols, *record)
}

// row is one instruction's timeline.
type row struct {
	class    isa.Class
	hasClass bool
	events   []core.PipeEvent
}

// liveRender simulates a run, renders the [skip, skip+rows) window,
// and optionally records the whole event stream to an .evs file.
func liveRender(f *simflag.Sim, skip, rows, cols int64, recordPath string) error {
	if err := f.Validate(); err != nil {
		return err
	}
	scheme, _ := f.Scheme()

	// The sink below hooks machine internals, so this command drives
	// core directly rather than going through the sim engine.
	prof, err := workload.ByName(f.Bench)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(prof, f.Seed)
	if err != nil {
		return err
	}
	cfg := core.Config4Wide()
	if f.Wide8 {
		cfg = core.Config8Wide()
	}
	cfg.Scheme = scheme
	cfg.MaxInsts = skip + rows + 512

	m, err := core.New(cfg, gen)
	if err != nil {
		return err
	}

	lo, hi := skip, skip+rows
	rowsBySeq := map[int64]*row{}
	var t0 int64 = -1
	collect := func(ev core.PipeEvent) {
		if ev.Seq < lo || ev.Seq >= hi {
			return
		}
		if t0 < 0 {
			t0 = ev.Cycle
		}
		r, ok := rowsBySeq[ev.Seq]
		if !ok {
			r = &row{}
			rowsBySeq[ev.Seq] = r
		}
		if ev.Kind == core.EvFetch || ev.Kind == core.EvDispatch {
			r.class, r.hasClass = ev.Class, true
		}
		r.events = append(r.events, ev)
	}

	var rec *evstream.Recorder
	if recordPath != "" {
		out, err := os.Create(recordPath)
		if err != nil {
			return err
		}
		defer out.Close()
		rec, err = evstream.NewRecorder(out, evstream.Header{
			Spec: fmt.Sprintf("%s %s %v", f.Bench, cfg.Name, scheme),
			Seed: f.Seed,
			Note: "pipeview recording",
		})
		if err != nil {
			return err
		}
		m.SetSink(sinkFunc(func(ev core.PipeEvent) {
			rec.Event(ev)
			collect(ev)
		}))
	} else {
		m.SetObserver(collect)
	}

	if _, err := m.Run(); err != nil {
		return err
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return err
		}
		fmt.Printf("recorded %d events to %s\n", rec.Count(), recordPath)
	}

	fmt.Printf("%s on %s under %v — instructions %d..%d (cycle origin %d)\n",
		f.Bench, cfg.Name, scheme, lo, hi-1, t0)
	render(rowsBySeq, t0, cols)
	return nil
}

type sinkFunc func(core.PipeEvent)

func (fn sinkFunc) Event(ev core.PipeEvent) { fn(ev) }

// replayRender renders a window of a recorded stream without
// simulating: seek to the requested cycle (or the stream's first
// event), then collect at most `rows` instructions across `cols`
// cycles. The scan stops at the window's right edge, so deep streams
// never load whole.
func replayRender(path string, seek, rows, cols int64) error {
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	d, err := evstream.NewReader(in)
	if err != nil {
		return err
	}

	var first core.PipeEvent
	if seek >= 0 {
		ev, err := d.SeekCycle(seek)
		if errors.Is(err, evstream.ErrPastEnd) {
			return fmt.Errorf("pipeview: %s: %w", path, err)
		}
		if err != nil {
			return err
		}
		first = ev
	} else {
		for {
			rec, err := d.Next()
			if err == io.EOF {
				return fmt.Errorf("pipeview: %s holds no events", path)
			}
			if err != nil {
				return err
			}
			if rec.Kind == evstream.RecEvent {
				first = rec.Event
				break
			}
		}
	}
	t0 := first.Cycle
	if seek >= 0 {
		t0 = seek // anchor the columns at the asked-for cycle
	}

	rowsBySeq := map[int64]*row{}
	add := func(ev core.PipeEvent) {
		r, ok := rowsBySeq[ev.Seq]
		if !ok {
			if int64(len(rowsBySeq)) >= rows {
				return // window full: later instructions wait for the next seek
			}
			r = &row{}
			rowsBySeq[ev.Seq] = r
		}
		if ev.Kind == core.EvFetch || ev.Kind == core.EvDispatch {
			r.class, r.hasClass = ev.Class, true
		}
		r.events = append(r.events, ev)
	}
	add(first)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rec.Kind != evstream.RecEvent {
			continue
		}
		if rec.Event.Cycle >= t0+cols {
			break // right edge reached; cycles are monotonic, stop reading
		}
		add(rec.Event)
	}

	hdr := d.Header()
	label := hdr.Spec
	if label == "" {
		label = path
	}
	fmt.Printf("%s (seed %d) — replayed from %s, cycles %d..%d\n",
		label, hdr.Seed, path, t0, t0+cols-1)
	render(rowsBySeq, t0, cols)
	return nil
}

// render prints the timeline rows in instruction order.
func render(rowsBySeq map[int64]*row, t0, cols int64) {
	fmt.Println("F fetch  D dispatch  I issue  X execute  C complete  ! squash  r replay  R retire")
	seqs := make([]int64, 0, len(rowsBySeq))
	for seq := range rowsBySeq {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		r := rowsBySeq[seq]
		line := []byte(strings.Repeat(".", int(cols)))
		clipped := false
		for _, ev := range r.events {
			c := ev.Cycle - t0
			if c < 0 || c >= cols {
				clipped = true
				continue
			}
			line[c] = ev.Kind.String()[0]
		}
		mark := " "
		if clipped {
			mark = ">"
		}
		class := "-"
		if r.hasClass {
			class = r.class.String()
		}
		fmt.Printf("%6d %-7s |%s|%s\n", seq, class, line, mark)
	}
}
