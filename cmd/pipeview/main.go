// Command pipeview renders an ASCII pipeline timeline of a short
// simulation window — the textual analogue of the paper's Figures 5–7
// timing diagrams. Each row is one dynamic instruction, each column a
// cycle:
//
//	D dispatch   I issue   X execute   C complete   ! squash   R retire
//
// A load scheduling miss is visible as an I…X…! sequence followed by a
// second I once the data returns, with the configured replay scheme
// deciding which neighbours get dragged along.
//
// Usage:
//
//	pipeview -bench mcf -scheme NonSel -skip 3000 -rows 48
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/simflag"
	"repro/internal/workload"
)

func main() {
	f := simflag.New()
	f.Bench = "mcf"
	f.RegisterBench(flag.CommandLine)
	f.RegisterMachine(flag.CommandLine)
	f.RegisterSeed(flag.CommandLine)
	skip := flag.Int64("skip", 5_000, "instructions to run before the window (warms caches)")
	rows := flag.Int64("rows", 40, "instructions to display")
	cols := flag.Int64("cols", 110, "cycles to display")
	flag.Parse()

	if f.HandleListSchemes(os.Stdout) {
		return
	}
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scheme, _ := f.Scheme()

	// The observer below hooks machine internals, so this command
	// drives core directly rather than going through the sim engine.
	prof, err := workload.ByName(f.Bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen, err := workload.NewGenerator(prof, f.Seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := core.Config4Wide()
	if f.Wide8 {
		cfg = core.Config8Wide()
	}
	cfg.Scheme = scheme
	cfg.MaxInsts = *skip + *rows + 512

	m, err := core.New(cfg, gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type row struct {
		class  isa.Class
		pc     uint64
		events []core.PipeEvent
	}
	lo, hi := *skip, *skip+*rows
	rowsBySeq := map[int64]*row{}
	var t0 int64 = -1
	m.SetObserver(func(ev core.PipeEvent) {
		if ev.Seq < lo || ev.Seq >= hi {
			return
		}
		if t0 < 0 {
			t0 = ev.Cycle
		}
		r, ok := rowsBySeq[ev.Seq]
		if !ok {
			r = &row{class: ev.Class, pc: ev.PC}
			rowsBySeq[ev.Seq] = r
		}
		r.events = append(r.events, ev)
	})
	if _, err := m.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s under %v — instructions %d..%d (cycle origin %d)\n",
		f.Bench, cfg.Name, scheme, lo, hi-1, t0)
	fmt.Println("D dispatch  I issue  X execute  C complete  ! squash  R retire")
	for seq := lo; seq < hi; seq++ {
		r := rowsBySeq[seq]
		if r == nil {
			continue
		}
		line := []byte(strings.Repeat(".", int(*cols)))
		clipped := false
		for _, ev := range r.events {
			c := ev.Cycle - t0
			if c < 0 || c >= *cols {
				clipped = true
				continue
			}
			line[c] = ev.Kind.String()[0]
		}
		mark := " "
		if clipped {
			mark = ">"
		}
		fmt.Printf("%6d %-7s |%s|%s\n", seq, r.class, line, mark)
	}
}
