// Command validate sweeps the differential validation matrix: every
// requested replay scheme on every requested benchmark and seed, run at
// each invariant-monitoring level, cross-checked level-against-level
// and against the magic-scheduler oracle for the same instruction
// stream. It prints every finding (with the cycle-stamped pipeline
// trace window for monitor violations) and exits non-zero when
// validation fails.
//
// Usage:
//
//	validate -schemes all -bench all -seeds 3
//	validate -schemes TkSel,DSel -bench gcc,mcf -levels off,full -insts 20000
//	validate -schemes TkSel -bench gcc -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/api"
	"repro/internal/bpred"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/simflag"
	"repro/internal/workload"
)

func main() {
	schemesFlag := flag.String("schemes", "all",
		"comma-separated replay schemes, or all ("+strings.Join(core.SchemeNames(), ", ")+")")
	benchFlag := flag.String("bench", "all",
		"comma-separated benchmarks, or all ("+strings.Join(workload.Benchmarks, ", ")+")")
	seeds := flag.Int("seeds", 1, "validate workload seeds 1..N")
	levelsFlag := flag.String("levels", "off,cheap,full",
		"comma-separated monitor levels to run and compare ("+strings.Join(core.CheckLevelNames(), ", ")+")")
	bpredsFlag := flag.String("bpreds", bpred.KindCombined.String(),
		"comma-separated branch predictors to cross with the matrix, or all ("+
			strings.Join(bpred.KindNames(), ", ")+")")
	prefetchersFlag := flag.String("prefetchers", prefetch.KindOff.String(),
		"comma-separated data prefetchers to cross with the matrix, or all ("+
			strings.Join(prefetch.KindNames(), ", ")+")")
	wide8 := flag.Bool("wide8", false, "validate the 8-wide Table 3 machine")
	insts := flag.Int64("insts", 50_000, "measured instructions per run")
	warmup := flag.Int64("warmup", 10_000, "warmup instructions per run")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	progress := flag.Bool("progress", true, "render a live status line on stderr")
	streams := flag.String("streams", "",
		"directory for replayable .evs streams of failing runs (pipeview -replay renders them)")
	jsonOut := flag.Bool("json", false, "emit the report as v1 wire JSON (api.ValidateReport) instead of text")
	flag.Parse()

	opts, err := parseMatrix(*schemesFlag, *benchFlag, *levelsFlag, *seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if opts.Bpreds, err = parseBpreds(*bpredsFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if opts.Prefetchers, err = parsePrefetchers(*prefetchersFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *insts <= 0 || *warmup < 0 || *seeds < 1 {
		fmt.Fprintln(os.Stderr, "validate: -insts and -seeds must be positive, -warmup non-negative")
		os.Exit(2)
	}
	opts.Wide8 = *wide8
	opts.Insts = *insts
	opts.Warmup = *warmup
	opts.Parallelism = *par
	if *streams != "" {
		if err := os.MkdirAll(*streams, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.StreamDir = *streams
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	status := simflag.NewStatus(os.Stderr, *progress)
	opts.OnProgress = status.Update
	report, err := check.Validate(ctx, opts)
	status.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(api.FromReport(report)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !report.OK() {
			os.Exit(1)
		}
		return
	}

	for _, f := range report.Findings {
		fmt.Printf("FAIL %s\n", f)
		if f.Stream != "" {
			fmt.Printf("  stream: %s (replay with: pipeview -replay %s -seek <cycle>)\n", f.Stream, f.Stream)
		}
		for _, viol := range f.Violations {
			fmt.Printf("  violation: %s (stream cursor %d)\n", viol, viol.Cursor)
			if len(viol.Trace) > 0 {
				fmt.Printf("  trace window (%d events):\n", len(viol.Trace))
				for _, ev := range viol.Trace {
					fmt.Printf("    cycle %6d  %s  seq %6d  pc %#010x  %v\n",
						ev.Cycle, ev.Kind, ev.Seq, ev.PC, ev.Class)
				}
			}
		}
	}
	fmt.Printf("validate: %d runs, %d schemes x %d benchmarks x %d seeds x %d levels x %d bpreds x %d prefetchers: %d finding(s)\n",
		report.Runs, len(opts.Schemes), len(opts.Benches), len(opts.Seeds), len(opts.Levels),
		len(opts.Bpreds), len(opts.Prefetchers), len(report.Findings))
	if !report.OK() {
		os.Exit(1)
	}
}

// parseMatrix resolves the scheme/bench/level lists and the seed range.
func parseMatrix(schemes, benches, levels string, seeds int) (check.Options, error) {
	opts := check.Options{Schemes: core.Schemes(), Benches: workload.Benchmarks}
	if schemes != "all" {
		opts.Schemes = nil
		for _, name := range strings.Split(schemes, ",") {
			s, err := core.ParseScheme(strings.TrimSpace(name))
			if err != nil {
				return opts, err
			}
			opts.Schemes = append(opts.Schemes, s)
		}
	}
	if benches != "all" {
		opts.Benches = nil
		for _, name := range strings.Split(benches, ",") {
			name = strings.TrimSpace(name)
			if _, err := workload.ByName(name); err != nil {
				return opts, err
			}
			opts.Benches = append(opts.Benches, name)
		}
	}
	for _, name := range strings.Split(levels, ",") {
		l, err := core.ParseCheckLevel(strings.TrimSpace(name))
		if err != nil {
			return opts, err
		}
		opts.Levels = append(opts.Levels, l)
	}
	for s := 1; s <= seeds; s++ {
		opts.Seeds = append(opts.Seeds, int64(s))
	}
	return opts, nil
}

// parseBpreds resolves the -bpreds list to canonical override names
// (the default kind becomes the zero override).
func parseBpreds(list string) ([]string, error) {
	if list == "all" {
		list = strings.Join(bpred.KindNames(), ",")
	}
	var out []string
	for _, name := range strings.Split(list, ",") {
		k, err := bpred.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if k == bpred.KindCombined {
			out = append(out, "")
		} else {
			out = append(out, k.String())
		}
	}
	return out, nil
}

// parsePrefetchers resolves the -prefetchers list the same way.
func parsePrefetchers(list string) ([]string, error) {
	if list == "all" {
		list = strings.Join(prefetch.KindNames(), ",")
	}
	var out []string
	for _, name := range strings.Split(list, ",") {
		k, err := prefetch.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if k == prefetch.KindOff {
			out = append(out, "")
		} else {
			out = append(out, k.String())
		}
	}
	return out, nil
}
