// Command trace records, inspects and simulates instruction traces.
//
// Usage:
//
//	trace record -bench gcc -n 200000 -o gcc.trace
//	trace stats gcc.trace
//	trace stats run.evs     # pipeline event streams are recognized too
//	trace run -scheme TkSel -wide8 gcc.trace
//
// `stats` inspects both artifact formats: instruction traces
// (internal/trace) and recorded pipeline event streams
// (internal/evstream, as written by pipeview -record or
// validate -streams).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/evstream"
	"repro/internal/isa"
	"repro/internal/simflag"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "stats":
		traceStats(os.Args[2:])
	case "run":
		run(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trace record|stats|run ...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	sf := simflag.New()
	sf.RegisterBench(fs)
	sf.RegisterSeed(fs)
	n := fs.Int("n", 200_000, "instructions to record")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o is required"))
	}
	if err := sf.Validate(); err != nil {
		fatal(err)
	}
	prof, err := workload.ByName(sf.Bench)
	if err != nil {
		fatal(err)
	}
	gen, err := workload.NewGenerator(prof, sf.Seed)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < *n; i++ {
		if err := w.Write(gen.Next()); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %d instructions of %s to %s (%d bytes, %.1f B/inst)\n",
		*n, sf.Bench, *out, info.Size(), float64(info.Size())/float64(*n))
}

func traceStats(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("stats: need exactly one trace file"))
	}
	if evsStats(args[0]) {
		return
	}
	insts := load(args[0])

	classCounts := map[isa.Class]int{}
	pcs := map[uint64]bool{}
	depDistSum, depCount := int64(0), 0
	taken, branches := 0, 0
	lines := map[uint64]bool{}
	for _, in := range insts {
		classCounts[in.Class]++
		pcs[in.PC] = true
		for _, s := range []int64{in.Src1, in.Src2} {
			if s >= 0 {
				depDistSum += in.Seq - s
				depCount++
			}
		}
		if in.Class == isa.Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
		if in.Class.IsMem() {
			lines[in.Addr>>6] = true
		}
	}
	fmt.Printf("%s: %d instructions, %d static sites, %d distinct data lines (%.0f KB touched)\n",
		args[0], len(insts), len(pcs), len(lines), float64(len(lines))*64/1024)
	tb := stats.NewTable("class", "count", "fraction")
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if classCounts[c] > 0 {
			tb.AddRow(c.String(), fmt.Sprintf("%d", classCounts[c]),
				fmt.Sprintf("%.3f", float64(classCounts[c])/float64(len(insts))))
		}
	}
	fmt.Print(tb.String())
	if depCount > 0 {
		fmt.Printf("mean dependence distance: %.2f instructions\n", float64(depDistSum)/float64(depCount))
	}
	if branches > 0 {
		fmt.Printf("branches taken: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
}

// evsStats prints statistics for a recorded pipeline event stream and
// reports whether the file was one; any other format returns false so
// the caller falls through to the instruction-trace path.
func evsStats(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := evstream.NewReader(f)
	if err != nil {
		return false // not an .evs stream
	}

	var (
		events, ckpts, ckptBytes int64
		firstCycle               int64 = -1
		lastCycle                int64
		perKind                  [8]int64
	)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(fmt.Errorf("stats: %s: %w", path, err))
		}
		switch rec.Kind {
		case evstream.RecEvent:
			if firstCycle < 0 {
				firstCycle = rec.Event.Cycle
			}
			lastCycle = rec.Event.Cycle
			events++
			perKind[rec.Event.Kind]++
		case evstream.RecCheckpoint:
			ckpts++
			ckptBytes += int64(len(rec.Checkpoint))
		}
	}

	hdr := d.Header()
	info, _ := f.Stat()
	fmt.Printf("%s: event stream of %q (seed %d)\n", path, hdr.Spec, hdr.Seed)
	if hdr.Note != "" {
		fmt.Printf("note: %s\n", hdr.Note)
	}
	if events > 0 {
		fmt.Printf("%d events over cycles %d..%d (%d bytes, %.2f B/event)\n",
			events, firstCycle, lastCycle, info.Size(),
			float64(info.Size()-ckptBytes)/float64(events))
	}
	if ckpts > 0 {
		fmt.Printf("%d machine checkpoint(s), %d bytes\n", ckpts, ckptBytes)
	}
	tb := stats.NewTable("event", "count", "fraction")
	for k := core.PipeEventKind(0); k < core.PipeEventKind(len(perKind)); k++ {
		if perKind[k] > 0 {
			tb.AddRow(k.String(), fmt.Sprintf("%d", perKind[k]),
				fmt.Sprintf("%.3f", float64(perKind[k])/float64(events)))
		}
	}
	fmt.Print(tb.String())
	return true
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	f := simflag.New()
	f.RegisterMachine(fs)
	f.RegisterCheck(fs)
	// Run length comes from the recorded trace, not the canonical
	// defaults, so these stay local instead of using RegisterLength.
	insts := fs.Int64("insts", 0, "instructions to simulate (0 = one pass of the trace)")
	warmup := fs.Int64("warmup", 0, "warmup instructions")
	fs.Parse(args)
	if f.HandleListSchemes(os.Stdout) {
		return
	}
	if err := f.Validate(); err != nil {
		fatal(err)
	}
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("run: need exactly one trace file"))
	}
	recorded := load(fs.Arg(0))

	scheme, _ := f.Scheme()

	cfg := core.Config4Wide()
	if f.Wide8 {
		cfg = core.Config8Wide()
	}
	cfg.Scheme = scheme
	cfg.MaxInsts = int64(len(recorded))
	if *insts > 0 {
		cfg.MaxInsts = *insts
	}
	cfg.Warmup = *warmup
	cfg.Check, _ = f.Check() // Validate has already vetted it
	m, err := core.New(cfg, trace.NewLoop(recorded))
	if err != nil {
		fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s under %v (%s): IPC %.4f, miss rate %.2f%%, replays %.2f%%\n",
		fs.Arg(0), scheme, cfg.Name, st.IPC(), 100*st.LoadMissRate(), 100*st.ReplayRate())
}

func load(path string) []isa.Inst {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	insts, err := r.ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(insts) == 0 {
		fatal(fmt.Errorf("%s: empty trace", path))
	}
	return insts
}
