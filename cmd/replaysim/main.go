// Command replaysim runs one simulation of the speculative-scheduling
// machine and prints its scheduler statistics — locally, or on a simd
// server with -remote.
//
// Usage:
//
//	replaysim -bench gcc -scheme TkSel -wide8 -insts 200000
//	replaysim -bench mcf -scheme TkSel -json
//	replaysim -remote http://localhost:8080 -bench mcf -scheme TkSel
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simflag"
	"repro/internal/smpred"
)

func main() {
	f := simflag.New()
	f.RegisterBench(flag.CommandLine)
	f.RegisterMachine(flag.CommandLine)
	f.RegisterLength(flag.CommandLine)
	f.RegisterSeed(flag.CommandLine)
	f.RegisterCheck(flag.CommandLine)
	f.RegisterRemote(flag.CommandLine)
	tokens := flag.Int("tokens", 0, "token pool override for TkSel (0 = Table 3 default)")
	jsonOut := flag.Bool("json", false, "emit the result as v1 wire JSON (api.Result) instead of text")
	flag.Parse()

	if f.HandleListSchemes(os.Stdout) {
		return
	}
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scheme, _ := f.Scheme()
	check, _ := f.Check()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := f.Options()
	opts.Parallelism = 1
	runner, stopRunner := f.Runner(ctx, opts)
	over := sim.Overrides{Tokens: *tokens, Check: check}
	f.ApplyFrontend(&over)
	out, err := runner.Run(ctx, sim.Spec{
		Bench: f.Bench, Wide8: f.Wide8, Scheme: scheme, Over: over,
	})
	stopRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(api.FromRunOut(out, opts.Insts, opts.Warmup, opts.Seed)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	st := out.Stats
	fmt.Printf("%s on %s, %v replay\n", f.Bench, out.Spec.Width(), scheme)
	fmt.Printf("  IPC                     %.4f (%d instructions, %d cycles)\n", st.IPC(), st.Retired, st.Cycles)
	fmt.Printf("  load scheduling misses  %.2f%% of load issues (%d; cache %d, alias %d)\n",
		100*st.LoadMissRate(), st.LoadSchedMisses, st.CacheMisses, st.AliasMisses)
	fmt.Printf("  replayed issues         %.2f%% of total issues (%d of %d)\n",
		100*st.ReplayRate(), st.TotalIssues-st.FirstIssues, st.TotalIssues)
	branchRate := 0.0
	if st.BranchLookups > 0 {
		branchRate = float64(st.BranchMispredicts) / float64(st.BranchLookups)
	}
	fmt.Printf("  branch mispredicts      %.2f%% of branches\n", 100*branchRate)
	if scheme == core.TkSel {
		fmt.Printf("  token coverage          %.1f%% of misses (stolen %d, refused %d)\n",
			100*st.TokenCoverage(), st.Policy.MissTokenStolen, st.Policy.MissTokenRefused)
	}
	if st.ReinsertEvents > 0 {
		fmt.Printf("  re-insert replays       %d events, %d instructions re-inserted\n",
			st.ReinsertEvents, st.ReinsertedInsts)
	}
	if st.RefetchEvents > 0 {
		fmt.Printf("  refetch replays         %d\n", st.RefetchEvents)
	}
	if scheme == core.SerialVerify && st.Policy.SerialDepth.N() > 0 {
		sd := &st.Policy.SerialDepth
		fmt.Printf("  wavefront depth         mean %.1f, p99 %d, max %d over %d misses\n",
			sd.Mean(), sd.Quantile(0.99), sd.Max(), sd.N())
	}
	fmt.Printf("  predictor               conf>=2 coverage %.2f, predicted %.2f of loads\n",
		out.Meter.Coverage(smpred.Confidence(2)), out.Meter.PredictedFraction(smpred.Confidence(2)))
}
