// Command replaysim runs one simulation of the speculative-scheduling
// machine and prints its scheduler statistics.
//
// Usage:
//
//	replaysim -bench gcc -scheme TkSel -wide8 -insts 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark: "+strings.Join(repro.Benchmarks(), ", "))
	schemeName := flag.String("scheme", "PosSel", "replay scheme: "+strings.Join(repro.SchemeNames(), ", "))
	listSchemes := flag.Bool("list-schemes", false, "list the registered replay schemes and exit")
	wide8 := flag.Bool("wide8", false, "use the 8-wide Table 3 machine")
	insts := flag.Int64("insts", 200_000, "measured instructions")
	warmup := flag.Int64("warmup", 60_000, "warmup instructions")
	seed := flag.Int64("seed", 1, "workload seed")
	tokens := flag.Int("tokens", 0, "token pool override for TkSel (0 = Table 3 default)")
	flag.Parse()

	if *listSchemes {
		fmt.Println(strings.Join(repro.SchemeNames(), "\n"))
		return
	}
	scheme, err := repro.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res, err := repro.Run(repro.Options{
		Benchmark: *bench, Wide8: *wide8, Scheme: scheme,
		Insts: *insts, Warmup: *warmup, Seed: *seed, Tokens: *tokens,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	width := "4-wide"
	if *wide8 {
		width = "8-wide"
	}
	st := res.Stats
	fmt.Printf("%s on %s, %v replay\n", *bench, width, scheme)
	fmt.Printf("  IPC                     %.4f (%d instructions, %d cycles)\n", res.IPC, st.Retired, st.Cycles)
	fmt.Printf("  load scheduling misses  %.2f%% of load issues (%d; cache %d, alias %d)\n",
		100*res.LoadMissRate, st.LoadSchedMisses, st.CacheMisses, st.AliasMisses)
	fmt.Printf("  replayed issues         %.2f%% of total issues (%d of %d)\n",
		100*res.ReplayRate, st.TotalIssues-st.FirstIssues, st.TotalIssues)
	fmt.Printf("  branch mispredicts      %.2f%% of branches\n", 100*res.BranchMispredictRate)
	if scheme == repro.TkSel {
		fmt.Printf("  token coverage          %.1f%% of misses (stolen %d, refused %d)\n",
			100*res.TokenCoverage, st.Policy.MissTokenStolen, st.Policy.MissTokenRefused)
	}
	if st.ReinsertEvents > 0 {
		fmt.Printf("  re-insert replays       %d events, %d instructions re-inserted\n",
			st.ReinsertEvents, st.ReinsertedInsts)
	}
	if st.RefetchEvents > 0 {
		fmt.Printf("  refetch replays         %d\n", st.RefetchEvents)
	}
	if scheme == repro.SerialVerify && st.Policy.SerialDepth.N() > 0 {
		sd := &st.Policy.SerialDepth
		fmt.Printf("  wavefront depth         mean %.1f, p99 %d, max %d over %d misses\n",
			sd.Mean(), sd.Quantile(0.99), sd.Max(), sd.N())
	}
	fmt.Printf("  predictor               conf>=2 coverage %.2f, predicted %.2f of loads\n",
		res.PredictorCoverage[2], res.PredictedFraction[2])
}
