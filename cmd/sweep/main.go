// Command sweep runs the ablation studies around the paper's design
// choices: token pool size (Table 6 sensitivity), scheduling-miss
// predictor size (Figure 9 sensitivity), and pipeline depth
// (propagation-distance scaling, §3.5).
//
// Usage:
//
//	sweep -what tokens -bench mcf
//	sweep -what depth -bench gcc -scheme NonSel
//	sweep -what predictor -bench gcc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	what := flag.String("what", "tokens", "sweep to run: tokens, depth, predictor, window, rq, vp")
	bench := flag.String("bench", "mcf", "benchmark")
	schemeName := flag.String("scheme", "TkSel", "replay scheme for depth/window sweeps: "+
		strings.Join(core.SchemeNames(), ", "))
	listSchemes := flag.Bool("list-schemes", false, "list the registered replay schemes and exit")
	wide8 := flag.Bool("wide8", true, "use the 8-wide machine")
	insts := flag.Int64("insts", 100_000, "measured instructions")
	warmup := flag.Int64("warmup", 60_000, "warmup instructions")
	flag.Parse()

	if *listSchemes {
		fmt.Println(strings.Join(core.SchemeNames(), "\n"))
		return
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(mutate func(*core.Config)) *core.Stats {
		prof, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gen, err := workload.NewGenerator(prof, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := core.Config4Wide()
		if *wide8 {
			cfg = core.Config8Wide()
		}
		cfg.MaxInsts = *insts
		cfg.Warmup = *warmup
		mutate(&cfg)
		m, err := core.New(cfg, gen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := m.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return st
	}

	switch *what {
	case "tokens":
		fmt.Printf("Token pool sweep (%s, TkSel): coverage and IPC vs pool size\n", *bench)
		tb := stats.NewTable("tokens", "coverage", "IPC", "reinserts")
		for _, n := range []int{2, 4, 8, 16, 24, 32, 48, 64} {
			st := run(func(c *core.Config) { c.Scheme = core.TkSel; c.Tokens = n })
			tb.AddRow(fmt.Sprintf("%d", n), st.TokenCoverage(), st.IPC(), fmt.Sprintf("%d", st.ReinsertEvents))
		}
		fmt.Print(tb.String())
	case "depth":
		fmt.Printf("Pipeline-depth sweep (%s, %v): scheduling miss cost vs schedule-to-execute distance\n", *bench, scheme)
		tb := stats.NewTable("schedToExec", "propDist", "IPC", "replay%")
		for _, d := range []int{2, 3, 5, 8, 12, 16} {
			st := run(func(c *core.Config) { c.Scheme = scheme; c.SchedToExec = d })
			tb.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", d+1), st.IPC(),
				fmt.Sprintf("%.2f", 100*st.ReplayRate()))
		}
		fmt.Print(tb.String())
	case "predictor":
		fmt.Printf("Predictor-size sweep (%s, TkSel): coverage vs table entries\n", *bench)
		tb := stats.NewTable("entries", "coverage", "IPC")
		for _, n := range []int{256, 1024, 4096, 16384} {
			st := run(func(c *core.Config) { c.Scheme = core.TkSel; c.SMPred.Entries = n })
			tb.AddRow(fmt.Sprintf("%d", n), st.TokenCoverage(), st.IPC())
		}
		fmt.Print(tb.String())
	case "window":
		fmt.Printf("Window sweep (%s, %v): IPC vs issue-queue size\n", *bench, scheme)
		tb := stats.NewTable("IQ", "ROB", "IPC", "miss%")
		for _, iq := range []int{16, 32, 64, 128, 256} {
			st := run(func(c *core.Config) {
				c.Scheme = scheme
				c.IQSize = iq
				c.ROBSize = iq * 2
				c.LSQSize = iq
			})
			tb.AddRow(fmt.Sprintf("%d", iq), fmt.Sprintf("%d", iq*2), st.IPC(),
				fmt.Sprintf("%.2f", 100*st.LoadMissRate()))
		}
		fmt.Print(tb.String())
	case "rq":
		fmt.Printf("Replay-queue model (Figure 4b) vs issue-queue model (%s, %v) across IQ sizes\n", *bench, scheme)
		tb := stats.NewTable("IQ", "IPC iq-model", "IPC rq-model", "blind RQ replays")
		for _, iq := range []int{12, 24, 48, 96} {
			a := run(func(c *core.Config) { c.Scheme = scheme; c.IQSize = iq })
			b := run(func(c *core.Config) { c.Scheme = scheme; c.IQSize = iq; c.ReplayQueue = true })
			tb.AddRow(fmt.Sprintf("%d", iq), a.IPC(), b.IPC(), fmt.Sprintf("%d", b.RQReplays))
		}
		fmt.Print(tb.String())
	case "vp":
		fmt.Printf("Load value prediction (%s): speedup and recovery traffic per scheme\n", *bench)
		tb := stats.NewTable("scheme", "IPC base", "IPC +VP", "mispredicts", "killed insts")
		for _, s := range []core.Scheme{core.IDSel, core.TkSel, core.ReInsert} {
			a := run(func(c *core.Config) { c.Scheme = s })
			b := run(func(c *core.Config) { c.Scheme = s; c.ValuePrediction = true })
			tb.AddRow(s.String(), a.IPC(), b.IPC(),
				fmt.Sprintf("%d", b.ValueMispredicts), fmt.Sprintf("%d", b.ValueKilledInsts))
		}
		fmt.Print(tb.String())
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *what)
		os.Exit(2)
	}
}
