// Command sweep runs the ablation studies around the paper's design
// choices: token pool size (Table 6 sensitivity), scheduling-miss
// predictor size (Figure 9 sensitivity), pipeline depth
// (propagation-distance scaling, §3.5), window size, the Figure 4b
// replay-queue model, and load value prediction.
//
// All sweeps of one invocation share a single batch engine, so their
// simulations run in parallel and points that denote the same machine
// (a sweep's stock-configuration point, or a point shared between two
// sweeps) simulate once.
//
// Usage:
//
//	sweep -what tokens -bench mcf
//	sweep -what depth,window -bench gcc -scheme NonSel
//	sweep -what rq -journal rq.jsonl
//	sweep -what tokens -remote http://localhost:8080 -json
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"flag"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simflag"
	"repro/internal/stats"
)

// sweep is one ablation study: the specs it needs and how to render
// their results (outs is in spec order).
type sweep struct {
	name  string
	specs func(f *simflag.Sim, scheme core.Scheme) []sim.Spec
	print func(f *simflag.Sim, scheme core.Scheme, outs []*sim.RunOut)
}

// rqScheme clamps the flag scheme to one the replay-queue model
// supports (PosSel/IDSel/NonSel/DSel), falling back to the paper's
// PosSel baseline otherwise.
func rqScheme(s core.Scheme) core.Scheme {
	switch s {
	case core.PosSel, core.IDSel, core.NonSel, core.DSel:
		return s
	}
	return core.PosSel
}

var tokenSizes = []int{2, 4, 8, 16, 24, 32, 48, 64}
var depths = []int{2, 3, 5, 8, 12, 16}
var predSizes = []int{256, 1024, 4096, 16384}
var windowIQs = []int{16, 32, 64, 128, 256}
var rqIQs = []int{12, 24, 48, 96}
var vpSchemes = []core.Scheme{core.IDSel, core.TkSel, core.ReInsert}

var sweeps = []sweep{
	{
		name: "tokens",
		specs: func(f *simflag.Sim, _ core.Scheme) []sim.Spec {
			var s []sim.Spec
			for _, n := range tokenSizes {
				s = append(s, sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: core.TkSel,
					Over: sim.Overrides{Tokens: n}})
			}
			return s
		},
		print: func(f *simflag.Sim, _ core.Scheme, outs []*sim.RunOut) {
			fmt.Printf("Token pool sweep (%s, TkSel): coverage and IPC vs pool size\n", f.Bench)
			tb := stats.NewTable("tokens", "coverage", "IPC", "reinserts")
			for i, n := range tokenSizes {
				st := outs[i].Stats
				tb.AddRow(fmt.Sprintf("%d", n), st.TokenCoverage(), st.IPC(),
					fmt.Sprintf("%d", st.ReinsertEvents))
			}
			fmt.Print(tb.String())
		},
	},
	{
		name: "depth",
		specs: func(f *simflag.Sim, scheme core.Scheme) []sim.Spec {
			var s []sim.Spec
			for _, d := range depths {
				s = append(s, sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: scheme,
					Over: sim.Overrides{SchedToExec: d}})
			}
			return s
		},
		print: func(f *simflag.Sim, scheme core.Scheme, outs []*sim.RunOut) {
			fmt.Printf("Pipeline-depth sweep (%s, %v): scheduling miss cost vs schedule-to-execute distance\n",
				f.Bench, scheme)
			tb := stats.NewTable("schedToExec", "propDist", "IPC", "replay%")
			for i, d := range depths {
				st := outs[i].Stats
				tb.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", d+1), st.IPC(),
					fmt.Sprintf("%.2f", 100*st.ReplayRate()))
			}
			fmt.Print(tb.String())
		},
	},
	{
		name: "predictor",
		specs: func(f *simflag.Sim, _ core.Scheme) []sim.Spec {
			var s []sim.Spec
			for _, n := range predSizes {
				s = append(s, sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: core.TkSel,
					Over: sim.Overrides{PredEntries: n}})
			}
			return s
		},
		print: func(f *simflag.Sim, _ core.Scheme, outs []*sim.RunOut) {
			fmt.Printf("Predictor-size sweep (%s, TkSel): coverage vs table entries\n", f.Bench)
			tb := stats.NewTable("entries", "coverage", "IPC")
			for i, n := range predSizes {
				st := outs[i].Stats
				tb.AddRow(fmt.Sprintf("%d", n), st.TokenCoverage(), st.IPC())
			}
			fmt.Print(tb.String())
		},
	},
	{
		name: "window",
		specs: func(f *simflag.Sim, scheme core.Scheme) []sim.Spec {
			var s []sim.Spec
			for _, iq := range windowIQs {
				s = append(s, sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: scheme,
					Over: sim.Overrides{IQSize: iq, ROBSize: iq * 2, LSQSize: iq}})
			}
			return s
		},
		print: func(f *simflag.Sim, scheme core.Scheme, outs []*sim.RunOut) {
			fmt.Printf("Window sweep (%s, %v): IPC vs issue-queue size\n", f.Bench, scheme)
			tb := stats.NewTable("IQ", "ROB", "IPC", "miss%")
			for i, iq := range windowIQs {
				st := outs[i].Stats
				tb.AddRow(fmt.Sprintf("%d", iq), fmt.Sprintf("%d", iq*2), st.IPC(),
					fmt.Sprintf("%.2f", 100*st.LoadMissRate()))
			}
			fmt.Print(tb.String())
		},
	},
	{
		name: "rq",
		specs: func(f *simflag.Sim, scheme core.Scheme) []sim.Spec {
			scheme = rqScheme(scheme)
			var s []sim.Spec
			for _, iq := range rqIQs {
				s = append(s,
					sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: scheme,
						Over: sim.Overrides{IQSize: iq}},
					sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: scheme,
						Over: sim.Overrides{IQSize: iq, ReplayQueue: true}})
			}
			return s
		},
		print: func(f *simflag.Sim, scheme core.Scheme, outs []*sim.RunOut) {
			scheme = rqScheme(scheme)
			fmt.Printf("Replay-queue model (Figure 4b) vs issue-queue model (%s, %v) across IQ sizes\n",
				f.Bench, scheme)
			tb := stats.NewTable("IQ", "IPC iq-model", "IPC rq-model", "blind RQ replays")
			for i, iq := range rqIQs {
				a, b := outs[2*i].Stats, outs[2*i+1].Stats
				tb.AddRow(fmt.Sprintf("%d", iq), a.IPC(), b.IPC(), fmt.Sprintf("%d", b.RQReplays))
			}
			fmt.Print(tb.String())
		},
	},
	{
		name: "vp",
		specs: func(f *simflag.Sim, _ core.Scheme) []sim.Spec {
			var s []sim.Spec
			for _, sch := range vpSchemes {
				s = append(s,
					sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: sch},
					sim.Spec{Bench: f.Bench, Wide8: f.Wide8, Scheme: sch,
						Over: sim.Overrides{ValuePrediction: true}})
			}
			return s
		},
		print: func(f *simflag.Sim, _ core.Scheme, outs []*sim.RunOut) {
			fmt.Printf("Load value prediction (%s): speedup and recovery traffic per scheme\n", f.Bench)
			tb := stats.NewTable("scheme", "IPC base", "IPC +VP", "mispredicts", "killed insts")
			for i, sch := range vpSchemes {
				a, b := outs[2*i].Stats, outs[2*i+1].Stats
				tb.AddRow(sch.String(), a.IPC(), b.IPC(),
					fmt.Sprintf("%d", b.ValueMispredicts), fmt.Sprintf("%d", b.ValueKilledInsts))
			}
			fmt.Print(tb.String())
		},
	},
}

func main() {
	what := flag.String("what", "tokens", "sweeps to run (comma-separated): tokens, depth, predictor, window, rq, vp")
	jsonOut := flag.Bool("json", false, "emit the results as v1 wire JSON (api.SweepResponse) instead of tables")
	f := simflag.New()
	f.Bench = "mcf"
	f.SchemeName = "TkSel"
	f.Wide8 = true
	f.Insts = 100_000
	f.RegisterBench(flag.CommandLine)
	f.RegisterMachine(flag.CommandLine)
	f.RegisterLength(flag.CommandLine)
	f.RegisterSeed(flag.CommandLine)
	f.RegisterBatch(flag.CommandLine)
	f.RegisterCheck(flag.CommandLine)
	f.RegisterRemote(flag.CommandLine)
	flag.Parse()

	if f.HandleListSchemes(os.Stdout) {
		return
	}
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scheme, _ := f.Scheme()

	var todo []sweep
	for _, name := range strings.Split(*what, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, sw := range sweeps {
			if sw.name == name {
				todo = append(todo, sw)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown sweep %q\n", name)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	status := simflag.NewStatus(os.Stderr, f.Progress)
	opts := f.Options()
	opts.OnProgress = status.Update
	runner, stopRunner := f.Runner(ctx, opts)

	// One RunAll over every sweep's specs: points run in parallel and
	// duplicates across sweeps simulate once (locally in the engine's
	// memoization, remotely in the server's store and singleflight).
	var all []sim.Spec
	for _, sw := range todo {
		all = append(all, sw.specs(f, scheme)...)
	}
	outs, err := runner.RunAll(ctx, all)
	stopRunner()
	status.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if ctx.Err() != nil && f.Journal != "" && f.Remote == "" {
			fmt.Fprintf(os.Stderr, "interrupted; rerun with -journal %s to resume\n", f.Journal)
		}
		os.Exit(1)
	}

	if *jsonOut {
		resp := api.SweepResponse{API: api.Version, Results: make([]*api.Result, len(outs))}
		for i, out := range outs {
			resp.Results[i] = api.FromRunOut(out, opts.Insts, opts.Warmup, opts.Seed)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	i := 0
	for _, sw := range todo {
		n := len(sw.specs(f, scheme))
		sw.print(f, scheme, outs[i:i+n])
		i += n
	}

	if eng, ok := runner.(*sim.Engine); ok {
		snap := eng.Snapshot()
		fmt.Fprintf(os.Stderr, "%d spec requests, %d distinct simulations cached, %d resumed from journal\n",
			snap.Queued, eng.Cached(), snap.Resumed)
	}
}
