// Command simd serves simulations over HTTP: the v1 wire API
// (internal/api) in front of the batch engine, with a
// content-addressed result store so a spec ever simulates once, a
// singleflight collapsing concurrent duplicate submissions, and SSE
// progress streaming. With -shards N it runs N worker processes
// pulling from a shared filesystem queue instead of simulating
// in-process.
//
// Usage:
//
//	simd -addr localhost:8080 -data simd-data
//	simd -addr localhost:8080 -data simd-data -shards 4
//	simd -loadtest 1000 -requests 5 -base http://localhost:8080 -bench mcf -scheme TkSel
//
// The same binary is its own shard worker (-worker K, spawned by the
// coordinator) and its own load generator (-loadtest N).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/simflag"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	data := flag.String("data", "simd-data", "data directory (store, queue, journals)")
	shards := flag.Int("shards", 0, "worker processes pulling from a shared queue (0 = simulate in-process)")
	worker := flag.Int("worker", -1, "run as shard worker K (spawned by the coordinator)")
	par := flag.Int("par", 0, "max concurrent simulations (0 = NumCPU, split across shards)")
	loadClients := flag.Int("loadtest", 0, "run a load test with N concurrent clients against -base, print the report, exit")
	loadReqs := flag.Int("requests", 5, "requests per client under -loadtest")
	base := flag.String("base", "http://localhost:8080", "server URL for -loadtest")
	f := simflag.New()
	f.RegisterBench(flag.CommandLine)
	f.RegisterMachine(flag.CommandLine)
	f.RegisterLength(flag.CommandLine)
	f.RegisterSeed(flag.CommandLine)
	f.RegisterCheck(flag.CommandLine)
	flag.Parse()

	if f.HandleListSchemes(os.Stdout) {
		return
	}
	if err := f.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := f.Options()
	opts.Parallelism = *par
	switch {
	case *loadClients > 0:
		runLoadtest(ctx, *base, *loadClients, *loadReqs, f)
	case *worker >= 0:
		if err := serve.RunWorker(ctx, *data, *worker, opts); err != nil {
			log.Fatalf("simd: worker %d: %v", *worker, err)
		}
	default:
		runCoordinator(ctx, *addr, *data, *shards, opts, f)
	}
}

// runCoordinator serves the v1 API, either over an in-process engine
// (shards == 0) or over a queue drained by spawned worker processes.
func runCoordinator(ctx context.Context, addr, data string, shards int, opts sim.Options, f *simflag.Sim) {
	store, err := serve.OpenStore(filepath.Join(data, "store"))
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	cfg := serve.Config{Store: store, Shards: shards, Logf: log.Printf}

	var workers []*exec.Cmd
	if shards == 0 {
		opts.Journal = filepath.Join(data, "engine.jsonl")
		eng := sim.NewEngine(opts)
		defer eng.Close()
		cfg.Engine = eng
	} else {
		queue, err := serve.OpenQueue(filepath.Join(data, "queue"))
		if err != nil {
			log.Fatalf("simd: %v", err)
		}
		if n, err := queue.Recover(); err != nil {
			log.Fatalf("simd: %v", err)
		} else if n > 0 {
			log.Printf("simd: requeued %d claims from dead workers", n)
		}
		if n, err := serve.MergeShardJournals(data, store, opts); err != nil {
			log.Fatalf("simd: %v", err)
		} else if n > 0 {
			log.Printf("simd: merged %d results from shard journals", n)
		}
		cfg.Queue = queue
		cfg.Opts = opts
		workers = spawnWorkers(ctx, data, shards, opts, f)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	hs := &http.Server{Addr: addr, Handler: srv}
	go func() {
		<-ctx.Done()
		srv.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()
	log.Printf("simd: serving %s on http://%s (data %s, shards %d)", api.Version, addr, data, shards)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("simd: %v", err)
	}
	for _, w := range workers {
		w.Wait()
	}
}

// spawnWorkers starts one simd -worker process per shard, splitting
// the machine's cores between them. The workers share the
// coordinator's context: interrupting simd shuts the whole tree down.
func spawnWorkers(ctx context.Context, data string, shards int, opts sim.Options, f *simflag.Sim) []*exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	cores := opts.Parallelism
	if cores == 0 {
		cores = runtime.NumCPU()
	}
	perWorker := max(1, cores/shards)
	var workers []*exec.Cmd
	for k := 0; k < shards; k++ {
		cmd := exec.CommandContext(ctx, exe,
			"-worker", strconv.Itoa(k),
			"-data", data,
			"-par", strconv.Itoa(perWorker),
			"-insts", strconv.FormatInt(opts.Insts, 10),
			"-warmup", strconv.FormatInt(opts.Warmup, 10),
			"-seed", strconv.FormatInt(opts.Seed, 10),
			"-check", f.CheckName,
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("simd: starting worker %d: %v", k, err)
		}
		workers = append(workers, cmd)
	}
	log.Printf("simd: started %d shard workers (%d-way parallel each)", shards, perWorker)
	return workers
}

// runLoadtest hammers a running server with the flag-selected spec and
// prints the cache-behaviour report.
func runLoadtest(ctx context.Context, base string, clients, reqs int, f *simflag.Sim) {
	scheme, _ := f.Scheme()
	check, _ := f.Check()
	spec := api.FromSimSpec(sim.Spec{
		Bench: f.Bench, Wide8: f.Wide8, Scheme: scheme,
		Over: sim.Overrides{Check: check},
	})
	rep, err := serve.LoadTest(ctx, serve.LoadConfig{
		Base:    base,
		Clients: clients, PerClient: reqs,
		Specs: []api.Spec{spec},
		Insts: f.Insts, Warmup: f.Warmup, Seed: f.Seed,
	})
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	fmt.Println(rep)
	if !rep.Ok() {
		os.Exit(1)
	}
}
