// Command repolint runs the repository's static invariant suite: the
// determinism contract of the simulator packages, the zero-allocation
// hot path (proved from the compiler's escape analysis), replay-policy
// and checker registry conformance, stats completeness, and context
// hygiene in the batch engine. Built on the standard library's
// go/parser, go/ast and go/types only — no external analysis
// framework, so the gate needs nothing but the Go toolchain.
//
// Usage:
//
//	go run ./cmd/repolint [-json] [packages]
//
// Packages default to ./... (the whole module). Exit status is 0 when
// the tree is clean, 1 when findings were reported, 2 on driver
// errors. A finding can be waived in place with
//
//	//lint:allow <rule> <reason>
//
// on the offending line or the line above — except for the
// determinism and escape rules, whose waivers are themselves findings
// (see internal/lint and DESIGN.md §11).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(wd, patterns, lint.Default(moduleOf(wd)))
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// moduleOf resolves the module path the analyzers scope their rules
// by; errors surface later in lint.Run with better context.
func moduleOf(dir string) string {
	module, err := lint.ModulePath(dir)
	if err != nil {
		fatal(err)
	}
	return module
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
