// Command repolint runs the repository's static invariant suite —
// eight analyzers: the determinism contract of the simulator packages,
// the zero-allocation hot path (proved from the compiler's escape
// analysis), replay-policy and checker registry conformance, stats
// completeness, context hygiene in the batch engine, snapshot
// completeness over every checkpoint pair, wire-API stability against
// the committed manifest, and concurrency discipline over the threaded
// packages. Built on the standard library's go/parser, go/ast and
// go/types only — no external analysis framework, so the gate needs
// nothing but the Go toolchain.
//
// Usage:
//
//	go run ./cmd/repolint [-json] [-waivers] [-write-api-manifest] [packages]
//
// Packages default to ./... (the whole module). Exit status is 0 when
// the tree is clean, 1 when findings were reported, 2 on driver
// errors. A finding can be waived in place with
//
//	//lint:allow(<rule>): <reason>
//
// on the offending line or the line above — except for the
// determinism, escape, snapshot and wireapi rules, whose waivers are
// themselves findings (see internal/lint and DESIGN.md §11, §16).
//
// -waivers prints the repo-wide waiver inventory (every well-formed
// allow pragma with its reason) instead of running the analyzers; CI
// publishes it as an artifact. -write-api-manifest regenerates
// internal/lint/api_manifest.json from the live wire API — the
// sanctioned way to admit a wire-surface addition.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings (or waivers) as a JSON array")
	waiversOut := flag.Bool("waivers", false, "print the repo-wide waiver inventory instead of findings")
	writeManifest := flag.Bool("write-api-manifest", false, "regenerate internal/lint/api_manifest.json from the live wire API")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-json] [-waivers] [-write-api-manifest] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	if *writeManifest {
		path, err := lint.WriteAPIManifest(wd)
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
		return
	}

	if *waiversOut {
		waivers, err := lint.Waivers(wd, patterns)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if waivers == nil {
				waivers = []lint.Waiver{}
			}
			emitJSON(waivers)
		} else {
			for _, w := range waivers {
				fmt.Println(w)
			}
			fmt.Fprintf(os.Stderr, "repolint: %d waiver(s)\n", len(waivers))
		}
		return
	}

	findings, err := lint.Run(wd, patterns, lint.Default(moduleOf(wd)))
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		emitJSON(findings)
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// moduleOf resolves the module path the analyzers scope their rules
// by; errors surface later in lint.Run with better context.
func moduleOf(dir string) string {
	module, err := lint.ModulePath(dir)
	if err != nil {
		fatal(err)
	}
	return module
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
