package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/api"
)

// Queue is the filesystem work queue of shard mode: the coordinator
// enqueues one request file per content-address key under pending/,
// and each worker process claims work by atomically renaming a file
// into claimed/ — rename is the mutual exclusion, so no locks, no
// sockets, and no shared memory cross the process boundary. Results
// travel back through the content-addressed store the processes
// already share.
//
// Layout under the queue directory:
//
//	pending/<key>.json        — requests no worker has claimed
//	claimed/<shard>-<key>.json — requests a worker is executing
type Queue struct {
	dir string
}

// OpenQueue opens (creating if needed) a queue rooted at dir.
func OpenQueue(dir string) (*Queue, error) {
	for _, d := range []string{filepath.Join(dir, "pending"), filepath.Join(dir, "claimed")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: queue: %w", err)
		}
	}
	return &Queue{dir: dir}, nil
}

// Enqueue publishes one request under its key. Idempotent: a pending
// entry for the key is left alone (the coordinator's singleflight
// already collapses concurrent submissions, so a duplicate here means
// a retry after a worker claimed — the worker's result will satisfy
// both). The write is tmp+rename atomic so a worker never claims a
// half-written request.
func (q *Queue) Enqueue(key string, req api.RunRequest) error {
	dst := q.pendingPath(key)
	if _, err := os.Stat(dst); err == nil {
		return nil
	}
	b, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("serve: queue: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(q.dir, "pending"), ".enq-*")
	if err != nil {
		return fmt.Errorf("serve: queue: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: queue: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: queue: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: queue: %w", err)
	}
	return nil
}

// Claim atomically takes the oldest pending request for shard. A lost
// rename race (another shard claimed first) just moves on to the next
// entry; ok is false when nothing is pending.
func (q *Queue) Claim(shard int) (key string, req api.RunRequest, ok bool, err error) {
	pending := filepath.Join(q.dir, "pending")
	entries, err := os.ReadDir(pending)
	if err != nil {
		return "", api.RunRequest{}, false, fmt.Errorf("serve: queue: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		k, isReq := strings.CutSuffix(name, ".json")
		if !isReq || !api.ValidKey(k) {
			continue
		}
		dst := q.claimPath(shard, k)
		if os.Rename(filepath.Join(pending, name), dst) != nil {
			continue // another shard won this entry
		}
		b, rerr := os.ReadFile(dst)
		if rerr != nil {
			os.Remove(dst)
			continue
		}
		var r api.RunRequest
		if json.Unmarshal(b, &r) != nil {
			os.Remove(dst)
			continue
		}
		return k, r, true, nil
	}
	return "", api.RunRequest{}, false, nil
}

// Done releases shard's claim on key after its result (or failure
// marker) is in the store.
func (q *Queue) Done(shard int, key string) error {
	return os.Remove(q.claimPath(shard, key))
}

// Requeue returns shard's claim on key to pending — a worker shutting
// down mid-run hands the work to whoever is still alive.
func (q *Queue) Requeue(shard int, key string) error {
	return os.Rename(q.claimPath(shard, key), q.pendingPath(key))
}

// Recover moves every claim (from any shard) back to pending. The
// coordinator calls it at startup so work claimed by workers that
// crashed is not stranded.
func (q *Queue) Recover() (int, error) {
	claimed := filepath.Join(q.dir, "claimed")
	entries, err := os.ReadDir(claimed)
	if err != nil {
		return 0, fmt.Errorf("serve: queue: %w", err)
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		_, key, found := strings.Cut(name, "-")
		key, isReq := strings.CutSuffix(key, ".json")
		if !found || !isReq || !api.ValidKey(key) {
			continue
		}
		if err := os.Rename(filepath.Join(claimed, name), q.pendingPath(key)); err != nil {
			return n, fmt.Errorf("serve: queue: %w", err)
		}
		n++
	}
	return n, nil
}

func (q *Queue) pendingPath(key string) string {
	return filepath.Join(q.dir, "pending", key+".json")
}

func (q *Queue) claimPath(shard int, key string) string {
	return filepath.Join(q.dir, "claimed", fmt.Sprintf("%d-%s.json", shard, key))
}
