package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/api"
	"repro/internal/sim"
)

// workerPoll is how often an idle worker re-checks the pending
// directory for work.
const workerPoll = 10 * time.Millisecond

// RunWorker is the body of one shard worker: claim a request from the
// shared queue, simulate it on a private engine, publish the result
// (or a failure marker) to the shared store, release the claim,
// repeat. It returns nil on a clean ctx-driven shutdown — any claim
// interrupted mid-run is requeued for a surviving worker first.
//
// Each worker journals its completed runs to
// <dataDir>/shards/shard-<shard>.jsonl; the coordinator folds those
// into the store at startup (MergeShardJournals), which is what makes
// a worker crash between journal append and store publish lose no
// work.
func RunWorker(ctx context.Context, dataDir string, shard int, opts sim.Options) error {
	store, err := OpenStore(filepath.Join(dataDir, "store"))
	if err != nil {
		return err
	}
	queue, err := OpenQueue(filepath.Join(dataDir, "queue"))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "shards"), 0o755); err != nil {
		return fmt.Errorf("serve: worker %d: %w", shard, err)
	}
	opts.Journal = filepath.Join(dataDir, "shards", fmt.Sprintf("shard-%d.jsonl", shard))
	engine := sim.NewEngine(opts)
	defer engine.Close()
	eopts := engine.Options()
	for {
		key, req, ok, err := queue.Claim(shard)
		if err != nil {
			return err
		}
		if !ok {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(workerPoll):
			}
			continue
		}
		if err := workOne(ctx, engine, store, key, req, eopts); err != nil {
			// Canceled mid-run: hand the claim back and shut down.
			queue.Requeue(shard, key)
			return nil
		}
		queue.Done(shard, key)
	}
}

// workOne executes one claimed request to a terminal state: a stored
// result, or a stored failure marker. The only non-nil return is
// cancellation, which is not terminal — the claim must be requeued.
func workOne(ctx context.Context, engine *sim.Engine, store *Store,
	key string, req api.RunRequest, opts sim.Options) error {
	spec, err := req.Spec.ToSim()
	var out *sim.RunOut
	if err == nil {
		out, err = engine.Run(ctx, spec)
	}
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		store.PutFailure(key, err.Error())
		return nil
	}
	res := api.FromRunOut(out, opts.Insts, opts.Warmup, opts.Seed)
	if res.Key != key {
		// The coordinator and this worker disagree on content
		// addressing — run-length flag skew. Surface it instead of
		// storing under a name nobody will ask for.
		store.PutFailure(key, fmt.Sprintf(
			"key skew: worker computed %s for queued %s (run-length flags must match the coordinator)",
			res.Key, key))
		return nil
	}
	b, err := json.Marshal(res)
	if err != nil {
		store.PutFailure(key, err.Error())
		return nil
	}
	if err := store.Put(key, b); err != nil {
		store.PutFailure(key, err.Error())
	}
	return nil
}

// MergeShardJournals folds every per-shard journal under dataDir into
// the store, returning how many results were added. The coordinator
// runs it at startup: a worker that crashed after its journal append
// but before its store publish still contributes its run, and a store
// wiped for space rebuilds from the journals.
func MergeShardJournals(dataDir string, store *Store, opts sim.Options) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dataDir, "shards", "shard-*.jsonl"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	added := 0
	for _, p := range paths {
		runs, _, err := sim.ReadJournal(p, opts)
		if err != nil {
			return added, fmt.Errorf("serve: merging %s: %w", p, err)
		}
		for _, out := range runs {
			key := api.Key(out.Spec, opts.Insts, opts.Warmup, opts.Seed)
			if _, ok := store.Get(key); ok {
				continue
			}
			res := api.FromRunOut(out, opts.Insts, opts.Warmup, opts.Seed)
			b, merr := json.Marshal(res)
			if merr != nil {
				return added, fmt.Errorf("serve: merging %s: %w", p, merr)
			}
			if err := store.Put(key, b); err != nil {
				return added, err
			}
			added++
		}
	}
	return added, nil
}
