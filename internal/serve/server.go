package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// maxSweepSpecs bounds one sweep submission; the full paper matrix is
// 168 runs and the 972-run validation sweep is the largest batch the
// repo itself issues, so the cap is generous without letting a single
// request queue unbounded work.
const maxSweepSpecs = 4096

// Config assembles a Server. Exactly one of Engine (in-process
// execution) and Queue (shard workers execute) must be set.
type Config struct {
	// Store is the content-addressed result store. Required.
	Store *Store
	// Engine executes submissions in-process when set.
	Engine *sim.Engine
	// Queue hands submissions to shard worker processes when set.
	Queue *Queue
	// Opts pins the server's run lengths (Insts, Warmup, Seed) and, in
	// queue mode, the normalization defaults. With an Engine the
	// engine's own effective options are used and Opts is ignored.
	Opts sim.Options
	// Shards is the worker-process count reported by /v1/info; 0 means
	// the in-process engine.
	Shards int
	// SSEInterval is the progress-event cadence; 0 takes 100ms.
	SSEInterval time.Duration
	// PollInterval is how often queue mode re-checks the store for a
	// worker's result; 0 takes 10ms.
	PollInterval time.Duration
	// Logf, when set, receives one line per noteworthy server event.
	Logf func(format string, args ...any)
}

// flight is the service-level duplicate-suppression record: the first
// submission of a key becomes the leader and computes; concurrent
// submissions of the same key wait on ready and share the leader's
// bytes. This sits above the engine's own per-Spec singleflight
// because in queue mode there is no engine in this process — the
// collapse must happen before the filesystem queue.
type flight struct {
	ready chan struct{}
	body  []byte
	err   error
}

// Server is the simd HTTP server: the v1 wire API over a store, a
// singleflight, and an execution tier (in-process engine or shard
// queue). It implements http.Handler.
type Server struct {
	store     *Store
	engine    *sim.Engine
	queue     *Queue
	opts      sim.Options
	shards    int
	sseEvery  time.Duration
	pollEvery time.Duration
	logf      func(format string, args ...any)
	start     time.Time
	mux       *http.ServeMux

	mu      sync.Mutex
	flights map[string]*flight

	// Request-level counters; the engine-level ones (resumed, retried,
	// warmed, insts) are read live from the engine when there is one.
	queued     atomic.Int64
	running    atomic.Int64
	done       atomic.Int64
	failed     atomic.Int64
	cacheHits  atomic.Int64
	collapsed  atomic.Int64
	engineRuns atomic.Int64

	closeOnce sync.Once
	quit      chan struct{}
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("serve: Config.Store is required")
	}
	if (cfg.Engine == nil) == (cfg.Queue == nil) {
		return nil, errors.New("serve: exactly one of Config.Engine and Config.Queue must be set")
	}
	opts := cfg.Opts
	if cfg.Engine != nil {
		opts = cfg.Engine.Options()
	}
	if opts.Insts <= 0 || opts.Warmup <= 0 || opts.Seed <= 0 {
		return nil, errors.New("serve: Config.Opts must pin Insts, Warmup and Seed")
	}
	s := &Server{
		store:     cfg.Store,
		engine:    cfg.Engine,
		queue:     cfg.Queue,
		opts:      opts,
		shards:    cfg.Shards,
		sseEvery:  cfg.SSEInterval,
		pollEvery: cfg.PollInterval,
		logf:      cfg.Logf,
		start:     time.Now(),
		mux:       http.NewServeMux(),
		flights:   make(map[string]*flight),
		quit:      make(chan struct{}),
	}
	if s.sseEvery <= 0 {
		s.sseEvery = 100 * time.Millisecond
	}
	if s.pollEvery <= 0 {
		s.pollEvery = 10 * time.Millisecond
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.mux.HandleFunc("POST "+api.PathPrefix+"/run", s.handleRun)
	s.mux.HandleFunc("POST "+api.PathPrefix+"/sweep", s.handleSweep)
	s.mux.HandleFunc("GET "+api.PathPrefix+"/result/{key}", s.handleResult)
	s.mux.HandleFunc("GET "+api.PathPrefix+"/progress", s.handleProgress)
	s.mux.HandleFunc("GET "+api.PathPrefix+"/info", s.handleInfo)
	s.mux.HandleFunc("GET "+api.PathPrefix+"/healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP dispatches to the v1 routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close releases every blocked handler (singleflight followers, queue
// polls, SSE streams). Safe to call more than once; in-flight requests
// finish with an error rather than hanging.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// answer resolves one normalized spec through the tiers: store hit,
// singleflight follow, or a leader computation (engine run or queue
// round-trip). tier reports which ("hit", "collapsed", "miss") for the
// X-Cache response header and the load test's accounting.
func (s *Server) answer(ctx context.Context, spec sim.Spec) (body []byte, tier string, err error) {
	key := api.Key(spec, s.opts.Insts, s.opts.Warmup, s.opts.Seed)
	for {
		if b, ok := s.store.Get(key); ok {
			s.cacheHits.Add(1)
			return b, "hit", nil
		}
		s.mu.Lock()
		if fl, ok := s.flights[key]; ok {
			s.mu.Unlock()
			s.collapsed.Add(1)
			select {
			case <-fl.ready:
			case <-ctx.Done():
				return nil, "", fmt.Errorf("serve: %s: %w", key, ctx.Err())
			case <-s.quit:
				return nil, "", errors.New("serve: server closed")
			}
			if fl.err == nil {
				return fl.body, "collapsed", nil
			}
			// The leader may have failed only because its own request was
			// canceled; if ours is live, take over the key.
			if isCtxErr(fl.err) && ctx.Err() == nil {
				continue
			}
			return nil, "", fl.err
		}
		fl := &flight{ready: make(chan struct{})}
		s.flights[key] = fl
		s.mu.Unlock()

		b, cerr := s.compute(ctx, key, spec)
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		fl.body, fl.err = b, cerr
		close(fl.ready)
		return b, "miss", cerr
	}
}

// compute executes one key as singleflight leader: in-process through
// the engine, or by enqueueing for a shard worker and polling the
// shared store for its answer.
func (s *Server) compute(ctx context.Context, key string, spec sim.Spec) ([]byte, error) {
	s.engineRuns.Add(1)
	s.running.Add(1)
	defer s.running.Add(-1)
	if s.engine != nil {
		out, err := s.engine.Run(ctx, spec)
		if err != nil {
			return nil, err
		}
		res := api.FromRunOut(out, s.opts.Insts, s.opts.Warmup, s.opts.Seed)
		b, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", key, err)
		}
		if err := s.store.Put(key, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	req := api.RunRequest{
		Spec:   api.FromSimSpec(spec),
		Insts:  s.opts.Insts,
		Warmup: s.opts.Warmup,
		Seed:   s.opts.Seed,
	}
	if err := s.queue.Enqueue(key, req); err != nil {
		return nil, err
	}
	tick := time.NewTicker(s.pollEvery)
	defer tick.Stop()
	for {
		if b, ok := s.store.Get(key); ok {
			return b, nil
		}
		if msg, ok := s.store.TakeFailure(key); ok {
			return nil, fmt.Errorf("serve: shard worker: %s", msg)
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: %s: %w", key, ctx.Err())
		case <-s.quit:
			return nil, errors.New("serve: server closed")
		}
	}
}

// parseSpec converts and vets one wire spec: scheme and check level
// resolve, and the benchmark exists in the workload registry — so bad
// submissions are a 400 at the front door, not a failure marker from a
// shard minutes later.
func (s *Server) parseSpec(ws api.Spec) (sim.Spec, error) {
	spec, err := ws.ToSim()
	if err != nil {
		return sim.Spec{}, err
	}
	if _, err := workload.ByName(spec.Bench); err != nil {
		return sim.Spec{}, err
	}
	return s.opts.NormalizeSpec(spec), nil
}

// checkLengths enforces the server's pinned run lengths: zero-valued
// request fields inherit, non-zero ones must match exactly.
func (s *Server) checkLengths(insts, warmup, seed int64) error {
	if insts != 0 && insts != s.opts.Insts {
		return fmt.Errorf("insts %d does not match this server's %d", insts, s.opts.Insts)
	}
	if warmup != 0 && warmup != s.opts.Warmup {
		return fmt.Errorf("warmup %d does not match this server's %d", warmup, s.opts.Warmup)
	}
	if seed != 0 && seed != s.opts.Seed {
		return fmt.Errorf("seed %d does not match this server's %d", seed, s.opts.Seed)
	}
	return nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding run request: %v", err)
		return
	}
	if err := s.checkLengths(req.Insts, req.Warmup, req.Seed); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := s.parseSpec(req.Spec)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.queued.Add(1)
	body, tier, err := s.answer(r.Context(), spec)
	if err != nil {
		s.failed.Add(1)
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.done.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", tier)
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding sweep request: %v", err)
		return
	}
	if err := s.checkLengths(req.Insts, req.Warmup, req.Seed); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Specs) == 0 {
		s.fail(w, http.StatusBadRequest, "empty sweep")
		return
	}
	if len(req.Specs) > maxSweepSpecs {
		s.fail(w, http.StatusBadRequest, "sweep of %d specs exceeds the %d cap", len(req.Specs), maxSweepSpecs)
		return
	}
	resp := api.SweepResponse{API: api.Version, Results: make([]*api.Result, len(req.Specs))}
	var respMu sync.Mutex
	var wg sync.WaitGroup
	for i, ws := range req.Specs {
		spec, err := s.parseSpec(ws)
		if err != nil {
			s.failed.Add(1)
			resp.Errors = append(resp.Errors, api.SweepError{Index: i, Spec: ws, Error: err.Error()})
			continue
		}
		s.queued.Add(1)
		wg.Add(1)
		// One goroutine per spec; actual simulation concurrency is
		// bounded below by the engine's machine pool (or the shard
		// count), and duplicates collapse in the singleflight.
		go func(i int, ws api.Spec, spec sim.Spec) {
			defer wg.Done()
			body, _, err := s.answer(r.Context(), spec)
			if err != nil {
				s.failed.Add(1)
				respMu.Lock()
				resp.Errors = append(resp.Errors, api.SweepError{Index: i, Spec: ws, Error: err.Error()})
				respMu.Unlock()
				return
			}
			s.done.Add(1)
			var res api.Result
			if err := json.Unmarshal(body, &res); err != nil {
				s.failed.Add(1)
				respMu.Lock()
				resp.Errors = append(resp.Errors, api.SweepError{Index: i, Spec: ws, Error: err.Error()})
				respMu.Unlock()
				return
			}
			respMu.Lock()
			resp.Results[i] = &res
			respMu.Unlock()
		}(i, ws, spec)
	}
	wg.Wait()
	sort.Slice(resp.Errors, func(a, b int) bool { return resp.Errors[a].Index < resp.Errors[b].Index })
	s.writeJSON(w, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !api.ValidKey(key) {
		s.fail(w, http.StatusBadRequest, "malformed result key %q", key)
		return
	}
	body, ok := s.store.Get(key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no stored result for %s", key)
		return
	}
	s.cacheHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "hit")
	w.Write(body)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	profiles := workload.All()
	benches := make([]string, len(profiles))
	for i, p := range profiles {
		benches[i] = p.Name
	}
	s.writeJSON(w, api.Info{
		API:          api.Version,
		Insts:        s.opts.Insts,
		Warmup:       s.opts.Warmup,
		Seed:         s.opts.Seed,
		Shards:       s.shards,
		Schemes:      core.SchemeNames(),
		Benches:      benches,
		Bpreds:       bpred.KindNames(),
		Prefetchers:  prefetch.KindNames(),
		StoreEntries: s.store.Len(),
		Progress:     s.progress(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"status":"ok"}`+"\n")
}

// progress assembles the wire progress snapshot: request-level
// counters from the server, simulation-level ones from the in-process
// engine when there is one. In shard mode the engine counters live in
// the workers and read as zero here; their work still shows up in
// engineRuns and the store.
func (s *Server) progress() api.Progress {
	p := api.Progress{
		Queued:     s.queued.Load(),
		Running:    s.running.Load(),
		Done:       s.done.Load(),
		Failed:     s.failed.Load(),
		CacheHits:  s.cacheHits.Load(),
		Collapsed:  s.collapsed.Load(),
		EngineRuns: s.engineRuns.Load(),
		ElapsedMS:  time.Since(s.start).Milliseconds(),
	}
	if s.engine != nil {
		snap := s.engine.Snapshot()
		p.Resumed = snap.Resumed
		p.Retried = snap.Retried
		p.Warmed = snap.Warmed
		p.Insts = snap.Insts
	}
	return p
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("serve: HTTP %d: %s", status, msg)
	b, err := json.Marshal(api.Error{Error: msg})
	if err != nil {
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}
