package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/sim"
)

// testOpts are run lengths small enough that a cold simulation takes
// milliseconds, so the cache tiers — not the simulator — dominate
// every test here.
func testOpts() sim.Options {
	return sim.Options{Insts: 2000, Warmup: 500, Seed: 1, Parallelism: 2}
}

// newEngineServer builds an in-process-engine server over a fresh
// store and hangs an httptest server in front of it.
func newEngineServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(testOpts())
	srv, err := New(Config{Store: store, Engine: eng, SSEInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return srv, ts
}

func postRun(t *testing.T, base string, req api.RunRequest) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+api.PathPrefix+"/run", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestRunColdThenWarm(t *testing.T) {
	_, ts := newEngineServer(t)
	req := api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}}

	resp, cold := postRun(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: HTTP %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("cold run X-Cache = %q, want miss", got)
	}
	var res api.Result
	if err := json.Unmarshal(cold, &res); err != nil {
		t.Fatal(err)
	}
	if res.API != api.Version || !api.ValidKey(res.Key) || res.Stats == nil {
		t.Fatalf("malformed result: %+v", res)
	}

	resp, warm := postRun(t, ts.URL, req)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("warm run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm response bytes differ from cold response")
	}

	// The result is addressable directly, byte-identically.
	get, err := http.Get(ts.URL + api.PathPrefix + "/result/" + res.Key)
	if err != nil {
		t.Fatal(err)
	}
	byKey, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if !bytes.Equal(cold, byKey) {
		t.Error("GET /result/{key} bytes differ from the run response")
	}

	// An equivalent spec — the Table 3 default written out explicitly —
	// normalizes to the same address and must hit.
	explicit := req
	explicit.Spec.Over = &api.Overrides{Check: "off"}
	resp, expBody := postRun(t, ts.URL, explicit)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("normalization-equal spec X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, expBody) {
		t.Error("normalization-equal spec got different bytes")
	}
}

func TestRunRejectsBadSubmissions(t *testing.T) {
	_, ts := newEngineServer(t)
	cases := []struct {
		name string
		req  api.RunRequest
	}{
		{"unknown bench", api.RunRequest{Spec: api.Spec{Bench: "nope", Scheme: "PosSel"}}},
		{"unknown scheme", api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "Bogus"}}},
		{"unknown check", api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel",
			Over: &api.Overrides{Check: "paranoid"}}}},
		{"mismatched insts", api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}, Insts: 999}},
		{"mismatched seed", api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}, Seed: 7}},
	}
	for _, tc := range cases {
		resp, body := postRun(t, ts.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %s", tc.name, body)
		}
	}

	// Matching explicit lengths are accepted.
	o := testOpts()
	resp, body := postRun(t, ts.URL, api.RunRequest{
		Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"},
		Insts: o.Insts, Warmup: o.Warmup, Seed: o.Seed,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("matching lengths: HTTP %d: %s", resp.StatusCode, body)
	}
}

func TestResultEndpoint(t *testing.T) {
	_, ts := newEngineServer(t)
	get := func(key string) int {
		resp, err := http.Get(ts.URL + api.PathPrefix + "/result/" + key)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	missing := api.Key(sim.Spec{Bench: "mcf", Scheme: core.TkSel}, 1, 1, 1)
	if got := get(missing); got != http.StatusNotFound {
		t.Errorf("missing key: HTTP %d, want 404", got)
	}
	if got := get("not-a-key"); got != http.StatusBadRequest {
		t.Errorf("malformed key: HTTP %d, want 400", got)
	}
}

func TestSweep(t *testing.T) {
	_, ts := newEngineServer(t)
	req := api.SweepRequest{Specs: []api.Spec{
		{Bench: "gcc", Scheme: "PosSel"},
		{Bench: "nope", Scheme: "PosSel"},
		{Bench: "gcc", Scheme: "TkSel"},
		{Bench: "gcc", Scheme: "PosSel"}, // duplicate of index 0
	}}
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+api.PathPrefix+"/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", resp.StatusCode, body)
	}
	var sw api.SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 4 {
		t.Fatalf("got %d results, want 4 (aligned with the request)", len(sw.Results))
	}
	if sw.Results[1] != nil {
		t.Error("failed spec should hold a null result slot")
	}
	if sw.Results[0] == nil || sw.Results[2] == nil || sw.Results[3] == nil {
		t.Fatal("valid specs missing results")
	}
	if !reflect.DeepEqual(sw.Results[0], sw.Results[3]) {
		t.Error("duplicate specs in one sweep should produce equal results")
	}
	if len(sw.Errors) != 1 || sw.Errors[0].Index != 1 {
		t.Errorf("errors = %+v, want exactly index 1", sw.Errors)
	}
}

func TestInfoAndHealthz(t *testing.T) {
	_, ts := newEngineServer(t)
	postRun(t, ts.URL, api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}})

	cl := api.NewClient(ts.URL, sim.Options{})
	info, err := cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	o := testOpts()
	if info.API != api.Version || info.Insts != o.Insts || info.Warmup != o.Warmup || info.Seed != o.Seed {
		t.Errorf("info lengths: %+v", info)
	}
	if len(info.Schemes) == 0 || len(info.Benches) == 0 {
		t.Error("info registries empty")
	}
	if info.StoreEntries != 1 {
		t.Errorf("storeEntries = %d, want 1", info.StoreEntries)
	}
	if info.Progress.Done != 1 || info.Progress.EngineRuns != 1 {
		t.Errorf("progress = %+v", info.Progress)
	}

	resp, err := http.Get(ts.URL + api.PathPrefix + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
}

// TestClientIsARunner drives the remote client as a sim.Runner and
// checks it agrees bit-for-bit with a local engine over the same
// specs — the interchangeability the command migration relies on.
func TestClientIsARunner(t *testing.T) {
	_, ts := newEngineServer(t)
	specs := []sim.Spec{
		{Bench: "gcc", Scheme: core.PosSel},
		{Bench: "gcc", Scheme: core.TkSel, Over: sim.Overrides{Tokens: 8}},
		{Bench: "gcc", Scheme: core.PosSel}, // duplicate
	}
	var remote sim.Runner = api.NewClient(ts.URL, sim.Options{})
	got, err := remote.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	local := sim.NewEngine(testOpts())
	want, err := local.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i].Spec != want[i].Spec || !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Errorf("spec %d: remote and local runs disagree", i)
		}
	}
	if !reflect.DeepEqual(got[0], got[2]) {
		t.Error("duplicate specs should return equal results")
	}

	// Per-spec failure shape matches the engine contract: nil slot plus
	// a joined error, not fail-fast.
	outs, err := remote.RunAll(context.Background(),
		[]sim.Spec{{Bench: "gcc", Scheme: core.PosSel}, {Bench: "nope", Scheme: core.PosSel}})
	if err == nil {
		t.Fatal("sweep with an unknown bench should surface a joined error")
	}
	if outs[0] == nil || outs[1] != nil {
		t.Errorf("outs = [%v, %v], want [result, nil]", outs[0], outs[1])
	}
}

// TestSingleflightCollapse proves the acceptance property directly: N
// concurrent submissions of one cold spec reach the engine exactly
// once. Queue mode makes it deterministic — the leader blocks polling
// for a worker that is not started until every follower has piled up.
func TestSingleflightCollapse(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	queue, err := OpenQueue(filepath.Join(dir, "queue"))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	srv, err := New(Config{Store: store, Queue: queue, Opts: opts, Shards: 1,
		PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	const followers = 15
	type reply struct {
		status int
		tier   string
		body   []byte
	}
	replies := make(chan reply, followers+1)
	reqBody, _ := json.Marshal(api.RunRequest{Spec: api.Spec{Bench: "mcf", Scheme: "TkSel"}})
	for i := 0; i < followers+1; i++ {
		go func() {
			resp, err := http.Post(ts.URL+api.PathPrefix+"/run", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				replies <- reply{status: -1}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Cache"), body}
		}()
	}

	// Wait until every submission is inside the server: one leader
	// (engineRuns), the rest collapsed onto it.
	cl := api.NewClient(ts.URL, sim.Options{})
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := cl.Info(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if info.Progress.Collapsed == followers && info.Progress.EngineRuns == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never collapsed: %+v", info.Progress)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Only now give the queue a worker.
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- RunWorker(wctx, dir, 0, opts) }()

	var miss, collapsed int
	var first []byte
	for i := 0; i < followers+1; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("reply %d: HTTP %d: %s", i, r.status, r.body)
		}
		switch r.tier {
		case "miss":
			miss++
		case "collapsed":
			collapsed++
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Error("collapsed submissions received different bytes")
		}
	}
	if miss != 1 || collapsed != followers {
		t.Errorf("tiers: %d miss, %d collapsed; want 1 and %d", miss, collapsed, followers)
	}
	stopWorker()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// TestShardWorkerEndToEnd runs the real multi-process protocol
// in-process: coordinator in queue mode, a worker draining it, shard
// journals merged back into a wiped store.
func TestShardWorkerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	queue, err := OpenQueue(filepath.Join(dir, "queue"))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	srv, err := New(Config{Store: store, Queue: queue, Opts: opts, Shards: 2,
		PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	wctx, stopWorkers := context.WithCancel(context.Background())
	done := make(chan error, 2)
	for k := 0; k < 2; k++ {
		go func(k int) { done <- RunWorker(wctx, dir, k, opts) }(k)
	}

	resp, body := postRun(t, ts.URL, api.RunRequest{Spec: api.Spec{Bench: "gzip", Scheme: "IDSel"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queue-mode run: HTTP %d: %s", resp.StatusCode, body)
	}
	var res api.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	// A second submission is a pure store hit — no queue round-trip.
	resp, warm := postRun(t, ts.URL, api.RunRequest{Spec: api.Spec{Bench: "gzip", Scheme: "IDSel"}})
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second submission X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, warm) {
		t.Error("store hit returned different bytes than the worker's result")
	}
	stopWorkers()
	for k := 0; k < 2; k++ {
		if err := <-done; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	// The run is journaled by whichever shard took it. Wipe the store
	// and rebuild it from the journals alone.
	if err := os.RemoveAll(filepath.Join(dir, "store")); err != nil {
		t.Fatal(err)
	}
	fresh, err := OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	added, err := MergeShardJournals(dir, fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("merged %d results from shard journals, want 1", added)
	}
	merged, ok := fresh.Get(res.Key)
	if !ok {
		t.Fatal("merged store is missing the run")
	}
	if !bytes.Equal(merged, body) {
		t.Error("journal-merged result bytes differ from the worker's served bytes")
	}
	// Merging again is a no-op.
	if added, err := MergeShardJournals(dir, fresh, opts); err != nil || added != 0 {
		t.Errorf("re-merge: added %d, err %v; want 0, nil", added, err)
	}
}

// TestWorkerFailureMarker feeds the queue a request the worker cannot
// execute and checks the failure comes back through the store as an
// HTTP error, not a hang.
func TestWorkerFailureMarker(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	queue, err := OpenQueue(filepath.Join(dir, "queue"))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	// Bypass the server's front-door validation: enqueue a bench the
	// worker's registry does not know under a syntactically valid key.
	key := api.Key(sim.Spec{Bench: "ghost", Scheme: core.PosSel}, opts.Insts, opts.Warmup, opts.Seed)
	if err := queue.Enqueue(key, api.RunRequest{Spec: api.Spec{Bench: "ghost", Scheme: "PosSel"}}); err != nil {
		t.Fatal(err)
	}
	wctx, stopWorker := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- RunWorker(wctx, dir, 0, opts) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if msg, ok := store.TakeFailure(key); ok {
			if msg == "" {
				t.Error("failure marker is empty")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never published a failure marker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopWorker()
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
}

func TestQueueClaimRecover(t *testing.T) {
	q, err := OpenQueue(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := api.Key(sim.Spec{Bench: "gcc", Scheme: core.PosSel}, 1, 1, 1)
	req := api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}}
	if err := q.Enqueue(key, req); err != nil {
		t.Fatal(err)
	}
	// Idempotent while pending.
	if err := q.Enqueue(key, req); err != nil {
		t.Fatal(err)
	}
	k, got, ok, err := q.Claim(3)
	if err != nil || !ok || k != key || got.Spec != req.Spec {
		t.Fatalf("claim: %q %v %v %v", k, got, ok, err)
	}
	// Nothing left to claim.
	if _, _, ok, _ := q.Claim(4); ok {
		t.Fatal("second claim should find nothing")
	}
	// Recover strands the claim back to pending, for any shard.
	n, err := q.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: %d, %v", n, err)
	}
	k, _, ok, err = q.Claim(4)
	if err != nil || !ok || k != key {
		t.Fatalf("claim after recover: %q %v %v", k, ok, err)
	}
	if err := q.Done(4, key); err != nil {
		t.Fatal(err)
	}
	if n, err := q.Recover(); err != nil || n != 0 {
		t.Fatalf("recover after done: %d, %v", n, err)
	}
}

func TestStoreReopenAndFailures(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := api.Key(sim.Spec{Bench: "gcc", Scheme: core.PosSel}, 1, 1, 1)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store claims a hit")
	}
	if err := s.Put(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("short", nil); err == nil {
		t.Error("malformed key accepted")
	}
	if got, ok := s.Get(key); !ok || string(got) != `{"x":1}` {
		t.Fatalf("get: %q %v", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
	// A fresh open over the same directory sees the entry.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key); !ok || string(got) != `{"x":1}` {
		t.Fatalf("reopened get: %q %v", got, ok)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened len = %d, want 1", s2.Len())
	}
	// Failure markers are take-once.
	if err := s2.PutFailure(key, "boom"); err != nil {
		t.Fatal(err)
	}
	if msg, ok := s2.TakeFailure(key); !ok || msg != "boom" {
		t.Fatalf("take failure: %q %v", msg, ok)
	}
	if _, ok := s2.TakeFailure(key); ok {
		t.Error("failure marker should clear on take")
	}
}

// TestLoadWarmCache is the ISSUE's load criterion: 1000 concurrent
// clients against a warm cache see zero simulation re-runs — cache
// hits only — and byte-identical responses.
func TestLoadWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-client load test skipped in -short mode")
	}
	_, ts := newEngineServer(t)
	spec := api.Spec{Bench: "mcf", Wide8: true, Scheme: "TkSel", Over: &api.Overrides{Tokens: 8}}
	// Warm the one key.
	resp, _ := postRun(t, ts.URL, api.RunRequest{Spec: spec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming run failed: HTTP %d", resp.StatusCode)
	}

	rep, err := LoadTest(context.Background(), LoadConfig{
		Base:    ts.URL,
		Clients: 1000, PerClient: 2,
		Specs: []api.Spec{spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failures != 0 {
		t.Errorf("%d of %d requests failed", rep.Failures, rep.Requests)
	}
	if rep.EngineRunsDelta != 0 {
		t.Errorf("warm cache re-ran the engine %d times, want 0", rep.EngineRunsDelta)
	}
	if rep.Hits != rep.Requests {
		t.Errorf("%d hits over %d requests, want all hits", rep.Hits, rep.Requests)
	}
	if !rep.IdenticalBytes {
		t.Error("identical specs received non-identical bytes")
	}
}

// BenchmarkCacheHitRequest measures the full warm-path round-trip —
// HTTP in, store lookup, bytes out — which is what the service adds on
// top of the simulator. Tracked by cmd/benchguard.
func BenchmarkCacheHitRequest(b *testing.B) {
	store, err := OpenStore(filepath.Join(b.TempDir(), "store"))
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(testOpts())
	srv, err := New(Config{Store: store, Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	defer eng.Close()

	reqBody, _ := json.Marshal(api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}})
	warm, err := http.Post(ts.URL+api.PathPrefix+"/run", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		b.Fatalf("warming run: HTTP %d", warm.StatusCode)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		hc := &http.Client{}
		for pb.Next() {
			resp, err := hc.Post(ts.URL+api.PathPrefix+"/run", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("HTTP %d", resp.StatusCode)
			}
		}
	})
}
