package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/sim"
)

// LoadConfig describes one load-test run against a live simd server:
// Clients concurrent clients each issuing PerClient /v1/run requests,
// round-robining over Specs. It exists to prove the service's cache
// claims under pressure — a warm cache must answer every client
// without a single simulation re-run, and with byte-identical bodies
// per spec.
type LoadConfig struct {
	Base      string
	Clients   int
	PerClient int
	Specs     []api.Spec
	// Run lengths ride on every request; zero inherits the server's.
	Insts  int64
	Warmup int64
	Seed   int64
}

// LoadReport is the outcome of a LoadTest.
type LoadReport struct {
	Requests int
	Failures int
	// X-Cache tally over successful responses: answered by the store,
	// folded into another request's computation, or computed.
	Hits      int
	Collapsed int
	Misses    int
	// EngineRunsDelta is the server's engineRuns counter movement over
	// the test — the authoritative "did anything actually simulate".
	EngineRunsDelta int64
	// IdenticalBytes reports whether every response for the same spec
	// was byte-identical.
	IdenticalBytes bool
	P50, P99, Max  time.Duration
	Elapsed        time.Duration
}

// Ok reports whether the run was failure-free with coherent bytes.
func (r *LoadReport) Ok() bool { return r.Failures == 0 && r.IdenticalBytes }

func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"loadtest: %d requests, %d failed | X-Cache %d hit / %d collapsed / %d miss | engine runs +%d | identical bytes %v | p50 %v p99 %v max %v | %v",
		r.Requests, r.Failures, r.Hits, r.Collapsed, r.Misses,
		r.EngineRunsDelta, r.IdenticalBytes, r.P50, r.P99, r.Max, r.Elapsed.Round(time.Millisecond))
}

// LoadTest runs cfg against a live server and reports what the cache
// tiers did. It is deliberately client-side-only — it exercises the
// server through the same wire surface any client uses.
func LoadTest(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 || cfg.PerClient <= 0 || len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("serve: loadtest needs clients, requests and specs")
	}
	bodies := make([][]byte, len(cfg.Specs))
	for i, s := range cfg.Specs {
		b, err := json.Marshal(api.RunRequest{Spec: s, Insts: cfg.Insts, Warmup: cfg.Warmup, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients,
		MaxIdleConnsPerHost: cfg.Clients,
	}}
	defer hc.CloseIdleConnections()
	info := api.NewClient(cfg.Base, sim.Options{})
	info.SetHTTPClient(hc)
	before, err := info.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: loadtest: %w", err)
	}

	total := cfg.Clients * cfg.PerClient
	lat := make([]time.Duration, total)
	type tally struct{ failures, hits, collapsed, misses int }
	tallies := make([]tally, cfg.Clients)
	// first response bytes per spec, for the byte-identity check.
	var refMu sync.Mutex
	refs := make([][]byte, len(cfg.Specs))
	identical := true

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := 0; i < cfg.PerClient; i++ {
				si := (c*cfg.PerClient + i) % len(cfg.Specs)
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.Base+api.PathPrefix+"/run", bytes.NewReader(bodies[si]))
				if err != nil {
					t.failures++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := hc.Do(req)
				if err != nil {
					t.failures++
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat[c*cfg.PerClient+i] = time.Since(t0)
				if err != nil || resp.StatusCode != http.StatusOK {
					t.failures++
					continue
				}
				switch resp.Header.Get("X-Cache") {
				case "hit":
					t.hits++
				case "collapsed":
					t.collapsed++
				default:
					t.misses++
				}
				refMu.Lock()
				if refs[si] == nil {
					refs[si] = body
				} else if !bytes.Equal(refs[si], body) {
					identical = false
				}
				refMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := info.Info(ctx)
	if err != nil {
		return nil, fmt.Errorf("serve: loadtest: %w", err)
	}
	rep := &LoadReport{
		Requests:        total,
		EngineRunsDelta: after.Progress.EngineRuns - before.Progress.EngineRuns,
		IdenticalBytes:  identical,
		Elapsed:         elapsed,
	}
	for _, t := range tallies {
		rep.Failures += t.failures
		rep.Hits += t.hits
		rep.Collapsed += t.collapsed
		rep.Misses += t.misses
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	rep.P50 = lat[total/2]
	rep.P99 = lat[total*99/100]
	rep.Max = lat[total-1]
	return rep, nil
}
