// Package serve is the simulation service: a stdlib net/http front
// end over the batch engine (internal/sim) speaking the v1 wire API
// (internal/api), with a content-addressed result store, a
// service-level singleflight, SSE progress streaming, and an optional
// multi-process shard mode built on a filesystem queue.
//
// The layering mirrors the cache hierarchy the ROADMAP asks for. A
// submission is answered by the cheapest tier that can:
//
//	store hit      — the result's bytes are already on disk; serve them
//	                 verbatim (identical normalized Specs receive
//	                 byte-identical bodies, forever)
//	singleflight   — the same key is being computed right now; wait for
//	                 the leader and share its bytes
//	engine / queue — simulate (in process, or on a shard worker pulling
//	                 from the shared queue), then persist to the store
//
// The engine underneath adds its own tiers (memoization, journal
// replay, checkpointed warm starts), so even a store-missing spec
// rarely simulates from cycle zero.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/api"
)

// Store is the content-addressed result store: one file per completed
// run, named by the v1 content address (api.Key) of the normalized
// spec and run lengths, holding the marshaled api.Result bytes that
// every future query for that run is answered with. Writes are
// tmp+rename atomic, so concurrent writers (the server and N shard
// workers share one directory) race benignly: both write the same
// bytes under the same name.
//
// Alongside results the store holds failure markers (<key>.error) —
// how a shard worker reports a permanent failure back to the
// coordinator without a return channel.
type Store struct {
	dir string

	mu  sync.Mutex
	mem map[string][]byte // loaded result bytes, by key
	// onDisk indexes keys present in the directory but not yet loaded,
	// so Len and Has need no disk walk after open.
	onDisk map[string]bool
}

// OpenStore opens (creating if needed) a store rooted at dir and
// indexes the results already present.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	s := &Store{dir: dir, mem: make(map[string][]byte), onDisk: make(map[string]bool)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		key, isResult := strings.CutSuffix(name, ".json")
		if !isResult || !api.ValidKey(key) {
			continue
		}
		s.onDisk[key] = true
	}
	return s, nil
}

// Len returns the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.mem)
	for key := range s.onDisk {
		if _, loaded := s.mem[key]; !loaded {
			n++
		}
	}
	return n
}

// Get returns the stored result bytes for key. The first disk hit per
// key is cached in memory; after that a warm query never touches the
// filesystem.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if b, ok := s.mem[key]; ok {
		s.mu.Unlock()
		return b, true
	}
	onDisk := s.onDisk[key]
	s.mu.Unlock()
	if !onDisk {
		// A concurrent writer (another process in shard mode) may have
		// added the file after open; check the disk before giving up.
		b, err := os.ReadFile(s.path(key))
		if err != nil {
			return nil, false
		}
		s.remember(key, b)
		return b, true
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	s.remember(key, b)
	return b, true
}

func (s *Store) remember(key string, b []byte) {
	s.mu.Lock()
	s.mem[key] = b
	s.onDisk[key] = true
	s.mu.Unlock()
}

// Put persists one result atomically and serves it from memory from
// now on. Double puts of the same key are benign overwrites of
// identical bytes.
func (s *Store) Put(key string, b []byte) error {
	if !api.ValidKey(key) {
		return fmt.Errorf("serve: store: malformed key %q", key)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: %w", err)
	}
	s.remember(key, b)
	return nil
}

// PutFailure records a permanent per-key failure marker (shard workers
// report errors through the store; the coordinator turns them into
// HTTP errors).
func (s *Store) PutFailure(key, msg string) error {
	if !api.ValidKey(key) {
		return fmt.Errorf("serve: store: malformed key %q", key)
	}
	return os.WriteFile(s.errPath(key), []byte(msg), 0o644)
}

// TakeFailure returns and clears the failure marker for key, if one
// exists. Clearing means a transient fault (or a fixed bug) does not
// poison the key forever: the next submission re-attempts.
func (s *Store) TakeFailure(key string) (string, bool) {
	b, err := os.ReadFile(s.errPath(key))
	if err != nil {
		return "", false
	}
	os.Remove(s.errPath(key))
	return string(b), true
}

func (s *Store) path(key string) string    { return filepath.Join(s.dir, key+".json") }
func (s *Store) errPath(key string) string { return filepath.Join(s.dir, key+".error") }
