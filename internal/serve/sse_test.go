package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/sim"
)

// waitNoServeGoroutines fails the test if goroutines running this
// package's code are still alive after a grace period — the leak check
// behind the SSE disconnect and shutdown tests. Handler goroutines
// belong to net/http, but a live SSE handler's stack contains
// serve.(*Server).handleProgress, so it is visible here.
func waitNoServeGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var leaked []string
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		for _, g := range strings.Split(stacks, "\n\n") {
			if strings.Contains(g, "repro/internal/serve.") &&
				!strings.Contains(g, "waitNoServeGoroutines") {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still in internal/serve:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSSEStream subscribes through the real client and checks events
// arrive, carry the counters, and stop when the consumer has had
// enough.
func TestSSEStream(t *testing.T) {
	_, ts := newEngineServer(t)
	postRun(t, ts.URL, api.RunRequest{Spec: api.Spec{Bench: "gcc", Scheme: "PosSel"}})

	cl := api.NewClient(ts.URL, sim.Options{})
	var events []api.Progress
	err := cl.StreamProgress(context.Background(), func(p api.Progress) bool {
		events = append(events, p)
		return len(events) < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for _, p := range events {
		if p.Done != 1 || p.EngineRuns != 1 {
			t.Errorf("event counters: %+v", p)
		}
	}
	if events[2].ElapsedMS < events[0].ElapsedMS {
		t.Error("elapsed time ran backwards across events")
	}
	waitNoServeGoroutines(t)
}

// TestSSEClientDisconnect cancels a subscriber mid-stream and checks
// the server handler winds down instead of writing into the void
// forever.
func TestSSEClientDisconnect(t *testing.T) {
	_, ts := newEngineServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		got <- api.NewClient(ts.URL, sim.Options{}).StreamProgress(ctx, func(api.Progress) bool {
			return true // never leave voluntarily
		})
	}()
	// Let the stream establish, then yank the client.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("stream error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled subscriber never returned")
	}
	waitNoServeGoroutines(t)
}

// TestSSEServerClose shuts the server down under live subscribers and
// checks every stream ends and no handler goroutine survives.
func TestSSEServerClose(t *testing.T) {
	srv, ts := newEngineServer(t)
	const subscribers = 4
	got := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		go func() {
			got <- api.NewClient(ts.URL, sim.Options{}).StreamProgress(context.Background(),
				func(api.Progress) bool { return true })
		}()
	}
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	for i := 0; i < subscribers; i++ {
		select {
		case err := <-got:
			// The stream simply ends; EOF-clean or a connection reset are
			// both acceptable shutdown shapes, a hang is not.
			_ = err
		case <-time.After(5 * time.Second):
			t.Fatal("subscriber still streaming after server close")
		}
	}
	waitNoServeGoroutines(t)
}

// TestSSEImmediateFirstEvent checks a subscriber gets its first
// observation right away rather than one interval later.
func TestSSEImmediateFirstEvent(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(testOpts())
	defer eng.Close()
	// An interval far longer than the test: only the immediate event
	// can arrive in time.
	srv, err := New(Config{Store: store, Engine: eng, SSEInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sawOne := false
	err = api.NewClient(ts.URL, sim.Options{}).StreamProgress(ctx, func(api.Progress) bool {
		sawOne = true
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawOne {
		t.Fatal("no immediate first event")
	}
	waitNoServeGoroutines(t)
}
