package serve

import (
	"net/http"
	"time"

	"repro/internal/api"
)

// handleProgress streams the server's counters as server-sent events:
// one `data: {...}` Progress line per SSEInterval, starting with an
// immediate event so a subscriber never waits a full interval for its
// first observation.
//
// The stream ends when the client disconnects (the request context
// cancels — no goroutine outlives its request) or the server closes.
// Events serialize through api.AppendProgress into one buffer reused
// for the connection's lifetime, so a steady subscriber costs zero
// allocations per event.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	tick := time.NewTicker(s.sseEvery)
	defer tick.Stop()
	buf := make([]byte, 0, 512)
	for {
		buf = append(buf[:0], "data: "...)
		buf = api.AppendProgress(buf, s.progress())
		buf = append(buf, '\n', '\n')
		if _, err := w.Write(buf); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-tick.C:
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		}
	}
}
