package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden, rewriting the
// file under -update. These artifacts are deterministic (analytic
// models and static configuration, no simulation), so any diff is a
// real behavior change, not noise.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output.\n--- want\n%s\n--- got\n%s\nIf the change is intended, refresh with -update.",
			path, want, got)
	}
}

func TestGoldenTable1(t *testing.T) {
	golden(t, "table1", RunTable1().Render())
}

func TestGoldenWires(t *testing.T) {
	golden(t, "wires", RunWires().Render())
}

func TestGoldenTable3(t *testing.T) {
	golden(t, "table3", Table3())
}
