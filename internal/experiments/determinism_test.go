package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// The repository's determinism guarantee: a RunSpec is a pure function
// of (spec, Options.Insts/Warmup/Seed). Parallelism — and with it the
// machine pool, goroutine interleaving, and which pooled machine a run
// lands on — must not leak into results. Same specs, same seed, run at
// Parallelism=1 and Parallelism=4, must produce bit-identical Stats
// and predictor-coverage meters.
func TestDeterminismAcrossParallelism(t *testing.T) {
	specs := []RunSpec{
		{Bench: "gcc", Scheme: core.PosSel},
		{Bench: "gcc", Scheme: core.TkSel},
		{Bench: "mcf", Scheme: core.NonSel},
		{Bench: "mcf", Wide8: true, Scheme: core.IDSel},
		{Bench: "vpr", Scheme: core.ReInsert},
		{Bench: "gap", Scheme: core.Refetch},
		{Bench: "gzip", Scheme: core.SerialVerify},
		{Bench: "twolf", Wide8: true, Scheme: core.DSel},
	}
	opts := func(par int) Options {
		return Options{Insts: 12_000, Warmup: 6_000, Seed: 7, Parallelism: par}
	}

	serial, err := NewEngine(opts(1)).runAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(opts(4)).runAll(specs)
	if err != nil {
		t.Fatal(err)
	}

	for i, spec := range specs {
		a, b := serial[i], par[i]
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Errorf("%s %s %v: stats diverge across parallelism\n  par=1: %+v\n  par=4: %+v",
				spec.Bench, spec.Width(), spec.Scheme, *a.Stats, *b.Stats)
		}
		if !reflect.DeepEqual(a.Meter, b.Meter) {
			t.Errorf("%s %s %v: coverage meter diverges across parallelism",
				spec.Bench, spec.Width(), spec.Scheme)
		}
	}
}

// Machine reuse must not leak state between runs: executing the same
// spec on a fresh engine and on an engine whose pooled machines were
// already dirtied by different schemes/benchmarks must give identical
// results.
func TestMachineReuseMatchesFreshMachine(t *testing.T) {
	target := RunSpec{Bench: "twolf", Scheme: core.TkSel}
	o := Options{Insts: 12_000, Warmup: 6_000, Seed: 3, Parallelism: 1}

	fresh, err := NewEngine(o).run(target)
	if err != nil {
		t.Fatal(err)
	}

	dirty := NewEngine(o)
	// Dirty the single pooled machine with runs of different schemes,
	// widths and benchmarks before the target spec.
	for _, s := range []RunSpec{
		{Bench: "mcf", Wide8: true, Scheme: core.Refetch},
		{Bench: "gcc", Scheme: core.SerialVerify},
		{Bench: "gap", Scheme: core.DSel},
	} {
		if _, err := dirty.run(s); err != nil {
			t.Fatal(err)
		}
	}
	reused, err := dirty.run(target)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(fresh.Stats, reused.Stats) {
		t.Errorf("reused machine diverges from fresh machine\n  fresh:  %+v\n  reused: %+v",
			*fresh.Stats, *reused.Stats)
	}
	if !reflect.DeepEqual(fresh.Meter, reused.Meter) {
		t.Error("coverage meter diverges between fresh and reused machine")
	}
}
