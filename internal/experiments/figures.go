package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/smpred"
	"repro/internal/stats"
)

// Figure3 compares serial and parallel verification: the distribution
// of wavefront propagation depths under serial verification and the
// issue-count inflation relative to PosSel, on the 8-wide machine.
type Figure3 struct {
	Bench []string
	// Depth holds the per-benchmark propagation depth histogram.
	Depth []*stats.Histogram
	// Inflation is serial total issues / PosSel total issues - 1.
	Inflation []float64
	// AvgInflation and WorstInflation summarize the suite.
	AvgInflation, WorstInflation float64
	WorstBench                   string
	// MaxDepth is the deepest propagation observed anywhere.
	MaxDepth int
}

// RunFigure3 measures serial-verification wavefront propagation.
func RunFigure3(e *Engine) (*Figure3, error) {
	f := &Figure3{Bench: Benchmarks()}
	var specs []RunSpec
	for _, b := range f.Bench {
		specs = append(specs, RunSpec{Bench: b, Wide8: true, Scheme: core.SerialVerify},
			RunSpec{Bench: b, Wide8: true, Scheme: core.PosSel})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}
	var sum float64
	for i := range f.Bench {
		serial, pos := outs[2*i].Stats, outs[2*i+1].Stats
		f.Depth = append(f.Depth, &serial.Policy.SerialDepth)
		infl := float64(serial.TotalIssues)/float64(pos.TotalIssues) - 1
		f.Inflation = append(f.Inflation, infl)
		sum += infl
		if infl > f.WorstInflation {
			f.WorstInflation = infl
			f.WorstBench = f.Bench[i]
		}
		if d := serial.Policy.SerialDepth.Max(); d > f.MaxDepth {
			f.MaxDepth = d
		}
	}
	f.AvgInflation = sum / float64(len(f.Bench))
	return f, nil
}

// Render formats the depth distribution and inflation summary.
func (f *Figure3) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: speculative wavefront propagation under serial verification (8-wide)\n")
	tb := stats.NewTable("bench", "misses", "mean depth", "p99", "max", "extra issues vs parallel")
	for i, name := range f.Bench {
		h := f.Depth[i]
		tb.AddRow(name, fmt.Sprintf("%d", h.N()),
			fmt.Sprintf("%.1f", h.Mean()),
			fmt.Sprintf("%d", h.Quantile(0.99)),
			fmt.Sprintf("%d", h.Max()),
			fmt.Sprintf("%+.1f%%", f.Inflation[i]*100))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "suite: avg inflation %+.1f%% (paper: +9.9%%), worst %+.1f%% on %s (paper: +42.1%% on mcf), max depth %d (paper: 836 on parser)\n",
		f.AvgInflation*100, f.WorstInflation*100, f.WorstBench, f.MaxDepth)
	return b.String()
}

// Figure9 reports scheduling-miss predictor quality on the 8-wide
// machine: per confidence threshold, the coverage of actual misses and
// the fraction of loads predicted to miss.
type Figure9 struct {
	Bench []string
	// Coverage[t][i] is miss coverage at threshold t for bench i.
	Coverage [4][]float64
	// Predicted[t][i] is the fraction of loads predicted at >= t.
	Predicted [4][]float64
}

// RunFigure9 measures predictor coverage curves.
func RunFigure9(e *Engine) (*Figure9, error) {
	f := &Figure9{Bench: Benchmarks()}
	var specs []RunSpec
	for _, b := range f.Bench {
		specs = append(specs, RunSpec{Bench: b, Wide8: true, Scheme: core.PosSel})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}
	for i := range f.Bench {
		meter := outs[i].Meter
		for t := 0; t < 4; t++ {
			f.Coverage[t] = append(f.Coverage[t], meter.Coverage(smpred.Confidence(t)))
			f.Predicted[t] = append(f.Predicted[t], meter.PredictedFraction(smpred.Confidence(t)))
		}
	}
	return f, nil
}

// Render formats both panels of Figure 9.
func (f *Figure9) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9a: coverage of scheduling misses at confidence thresholds (8-wide)\n")
	tb := stats.NewTable("bench", "conf>=0", "conf>=1", "conf>=2", "conf>=3")
	for i, name := range f.Bench {
		tb.AddRow(name,
			fmt.Sprintf("%.3f", f.Coverage[0][i]), fmt.Sprintf("%.3f", f.Coverage[1][i]),
			fmt.Sprintf("%.3f", f.Coverage[2][i]), fmt.Sprintf("%.3f", f.Coverage[3][i]))
	}
	b.WriteString(tb.String())
	b.WriteString("Figure 9b: fraction of loads predicted to mis-schedule\n")
	tb = stats.NewTable("bench", "conf>=0", "conf>=1", "conf>=2", "conf>=3")
	for i, name := range f.Bench {
		tb.AddRow(name,
			fmt.Sprintf("%.3f", f.Predicted[0][i]), fmt.Sprintf("%.3f", f.Predicted[1][i]),
			fmt.Sprintf("%.3f", f.Predicted[2][i]), fmt.Sprintf("%.3f", f.Predicted[3][i]))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Figure12 reports issue counts normalized to PosSel for NonSel, DSel
// and TkSel at both widths.
type Figure12 struct {
	Bench   []string
	Schemes []core.Scheme
	// Norm[w][s][i]: width index (0=4-wide), scheme index, bench index.
	Norm [2][][]float64
}

var fig12Schemes = []core.Scheme{core.NonSel, core.DSel, core.TkSel}

// RunFigure12 measures normalized issue counts.
func RunFigure12(e *Engine) (*Figure12, error) {
	f := &Figure12{Bench: Benchmarks(), Schemes: fig12Schemes}
	for w := 0; w < 2; w++ {
		wide8 := w == 1
		var specs []RunSpec
		for _, b := range f.Bench {
			specs = append(specs, RunSpec{Bench: b, Wide8: wide8, Scheme: core.PosSel})
			for _, s := range f.Schemes {
				specs = append(specs, RunSpec{Bench: b, Wide8: wide8, Scheme: s})
			}
		}
		outs, err := e.runAll(specs)
		if err != nil {
			return nil, err
		}
		per := len(f.Schemes) + 1
		f.Norm[w] = make([][]float64, len(f.Schemes))
		for si := range f.Schemes {
			for bi := range f.Bench {
				base := outs[bi*per].Stats.TotalIssues
				v := outs[bi*per+1+si].Stats.TotalIssues
				f.Norm[w][si] = append(f.Norm[w][si], float64(v)/float64(base))
			}
		}
	}
	return f, nil
}

// Render formats both widths.
func (f *Figure12) Render() string {
	var b strings.Builder
	for w, label := range []string{"4-wide", "8-wide"} {
		fmt.Fprintf(&b, "Figure 12 (%s): issue count normalized to PosSel\n", label)
		hdr := []string{"bench"}
		for _, s := range f.Schemes {
			hdr = append(hdr, s.String())
		}
		tb := stats.NewTable(hdr...)
		for bi, name := range f.Bench {
			row := []interface{}{name}
			for si := range f.Schemes {
				row = append(row, fmt.Sprintf("%.3f", f.Norm[w][si][bi]))
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
	}
	return b.String()
}

// Figure13 reports IPC normalized to PosSel for the five evaluated
// schemes at both widths.
type Figure13 struct {
	Bench   []string
	Schemes []core.Scheme
	Norm    [2][][]float64
	// TkSelSlowdown is the suite-average TkSel slowdown per width.
	TkSelSlowdown [2]float64
}

var fig13Schemes = []core.Scheme{core.NonSel, core.DSel, core.TkSel, core.ReInsert, core.Conservative}

// RunFigure13 measures normalized performance.
func RunFigure13(e *Engine) (*Figure13, error) {
	f := &Figure13{Bench: Benchmarks(), Schemes: fig13Schemes}
	for w := 0; w < 2; w++ {
		wide8 := w == 1
		var specs []RunSpec
		for _, b := range f.Bench {
			specs = append(specs, RunSpec{Bench: b, Wide8: wide8, Scheme: core.PosSel})
			for _, s := range f.Schemes {
				specs = append(specs, RunSpec{Bench: b, Wide8: wide8, Scheme: s})
			}
		}
		outs, err := e.runAll(specs)
		if err != nil {
			return nil, err
		}
		per := len(f.Schemes) + 1
		f.Norm[w] = make([][]float64, len(f.Schemes))
		for si := range f.Schemes {
			for bi := range f.Bench {
				base := outs[bi*per].Stats.IPC()
				v := outs[bi*per+1+si].Stats.IPC()
				f.Norm[w][si] = append(f.Norm[w][si], v/base)
			}
		}
		// TkSel average slowdown.
		tkIdx := 2
		var sum float64
		for _, v := range f.Norm[w][tkIdx] {
			sum += v
		}
		f.TkSelSlowdown[w] = 1 - sum/float64(len(f.Bench))
	}
	return f, nil
}

// Render formats both widths plus the headline TkSel slowdown.
func (f *Figure13) Render() string {
	var b strings.Builder
	for w, label := range []string{"4-wide", "8-wide"} {
		fmt.Fprintf(&b, "Figure 13 (%s): IPC normalized to PosSel\n", label)
		hdr := []string{"bench"}
		for _, s := range f.Schemes {
			hdr = append(hdr, s.String())
		}
		tb := stats.NewTable(hdr...)
		for bi, name := range f.Bench {
			row := []interface{}{name}
			for si := range f.Schemes {
				row = append(row, fmt.Sprintf("%.3f", f.Norm[w][si][bi]))
			}
			tb.AddRow(row...)
		}
		b.WriteString(tb.String())
	}
	fmt.Fprintf(&b, "TkSel average slowdown: %.1f%% at 4-wide (paper 1.7%%), %.1f%% at 8-wide (paper 1.6%%)\n",
		f.TkSelSlowdown[0]*100, f.TkSelSlowdown[1]*100)
	return b.String()
}
