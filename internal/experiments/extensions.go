package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Extensions reports the two beyond-the-paper studies: the
// replay-queue-based model of Figure 4b (window-capacity recovery vs
// blind replays) and load value prediction under the rename-order
// replay schemes (§3.5's motivating technique).
type Extensions struct {
	// RQ: per issue-queue size, IPC under the issue-queue and
	// replay-queue models on a miss-heavy benchmark (twolf, PosSel).
	RQSizes                []int
	RQIssueModel, RQQueued []float64
	RQBlindReplays         []uint64

	// VP: per benchmark, TkSel IPC without/with value prediction.
	VPBench          []string
	VPBase, VPOn     []float64
	VPAccuracy       []float64
	VPAverageSpeedup float64
}

// RunExtensions measures both studies. These need bespoke
// configurations, so they run outside the engine's memoized spec space
// but reuse its sizing options.
func RunExtensions(e *Engine) (*Extensions, error) {
	opts := e.Options()
	run := func(bench string, mutate func(*core.Config)) (*core.Stats, error) {
		prof, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(prof, opts.Seed)
		if err != nil {
			return nil, err
		}
		cfg := core.Config8Wide()
		cfg.MaxInsts = opts.Insts
		cfg.Warmup = opts.Warmup
		mutate(&cfg)
		m, err := core.New(cfg, gen)
		if err != nil {
			return nil, err
		}
		return m.Run()
	}

	x := &Extensions{RQSizes: []int{16, 32, 64, 128}}
	for _, iq := range x.RQSizes {
		a, err := run("twolf", func(c *core.Config) { c.Scheme = core.PosSel; c.IQSize = iq })
		if err != nil {
			return nil, err
		}
		b, err := run("twolf", func(c *core.Config) {
			c.Scheme = core.PosSel
			c.IQSize = iq
			c.ReplayQueue = true
		})
		if err != nil {
			return nil, err
		}
		x.RQIssueModel = append(x.RQIssueModel, a.IPC())
		x.RQQueued = append(x.RQQueued, b.IPC())
		x.RQBlindReplays = append(x.RQBlindReplays, b.RQReplays)
	}

	x.VPBench = Benchmarks()
	var sum float64
	for _, bench := range x.VPBench {
		a, err := run(bench, func(c *core.Config) { c.Scheme = core.TkSel })
		if err != nil {
			return nil, err
		}
		b, err := run(bench, func(c *core.Config) { c.Scheme = core.TkSel; c.ValuePrediction = true })
		if err != nil {
			return nil, err
		}
		x.VPBase = append(x.VPBase, a.IPC())
		x.VPOn = append(x.VPOn, b.IPC())
		acc := 0.0
		if b.ValuePredictions > 0 {
			acc = 1 - float64(b.ValueMispredicts)/float64(b.ValuePredictions)
		}
		x.VPAccuracy = append(x.VPAccuracy, acc)
		sum += b.IPC() / a.IPC()
	}
	x.VPAverageSpeedup = sum/float64(len(x.VPBench)) - 1
	return x, nil
}

// Render formats both studies.
func (x *Extensions) Render() string {
	var b strings.Builder
	b.WriteString("Extension A: replay-queue-based model (Figure 4b) on twolf, 8-wide, PosSel\n")
	tb := stats.NewTable("IQ entries", "IPC issue-queue model", "IPC replay-queue model", "blind replays")
	for i, iq := range x.RQSizes {
		tb.AddRow(fmt.Sprintf("%d", iq), x.RQIssueModel[i], x.RQQueued[i],
			fmt.Sprintf("%d", x.RQBlindReplays[i]))
	}
	b.WriteString(tb.String())
	b.WriteString("\nExtension B: load value prediction under TkSel, 8-wide\n")
	tb = stats.NewTable("bench", "IPC TkSel", "IPC +VP", "speedup", "VP accuracy")
	for i, bench := range x.VPBench {
		tb.AddRow(bench, x.VPBase[i], x.VPOn[i],
			fmt.Sprintf("%+.1f%%", 100*(x.VPOn[i]/x.VPBase[i]-1)),
			fmt.Sprintf("%.2f", x.VPAccuracy[i]))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "average value-prediction speedup: %+.1f%%\n", 100*x.VPAverageSpeedup)
	return b.String()
}
