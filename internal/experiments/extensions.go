package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Extensions reports the two beyond-the-paper studies: the
// replay-queue-based model of Figure 4b (window-capacity recovery vs
// blind replays) and load value prediction under the rename-order
// replay schemes (§3.5's motivating technique).
type Extensions struct {
	// RQ: per issue-queue size, IPC under the issue-queue and
	// replay-queue models on a miss-heavy benchmark (twolf, PosSel).
	RQSizes                []int
	RQIssueModel, RQQueued []float64
	RQBlindReplays         []uint64

	// VP: per benchmark, TkSel IPC without/with value prediction.
	VPBench          []string
	VPBase, VPOn     []float64
	VPAccuracy       []float64
	VPAverageSpeedup float64
}

// RunExtensions measures both studies. The bespoke configurations are
// expressed as spec overrides, so the runs share the engine's machine
// pool and memoization — the plain IQ-128 point of the RQ sweep, for
// instance, is the stock 8-wide twolf PosSel run, reused if another
// experiment already simulated it.
func RunExtensions(e *Engine) (*Extensions, error) {
	x := &Extensions{RQSizes: []int{16, 32, 64, 128}, VPBench: Benchmarks()}

	var specs []RunSpec
	for _, iq := range x.RQSizes {
		specs = append(specs,
			RunSpec{Bench: "twolf", Wide8: true, Scheme: core.PosSel,
				Over: sim.Overrides{IQSize: iq}},
			RunSpec{Bench: "twolf", Wide8: true, Scheme: core.PosSel,
				Over: sim.Overrides{IQSize: iq, ReplayQueue: true}})
	}
	for _, bench := range x.VPBench {
		specs = append(specs,
			RunSpec{Bench: bench, Wide8: true, Scheme: core.TkSel},
			RunSpec{Bench: bench, Wide8: true, Scheme: core.TkSel,
				Over: sim.Overrides{ValuePrediction: true}})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}

	for i := range x.RQSizes {
		a, b := outs[2*i].Stats, outs[2*i+1].Stats
		x.RQIssueModel = append(x.RQIssueModel, a.IPC())
		x.RQQueued = append(x.RQQueued, b.IPC())
		x.RQBlindReplays = append(x.RQBlindReplays, b.RQReplays)
	}
	var sum float64
	vp := outs[2*len(x.RQSizes):]
	for i := range x.VPBench {
		a, b := vp[2*i].Stats, vp[2*i+1].Stats
		x.VPBase = append(x.VPBase, a.IPC())
		x.VPOn = append(x.VPOn, b.IPC())
		acc := 0.0
		if b.ValuePredictions > 0 {
			acc = 1 - float64(b.ValueMispredicts)/float64(b.ValuePredictions)
		}
		x.VPAccuracy = append(x.VPAccuracy, acc)
		sum += b.IPC() / a.IPC()
	}
	x.VPAverageSpeedup = sum/float64(len(x.VPBench)) - 1
	return x, nil
}

// Render formats both studies.
func (x *Extensions) Render() string {
	var b strings.Builder
	b.WriteString("Extension A: replay-queue-based model (Figure 4b) on twolf, 8-wide, PosSel\n")
	tb := stats.NewTable("IQ entries", "IPC issue-queue model", "IPC replay-queue model", "blind replays")
	for i, iq := range x.RQSizes {
		tb.AddRow(fmt.Sprintf("%d", iq), x.RQIssueModel[i], x.RQQueued[i],
			fmt.Sprintf("%d", x.RQBlindReplays[i]))
	}
	b.WriteString(tb.String())
	b.WriteString("\nExtension B: load value prediction under TkSel, 8-wide\n")
	tb = stats.NewTable("bench", "IPC TkSel", "IPC +VP", "speedup", "VP accuracy")
	for i, bench := range x.VPBench {
		tb.AddRow(bench, x.VPBase[i], x.VPOn[i],
			fmt.Sprintf("%+.1f%%", 100*(x.VPOn[i]/x.VPBase[i]-1)),
			fmt.Sprintf("%.2f", x.VPAccuracy[i]))
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "average value-prediction speedup: %+.1f%%\n", 100*x.VPAverageSpeedup)
	return b.String()
}
