package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func testEngine() *Engine {
	return NewEngine(Options{Insts: 15_000, Warmup: 8_000, Seed: 1})
}

func TestEngineMemoizes(t *testing.T) {
	e := testEngine()
	spec := RunSpec{Bench: "gap", Scheme: core.PosSel}
	a, err := e.run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second run was not served from the cache")
	}
}

func TestEngineRejectsUnknownBench(t *testing.T) {
	e := testEngine()
	if _, err := e.run(RunSpec{Bench: "nope", Scheme: core.PosSel}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunAllPreservesOrderAndDedupes(t *testing.T) {
	e := testEngine()
	specs := []RunSpec{
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "gzip", Scheme: core.PosSel},
		{Bench: "gap", Scheme: core.PosSel}, // duplicate
	}
	outs, err := e.runAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 || outs[0].Spec.Bench != "gap" || outs[1].Spec.Bench != "gzip" {
		t.Fatalf("order broken: %+v", outs)
	}
	if outs[0] != outs[2] {
		t.Fatal("duplicate spec not deduplicated")
	}
}

func TestTable1Artifact(t *testing.T) {
	t1 := RunTable1()
	if len(t1.Model) != 7 || len(t1.Model[0]) != 6 {
		t.Fatalf("grid shape wrong")
	}
	out := t1.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "80") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestWiresArtifact(t *testing.T) {
	w := RunWires()
	if w.DepBus4 != 48 || w.DepBus8 != 192 || w.PosSelTotal8 != 196 || w.TkSelTotal8 != 32 {
		t.Fatalf("wire counts diverge from §5.5: %+v", w)
	}
	if !strings.Contains(w.Render(), "196") {
		t.Fatal("render missing totals")
	}
	if !strings.Contains(Table3(), "8-wide") {
		t.Fatal("Table3 render broken")
	}
}

func TestTable4And5ShareRuns(t *testing.T) {
	e := testEngine()
	t4, err := RunTable4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.IPC4) != 12 || len(t4.IPC8) != 12 {
		t.Fatal("table 4 incomplete")
	}
	for i, b := range t4.Bench {
		if t4.IPC4[i] <= 0 || t4.IPC8[i] <= 0 {
			t.Errorf("%s: zero IPC", b)
		}
		// The defining property of the width comparison: the 8-wide
		// machine never loses to the 4-wide one.
		if t4.IPC8[i] < t4.IPC4[i]*0.9 {
			t.Errorf("%s: 8-wide IPC %.3f below 4-wide %.3f", b, t4.IPC8[i], t4.IPC4[i])
		}
	}
	// Table 5 reuses the cached PosSel runs: no new simulations needed.
	before := e.Sim().Cached()
	t5, err := RunTable5(e)
	if err != nil {
		t.Fatal(err)
	}
	if e.Sim().Cached() != before {
		t.Error("Table 5 re-simulated instead of reusing Table 4's runs")
	}
	// mcf must be the miss-rate outlier, as in the paper.
	mcf := t5.MissRate4[6]
	for i, b := range t5.Bench {
		if b != "mcf" && t5.MissRate4[i] >= mcf {
			t.Errorf("%s miss rate %.3f >= mcf %.3f", b, t5.MissRate4[i], mcf)
		}
	}
	if !strings.Contains(t4.Render(), "mcf") || !strings.Contains(t5.Render(), "miss%4w") {
		t.Error("renders broken")
	}
}

func TestTable6Coverage(t *testing.T) {
	e := testEngine()
	t6, err := RunTable6(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range t6.Bench {
		if t6.Coverage4[i] < 0 || t6.Coverage4[i] > 1 || t6.Coverage8[i] < 0 || t6.Coverage8[i] > 1 {
			t.Errorf("%s: coverage out of range", b)
		}
	}
	// mcf's concurrency starvation keeps it the coverage minimum.
	mcf := t6.Coverage8[6]
	better := 0
	for i := range t6.Bench {
		if t6.Coverage8[i] > mcf {
			better++
		}
	}
	if better < 9 {
		t.Errorf("mcf should be near the coverage floor; only %d benchmarks above it", better)
	}
}

func TestFigure13Shape(t *testing.T) {
	e := testEngine()
	f, err := RunFigure13(e)
	if err != nil {
		t.Fatal(err)
	}
	// TkSel stays within a few percent of ideal at both widths.
	for w := 0; w < 2; w++ {
		if f.TkSelSlowdown[w] < -0.05 || f.TkSelSlowdown[w] > 0.08 {
			t.Errorf("width %d: TkSel slowdown %.3f implausible", w, f.TkSelSlowdown[w])
		}
	}
	// NonSel must be the weakest of NonSel/DSel/TkSel on average at
	// 8-wide (the scalability claim).
	avg := func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	non, dsel, tk := avg(f.Norm[1][0]), avg(f.Norm[1][1]), avg(f.Norm[1][2])
	if non >= dsel || non >= tk {
		t.Errorf("NonSel (%.3f) should trail DSel (%.3f) and TkSel (%.3f) at 8-wide", non, dsel, tk)
	}
	if !strings.Contains(f.Render(), "TkSel average slowdown") {
		t.Error("render broken")
	}
}

func TestFigure12And3And9(t *testing.T) {
	e := testEngine()
	f12, err := RunFigure12(e)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		for bi := range f12.Bench {
			if non := f12.Norm[w][0][bi]; non < 0.97 {
				t.Errorf("NonSel normalized issues %.3f < 1 for %s", non, f12.Bench[bi])
			}
		}
	}
	f3, err := RunFigure3(e)
	if err != nil {
		t.Fatal(err)
	}
	if f3.AvgInflation <= 0 {
		t.Error("serial verification should inflate issue counts")
	}
	if f3.MaxDepth < 5 {
		t.Errorf("max propagation depth %d too shallow", f3.MaxDepth)
	}
	f9, err := RunFigure9(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f9.Bench {
		if f9.Coverage[0][i] != 1 {
			t.Errorf("%s: coverage at threshold 0 must be 1", f9.Bench[i])
		}
		if f9.Coverage[3][i] > f9.Coverage[1][i] {
			t.Errorf("%s: coverage must fall with threshold", f9.Bench[i])
		}
	}
	for _, r := range []string{f12.Render(), f3.Render(), f9.Render()} {
		if len(r) < 100 {
			t.Error("suspiciously short render")
		}
	}
}
