package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// frontierBenches is the benchmark sample for the scheme x frontend
// matrix: a branchy integer code, the memory-bound pointer chaser and
// a cache-miss-heavy placer — the three regimes where a predictor or
// prefetcher upgrade could plausibly reorder the schemes.
var frontierBenches = []string{"gcc", "mcf", "twolf"}

// Frontier reports the beyond-the-paper frontend study: does the
// paper's replay-scheme ranking survive a machine whose frontend the
// paper never evaluated — a TAGE direction predictor and a stride
// data prefetcher?
type Frontier struct {
	// Matrix: per scheme, geometric-mean IPC over frontierBenches under
	// the paper frontend, TAGE alone, and TAGE plus the stride
	// prefetcher.
	Schemes              []core.Scheme
	Base, Tage, TagePref []float64

	// Prefetch: per benchmark under PosSel, IPC without/with the
	// stride prefetcher and the prefetcher's own quality metrics.
	PrefBench                      []string
	PrefOff, PrefOn                []float64
	Coverage, Accuracy, Timeliness []float64

	// LoadDelay: per benchmark, the tenth scheme against the two
	// schemes it interpolates between, with its prediction outcome
	// counts.
	LDBench                      []string
	LDPosSel, LDCons, LDTracking []float64
	LDPredicted, LDCold, LDUnder []uint64
}

// RunFrontier measures all three studies through the shared engine, so
// overlapping cells (the stock PosSel runs, the scheme baselines) are
// simulated once and memoized.
func RunFrontier(e *Engine) (*Frontier, error) {
	x := &Frontier{
		Schemes:   core.Schemes(),
		PrefBench: Benchmarks(),
		LDBench:   Benchmarks(),
	}

	var specs []RunSpec
	for _, s := range x.Schemes {
		for _, bench := range frontierBenches {
			specs = append(specs,
				RunSpec{Bench: bench, Wide8: true, Scheme: s},
				RunSpec{Bench: bench, Wide8: true, Scheme: s,
					Over: sim.Overrides{Bpred: "tage"}},
				RunSpec{Bench: bench, Wide8: true, Scheme: s,
					Over: sim.Overrides{Bpred: "tage", Prefetch: "stride"}})
		}
	}
	for _, bench := range x.PrefBench {
		specs = append(specs,
			RunSpec{Bench: bench, Wide8: true, Scheme: core.PosSel},
			RunSpec{Bench: bench, Wide8: true, Scheme: core.PosSel,
				Over: sim.Overrides{Prefetch: "stride"}})
	}
	for _, bench := range x.LDBench {
		specs = append(specs,
			RunSpec{Bench: bench, Wide8: true, Scheme: core.PosSel},
			RunSpec{Bench: bench, Wide8: true, Scheme: core.Conservative},
			RunSpec{Bench: bench, Wide8: true, Scheme: core.LoadDelay})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}

	geomean := func(cells []*RunOut) float64 {
		logSum := 0.0
		for _, o := range cells {
			logSum += math.Log(o.Stats.IPC())
		}
		return math.Exp(logSum / float64(len(cells)))
	}
	i := 0
	for range x.Schemes {
		var base, tage, pref []*RunOut
		for range frontierBenches {
			base = append(base, outs[i])
			tage = append(tage, outs[i+1])
			pref = append(pref, outs[i+2])
			i += 3
		}
		x.Base = append(x.Base, geomean(base))
		x.Tage = append(x.Tage, geomean(tage))
		x.TagePref = append(x.TagePref, geomean(pref))
	}
	for range x.PrefBench {
		a, b := outs[i].Stats, outs[i+1].Stats
		i += 2
		x.PrefOff = append(x.PrefOff, a.IPC())
		x.PrefOn = append(x.PrefOn, b.IPC())
		x.Coverage = append(x.Coverage, b.PrefetchCoverage())
		x.Accuracy = append(x.Accuracy, b.PrefetchAccuracy())
		x.Timeliness = append(x.Timeliness, b.PrefetchTimeliness())
	}
	for range x.LDBench {
		p, c, l := outs[i].Stats, outs[i+1].Stats, outs[i+2].Stats
		i += 3
		x.LDPosSel = append(x.LDPosSel, p.IPC())
		x.LDCons = append(x.LDCons, c.IPC())
		x.LDTracking = append(x.LDTracking, l.IPC())
		x.LDPredicted = append(x.LDPredicted, l.Policy.LoadDelayPredicted)
		x.LDCold = append(x.LDCold, l.Policy.LoadDelayCold)
		x.LDUnder = append(x.LDUnder, l.Policy.LoadDelayUnder)
	}
	return x, nil
}

// Render formats the three studies.
func (x *Frontier) Render() string {
	var b strings.Builder
	b.WriteString("Frontier A: scheme x frontend matrix, 8-wide, geomean IPC over " +
		strings.Join(frontierBenches, "/") + "\n")
	tb := stats.NewTable("scheme", "IPC paper frontend", "IPC +TAGE", "IPC +TAGE+stride", "frontend gain")
	for i, s := range x.Schemes {
		tb.AddRow(s.String(), x.Base[i], x.Tage[i], x.TagePref[i],
			fmt.Sprintf("%+.1f%%", 100*(x.TagePref[i]/x.Base[i]-1)))
	}
	b.WriteString(tb.String())

	b.WriteString("\nFrontier B: stride prefetcher under PosSel, 8-wide\n")
	tb = stats.NewTable("bench", "IPC off", "IPC stride", "speedup", "coverage", "accuracy", "timeliness")
	for i, bench := range x.PrefBench {
		tb.AddRow(bench, x.PrefOff[i], x.PrefOn[i],
			fmt.Sprintf("%+.1f%%", 100*(x.PrefOn[i]/x.PrefOff[i]-1)),
			fmt.Sprintf("%.2f", x.Coverage[i]),
			fmt.Sprintf("%.2f", x.Accuracy[i]),
			fmt.Sprintf("%.2f", x.Timeliness[i]))
	}
	b.WriteString(tb.String())

	b.WriteString("\nFrontier C: load-delay tracking vs its neighbours, 8-wide\n")
	tb = stats.NewTable("bench", "IPC PosSel", "IPC Conservative", "IPC LoadDelay",
		"predicted", "cold", "under")
	for i, bench := range x.LDBench {
		tb.AddRow(bench, x.LDPosSel[i], x.LDCons[i], x.LDTracking[i],
			fmt.Sprintf("%d", x.LDPredicted[i]),
			fmt.Sprintf("%d", x.LDCold[i]),
			fmt.Sprintf("%d", x.LDUnder[i]))
	}
	b.WriteString(tb.String())
	return b.String()
}
