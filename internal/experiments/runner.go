// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) from the simulator, plus the analytic results
// of §2.3 and §5.5. Each experiment is a function returning a rendered
// plain-text artifact and the underlying numbers; cmd/paper and the
// repository benchmarks drive them.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/smpred"
	"repro/internal/workload"
)

// Options control simulation length; zero values take defaults sized
// for minutes-scale full-paper reproduction.
type Options struct {
	// Insts is the measured instruction count per run.
	Insts int64
	// Warmup is the unmeasured warmup instruction count per run.
	Warmup int64
	// Seed drives the workload generator.
	Seed int64
	// Parallelism bounds concurrent simulations (defaults to CPUs).
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = 200_000
	}
	if o.Warmup == 0 {
		o.Warmup = 60_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// RunSpec identifies one simulation.
type RunSpec struct {
	Bench  string
	Wide8  bool
	Scheme core.Scheme
}

// width returns a human label.
func (s RunSpec) width() string {
	if s.Wide8 {
		return "8-wide"
	}
	return "4-wide"
}

// RunOut couples a spec with its results.
type RunOut struct {
	Spec  RunSpec
	Stats *core.Stats
	Meter *smpred.CoverageMeter
}

// Engine memoizes simulation runs so experiments sharing a
// configuration (e.g. the PosSel baselines) execute once.
type Engine struct {
	opts Options

	mu    sync.Mutex
	cache map[RunSpec]*RunOut

	// machines pools one simulator per worker: the buffered channel is
	// both the concurrency semaphore and the freelist. Slots start nil
	// and are built (core.New) on first use; thereafter each run resets
	// a pooled machine instead of reallocating the window, event wheel
	// and cache arrays — a full-paper sweep is 168 simulations.
	machines chan *core.Machine
}

// NewEngine builds a run engine with the given options.
func NewEngine(opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		opts:     o,
		cache:    make(map[RunSpec]*RunOut),
		machines: make(chan *core.Machine, o.Parallelism),
	}
	for i := 0; i < o.Parallelism; i++ {
		e.machines <- nil
	}
	return e
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// run executes (or recalls) one simulation.
func (e *Engine) run(spec RunSpec) (*RunOut, error) {
	e.mu.Lock()
	if out, ok := e.cache[spec]; ok {
		e.mu.Unlock()
		return out, nil
	}
	e.mu.Unlock()

	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(prof, e.opts.Seed)
	if err != nil {
		return nil, err
	}
	cfg := core.Config4Wide()
	if spec.Wide8 {
		cfg = core.Config8Wide()
	}
	cfg.Scheme = spec.Scheme
	cfg.MaxInsts = e.opts.Insts
	cfg.Warmup = e.opts.Warmup

	// Acquire a worker slot; build its machine on first use, reset it
	// otherwise. Machines that fail are dropped back as nil slots so a
	// bad run can't poison later ones.
	m := <-e.machines
	if m == nil {
		m, err = core.New(cfg, gen)
	} else {
		err = m.Reset(cfg, gen)
	}
	if err != nil {
		e.machines <- nil
		return nil, err
	}
	st, err := m.Run()
	if err != nil {
		e.machines <- nil
		return nil, fmt.Errorf("%s %s %v: %w", spec.Bench, spec.width(), spec.Scheme, err)
	}
	// Snapshot results out of the machine before it is pooled for
	// reuse: Stats and Meter pointers alias machine state.
	stc := st.Clone()
	meter := *m.Meter()
	e.machines <- m
	out := &RunOut{Spec: spec, Stats: &stc, Meter: &meter}
	e.mu.Lock()
	e.cache[spec] = out
	e.mu.Unlock()
	return out, nil
}

// runAll executes the given specs concurrently (memoized) and returns
// outputs in spec order.
func (e *Engine) runAll(specs []RunSpec) ([]*RunOut, error) {
	// De-duplicate while preserving order.
	uniq := make([]RunSpec, 0, len(specs))
	seen := make(map[RunSpec]bool)
	for _, s := range specs {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	// Concurrency is bounded inside run() by the machine pool, which
	// doubles as the semaphore.
	errs := make([]error, len(uniq))
	var wg sync.WaitGroup
	for i, s := range uniq {
		wg.Add(1)
		go func(i int, s RunSpec) {
			defer wg.Done()
			_, errs[i] = e.run(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]*RunOut, len(specs))
	for i, s := range specs {
		out[i], _ = e.cache[s], error(nil)
	}
	return out, nil
}

// Benchmarks returns the benchmark list in the paper's table order.
func Benchmarks() []string {
	out := make([]string, len(workload.Benchmarks))
	copy(out, workload.Benchmarks)
	return out
}

// sortedKeys is a small helper for deterministic map iteration in
// rendering code.
func sortedKeys[K interface {
	~string
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
