// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) from the simulator, plus the analytic results
// of §2.3 and §5.5. Each experiment is a function returning a rendered
// plain-text artifact and the underlying numbers; cmd/paper and the
// repository benchmarks drive them.
//
// All simulation goes through the batch engine in internal/sim; this
// package is a thin, context-carrying wrapper that keeps the historical
// experiments API (NewEngine, RunTable4, ...) stable.
package experiments

import (
	"context"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Options control simulation length and engine behaviour; see
// sim.Options for the fields and defaults.
type Options = sim.Options

// RunSpec identifies one simulation; see sim.Spec.
type RunSpec = sim.Spec

// RunOut couples a spec with its results; see sim.RunOut.
type RunOut = sim.RunOut

// Engine memoizes simulation runs so experiments sharing a
// configuration (e.g. the PosSel baselines) execute once. It binds a
// context to a sim.Engine so the experiment functions — whose
// signatures predate context propagation — stay context-free while
// every simulation underneath remains cancelable.
type Engine struct {
	ctx context.Context
	eng *sim.Engine
}

// NewEngine builds a run engine with the given options and a
// background context.
func NewEngine(opts Options) *Engine {
	return NewEngineContext(context.Background(), opts)
}

// NewEngineContext builds a run engine whose simulations observe ctx:
// cancellation or deadline expiry stops in-flight cycle loops and
// fails the remaining specs with the context's error.
func NewEngineContext(ctx context.Context, opts Options) *Engine {
	return &Engine{ctx: ctx, eng: sim.NewEngine(opts)}
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.eng.Options() }

// Sim exposes the underlying batch engine for progress snapshots and
// journal accounting.
func (e *Engine) Sim() *sim.Engine { return e.eng }

// Close flushes and closes the checkpoint journal, if one was
// configured.
func (e *Engine) Close() error { return e.eng.Close() }

// run executes (or recalls) one simulation.
func (e *Engine) run(spec RunSpec) (*RunOut, error) {
	return e.eng.Run(e.ctx, spec)
}

// runAll executes the given specs concurrently (memoized) and returns
// outputs in spec order; failed positions are nil and their errors
// joined.
func (e *Engine) runAll(specs []RunSpec) ([]*RunOut, error) {
	return e.eng.RunAll(e.ctx, specs)
}

// Benchmarks returns the benchmark list in the paper's table order.
func Benchmarks() []string {
	out := make([]string, len(workload.Benchmarks))
	copy(out, workload.Benchmarks)
	return out
}

// sortedKeys is a small helper for deterministic map iteration in
// rendering code.
func sortedKeys[K interface {
	~string
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
