package experiments

// Reference values transcribed from the paper, used for side-by-side
// "paper vs measured" reporting. Indexed in Benchmarks() order:
// bzip, crafty, eon, gap, gcc, gzip, mcf, parser, perl, twolf, vortex,
// vpr.

// PaperIPC4 and PaperIPC8 are Table 4's base IPC with position-based
// selective replay.
var PaperIPC4 = []float64{
	1.6409, 1.9410, 2.1741, 2.0737, 1.5148, 2.0147,
	0.7061, 1.2614, 1.4149, 1.5959, 2.1217, 1.6807,
}

var PaperIPC8 = []float64{
	2.0932, 2.7949, 3.1457, 2.8784, 1.9721, 2.5117,
	0.9225, 1.5208, 1.7067, 1.9205, 3.1530, 2.0658,
}

// PaperMissRate4/8 are Table 5's "load scheduling misses / load
// issues" (fractions, not percent).
var PaperMissRate4 = []float64{
	0.0371, 0.0316, 0.0305, 0.0167, 0.0209, 0.0407,
	0.2759, 0.0591, 0.0231, 0.1043, 0.0480, 0.0686,
}

var PaperMissRate8 = []float64{
	0.0686, 0.0406, 0.0777, 0.0386, 0.0318, 0.0577,
	0.2760, 0.0681, 0.0371, 0.1231, 0.0656, 0.0888,
}

// PaperReplayRate4/8 are Table 5's "total replays / total issues".
var PaperReplayRate4 = []float64{
	0.0250, 0.0250, 0.0144, 0.0110, 0.0203, 0.0352,
	0.2302, 0.0508, 0.0110, 0.0650, 0.0273, 0.0468,
}

var PaperReplayRate8 = []float64{
	0.0456, 0.0319, 0.0400, 0.0203, 0.0312, 0.0440,
	0.2245, 0.0605, 0.0151, 0.0715, 0.0408, 0.0558,
}

// PaperTokenCoverage4/8 are Table 6's fraction of scheduling misses
// covered by tokens (8 tokens at 4-wide, 16 at 8-wide).
var PaperTokenCoverage4 = []float64{
	0.897, 0.884, 0.882, 0.917, 0.860, 0.918,
	0.752, 0.853, 0.997, 0.849, 0.906, 0.912,
}

var PaperTokenCoverage8 = []float64{
	0.919, 0.893, 0.919, 0.958, 0.893, 0.936,
	0.835, 0.885, 0.996, 0.895, 0.933, 0.922,
}

// Figure 13's headline: average TkSel slowdown vs PosSel is 1.7% at
// 4-wide and 1.6% at 8-wide.
const (
	PaperTkSelSlowdown4 = 0.017
	PaperTkSelSlowdown8 = 0.016
)

// Figure 3's headline: serial verification inflates total issues by
// 9.9% on average (worst 42.1%, mcf), and the worst observed
// propagation depth is 836 levels (parser).
const (
	PaperSerialIssueInflationAvg   = 0.099
	PaperSerialIssueInflationWorst = 0.421
	PaperSerialWorstDepth          = 836
)
