package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/stats"
)

// Table1 reproduces the paper's Table 1: the maximum number of parent
// loads an instruction must track, per load-port count and propagation
// distance, from the reconstructed graph model, alongside the paper's
// printed values.
type Table1 struct {
	Ports     []int
	Distances []int
	Model     [][]int
	Paper     [][]int
}

// RunTable1 evaluates the analytic model over the paper's grid.
func RunTable1() *Table1 {
	t := &Table1{Ports: analytic.Table1Ports, Distances: analytic.Table1Distances}
	for di, d := range t.Distances {
		var mrow, prow []int
		for pi, p := range t.Ports {
			mrow = append(mrow, analytic.MaxParentLoads(p, d))
			prow = append(prow, analytic.Table1Paper[di][pi])
		}
		t.Model = append(t.Model, mrow)
		t.Paper = append(t.Paper, prow)
		_ = di
	}
	return t
}

// Render formats the table with model/paper cells.
func (t *Table1) Render() string {
	hdr := []string{"dist \\ ports"}
	for _, p := range t.Ports {
		hdr = append(hdr, fmt.Sprintf("%d", p))
	}
	tb := stats.NewTable(hdr...)
	for di, d := range t.Distances {
		row := []interface{}{fmt.Sprintf("%d", d)}
		for pi := range t.Ports {
			m, p := t.Model[di][pi], t.Paper[di][pi]
			if m == p {
				row = append(row, fmt.Sprintf("%d", m))
			} else {
				row = append(row, fmt.Sprintf("%d (paper %d)", m, p))
			}
		}
		tb.AddRow(row...)
	}
	return "Table 1: max parent loads to track (model vs paper)\n" + tb.String()
}

// Wires reproduces the §3.5/§5.5 wire-count comparison.
type Wires struct {
	DepBus4, DepBus8         int
	PosSelTotal8             int
	TkSelTotal4, TkSelTotal8 int
}

// RunWires evaluates the wire-count models on the Table 3 machines.
func RunWires() *Wires {
	return &Wires{
		DepBus4:      analytic.PosSelDependenceBusWires(4, 2, 6),
		DepBus8:      analytic.PosSelDependenceBusWires(8, 4, 6),
		PosSelTotal8: analytic.PosSelTotalReplayWires(8, 4, 6),
		TkSelTotal4:  analytic.TkSelTotalReplayWires(8),
		TkSelTotal8:  analytic.TkSelTotalReplayWires(16),
	}
}

// Render formats the comparison with the paper's quoted numbers.
func (w *Wires) Render() string {
	var b strings.Builder
	b.WriteString("Replay wiring cost (§3.5/§5.5)\n")
	fmt.Fprintf(&b, "  PosSel dependence bus, 4-wide: %d wires (paper: 48)\n", w.DepBus4)
	fmt.Fprintf(&b, "  PosSel dependence bus, 8-wide: %d wires (paper: 192)\n", w.DepBus8)
	fmt.Fprintf(&b, "  PosSel total extra replay wires, 8-wide: %d (paper: 196)\n", w.PosSelTotal8)
	fmt.Fprintf(&b, "  TkSel total extra replay wires, 4-wide (8 tokens): %d\n", w.TkSelTotal4)
	fmt.Fprintf(&b, "  TkSel total extra replay wires, 8-wide (16 tokens): %d (paper: 32)\n", w.TkSelTotal8)
	return b.String()
}

// Table3 renders the machine configurations (a configuration echo, so
// the reproduction is self-describing).
func Table3() string {
	var b strings.Builder
	b.WriteString("Table 3: machine configurations\n")
	for _, cfg := range []core.Config{core.Config4Wide(), core.Config8Wide()} {
		fmt.Fprintf(&b, "  %s: width %d, ROB %d, IQ %d, LSQ %d, %d mem ports, %d intALU/%d fpALU/%d intMulDiv/%d fpMulDiv, sched->exec %d, verify %d (propagation distance %d), tokens %d\n",
			cfg.Name, cfg.Width, cfg.ROBSize, cfg.IQSize, cfg.LSQSize, cfg.MemPorts,
			cfg.IntALU, cfg.FPALU, cfg.IntMulDiv, cfg.FPMulDiv,
			cfg.SchedToExec, cfg.VerifyLatency, cfg.PropagationDistance(), cfg.Tokens)
	}
	return b.String()
}

// Table4 is the benchmark/base-IPC table with PosSel.
type Table4 struct {
	Bench                []string
	IPC4, IPC8           []float64
	PaperIPC4, PaperIPC8 []float64
}

// RunTable4 measures base IPC under position-based selective replay.
func RunTable4(e *Engine) (*Table4, error) {
	t := &Table4{Bench: Benchmarks(), PaperIPC4: PaperIPC4, PaperIPC8: PaperIPC8}
	var specs []RunSpec
	for _, b := range t.Bench {
		specs = append(specs, RunSpec{Bench: b, Scheme: core.PosSel},
			RunSpec{Bench: b, Wide8: true, Scheme: core.PosSel})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}
	for i := range t.Bench {
		t.IPC4 = append(t.IPC4, outs[2*i].Stats.IPC())
		t.IPC8 = append(t.IPC8, outs[2*i+1].Stats.IPC())
	}
	return t, nil
}

// Render formats measured vs paper IPC.
func (t *Table4) Render() string {
	tb := stats.NewTable("bench", "IPC 4-wide", "paper", "IPC 8-wide", "paper")
	for i, b := range t.Bench {
		tb.AddRow(b, t.IPC4[i], t.PaperIPC4[i], t.IPC8[i], t.PaperIPC8[i])
	}
	return "Table 4: base IPC with position-based selective replay\n" + tb.String()
}

// Table5 is the scheduler characteristics table with PosSel.
type Table5 struct {
	Bench                      []string
	MissRate4, MissRate8       []float64
	ReplayRate4, ReplayRate8   []float64
	PaperMiss4, PaperMiss8     []float64
	PaperReplay4, PaperReplay8 []float64
}

// RunTable5 measures load scheduling-miss and replay rates under
// PosSel.
func RunTable5(e *Engine) (*Table5, error) {
	t := &Table5{
		Bench:      Benchmarks(),
		PaperMiss4: PaperMissRate4, PaperMiss8: PaperMissRate8,
		PaperReplay4: PaperReplayRate4, PaperReplay8: PaperReplayRate8,
	}
	var specs []RunSpec
	for _, b := range t.Bench {
		specs = append(specs, RunSpec{Bench: b, Scheme: core.PosSel},
			RunSpec{Bench: b, Wide8: true, Scheme: core.PosSel})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}
	for i := range t.Bench {
		s4, s8 := outs[2*i].Stats, outs[2*i+1].Stats
		t.MissRate4 = append(t.MissRate4, s4.LoadMissRate())
		t.MissRate8 = append(t.MissRate8, s8.LoadMissRate())
		t.ReplayRate4 = append(t.ReplayRate4, s4.ReplayRate())
		t.ReplayRate8 = append(t.ReplayRate8, s8.ReplayRate())
	}
	return t, nil
}

// Render formats measured vs paper rates (percent).
func (t *Table5) Render() string {
	tb := stats.NewTable("bench",
		"miss%4w", "paper", "miss%8w", "paper",
		"replay%4w", "paper", "replay%8w", "paper")
	pct := func(v float64) string { return fmt.Sprintf("%.2f", v*100) }
	for i, b := range t.Bench {
		tb.AddRow(b,
			pct(t.MissRate4[i]), pct(t.PaperMiss4[i]),
			pct(t.MissRate8[i]), pct(t.PaperMiss8[i]),
			pct(t.ReplayRate4[i]), pct(t.PaperReplay4[i]),
			pct(t.ReplayRate8[i]), pct(t.PaperReplay8[i]))
	}
	return "Table 5: scheduling statistics with position-based selective replay\n" + tb.String()
}

// Table6 is the token-coverage table under TkSel.
type Table6 struct {
	Bench                []string
	Coverage4, Coverage8 []float64
	PaperCov4, PaperCov8 []float64
}

// RunTable6 measures the fraction of scheduling misses recovered with
// a token.
func RunTable6(e *Engine) (*Table6, error) {
	t := &Table6{Bench: Benchmarks(), PaperCov4: PaperTokenCoverage4, PaperCov8: PaperTokenCoverage8}
	var specs []RunSpec
	for _, b := range t.Bench {
		specs = append(specs, RunSpec{Bench: b, Scheme: core.TkSel},
			RunSpec{Bench: b, Wide8: true, Scheme: core.TkSel})
	}
	outs, err := e.runAll(specs)
	if err != nil {
		return nil, err
	}
	for i := range t.Bench {
		t.Coverage4 = append(t.Coverage4, outs[2*i].Stats.TokenCoverage())
		t.Coverage8 = append(t.Coverage8, outs[2*i+1].Stats.TokenCoverage())
	}
	return t, nil
}

// Render formats measured vs paper coverage (percent).
func (t *Table6) Render() string {
	tb := stats.NewTable("bench", "cov%4w(8tok)", "paper", "cov%8w(16tok)", "paper")
	pct := func(v float64) string { return fmt.Sprintf("%.1f", v*100) }
	for i, b := range t.Bench {
		tb.AddRow(b, pct(t.Coverage4[i]), pct(t.PaperCov4[i]),
			pct(t.Coverage8[i]), pct(t.PaperCov8[i]))
	}
	return "Table 6: scheduling misses covered by tokens in token-based selective replay\n" + tb.String()
}
