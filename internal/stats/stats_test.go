package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for _, v := range []int{1, 2, 2, 3, 8} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Max() != 8 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Mean() != 16.0/5 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Count(2) != 2 {
		t.Fatalf("Count(2) = %d", h.Count(2))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Count(0) != 1 {
		t.Fatal("negative sample not clamped to 0")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if q := h.Quantile(0.5); q < 50 || q > 51 {
		t.Fatalf("median = %d", q)
	}
	if q := h.Quantile(0.99); q < 99 {
		t.Fatalf("p99 = %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %d", q)
	}
}

func TestHistogramCumulative(t *testing.T) {
	var h Histogram
	for _, v := range []int{1, 2, 3, 4} {
		h.Add(v)
	}
	if got := h.CumulativeAtMost(2); got != 0.5 {
		t.Fatalf("CumulativeAtMost(2) = %v", got)
	}
	if got := h.CumulativeAtMost(100); got != 1.0 {
		t.Fatalf("CumulativeAtMost(100) = %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 2, 3, 5, 9} {
		h.Add(v)
	}
	bks := h.Buckets()
	// zero bucket + [1,1] [2,3] [4,7] [8,15]
	if len(bks) != 5 {
		t.Fatalf("buckets = %v", bks)
	}
	wantCounts := []uint64{1, 1, 2, 1, 1}
	var total uint64
	for i, b := range bks {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d = %+v, want count %d", i, b, wantCounts[i])
		}
		total += b.Count
	}
	if total != h.N() {
		t.Fatalf("bucket mass %d != N %d", total, h.N())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("bench", "ipc")
	tb.AddRow("mcf", 0.7061)
	tb.AddRow("vortex", 2.1217)
	s := tb.String()
	if !strings.Contains(s, "bench") || !strings.Contains(s, "0.7061") {
		t.Fatalf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), s)
	}
	// Columns aligned: all lines start the second column at the same
	// offset.
	idx := strings.Index(lines[0], "ipc")
	if !strings.HasPrefix(lines[2][idx:], "0.7061") {
		t.Fatalf("misaligned table:\n%s", s)
	}
}

// Property: bucket mass always equals sample count, and the histogram
// mean is within the sample min/max envelope.
func TestQuickHistogramInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		min, max := int(^uint(0)>>1), 0
		for _, r := range raw {
			v := int(r % 2048)
			h.Add(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if len(raw) == 0 {
			return h.N() == 0
		}
		var mass uint64
		for _, b := range h.Buckets() {
			mass += b.Count
		}
		if mass != h.N() {
			return false
		}
		m := h.Mean()
		return m >= float64(min) && m <= float64(max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Add(int(r))
		}
		prev := -1
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
