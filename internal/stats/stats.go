// Package stats provides the measurement primitives the simulator and
// the experiment harness share: histograms (Figure 3's propagation-depth
// distribution), ratio helpers, and plain-text table rendering for the
// paper-reproduction output.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Histogram counts non-negative integer samples (e.g. wavefront
// propagation depths). The zero value is ready to use.
type Histogram struct {
	counts map[int]uint64
	n      uint64
	sum    uint64
	max    int
}

// Add records one sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make(map[int]uint64)
	}
	h.counts[v]++
	h.n++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Clone returns a deep copy of the histogram. The experiment harness
// snapshots per-run statistics out of pooled, reusable machines, so the
// copy must not share the counts map.
func (h *Histogram) Clone() Histogram {
	out := *h
	if h.counts != nil {
		out.counts = make(map[int]uint64, len(h.counts))
		for k, v := range h.counts {
			out.counts[k] = v
		}
	}
	return out
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Max returns the largest sample seen (0 when empty).
func (h *Histogram) Max() int { return h.max }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Count returns how many samples equal v.
func (h *Histogram) Count(v int) uint64 { return h.counts[v] }

// Quantile returns the smallest sample value q of the mass lies at or
// below, for q in [0,1].
func (h *Histogram) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := uint64(q * float64(h.n))
	var acc uint64
	for _, k := range keys {
		acc += h.counts[k]
		if acc > target {
			return k
		}
	}
	return keys[len(keys)-1]
}

// CumulativeAtMost returns the fraction of samples <= v.
func (h *Histogram) CumulativeAtMost(v int) float64 {
	if h.n == 0 {
		return 0
	}
	var acc uint64
	for k, c := range h.counts {
		if k <= v {
			acc += c
		}
	}
	return float64(acc) / float64(h.n)
}

// Buckets returns the histogram binned into power-of-two buckets
// [1,2), [2,4), [4,8)… plus a zero bucket, as (upper-bound, count)
// pairs. This is the Figure 3 presentation.
func (h *Histogram) Buckets() []Bucket {
	if h.n == 0 {
		return nil
	}
	var out []Bucket
	out = append(out, Bucket{Upper: 0, Count: h.counts[0]})
	for lo := 1; lo <= h.max; lo *= 2 {
		hi := lo * 2
		var c uint64
		for k, cnt := range h.counts {
			if k >= lo && k < hi {
				c += cnt
			}
		}
		out = append(out, Bucket{Upper: hi - 1, Count: c})
	}
	return out
}

// Bucket is one power-of-two histogram bin; Upper is its inclusive
// upper bound.
type Bucket struct {
	Upper int
	Count uint64
}

// histogramJSON is the wire form of a Histogram: the sample counts
// alone. N, sum and max are derived, so round-tripping cannot produce
// an inconsistent histogram.
type histogramJSON struct {
	Counts map[int]uint64 `json:"counts,omitempty"`
}

// MarshalJSON encodes the histogram as its sample-count map. The sim
// engine journals per-run statistics as JSONL checkpoints; the derived
// fields (n, sum, max) are intentionally omitted and rebuilt on decode.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Counts: h.counts})
}

// UnmarshalJSON decodes a histogram previously written by MarshalJSON.
// The result is indistinguishable from one built by the same sequence
// of Add calls: derived fields are recomputed and invalid samples
// (negative values, zero counts) are rejected rather than silently
// dropped, so a journaled run replays bit-identically.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*h = Histogram{}
	if len(j.Counts) == 0 {
		return nil
	}
	h.counts = make(map[int]uint64, len(j.Counts))
	for v, c := range j.Counts {
		if v < 0 || c == 0 {
			return fmt.Errorf("stats: invalid histogram entry %d:%d", v, c)
		}
		h.counts[v] = c
		h.n += c
		h.sum += uint64(v) * c
		if v > h.max {
			h.max = v
		}
	}
	return nil
}

// Ratio returns a/b, or 0 when b is zero — the safe form for
// rate-per-event statistics.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table renders aligned plain-text tables for the experiment harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
