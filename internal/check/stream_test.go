package check

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/evstream"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRecordStream: the stream a finding carries must be a faithful,
// decodable recording of the failing spec's run — same header, same
// event count as a plain re-simulation — so violation cursors index it.
func TestRecordStream(t *testing.T) {
	dir := t.TempDir()
	v := &validator{opts: Options{
		Insts: 2_000, Warmup: 500, StreamDir: dir,
	}.withDefaults()}
	spec := sim.Spec{Bench: "gcc", Scheme: core.PosSel, Over: sim.Overrides{Check: core.CheckFull}}
	const seed = 7

	path, err := v.recordStream(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("stream written to %s, want directory %s", path, dir)
	}
	if base := filepath.Base(path); strings.ContainsAny(base, " []") || !strings.HasSuffix(base, "-seed7.evs") {
		t.Errorf("stream name %q not a sanitized -seed7.evs slug", base)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := evstream.NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if h := d.Header(); h.Spec != spec.String() || h.Seed != seed {
		t.Fatalf("stream header %+v does not identify the run %s seed %d", h, spec, seed)
	}
	var events int64
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Kind == evstream.RecEvent {
			events++
		}
	}

	// The recording must retrace the run exactly: its event count is the
	// machine's own, which is the coordinate system violation cursors
	// live in.
	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(spec.Config(sim.Options{Insts: v.opts.Insts, Warmup: v.opts.Warmup}), gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if want := m.EventCount(); events != want {
		t.Errorf("stream holds %d events, the run emitted %d", events, want)
	}
	if events == 0 {
		t.Error("recorded stream holds no events")
	}
}
