package check

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options selects the validation matrix: which schemes, benchmarks,
// seeds and monitoring levels to sweep, and how long each run is. The
// zero value validates every registered scheme on every benchmark at
// every level, one seed, with runs long enough to exercise replay
// steady state but short enough for CI.
type Options struct {
	// Schemes to validate; nil means every registered scheme.
	Schemes []core.Scheme
	// Benches to validate; nil means the full suite.
	Benches []string
	// Seeds drive the workload generator; nil means seed 1.
	Seeds []int64
	// Levels are the monitoring levels each spec runs at. The same
	// stream is simulated once per level and the architectural results
	// must agree bit-for-bit. Nil means off, cheap and full.
	Levels []core.CheckLevel
	// Bpreds and Prefetchers are the frontend kinds to cross with the
	// scheme matrix, as override names ("" or the default kind's name
	// for the paper's frontend). Nil means the default frontend only;
	// the oracle digest must hold in every cell, since frontends change
	// timing but never the retired stream.
	Bpreds      []string
	Prefetchers []string
	// Wide8 validates on the 8-wide Table 3 machine.
	Wide8 bool
	// Insts and Warmup set the run length (defaults 50k after 10k).
	Insts, Warmup int64
	// Parallelism bounds concurrent simulations (0 = NumCPU).
	Parallelism int
	// StreamDir, when set, attaches a replayable event stream to every
	// monitor finding: the failing spec is re-simulated with a recorder
	// and the full .evs stream lands in this directory. The violations'
	// Cursor fields index into that stream (pipeview -replay renders
	// it). The directory must exist.
	StreamDir string
	// OnProgress receives engine progress snapshots.
	OnProgress func(sim.Snapshot)
}

func (o Options) withDefaults() Options {
	if o.Schemes == nil {
		o.Schemes = core.Schemes()
	}
	if o.Benches == nil {
		o.Benches = workload.Benchmarks
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if o.Levels == nil {
		o.Levels = []core.CheckLevel{core.CheckOff, core.CheckCheap, core.CheckFull}
	}
	if len(o.Bpreds) == 0 {
		o.Bpreds = []string{""}
	}
	if len(o.Prefetchers) == 0 {
		o.Prefetchers = []string{""}
	}
	if o.Insts == 0 {
		o.Insts = 50_000
	}
	if o.Warmup == 0 {
		o.Warmup = 10_000
	}
	return o
}

// Finding is one validation failure: a run that errored, tripped a
// monitor, diverged from the oracle, disagreed with itself across
// monitoring levels, or broke a stats identity.
type Finding struct {
	// Spec is the run the finding is about (its Check override names
	// the level, when one level is at fault).
	Spec sim.Spec
	// Seed is the workload seed.
	Seed int64
	// Kind classifies the failure: "run-error", "monitor",
	// "oracle-hash", "cross-level" or "stats".
	Kind string
	// Msg is the human-readable explanation.
	Msg string
	// Violations carries the monitor violations (with their
	// cycle-stamped trace windows and stream cursors) when Kind is
	// "monitor".
	Violations []core.Violation
	// Stream is the path of the recorded .evs event stream for the
	// failing run, when Options.StreamDir requested one. Each
	// violation's Cursor indexes into this stream.
	Stream string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s seed %d: [%s] %s", f.Spec, f.Seed, f.Kind, f.Msg)
}

// Report is the outcome of a validation sweep.
type Report struct {
	// Runs is the number of simulations performed (or replayed).
	Runs int
	// Findings lists every failure, ordered by spec then seed.
	Findings []Finding
}

// OK reports whether the sweep found nothing.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// add appends a finding. The sweep aggregates findings on one
// goroutine (simulation parallelism lives inside the batch engine), so
// no lock is needed and the report order is deterministic.
func (v *validator) add(f Finding) {
	v.report.Findings = append(v.report.Findings, f)
}

// validator carries the shared state of one sweep.
type validator struct {
	opts   Options
	report Report
}

// runKey identifies one simulation in the result table.
type runKey struct {
	seed  int64
	bench string
	sch   core.Scheme
	bp    string
	pf    string
	level core.CheckLevel
}

// Validate runs the full differential matrix: every (seed, bench,
// scheme, level) simulation, each compared against the magic-scheduler
// oracle for its stream and against its siblings at the other
// monitoring levels. It returns a report of findings; the error return
// is reserved for infrastructure failures (context cancellation,
// unknown benchmark), not validation failures.
func Validate(ctx context.Context, opts Options) (*Report, error) {
	v := &validator{opts: opts.withDefaults()}
	opts = v.opts

	// Oracles are per (bench, seed) — one stream each, shared by every
	// scheme and level.
	oracles := make(map[runKey]OracleResult)
	for _, bench := range opts.Benches {
		for _, seed := range opts.Seeds {
			or, err := RunOracle(bench, seed, opts.Wide8, opts.Warmup, opts.Insts)
			if err != nil {
				return nil, err
			}
			oracles[runKey{seed: seed, bench: bench}] = or
		}
	}

	results := make(map[runKey]*core.Stats)
	for _, seed := range opts.Seeds {
		if err := v.runSeed(ctx, seed, results); err != nil {
			return nil, err
		}
	}

	// Analysis: per-run identities, oracle agreement, and cross-level
	// agreement.
	for _, seed := range opts.Seeds {
		for _, bench := range opts.Benches {
			oracle := oracles[runKey{seed: seed, bench: bench}]
			for _, sch := range opts.Schemes {
				for _, bp := range opts.Bpreds {
					for _, pf := range opts.Prefetchers {
						v.analyze(seed, bench, sch, bp, pf, oracle, results)
					}
				}
			}
		}
	}
	sort.Slice(v.report.Findings, func(i, j int) bool {
		a, b := v.report.Findings[i], v.report.Findings[j]
		if a.Spec.String() != b.Spec.String() {
			return a.Spec.String() < b.Spec.String()
		}
		return a.Seed < b.Seed
	})
	return &v.report, nil
}

// runSeed fans the (bench, scheme, level) cube for one seed through a
// batch engine; failures become findings, successes land in results.
// The fan-out itself happens inside the engine's RunAll (this package
// spawns no goroutines, so finding aggregation is deterministic);
// specs that failed are then re-Run one at a time to recover their
// individual errors — those attempts are memoized for successes and
// rare for failures, so the second pass costs almost nothing on a
// clean matrix.
func (v *validator) runSeed(ctx context.Context, seed int64, results map[runKey]*core.Stats) error {
	opts := v.opts
	eng := sim.NewEngine(sim.Options{
		Insts: opts.Insts, Warmup: opts.Warmup, Seed: seed,
		Parallelism: opts.Parallelism, OnProgress: opts.OnProgress,
	})
	defer eng.Close()

	var (
		specs []sim.Spec
		keys  []runKey
	)
	for _, bench := range opts.Benches {
		for _, sch := range opts.Schemes {
			for _, bp := range opts.Bpreds {
				for _, pf := range opts.Prefetchers {
					for _, level := range opts.Levels {
						specs = append(specs, sim.Spec{
							Bench: bench, Wide8: opts.Wide8, Scheme: sch,
							Over: sim.Overrides{Bpred: bp, Prefetch: pf, Check: level},
						})
						keys = append(keys, runKey{
							seed: seed, bench: bench, sch: sch, bp: bp, pf: pf, level: level,
						})
					}
				}
			}
		}
	}
	outs, _ := eng.RunAll(ctx, specs)
	for i, spec := range specs {
		if outs[i] != nil {
			results[keys[i]] = outs[i].Stats
			v.report.Runs++
			continue
		}
		out, err := eng.Run(ctx, spec)
		if err == nil {
			// The retry succeeded where the batch attempt failed (a
			// transient the engine's own retry already explains); take
			// the result rather than inventing a finding.
			results[keys[i]] = out.Stats
			v.report.Runs++
			continue
		}
		var ce *core.CheckError
		if errors.As(err, &ce) {
			f := Finding{
				Spec: spec, Seed: seed, Kind: "monitor",
				Msg:        fmt.Sprintf("%d violation(s), first: %s", len(ce.Violations), ce.Violations[0]),
				Violations: ce.Violations,
			}
			if opts.StreamDir != "" {
				if path, rerr := v.recordStream(spec, seed); rerr == nil {
					f.Stream = path
				} else {
					f.Msg += fmt.Sprintf(" (stream recording failed: %v)", rerr)
				}
			}
			v.add(f)
		} else if ctx.Err() == nil {
			v.add(Finding{Spec: spec, Seed: seed, Kind: "run-error", Msg: err.Error()})
		}
	}
	return ctx.Err()
}

// analyze checks one (seed, bench, scheme, frontend) cell: per-level
// stats identities, oracle agreement, and cross-level agreement.
func (v *validator) analyze(seed int64, bench string, sch core.Scheme, bp, pf string, oracle OracleResult, results map[runKey]*core.Stats) {
	opts := v.opts
	width := int64(4)
	if opts.Wide8 {
		width = 8
	}
	var ref *core.Stats
	var refSpec sim.Spec
	for _, level := range opts.Levels {
		st := results[runKey{seed: seed, bench: bench, sch: sch, bp: bp, pf: pf, level: level}]
		if st == nil {
			continue // already reported as run-error or monitor finding
		}
		spec := sim.Spec{
			Bench: bench, Wide8: opts.Wide8, Scheme: sch,
			Over: sim.Overrides{Bpred: bp, Prefetch: pf, Check: level},
		}
		fail := func(kind, format string, args ...any) {
			v.add(Finding{Spec: spec, Seed: seed, Kind: kind, Msg: fmt.Sprintf(format, args...)})
		}

		// Oracle agreement: the retired stream must be the fetched
		// stream, bit-for-bit, in order.
		switch {
		case st.RetireHash == 0:
			fail("oracle-hash", "run carries no retired-stream digest (stale journal entry?)")
		case st.RetireHash != oracle.Hash:
			fail("oracle-hash", "retired stream diverged from the oracle: %#016x != %#016x over %d insts",
				st.RetireHash, oracle.Hash, oracle.Target)
		}

		// Stats identities: structural facts that hold for any correct
		// run of any scheme.
		// Both the warmup snapshot and the stopping point land on retire
		// bundles, so the measured count can deviate from Insts by up to
		// a bundle in either direction.
		if d := st.Retired - opts.Insts; d <= -width || d >= width {
			fail("stats", "retired %d insts, want %d +/- %d", st.Retired, opts.Insts, width-1)
		}
		if st.Cycles*width < st.Retired {
			fail("stats", "%d cycles retired %d insts on a %d-wide machine", st.Cycles, st.Retired, width)
		}
		if st.FirstIssues > st.TotalIssues || st.LoadIssues > st.TotalIssues || st.SquashedIssues > st.TotalIssues {
			fail("stats", "issue counters exceed total: first %d, load %d, squashed %d, total %d",
				st.FirstIssues, st.LoadIssues, st.SquashedIssues, st.TotalIssues)
		}
		if st.CacheMisses+st.AliasMisses != st.LoadSchedMisses {
			fail("stats", "miss causes do not partition: cache %d + alias %d != %d",
				st.CacheMisses, st.AliasMisses, st.LoadSchedMisses)
		}
		if st.MissOnFirstIssue > st.LoadSchedMisses || st.LoadSchedMisses > st.LoadIssues {
			fail("stats", "miss counters out of range: firstIssue %d, sched %d, loadIssues %d",
				st.MissOnFirstIssue, st.LoadSchedMisses, st.LoadIssues)
		}
		if sch == core.TkSel {
			p := &st.Policy
			if p.MissesWithToken+p.MissTokenStolen+p.MissTokenRefused != st.LoadSchedMisses {
				fail("stats", "token outcomes do not partition misses: %d + %d + %d != %d",
					p.MissesWithToken, p.MissTokenStolen, p.MissTokenRefused, st.LoadSchedMisses)
			}
		}
		if sch == core.LoadDelay && st.Policy.LoadDelayUnder != st.LoadSchedMisses {
			// Every LoadDelay scheduling miss is by construction an
			// under-prediction (cold loads schedule conservatively and
			// cannot miss).
			fail("stats", "under-predictions do not cover misses: %d != %d",
				st.Policy.LoadDelayUnder, st.LoadSchedMisses)
		}
		if st.PrefetchUseful > st.PrefetchIssued || st.PrefetchLate > st.PrefetchUseful {
			fail("stats", "prefetch counters out of order: issued %d, useful %d, late %d",
				st.PrefetchIssued, st.PrefetchUseful, st.PrefetchLate)
		}
		// The dataflow bound only speaks about the whole run, so it can
		// only be applied when nothing was subtracted as warmup.
		if opts.Warmup == 0 && st.Cycles+width < oracle.IdealCycles {
			fail("stats", "beat the dataflow limit: %d cycles < oracle's ideal %d", st.Cycles, oracle.IdealCycles)
		}

		// Cross-level agreement: monitoring must not perturb the run.
		if ref == nil {
			ref, refSpec = st, spec
			continue
		}
		if st.RetireHash != ref.RetireHash {
			fail("cross-level", "retired stream differs from %s: %#016x != %#016x",
				refSpec, st.RetireHash, ref.RetireHash)
		}
		if st.Cycles != ref.Cycles || st.Retired != ref.Retired ||
			st.TotalIssues != ref.TotalIssues || st.FirstIssues != ref.FirstIssues ||
			st.LoadSchedMisses != ref.LoadSchedMisses || st.SquashedIssues != ref.SquashedIssues {
			fail("cross-level", "counters differ from %s: cycles %d/%d retired %d/%d issues %d/%d misses %d/%d",
				refSpec, st.Cycles, ref.Cycles, st.Retired, ref.Retired,
				st.TotalIssues, ref.TotalIssues, st.LoadSchedMisses, ref.LoadSchedMisses)
		}
	}
}
