package check

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestOracleDeterministic(t *testing.T) {
	a, err := RunOracle("gcc", 3, false, 1_000, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOracle("gcc", 3, false, 1_000, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("oracle not deterministic: %+v != %+v", a, b)
	}
	c, err := RunOracle("gcc", 4, false, 1_000, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seeds produced the same stream digest")
	}
	if a.Target != 5_000 || a.Loads == 0 || a.Stores == 0 || a.Branches == 0 {
		t.Fatalf("implausible class counts: %+v", a)
	}
	if min := a.Target / 4; a.IdealCycles < min {
		t.Fatalf("ideal cycles %d below the retire-bandwidth floor %d", a.IdealCycles, min)
	}
	if _, err := RunOracle("nope", 1, false, 0, 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// The machine's retired-stream digest must equal the oracle's stream
// digest, and no machine may finish faster than the dataflow limit.
func TestOracleMatchesMachine(t *testing.T) {
	for _, tc := range []struct {
		scheme core.Scheme
		bench  string
	}{{core.PosSel, "gcc"}, {core.TkSel, "mcf"}} {
		t.Run(tc.bench+"/"+tc.scheme.String(), func(t *testing.T) {
			t.Parallel()
			const insts, seed = 6_000, 5
			prof, err := workload.ByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := workload.NewGenerator(prof, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config4Wide()
			cfg.Scheme = tc.scheme
			cfg.Check = core.CheckFull
			cfg.MaxInsts = insts
			cfg.Warmup = 0
			m, err := core.New(cfg, gen)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := RunOracle(tc.bench, seed, false, 0, insts)
			if err != nil {
				t.Fatal(err)
			}
			if st.RetireHash != oracle.Hash {
				t.Errorf("retired stream %#x != oracle stream %#x", st.RetireHash, oracle.Hash)
			}
			if st.Cycles+4 < oracle.IdealCycles {
				t.Errorf("machine beat the dataflow limit: %d cycles < ideal %d", st.Cycles, oracle.IdealCycles)
			}
		})
	}
}

// analyze must flag fabricated divergences; otherwise the whole sweep
// proves nothing.
func TestAnalyzeFlagsDivergence(t *testing.T) {
	opts := Options{
		Schemes: []core.Scheme{core.PosSel},
		Benches: []string{"gcc"},
		Seeds:   []int64{1},
		Levels:  []core.CheckLevel{core.CheckOff, core.CheckFull},
		Insts:   1_000, Warmup: 100,
	}
	oracle, err := RunOracle("gcc", 1, false, opts.Warmup, opts.Insts)
	if err != nil {
		t.Fatal(err)
	}
	good := core.Stats{
		Cycles: 3_000, Retired: 1_000,
		TotalIssues: 1_200, FirstIssues: 1_000, LoadIssues: 300,
		LoadSchedMisses: 50, CacheMisses: 40, AliasMisses: 10,
		MissOnFirstIssue: 30, SquashedIssues: 100,
		RetireHash: oracle.Hash,
	}
	key := func(level core.CheckLevel) runKey {
		return runKey{seed: 1, bench: "gcc", sch: core.PosSel, level: level}
	}
	kinds := func(results map[runKey]*core.Stats) map[string]int {
		v := &validator{opts: opts.withDefaults()}
		v.analyze(1, "gcc", core.PosSel, "", "", oracle, results)
		got := map[string]int{}
		for _, f := range v.report.Findings {
			got[f.Kind]++
		}
		return got
	}

	a, b := good, good
	if got := kinds(map[runKey]*core.Stats{key(core.CheckOff): &a, key(core.CheckFull): &b}); len(got) != 0 {
		t.Fatalf("clean results produced findings: %v", got)
	}

	bad := good
	bad.RetireHash++
	got := kinds(map[runKey]*core.Stats{key(core.CheckOff): &a, key(core.CheckFull): &bad})
	if got["oracle-hash"] == 0 || got["cross-level"] == 0 {
		t.Fatalf("hash divergence missed: %v", got)
	}

	bad = good
	bad.CacheMisses++ // breaks cache+alias == schedMisses
	if got := kinds(map[runKey]*core.Stats{key(core.CheckOff): &bad}); got["stats"] == 0 {
		t.Fatalf("broken miss partition missed: %v", got)
	}

	bad = good
	bad.RetireHash = 0 // a stale journal entry predating the digest
	if got := kinds(map[runKey]*core.Stats{key(core.CheckOff): &bad}); got["oracle-hash"] == 0 {
		t.Fatalf("missing digest not flagged: %v", got)
	}
}

// A small end-to-end matrix must come back clean.
func TestValidateSmallMatrix(t *testing.T) {
	report, err := Validate(context.Background(), Options{
		Schemes: []core.Scheme{core.PosSel, core.DSel},
		Benches: []string{"gcc"},
		Seeds:   []int64{1},
		Insts:   5_000, Warmup: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("findings on a clean matrix: %v", report.Findings)
	}
	if want := 2 * 3; report.Runs != want {
		t.Fatalf("ran %d simulations, want %d", report.Runs, want)
	}
}

// batchStats runs the given specs through one engine and returns the
// per-spec stats. The submission order is the slice order, so callers
// can permute it.
func batchStats(t *testing.T, seed int64, specs []sim.Spec) map[sim.Spec]*core.Stats {
	t.Helper()
	eng := sim.NewEngine(sim.Options{Insts: 4_000, Warmup: 1_000, Seed: seed})
	defer eng.Close()
	out := make(map[sim.Spec]*core.Stats, len(specs))
	for _, spec := range specs {
		res, err := eng.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		out[spec] = res.Stats
	}
	return out
}

// Metamorphic: permuting the execution order of a batch (which permutes
// machine-pool reuse) and permuting the seed list must leave every
// per-run statistic identical — any difference means state leaks
// between pooled runs.
func TestMetamorphicSeedAndOrderPermutation(t *testing.T) {
	var specs []sim.Spec
	for _, s := range core.Schemes() {
		specs = append(specs, sim.Spec{Bench: "gcc", Scheme: s, Over: sim.Overrides{Check: core.CheckCheap}})
	}
	seeds := []int64{1, 2, 3}
	permuted := []int64{3, 1, 2}

	type agg struct {
		cycles int64
		hash   uint64
	}
	collect := func(order []int64) map[sim.Spec]map[int64]agg {
		byDim := make(map[sim.Spec]map[int64]agg)
		for i, seed := range order {
			sp := append([]sim.Spec(nil), specs...)
			if i%2 == 1 { // alternate submission order within the batch
				for l, r := 0, len(sp)-1; l < r; l, r = l+1, r-1 {
					sp[l], sp[r] = sp[r], sp[l]
				}
			}
			for spec, st := range batchStats(t, seed, sp) {
				if byDim[spec] == nil {
					byDim[spec] = make(map[int64]agg)
				}
				byDim[spec][seed] = agg{cycles: st.Cycles, hash: st.RetireHash}
			}
		}
		return byDim
	}

	a := collect(seeds)
	b := collect(permuted)
	for spec, perSeed := range a {
		for seed, want := range perSeed {
			if got := b[spec][seed]; got != want {
				t.Errorf("%s seed %d: %+v under one order, %+v under another", spec, seed, want, got)
			}
		}
	}
}

// Metamorphic: a longer run of the same deterministic stream passes
// through the shorter run's state, so doubling the trace length can
// never decrease any cumulative replay counter, for any scheme.
func TestMetamorphicTraceLengthMonotone(t *testing.T) {
	const short = 5_000
	for _, bench := range []string{"gcc", "mcf"} {
		for _, s := range core.Schemes() {
			t.Run(bench+"/"+s.String(), func(t *testing.T) {
				t.Parallel()
				run := func(insts int64) *core.Stats {
					prof, err := workload.ByName(bench)
					if err != nil {
						t.Fatal(err)
					}
					gen, err := workload.NewGenerator(prof, 1)
					if err != nil {
						t.Fatal(err)
					}
					cfg := core.Config4Wide()
					cfg.Scheme = s
					cfg.Check = core.CheckCheap
					cfg.MaxInsts = insts
					cfg.Warmup = 0
					m, err := core.New(cfg, gen)
					if err != nil {
						t.Fatal(err)
					}
					st, err := m.Run()
					if err != nil {
						t.Fatal(err)
					}
					return st
				}
				a, b := run(short), run(2*short)
				replaysA := a.TotalIssues - a.FirstIssues
				replaysB := b.TotalIssues - b.FirstIssues
				if replaysB < replaysA || b.LoadSchedMisses < a.LoadSchedMisses ||
					b.SquashedIssues < a.SquashedIssues || b.Cycles < a.Cycles {
					t.Errorf("doubling the trace shrank a cumulative counter: replays %d->%d misses %d->%d squashes %d->%d cycles %d->%d",
						replaysA, replaysB, a.LoadSchedMisses, b.LoadSchedMisses,
						a.SquashedIssues, b.SquashedIssues, a.Cycles, b.Cycles)
				}
			})
		}
	}
}
