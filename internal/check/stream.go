package check

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/evstream"
	"repro/internal/sim"
	"repro/internal/workload"
)

// recordStream re-simulates one finding's spec on a bare machine with
// an event recorder attached and writes the full pipeline event stream
// to <StreamDir>/<spec>-seed<N>.evs. The machine is deterministic, so
// the recording run retraces the failing run event for event; the
// violations' Cursor fields index directly into the written stream.
// The run's own error (normally the same CheckError that produced the
// finding) is irrelevant here — the stream up to the stopping cycle is
// the artifact.
func (v *validator) recordStream(spec sim.Spec, seed int64) (string, error) {
	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		return "", err
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		return "", err
	}
	cfg := spec.Config(sim.Options{Insts: v.opts.Insts, Warmup: v.opts.Warmup})
	m, err := core.New(cfg, gen)
	if err != nil {
		return "", err
	}

	path := streamPath(v.opts.StreamDir, spec, seed)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	rec, err := evstream.NewRecorder(f, evstream.Header{
		Spec: spec.String(),
		Seed: seed,
		Note: "validate finding",
	})
	if err != nil {
		f.Close()
		os.Remove(path)
		return "", err
	}
	m.SetSink(rec)
	_, _ = m.Run() // a monitored run stops itself at the violation
	err = rec.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", fmt.Errorf("check: recording %s: %w", spec, err)
	}
	return path, nil
}

// streamPath names a finding's stream artifact inside dir.
func streamPath(dir string, spec sim.Spec, seed int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-seed%d.evs", sanitizeName(spec.String()), seed))
}

// sanitizeName maps a spec label to a filesystem-safe slug.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-', r == '=':
			return r
		default:
			return '-'
		}
	}, s)
}
