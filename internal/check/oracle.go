// Package check is the validation layer over the replay simulator: a
// differential oracle and a matrix runner that drive internal/sim runs
// at every invariant-monitoring level and compare them against each
// other and against a "magic scheduler" model of the same instruction
// stream.
//
// The in-situ monitors themselves (replay closure, token conservation,
// wakeup justification, retire order, occupancy, memory epochs) live in
// internal/core so they can see machine internals; this package is the
// cross-run half of the validation story.
package check

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// OracleResult is the magic scheduler's view of one (bench, seed, width)
// instruction stream: the retired-stream digest a correct machine must
// reproduce exactly, plus a dataflow-limit cycle lower bound no machine
// can beat.
type OracleResult struct {
	// Target is the number of instructions hashed (warmup + measured),
	// matching the machine's retired-stream digest window.
	Target int64
	// Hash is the order-sensitive digest of the first Target
	// instructions, computed exactly as the machine computes
	// Stats.RetireHash over its retired stream. In-order retirement of
	// the fetched stream is the architectural contract every replay
	// scheme must preserve, so this must match bit-for-bit.
	Hash uint64
	// Loads, Stores and Branches count instruction classes over the
	// Target window (informational).
	Loads, Stores, Branches int64
	// IdealCycles is the dataflow-limit execution time: every load hits
	// in the DL1, scheduling is perfect (no replays), fetch sustains
	// full width, and only true dependences and result latencies
	// constrain issue. No real run of the same stream can retire Target
	// instructions in fewer cycles.
	IdealCycles int64
}

// oracleRing bounds the dependence window the oracle tracks. The real
// machine's ROB is far smaller, and the workload generator draws
// producers from a bounded recent window, so completion times older
// than the ring are long since architecturally visible and count as
// ready-at-zero — which keeps the bound a true lower bound.
const oracleRingBits = 12

// RunOracle replays the (bench, seed) instruction stream through the
// magic scheduler: perfect load-latency knowledge, no speculation, no
// structural hazards beyond fetch width. It returns the stream digest
// and the dataflow cycle bound for a run of warmup+insts instructions.
func RunOracle(bench string, seed int64, wide8 bool, warmup, insts int64) (OracleResult, error) {
	prof, err := workload.ByName(bench)
	if err != nil {
		return OracleResult{}, err
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		return OracleResult{}, err
	}
	cfg := core.Config4Wide()
	if wide8 {
		cfg = core.Config8Wide()
	}
	width := int64(cfg.Width)
	// A perfectly scheduled load completes in address generation plus a
	// DL1 hit; the magic scheduler's omniscience means it never pays
	// for a scheduling miss, and real memory latencies only exceed it.
	loadLat := int64(isa.Load.ExecLatency() + cfg.Hierarchy.DL1.Latency)

	const ringSize = 1 << oracleRingBits
	var fin [ringSize]int64
	res := OracleResult{Target: warmup + insts, Hash: isa.HashInit}
	var maxFin int64
	for seq := int64(0); seq < res.Target; seq++ {
		in := gen.Next()
		res.Hash = isa.HashInst(res.Hash, &in)
		switch in.Class {
		case isa.Load:
			res.Loads++
		case isa.Store:
			res.Stores++
		case isa.Branch:
			res.Branches++
		}

		// Earliest start: the fetch/dispatch bound, then each live
		// producer's completion. Stores need only their address operand
		// (Src1); their data is consumed at commit, which the dataflow
		// bound does not model.
		start := seq / width
		deps := [2]int64{in.Src1, in.Src2}
		nsrc := 2
		if in.Class == isa.Store {
			nsrc = 1
		}
		for _, d := range deps[:nsrc] {
			if d < 0 || seq-d >= ringSize {
				continue // ready at dispatch, or long architecturally visible
			}
			if f := fin[d&(ringSize-1)]; f > start {
				start = f
			}
		}
		lat := int64(in.Class.ExecLatency())
		if in.Class == isa.Load {
			lat = loadLat
		}
		f := start + lat
		fin[seq&(ringSize-1)] = f
		if f > maxFin {
			maxFin = f
		}
	}
	// Retirement cannot beat either the longest dependence chain or the
	// retire bandwidth.
	res.IdealCycles = maxFin
	if rb := (res.Target + width - 1) / width; rb > res.IdealCycles {
		res.IdealCycles = rb
	}
	return res, nil
}
