package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// readLines returns the journal's newline-terminated lines.
func readLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" {
			lines = append(lines, l)
		}
	}
	return lines
}

// An interrupted append leaves a torn trailing fragment without its
// newline. Resume must truncate it away and continue the journal from
// the last intact line — not glue the next append onto the fragment,
// which would corrupt a good entry too.
func TestJournalTornTailTruncateAndContinue(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	opts := testOpts()
	opts.Journal = path
	specA := Spec{Bench: "gap", Scheme: core.PosSel}
	specB := Spec{Bench: "gzip", Scheme: core.PosSel}

	e1 := NewEngine(opts)
	if _, err := e1.Run(context.Background(), specA); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"bench":"gap","scheme":"PosSel","in`) // torn, no newline
	f.Close()

	e2 := NewEngine(opts)
	if got := e2.JournalSkipped(); got != 1 {
		t.Errorf("skipped %d journal lines, want 1 (the torn tail)", got)
	}
	if _, err := e2.Run(context.Background(), specA); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(context.Background(), specB); err != nil {
		t.Fatal(err)
	}
	if snap := e2.Snapshot(); snap.Resumed != 1 {
		t.Errorf("resumed %d runs, want 1", snap.Resumed)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	lines := readLines(t, path)
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines after repair+append, want 2:\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	for i, l := range lines {
		var je journalEntry
		if err := json.Unmarshal([]byte(l), &je); err != nil {
			t.Errorf("line %d no longer parses after repair: %v\n%s", i, err, l)
		}
	}

	// The repaired journal resumes both runs with nothing skipped.
	e3 := NewEngine(opts)
	defer e3.Close()
	if got := e3.JournalSkipped(); got != 0 {
		t.Errorf("skipped %d lines on the repaired journal, want 0", got)
	}
	if _, err := e3.RunAll(context.Background(), []Spec{specA, specB}); err != nil {
		t.Fatal(err)
	}
	if snap := e3.Snapshot(); snap.Resumed != 2 {
		t.Errorf("resumed %d runs from the repaired journal, want 2", snap.Resumed)
	}
}

// A final line missing its newline is an unfinished write even when its
// bytes happen to parse: the entry is not trusted, the line is cut, and
// the run re-simulates and re-journals cleanly.
func TestJournalUnterminatedTailNotTrusted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	opts := testOpts()
	opts.Journal = path
	spec := Spec{Bench: "gap", Scheme: core.PosSel}

	e1 := NewEngine(opts)
	if _, err := e1.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(len(data)-1)); err != nil { // drop the '\n'
		t.Fatal(err)
	}

	e2 := NewEngine(opts)
	if got := e2.JournalSkipped(); got != 1 {
		t.Errorf("skipped %d lines, want 1 (the unterminated tail)", got)
	}
	if _, err := e2.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if snap := e2.Snapshot(); snap.Resumed != 0 {
		t.Errorf("resumed %d runs from an unterminated line, want 0", snap.Resumed)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readLines(t, path); len(got) != 1 {
		t.Errorf("journal has %d lines after re-simulation, want 1", len(got))
	}
}

// Corrupt lines with intact entries after them stay in place: the tail
// repair must never discard good records behind mid-file garbage.
func TestJournalMidFileCorruptionSkippedNotTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	opts := testOpts()
	opts.Journal = path
	specA := Spec{Bench: "gap", Scheme: core.PosSel}
	specB := Spec{Bench: "gzip", Scheme: core.PosSel}

	e1 := NewEngine(opts)
	if _, err := e1.RunAll(context.Background(), []Spec{specA, specB}); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	// Splice garbage between the two intact entries.
	lines := readLines(t, path)
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	spliced := lines[0] + "\n{corrupt mid-file line}\n" + lines[1] + "\n"
	if err := os.WriteFile(path, []byte(spliced), 0o644); err != nil {
		t.Fatal(err)
	}

	// Garbage line still present (three lines), both real entries load.
	if got := readLines(t, path); len(got) != 3 {
		t.Fatalf("journal has %d lines, want 3 (good, corrupt, good)", len(got))
	}
	e3 := NewEngine(opts)
	defer e3.Close()
	if got := e3.JournalSkipped(); got != 1 {
		t.Errorf("skipped %d lines, want 1", got)
	}
	if _, err := e3.RunAll(context.Background(), []Spec{specA, specB}); err != nil {
		t.Fatal(err)
	}
	if snap := e3.Snapshot(); snap.Resumed != 2 {
		t.Errorf("resumed %d runs, want 2", snap.Resumed)
	}
	if got := readLines(t, path); len(got) != 3 {
		t.Errorf("pure resume rewrote the journal: %d lines, want 3", len(got))
	}
}

// ReadJournal surfaces the same view a resuming engine sees.
func TestReadJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	opts := testOpts()
	opts.Journal = path
	spec := Spec{Bench: "gap", Scheme: core.PosSel}
	e := NewEngine(opts)
	out, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	runs, skipped, err := ReadJournal(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(runs) != 1 {
		t.Fatalf("ReadJournal: %d runs, %d skipped; want 1, 0", len(runs), skipped)
	}
	got, ok := runs[spec.Normalize()]
	if !ok {
		t.Fatalf("ReadJournal missing %s", spec)
	}
	if got.Stats.RetireHash != out.Stats.RetireHash {
		t.Error("ReadJournal stats diverge from the live run")
	}
}
