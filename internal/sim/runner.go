package sim

import (
	"context"

	"repro/internal/core"
)

// Runner is the execution backend behind the commands: something that
// can run one spec or a whole matrix and return results. Two
// implementations exist — *Engine simulates locally, and api.Client
// submits to a simd server over the v1 wire API — and every command
// drives whichever the flags select through this one interface, so
// "run it here" and "run it against the service" are the same code
// path.
//
// Contract (both implementations honor it):
//   - specs are normalized before execution, so the returned
//     RunOut.Spec may differ from the argument in redundant overrides;
//   - RunAll never fails fast: outputs are in argument order, failed
//     positions are nil, and the joined per-spec errors come back as
//     the error value;
//   - identical specs submitted concurrently execute once.
type Runner interface {
	Run(ctx context.Context, spec Spec) (*RunOut, error)
	RunAll(ctx context.Context, specs []Spec) ([]*RunOut, error)
}

var _ Runner = (*Engine)(nil)

// NormalizeSpec canonicalizes a spec exactly the way an engine built
// from these options would: a spec that leaves Check at the zero level
// inherits DefaultCheck, then the usual Table 3 normalization zeroes
// redundant overrides. The service layer uses it so cache keys agree
// with engine memoization.
func (o Options) NormalizeSpec(s Spec) Spec {
	if s.Over.Check == core.CheckOff {
		s.Over.Check = o.DefaultCheck
	}
	return s.Normalize()
}
