package sim

import (
	"sync/atomic"
	"time"
)

// progress holds the engine's live counters. All updates are lock-free
// atomic adds on the worker path — a run's bookkeeping must never
// serialize the pool — and Snapshot reads them without stopping the
// world, so a momentarily inconsistent (Queued vs Done) view is
// possible and fine for display purposes.
type progress struct {
	queued  atomic.Int64
	running atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	resumed atomic.Int64
	retried atomic.Int64
	warmed  atomic.Int64
	insts   atomic.Int64
}

// Snapshot is one observation of a batch's progress.
type Snapshot struct {
	// Queued counts specs submitted to the engine (including
	// memoization hits and journal replays).
	Queued int64
	// Running counts simulations currently executing.
	Running int64
	// Done counts specs finished successfully, whether simulated,
	// served from the cache, or replayed from the journal.
	Done int64
	// Failed counts specs whose run (and retry) errored.
	Failed int64
	// Resumed counts runs served from the checkpoint journal instead
	// of being re-simulated.
	Resumed int64
	// Retried counts pooled-machine failures re-attempted on a fresh
	// machine.
	Retried int64
	// Warmed counts runs warm-started from a checkpoint artifact
	// instead of simulating from cycle zero.
	Warmed int64
	// Insts is the total retired (measured) instructions simulated so
	// far; journal replays and cache hits do not count.
	Insts int64
	// Elapsed is the wall time since the engine was built.
	Elapsed time.Duration
}

// UopsPerSec returns the aggregate simulation throughput in retired
// uops per wall-clock second.
func (s Snapshot) UopsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Insts) / s.Elapsed.Seconds()
}

// Snapshot returns the engine's current progress counters. It
// allocates nothing and may be called from any goroutine.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{
		Queued:  e.prog.queued.Load(),
		Running: e.prog.running.Load(),
		Done:    e.prog.done.Load(),
		Failed:  e.prog.failed.Load(),
		Resumed: e.prog.resumed.Load(),
		Retried: e.prog.retried.Load(),
		Warmed:  e.prog.warmed.Load(),
		Insts:   e.prog.insts.Load(),
		Elapsed: time.Since(e.start),
	}
}

// notify delivers a snapshot to the progress callback, serialized so
// renderers need no locking of their own.
func (e *Engine) notify() {
	if e.opts.OnProgress == nil {
		return
	}
	e.cbMu.Lock()
	e.opts.OnProgress(e.Snapshot())
	e.cbMu.Unlock()
}
