package sim

import (
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/prefetch"
)

// Spec identifies one simulation: a benchmark, a machine width, a
// replay scheme, and optional configuration overrides. Specs are plain
// comparable values — the engine uses them as memoization and journal
// keys — and two specs that normalize equal denote the same run.
type Spec struct {
	// Bench names a workload profile (see workload.Benchmarks).
	Bench string
	// Wide8 selects the 8-wide Table 3 machine (default 4-wide).
	Wide8 bool
	// Scheme is the replay scheme.
	Scheme core.Scheme
	// Over holds optional deviations from the Table 3 configuration.
	Over Overrides
}

// Overrides are the configuration deltas the ablation sweeps explore.
// Zero-valued fields keep the Table 3 value for the selected width, so
// the zero Overrides is the paper's machine.
type Overrides struct {
	// Tokens overrides the TkSel token pool size.
	Tokens int `json:"tokens,omitempty"`
	// SchedToExec overrides the schedule-to-execute distance.
	SchedToExec int `json:"schedToExec,omitempty"`
	// IQSize, ROBSize and LSQSize override the window structures.
	IQSize  int `json:"iq,omitempty"`
	ROBSize int `json:"rob,omitempty"`
	LSQSize int `json:"lsq,omitempty"`
	// PredEntries overrides the scheduling-miss predictor table size
	// (must be a power of two).
	PredEntries int `json:"predEntries,omitempty"`
	// Bpred selects a branch-predictor kind by name ("tage"); empty or
	// "combined" keeps the paper's bimodal/gshare combination. Stored
	// as the canonical kind name so specs stay comparable.
	Bpred string `json:"bpred,omitempty"`
	// Prefetch selects a data-prefetcher kind by name ("stride");
	// empty or "off" keeps the paper's prefetch-free machine.
	Prefetch string `json:"prefetch,omitempty"`
	// ReplayQueue selects the Figure 4b replay-queue model.
	ReplayQueue bool `json:"rq,omitempty"`
	// ValuePrediction enables load value prediction.
	ValuePrediction bool `json:"vp,omitempty"`
	// Check sets the invariant-monitoring level (core.CheckLevel); the
	// zero value is off. Distinct levels are distinct specs: they memoize
	// and journal separately, which is what lets the validation layer
	// compare the same run at different levels.
	Check core.CheckLevel `json:"check,omitempty"`
}

// isZero reports whether every override keeps its default.
func (o Overrides) isZero() bool { return o == Overrides{} }

// Width returns the human label for the machine width.
func (s Spec) Width() string {
	if s.Wide8 {
		return "8-wide"
	}
	return "4-wide"
}

// String labels the spec in errors and progress output.
func (s Spec) String() string {
	base := fmt.Sprintf("%s %s %v", s.Bench, s.Width(), s.Scheme)
	if s.Over.isZero() {
		return base
	}
	var d []string
	add := func(name string, v int) {
		if v > 0 {
			d = append(d, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("tokens", s.Over.Tokens)
	add("schedToExec", s.Over.SchedToExec)
	add("iq", s.Over.IQSize)
	add("rob", s.Over.ROBSize)
	add("lsq", s.Over.LSQSize)
	add("predEntries", s.Over.PredEntries)
	if s.Over.Bpred != "" {
		d = append(d, "bpred="+s.Over.Bpred)
	}
	if s.Over.Prefetch != "" {
		d = append(d, "prefetch="+s.Over.Prefetch)
	}
	if s.Over.ReplayQueue {
		d = append(d, "rq")
	}
	if s.Over.ValuePrediction {
		d = append(d, "vp")
	}
	if s.Over.Check != core.CheckOff {
		d = append(d, "check="+s.Over.Check.String())
	}
	return base + " [" + strings.Join(d, " ") + "]"
}

// Normalize zeroes overrides that equal the Table 3 default for the
// spec's width, so e.g. the token sweep's pool-of-16 point on the
// 8-wide machine and the plain 8-wide baseline share one cache entry
// and one journal line. The engine normalizes every spec on entry.
func (s Spec) Normalize() Spec {
	base := s.baseConfig()
	o := &s.Over
	if o.Tokens == base.Tokens {
		o.Tokens = 0
	}
	if o.SchedToExec == base.SchedToExec {
		o.SchedToExec = 0
	}
	if o.IQSize == base.IQSize {
		o.IQSize = 0
	}
	if o.ROBSize == base.ROBSize {
		o.ROBSize = 0
	}
	if o.LSQSize == base.LSQSize {
		o.LSQSize = 0
	}
	if o.PredEntries == base.SMPred.Entries {
		o.PredEntries = 0
	}
	// Frontend names canonicalize through their registries: any
	// spelling of the default kind is the zero override, and other
	// kinds take their canonical (lower-case) name. Unknown names pass
	// through — the construction layers (simflag, the wire API) reject
	// them before a spec reaches the engine.
	if k, err := bpred.ParseKind(o.Bpred); err == nil {
		if k == bpred.KindCombined {
			o.Bpred = ""
		} else {
			o.Bpred = k.String()
		}
	}
	if k, err := prefetch.ParseKind(o.Prefetch); err == nil {
		if k == prefetch.KindOff {
			o.Prefetch = ""
		} else {
			o.Prefetch = k.String()
		}
	}
	return s
}

// baseConfig returns the Table 3 machine for the spec's width.
func (s Spec) baseConfig() core.Config {
	if s.Wide8 {
		return core.Config8Wide()
	}
	return core.Config4Wide()
}

// Config materializes the spec (plus the engine's run-length options)
// into a machine configuration — the exact configuration Engine.Run
// would simulate. The validation layer uses it to re-run a finding's
// spec on a bare machine with an event recorder attached.
func (s Spec) Config(opts Options) core.Config { return s.config(opts) }

// config materializes the spec (plus the engine's run-length options)
// into a machine configuration.
func (s Spec) config(opts Options) core.Config {
	cfg := s.baseConfig()
	cfg.Scheme = s.Scheme
	cfg.MaxInsts = opts.Insts
	cfg.Warmup = opts.Warmup
	o := s.Over
	if o.Tokens > 0 {
		cfg.Tokens = o.Tokens
	}
	if o.SchedToExec > 0 {
		cfg.SchedToExec = o.SchedToExec
	}
	if o.IQSize > 0 {
		cfg.IQSize = o.IQSize
	}
	if o.ROBSize > 0 {
		cfg.ROBSize = o.ROBSize
	}
	if o.LSQSize > 0 {
		cfg.LSQSize = o.LSQSize
	}
	if o.PredEntries > 0 {
		cfg.SMPred.Entries = o.PredEntries
	}
	if k, err := bpred.ParseKind(o.Bpred); err == nil && k == bpred.KindTAGE {
		cfg.Bpred = bpred.DefaultTAGE()
	}
	if k, err := prefetch.ParseKind(o.Prefetch); err == nil && k == prefetch.KindStride {
		cfg.Prefetch = prefetch.DefaultStride()
	}
	cfg.ReplayQueue = o.ReplayQueue
	cfg.ValuePrediction = o.ValuePrediction
	cfg.Check = o.Check
	return cfg
}
