package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/evstream"
)

// defaultCheckpointEvery is the checkpoint cadence in cycles when
// Options.CheckpointDir is set but no cadence is given: frequent
// enough that a warm start skips most of a 200k-instruction run,
// sparse enough that serialization stays invisible next to
// simulation.
const defaultCheckpointEvery = 50_000

// checkpointKey names a spec's checkpoint artifact. The key excludes
// the measured instruction count on purpose: a checkpoint taken under
// a short tail seeds a longer run of the same machine (the warm-start
// use case), so only the fields that change the pre-tail trajectory —
// spec, warmup, and seed — participate.
func checkpointKey(spec Spec, opts Options) string {
	return fmt.Sprintf("%s-w%d-s%d", sanitizeKey(spec.String()), opts.Warmup, opts.Seed)
}

// checkpointPath places a spec's artifact in the checkpoint directory.
func checkpointPath(dir string, spec Spec, opts Options) string {
	return filepath.Join(dir, checkpointKey(spec, opts)+".evs")
}

// sanitizeKey maps a spec label to a filesystem-safe slug.
func sanitizeKey(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-', r == '=':
			return r
		default:
			return '-'
		}
	}, s)
}

// ckptLocks serializes writers per artifact path, so engines sharing a
// checkpoint directory in one process never interleave rewrites.
var ckptLocks sync.Map // path -> *sync.Mutex

func ckptLock(path string) *sync.Mutex {
	mu, _ := ckptLocks.LoadOrStore(path, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// saveCheckpoint atomically rewrites a spec's artifact with one
// checkpoint: a minimal .evs stream (magic, header, a single
// checkpoint record). Write-to-temp-then-rename keeps a concurrent
// loader from ever seeing a torn file, and each rewrite supersedes the
// previous checkpoint so the artifact always holds the furthest point
// reached.
func saveCheckpoint(path string, hdr evstream.Header, st *core.MachineState) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("sim: encoding checkpoint: %w", err)
	}
	mu := ckptLock(path)
	mu.Lock()
	defer mu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	rec, err := evstream.NewRecorder(f, hdr)
	if err == nil {
		err = rec.Checkpoint(st.Cycle, payload)
	}
	if err == nil {
		err = rec.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	return nil
}

// loadCheckpoint reads a spec's artifact back into a machine state.
// A missing file is (nil, nil) — cold start, not an error; a corrupt
// file is an error the caller treats the same way.
func loadCheckpoint(path string) (*core.MachineState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := evstream.NewReader(f)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("sim: checkpoint %s holds no checkpoint record", path)
		}
		if err != nil {
			return nil, err
		}
		if rec.Kind != evstream.RecCheckpoint {
			continue
		}
		var st core.MachineState
		if err := json.Unmarshal(rec.Checkpoint, &st); err != nil {
			return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
		}
		return &st, nil
	}
}
