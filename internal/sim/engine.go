// Package sim is the batch simulation engine behind every command and
// experiment in this repository: one place that knows how to run many
// machine configurations fast, safely, and resumably.
//
// The engine owns a pool of reusable machines (one per worker; the
// buffered channel doubles as concurrency semaphore and freelist),
// memoizes results by normalized Spec so shared baselines simulate
// once, propagates context cancellation and deadlines into the cycle
// loop via core.Machine.RunContext, aggregates per-spec failures with
// errors.Join instead of aborting the batch, retries a failed run once
// on a fresh never-pooled machine to distinguish poisoned-pool state
// from real faults, and checkpoints every completed run to a JSONL
// journal so an interrupted sweep resumes by replaying the journal —
// bit-identically — instead of re-simulating.
//
// The one-call form for embedding a single simulation:
//
//	out, err := sim.Run(ctx, sim.Spec{Bench: "gcc", Scheme: core.TkSel}, sim.Options{})
//
// Batches construct an Engine and use Run/RunAll directly.
package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/evstream"
	"repro/internal/smpred"
	"repro/internal/workload"
)

// Options control run length and engine behaviour; zero values take
// defaults sized for minutes-scale full-paper reproduction.
type Options struct {
	// Insts is the measured instruction count per run.
	Insts int64
	// Warmup is the unmeasured warmup instruction count per run.
	Warmup int64
	// Seed drives the workload generator.
	Seed int64
	// Parallelism bounds concurrent simulations (defaults to CPUs).
	Parallelism int
	// Retries is how many times a failed simulation is re-attempted on
	// a fresh, never-pooled machine before the spec is declared failed.
	// 0 means the default of one retry; negative disables retries.
	Retries int
	// Journal is the JSONL checkpoint path. When set, completed runs
	// are appended as they finish, and runs already present in the
	// file (recorded under the same Insts/Warmup/Seed) are replayed
	// instead of re-simulated. Empty disables checkpointing.
	Journal string
	// CheckpointDir, when set, holds one machine-checkpoint artifact
	// per spec (a single-checkpoint .evs stream, atomically rewritten
	// every CheckpointEvery cycles). A later run of the same spec,
	// warmup and seed — even with a different Insts — warm-starts from
	// the artifact instead of simulating from cycle zero, and still
	// produces bit-identical results. Checkpointing applies only to
	// unmonitored runs (checker state is not serialized) and is
	// best-effort: a failed save or a stale artifact falls back to a
	// cold start, never fails the run.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in cycles; 0 takes the
	// 50k-cycle default. Ignored without CheckpointDir.
	CheckpointEvery int64
	// OnProgress, when set, receives a progress snapshot after every
	// state change (spec queued, simulation started/finished/failed).
	// Calls are serialized by the engine; keep the callback fast.
	OnProgress func(Snapshot)
	// DefaultCheck is the invariant-monitoring level applied to every
	// spec that does not pin its own (spec.Over.Check left at the zero
	// CheckOff). It folds into spec normalization, so a run at the
	// defaulted level and one requesting that level explicitly share a
	// cache entry and a journal line.
	DefaultCheck core.CheckLevel
}

func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = 200_000
	}
	if o.Warmup == 0 {
		o.Warmup = 60_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.NumCPU()
	}
	switch {
	case o.Retries == 0:
		o.Retries = 1
	case o.Retries < 0:
		o.Retries = 0
	}
	return o
}

// RunOut couples a spec with its results.
type RunOut struct {
	Spec  Spec
	Stats *core.Stats
	Meter *smpred.CoverageMeter
}

// inflightRun is the duplicate-suppression record for a spec currently
// being simulated: followers wait on done instead of re-running it.
type inflightRun struct {
	done chan struct{}
	out  *RunOut
	err  error
}

// permanentError marks failures a retry cannot fix: unknown benchmark,
// invalid configuration. They fail immediately on any machine.
type permanentError struct{ error }

func (p permanentError) Unwrap() error { return p.error }

func permanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Engine runs batches of simulations. One engine amortizes its machine
// pool, memoization cache and journal across every Run/RunAll call; it
// is safe for concurrent use by multiple goroutines.
type Engine struct {
	opts  Options
	start time.Time

	mu       sync.Mutex
	cache    map[Spec]*RunOut
	inflight map[Spec]*inflightRun
	// fromJournal marks cache entries seeded from the checkpoint file,
	// so the first hit on each counts as a resumed run.
	fromJournal map[Spec]bool

	// machines pools one simulator per worker: the buffered channel is
	// both the concurrency semaphore and the freelist. Slots start nil
	// and are built (core.New) on first use; thereafter each run resets
	// a pooled machine instead of reallocating the window, event wheel
	// and cache arrays — a full-paper sweep is 265 simulations.
	machines chan *core.Machine

	journal        *journal
	journalErr     error
	journalSkipped int

	prog progress
	cbMu sync.Mutex

	// runHook, when non-nil, may inject a failure before a simulation
	// attempt (test seam for the retry path).
	runHook func(spec Spec, attempt int) error
}

// NewEngine builds a batch engine. A Journal option is loaded (and the
// file opened for appending) here; journal I/O errors are reported by
// the first Run rather than swallowed.
func NewEngine(opts Options) *Engine {
	o := opts.withDefaults()
	e := &Engine{
		opts:     o,
		start:    time.Now(),
		cache:    make(map[Spec]*RunOut),
		inflight: make(map[Spec]*inflightRun),
		machines: make(chan *core.Machine, o.Parallelism),
	}
	for i := 0; i < o.Parallelism; i++ {
		e.machines <- nil
	}
	if o.Journal != "" {
		runs, skipped, truncateAt, err := loadJournal(o.Journal, o)
		if err != nil {
			e.journalErr = fmt.Errorf("sim: reading journal %s: %w", o.Journal, err)
			return e
		}
		e.journalSkipped = skipped
		e.fromJournal = make(map[Spec]bool, len(runs))
		for s, out := range runs {
			e.cache[s] = out
			e.fromJournal[s] = true
		}
		if truncateAt >= 0 {
			// The file ends in a torn or corrupt region (an interrupted
			// append). Cut it back to the last intact line so the next
			// append continues a clean JSONL stream instead of gluing
			// onto the fragment.
			if terr := os.Truncate(o.Journal, truncateAt); terr != nil {
				e.journalErr = fmt.Errorf("sim: repairing journal %s: %w", o.Journal, terr)
				return e
			}
		}
		j, err := openJournal(o.Journal)
		if err != nil {
			e.journalErr = fmt.Errorf("sim: opening journal %s: %w", o.Journal, err)
			return e
		}
		e.journal = j
	}
	return e
}

// Run executes one simulation and returns its results. Identical to a
// direct sim.Run call, but memoized, pooled and checkpointed by this
// engine.
func Run(ctx context.Context, spec Spec, opts Options) (*RunOut, error) {
	e := NewEngine(opts)
	defer e.Close()
	return e.Run(ctx, spec)
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Cached returns how many distinct runs the engine holds, whether
// simulated this session or seeded from the journal.
func (e *Engine) Cached() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// JournalSkipped returns how many journal lines were ignored on load
// (torn writes, other options, unknown schemes).
func (e *Engine) JournalSkipped() int { return e.journalSkipped }

// Close flushes and closes the checkpoint journal. Call it after the
// batch completes; an engine without a journal needs no Close.
func (e *Engine) Close() error {
	if e.journal == nil {
		return nil
	}
	j := e.journal
	e.journal = nil
	return j.close()
}

// normalize canonicalizes a spec against the engine's options: specs
// that leave Check at the zero level inherit Options.DefaultCheck
// before the usual Table 3 normalization.
func (e *Engine) normalize(s Spec) Spec { return e.opts.NormalizeSpec(s) }

// Run executes (or recalls) one simulation.
func (e *Engine) Run(ctx context.Context, spec Spec) (*RunOut, error) {
	spec = e.normalize(spec)
	e.prog.queued.Add(1)
	e.notify()
	out, err := e.result(ctx, spec)
	if err != nil {
		e.prog.failed.Add(1)
	} else {
		e.prog.done.Add(1)
	}
	e.notify()
	return out, err
}

// RunAll executes the given specs concurrently (memoized and
// deduplicated) and returns outputs in spec order. The batch never
// fails fast: every spec gets its attempt, per-spec failures are
// aggregated with errors.Join, and the outputs of the specs that did
// succeed are returned alongside the joined error (failed positions
// are nil) — a 167/168 sweep is a checkpointed near-success, not a
// total loss.
func (e *Engine) RunAll(ctx context.Context, specs []Spec) ([]*RunOut, error) {
	// De-duplicate while preserving order.
	uniq := make([]Spec, 0, len(specs))
	seen := make(map[Spec]bool, len(specs))
	for _, s := range specs {
		n := e.normalize(s)
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	// Concurrency is bounded inside Run by the machine pool, which
	// doubles as the semaphore.
	res := make([]*RunOut, len(uniq))
	errs := make([]error, len(uniq))
	var wg sync.WaitGroup
	for i, s := range uniq {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			res[i], errs[i] = e.Run(ctx, s)
		}(i, s)
	}
	wg.Wait()
	bySpec := make(map[Spec]*RunOut, len(uniq))
	for i, s := range uniq {
		if errs[i] == nil {
			bySpec[s] = res[i]
		}
	}
	out := make([]*RunOut, len(specs))
	for i, s := range specs {
		out[i] = bySpec[e.normalize(s)]
	}
	return out, errors.Join(errs...)
}

// result returns the memoized, journal-replayed, or freshly simulated
// run for a normalized spec, suppressing duplicate concurrent work.
func (e *Engine) result(ctx context.Context, spec Spec) (*RunOut, error) {
	if e.journalErr != nil {
		return nil, e.journalErr
	}
	for {
		e.mu.Lock()
		if out, ok := e.cache[spec]; ok {
			if e.fromJournal[spec] {
				delete(e.fromJournal, spec)
				e.prog.resumed.Add(1)
			}
			e.mu.Unlock()
			return out, nil
		}
		if fl, ok := e.inflight[spec]; ok {
			e.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("sim: %s: %w", spec, ctx.Err())
			}
			if fl.err == nil {
				return fl.out, nil
			}
			// The leader may have failed only because its own context
			// was canceled; if ours is still live, take over the spec.
			if isCtxErr(fl.err) && ctx.Err() == nil {
				continue
			}
			return nil, fl.err
		}
		fl := &inflightRun{done: make(chan struct{})}
		e.inflight[spec] = fl
		e.mu.Unlock()

		out, err := e.exec(ctx, spec)
		e.mu.Lock()
		if err == nil {
			e.cache[spec] = out
		}
		delete(e.inflight, spec)
		e.mu.Unlock()
		fl.out, fl.err = out, err
		close(fl.done)
		return out, err
	}
}

// exec simulates one spec on a pooled worker, retrying on a fresh
// machine when the pooled attempt fails, and checkpoints the result.
func (e *Engine) exec(ctx context.Context, spec Spec) (*RunOut, error) {
	cfg := spec.config(e.opts)
	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		return nil, permanentError{fmt.Errorf("sim: %s: %w", spec, err)}
	}

	// Acquire a worker slot — or give up immediately on cancellation,
	// so a canceled batch drains instead of starting new work.
	var slot *core.Machine
	select {
	case slot = <-e.machines:
	case <-ctx.Done():
		return nil, fmt.Errorf("sim: %s: %w", spec, ctx.Err())
	}
	e.prog.running.Add(1)
	e.notify()

	out, pool, err := e.attempt(ctx, spec, cfg, prof, slot, 0)
	for attempt := 1; err != nil && attempt <= e.opts.Retries &&
		!permanent(err) && !isCtxErr(err) && ctx.Err() == nil; attempt++ {
		// The pooled machine is suspect: retry on a fresh, never-pooled
		// machine. Success here means reuse state was the fault (and
		// the bad machine is already dropped); a second failure is a
		// real fault in the spec itself.
		e.prog.retried.Add(1)
		e.notify()
		out, pool, err = e.attempt(ctx, spec, cfg, prof, nil, attempt)
	}
	e.machines <- pool
	e.prog.running.Add(-1)
	if err != nil {
		return nil, err
	}
	if e.journal != nil {
		if jerr := e.journal.append(e.opts, out); jerr != nil {
			return nil, jerr
		}
	}
	e.prog.insts.Add(out.Stats.Retired)
	return out, nil
}

// attempt runs one simulation. pooled is the worker slot's machine
// (nil when the slot is empty or a fresh machine is wanted). The
// returned machine goes back into the slot: the machine that ran on
// success — fresh builds are pooled from then on — or nil after a
// failure, so a bad run can't poison later ones.
func (e *Engine) attempt(ctx context.Context, spec Spec, cfg core.Config,
	prof workload.Profile, pooled *core.Machine, attempt int) (*RunOut, *core.Machine, error) {
	gen, err := workload.NewGenerator(prof, e.opts.Seed)
	if err != nil {
		return nil, nil, permanentError{fmt.Errorf("sim: %s: %w", spec, err)}
	}
	m := pooled
	if m == nil {
		m, err = core.New(cfg, gen)
	} else {
		err = m.Reset(cfg, gen)
	}
	if err != nil {
		// Configuration errors are permanent: the spec fails the same
		// way on any machine.
		return nil, nil, permanentError{fmt.Errorf("sim: %s: %w", spec, err)}
	}
	if e.runHook != nil {
		if herr := e.runHook(spec, attempt); herr != nil {
			return nil, nil, fmt.Errorf("sim: %s: %w", spec, herr)
		}
	}
	if e.opts.CheckpointDir != "" && cfg.Check == core.CheckOff {
		if cerr := e.armCheckpoints(m, spec, cfg, prof); cerr != nil {
			return nil, nil, permanentError{fmt.Errorf("sim: %s: %w", spec, cerr)}
		}
	}
	st, err := m.RunContext(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %s: %w", spec, err)
	}
	// Snapshot results out of the machine before it is pooled for
	// reuse: Stats and Meter pointers alias machine state.
	stc := st.Clone()
	meter := *m.Meter()
	return &RunOut{Spec: spec, Stats: &stc, Meter: &meter}, m, nil
}

// armCheckpoints warm-starts a machine from the spec's checkpoint
// artifact when one fits (same machine, warmup and seed; the run's
// retirement target not yet reached) and arms periodic artifact
// rewrites for the run ahead. A missing, stale or corrupt artifact
// falls back to the cold start the machine is already reset for; only
// a failure to rebuild that cold state is an error.
func (e *Engine) armCheckpoints(m *core.Machine, spec Spec, cfg core.Config,
	prof workload.Profile) error {
	path := checkpointPath(e.opts.CheckpointDir, spec, e.opts)
	if ms, err := loadCheckpoint(path); err == nil && ms != nil {
		gen, gerr := workload.NewGenerator(prof, e.opts.Seed)
		if gerr != nil {
			return gerr
		}
		if rerr := m.Restore(cfg, gen, ms); rerr == nil {
			e.prog.warmed.Add(1)
		} else {
			// A failed restore may leave the machine partially written;
			// rebuild the cold state before running.
			gen, gerr := workload.NewGenerator(prof, e.opts.Seed)
			if gerr != nil {
				return gerr
			}
			if err := m.Reset(cfg, gen); err != nil {
				return err
			}
		}
	}
	every := e.opts.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	hdr := evstream.Header{Spec: spec.String(), Seed: e.opts.Seed, Note: "sim checkpoint"}
	m.SetCheckpoints(every, func(st *core.MachineState) {
		// Best-effort: a failed rewrite costs the next run its warm
		// start, nothing more.
		_ = saveCheckpoint(path, hdr, st)
	})
	return nil
}
