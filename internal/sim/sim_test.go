package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func testOpts() Options {
	return Options{Insts: 8_000, Warmup: 2_000, Seed: 5, Parallelism: 2}
}

func TestRunMemoizesAndNormalizes(t *testing.T) {
	e := NewEngine(testOpts())
	ctx := context.Background()
	a, err := e.Run(ctx, Spec{Bench: "gap", Scheme: core.PosSel})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(ctx, Spec{Bench: "gap", Scheme: core.PosSel})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second run was not served from the cache")
	}
	// Overrides that restate the Table 3 defaults normalize away and
	// share the stock run's cache entry.
	base := core.Config4Wide()
	c, err := e.Run(ctx, Spec{Bench: "gap", Scheme: core.PosSel,
		Over: Overrides{IQSize: base.IQSize, Tokens: base.Tokens}})
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("default-valued overrides did not normalize onto the stock run")
	}
	if got := e.Cached(); got != 1 {
		t.Errorf("cached %d distinct runs, want 1", got)
	}
}

func TestRunAllPartialResultsAndJoinedError(t *testing.T) {
	e := NewEngine(testOpts())
	specs := []Spec{
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "nope", Scheme: core.PosSel},
		{Bench: "gzip", Scheme: core.PosSel},
		{Bench: "also-nope", Scheme: core.PosSel},
	}
	outs, err := e.RunAll(context.Background(), specs)
	if err == nil {
		t.Fatal("bad benchmarks did not error")
	}
	for _, want := range []string{"nope", "also-nope"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if len(outs) != 4 {
		t.Fatalf("got %d outputs, want 4", len(outs))
	}
	if outs[0] == nil || outs[2] == nil {
		t.Error("good specs lost their results because bad specs failed")
	}
	if outs[1] != nil || outs[3] != nil {
		t.Error("failed specs returned non-nil results")
	}
	snap := e.Snapshot()
	if snap.Failed != 2 || snap.Done != 2 {
		t.Errorf("snapshot done=%d failed=%d, want 2/2", snap.Done, snap.Failed)
	}
}

// Two goroutines running overlapping batches on one engine must agree
// on results and simulate each distinct spec once — the singleflight
// path under -race.
func TestConcurrentOverlappingRunAll(t *testing.T) {
	e := NewEngine(testOpts())
	batch1 := []Spec{
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "gzip", Scheme: core.TkSel},
		{Bench: "gcc", Scheme: core.NonSel},
	}
	batch2 := []Spec{
		{Bench: "gzip", Scheme: core.TkSel},
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "vpr", Scheme: core.DSel},
	}
	var wg sync.WaitGroup
	var out1, out2 []*RunOut
	var err1, err2 error
	wg.Add(2)
	go func() { defer wg.Done(); out1, err1 = e.RunAll(context.Background(), batch1) }()
	go func() { defer wg.Done(); out2, err2 = e.RunAll(context.Background(), batch2) }()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Shared specs resolve to the same memoized output object.
	if out1[0] != out2[1] || out1[1] != out2[0] {
		t.Error("overlapping specs were simulated separately")
	}
	if got := e.Cached(); got != 4 {
		t.Errorf("cached %d distinct runs, want 4", got)
	}
}

func TestCancelMidBatchReturnsPromptlyWithPartialResults(t *testing.T) {
	// One worker and long runs, so cancellation lands while later specs
	// are still queued or mid-simulation.
	e := NewEngine(Options{Insts: 400_000, Warmup: 2_000, Seed: 5, Parallelism: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	specs := []Spec{
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "gzip", Scheme: core.TkSel},
		{Bench: "gcc", Scheme: core.NonSel},
	}
	start := time.Now()
	outs, err := e.RunAll(ctx, specs)
	if err == nil {
		t.Fatal("canceled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("canceled batch took %v to return", elapsed)
	}
	if len(outs) != len(specs) {
		t.Fatalf("got %d outputs, want %d", len(outs), len(specs))
	}
	done := 0
	for _, o := range outs {
		if o != nil {
			done++
		}
	}
	if done == len(specs) {
		t.Error("every spec completed; cancellation landed too late to test anything")
	}
}

func TestJournalResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	opts := testOpts()
	opts.Journal = path
	specs := []Spec{
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "gzip", Scheme: core.TkSel},
		{Bench: "mcf", Wide8: true, Scheme: core.SerialVerify,
			Over: Overrides{Tokens: 4}},
	}
	e1 := NewEngine(opts)
	first, err := e1.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(opts)
	second, err := e2.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	snap := e2.Snapshot()
	if snap.Resumed != int64(len(specs)) {
		t.Errorf("resumed %d runs, want %d", snap.Resumed, len(specs))
	}
	if snap.Insts != 0 {
		t.Errorf("resumed batch simulated %d instructions, want 0", snap.Insts)
	}
	for i := range specs {
		if !reflect.DeepEqual(first[i].Stats, second[i].Stats) {
			t.Errorf("%s: stats diverge across journal resume", specs[i])
		}
		if !reflect.DeepEqual(first[i].Meter, second[i].Meter) {
			t.Errorf("%s: meter diverges across journal resume", specs[i])
		}
	}
	// A pure-resume batch re-simulates nothing, so it appends nothing.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("resume mutated the journal")
	}
}

func TestJournalSkipsTornAndMismatchedLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	opts := testOpts()
	opts.Journal = path
	spec := Spec{Bench: "gap", Scheme: core.PosSel}
	e1 := NewEngine(opts)
	if _, err := e1.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn tail line (interrupted write) and an entry recorded under
	// different run-length options.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"bench":"gzip","scheme":"PosSel","insts":999,"warmup":2000,"seed":5,`+
		`"stats":{},"meter":{"loads":[0,0,0,0],"misses":[0,0,0,0]}}`+"\n")
	fmt.Fprintf(f, `{"bench":"gap","scheme":"PosSel","in`) // torn
	f.Close()

	e2 := NewEngine(opts)
	defer e2.Close()
	if got := e2.JournalSkipped(); got != 2 {
		t.Errorf("skipped %d journal lines, want 2", got)
	}
	if _, err := e2.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if snap := e2.Snapshot(); snap.Resumed != 1 {
		t.Errorf("resumed %d, want 1 (the valid line)", snap.Resumed)
	}
}

// A failure on the pooled machine is retried once on a fresh machine;
// the retried result must match a clean engine's.
func TestRetryOnFreshMachineMatchesCleanRun(t *testing.T) {
	spec := Spec{Bench: "gap", Scheme: core.TkSel}
	clean, err := NewEngine(testOpts()).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(testOpts())
	failed := false
	e.runHook = func(s Spec, attempt int) error {
		if attempt == 0 && !failed {
			failed = true
			return errors.New("injected pooled-machine fault")
		}
		return nil
	}
	out, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := e.Snapshot(); snap.Retried != 1 {
		t.Errorf("retried %d times, want 1", snap.Retried)
	}
	if !reflect.DeepEqual(clean.Stats, out.Stats) {
		t.Error("retried run diverges from clean run")
	}
}

// A spec that fails on every attempt reports the failure and does not
// poison the pool for subsequent specs.
func TestPersistentFailureReportedPoolSurvives(t *testing.T) {
	e := NewEngine(Options{Insts: 8_000, Warmup: 2_000, Seed: 5, Parallelism: 1})
	bad := Spec{Bench: "gap", Scheme: core.NonSel}
	e.runHook = func(s Spec, attempt int) error {
		if s == bad.Normalize() {
			return errors.New("persistent fault")
		}
		return nil
	}
	if _, err := e.Run(context.Background(), bad); err == nil {
		t.Fatal("persistent fault not reported")
	}
	if snap := e.Snapshot(); snap.Retried != 1 || snap.Failed != 1 {
		t.Errorf("retried=%d failed=%d, want 1/1", snap.Retried, snap.Failed)
	}
	// The single worker slot must still be usable.
	if _, err := e.Run(context.Background(), Spec{Bench: "gzip", Scheme: core.PosSel}); err != nil {
		t.Fatalf("pool poisoned by failed spec: %v", err)
	}
}

func TestRunFacade(t *testing.T) {
	out, err := Run(context.Background(), Spec{Bench: "gap", Scheme: core.PosSel}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats == nil || out.Stats.Retired == 0 || out.Meter == nil {
		t.Error("facade returned empty results")
	}
}

func TestProgressCallbackAndCounters(t *testing.T) {
	var mu sync.Mutex
	var last Snapshot
	calls := 0
	opts := testOpts()
	opts.OnProgress = func(s Snapshot) {
		mu.Lock()
		last = s
		calls++
		mu.Unlock()
	}
	e := NewEngine(opts)
	specs := []Spec{
		{Bench: "gap", Scheme: core.PosSel},
		{Bench: "gzip", Scheme: core.TkSel},
	}
	if _, err := e.RunAll(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if last.Queued != 2 || last.Done != 2 || last.Running != 0 || last.Failed != 0 {
		t.Errorf("final snapshot %+v, want queued=2 done=2 running=0 failed=0", last)
	}
	if last.Insts != 2*8_000 {
		// Each run retires at least Insts; allow the off-by-few from
		// retire-width granularity.
		if last.Insts < 2*8_000 || last.Insts > 2*8_000+64 {
			t.Errorf("instruction counter %d implausible", last.Insts)
		}
	}
	if last.UopsPerSec() <= 0 {
		t.Error("throughput not positive")
	}
}
