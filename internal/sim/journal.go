package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/smpred"
)

// journalEntry is one checkpointed run: the spec and run-length
// options that produced it, plus the full results. Scheme is stored by
// registered name so journals survive enum renumbering; run-length
// fields let a resume reject journals recorded under different
// options instead of silently mixing runs of different lengths.
type journalEntry struct {
	Bench  string                `json:"bench"`
	Wide8  bool                  `json:"wide8,omitempty"`
	Scheme string                `json:"scheme"`
	Over   *Overrides            `json:"over,omitempty"`
	Insts  int64                 `json:"insts"`
	Warmup int64                 `json:"warmup"`
	Seed   int64                 `json:"seed"`
	Stats  *core.Stats           `json:"stats"`
	Meter  *smpred.CoverageMeter `json:"meter"`
}

// journal appends completed runs to a JSONL checkpoint file. Every
// line is flushed as it is written, so an interrupted batch loses at
// most the runs still in flight.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// ReadJournal loads the replayable runs a journal holds for the given
// options (normalized-spec keyed), plus the count of lines it skipped.
// The sharded service coordinator uses it to merge per-worker journals
// into the content-addressed store; the engine's own resume path goes
// through loadJournal so it can also repair a torn tail.
func ReadJournal(path string, opts Options) (map[Spec]*RunOut, int, error) {
	runs, skipped, _, err := loadJournal(path, opts.withDefaults())
	return runs, skipped, err
}

// loadJournal reads every checkpoint line that matches the engine's
// options and returns the replayable runs keyed by normalized spec.
// Unparseable lines and entries from different options or unknown
// schemes are counted, not fatal: a journal is a cache, and a stale
// entry just means re-simulating.
//
// The returned truncateAt handles the torn tail an interrupted write
// leaves behind: a final line without its newline never finished
// writing (its entry is not trusted, even when the bytes happen to
// parse), and a trailing run of corrupt lines is dead weight that the
// next append would otherwise sit after forever. truncateAt is the
// offset just past the last intact line — the caller truncates the
// file there before reopening it for append, so the journal continues
// from its last good record instead of concatenating new lines onto a
// torn fragment. It is -1 when the file needs no repair. Corrupt lines
// with intact lines after them stay where they are (truncating would
// discard the good entries behind them); they are merely counted.
func loadJournal(path string, opts Options) (map[Spec]*RunOut, int, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, -1, nil
	}
	if err != nil {
		return nil, 0, -1, err
	}
	runs := make(map[Spec]*RunOut)
	skipped := 0
	var goodEnd int64 // offset just past the last intact line
	for start := 0; start < len(data); {
		nl := bytes.IndexByte(data[start:], '\n')
		terminated := nl >= 0
		end := len(data)
		if terminated {
			end = start + nl + 1
		}
		line := data[start:end]
		if terminated {
			line = line[:len(line)-1]
		}
		start = end

		if strings.TrimSpace(string(line)) == "" {
			// Blank lines are harmless; an unterminated one is just
			// trailing whitespace to trim away.
			if terminated {
				goodEnd = int64(end)
			}
			continue
		}
		var je journalEntry
		if err := json.Unmarshal(line, &je); err != nil || !terminated {
			skipped++
			continue
		}
		goodEnd = int64(end)
		scheme, err := core.ParseScheme(je.Scheme)
		if err != nil || je.Stats == nil || je.Meter == nil ||
			je.Insts != opts.Insts || je.Warmup != opts.Warmup || je.Seed != opts.Seed {
			skipped++
			continue
		}
		spec := Spec{Bench: je.Bench, Wide8: je.Wide8, Scheme: scheme}
		if je.Over != nil {
			spec.Over = *je.Over
		}
		spec = spec.Normalize()
		runs[spec] = &RunOut{Spec: spec, Stats: je.Stats, Meter: je.Meter}
	}
	truncateAt := int64(-1)
	if goodEnd < int64(len(data)) {
		truncateAt = goodEnd
	}
	return runs, skipped, truncateAt, nil
}

// openJournal opens the checkpoint file for appending, creating it if
// needed.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

// append checkpoints one completed run.
func (j *journal) append(opts Options, out *RunOut) error {
	je := journalEntry{
		Bench:  out.Spec.Bench,
		Wide8:  out.Spec.Wide8,
		Scheme: out.Spec.Scheme.String(),
		Insts:  opts.Insts,
		Warmup: opts.Warmup,
		Seed:   opts.Seed,
		Stats:  out.Stats,
		Meter:  out.Meter,
	}
	if !out.Spec.Over.isZero() {
		over := out.Spec.Over
		je.Over = &over
	}
	line, err := json.Marshal(je)
	if err != nil {
		return fmt.Errorf("sim: journal encode %s: %w", out.Spec, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("sim: journal write: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("sim: journal write: %w", err)
	}
	// Flush per run: a checkpoint that only hits the disk on Close
	// would not survive the interrupt it exists for.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("sim: journal flush: %w", err)
	}
	return nil
}

// close flushes and closes the checkpoint file.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
