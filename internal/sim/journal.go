package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/smpred"
)

// journalEntry is one checkpointed run: the spec and run-length
// options that produced it, plus the full results. Scheme is stored by
// registered name so journals survive enum renumbering; run-length
// fields let a resume reject journals recorded under different
// options instead of silently mixing runs of different lengths.
type journalEntry struct {
	Bench  string                `json:"bench"`
	Wide8  bool                  `json:"wide8,omitempty"`
	Scheme string                `json:"scheme"`
	Over   *Overrides            `json:"over,omitempty"`
	Insts  int64                 `json:"insts"`
	Warmup int64                 `json:"warmup"`
	Seed   int64                 `json:"seed"`
	Stats  *core.Stats           `json:"stats"`
	Meter  *smpred.CoverageMeter `json:"meter"`
}

// journal appends completed runs to a JSONL checkpoint file. Every
// line is flushed as it is written, so an interrupted batch loses at
// most the runs still in flight.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// loadJournal reads every checkpoint line that matches the engine's
// options and returns the replayable runs keyed by normalized spec.
// Unparseable lines — typically one torn tail line from an interrupted
// write — and entries from different options or unknown schemes are
// counted, not fatal: a journal is a cache, and a stale entry just
// means re-simulating.
func loadJournal(path string, opts Options) (map[Spec]*RunOut, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	runs := make(map[Spec]*RunOut)
	skipped := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var je journalEntry
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			skipped++
			continue
		}
		scheme, err := core.ParseScheme(je.Scheme)
		if err != nil || je.Stats == nil || je.Meter == nil ||
			je.Insts != opts.Insts || je.Warmup != opts.Warmup || je.Seed != opts.Seed {
			skipped++
			continue
		}
		spec := Spec{Bench: je.Bench, Wide8: je.Wide8, Scheme: scheme}
		if je.Over != nil {
			spec.Over = *je.Over
		}
		spec = spec.Normalize()
		runs[spec] = &RunOut{Spec: spec, Stats: je.Stats, Meter: je.Meter}
	}
	return runs, skipped, nil
}

// openJournal opens the checkpoint file for appending, creating it if
// needed.
func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

// append checkpoints one completed run.
func (j *journal) append(opts Options, out *RunOut) error {
	je := journalEntry{
		Bench:  out.Spec.Bench,
		Wide8:  out.Spec.Wide8,
		Scheme: out.Spec.Scheme.String(),
		Insts:  opts.Insts,
		Warmup: opts.Warmup,
		Seed:   opts.Seed,
		Stats:  out.Stats,
		Meter:  out.Meter,
	}
	if !out.Spec.Over.isZero() {
		over := out.Spec.Over
		je.Over = &over
	}
	line, err := json.Marshal(je)
	if err != nil {
		return fmt.Errorf("sim: journal encode %s: %w", out.Spec, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("sim: journal write: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("sim: journal write: %w", err)
	}
	// Flush per run: a checkpoint that only hits the disk on Close
	// would not survive the interrupt it exists for.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("sim: journal flush: %w", err)
	}
	return nil
}

// close flushes and closes the checkpoint file.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
