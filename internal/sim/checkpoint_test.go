package sim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestEngineWarmStart: an engine with a checkpoint directory writes
// one artifact per spec, and a second engine over the same directory
// warm-starts from it — including with a longer measured tail — and
// reproduces the cold result bit for bit.
func TestEngineWarmStart(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Bench: "gcc", Scheme: core.TkSel}
	short := Options{Insts: 6_000, Warmup: 2_000, Seed: 1, Parallelism: 1,
		CheckpointDir: dir, CheckpointEvery: 1_000}

	cold, err := Run(context.Background(), spec, short)
	if err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(dir, spec.Normalize(), short.withDefaults())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("run left no checkpoint artifact: %v", err)
	}

	// Same options again: the warm run must match the cold one exactly.
	e := NewEngine(short)
	warm, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := e.Snapshot(); snap.Warmed != 1 {
		t.Errorf("engine warm-started %d runs, want 1", snap.Warmed)
	}
	assertSameRun(t, cold, warm)

	// Longer tail, same spec/warmup/seed: warm-start from the short
	// run's artifact must equal the cold long run.
	long := short
	long.Insts = 12_000
	long.CheckpointDir = ""
	coldLong, err := Run(context.Background(), spec, long)
	if err != nil {
		t.Fatal(err)
	}
	long.CheckpointDir = dir
	e2 := NewEngine(long)
	warmLong, err := e2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := e2.Snapshot(); snap.Warmed != 1 {
		t.Errorf("long-tail engine warm-started %d runs, want 1", snap.Warmed)
	}
	assertSameRun(t, coldLong, warmLong)
}

// TestEngineWarmStartFallbacks: corrupt artifacts, differing seeds and
// monitored runs all simulate cold instead of failing or (worse)
// silently diverging.
func TestEngineWarmStartFallbacks(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Bench: "mcf", Scheme: core.PosSel}
	opts := Options{Insts: 4_000, Warmup: 1_000, Seed: 1, Parallelism: 1,
		CheckpointDir: dir, CheckpointEvery: 1_000}

	cold, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(dir, spec.Normalize(), opts.withDefaults())

	// Corrupt artifact: cold start, same result, artifact rewritten.
	if err := os.WriteFile(path, []byte("SREVENT1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(opts)
	out, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap := e.Snapshot(); snap.Warmed != 0 {
		t.Errorf("engine warm-started from a corrupt artifact")
	}
	assertSameRun(t, cold, out)

	// A different seed keys a different artifact: no false warm start.
	seeded := opts
	seeded.Seed = 2
	if p2 := checkpointPath(dir, spec.Normalize(), seeded.withDefaults()); p2 == path {
		t.Error("different seeds share a checkpoint artifact path")
	}

	// Monitored runs never touch checkpoints.
	checked := spec
	checked.Over.Check = core.CheckCheap
	e3 := NewEngine(opts)
	if _, err := e3.Run(context.Background(), checked); err != nil {
		t.Fatal(err)
	}
	if p := checkpointPath(dir, checked.Normalize(), opts.withDefaults()); fileExists(p) {
		t.Error("monitored run wrote a checkpoint artifact")
	}
	if snap := e3.Snapshot(); snap.Warmed != 0 {
		t.Error("monitored run warm-started")
	}
}

// TestCheckpointArtifactShape: the artifact is a well-formed
// single-checkpoint .evs stream whose payload decodes into a machine
// state for the right configuration.
func TestCheckpointArtifactShape(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Bench: "gcc", Scheme: core.SerialVerify}
	opts := Options{Insts: 4_000, Warmup: 1_000, Seed: 1, Parallelism: 1,
		CheckpointDir: dir, CheckpointEvery: 1_000}
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(dir, spec.Normalize(), opts.withDefaults())
	ms, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ms == nil {
		t.Fatal("artifact holds no checkpoint")
	}
	if ms.Config.Scheme != core.SerialVerify || ms.Cycle <= 0 {
		t.Errorf("checkpoint state: scheme %v at cycle %d", ms.Config.Scheme, ms.Cycle)
	}
	if ms.Policy == nil || len(ms.Policy.SerialChains) == 0 {
		t.Error("SerialVerify checkpoint carries no wavefront state")
	}
	// No temp file left behind.
	if fileExists(path + ".tmp") {
		t.Error("atomic rewrite left its temp file")
	}
	leftover, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Errorf("temp files left behind: %v", leftover)
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func assertSameRun(t *testing.T, a, b *RunOut) {
	t.Helper()
	if a.Stats.RetireHash != b.Stats.RetireHash {
		t.Errorf("retire hash %016x vs %016x", a.Stats.RetireHash, b.Stats.RetireHash)
	}
	aj, err := json.Marshal(a.Stats)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("stats diverged\n  a %s\n  b %s", aj, bj)
	}
}
