// Package simflag is the shared command-line plumbing for the
// simulation commands (cmd/replaysim, cmd/sweep, cmd/trace,
// cmd/pipeview, cmd/paper): one canonical set of flag names, defaults
// and validation, so the commands stop re-declaring the same flags
// with drifting defaults, plus the live status-line renderer for the
// sim engine's progress snapshots.
//
// Commands build a *Sim, optionally adjust defaults (the adjustment is
// then visible in -help), register only the flag groups they use, and
// call Validate after flag parsing:
//
//	s := simflag.New()
//	s.Bench = "mcf" // command-specific default
//	s.RegisterBench(flag.CommandLine)
//	s.RegisterMachine(flag.CommandLine)
//	flag.Parse()
package simflag

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Sim holds the flag values shared by the simulation commands. Zero it
// via New to get the canonical defaults; override fields before
// registering to give a command a different (documented) default.
type Sim struct {
	Bench        string
	SchemeName   string
	ListSchemes  bool
	Wide8        bool
	BpredName    string
	PrefetchName string
	Insts        int64
	Warmup       int64
	Seed         int64
	Par          int
	Journal      string
	Progress     bool
	CheckName    string
	Remote       string

	// which flag groups were registered, so Validate only checks
	// values the user could actually set.
	hasBench, hasMachine, hasLength, hasBatch, hasCheck bool
}

// New returns the canonical defaults: the paper's 200k-instruction
// measured run after 60k warmup on the 4-wide machine, PosSel (the
// normalization baseline), gcc, seed 1.
func New() *Sim {
	return &Sim{
		Bench:        "gcc",
		SchemeName:   "PosSel",
		BpredName:    bpred.KindCombined.String(),
		PrefetchName: prefetch.KindOff.String(),
		Insts:        200_000,
		Warmup:       60_000,
		Seed:         1,
		Progress:     true,
		CheckName:    core.CheckOff.String(),
	}
}

// RegisterBench registers -bench.
func (s *Sim) RegisterBench(fs *flag.FlagSet) {
	s.hasBench = true
	fs.StringVar(&s.Bench, "bench", s.Bench,
		"benchmark: "+strings.Join(workload.Benchmarks, ", "))
}

// RegisterSeed registers -seed.
func (s *Sim) RegisterSeed(fs *flag.FlagSet) {
	fs.Int64Var(&s.Seed, "seed", s.Seed, "workload generator seed")
}

// RegisterMachine registers -scheme, -list-schemes and -wide8.
func (s *Sim) RegisterMachine(fs *flag.FlagSet) {
	s.hasMachine = true
	fs.StringVar(&s.SchemeName, "scheme", s.SchemeName,
		"replay scheme: "+strings.Join(core.SchemeNames(), ", "))
	fs.BoolVar(&s.ListSchemes, "list-schemes", false,
		"list the registered replay schemes and exit")
	fs.BoolVar(&s.Wide8, "wide8", s.Wide8, "use the 8-wide Table 3 machine")
	fs.StringVar(&s.BpredName, "bpred", s.BpredName,
		"branch predictor: "+strings.Join(bpred.KindNames(), ", "))
	fs.StringVar(&s.PrefetchName, "prefetch", s.PrefetchName,
		"data prefetcher: "+strings.Join(prefetch.KindNames(), ", "))
}

// RegisterLength registers -insts and -warmup.
func (s *Sim) RegisterLength(fs *flag.FlagSet) {
	s.hasLength = true
	fs.Int64Var(&s.Insts, "insts", s.Insts, "measured instructions per simulation")
	fs.Int64Var(&s.Warmup, "warmup", s.Warmup, "warmup instructions per simulation")
}

// RegisterBatch registers the batch-engine flags: -par, -journal and
// -progress.
func (s *Sim) RegisterBatch(fs *flag.FlagSet) {
	s.hasBatch = true
	fs.IntVar(&s.Par, "par", s.Par, "max concurrent simulations (0 = NumCPU)")
	fs.StringVar(&s.Journal, "journal", s.Journal,
		"JSONL checkpoint file: completed runs are appended as they finish and replayed on restart")
	fs.BoolVar(&s.Progress, "progress", s.Progress, "render a live status line on stderr")
}

// RegisterRemote registers -remote, the simd server URL.
func (s *Sim) RegisterRemote(fs *flag.FlagSet) {
	fs.StringVar(&s.Remote, "remote", s.Remote,
		"simd server URL (e.g. http://localhost:8080); empty simulates locally")
}

// RegisterCheck registers -check, the invariant-monitoring level.
func (s *Sim) RegisterCheck(fs *flag.FlagSet) {
	s.hasCheck = true
	fs.StringVar(&s.CheckName, "check", s.CheckName,
		"invariant monitor level: "+strings.Join(core.CheckLevelNames(), ", "))
}

// Check resolves -check.
func (s *Sim) Check() (core.CheckLevel, error) {
	return core.ParseCheckLevel(s.CheckName)
}

// HandleListSchemes prints the scheme list to w when -list-schemes was
// given, reporting whether the command should exit.
func (s *Sim) HandleListSchemes(w io.Writer) bool {
	if !s.ListSchemes {
		return false
	}
	fmt.Fprintln(w, strings.Join(core.SchemeNames(), "\n"))
	return true
}

// Scheme resolves -scheme.
func (s *Sim) Scheme() (core.Scheme, error) {
	return core.ParseScheme(s.SchemeName)
}

// ApplyFrontend writes the -bpred/-prefetch selections into a spec's
// overrides. Default kinds stay the zero override, so commands that
// never expose the flags produce unchanged specs and cache keys.
func (s *Sim) ApplyFrontend(o *sim.Overrides) {
	if k, err := bpred.ParseKind(s.BpredName); err == nil && k != bpred.KindCombined {
		o.Bpred = k.String()
	}
	if k, err := prefetch.ParseKind(s.PrefetchName); err == nil && k != prefetch.KindOff {
		o.Prefetch = k.String()
	}
}

// Validate checks the registered flag groups; the returned error is
// ready to print.
func (s *Sim) Validate() error {
	if s.hasBench {
		if _, err := workload.ByName(s.Bench); err != nil {
			return err
		}
	}
	if s.hasMachine && !s.ListSchemes {
		if _, err := s.Scheme(); err != nil {
			return err
		}
		if _, err := bpred.ParseKind(s.BpredName); err != nil {
			return err
		}
		if _, err := prefetch.ParseKind(s.PrefetchName); err != nil {
			return err
		}
	}
	if s.hasLength {
		if s.Insts <= 0 {
			return fmt.Errorf("simflag: -insts %d must be positive", s.Insts)
		}
		if s.Warmup < 0 {
			return fmt.Errorf("simflag: -warmup %d must be non-negative", s.Warmup)
		}
	}
	if s.hasBatch && s.Par < 0 {
		return fmt.Errorf("simflag: -par %d must be non-negative", s.Par)
	}
	if s.hasCheck {
		if _, err := s.Check(); err != nil {
			return err
		}
	}
	return nil
}

// Options assembles the engine options from the parsed flags. When the
// -check group is registered, the chosen level becomes the engine-wide
// default for every spec that does not pin its own.
func (s *Sim) Options() sim.Options {
	o := sim.Options{
		Insts:       s.Insts,
		Warmup:      s.Warmup,
		Seed:        s.Seed,
		Parallelism: s.Par,
		Journal:     s.Journal,
	}
	if s.hasCheck {
		o.DefaultCheck, _ = s.Check() // Validate has already vetted it
	}
	return o
}

// Runner builds the execution backend the flags selected: the local
// batch engine, or — when -remote was given — a client for a simd
// server, behind the same sim.Runner interface, so commands are
// written once against either. The returned stop function releases the
// backend (closing the engine's journal, or ending the remote progress
// stream) and must be called before reading final results.
//
// With a remote backend, opts' engine-only fields (Parallelism,
// Journal, checkpoints) are the server's business and are ignored
// here; opts.OnProgress still works — it is fed from the server's SSE
// progress stream, so the same status line renders either way. Remote
// snapshots carry server-wide counters rather than this batch's own.
func (s *Sim) Runner(ctx context.Context, opts sim.Options) (sim.Runner, func() error) {
	if s.Remote == "" {
		eng := sim.NewEngine(opts)
		return eng, eng.Close
	}
	cl := api.NewClient(s.Remote, opts)
	if opts.OnProgress == nil {
		return cl, func() error { return nil }
	}
	sctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Stream errors only cost the status line, never the batch.
		cl.StreamProgress(sctx, func(p api.Progress) bool {
			opts.OnProgress(p.Snapshot())
			return true
		})
	}()
	return cl, func() error {
		cancel()
		<-done
		return nil
	}
}

// Status renders engine progress snapshots as a single live status
// line, repainted in place with carriage returns. Wire its Update
// method to sim.Options.OnProgress and defer Close to end the line.
type Status struct {
	mu      sync.Mutex
	w       io.Writer
	enabled bool
	last    time.Time
	painted bool
	final   sim.Snapshot
}

// NewStatus builds a renderer writing to w; a disabled renderer is a
// no-op, so callers can wire it unconditionally.
func NewStatus(w io.Writer, enabled bool) *Status {
	return &Status{w: w, enabled: enabled}
}

// Update repaints the status line, throttled so a fast batch does not
// spend its time in terminal writes.
func (s *Status) Update(snap sim.Snapshot) {
	if !s.enabled {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.final = snap
	if time.Since(s.last) < 100*time.Millisecond {
		return
	}
	s.last = time.Now()
	s.paint(snap)
}

func (s *Status) paint(snap sim.Snapshot) {
	line := fmt.Sprintf("sim %d/%d done, %d running, %d failed, %d resumed | %s uops/s",
		snap.Done, snap.Queued, snap.Running, snap.Failed, snap.Resumed,
		siCount(snap.UopsPerSec()))
	if snap.Retried > 0 {
		line += fmt.Sprintf(", %d retried", snap.Retried)
	}
	// Pad past the previous paint so shrinking lines leave no residue.
	fmt.Fprintf(s.w, "\r%-72s", line)
	s.painted = true
}

// Close paints the final counters and terminates the status line.
func (s *Status) Close() {
	if !s.enabled {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.final.Queued > 0 {
		s.paint(s.final)
	}
	if s.painted {
		fmt.Fprintln(s.w)
		s.painted = false
	}
}

// siCount renders a rate with an SI suffix (1.8M, 430k).
func siCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
