package simflag

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func parse(t *testing.T, register func(*Sim, *flag.FlagSet), args ...string) *Sim {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := New()
	register(s, fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return s
}

func registerAll(s *Sim, fs *flag.FlagSet) {
	s.RegisterBench(fs)
	s.RegisterMachine(fs)
	s.RegisterLength(fs)
	s.RegisterSeed(fs)
	s.RegisterBatch(fs)
}

func TestValidateAcceptsDefaults(t *testing.T) {
	s := parse(t, registerAll)
	if err := s.Validate(); err != nil {
		t.Fatalf("canonical defaults rejected: %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := [][]string{
		{"-bench", "nope"},
		{"-scheme", "NoSuchScheme"},
		{"-insts", "0"},
		{"-insts", "-5"},
		{"-warmup", "-1"},
		{"-par", "-2"},
	}
	for _, args := range cases {
		s := parse(t, registerAll, args...)
		if err := s.Validate(); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestValidateOnlyChecksRegisteredGroups(t *testing.T) {
	// Only the seed flag is registered, so a bogus bench value sitting
	// in the struct must not be validated.
	s := parse(t, func(s *Sim, fs *flag.FlagSet) { s.RegisterSeed(fs) })
	s.Bench = "nope"
	if err := s.Validate(); err != nil {
		t.Fatalf("unregistered group validated: %v", err)
	}
}

func TestOptionsMapping(t *testing.T) {
	s := parse(t, registerAll,
		"-insts", "1000", "-warmup", "10", "-seed", "9", "-par", "3", "-journal", "j.jsonl")
	got := s.Options()
	if got.Insts != 1000 || got.Warmup != 10 || got.Seed != 9 ||
		got.Parallelism != 3 || got.Journal != "j.jsonl" {
		t.Errorf("Options() = %+v", got)
	}
}

func TestListSchemes(t *testing.T) {
	s := parse(t, registerAll, "-list-schemes")
	var b strings.Builder
	if !s.HandleListSchemes(&b) {
		t.Fatal("-list-schemes not handled")
	}
	if !strings.Contains(b.String(), "TkSel") || !strings.Contains(b.String(), "PosSel") {
		t.Errorf("scheme list incomplete:\n%s", b.String())
	}
	// A bogus -scheme must not fail validation when listing was asked.
	s.SchemeName = "nope"
	if err := s.Validate(); err != nil {
		t.Errorf("validate failed during -list-schemes: %v", err)
	}
}

func TestStatusRendersAndCloses(t *testing.T) {
	var b strings.Builder
	st := NewStatus(&b, true)
	st.Update(sim.Snapshot{Queued: 4, Done: 1, Running: 2, Insts: 1_000_000, Elapsed: time.Second})
	st.Close()
	out := b.String()
	if !strings.Contains(out, "1/4 done") || !strings.Contains(out, "1.0M uops/s") {
		t.Errorf("status line wrong: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Close did not terminate the status line")
	}

	var quiet strings.Builder
	off := NewStatus(&quiet, false)
	off.Update(sim.Snapshot{Queued: 1})
	off.Close()
	if quiet.Len() != 0 {
		t.Errorf("disabled renderer wrote %q", quiet.String())
	}
}
