package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/sim"
)

// keyEnvelope is the canonical byte form a content address is computed
// over: the wire version, the normalized wire spec, and the run
// lengths. JSON struct marshaling is deterministic (field order is
// declaration order, redundant overrides are normalized away before
// encoding), so equal runs hash equal and the golden key test pins the
// v1 addressing for good.
type keyEnvelope struct {
	API    string `json:"api"`
	Spec   Spec   `json:"spec"`
	Insts  int64  `json:"insts"`
	Warmup int64  `json:"warmup"`
	Seed   int64  `json:"seed"`
}

// KeyLen is the length of a content-address key in hex characters.
const KeyLen = sha256.Size * 2

// Key returns the v1 content address of one run: the hex SHA-256 of
// the canonical key envelope. Two specs that normalize equal — the
// engine's memoization equivalence — produce the same key, so the
// store, the engine cache and the journal all agree on what "the same
// run" means. The run lengths are part of the address: a longer run of
// the same spec is a different result.
func Key(spec sim.Spec, insts, warmup, seed int64) string {
	env := keyEnvelope{
		API:    Version,
		Spec:   FromSimSpec(spec.Normalize()),
		Insts:  insts,
		Warmup: warmup,
		Seed:   seed,
	}
	b, err := json.Marshal(env)
	if err != nil {
		// Marshaling a struct of strings, bools and ints cannot fail.
		panic("api: key envelope: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ValidKey reports whether s has the shape of a content-address key
// (lower-case hex of the right length). The server uses it to reject
// malformed result lookups before touching the filesystem.
func ValidKey(s string) bool {
	if len(s) != KeyLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
