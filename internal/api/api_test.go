package api

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/smpred"
)

var update = flag.Bool("update", false, "rewrite the golden wire fixtures")

// sampleMeter builds a tiny deterministic coverage meter.
func sampleMeter() *smpred.CoverageMeter {
	var m smpred.CoverageMeter
	m.Record(smpred.Confidence(3), true)
	m.Record(smpred.Confidence(0), false)
	return &m
}

// sampleStats is a fixed, fully-populated-enough Stats for the wire
// fixtures; the stats schema itself is owned by core and its JSON
// round-trip is pinned by the stats-completeness lint rule.
func sampleStats() *core.Stats {
	return &core.Stats{
		Cycles: 12345, Retired: 8000,
		TotalIssues: 9000, FirstIssues: 8500, LoadIssues: 2200,
		LoadSchedMisses: 140, CacheMisses: 90, AliasMisses: 50,
		BranchLookups: 700, BranchMispredicts: 31,
		RetireHash: 0x1badd00d,
	}
}

// wireSamples pins one representative value per wire type. Changing
// any marshaled byte of these is a v1 schema break and must instead go
// into a v2.
func wireSamples() map[string]any {
	spec := Spec{
		Bench:  "mcf",
		Wide8:  true,
		Scheme: "TkSel",
		Over:   &Overrides{Tokens: 8, ReplayQueue: true, Check: "cheap"},
	}
	plain := Spec{Bench: "gcc", Scheme: "PosSel"}
	result := &Result{
		API:    Version,
		Key:    "0ed325899b1c12f45ea4a37d3e1c2b6a3cf5a7d88c5e3d1a9b2c4e6f80123456",
		Spec:   spec,
		Insts:  200000,
		Warmup: 60000,
		Seed:   1,
		Stats:  sampleStats(),
		Meter:  sampleMeter(),
	}
	progress := Progress{
		Queued: 42, Running: 3, Done: 38, Failed: 1,
		CacheHits: 30, Collapsed: 6, EngineRuns: 8,
		Resumed: 2, Retried: 1, Warmed: 4,
		Insts: 1600000, ElapsedMS: 2500,
	}
	return map[string]any{
		"run_request": RunRequest{Spec: spec, Insts: 200000, Warmup: 60000, Seed: 1},
		"sweep_request": SweepRequest{
			Specs: []Spec{plain, spec},
			Insts: 100000, Warmup: 60000, Seed: 1,
		},
		"result": result,
		"sweep_response": SweepResponse{
			API:     Version,
			Results: []*Result{result, nil},
			Errors: []SweepError{{
				Index: 1,
				Spec:  Spec{Bench: "nope", Scheme: "PosSel"},
				Error: "unknown benchmark \"nope\"",
			}},
		},
		"progress": progress,
		"info": Info{
			API: Version, Insts: 200000, Warmup: 60000, Seed: 1, Shards: 4,
			Schemes:      []string{"PosSel", "TkSel"},
			Benches:      []string{"gcc", "mcf"},
			StoreEntries: 17,
			Progress:     progress,
		},
		"error": Error{Error: "unknown scheme \"Bogus\""},
		"validate_report": &ValidateReport{
			API:  Version,
			Runs: 972,
			Findings: []Finding{{
				Spec: plain, Seed: 2, Kind: "oracle-hash",
				Msg:        "retire-stream digest diverges from the magic-scheduler oracle",
				Violations: []string{"retire density 5 > width 4 at cycle 812 (stream cursor 4096)"},
				Stream:     "streams/gcc-possel-seed2.evs",
			}},
		},
	}
}

// TestWireGolden pins the v1 wire format byte for byte. Run with
// -update to regenerate after an intentional (additive) change.
func TestWireGolden(t *testing.T) {
	for name, v := range wireSamples() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to write the fixture)", err)
			}
			if string(got) != string(want) {
				t.Errorf("wire format drifted from the v1 golden fixture %s:\n got: %s\nwant: %s",
					path, got, want)
			}
			// Round trip: the fixture decodes back to the same value.
			back := reflect.New(reflect.TypeOf(v)).Interface()
			if err := json.Unmarshal(want, back); err != nil {
				t.Fatalf("golden %s does not unmarshal: %v", name, err)
			}
			rt, err := json.MarshalIndent(reflect.ValueOf(back).Elem().Interface(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(append(rt, '\n')) != string(want) {
				t.Errorf("%s does not round-trip through its own wire form", name)
			}
		})
	}
}

func TestSpecConversionRoundTrip(t *testing.T) {
	specs := []sim.Spec{
		{Bench: "gcc", Scheme: core.PosSel},
		{Bench: "mcf", Wide8: true, Scheme: core.TkSel,
			Over: sim.Overrides{Tokens: 8, ReplayQueue: true, Check: core.CheckFull}},
		{Bench: "gzip", Scheme: core.SerialVerify,
			Over: sim.Overrides{IQSize: 48, ValuePrediction: true}},
	}
	for _, s := range specs {
		w := FromSimSpec(s)
		back, err := w.ToSim()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if back != s {
			t.Errorf("spec round trip: got %+v, want %+v", back, s)
		}
	}
	// Zero overrides collapse to an absent object.
	if w := FromSimSpec(sim.Spec{Bench: "gcc", Scheme: core.PosSel}); w.Over != nil {
		t.Error("zero overrides should marshal as an absent over object")
	}
}

func TestSpecConversionErrors(t *testing.T) {
	if _, err := (Spec{Bench: "gcc", Scheme: "Bogus"}).ToSim(); err == nil {
		t.Error("unknown scheme should fail conversion")
	}
	bad := Spec{Bench: "gcc", Scheme: "PosSel", Over: &Overrides{Check: "paranoid"}}
	if _, err := bad.ToSim(); err == nil {
		t.Error("unknown check level should fail conversion")
	}
}

func TestResultRoundTrip(t *testing.T) {
	spec := sim.Spec{Bench: "mcf", Scheme: core.TkSel, Over: sim.Overrides{Tokens: 8}}
	out := &sim.RunOut{Spec: spec.Normalize(), Stats: sampleStats(), Meter: sampleMeter()}
	r := FromRunOut(out, 200000, 60000, 1)
	if r.Key != Key(spec, 200000, 60000, 1) {
		t.Error("result key disagrees with Key()")
	}
	back, err := r.ToRunOut()
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec != out.Spec {
		t.Errorf("spec: got %+v want %+v", back.Spec, out.Spec)
	}
	if !reflect.DeepEqual(back.Stats, out.Stats) || !reflect.DeepEqual(back.Meter, out.Meter) {
		t.Error("stats or meter diverge across the wire")
	}
	if _, err := (&Result{Spec: r.Spec}).ToRunOut(); err == nil {
		t.Error("result without stats should fail conversion")
	}
}

// TestKeyGolden pins v1 content addressing: if this hash ever changes,
// every deployed store and cache silently invalidates — that is a new
// wire version, not an edit.
func TestKeyGolden(t *testing.T) {
	spec := sim.Spec{Bench: "mcf", Wide8: true, Scheme: core.TkSel, Over: sim.Overrides{Tokens: 8}}
	got := Key(spec, 200000, 60000, 1)
	const want = "4e6eda907a7c76b446cc31f371fdcf9234ff12d57d207ae9c25b3daf0c80c5e8"
	if got != want {
		t.Errorf("v1 key drifted:\n got %s\nwant %s", got, want)
	}
}

func TestKeyNormalizationEquivalence(t *testing.T) {
	// Tokens=32 is the 8-wide Table 3 default, so these are the same
	// machine and must share an address.
	base := sim.Spec{Bench: "gcc", Wide8: true, Scheme: core.TkSel}
	same := sim.Spec{Bench: "gcc", Wide8: true, Scheme: core.TkSel}
	same.Over.Tokens = base.Normalize().Config(sim.Options{}).Tokens
	if Key(base, 1000, 100, 1) != Key(same, 1000, 100, 1) {
		t.Error("normalization-equal specs should share a content address")
	}
	if Key(base, 1000, 100, 1) == Key(base, 2000, 100, 1) {
		t.Error("different run lengths must not share a content address")
	}
	if Key(base, 1000, 100, 1) == Key(base, 1000, 100, 2) {
		t.Error("different seeds must not share a content address")
	}
}

func TestValidKey(t *testing.T) {
	good := Key(sim.Spec{Bench: "gcc", Scheme: core.PosSel}, 1, 1, 1)
	if !ValidKey(good) {
		t.Error("real key rejected")
	}
	for _, bad := range []string{"", "abc", good[:KeyLen-1] + "G", good + "0", "../../etc/passwd"} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true, want false", bad)
		}
	}
}
