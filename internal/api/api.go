// Package api is version 1 of the simulation service's public wire
// surface: the JSON request, response and event types exchanged
// between a simd server, its HTTP clients, and every command that can
// run remotely. One schema is shared by all of them — the server
// marshals these types, the client unmarshals the same types, and the
// commands' -json output is these types verbatim — so there is exactly
// one place the wire format can change, and the golden tests in this
// package pin it.
//
// Compatibility rules for v1: field names and meanings never change;
// new optional fields may be added; enumerations (scheme names, check
// levels, finding kinds) travel as strings so they survive internal
// renumbering. A breaking change means a new version prefix, not an
// edit here.
//
// The package also defines the service's content addressing: Key maps
// a normalized spec plus its run lengths to the SHA-256 name under
// which the result is stored and served (see key.go).
package api

import (
	"repro/internal/core"
	"repro/internal/smpred"
)

const (
	// Version is the wire-format version this package defines.
	Version = "v1"
	// PathPrefix is the URL prefix every v1 endpoint lives under.
	PathPrefix = "/v1"
)

// Spec is the wire form of one simulation request: a benchmark, a
// machine width, a replay scheme by registered name, and optional
// configuration overrides. It mirrors sim.Spec field for field but
// carries enumerations as strings.
type Spec struct {
	Bench  string     `json:"bench"`
	Wide8  bool       `json:"wide8,omitempty"`
	Scheme string     `json:"scheme"`
	Over   *Overrides `json:"over,omitempty"`
}

// Overrides are the optional deviations from the Table 3 machine,
// mirroring sim.Overrides. Zero-valued fields keep the default for the
// selected width.
type Overrides struct {
	Tokens          int    `json:"tokens,omitempty"`
	SchedToExec     int    `json:"schedToExec,omitempty"`
	IQSize          int    `json:"iq,omitempty"`
	ROBSize         int    `json:"rob,omitempty"`
	LSQSize         int    `json:"lsq,omitempty"`
	PredEntries     int    `json:"predEntries,omitempty"`
	// Bpred and Prefetch select frontend kinds by registered name
	// ("tage", "stride"); empty keeps the paper's default frontend.
	Bpred           string `json:"bpred,omitempty"`
	Prefetch        string `json:"prefetch,omitempty"`
	ReplayQueue     bool   `json:"rq,omitempty"`
	ValuePrediction bool   `json:"vp,omitempty"`
	// Check is the invariant-monitoring level by name ("off", "cheap",
	// "full"); empty means off.
	Check string `json:"check,omitempty"`
}

// RunRequest submits one spec (POST /v1/run). Zero run-length fields
// inherit the server's configured lengths; non-zero fields must match
// them exactly — a simd server is pinned to one (Insts, Warmup, Seed)
// tuple so its cache stays coherent, and it rejects mismatches with
// 400 rather than silently running something else.
type RunRequest struct {
	Spec   Spec  `json:"spec"`
	Insts  int64 `json:"insts,omitempty"`
	Warmup int64 `json:"warmup,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// SweepRequest submits a whole matrix (POST /v1/sweep). Run-length
// semantics match RunRequest.
type SweepRequest struct {
	Specs  []Spec `json:"specs"`
	Insts  int64  `json:"insts,omitempty"`
	Warmup int64  `json:"warmup,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// Result is one completed simulation: the normalized spec that ran,
// the run lengths it ran under, its content-address key, and the full
// measurements. The server stores the marshaled bytes of this type
// content-addressed by Key and replays them verbatim, so two queries
// for the same normalized spec receive byte-identical bodies.
type Result struct {
	API    string                `json:"api"`
	Key    string                `json:"key"`
	Spec   Spec                  `json:"spec"`
	Insts  int64                 `json:"insts"`
	Warmup int64                 `json:"warmup"`
	Seed   int64                 `json:"seed"`
	Stats  *core.Stats           `json:"stats"`
	Meter  *smpred.CoverageMeter `json:"meter"`
}

// SweepError localizes one failed spec inside a sweep.
type SweepError struct {
	// Index is the position in SweepRequest.Specs.
	Index int    `json:"index"`
	Spec  Spec   `json:"spec"`
	Error string `json:"error"`
}

// SweepResponse answers a sweep: Results aligns one-to-one with the
// request's Specs (failed positions are null), and Errors carries the
// per-spec failures — a 167/168 sweep is a near-success, not a 500.
type SweepResponse struct {
	API     string       `json:"api"`
	Results []*Result    `json:"results"`
	Errors  []SweepError `json:"errors,omitempty"`
}

// Progress is one observation of a server's counters, streamed over
// SSE (GET /v1/progress) and embedded in Info. Request-level counters
// (Queued..EngineRuns) come from the service layer; simulation-level
// counters (Resumed..Insts) from the batch engine underneath. Every
// field is always present on the wire so consumers never distinguish
// "zero" from "omitted".
//
// The field set and order are pinned by the golden wire tests AND by
// AppendProgress, the allocation-free serializer the SSE hot path
// uses: the two must stay in lockstep (TestAppendProgressMatchesJSON).
type Progress struct {
	// Queued counts specs accepted (run and sweep submissions both).
	Queued int64 `json:"queued"`
	// Running counts specs currently executing a simulation.
	Running int64 `json:"running"`
	// Done counts specs answered successfully, from whatever tier.
	Done int64 `json:"done"`
	// Failed counts specs whose execution errored.
	Failed int64 `json:"failed"`
	// CacheHits counts specs answered from the content-addressed store.
	CacheHits int64 `json:"cacheHits"`
	// Collapsed counts duplicate in-flight submissions folded into a
	// leader's run by the service-level singleflight.
	Collapsed int64 `json:"collapsed"`
	// EngineRuns counts specs that reached an engine (or the shard
	// queue): the work the cache tiers failed to absorb.
	EngineRuns int64 `json:"engineRuns"`
	// Resumed, Retried and Warmed mirror the engine's journal-replay,
	// fresh-machine-retry and checkpoint-warm-start counters.
	Resumed int64 `json:"resumed"`
	Retried int64 `json:"retried"`
	Warmed  int64 `json:"warmed"`
	// Insts is the total retired instructions simulated.
	Insts int64 `json:"insts"`
	// ElapsedMS is wall time since the server started, in milliseconds.
	ElapsedMS int64 `json:"elapsedMs"`
}

// Info describes a server (GET /v1/info): its pinned run lengths, its
// shard topology, the registries it serves, and a progress snapshot.
type Info struct {
	API    string `json:"api"`
	Insts  int64  `json:"insts"`
	Warmup int64  `json:"warmup"`
	Seed   int64  `json:"seed"`
	// Shards is the worker-process count; 0 means the in-process engine.
	Shards  int      `json:"shards"`
	Schemes []string `json:"schemes"`
	Benches []string `json:"benches"`
	// Bpreds and Prefetchers list the selectable frontend kinds (new in
	// the frontend-diversity revision; absent on older servers).
	Bpreds      []string `json:"bpreds,omitempty"`
	Prefetchers []string `json:"prefetchers,omitempty"`
	// StoreEntries is the number of results in the content-addressed
	// store.
	StoreEntries int      `json:"storeEntries"`
	Progress     Progress `json:"progress"`
}

// Error is the envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// Finding is the wire form of one validation failure (cmd/validate
// -json): which run, what kind of disagreement, and the rendered
// monitor violations when there are any.
type Finding struct {
	Spec Spec  `json:"spec"`
	Seed int64 `json:"seed"`
	// Kind is "run-error", "monitor", "oracle-hash", "cross-level" or
	// "stats".
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
	// Violations are the monitor violations rendered as strings, with
	// their stream cursors, when Kind is "monitor".
	Violations []string `json:"violations,omitempty"`
	// Stream is the recorded .evs artifact path, when one was requested.
	Stream string `json:"stream,omitempty"`
}

// ValidateReport is the wire form of a validation sweep's outcome.
type ValidateReport struct {
	API      string    `json:"api"`
	Runs     int       `json:"runs"`
	Findings []Finding `json:"findings"`
}
