package api

import (
	"encoding/json"
	"testing"
)

func progressCases() []Progress {
	return []Progress{
		{},
		{Queued: 1, Done: 1, CacheHits: 1, ElapsedMS: 9},
		{
			Queued: 1 << 40, Running: 16, Done: 123456789, Failed: 7,
			CacheHits: 99999999, Collapsed: 1024, EngineRuns: 168,
			Resumed: 3, Retried: 2, Warmed: 42,
			Insts: 3_200_000_000, ElapsedMS: 86_400_000,
		},
	}
}

// AppendProgress must produce exactly encoding/json's bytes for the
// Progress struct: the SSE stream and the plain JSON endpoints are the
// same wire format, serialized two ways.
func TestAppendProgressMatchesJSON(t *testing.T) {
	for _, p := range progressCases() {
		want, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendProgress(nil, p)
		if string(got) != string(want) {
			t.Errorf("AppendProgress diverges from encoding/json:\n got %s\nwant %s", got, want)
		}
	}
}

// The per-event serialization on the SSE hot path must not allocate
// once the subscriber's buffer has grown to size.
func TestAppendProgressZeroAlloc(t *testing.T) {
	p := progressCases()[2]
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendProgress(buf[:0], p)
	})
	if allocs != 0 {
		t.Errorf("AppendProgress allocates %.1f times per event, want 0", allocs)
	}
}

func BenchmarkAppendProgress(b *testing.B) {
	p := progressCases()[2]
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendProgress(buf[:0], p)
	}
}
