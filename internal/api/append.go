package api

import "strconv"

// AppendProgress appends the canonical JSON encoding of p to dst and
// returns the extended slice. It produces byte-identical output to
// encoding/json on the Progress struct (pinned by
// TestAppendProgressMatchesJSON) while allocating nothing beyond dst's
// own growth — the SSE progress loop serializes into one reusable
// buffer per subscriber at up to 100 events/second/client, and that
// path is under the repolint escape gate like the simulator's own hot
// loops.
func AppendProgress(dst []byte, p Progress) []byte {
	dst = append(dst, `{"queued":`...)
	dst = strconv.AppendInt(dst, p.Queued, 10)
	dst = append(dst, `,"running":`...)
	dst = strconv.AppendInt(dst, p.Running, 10)
	dst = append(dst, `,"done":`...)
	dst = strconv.AppendInt(dst, p.Done, 10)
	dst = append(dst, `,"failed":`...)
	dst = strconv.AppendInt(dst, p.Failed, 10)
	dst = append(dst, `,"cacheHits":`...)
	dst = strconv.AppendInt(dst, p.CacheHits, 10)
	dst = append(dst, `,"collapsed":`...)
	dst = strconv.AppendInt(dst, p.Collapsed, 10)
	dst = append(dst, `,"engineRuns":`...)
	dst = strconv.AppendInt(dst, p.EngineRuns, 10)
	dst = append(dst, `,"resumed":`...)
	dst = strconv.AppendInt(dst, p.Resumed, 10)
	dst = append(dst, `,"retried":`...)
	dst = strconv.AppendInt(dst, p.Retried, 10)
	dst = append(dst, `,"warmed":`...)
	dst = strconv.AppendInt(dst, p.Warmed, 10)
	dst = append(dst, `,"insts":`...)
	dst = strconv.AppendInt(dst, p.Insts, 10)
	dst = append(dst, `,"elapsedMs":`...)
	dst = strconv.AppendInt(dst, p.ElapsedMS, 10)
	dst = append(dst, '}')
	return dst
}
