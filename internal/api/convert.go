package api

import (
	"fmt"
	"time"

	"repro/internal/bpred"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// FromSimSpec converts an engine spec to its wire form. The zero
// Overrides collapses to an absent "over" object, so the wire spec is
// as canonical as the sim spec it mirrors.
func FromSimSpec(s sim.Spec) Spec {
	w := Spec{Bench: s.Bench, Wide8: s.Wide8, Scheme: s.Scheme.String()}
	if s.Over == (sim.Overrides{}) {
		return w
	}
	o := &Overrides{
		Tokens:          s.Over.Tokens,
		SchedToExec:     s.Over.SchedToExec,
		IQSize:          s.Over.IQSize,
		ROBSize:         s.Over.ROBSize,
		LSQSize:         s.Over.LSQSize,
		PredEntries:     s.Over.PredEntries,
		Bpred:           s.Over.Bpred,
		Prefetch:        s.Over.Prefetch,
		ReplayQueue:     s.Over.ReplayQueue,
		ValuePrediction: s.Over.ValuePrediction,
	}
	if s.Over.Check != core.CheckOff {
		o.Check = s.Over.Check.String()
	}
	w.Over = o
	return w
}

// ToSim converts a wire spec back to an engine spec, resolving the
// scheme and check-level names. It does not validate the benchmark —
// that is the executing side's job, where the workload registry lives.
func (s Spec) ToSim() (sim.Spec, error) {
	scheme, err := core.ParseScheme(s.Scheme)
	if err != nil {
		return sim.Spec{}, fmt.Errorf("api: spec %s/%s: %w", s.Bench, s.Scheme, err)
	}
	out := sim.Spec{Bench: s.Bench, Wide8: s.Wide8, Scheme: scheme}
	if s.Over == nil {
		return out, nil
	}
	out.Over = sim.Overrides{
		Tokens:          s.Over.Tokens,
		SchedToExec:     s.Over.SchedToExec,
		IQSize:          s.Over.IQSize,
		ROBSize:         s.Over.ROBSize,
		LSQSize:         s.Over.LSQSize,
		PredEntries:     s.Over.PredEntries,
		Bpred:           s.Over.Bpred,
		Prefetch:        s.Over.Prefetch,
		ReplayQueue:     s.Over.ReplayQueue,
		ValuePrediction: s.Over.ValuePrediction,
	}
	if s.Over.Bpred != "" {
		if _, err := bpred.ParseKind(s.Over.Bpred); err != nil {
			return sim.Spec{}, fmt.Errorf("api: spec %s/%s: %w", s.Bench, s.Scheme, err)
		}
	}
	if s.Over.Prefetch != "" {
		if _, err := prefetch.ParseKind(s.Over.Prefetch); err != nil {
			return sim.Spec{}, fmt.Errorf("api: spec %s/%s: %w", s.Bench, s.Scheme, err)
		}
	}
	if s.Over.Check != "" {
		level, err := core.ParseCheckLevel(s.Over.Check)
		if err != nil {
			return sim.Spec{}, fmt.Errorf("api: spec %s/%s: %w", s.Bench, s.Scheme, err)
		}
		out.Over.Check = level
	}
	return out, nil
}

// FromRunOut builds the wire result for one completed run, including
// its content-address key. The run lengths are the engine options the
// run executed under.
func FromRunOut(out *sim.RunOut, insts, warmup, seed int64) *Result {
	return &Result{
		API:    Version,
		Key:    Key(out.Spec, insts, warmup, seed),
		Spec:   FromSimSpec(out.Spec),
		Insts:  insts,
		Warmup: warmup,
		Seed:   seed,
		Stats:  out.Stats,
		Meter:  out.Meter,
	}
}

// ToRunOut converts a wire result back into the engine's result type.
func (r *Result) ToRunOut() (*sim.RunOut, error) {
	spec, err := r.Spec.ToSim()
	if err != nil {
		return nil, err
	}
	if r.Stats == nil || r.Meter == nil {
		return nil, fmt.Errorf("api: result %s/%s: missing stats or meter", r.Spec.Bench, r.Spec.Scheme)
	}
	return &sim.RunOut{Spec: spec, Stats: r.Stats, Meter: r.Meter}, nil
}

// FromFinding converts one validation finding to its wire form,
// rendering the monitor violations with their stream cursors.
func FromFinding(f check.Finding) Finding {
	w := Finding{
		Spec:   FromSimSpec(f.Spec),
		Seed:   f.Seed,
		Kind:   f.Kind,
		Msg:    f.Msg,
		Stream: f.Stream,
	}
	for _, v := range f.Violations {
		w.Violations = append(w.Violations,
			fmt.Sprintf("%s (stream cursor %d)", v.String(), v.Cursor))
	}
	return w
}

// FromReport converts a validation report to its wire form. Findings
// is always a JSON array, never null, so consumers can range without a
// nil check.
func FromReport(r *check.Report) *ValidateReport {
	w := &ValidateReport{API: Version, Runs: r.Runs, Findings: []Finding{}}
	for _, f := range r.Findings {
		w.Findings = append(w.Findings, FromFinding(f))
	}
	return w
}

// Snapshot maps a wire progress observation onto the engine's snapshot
// type, so remote progress drives the same status-line renderer local
// batches use.
func (p Progress) Snapshot() sim.Snapshot {
	return sim.Snapshot{
		Queued:  p.Queued,
		Running: p.Running,
		Done:    p.Done,
		Failed:  p.Failed,
		Resumed: p.Resumed,
		Retried: p.Retried,
		Warmed:  p.Warmed,
		Insts:   p.Insts,
		Elapsed: time.Duration(p.ElapsedMS) * time.Millisecond,
	}
}
