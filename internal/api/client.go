package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/sim"
)

// Client is the HTTP side of the v1 wire API: a sim.Runner whose specs
// execute on a simd server. The zero run-length options inherit the
// server's; non-zero ones are sent with every request so a mismatch
// against the server's pinned lengths fails loudly (400) instead of
// silently answering with a different run.
//
// A Client is safe for concurrent use; the load test drives thousands
// of goroutines through one.
type Client struct {
	base   string
	hc     *http.Client
	insts  int64
	warmup int64
	seed   int64
}

var _ sim.Runner = (*Client)(nil)

// NewClient builds a client for the server at base (e.g.
// "http://localhost:8080"). The options' run-length fields ride along
// on every submission; everything else in opts is local-engine
// configuration and is ignored.
func NewClient(base string, opts sim.Options) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		hc:     &http.Client{},
		insts:  opts.Insts,
		warmup: opts.Warmup,
		seed:   opts.Seed,
	}
}

// SetHTTPClient swaps the underlying http.Client (custom transports
// for load tests, timeouts for batch jobs).
func (c *Client) SetHTTPClient(hc *http.Client) { c.hc = hc }

// Run executes one spec on the server and returns its result.
func (c *Client) Run(ctx context.Context, spec sim.Spec) (*sim.RunOut, error) {
	req := RunRequest{Spec: FromSimSpec(spec), Insts: c.insts, Warmup: c.warmup, Seed: c.seed}
	var res Result
	if err := c.post(ctx, "/run", req, &res); err != nil {
		return nil, err
	}
	return res.ToRunOut()
}

// RunAll executes a matrix on the server. Like the engine's RunAll it
// never fails fast: outputs come back in spec order with failed
// positions nil, and the per-spec errors are joined into the error
// value.
func (c *Client) RunAll(ctx context.Context, specs []sim.Spec) ([]*sim.RunOut, error) {
	req := SweepRequest{Specs: make([]Spec, len(specs)), Insts: c.insts, Warmup: c.warmup, Seed: c.seed}
	for i, s := range specs {
		req.Specs[i] = FromSimSpec(s)
	}
	var res SweepResponse
	if err := c.post(ctx, "/sweep", req, &res); err != nil {
		return nil, err
	}
	if len(res.Results) != len(specs) {
		return nil, fmt.Errorf("api: sweep returned %d results for %d specs", len(res.Results), len(specs))
	}
	outs := make([]*sim.RunOut, len(specs))
	errs := make([]error, 0, len(res.Errors))
	for i, r := range res.Results {
		if r == nil {
			continue
		}
		out, err := r.ToRunOut()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		outs[i] = out
	}
	for _, e := range res.Errors {
		errs = append(errs, fmt.Errorf("api: spec %d (%s %s): %s", e.Index, e.Spec.Bench, e.Spec.Scheme, e.Error))
	}
	return outs, errors.Join(errs...)
}

// Info fetches the server's description and live counters.
func (c *Client) Info(ctx context.Context) (*Info, error) {
	var info Info
	if err := c.get(ctx, "/info", &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ResultBytes fetches a stored result by content-address key, raw. A
// missing key is an error (the store answers 404); the server never
// simulates on this path.
func (c *Client) ResultBytes(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathPrefix+"/result/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp.StatusCode, body)
	}
	return body, nil
}

// StreamProgress subscribes to the server's SSE progress stream and
// calls fn for every event until fn returns false, the stream ends, or
// ctx is canceled (which returns ctx's error).
func (c *Client) StreamProgress(ctx context.Context, fn func(Progress) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathPrefix+"/progress", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return apiError(resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0: // event boundary
			if len(data) == 0 {
				continue
			}
			var p Progress
			if err := json.Unmarshal(data, &p); err != nil {
				return fmt.Errorf("api: progress event: %w", err)
			}
			data = data[:0]
			if !fn(p) {
				return nil
			}
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append(data, line[len("data: "):]...)
		}
	}
	if err := sc.Err(); err != nil {
		// Cancellation surfaces as a read error on the streaming body;
		// report it as the context's error, which is what it means.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// post sends a JSON request body and decodes a JSON response into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+PathPrefix+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// get fetches a JSON response into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathPrefix+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp.StatusCode, body)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// apiError decodes the server's error envelope, falling back to the
// raw body when the response is not the expected JSON.
func apiError(status int, body []byte) error {
	var e Error
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return fmt.Errorf("api: server: %s (HTTP %d)", e.Error, status)
	}
	return fmt.Errorf("api: server: HTTP %d: %s", status, strings.TrimSpace(string(body)))
}
