package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/isa"
)

// validTraceBytes builds a small well-formed trace for the seed corpus.
func validTraceBytes(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	prog := []isa.Inst{
		{Seq: 0, PC: 0x400000, Class: isa.IntALU, Src1: -1, Src2: -1},
		{Seq: 1, PC: 0x400004, Class: isa.Load, Src1: 0, Src2: -1, Addr: 0x10000, ValueRepeat: true},
		{Seq: 2, PC: 0x400008, Class: isa.Store, Src1: 1, Src2: 0, Addr: 0x10040},
		{Seq: 3, PC: 0x40000c, Class: isa.Branch, Src1: 2, Src2: -1, Taken: true, Target: 0x400000},
	}
	for _, in := range prog {
		if err := w.Write(in); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceReader feeds arbitrary bytes to the trace decoder. The
// contract under attack: malformed, corrupted or truncated input must
// surface as an error — never a panic, never an invalid instruction,
// and never an unbounded number of records from a bounded input.
func FuzzTraceReader(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])       // truncated final record
	f.Add(valid[:len(magic)+1])       // truncated first record
	f.Add([]byte("SRTRACE2\x00\x00")) // wrong version magic
	f.Add([]byte{})                   // empty file
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Each record consumes at least two bytes, so a decoded stream
		// can never outnumber the input's bytes.
		maxRecords := len(data)
		n := 0
		for {
			in, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Errors must be sticky: a broken stream stays broken.
				if _, err2 := r.Read(); err2 == nil {
					t.Fatal("Read succeeded after a decode error")
				}
				break
			}
			if verr := in.Validate(); verr != nil {
				t.Fatalf("decoder returned invalid instruction %+v: %v", in, verr)
			}
			if in.Seq != int64(n) {
				t.Fatalf("sequence not dense: record %d has seq %d", n, in.Seq)
			}
			n++
			if n > maxRecords {
				t.Fatalf("decoded %d records from %d input bytes", n, len(data))
			}
		}
	})
}

// FuzzTraceRoundTrip drives Writer->Reader with generator-shaped
// instructions derived from the fuzz input and asserts exact recovery.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(12))
	f.Add(int64(99), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		n := int(nRaw)%64 + 1
		prog := make([]isa.Inst, n)
		rng := seed
		next := func() uint64 {
			// xorshift: cheap deterministic stream from the fuzz seed.
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return uint64(rng)
		}
		for i := range prog {
			in := isa.Inst{Seq: int64(i), PC: 0x400000 + next()%4096*4, Src1: -1, Src2: -1}
			switch next() % 5 {
			case 0:
				in.Class = isa.Load
				in.Addr = 0x10000 + next()%65536
				in.ValueRepeat = next()%2 == 0
			case 1:
				in.Class = isa.Store
				in.Addr = 0x10000 + next()%65536
			case 2:
				in.Class = isa.Branch
				in.Taken = next()%2 == 0
				if next()%2 == 0 {
					in.Target = 0x400000 + next()%4096*4
				}
			default:
				in.Class = isa.IntALU
			}
			if i > 0 && next()%2 == 0 {
				in.Src1 = int64(i) - 1 - int64(next()%uint64(i))
				if in.Src1 < 0 {
					in.Src1 = -1
				}
			}
			prog[i] = in
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range prog {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(prog) {
			t.Fatalf("round trip length %d != %d", len(got), len(prog))
		}
		for i := range prog {
			if got[i] != prog[i] {
				t.Fatalf("record %d: %+v round-tripped to %+v", i, prog[i], got[i])
			}
		}
	})
}
