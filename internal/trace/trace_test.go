package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
)

func sampleInsts(t *testing.T, bench string, n int) []isa.Inst {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(n)
}

func TestRoundTrip(t *testing.T) {
	insts := sampleInsts(t, "gcc", 20_000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(insts)) {
		t.Fatalf("count %d", w.Count())
	}
	// Compactness sanity: well under 16 bytes/record on real streams.
	if perRec := float64(buf.Len()) / float64(len(insts)); perRec > 16 {
		t.Errorf("%.1f bytes per record; format regressed", perRec)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("decoded %d of %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], insts[i])
		}
	}
}

func TestWriterRejectsGaps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(isa.Inst{Seq: 5, Class: isa.IntALU, Src1: -1, Src2: -1}); err == nil {
		t.Fatal("gap accepted")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(isa.Inst{Seq: 0, Class: isa.Load, Src1: -1, Src2: -1}); err == nil {
		t.Fatal("load without address accepted")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	insts := sampleInsts(t, "gap", 100)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	_, err := r.ReadAll()
	if err == nil || err == io.EOF {
		t.Fatal("truncated trace read cleanly")
	}
}

func TestLoopPreservesStructure(t *testing.T) {
	insts := sampleInsts(t, "gzip", 500)
	l := NewLoop(insts)
	seen := int64(0)
	for rep := 0; rep < 3; rep++ {
		for i := range insts {
			in := l.Next()
			if in.Seq != seen {
				t.Fatalf("seq %d, want %d", in.Seq, seen)
			}
			if err := in.Validate(); err != nil {
				t.Fatal(err)
			}
			// Same-iteration dependence distances preserved.
			if orig := insts[i]; orig.Src1 >= 0 && in.Src1 >= 0 {
				if int64(i)-orig.Src1 != in.Seq-in.Src1 {
					t.Fatalf("rep %d rec %d: dependence distance changed", rep, i)
				}
			}
			seen++
		}
	}
}

func TestLoopPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLoop(nil)
}

// Property: arbitrary valid ALU/Load records survive a round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(pcs []uint32, addrSeed uint32) bool {
		if len(pcs) == 0 {
			return true
		}
		var insts []isa.Inst
		for i, pc := range pcs {
			in := isa.Inst{Seq: int64(i), PC: uint64(pc), Class: isa.IntALU, Src1: -1, Src2: -1}
			if i%3 == 0 {
				in.Class = isa.Load
				in.Addr = uint64(addrSeed)%(1<<40) + 8
				in.ValueRepeat = i%2 == 0
			}
			if i > 0 && i%2 == 0 {
				in.Src1 = int64(i - 1)
			}
			insts = append(insts, in)
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, in := range insts {
			if err := w.Write(in); err != nil {
				return false
			}
		}
		w.Flush()
		r, _ := NewReader(bytes.NewReader(buf.Bytes()))
		got, err := r.ReadAll()
		if err != nil || len(got) != len(insts) {
			return false
		}
		for i := range insts {
			if got[i] != insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
