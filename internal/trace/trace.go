// Package trace serializes instruction streams to a compact binary
// format and replays them into the simulator. Recorded traces decouple
// workload generation from simulation: a trace captured once (from the
// synthetic generator or converted from an external tool) replays
// bit-identically, and trace files make workloads inspectable and
// portable.
//
// Format (version 1): the magic header "SRTRACE1", then one record per
// instruction. Each record is a class byte, a flag byte, and a sequence
// of unsigned varints (PC, source-operand distances, address, branch
// target). Sequence numbers are implicit (dense from 0) and source
// operands are stored as distances (seq - src), which keeps typical
// records under ten bytes.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// magic identifies version 1 trace files.
const magic = "SRTRACE1"

// Record flags.
const (
	flagSrc1 = 1 << iota
	flagSrc2
	flagTaken
	flagValueRepeat
	flagAddr
	flagTarget
)

// Writer streams instructions to a trace file.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter writes the header and returns a Writer. Call Flush when
// done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction. Instructions must arrive in sequence
// order (dense from 0); Write validates and rejects gaps.
func (t *Writer) Write(in isa.Inst) error {
	if t.err != nil {
		return t.err
	}
	if in.Seq != t.n {
		t.err = fmt.Errorf("trace: out-of-order write: got seq %d, want %d", in.Seq, t.n)
		return t.err
	}
	if err := in.Validate(); err != nil {
		t.err = fmt.Errorf("trace: %w", err)
		return t.err
	}

	var flags byte
	if in.Src1 >= 0 {
		flags |= flagSrc1
	}
	if in.Src2 >= 0 {
		flags |= flagSrc2
	}
	if in.Taken {
		flags |= flagTaken
	}
	if in.ValueRepeat {
		flags |= flagValueRepeat
	}
	if in.Addr != 0 {
		flags |= flagAddr
	}
	if in.Target != 0 {
		flags |= flagTarget
	}

	var buf [2 + 6*binary.MaxVarintLen64]byte
	buf[0] = byte(in.Class)
	buf[1] = flags
	n := 2
	n += binary.PutUvarint(buf[n:], in.PC)
	if flags&flagSrc1 != 0 {
		n += binary.PutUvarint(buf[n:], uint64(in.Seq-in.Src1))
	}
	if flags&flagSrc2 != 0 {
		n += binary.PutUvarint(buf[n:], uint64(in.Seq-in.Src2))
	}
	if flags&flagAddr != 0 {
		n += binary.PutUvarint(buf[n:], in.Addr)
	}
	if flags&flagTarget != 0 {
		n += binary.PutUvarint(buf[n:], in.Target)
	}
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = fmt.Errorf("trace: %w", err)
		return t.err
	}
	t.n++
	return nil
}

// Count returns how many instructions have been written.
func (t *Writer) Count() int64 { return t.n }

// Flush drains buffered output.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace file sequentially.
type Reader struct {
	r   *bufio.Reader
	n   int64
	err error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	return &Reader{r: br}, nil
}

// Read returns the next instruction, or io.EOF at the end of the
// trace.
func (t *Reader) Read() (isa.Inst, error) {
	if t.err != nil {
		return isa.Inst{}, t.err
	}
	classB, err := t.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			t.err = io.EOF
			return isa.Inst{}, io.EOF
		}
		t.err = fmt.Errorf("trace: %w", err)
		return isa.Inst{}, t.err
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return isa.Inst{}, t.err
	}
	in := isa.Inst{Seq: t.n, Class: isa.Class(classB), Src1: -1, Src2: -1}
	read := func() uint64 {
		if t.err != nil {
			return 0
		}
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: truncated record: %w", err)
		}
		return v
	}
	in.PC = read()
	if flags&flagSrc1 != 0 {
		in.Src1 = in.Seq - int64(read())
	}
	if flags&flagSrc2 != 0 {
		in.Src2 = in.Seq - int64(read())
	}
	if flags&flagAddr != 0 {
		in.Addr = read()
	}
	if flags&flagTarget != 0 {
		in.Target = read()
	}
	in.Taken = flags&flagTaken != 0
	in.ValueRepeat = flags&flagValueRepeat != 0
	if t.err != nil {
		return isa.Inst{}, t.err
	}
	if err := in.Validate(); err != nil {
		t.err = fmt.Errorf("trace: record %d: %w", t.n, err)
		return isa.Inst{}, t.err
	}
	t.n++
	return in, nil
}

// ReadAll decodes the remainder of the trace.
func (t *Reader) ReadAll() ([]isa.Inst, error) {
	var out []isa.Inst
	for {
		in, err := t.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
}

// Loop adapts a fully decoded trace into an endless workload.Stream by
// repeating it; sequence numbers continue densely across repetitions
// and dependence distances are preserved (clamped at the trace start so
// early iterations never reference the future or pre-trace producers
// incorrectly).
type Loop struct {
	insts []isa.Inst
	pos   int
	base  int64
}

// NewLoop wraps a decoded trace. It panics on an empty trace (static
// misuse).
func NewLoop(insts []isa.Inst) *Loop {
	if len(insts) == 0 {
		panic("trace: empty trace cannot loop")
	}
	return &Loop{insts: insts}
}

// Next implements workload.Stream.
func (l *Loop) Next() isa.Inst {
	in := l.insts[l.pos]
	seq := l.base + int64(l.pos)
	remap := func(src int64) int64 {
		if src < 0 {
			return -1
		}
		d := int64(l.pos) - src // distance within the recorded trace
		if d <= 0 {
			return -1
		}
		s := seq - d
		if s < 0 {
			return -1
		}
		return s
	}
	in.Src1 = remap(in.Src1)
	in.Src2 = remap(in.Src2)
	in.Seq = seq
	l.pos++
	if l.pos == len(l.insts) {
		l.pos = 0
		l.base = seq + 1
	}
	return in
}
