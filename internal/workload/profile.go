// Package workload synthesizes deterministic instruction streams that
// stand in for the paper's SPEC CINT2000 Alpha binaries.
//
// The paper ran DEC-compiled Alpha binaries under an extended
// SimpleScalar; neither the binaries nor an Alpha front end is available
// here. What the replay study actually consumes from a workload is a
// small set of statistical properties: the instruction mix, the shape of
// data-dependence chains, the memory-reference locality that sets the
// load scheduling-miss rate, how concentrated misses are on few static
// loads (what makes them predictable), the store-to-load aliasing rate,
// and branch predictability. Each benchmark is therefore modeled as a
// Profile of those properties, calibrated so the per-benchmark miss
// rates and relative IPC land near the paper's Tables 4 and 5, and the
// generator expands a profile into a deterministic dynamic instruction
// stream with a realistic static-code skeleton (stable PCs, loops,
// biased branches).
package workload

import "fmt"

// Profile is the statistical model of one benchmark.
type Profile struct {
	// Name is the benchmark name as it appears in the paper's tables.
	Name string

	// Instruction mix: fractions of the dynamic stream. The remainder
	// after all listed classes is integer ALU work.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	FPFrac     float64 // split between FP ALU and FP multiply
	MulDivFrac float64 // integer multiply/divide

	// DepMean is the mean distance, in value-producing instructions,
	// between a consumer and the producer it reads: small values mean
	// long serial chains (low ILP), large values mean wide parallelism.
	DepMean float64
	// TwoSrcFrac is the fraction of instructions reading two register
	// sources rather than one.
	TwoSrcFrac float64

	// Memory locality: each data reference goes to the hot set (DL1
	// resident), the warm set (L2 resident), or a cold streaming region
	// (memory). ColdFrac+WarmFrac <= 1; the remainder is hot.
	ColdFrac float64
	WarmFrac float64
	// HotLines and WarmLines size the regions in cache lines.
	HotLines, WarmLines int

	// MissyPCFrac is the fraction of static load sites designated
	// "miss-prone"; MissyBias is the fraction of cold/warm references
	// issued by those sites. High bias with a small site fraction is
	// what makes scheduling misses predictable (paper §4.1); the sites
	// still hit more than half the time, which is what defeats purely
	// conservative scheduling (§5.4).
	MissyPCFrac float64
	MissyBias   float64

	// AliasFrac is the fraction of loads that read an address recently
	// stored to, the second scheduling-miss source (§2.2).
	AliasFrac float64

	// BranchRandFrac is the fraction of static branch sites with
	// data-dependent (unpredictable) outcomes; remaining sites are
	// strongly biased loop/guard branches.
	BranchRandFrac float64

	// AddrReadyFrac is the probability a load's address operand is
	// architecturally long-ready (stable base register) rather than a
	// recent producer; low values model pointer chasing (mcf).
	AddrReadyFrac float64

	// StaticInsts is the static code footprint in instructions; drives
	// IL1/BTB behaviour and the number of static load/branch sites.
	StaticInsts int
}

// Validate checks that the profile's fractions are sane.
func (p Profile) Validate() error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac + p.MulDivFrac
	if sum >= 1 {
		return fmt.Errorf("workload %s: class fractions sum to %.2f >= 1", p.Name, sum)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac},
		{"BranchFrac", p.BranchFrac}, {"FPFrac", p.FPFrac},
		{"MulDivFrac", p.MulDivFrac}, {"ColdFrac", p.ColdFrac},
		{"WarmFrac", p.WarmFrac}, {"MissyPCFrac", p.MissyPCFrac},
		{"MissyBias", p.MissyBias}, {"AliasFrac", p.AliasFrac},
		{"BranchRandFrac", p.BranchRandFrac}, {"TwoSrcFrac", p.TwoSrcFrac},
		{"AddrReadyFrac", p.AddrReadyFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload %s: %s = %v out of [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.ColdFrac+p.WarmFrac > 1 {
		return fmt.Errorf("workload %s: cold+warm = %v > 1", p.Name, p.ColdFrac+p.WarmFrac)
	}
	if p.DepMean < 1 {
		return fmt.Errorf("workload %s: DepMean %v < 1", p.Name, p.DepMean)
	}
	if p.StaticInsts < 16 {
		return fmt.Errorf("workload %s: StaticInsts %d too small", p.Name, p.StaticInsts)
	}
	if p.HotLines <= 0 || p.WarmLines <= 0 {
		return fmt.Errorf("workload %s: region sizes must be positive", p.Name)
	}
	return nil
}

// Benchmarks lists the paper's SPEC CINT2000 suite in table order.
var Benchmarks = []string{
	"bzip", "crafty", "eon", "gap", "gcc", "gzip",
	"mcf", "parser", "perl", "twolf", "vortex", "vpr",
}

// ByName returns the calibrated profile for one of the paper's
// benchmarks. Unknown names return an error.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Benchmarks)
}

// All returns the full calibrated suite in table order.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// profiles holds the calibrated models. Calibration targets (paper
// Tables 4 and 5, 4-wide): the per-benchmark ordering of load
// scheduling-miss rates (gap lowest ≈1.7% … mcf highest ≈27.6%) and of
// base IPC (mcf ≈0.71 … eon/vortex ≈2.1). Locality fractions were tuned
// against the simulator; see EXPERIMENTS.md for measured-vs-paper.
var profiles = []Profile{
	{
		Name: "bzip", LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.11,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 4.4, TwoSrcFrac: 0.45,
		ColdFrac: 0.012, WarmFrac: 0.024, HotLines: 320, WarmLines: 3000,
		MissyPCFrac: 0.10, MissyBias: 0.92, AliasFrac: 0.015,
		BranchRandFrac: 0.08, AddrReadyFrac: 0.55, StaticInsts: 3000,
	},
	{
		Name: "crafty", LoadFrac: 0.29, StoreFrac: 0.07, BranchFrac: 0.11,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 7.0, TwoSrcFrac: 0.50,
		ColdFrac: 0.011, WarmFrac: 0.025, HotLines: 360, WarmLines: 2600,
		MissyPCFrac: 0.12, MissyBias: 0.90, AliasFrac: 0.012,
		BranchRandFrac: 0.030, AddrReadyFrac: 0.60, StaticInsts: 4500,
	},
	{
		Name: "eon", LoadFrac: 0.27, StoreFrac: 0.14, BranchFrac: 0.09,
		FPFrac: 0.08, MulDivFrac: 0.01, DepMean: 6.0, TwoSrcFrac: 0.50,
		ColdFrac: 0.013, WarmFrac: 0.028, HotLines: 360, WarmLines: 2400,
		MissyPCFrac: 0.10, MissyBias: 0.92, AliasFrac: 0.012,
		BranchRandFrac: 0.025, AddrReadyFrac: 0.60, StaticInsts: 4000,
	},
	{
		Name: "gap", LoadFrac: 0.24, StoreFrac: 0.08, BranchFrac: 0.10,
		FPFrac: 0.01, MulDivFrac: 0.02, DepMean: 4.6, TwoSrcFrac: 0.45,
		ColdFrac: 0.002, WarmFrac: 0.005, HotLines: 380, WarmLines: 2200,
		MissyPCFrac: 0.08, MissyBias: 0.94, AliasFrac: 0.008,
		BranchRandFrac: 0.05, AddrReadyFrac: 0.60, StaticInsts: 3500,
	},
	{
		Name: "gcc", LoadFrac: 0.25, StoreFrac: 0.11, BranchFrac: 0.14,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 2.5, TwoSrcFrac: 0.45,
		ColdFrac: 0.006, WarmFrac: 0.013, HotLines: 340, WarmLines: 2800,
		MissyPCFrac: 0.14, MissyBias: 0.88, AliasFrac: 0.010,
		BranchRandFrac: 0.120, AddrReadyFrac: 0.50, StaticInsts: 6000,
	},
	{
		Name: "gzip", LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.12,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 5.8, TwoSrcFrac: 0.45,
		ColdFrac: 0.015, WarmFrac: 0.028, HotLines: 320, WarmLines: 2600,
		MissyPCFrac: 0.09, MissyBias: 0.93, AliasFrac: 0.014,
		BranchRandFrac: 0.06, AddrReadyFrac: 0.55, StaticInsts: 2500,
	},
	{
		Name: "mcf", LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.12,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 3.6, TwoSrcFrac: 0.40,
		ColdFrac: 0.300, WarmFrac: 0.120, HotLines: 280, WarmLines: 3200,
		MissyPCFrac: 0.22, MissyBias: 0.80, AliasFrac: 0.010,
		BranchRandFrac: 0.10, AddrReadyFrac: 0.36, StaticInsts: 2000,
	},
	{
		Name: "parser", LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.13,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 2.9, TwoSrcFrac: 0.45,
		ColdFrac: 0.020, WarmFrac: 0.034, HotLines: 300, WarmLines: 3000,
		MissyPCFrac: 0.15, MissyBias: 0.88, AliasFrac: 0.016,
		BranchRandFrac: 0.09, AddrReadyFrac: 0.40, StaticInsts: 4500,
	},
	{
		Name: "perl", LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.13,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 2.0, TwoSrcFrac: 0.45,
		ColdFrac: 0.003, WarmFrac: 0.024, HotLines: 340, WarmLines: 2600,
		MissyPCFrac: 0.02, MissyBias: 0.97, AliasFrac: 0.004,
		BranchRandFrac: 0.100, AddrReadyFrac: 0.50, StaticInsts: 4500,
	},
	{
		Name: "twolf", LoadFrac: 0.25, StoreFrac: 0.07, BranchFrac: 0.12,
		FPFrac: 0.03, MulDivFrac: 0.01, DepMean: 7.0, TwoSrcFrac: 0.45,
		ColdFrac: 0.011, WarmFrac: 0.075, HotLines: 300, WarmLines: 3200,
		MissyPCFrac: 0.16, MissyBias: 0.87, AliasFrac: 0.012,
		BranchRandFrac: 0.050, AddrReadyFrac: 0.60, StaticInsts: 3500,
	},
	{
		Name: "vortex", LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.12,
		FPFrac: 0.0, MulDivFrac: 0.01, DepMean: 7.5, TwoSrcFrac: 0.50,
		ColdFrac: 0.014, WarmFrac: 0.030, HotLines: 360, WarmLines: 2600,
		MissyPCFrac: 0.10, MissyBias: 0.93, AliasFrac: 0.008,
		BranchRandFrac: 0.010, AddrReadyFrac: 0.60, StaticInsts: 5000,
	},
	{
		Name: "vpr", LoadFrac: 0.27, StoreFrac: 0.09, BranchFrac: 0.11,
		FPFrac: 0.06, MulDivFrac: 0.01, DepMean: 5.4, TwoSrcFrac: 0.45,
		ColdFrac: 0.012, WarmFrac: 0.055, HotLines: 300, WarmLines: 3000,
		MissyPCFrac: 0.13, MissyBias: 0.91, AliasFrac: 0.012,
		BranchRandFrac: 0.045, AddrReadyFrac: 0.50, StaticInsts: 3000,
	},
}
