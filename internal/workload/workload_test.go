package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestAllProfilesValidate(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("suite has %d profiles, want 12", len(All()))
	}
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Benchmarks {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, p.Name)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base, _ := ByName("gcc")
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"mix over 1", func(p *Profile) { p.LoadFrac = 0.9; p.StoreFrac = 0.3 }},
		{"negative frac", func(p *Profile) { p.ColdFrac = -0.1 }},
		{"cold+warm over 1", func(p *Profile) { p.ColdFrac = 0.6; p.WarmFrac = 0.6 }},
		{"dep mean under 1", func(p *Profile) { p.DepMean = 0.5 }},
		{"tiny static code", func(p *Profile) { p.StaticInsts = 3 }},
		{"zero hot lines", func(p *Profile) { p.HotLines = 0 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gzip")
	g1, err := NewGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(p, 7)
	a := g1.Generate(5000)
	b := g2.Generate(5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	g3, _ := NewGenerator(p, 8)
	c := g3.Generate(5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorInstructionsValid(t *testing.T) {
	for _, name := range Benchmarks {
		p, _ := ByName(name)
		g, err := NewGenerator(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(-1)
		for _, in := range g.Generate(20000) {
			if err := in.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if in.Seq != prev+1 {
				t.Fatalf("%s: sequence gap %d -> %d", name, prev, in.Seq)
			}
			prev = in.Seq
		}
	}
}

func TestGeneratorMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "eon"} {
		p, _ := ByName(name)
		g, _ := NewGenerator(p, 3)
		counts := map[isa.Class]int{}
		n := 200000
		for i := 0; i < n; i++ {
			counts[g.Next().Class]++
		}
		loadFrac := float64(counts[isa.Load]) / float64(n)
		storeFrac := float64(counts[isa.Store]) / float64(n)
		branchFrac := float64(counts[isa.Branch]) / float64(n)
		// Loopy control flow visits static sites very unevenly, so the
		// dynamic mix deviates from the static profile; it must still be
		// recognizably the profile's.
		if math.Abs(loadFrac-p.LoadFrac) > 0.12 {
			t.Errorf("%s: load frac %.3f vs profile %.3f", name, loadFrac, p.LoadFrac)
		}
		if math.Abs(storeFrac-p.StoreFrac) > 0.07 {
			t.Errorf("%s: store frac %.3f vs profile %.3f", name, storeFrac, p.StoreFrac)
		}
		if math.Abs(branchFrac-p.BranchFrac) > 0.07 {
			t.Errorf("%s: branch frac %.3f vs profile %.3f", name, branchFrac, p.BranchFrac)
		}
	}
}

func TestGeneratorDependencesPointBackwardToProducers(t *testing.T) {
	p, _ := ByName("vortex")
	g, _ := NewGenerator(p, 11)
	insts := g.Generate(50000)
	hasDest := map[int64]bool{}
	for _, in := range insts {
		for _, src := range []int64{in.Src1, in.Src2} {
			if src < 0 {
				continue
			}
			if src >= in.Seq {
				t.Fatalf("inst %d depends on %d (not strictly older)", in.Seq, src)
			}
			if !hasDest[src] {
				t.Fatalf("inst %d depends on %d which produces no value", in.Seq, src)
			}
		}
		if in.Class.HasDest() {
			hasDest[in.Seq] = true
		}
	}
}

func TestGeneratorPCsAreStablePerClass(t *testing.T) {
	p, _ := ByName("parser")
	g, _ := NewGenerator(p, 5)
	classAt := map[uint64]isa.Class{}
	for _, in := range g.Generate(100000) {
		if prev, ok := classAt[in.PC]; ok && prev != in.Class {
			t.Fatalf("PC %#x changed class %v -> %v", in.PC, prev, in.Class)
		}
		classAt[in.PC] = in.Class
	}
	if len(classAt) < 100 {
		t.Fatalf("only %d static sites visited; control flow too narrow", len(classAt))
	}
}

func TestGeneratorMissConcentration(t *testing.T) {
	// perl's profile concentrates cold/warm references on very few
	// sites; mcf spreads them. Verify the generator honors that, because
	// Figure 9 and Table 6 depend on it.
	// Metric: what fraction of the visited static load sites ever issue a
	// cold/warm (potentially missing) reference. perl concentrates these
	// on very few sites; mcf spreads them across most of its loads.
	spread := func(name string) float64 {
		p, _ := ByName(name)
		g, _ := NewGenerator(p, 9)
		loadSites := map[uint64]bool{}
		coldWarmSites := map[uint64]bool{}
		for i := 0; i < 300000; i++ {
			in := g.Next()
			if in.Class != isa.Load {
				continue
			}
			loadSites[in.PC] = true
			if in.Addr >= warmBase {
				coldWarmSites[in.PC] = true
			}
		}
		if len(loadSites) == 0 {
			return 0
		}
		return float64(len(coldWarmSites)) / float64(len(loadSites))
	}
	perl := spread("perl")
	mcf := spread("mcf")
	if perl >= mcf/2 {
		t.Fatalf("perl miss-site spread %.3f should be well below mcf %.3f", perl, mcf)
	}
}

func TestGeneratorAliasing(t *testing.T) {
	p, _ := ByName("bzip")
	g, _ := NewGenerator(p, 13)
	storeAddrs := map[uint64]bool{}
	aliased, loads := 0, 0
	for i := 0; i < 200000; i++ {
		in := g.Next()
		switch in.Class {
		case isa.Store:
			storeAddrs[in.Addr] = true
		case isa.Load:
			loads++
			if storeAddrs[in.Addr] {
				aliased++
			}
		}
	}
	if loads == 0 || aliased == 0 {
		t.Fatal("no aliased loads generated")
	}
}

func TestGeneratorColdStream(t *testing.T) {
	// mcf must emit a substantial cold stream (distinct, increasing line
	// addresses) — that's its defining behaviour.
	p, _ := ByName("mcf")
	g, _ := NewGenerator(p, 17)
	cold, loads := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Class == isa.Load {
			loads++
			if in.Addr >= coldBase {
				cold++
			}
		}
	}
	frac := float64(cold) / float64(loads)
	if frac < 0.08 {
		t.Fatalf("mcf cold fraction %.3f too small", frac)
	}
}

// Property: any valid profile yields a generator whose first instructions
// validate and whose branches carry targets inside the text segment.
func TestQuickGeneratorStructural(t *testing.T) {
	base, _ := ByName("gap")
	f := func(seed int64, loadPct, branchPct uint8) bool {
		p := base
		p.LoadFrac = float64(loadPct%40) / 100
		p.BranchFrac = float64(branchPct%20) / 100
		g, err := NewGenerator(p, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			in := g.Next()
			if in.Validate() != nil {
				return false
			}
			if in.Class == isa.Branch && in.Taken {
				if in.Target < codeBase || in.Target >= codeBase+uint64(p.StaticInsts)*4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
