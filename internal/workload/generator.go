package workload

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/isa"
)

// Data region bases; disjoint high bits keep the regions from aliasing
// in caches by construction.
const (
	hotBase  = 0x1000_0000
	warmBase = 0x2000_0000
	coldBase = 0x4000_0000
	lineSize = 64
)

// ringSize bounds how far back dependence edges can reach, mimicking a
// finite architectural register file whose values get overwritten.
const ringSize = 64

// ctrlSeedMix decorrelates the control-flow RNG from the data RNG.
const ctrlSeedMix = 0x5deece66d

// valueSeedMix decorrelates the value-locality RNG.
const valueSeedMix = 0x2545f4914f6cdd1d

// Stream supplies dynamic instructions to the simulator.
type Stream interface {
	// Next returns the next dynamic instruction.
	Next() isa.Inst
}

// Generator expands a Profile into a deterministic dynamic instruction
// stream. It implements Stream. The same (profile, seed) pair always
// produces the same stream.
type Generator struct {
	prof Profile
	rng  *rand.Rand
	// ctrlRng drives branch outcomes (and nothing else), so the
	// control-flow trajectory is independent of data-model sampling and
	// exactly reproducible by the calibration pre-pass.
	ctrlRng *rand.Rand
	// valueRng drives value-locality outcomes on its own stream so that
	// enabling value-prediction modeling does not perturb the calibrated
	// address/dependence stream.
	valueRng *rand.Rand
	slots    []staticSlot

	cursor int
	seq    int64

	// producers is a ring of recent value-producing sequence numbers.
	producers [ringSize]int64
	nProd     int
	prodHead  int

	// recentLoads/recentStores feed store-data and alias correlations.
	recentLoads  [16]int64
	nLoads       int
	loadHead     int
	recentStores [16]struct {
		seq  int64
		addr uint64
	}
	nStores   int
	storeHead int

	coldPtr uint64

	// lastInstance tracks the previous dynamic seq of each recurrent
	// slot, the loop-carried dependence.
	lastInstance map[int]int64

	// missy-vs-clean region probabilities, precomputed from the profile.
	pColdWarmMissy float64
	pColdWarmClean float64
	coldShare      float64 // cold / (cold + warm)
}

// NewGenerator builds a generator for prof with the given seed.
func NewGenerator(prof Profile, seed int64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{
		prof:         prof,
		rng:          rng,
		ctrlRng:      rand.New(rand.NewSource(seed ^ ctrlSeedMix)),
		valueRng:     rand.New(rand.NewSource(seed ^ valueSeedMix)),
		slots:        buildStatic(prof, rng),
		coldPtr:      coldBase,
		lastInstance: make(map[int]int64),
	}
	for i := range g.producers {
		g.producers[i] = -1
	}
	cw := prof.ColdFrac + prof.WarmFrac
	if cw > 0 {
		g.coldShare = prof.ColdFrac / cw
	}
	// Mark missy sites. A small set of static loads accounts for most
	// dynamic misses (paper §4.1), and those sites still hit more than
	// half the time (§5.4) — so each missy site references cold/warm
	// data with a fixed per-site ratio derived from MissyBias, and the
	// calibration pass below marks just enough dynamic load mass missy
	// (hottest sites first: miss-prone loads live in the hot loops) for
	// the aggregate cold+warm fraction to hit the profile target.
	g.pColdWarmMissy = 0.45 + 0.5*prof.MissyBias
	missyDyn := g.markMissySites(seed, cw)
	if missyDyn < 1 {
		g.pColdWarmClean = math.Min(0.85, (cw-missyDyn*g.pColdWarmMissy)/(1-missyDyn))
		if g.pColdWarmClean < 0 {
			g.pColdWarmClean = 0
		}
	}
	return g, nil
}

// markMissySites measures per-site dynamic load frequency with a dry
// control-flow walk (separate RNG; generator state untouched), then
// marks the most frequently visited load sites missy until the missy
// share of dynamic loads reaches MissyBias*cw/pColdWarmMissy. It
// returns the dynamic missy share actually reached.
func (g *Generator) markMissySites(seed int64, cw float64) float64 {
	// Same control-flow RNG seed as the real walk: the pre-pass visits
	// exactly the sites the simulation will.
	rng := rand.New(rand.NewSource(seed ^ ctrlSeedMix))
	visits := make(map[int]int) // slot index -> dynamic load visits
	cursor := 0
	loads := 0
	const walk = 120_000
	for i := 0; i < walk; i++ {
		slot := &g.slots[cursor]
		if slot.class == isa.Load {
			visits[cursor]++
			loads++
		}
		if slot.class == isa.Branch && rng.Float64() < slot.takenBias {
			cursor = slot.targetSlot
		} else {
			cursor = (cursor + 1) % len(g.slots)
		}
	}
	if loads == 0 || cw == 0 {
		return 0
	}
	target := g.prof.MissyBias * cw / g.pColdWarmMissy
	if target > 0.9 {
		target = 0.9
	}
	// Hottest sites first; ties broken by slot index for determinism.
	idx := make([]int, 0, len(visits))
	for s := range visits {
		idx = append(idx, s)
	}
	sort.Slice(idx, func(a, b int) bool {
		if visits[idx[a]] != visits[idx[b]] {
			return visits[idx[a]] > visits[idx[b]]
		}
		return idx[a] < idx[b]
	})
	// Greedy knapsack: take the largest sites that still fit, so the
	// marked mass lands on the target without a single hot site
	// overshooting it by an order of magnitude.
	budget := int(target * float64(loads))
	marked := 0
	for _, s := range idx {
		if marked >= budget {
			break
		}
		if v := visits[s]; marked+v <= budget+budget/5 {
			g.slots[s].missy = true
			marked += v
		}
	}
	// Fill pass: if chunky hot sites left the budget badly under-used,
	// take the smallest sites (ascending) until close; a small overshoot
	// beats spilling miss mass onto unpredictable clean sites.
	for i := len(idx) - 1; i >= 0 && marked < budget-budget/10; i-- {
		s := idx[i]
		if !g.slots[s].missy {
			g.slots[s].missy = true
			marked += visits[s]
		}
	}
	return float64(marked) / float64(loads)
}

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.prof }

// Next produces the next dynamic instruction. It never fails: the
// synthetic program is an endless walk of its static code.
func (g *Generator) Next() isa.Inst {
	slot := &g.slots[g.cursor]
	in := isa.Inst{
		Seq:   g.seq,
		PC:    slot.pc,
		Class: slot.class,
		Src1:  -1,
		Src2:  -1,
	}
	switch slot.class {
	case isa.Load:
		// Address base: usually a stable (long-ready) base register;
		// pointer-chasing codes tie it to a recent producer.
		if g.rng.Float64() >= g.prof.AddrReadyFrac {
			in.Src1 = g.sampleProducer()
		}
		in.Addr = g.loadAddr(slot)
		if slot.valueStable {
			in.ValueRepeat = g.valueRng.Float64() < 0.92
		} else {
			in.ValueRepeat = g.valueRng.Float64() < 0.25
		}
	case isa.Store:
		// Store addresses overwhelmingly use stable base registers.
		if g.rng.Float64() >= 0.6 {
			in.Src1 = g.sampleProducer()
		}
		in.Src2 = g.sampleStoreData()
		in.Addr = g.storeAddr()
	case isa.Branch:
		// Roughly half of conditions test long-computed values
		// (induction variables, flags set well in advance).
		if g.rng.Float64() >= 0.5 {
			in.Src1 = g.sampleProducer()
		}
		in.Taken = g.ctrlRng.Float64() < slot.takenBias
		in.Target = g.slots[slot.targetSlot].pc
	default:
		if slot.recurrent {
			// Loop-carried recurrence: read this site's previous
			// instance (the induction-variable chain).
			if prev, ok := g.lastInstance[g.cursor]; ok {
				in.Src1 = prev
			}
			if g.rng.Float64() < 0.5 {
				in.Src2 = g.sampleProducer()
			}
			g.lastInstance[g.cursor] = in.Seq
		} else {
			in.Src1 = g.sampleProducer()
			if g.rng.Float64() < g.prof.TwoSrcFrac {
				in.Src2 = g.sampleProducer()
			}
		}
	}

	// Bookkeeping for future dependences.
	if slot.class.HasDest() {
		g.producers[g.prodHead] = g.seq
		g.prodHead = (g.prodHead + 1) % ringSize
		if g.nProd < ringSize {
			g.nProd++
		}
	}
	if slot.class == isa.Load {
		g.recentLoads[g.loadHead] = g.seq
		g.loadHead = (g.loadHead + 1) % len(g.recentLoads)
		if g.nLoads < len(g.recentLoads) {
			g.nLoads++
		}
	}
	if slot.class == isa.Store {
		g.recentStores[g.storeHead] = struct {
			seq  int64
			addr uint64
		}{g.seq, in.Addr}
		g.storeHead = (g.storeHead + 1) % len(g.recentStores)
		if g.nStores < len(g.recentStores) {
			g.nStores++
		}
	}

	// Advance control flow.
	if slot.class == isa.Branch && in.Taken {
		g.cursor = slot.targetSlot
	} else {
		g.cursor = (g.cursor + 1) % len(g.slots)
	}
	g.seq++
	return in
}

// Generate returns the next n instructions as a slice.
func (g *Generator) Generate(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// sampleProducer picks a recent value producer at a geometric distance
// whose mean is the profile's DepMean, or -1 when the operand is
// long-ready (or no producer exists yet).
func (g *Generator) sampleProducer() int64 {
	if g.nProd == 0 {
		return -1
	}
	// A fraction of operands read values produced long ago (already
	// retired); they arrive ready. The fraction shrinks as chains
	// lengthen (small DepMean = tightly dependent code).
	if g.rng.Float64() < 0.04*g.prof.DepMean {
		return -1
	}
	d := 1 + int(g.rng.ExpFloat64()*(g.prof.DepMean-1))
	if d > g.nProd {
		d = g.nProd
	}
	idx := (g.prodHead - d + ringSize) % ringSize
	return g.producers[idx]
}

// sampleStoreData picks the store's data producer, biased toward recent
// loads so store-to-load chains (and thus alias scheduling misses with
// unready data) occur at realistic rates.
func (g *Generator) sampleStoreData() int64 {
	if g.nLoads > 0 && g.rng.Float64() < 0.4 {
		d := 1 + g.rng.Intn(min(4, g.nLoads))
		idx := (g.loadHead - d + len(g.recentLoads)) % len(g.recentLoads)
		return g.recentLoads[idx]
	}
	return g.sampleProducer()
}

// loadAddr picks the load's effective address according to the locality
// model: alias a recent store, or reference the hot / warm / cold
// region. Aliasing concentrates on the missy sites (spill/reload and
// pointer-update idioms live in the same miss-prone code), keeping
// store-to-load scheduling misses predictable by PC as in real codes;
// clean sites alias only rarely.
func (g *Generator) loadAddr(slot *staticSlot) uint64 {
	aliasP := g.prof.AliasFrac * 0.3
	if slot.missy {
		aliasP = 0.12
	}
	if g.nStores > 0 && g.rng.Float64() < aliasP {
		d := 1 + g.rng.Intn(min(4, g.nStores))
		idx := (g.storeHead - d + len(g.recentStores)) % len(g.recentStores)
		return g.recentStores[idx].addr
	}
	pcw := g.pColdWarmClean
	if slot.missy {
		pcw = g.pColdWarmMissy
	}
	r := g.rng.Float64()
	switch {
	case r < pcw*g.coldShare:
		g.coldPtr += lineSize
		return g.coldPtr
	case r < pcw:
		return warmBase + uint64(g.rng.Intn(g.prof.WarmLines))*lineSize + uint64(g.rng.Intn(8))*8
	default:
		return hotBase + uint64(g.rng.Intn(g.prof.HotLines))*lineSize + uint64(g.rng.Intn(8))*8
	}
}

// storeAddr picks a store address: mostly hot, some warm — stores write
// the active working set.
func (g *Generator) storeAddr() uint64 {
	if g.rng.Float64() < 0.1 {
		return warmBase + uint64(g.rng.Intn(g.prof.WarmLines))*lineSize + uint64(g.rng.Intn(8))*8
	}
	return hotBase + uint64(g.rng.Intn(g.prof.HotLines))*lineSize + uint64(g.rng.Intn(8))*8
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
