package workload

import (
	"math/rand"

	"repro/internal/isa"
)

// codeBase is where the synthetic program's text segment lives.
const codeBase = 0x0040_0000

// staticSlot is one instruction of the synthetic program's static code.
// The dynamic stream is produced by walking these slots under sampled
// branch outcomes, so PCs, instruction classes, miss-proneness and
// branch biases are all stable per site — which is what PC-indexed
// predictors need to observe.
type staticSlot struct {
	pc    uint64
	class isa.Class
	// missy marks a load site as miss-prone (issues most cold/warm
	// references).
	missy bool
	// valueStable marks a load site with high value locality (its
	// loaded value usually repeats), the raw material for load value
	// prediction.
	valueStable bool
	// recurrent marks an integer ALU site as a loop-carried recurrence
	// (induction variable): each dynamic instance reads the previous
	// instance of the same site. Recurrences are what let an invalid
	// speculative wavefront propagate for hundreds of levels (Figure 3).
	recurrent bool
	// takenBias is the probability this branch is taken.
	takenBias float64
	// targetSlot is the branch target's slot index.
	targetSlot int
}

// buildStatic samples the static program skeleton for a profile.
func buildStatic(p Profile, rng *rand.Rand) []staticSlot {
	n := p.StaticInsts
	slots := make([]staticSlot, n)
	for i := range slots {
		s := &slots[i]
		s.pc = codeBase + uint64(i)*4
		r := rng.Float64()
		switch {
		case r < p.LoadFrac:
			s.class = isa.Load
			// Roughly 40% of static loads exhibit strong value locality
			// (Lipasti et al.); the rest only occasionally repeat. The
			// mark is a hash of the slot index so it does not perturb the
			// calibrated layout sampling.
			s.valueStable = (uint64(i)*0x9e3779b97f4a7c15)>>62 == 0
			// missy marks are assigned by the generator's calibration
			// pass (see NewGenerator), which sizes the missy set so the
			// aggregate cold/warm mass lands on the profile target while
			// each missy site keeps a high per-site miss ratio.
		case r < p.LoadFrac+p.StoreFrac:
			s.class = isa.Store
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac:
			s.class = isa.Branch
			if rng.Float64() < p.BranchRandFrac {
				s.takenBias = 0.5
			} else if rng.Float64() < 0.6 {
				s.takenBias = 0.95 // loop back edge
			} else {
				s.takenBias = 0.05 // rarely taken guard
			}
			s.targetSlot = sampleTarget(i, n, rng)
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
			if rng.Float64() < 0.6 {
				s.class = isa.FPALU
			} else {
				s.class = isa.FPMult
			}
		case r < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac+p.MulDivFrac:
			if rng.Float64() < 0.85 {
				s.class = isa.IntMult
			} else {
				s.class = isa.IntDiv
			}
		default:
			s.class = isa.IntALU
			s.recurrent = rng.Float64() < 0.10
		}
	}
	return slots
}

// sampleTarget picks a branch target: mostly short backward edges
// (loops), occasionally forward skips.
func sampleTarget(i, n int, rng *rand.Rand) int {
	span := 1 + rng.Intn(200)
	var t int
	if rng.Float64() < 0.8 {
		t = i - span // backward: loop
	} else {
		t = i + 1 + span // forward: skip
	}
	// Clamp into [0, n) avoiding a self-target, wrapping like a loop
	// around the program.
	t %= n
	if t < 0 {
		t += n
	}
	if t == i {
		t = (i + 1) % n
	}
	return t
}
