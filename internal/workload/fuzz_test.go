package workload

import (
	"testing"
)

// FuzzProfile throws arbitrary profile parameters at the generator.
// The contract: any profile accepted by Validate must produce an
// endless, structurally valid instruction stream — dense sequence
// numbers, dependences strictly in the past, in-range classes, and
// addresses/outcomes consistent with each class — for any seed. The
// generator must never panic, even on adversarial parameter corners
// (fractions at 0 or 1, minimum footprints, tiny hot sets).
func FuzzProfile(f *testing.F) {
	// Seed corpus: a realistic profile, plus corner cases.
	f.Add(0.3, 0.15, 0.15, 0.0, 0.0, 6.0, 0.4, 0.1, 0.2, 0.1, 0.8, 0.05, 0.3, 0.7, 200, 64, 512, int64(1))
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 16, 1, 1, int64(42))
	f.Add(0.24, 0.24, 0.24, 0.24, 0.03, 1.0, 1.0, 0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 16, 1, 1, int64(-7))

	f.Fuzz(func(t *testing.T,
		loadFrac, storeFrac, branchFrac, fpFrac, mulDivFrac,
		depMean, twoSrcFrac, coldFrac, warmFrac,
		missyPCFrac, missyBias, aliasFrac, branchRandFrac, addrReadyFrac float64,
		staticInsts, hotLines, warmLines int, seed int64) {

		// Bound the footprint parameters so a fuzz iteration stays fast;
		// the fractions are taken as-is so Validate sees raw input.
		p := Profile{
			Name:           "fuzz",
			LoadFrac:       loadFrac,
			StoreFrac:      storeFrac,
			BranchFrac:     branchFrac,
			FPFrac:         fpFrac,
			MulDivFrac:     mulDivFrac,
			DepMean:        depMean,
			TwoSrcFrac:     twoSrcFrac,
			ColdFrac:       coldFrac,
			WarmFrac:       warmFrac,
			MissyPCFrac:    missyPCFrac,
			MissyBias:      missyBias,
			AliasFrac:      aliasFrac,
			BranchRandFrac: branchRandFrac,
			AddrReadyFrac:  addrReadyFrac,
			StaticInsts:    16 + abs(staticInsts)%4096,
			HotLines:       1 + abs(hotLines)%2048,
			WarmLines:      1 + abs(warmLines)%16384,
		}
		if p.Validate() != nil {
			// Out-of-range parameters must be rejected, not limped with;
			// NewGenerator has to agree with Validate.
			if g, err := NewGenerator(p, seed); err == nil && g != nil {
				t.Fatal("NewGenerator accepted a profile Validate rejects")
			}
			return
		}
		g, err := NewGenerator(p, seed)
		if err != nil {
			t.Fatalf("valid profile rejected: %v", err)
		}
		const n = 3000
		for i := int64(0); i < n; i++ {
			in := g.Next()
			if in.Seq != i {
				t.Fatalf("sequence not dense: inst %d has seq %d", i, in.Seq)
			}
			if err := in.Validate(); err != nil {
				t.Fatalf("generated invalid instruction: %v", err)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
