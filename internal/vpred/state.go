package vpred

import "fmt"

// EntryState is one last-value-table entry's serialized form.
type EntryState struct {
	Tag   uint64 `json:"tag"`
	Valid bool   `json:"valid,omitempty"`
	Conf  uint8  `json:"conf,omitempty"`
}

// State is a Predictor's serializable contents; geometry is not part
// of the state (a checkpoint pairs it with the Config that rebuilds
// the same shape).
type State struct {
	Table       []EntryState `json:"table"`
	Lookups     uint64       `json:"lookups"`
	Predictions uint64       `json:"predictions"`
	Correct     uint64       `json:"correct"`
}

// State snapshots the predictor for a checkpoint.
func (p *Predictor) State() State {
	st := State{
		Table:       make([]EntryState, len(p.table)),
		Lookups:     p.lookups,
		Predictions: p.predictions,
		Correct:     p.correct,
	}
	for i, e := range p.table {
		st.Table[i] = EntryState{Tag: e.tag, Valid: e.valid, Conf: e.conf}
	}
	return st
}

// RestoreState loads a snapshot taken from a predictor of identical
// configuration; a shape mismatch is an error.
func (p *Predictor) RestoreState(st State) error {
	if len(st.Table) != len(p.table) {
		return fmt.Errorf("vpred: state holds %d entries, configuration wants %d",
			len(st.Table), len(p.table))
	}
	for i, e := range st.Table {
		p.table[i] = entry{tag: e.Tag, valid: e.Valid, conf: e.Conf}
	}
	p.lookups, p.predictions, p.correct = st.Lookups, st.Predictions, st.Correct
	return nil
}
