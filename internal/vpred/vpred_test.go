package vpred

import (
	"testing"
	"testing/quick"
)

func TestColdNeverPredicts(t *testing.T) {
	p := New(Config{})
	if p.Predict(0x400000) {
		t.Fatal("cold entry predicted")
	}
}

func TestConfidenceGate(t *testing.T) {
	p := New(Config{})
	pc := uint64(0x400100)
	// Three hits: confidence 3 -> predict.
	for i := 0; i < 3; i++ {
		if p.Predict(pc) {
			t.Fatalf("predicted at confidence %d", i)
		}
		p.Update(pc, true, false)
	}
	if !p.Predict(pc) {
		t.Fatal("saturated entry did not predict")
	}
	// One miss resets to zero.
	p.Update(pc, false, true)
	if p.Predict(pc) {
		t.Fatal("predicted right after a misprediction reset")
	}
}

func TestLowerThreshold(t *testing.T) {
	p := New(Config{Threshold: 1})
	pc := uint64(0x88)
	p.Update(pc, true, false)
	if !p.Predict(pc) {
		t.Fatal("threshold-1 predictor should predict after one hit")
	}
}

func TestTagConflict(t *testing.T) {
	p := New(Config{Entries: 16, TagBits: 8})
	a, b := uint64(0)<<2, uint64(16)<<2 // same index, different tags
	for i := 0; i < 3; i++ {
		p.Update(a, true, false)
	}
	if !p.Predict(a) {
		t.Fatal("a should predict")
	}
	p.Update(b, true, false) // evicts a
	if p.Predict(a) {
		t.Fatal("a predicted after eviction")
	}
}

func TestAccuracyAccounting(t *testing.T) {
	p := New(Config{})
	pc := uint64(0x40)
	for i := 0; i < 3; i++ {
		p.Update(pc, true, false)
	}
	p.Update(pc, true, true)
	p.Update(pc, false, true)
	if got := p.Accuracy(); got != 0.5 {
		t.Fatalf("accuracy %v, want 0.5", got)
	}
	_, preds, correct := p.Stats()
	if preds != 2 || correct != 1 {
		t.Fatalf("stats (%d,%d)", preds, correct)
	}
}

func TestReset(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 4; i++ {
		p.Update(0x40, true, true)
	}
	p.Reset()
	if p.Predict(0x40) {
		t.Fatal("state survived reset")
	}
	if _, preds, _ := p.Stats(); preds != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two table")
		}
	}()
	New(Config{Entries: 100})
}

// Property: a stream of consistent hits at one PC eventually predicts;
// any misprediction immediately stops prediction.
func TestQuickResetSemantics(t *testing.T) {
	f := func(pcSeed uint16, pattern []bool) bool {
		p := New(Config{Entries: 64, TagBits: 6})
		pc := uint64(pcSeed) << 2
		for _, hit := range pattern {
			predicted := p.Predict(pc)
			p.Update(pc, hit, predicted)
			if !hit && p.Predict(pc) {
				return false // must not predict right after a miss
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
