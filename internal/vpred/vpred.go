// Package vpred implements a load value predictor in the style of
// Lipasti, Wilkerson and Shen (ASPLOS 1996) — the data-speculation
// technique the paper's §3.5 uses to motivate token-based selective
// replay: value prediction collapses true data dependences, letting
// dependents execute before their source load finishes, and makes the
// verification delay non-deterministic (a mispredicted value is only
// discovered when the load's memory access completes, cache misses
// included). Timing-based replay schemes cannot recover such
// speculation; rename-order schemes (token-based, re-insert) can.
//
// Values themselves are not simulated; the workload generator marks
// each dynamic load with whether its value repeats its site's last
// value (value locality), and this predictor models the hardware that
// exploits it: a PC-indexed, tagged last-value table with 2-bit
// confidence, predicting only above a confidence threshold.
package vpred

// Config sizes the predictor.
type Config struct {
	// Entries is the table size; a power of two (default 4096).
	Entries int
	// TagBits is how many PC bits are kept as a tag (default 10).
	TagBits int
	// Threshold is the confidence (0..3) required to use a prediction
	// (default 3: predict only when saturated, the standard
	// high-accuracy operating point).
	Threshold uint8
}

// Default returns a 4k-entry tagged predictor that predicts at
// saturated confidence.
func Default() Config {
	return Config{Entries: 4096, TagBits: 10, Threshold: 3}
}

type entry struct {
	tag   uint64
	valid bool
	conf  uint8
}

// Predictor is the confidence-gated last-value predictor. The zero
// value is unusable; construct with New.
type Predictor struct {
	cfg     Config
	table   []entry
	idxMask uint64
	tagMask uint64

	lookups     uint64
	predictions uint64
	correct     uint64
}

// New builds a predictor; zero config fields take defaults. Panics on a
// non-power-of-two size (static configuration error).
func New(cfg Config) *Predictor {
	def := Default()
	if cfg.Entries == 0 {
		cfg.Entries = def.Entries
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = def.TagBits
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = def.Threshold
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("vpred: entry count must be a power of two")
	}
	return &Predictor{
		cfg:     cfg,
		table:   make([]entry, cfg.Entries),
		idxMask: uint64(cfg.Entries - 1),
		tagMask: (1 << uint(cfg.TagBits)) - 1,
	}
}

func (p *Predictor) slot(pc uint64) (int, uint64) {
	w := pc >> 2
	idx := int(w & p.idxMask)
	var bits int
	for m := p.idxMask; m != 0; m >>= 1 {
		bits++
	}
	return idx, (w >> uint(bits)) & p.tagMask
}

// Predict reports whether the load at pc should use its predicted
// value this time.
func (p *Predictor) Predict(pc uint64) bool {
	p.lookups++
	i, tag := p.slot(pc)
	e := p.table[i]
	return e.valid && e.tag == tag && e.conf >= p.cfg.Threshold
}

// Update trains the entry with whether the load's value matched its
// site's previous value (i.e. whether a prediction would have been
// correct), and whether a prediction was actually consumed.
func (p *Predictor) Update(pc uint64, wouldHit, predicted bool) {
	i, tag := p.slot(pc)
	e := &p.table[i]
	if !e.valid || e.tag != tag {
		*e = entry{tag: tag, valid: true}
	}
	if wouldHit {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		// Mispredictions are expensive; reset rather than decay, the
		// usual last-value-predictor policy.
		e.conf = 0
	}
	if predicted {
		p.predictions++
		if wouldHit {
			p.correct++
		}
	}
}

// Stats returns lookups, consumed predictions, and correct ones.
func (p *Predictor) Stats() (lookups, predictions, correct uint64) {
	return p.lookups, p.predictions, p.correct
}

// Accuracy returns correct/consumed predictions (0 when none).
func (p *Predictor) Accuracy() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.predictions)
}

// Reset clears table and statistics.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = entry{}
	}
	p.lookups, p.predictions, p.correct = 0, 0, 0
}
