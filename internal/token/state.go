package token

import (
	"fmt"

	"repro/internal/smpred"
)

// State is an Allocator's serializable contents: per-token holders and
// confidences, the LIFO free list in order, and the statistics. The
// pool size is not part of the state (a checkpoint pairs it with the
// machine Config that rebuilds the same pool).
type State struct {
	Holder  []int64 `json:"holder"`
	Conf    []uint8 `json:"conf"`
	Free    []int   `json:"free"`
	Allocs  uint64  `json:"allocs"`
	Steals  uint64  `json:"steals"`
	Refused uint64  `json:"refused"`
}

// State snapshots the allocator for a checkpoint.
func (a *Allocator) State() State {
	st := State{
		Holder:  append([]int64(nil), a.holder...),
		Conf:    make([]uint8, len(a.conf)),
		Free:    append([]int(nil), a.free...),
		Allocs:  a.allocs,
		Steals:  a.steals,
		Refused: a.refused,
	}
	for i, c := range a.conf {
		st.Conf[i] = uint8(c)
	}
	return st
}

// RestoreState loads a snapshot taken from an allocator of identical
// pool size; a shape mismatch is an error.
func (a *Allocator) RestoreState(st State) error {
	if len(st.Holder) != a.n || len(st.Conf) != a.n || len(st.Free) > a.n {
		return fmt.Errorf("token: state shape %d/%d/%d does not match pool size %d",
			len(st.Holder), len(st.Conf), len(st.Free), a.n)
	}
	for _, id := range st.Free {
		if id < 0 || id >= a.n {
			return fmt.Errorf("token: state frees token %d, outside pool 0..%d", id, a.n-1)
		}
	}
	copy(a.holder, st.Holder)
	for i, c := range st.Conf {
		a.conf[i] = smpred.Confidence(c)
	}
	a.free = append(a.free[:0], st.Free...)
	a.allocs, a.steals, a.refused = st.Allocs, st.Steals, st.Refused
	return nil
}
