// Package token implements the machinery of token-based selective replay
// (paper §4.2): a fixed pool of uniquely named tokens handed to loads
// that are likely to incur scheduling misses, dependence vectors with one
// bit per token that propagate through the rename table in program
// order, and the two-wire-per-token kill bus whose four signal states are
// given in the paper's Table 2.
package token

import (
	"fmt"

	"repro/internal/smpred"
)

// MaxTokens bounds the pool so dependence vectors fit in a word. The
// paper uses 8 (4-wide) and 16 (8-wide) tokens.
const MaxTokens = 64

// Vector is a dependence vector: bit i set means the instruction
// (transitively) depends on the current holder of token i. Vectors are
// read from the rename table for each source operand, merged, and stored
// back for the destination, all in program order — which is exactly what
// lets this scheme tolerate data-speculation techniques that violate
// dependence order inside the scheduler.
type Vector uint64

// Merge returns the union of two vectors (the two source operands'
// parent-load lists).
func (v Vector) Merge(o Vector) Vector { return v | o }

// With returns v with token id's bit set (the token head marks itself).
func (v Vector) With(id int) Vector { return v | 1<<uint(id) }

// Without returns v with token id's bit cleared (complete or reclaim
// broadcast observed).
func (v Vector) Without(id int) Vector { return v &^ (1 << uint(id)) }

// Has reports whether token id's bit is set.
func (v Vector) Has(id int) bool { return v&(1<<uint(id)) != 0 }

// Empty reports whether no token bits remain; per §4.2 an instruction
// whose vector is empty may release its issue-queue entry once issued.
func (v Vector) Empty() bool { return v == 0 }

// Count returns the number of distinct parent tokens tracked.
func (v Vector) Count() int {
	n := 0
	for x := v; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// BusState is one of the four two-wire signal states of Table 2.
type BusState uint8

const (
	// BusIdle (00): no event for this token this cycle.
	BusIdle BusState = iota
	// BusKill (01): the token head was mis-scheduled; dependents clear
	// the ready bits of operands carrying this token.
	BusKill
	// BusComplete (10): the token head completed successfully; dependents
	// clear the token's bit and may release their issue entry when the
	// vector empties.
	BusComplete
	// BusReclaim (11): the token name is being reassigned; dependents
	// clear the bit, and the old head drops its token_ID/head fields.
	BusReclaim
)

// String names the bus state as in Table 2.
func (s BusState) String() string {
	switch s {
	case BusIdle:
		return "idle"
	case BusKill:
		return "kill"
	case BusComplete:
		return "complete"
	default:
		return "reclaim"
	}
}

// Allocator manages the fixed pool of token names. The allocation policy
// is the paper's: eagerly hand a token to any load if one is free, even
// at low confidence; when the pool is exhausted, steal the token of the
// lowest-confidence current holder if the new load's confidence is
// strictly higher (broadcasting reclaim so stale vector bits are
// cleared).
type Allocator struct {
	n       int
	holder  []int64             // holder[i] = seq of token i's head, -1 if free
	conf    []smpred.Confidence // confidence the holder was allocated at
	free    []int               // free token ids (LIFO)
	allocs  uint64
	steals  uint64
	refused uint64
}

// NewAllocator creates a pool of n tokens (1..MaxTokens).
func NewAllocator(n int) *Allocator {
	if n <= 0 || n > MaxTokens {
		panic(fmt.Sprintf("token: pool size %d out of range 1..%d", n, MaxTokens))
	}
	a := &Allocator{
		n:      n,
		holder: make([]int64, n),
		conf:   make([]smpred.Confidence, n),
		free:   make([]int, 0, n),
	}
	for i := n - 1; i >= 0; i-- {
		a.holder[i] = -1
		a.free = append(a.free, i)
	}
	return a
}

// Size returns the pool size.
func (a *Allocator) Size() int { return a.n }

// Allocate tries to give the load at seq a token. It returns the token
// id, whether a token was granted, and, when the grant stole an in-use
// token, the previous holder's sequence number (stolenFrom >= 0) so the
// pipeline can broadcast reclaim and strip the old head.
func (a *Allocator) Allocate(seq int64, conf smpred.Confidence) (id int, ok bool, stolenFrom int64) {
	if len(a.free) > 0 {
		id = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		a.holder[id] = seq
		a.conf[id] = conf
		a.allocs++
		return id, true, -1
	}
	// Pool exhausted: steal from the lowest-confidence holder if we
	// beat it strictly. High-confidence holders (2,3) are never
	// victims: they are the likely miss-heads the pool exists for, and
	// reclaiming one forfeits the selective recovery it was bought for.
	victim, victimConf := -1, smpred.MaxConfidence+1
	for i := 0; i < a.n; i++ {
		if a.conf[i] < victimConf {
			victim, victimConf = i, a.conf[i]
		}
	}
	if victim >= 0 && conf > victimConf && victimConf <= 1 {
		prev := a.holder[victim]
		a.holder[victim] = seq
		a.conf[victim] = conf
		a.allocs++
		a.steals++
		return victim, true, prev
	}
	a.refused++
	return 0, false, -1
}

// Release returns token id to the pool when its head completes (or is
// squashed). Releasing a free token is a programming error and panics.
func (a *Allocator) Release(id int) {
	if id < 0 || id >= a.n || a.holder[id] < 0 {
		panic(fmt.Sprintf("token: release of invalid or free token %d", id))
	}
	a.holder[id] = -1
	a.conf[id] = 0
	a.free = append(a.free, id)
}

// Holder returns the sequence number holding token id, or -1.
func (a *Allocator) Holder(id int) int64 {
	if id < 0 || id >= a.n {
		return -1
	}
	return a.holder[id]
}

// InUse returns how many tokens are currently held.
func (a *Allocator) InUse() int { return a.n - len(a.free) }

// Stats returns allocation, steal and refusal counts.
func (a *Allocator) Stats() (allocs, steals, refused uint64) {
	return a.allocs, a.steals, a.refused
}

// Reset returns every token to the pool and clears statistics.
func (a *Allocator) Reset() {
	a.free = a.free[:0]
	for i := a.n - 1; i >= 0; i-- {
		a.holder[i] = -1
		a.conf[i] = 0
		a.free = append(a.free, i)
	}
	a.allocs, a.steals, a.refused = 0, 0, 0
}
