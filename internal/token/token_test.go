package token

import (
	"testing"
	"testing/quick"

	"repro/internal/smpred"
)

func TestVectorOps(t *testing.T) {
	var v Vector
	if !v.Empty() {
		t.Fatal("zero vector must be empty")
	}
	v = v.With(3).With(7)
	if !v.Has(3) || !v.Has(7) || v.Has(0) {
		t.Fatal("With/Has broken")
	}
	if v.Count() != 2 {
		t.Fatalf("Count = %d, want 2", v.Count())
	}
	v = v.Without(3)
	if v.Has(3) || !v.Has(7) {
		t.Fatal("Without broken")
	}
	other := Vector(0).With(1)
	m := v.Merge(other)
	if !m.Has(1) || !m.Has(7) || m.Count() != 2 {
		t.Fatal("Merge broken")
	}
}

// Property: merge is commutative, associative, idempotent, and never
// drops a parent token — the algebra that makes program-order rename
// propagation correct.
func TestQuickVectorMergeAlgebra(t *testing.T) {
	f := func(a, b, c uint64) bool {
		va, vb, vc := Vector(a), Vector(b), Vector(c)
		if va.Merge(vb) != vb.Merge(va) {
			return false
		}
		if va.Merge(vb).Merge(vc) != va.Merge(vb.Merge(vc)) {
			return false
		}
		if va.Merge(va) != va {
			return false
		}
		m := va.Merge(vb)
		return m&va == va && m&vb == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusStateStrings(t *testing.T) {
	want := map[BusState]string{
		BusIdle: "idle", BusKill: "kill", BusComplete: "complete", BusReclaim: "reclaim",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("BusState(%d) = %q, want %q", s, s.String(), name)
		}
	}
}

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(2)
	id1, ok, stolen := a.Allocate(100, 0)
	if !ok || stolen != -1 {
		t.Fatal("first allocation failed")
	}
	id2, ok, _ := a.Allocate(101, 1)
	if !ok || id2 == id1 {
		t.Fatal("second allocation failed or duplicated id")
	}
	if a.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", a.InUse())
	}
	if a.Holder(id1) != 100 || a.Holder(id2) != 101 {
		t.Fatal("holder bookkeeping wrong")
	}
}

func TestAllocatorStealPolicy(t *testing.T) {
	a := NewAllocator(1)
	id, ok, _ := a.Allocate(1, 1)
	if !ok {
		t.Fatal("allocation failed")
	}
	// Equal confidence must NOT steal (strictly higher required).
	if _, ok, _ := a.Allocate(2, 1); ok {
		t.Fatal("equal-confidence steal should be refused")
	}
	// Higher confidence steals and reports the victim.
	id2, ok, stolen := a.Allocate(3, 3)
	if !ok || id2 != id || stolen != 1 {
		t.Fatalf("steal = (id=%d ok=%v stolen=%d), want (id=%d, true, 1)", id2, ok, stolen, id)
	}
	if a.Holder(id) != 3 {
		t.Fatal("holder not updated after steal")
	}
	_, steals, refused := a.Stats()
	if steals != 1 || refused != 1 {
		t.Fatalf("stats = steals %d refused %d, want 1,1", steals, refused)
	}
}

func TestAllocatorRelease(t *testing.T) {
	a := NewAllocator(1)
	id, _, _ := a.Allocate(5, 2)
	a.Release(id)
	if a.InUse() != 0 {
		t.Fatal("release did not free token")
	}
	if a.Holder(id) != -1 {
		t.Fatal("holder not cleared")
	}
	// Double release panics.
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	a.Release(id)
}

func TestAllocatorLowConfidenceEagerGrant(t *testing.T) {
	// The paper's policy allocates eagerly even at confidence 0 while
	// tokens are free.
	a := NewAllocator(4)
	for i := int64(0); i < 4; i++ {
		if _, ok, _ := a.Allocate(i, 0); !ok {
			t.Fatalf("eager allocation %d refused", i)
		}
	}
}

func TestAllocatorReset(t *testing.T) {
	a := NewAllocator(3)
	a.Allocate(1, 1)
	a.Allocate(2, 2)
	a.Reset()
	if a.InUse() != 0 {
		t.Fatal("reset did not free tokens")
	}
	if allocs, _, _ := a.Stats(); allocs != 0 {
		t.Fatal("reset did not clear stats")
	}
	// All tokens allocatable again with unique ids.
	seen := map[int]bool{}
	for i := int64(0); i < 3; i++ {
		id, ok, _ := a.Allocate(i, 0)
		if !ok || seen[id] {
			t.Fatal("tokens not reusable after reset")
		}
		seen[id] = true
	}
}

func TestNewAllocatorBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxTokens + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAllocator(%d) did not panic", n)
				}
			}()
			NewAllocator(n)
		}()
	}
}

// Property: the allocator never hands out two live tokens with the same
// id, and InUse never exceeds the pool size, across arbitrary
// allocate/release interleavings.
func TestQuickAllocatorUniqueness(t *testing.T) {
	type op struct {
		Alloc bool
		Conf  uint8
	}
	f := func(ops []op) bool {
		a := NewAllocator(8)
		live := map[int]int64{} // id -> seq
		seq := int64(0)
		for _, o := range ops {
			if o.Alloc {
				seq++
				id, ok, stolen := a.Allocate(seq, smpred.Confidence(o.Conf)%4)
				if !ok {
					continue
				}
				if prev, exists := live[id]; exists {
					// Only legal if this was a steal of that holder.
					if stolen != prev {
						return false
					}
				}
				live[id] = seq
			} else {
				for id := range live {
					a.Release(id)
					delete(live, id)
					break
				}
			}
			if a.InUse() != len(live) || a.InUse() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
