package prefetch

import (
	"encoding/json"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	names := KindNames()
	if len(names) != 2 {
		t.Fatalf("KindNames() = %v", names)
	}
	for i, n := range names {
		k, err := ParseKind(n)
		if err != nil || k != Kind(i) {
			t.Errorf("ParseKind(%q) = %v, %v", n, k, err)
		}
		if Kind(i).String() != n {
			t.Errorf("Kind(%d).String() = %q, want %q", i, Kind(i), n)
		}
	}
	if k, err := ParseKind("STRIDE"); err != nil || k != KindStride {
		t.Errorf("ParseKind is not case-insensitive: %v, %v", k, err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestNewOffIsNil(t *testing.T) {
	if p := New(Config{}); p != nil {
		t.Fatal("New(KindOff) should return nil")
	}
}

func TestNewFillsDefaults(t *testing.T) {
	p := New(Config{Kind: KindStride})
	if got, want := p.Config(), DefaultStride(); got != want {
		t.Fatalf("default-filled config = %+v, want %+v", got, want)
	}
}

func TestNewRejectsNonPowerOfTwo(t *testing.T) {
	for _, cfg := range []Config{
		{Kind: KindStride, Entries: 100},
		{Kind: KindStride, MarkEntries: 7},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// observeAll trains p at one pc over the address sequence and returns
// every fired prefetch address.
func observeAll(p *Prefetcher, pc uint64, addrs []uint64) []uint64 {
	var fired []uint64
	for _, a := range addrs {
		if pa, ok := p.Observe(pc, a); ok {
			fired = append(fired, pa)
		}
	}
	return fired
}

func TestStrideLearnsAndFires(t *testing.T) {
	p := New(Config{Kind: KindStride}) // MinConfidence 2, Distance 2
	// Allocation, stride capture, then two agreeing deltas to reach the
	// firing confidence: the fourth observation is the first prefetch.
	addrs := []uint64{0x1000, 0x1040, 0x1080, 0x10c0, 0x1100}
	fired := observeAll(p, 0x400100, addrs)
	if len(fired) != 2 {
		t.Fatalf("fired %d prefetches (%#x), want 2", len(fired), fired)
	}
	if fired[0] != 0x10c0+2*0x40 {
		t.Errorf("first prefetch %#x, want %#x", fired[0], 0x10c0+2*0x40)
	}
	obs, fires := p.Stats()
	if obs != 5 || fires != 2 {
		t.Errorf("Stats() = %d, %d, want 5, 2", obs, fires)
	}
}

func TestNegativeStrideFiresBelow(t *testing.T) {
	p := New(Config{Kind: KindStride})
	fired := observeAll(p, 0x400200, []uint64{0x2000, 0x1fc0, 0x1f80, 0x1f40})
	if len(fired) != 1 || fired[0] != 0x1f40-2*0x40 {
		t.Fatalf("descending stream fired %#x, want [%#x]", fired, 0x1f40-2*0x40)
	}
}

func TestStrideRetrainsAfterDisagreement(t *testing.T) {
	p := New(Config{Kind: KindStride})
	pc := uint64(0x400300)
	observeAll(p, pc, []uint64{0x1000, 0x1040, 0x1080, 0x10c0}) // confident at +64
	// A new +8 pattern: confidence must drain before the stride
	// retrains, and the prefetcher must go quiet meanwhile.
	quiet := observeAll(p, pc, []uint64{0x5000, 0x5008, 0x5010})
	if len(quiet) != 0 {
		t.Fatalf("prefetcher fired %#x while retraining", quiet)
	}
	fired := observeAll(p, pc, []uint64{0x5018, 0x5020, 0x5028, 0x5030})
	if len(fired) == 0 || fired[len(fired)-1] != 0x5030+2*8 {
		t.Fatalf("retrained stream fired %#x, want tail %#x", fired, 0x5030+2*8)
	}
}

func TestWrapAndZeroRejected(t *testing.T) {
	p := New(Config{Kind: KindStride})
	// Descending toward zero: the prefetch address reaches exactly 0,
	// then wraps below it; both must be suppressed.
	pc := uint64(0x400400)
	var addrs []uint64
	for a := uint64(0x280); ; a -= 0x40 {
		addrs = append(addrs, a)
		if a == 0x40 {
			break
		}
	}
	for _, pa := range observeAll(p, pc, addrs) {
		if pa == 0 || pa >= 0x280 {
			t.Errorf("descending stream fired invalid address %#x", pa)
		}
	}
	// Ascending toward the top of the address space: a wrapped-past-max
	// prefetch must be suppressed.
	pc2 := uint64(0x400500)
	top := ^uint64(0) - 0x1ff
	var up []uint64
	for i := uint64(0); i < 8; i++ {
		up = append(up, top+i*0x40)
	}
	for _, pa := range observeAll(p, pc2, up) {
		if pa <= top {
			t.Errorf("ascending stream fired wrapped address %#x", pa)
		}
	}
}

func TestTagConflictEvicts(t *testing.T) {
	cfg := DefaultStride()
	p := New(cfg)
	word := uint64(5)
	pcA := word << 2
	pcB := (word + uint64(cfg.Entries)) << 2                     // same index, different tag
	observeAll(p, pcA, []uint64{0x1000, 0x1040, 0x1080, 0x10c0}) // confident
	p.Observe(pcB, 0x9000)                                       // evicts A
	// A must retrain from scratch: no fire on its next three accesses.
	if fired := observeAll(p, pcA, []uint64{0x1100, 0x1140, 0x1180}); len(fired) != 0 {
		t.Fatalf("evicted entry fired %#x without retraining", fired)
	}
}

func TestMarkAccounting(t *testing.T) {
	p := New(Config{Kind: KindStride})
	p.MarkIssued(0x40)
	if !p.DemandUse(0x40) {
		t.Error("marked line not reported as prefetched")
	}
	if p.DemandUse(0x40) {
		t.Error("mark consumed twice")
	}
	if p.DemandUse(0x80) {
		t.Error("unmarked line reported as prefetched")
	}
	// A conflicting mark overwrites the older one.
	la := uint64(0x100)
	p.MarkIssued(la)
	p.MarkIssued(la + uint64(p.cfg.MarkEntries))
	if p.DemandUse(la) {
		t.Error("overwritten mark survived")
	}
	if !p.DemandUse(la + uint64(p.cfg.MarkEntries)) {
		t.Error("overwriting mark missing")
	}
}

// TestInertMinConfidence pins the zero-coverage configuration the
// metamorphic suite leans on: a firing threshold above the confidence
// saturation point can never be reached, so the prefetcher observes
// but never fires.
func TestInertMinConfidence(t *testing.T) {
	cfg := DefaultStride()
	cfg.MinConfidence = MaxConfidence + 1
	p := New(cfg)
	var addrs []uint64
	for i := uint64(0); i < 200; i++ {
		addrs = append(addrs, 0x1000+i*0x40)
	}
	if fired := observeAll(p, 0x400600, addrs); len(fired) != 0 {
		t.Fatalf("inert prefetcher fired %d times", len(fired))
	}
	if _, fires := p.Stats(); fires != 0 {
		t.Fatalf("inert prefetcher counted %d fires", fires)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := New(Config{Kind: KindStride})
	observeAll(p, 0x400700, []uint64{0x1000, 0x1040, 0x1080, 0x10c0})
	p.MarkIssued(0x40)
	p.Reset()
	if obs, fires := p.Stats(); obs != 0 || fires != 0 {
		t.Fatalf("Stats() after Reset = %d, %d", obs, fires)
	}
	if p.DemandUse(0x40) {
		t.Error("mark survived Reset")
	}
	// The stride table must retrain from scratch.
	if fired := observeAll(p, 0x400700, []uint64{0x1100, 0x1140, 0x1180}); len(fired) != 0 {
		t.Fatalf("table state survived Reset: fired %#x", fired)
	}
}

func TestStateRoundTrip(t *testing.T) {
	p := New(Config{Kind: KindStride})
	observeAll(p, 0x400800, []uint64{0x1000, 0x1040, 0x1080, 0x10c0})
	p.MarkIssued(0x40)
	blob, err := json.Marshal(p.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	q := New(Config{Kind: KindStride})
	if err := q.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// The restored prefetcher continues exactly where the original was:
	// same next fire, same mark bookkeeping.
	pa, ok := p.Observe(0x400800, 0x1100)
	qa, qok := q.Observe(0x400800, 0x1100)
	if pa != qa || ok != qok {
		t.Fatalf("restored prefetcher diverged: (%#x,%v) vs (%#x,%v)", pa, ok, qa, qok)
	}
	if !q.DemandUse(0x40) {
		t.Error("mark lost in round trip")
	}
}

func TestRestoreStateRejectsShapeMismatch(t *testing.T) {
	small := DefaultStride()
	small.Entries = 64
	st := New(small).State()
	if err := New(DefaultStride()).RestoreState(st); err == nil {
		t.Fatal("RestoreState accepted a state of the wrong geometry")
	}
}
