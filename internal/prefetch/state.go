package prefetch

import "fmt"

// EntryState is one stride-table entry's serialized form.
type EntryState struct {
	Tag    uint64 `json:"tag"`
	Valid  bool   `json:"valid,omitempty"`
	Last   uint64 `json:"last"`
	Stride int64  `json:"stride"`
	Conf   uint8  `json:"conf"`
}

// MarkState is one accounting mark's serialized form.
type MarkState struct {
	LA    uint64 `json:"la"`
	Valid bool   `json:"valid,omitempty"`
}

// State is a Prefetcher's serializable contents. Geometry is not part
// of the state — a checkpoint pairs it with the Config that rebuilds
// the same shape.
type State struct {
	Entries []EntryState `json:"entries"`
	Marks   []MarkState  `json:"marks"`

	Observes uint64 `json:"observes"`
	Fires    uint64 `json:"fires"`
}

// State snapshots the prefetcher for a checkpoint.
func (p *Prefetcher) State() State {
	st := State{
		Entries:  make([]EntryState, len(p.table)),
		Marks:    make([]MarkState, len(p.marks)),
		Observes: p.observes,
		Fires:    p.fires,
	}
	for i, e := range p.table {
		st.Entries[i] = EntryState{
			Tag: e.tag, Valid: e.valid, Last: e.last, Stride: e.stride, Conf: e.conf,
		}
	}
	for i, m := range p.marks {
		st.Marks[i] = MarkState{LA: m.la, Valid: m.valid}
	}
	return st
}

// RestoreState loads a snapshot taken from a prefetcher of identical
// configuration; a shape mismatch is an error.
func (p *Prefetcher) RestoreState(st State) error {
	if len(st.Entries) != len(p.table) || len(st.Marks) != len(p.marks) {
		return fmt.Errorf("prefetch: state tables %d/%d do not match configuration %d/%d",
			len(st.Entries), len(st.Marks), len(p.table), len(p.marks))
	}
	for i, e := range st.Entries {
		p.table[i] = entry{
			tag: e.Tag, valid: e.Valid, last: e.Last, stride: e.Stride, conf: e.Conf,
		}
	}
	for i, m := range st.Marks {
		p.marks[i] = mark{la: m.LA, valid: m.Valid}
	}
	p.observes, p.fires = st.Observes, st.Fires
	return nil
}
