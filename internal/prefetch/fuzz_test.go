package prefetch

import (
	"bytes"
	"encoding/json"
	"testing"
)

// refEntry mirrors one stride-table slot in the reference model.
type refEntry struct {
	tag    uint64
	last   uint64
	stride int64
	conf   int
}

// refModel is a deliberately naive re-implementation of the stride
// prefetcher's specification: maps instead of packed slices, mod/div
// arithmetic instead of masks and shifts. It exists only to disagree
// with the real implementation if either strays from the spec.
type refModel struct {
	cfg   Config
	table map[int]*refEntry
	marks map[int]uint64
}

func newRef(cfg Config) *refModel {
	return &refModel{cfg: cfg, table: map[int]*refEntry{}, marks: map[int]uint64{}}
}

func (r *refModel) observe(pc, addr uint64) (uint64, bool) {
	word := pc >> 2
	idx := int(word % uint64(r.cfg.Entries))
	tag := (word / uint64(r.cfg.Entries)) % (1 << uint(r.cfg.TagBits))
	e, ok := r.table[idx]
	if !ok || e.tag != tag {
		r.table[idx] = &refEntry{tag: tag, last: addr}
		return 0, false
	}
	d := int64(addr - e.last)
	switch {
	case d == e.stride && d != 0:
		if e.conf < MaxConfidence {
			e.conf++
		}
	case e.conf > 0:
		e.conf--
	default:
		e.stride = d
	}
	e.last = addr
	if e.conf < r.cfg.MinConfidence || e.stride == 0 {
		return 0, false
	}
	pa := addr + uint64(e.stride*int64(r.cfg.Distance))
	if pa == 0 || (e.stride > 0) != (pa > addr) {
		return 0, false
	}
	return pa, true
}

func (r *refModel) markIssued(la uint64) {
	r.marks[int(la%uint64(r.cfg.MarkEntries))] = la
}

func (r *refModel) demandUse(la uint64) bool {
	k := int(la % uint64(r.cfg.MarkEntries))
	if got, ok := r.marks[k]; ok && got == la {
		delete(r.marks, k)
		return true
	}
	return false
}

// FuzzStridePrefetcher holds the stride prefetcher to three properties
// over arbitrary operation streams and geometries:
//
//   - every Observe/MarkIssued/DemandUse outcome matches the naive
//     reference model exactly (tables, tags, confidence, wrap checks);
//   - a fired prefetch address is never zero and never the demand
//     address itself — invalid fills cannot reach the cache hierarchy;
//   - a State snapshot taken mid-stream, serialized through JSON and
//     restored into a fresh prefetcher continues bit-identically: same
//     outcomes on the remaining stream, byte-identical final State.
func FuzzStridePrefetcher(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(1), uint8(1), uint16(4),
		[]byte{0, 1, 8, 0, 1, 8, 0, 1, 8, 0, 1, 8, 2, 1, 8, 3, 1, 8})
	f.Add(uint8(2), uint8(3), uint8(2), uint8(0), uint16(0),
		[]byte{0, 7, 0xf8, 0, 7, 0xf8, 0, 7, 0xf8, 1, 7, 31})
	f.Add(uint8(1), uint8(7), uint8(3), uint8(3), uint16(9),
		[]byte{0, 1, 1, 2, 2, 2, 3, 2, 2, 0, 1, 1, 0, 1, 1, 0, 1, 1})
	f.Fuzz(func(t *testing.T, entLog, tagBits, minConf, dist uint8, split uint16, data []byte) {
		cfg := Config{
			Kind:          KindStride,
			Entries:       1 << (3 + entLog%4),
			TagBits:       4 + int(tagBits%8),
			MinConfidence: 1 + int(minConf%4), // 4 exercises the inert corner
			Distance:      1 + int(dist%4),
			MarkEntries:   1 << (3 + entLog%3),
		}
		p := New(cfg)
		ref := newRef(cfg)

		var q *Prefetcher // restored twin, live after the snapshot point
		nOps := len(data) / 3
		splitAt := 0
		if nOps > 0 {
			splitAt = int(split) % nOps
		}
		var addrs [256]uint64
		for i := range addrs {
			addrs[i] = uint64(i+1) << 9
		}
		for op := 0; op < nOps; op++ {
			if op == splitAt {
				blob, err := json.Marshal(p.State())
				if err != nil {
					t.Fatal(err)
				}
				var st State
				if err := json.Unmarshal(blob, &st); err != nil {
					t.Fatal(err)
				}
				q = New(cfg)
				if err := q.RestoreState(st); err != nil {
					t.Fatalf("restore mid-stream: %v", err)
				}
			}
			kind, pcSel, dSel := data[op*3]%4, data[op*3+1], int8(data[op*3+2])
			switch kind {
			case 0: // strided access at this PC
				addrs[pcSel] += uint64(int64(dSel)) * 8
				pc, addr := uint64(pcSel)<<2, addrs[pcSel]
				pa, ok := p.Observe(pc, addr)
				ra, rok := ref.observe(pc, addr)
				if pa != ra || ok != rok {
					t.Fatalf("op %d: Observe(%#x, %#x) = (%#x,%v), reference (%#x,%v)",
						op, pc, addr, pa, ok, ra, rok)
				}
				if ok && (pa == 0 || pa == addr) {
					t.Fatalf("op %d: fired invalid prefetch address %#x for demand %#x", op, pa, addr)
				}
				if q != nil {
					qa, qok := q.Observe(pc, addr)
					if qa != pa || qok != ok {
						t.Fatalf("op %d: restored twin Observe = (%#x,%v), original (%#x,%v)",
							op, qa, qok, pa, ok)
					}
				}
			case 1: // absolute jump, breaking the stride
				addrs[pcSel] = uint64(pcSel)<<12 | uint64(dSel)&0xff
			case 2:
				la := uint64(pcSel)<<6 | uint64(uint8(dSel))
				p.MarkIssued(la)
				ref.markIssued(la)
				if q != nil {
					q.MarkIssued(la)
				}
			default:
				la := uint64(pcSel)<<6 | uint64(uint8(dSel))
				got, want := p.DemandUse(la), ref.demandUse(la)
				if got != want {
					t.Fatalf("op %d: DemandUse(%#x) = %v, reference %v", op, la, got, want)
				}
				if q != nil {
					if qgot := q.DemandUse(la); qgot != got {
						t.Fatalf("op %d: restored twin DemandUse = %v, original %v", op, qgot, got)
					}
				}
			}
		}
		if q != nil {
			pb, err := json.Marshal(p.State())
			if err != nil {
				t.Fatal(err)
			}
			qb, err := json.Marshal(q.State())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb, qb) {
				t.Fatalf("final states diverged:\n  orig    %s\n  restored %s", pb, qb)
			}
		}
	})
}
