// Package prefetch implements a PC-indexed delta-pattern stride
// prefetcher feeding the data side of the internal/cache hierarchy.
// The paper's machine has no prefetching; this is frontier equipment
// for the EXPERIMENTS.md question of whether the replay-scheme
// conclusions survive a frontend that converts cache misses into hits
// or in-flight residuals.
//
// The design mirrors internal/smpred's tagged direct-mapped table
// idiom: each entry tracks one load PC's last address, current stride
// and a 2-bit confidence. When two consecutive deltas agree the
// confidence rises; at or above the configured threshold the
// prefetcher requests the line Distance strides ahead. Outcome
// accounting (issued/useful/late) lives on core.Stats so warmup
// subtraction and the stats-completeness lint see it; this package
// only reports per-event facts to the core.
package prefetch

import (
	"fmt"
	"strings"
)

// Kind selects the prefetcher organisation. The zero value is off, so
// zero-valued Configs keep the paper's prefetch-free machine.
type Kind int

const (
	// KindOff disables prefetching.
	KindOff Kind = iota
	// KindStride is the PC-indexed delta-pattern stride prefetcher.
	KindStride
)

// kindNames is the canonical flag spelling per kind, indexed by Kind.
var kindNames = []string{"off", "stride"}

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	if int(k) < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindNames lists the parseable prefetcher kinds in declaration order.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames)
	return out
}

// ParseKind resolves a flag spelling (case-insensitive) to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if strings.EqualFold(s, n) {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown prefetcher %q (have %s)",
		s, strings.Join(kindNames, ", "))
}

// MaxConfidence is the saturation value of the 2-bit stride counters.
const MaxConfidence = 3

// Config sizes the prefetcher. All fields are plain ints so the struct
// stays comparable: pooled machines test substrate reuse with == and
// checkpoints demand exact configuration equality.
type Config struct {
	// Kind selects the organisation; KindOff builds no prefetcher.
	Kind Kind
	// Entries is the stride-table entry count; a power of two.
	Entries int
	// TagBits is how many PC bits above the index are kept as a tag.
	TagBits int
	// MinConfidence is the confidence (0..3) at which the prefetcher
	// fires. A value above MaxConfidence can never be reached, which
	// makes the prefetcher provably inert — the zero-coverage
	// configuration the metamorphic suite pins against prefetch-off.
	MinConfidence int
	// Distance is how many strides ahead of the demand address the
	// prefetch lands.
	Distance int
	// MarkEntries sizes the direct-mapped table of recently prefetched
	// line addresses used for useful/late accounting; a power of two.
	MarkEntries int
}

// DefaultStride returns the stride prefetcher's default geometry:
// a 256-entry 16-bit-tagged stride table firing at confidence 2,
// two strides ahead, with 512 accounting marks.
func DefaultStride() Config {
	return Config{
		Kind:          KindStride,
		Entries:       256,
		TagBits:       16,
		MinConfidence: 2,
		Distance:      2,
		MarkEntries:   512,
	}
}

// entry is one stride-table slot.
type entry struct {
	tag    uint64
	valid  bool
	last   uint64
	stride int64
	conf   uint8
}

// mark is one accounting slot: a line address the prefetcher brought
// in that no demand access has used yet.
type mark struct {
	la    uint64
	valid bool
}

// Prefetcher is the stride table plus outcome marks. The zero value is
// unusable; construct with New.
type Prefetcher struct {
	cfg      Config
	table    []entry
	marks    []mark
	idxMask  uint64
	tagMask  uint64
	markMask uint64

	observes uint64
	fires    uint64
}

// New builds a prefetcher; zero config fields take DefaultStride
// values. It returns nil for KindOff — callers gate on the nil, which
// keeps the off configuration bit-free in the core. It panics if the
// table sizes are not powers of two (static configuration error).
func New(cfg Config) *Prefetcher {
	if cfg.Kind == KindOff {
		return nil
	}
	def := DefaultStride()
	if cfg.Entries == 0 {
		cfg.Entries = def.Entries
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = def.TagBits
	}
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = def.MinConfidence
	}
	if cfg.Distance == 0 {
		cfg.Distance = def.Distance
	}
	if cfg.MarkEntries == 0 {
		cfg.MarkEntries = def.MarkEntries
	}
	if cfg.Entries&(cfg.Entries-1) != 0 || cfg.MarkEntries&(cfg.MarkEntries-1) != 0 {
		panic("prefetch: table sizes must be powers of two")
	}
	return &Prefetcher{
		cfg:      cfg,
		table:    make([]entry, cfg.Entries),
		marks:    make([]mark, cfg.MarkEntries),
		idxMask:  uint64(cfg.Entries - 1),
		tagMask:  (1 << uint(cfg.TagBits)) - 1,
		markMask: uint64(cfg.MarkEntries - 1),
	}
}

// Config returns the (default-filled) configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

func (p *Prefetcher) slot(pc uint64) (int, uint64) {
	word := pc >> 2
	return int(word & p.idxMask), (word >> uint(len64(p.idxMask))) & p.tagMask
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Observe trains the stride table with an executed load and reports
// the address to prefetch, if any. A fresh PC allocates (evicting a
// tag-conflicting occupant); two agreeing nonzero deltas in a row earn
// confidence, a disagreeing delta spends it and — once confidence is
// exhausted — retrains the stride. The returned address is always the
// demand address displaced by stride*Distance and never zero or
// wrapped around the address space, so a fired prefetch is always a
// plausible nearby line.
func (p *Prefetcher) Observe(pc, addr uint64) (uint64, bool) {
	p.observes++
	i, tag := p.slot(pc)
	e := &p.table[i]
	if !e.valid || e.tag != tag {
		*e = entry{tag: tag, valid: true, last: addr}
		return 0, false
	}
	d := int64(addr - e.last)
	if d == e.stride && d != 0 {
		if e.conf < MaxConfidence {
			e.conf++
		}
	} else if e.conf > 0 {
		e.conf--
	} else {
		e.stride = d
	}
	e.last = addr
	if int(e.conf) < p.cfg.MinConfidence || e.stride == 0 {
		return 0, false
	}
	pa := addr + uint64(e.stride*int64(p.cfg.Distance))
	if pa == 0 || (e.stride > 0) != (pa > addr) {
		return 0, false // wrapped past either end of the address space
	}
	p.fires++
	return pa, true
}

// MarkIssued records a prefetched line address for useful/late
// accounting, overwriting any conflicting older mark.
func (p *Prefetcher) MarkIssued(la uint64) {
	p.marks[la&p.markMask] = mark{la: la, valid: true}
}

// DemandUse consumes the mark for a demand-accessed line, reporting
// whether that line was brought in by a prefetch not yet used. The
// caller folds the answer (with the access's hierarchy level) into
// useful/late statistics.
func (p *Prefetcher) DemandUse(la uint64) bool {
	m := &p.marks[la&p.markMask]
	if m.valid && m.la == la {
		m.valid = false
		return true
	}
	return false
}

// Stats returns observed-load and fired-prefetch counts.
func (p *Prefetcher) Stats() (observes, fires uint64) {
	return p.observes, p.fires
}

// Reset clears tables and statistics, keeping allocations, so a pooled
// machine can reuse the prefetcher across runs.
func (p *Prefetcher) Reset() {
	for i := range p.table {
		p.table[i] = entry{}
	}
	for i := range p.marks {
		p.marks[i] = mark{}
	}
	p.observes, p.fires = 0, 0
}
