// Package analytic implements the paper's closed-form/graph-model
// results that need no simulation: Table 1 (the maximum number of parent
// loads an instruction must track, as a function of load ports and
// propagation distance) and the §3.5/§5.5 wire-count models comparing
// the hardware cost of position-based and token-based replay.
package analytic

// Table 1's graph model, reconstructed from the paper's assumptions
// (§2.3): 1) only loads miss, 2) load latency > 1 (we use the minimum,
// 2 cycles), 3) fan-in of two source operands per instruction, 4) load
// issue bandwidth does not exceed single-cycle-instruction bandwidth
// (so ALU bandwidth never binds before the load ports do).
//
// Model: the tracking instruction issues at cycle 0. The speculative
// wavefront propagates back-to-back — a producer issued at cycle c wakes
// consumers that issue *exactly* at c+1 (single-cycle ops) or c+2
// (loads); the worst case for tracking is the maximally fast wavefront,
// so no slack is allowed on dependence edges. A parent load issued at
// cycle c is still unverified (hence must be tracked) iff c falls in a
// window of `dist` cycles ending two cycles before issue:
// c in [-(dist+1), -2]. Every instruction has up to two source
// operands (assumption 3); in the worst-case tree a load's own sources
// are single-cycle producers (its address computation), so load slots
// host only single-cycle ops while non-load slots host either kind. At
// most `ports` loads issue per cycle (assumption 4 keeps single-cycle
// bandwidth from binding first). MaxParentLoads maximizes the number of
// distinct ancestor loads in the window over all such dependence trees.
//
// The maximization is a dynamic program over "parent slots". A node
// placed at cycle c opens two slots: for a non-load they are usable by
// a single-cycle producer at exactly c-1 or by a load at exactly c-2;
// for a load, only by a single-cycle producer at c-1. Walking cycles
// backward, the state is (uA, uL, vA): uA/uL = unfilled slots of
// cycle-(c+1) non-load/load nodes (single-cycle-usable now; uA becomes
// load-usable next cycle, uL dies), vA = unfilled non-load slots of
// cycle-(c+2) nodes (load-usable now, then dead).

type dpKey struct {
	c          int
	uA, uL, vA int
}

type dpCtx struct {
	ports int
	cMin  int
	memo  map[dpKey]int
}

// MaxParentLoads returns the Table 1 value for the given number of load
// ports and propagation distance. It returns 0 for non-positive
// arguments.
func MaxParentLoads(ports, dist int) int {
	if ports <= 0 || dist <= 0 {
		return 0
	}
	ctx := &dpCtx{ports: ports, cMin: -(dist + 1), memo: make(map[dpKey]int)}
	// The consumer at cycle 0 contributes two non-load slots:
	// single-cycle-usable at -1, load-usable at -2.
	return ctx.best(-1, 2, 0, 0)
}

// best returns the maximum loads placeable at cycles <= c, where uA+uL
// slots accept a single-cycle op at c and vA slots accept a load at c.
func (x *dpCtx) best(c, uA, uL, vA int) int {
	if c < x.cMin {
		return 0
	}
	// More slots than the remaining port-cycles could ever consume are
	// indistinguishable; cap the state to keep the memo small.
	cap := 2*x.ports*(c-x.cMin+1) + 2
	if uA > cap {
		uA = cap
	}
	if uL > cap {
		uL = cap
	}
	if vA > cap {
		vA = cap
	}
	k := dpKey{c, uA, uL, vA}
	if r, ok := x.memo[k]; ok {
		return r
	}
	maxL := 0
	if c <= -2 {
		maxL = min(x.ports, vA)
	}
	// Single-cycle ops beyond what future loads could hang off are
	// useless.
	maxUseful := x.ports * (c - x.cMin + 1)
	best := 0
	for l := 0; l <= maxL; l++ {
		maxA := min(uA+uL, maxUseful)
		for a := 0; a <= maxA; a++ {
			// Consume load-node slots first: they die next cycle while
			// non-load slots could still feed a load. This greedy split
			// weakly dominates any other.
			fromL := min(a, uL)
			fromA := a - fromL
			r := l + x.best(c-1, 2*a, 2*l, uA-fromA)
			if r > best {
				best = r
			}
		}
	}
	x.memo[k] = best
	return best
}

// Table1Ports are the port counts of the paper's Table 1 columns.
var Table1Ports = []int{1, 2, 4, 8, 16, 32}

// Table1Distances are the propagation distances of the paper's rows.
var Table1Distances = []int{1, 2, 3, 4, 5, 6, 7}

// Table1Paper holds the values printed in the paper, indexed
// [distance-1][port column]. The reconstruction above reproduces 31 of
// the 42 cells exactly (all of ports <= 2, all of distance <= 3, and
// the fan-in-saturated cells); the remainder — the transition region
// where the port limit starts to bind — differs by at most p/4. The
// paper calls its own generating equation "complex" and does not give
// it; see EXPERIMENTS.md for the full model-vs-paper comparison.
var Table1Paper = [7][6]int{
	{1, 2, 2, 2, 2, 2},
	{2, 3, 4, 4, 4, 4},
	{3, 4, 5, 8, 8, 8},
	{4, 6, 8, 12, 16, 16},
	{5, 8, 12, 16, 24, 32},
	{6, 10, 16, 24, 32, 48},
	{7, 12, 20, 32, 48, 80},
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
