package analytic

// Wire-count models from §3.5 and §5.5: the scheduler-visible hardware
// cost of position-based versus token-based selective replay. These are
// the paper's scalability argument in closed form.

// DependenceMatrixBits returns the size of one position-based dependence
// matrix: one column per memory-pipeline issue slot, one row per pipe
// stage between dispatch and completion (the propagation distance).
func DependenceMatrixBits(memPorts, propagationDistance int) int {
	return memPorts * propagationDistance
}

// PosSelDependenceBusWires returns the number of wires needed to carry
// dependence matrices alongside wakeup tag broadcasts: one matrix per
// wakeup bus, one bus per issue slot. The paper's §3.5 numbers: 48 at
// 4-wide (2 ports) and 192 at 8-wide (4 ports), with propagation
// distance 6.
func PosSelDependenceBusWires(width, memPorts, propagationDistance int) int {
	return width * DependenceMatrixBits(memPorts, propagationDistance)
}

// PosSelKillBusWires returns the kill-bus width for position-based
// replay: schedulers monitor only the matrix bottom row, one wire per
// memory issue slot.
func PosSelKillBusWires(memPorts int) int {
	return memPorts
}

// PosSelTotalReplayWires is the total extra wiring position-based replay
// adds to the scheduling logic; §5.5 quotes 196 for the 8-wide machine
// (192 dependence-bus wires + 4 kill wires).
func PosSelTotalReplayWires(width, memPorts, propagationDistance int) int {
	return PosSelDependenceBusWires(width, memPorts, propagationDistance) +
		PosSelKillBusWires(memPorts)
}

// TkSelTotalReplayWires is token-based replay's scheduler-visible
// wiring: a two-wire kill bus per token (Table 2's four signal states).
// §5.5 quotes 32 for the 8-wide machine's 16 tokens. Crucially this is
// a function of the token count only, not of machine width or depth.
func TkSelTotalReplayWires(tokens int) int {
	return 2 * tokens
}

// IDSelVectorBits returns the per-instruction dependence-vector size of
// ID-based selective replay: one bit per load the window can hold
// (§3.4.1), which is what makes the scheme infeasible at scale.
func IDSelVectorBits(maxLoadsInWindow int) int {
	return maxLoadsInWindow
}
