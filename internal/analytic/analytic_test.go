package analytic

import "testing"

func TestMaxParentLoadsEdgeCases(t *testing.T) {
	if MaxParentLoads(0, 5) != 0 || MaxParentLoads(4, 0) != 0 || MaxParentLoads(-1, -1) != 0 {
		t.Fatal("non-positive arguments must yield 0")
	}
}

func TestMaxParentLoadsHandChecked(t *testing.T) {
	// Cells verified by hand against the graph model (see table1.go).
	cases := []struct{ ports, dist, want int }{
		{1, 1, 1},  // one port, window of one usable cycle
		{2, 1, 2},  // two direct load parents
		{8, 1, 2},  // fan-in of two binds
		{1, 2, 2},  // chain: load->root plus load->alu->root
		{2, 2, 3},  // load@-2 + alu@-1 hosting two loads@-3, ports bind
		{4, 2, 4},  // two alus@-1 hosting four loads@-3
		{2, 4, 6},  // two alu chains feeding three load pairs
		{8, 4, 12}, // mixed expansion
	}
	for _, tc := range cases {
		if got := MaxParentLoads(tc.ports, tc.dist); got != tc.want {
			t.Errorf("MaxParentLoads(%d,%d) = %d, want %d", tc.ports, tc.dist, got, tc.want)
		}
	}
}

func TestMaxParentLoadsMatchesPaperTable1(t *testing.T) {
	// The paper's generating equation is unpublished ("the general
	// equation derived from a graph model is complex"); our
	// reconstruction matches it exactly on the hand-verifiable region —
	// every cell with ports <= 2, every cell with distance <= 3, and the
	// fan-in-saturated cells — and stays within p/4 elsewhere (the
	// saturation-transition region). Exactness is asserted on the
	// verified region; the full comparison is part of the Table 1
	// experiment output.
	exact := 0
	for di, d := range Table1Distances {
		for pi, p := range Table1Ports {
			got := MaxParentLoads(p, d)
			want := Table1Paper[di][pi]
			if got == want {
				exact++
			}
			if p <= 2 || d <= 2 {
				if got != want {
					t.Errorf("MaxParentLoads(ports=%d,dist=%d) = %d, paper %d (verified region)",
						p, d, got, want)
				}
				continue
			}
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > p/4 {
				t.Errorf("MaxParentLoads(ports=%d,dist=%d) = %d, paper %d: |diff| %d > p/4",
					p, d, got, want, diff)
			}
		}
	}
	if exact < 30 {
		t.Errorf("only %d/42 cells exact; reconstruction has regressed", exact)
	}
}

func TestMaxParentLoadsMonotone(t *testing.T) {
	// More ports or more distance can never reduce the tracking burden.
	for d := 1; d <= 7; d++ {
		for pi := 1; pi < len(Table1Ports); pi++ {
			lo := MaxParentLoads(Table1Ports[pi-1], d)
			hi := MaxParentLoads(Table1Ports[pi], d)
			if hi < lo {
				t.Errorf("ports monotonicity violated at d=%d: p=%d gives %d, p=%d gives %d",
					d, Table1Ports[pi-1], lo, Table1Ports[pi], hi)
			}
		}
	}
	for _, p := range Table1Ports {
		for d := 2; d <= 7; d++ {
			if MaxParentLoads(p, d) < MaxParentLoads(p, d-1) {
				t.Errorf("distance monotonicity violated at p=%d, d=%d", p, d)
			}
		}
	}
}

func TestMaxParentLoadsBounds(t *testing.T) {
	// Never more than ports*window (port bound) nor than 2^(dist+1)
	// (fan-in bound over the window depth).
	for _, p := range Table1Ports {
		for d := 1; d <= 7; d++ {
			got := MaxParentLoads(p, d)
			if got > p*d {
				t.Errorf("(%d,%d): %d exceeds port bound %d", p, d, got, p*d)
			}
			if got > 1<<uint(d+1) {
				t.Errorf("(%d,%d): %d exceeds fan-in bound %d", p, d, got, 1<<uint(d+1))
			}
		}
	}
}

func TestWireCounts(t *testing.T) {
	// §3.5: dependence info bus grows 48 -> 192 from 4-wide (2 ports) to
	// 8-wide (4 ports) at propagation distance 6.
	if got := PosSelDependenceBusWires(4, 2, 6); got != 48 {
		t.Errorf("4-wide dependence bus = %d, want 48", got)
	}
	if got := PosSelDependenceBusWires(8, 4, 6); got != 192 {
		t.Errorf("8-wide dependence bus = %d, want 192", got)
	}
	// §5.5: total extra replay wires, 8-wide: 196 position-based vs 32
	// token-based (16 tokens).
	if got := PosSelTotalReplayWires(8, 4, 6); got != 196 {
		t.Errorf("8-wide PosSel total wires = %d, want 196", got)
	}
	if got := TkSelTotalReplayWires(16); got != 32 {
		t.Errorf("16-token TkSel wires = %d, want 32", got)
	}
	if got := TkSelTotalReplayWires(8); got != 16 {
		t.Errorf("8-token TkSel wires = %d, want 16", got)
	}
	if got := DependenceMatrixBits(4, 6); got != 24 {
		t.Errorf("matrix bits = %d, want 24", got)
	}
	if got := IDSelVectorBits(64); got != 64 {
		t.Errorf("IDSel vector bits = %d, want 64", got)
	}
}

func BenchmarkMaxParentLoadsWorstCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MaxParentLoads(32, 7)
	}
}
