package analytic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// The Table 1 graph model is a worst case: MaxParentLoads(p, d) bounds
// how many in-flight load parents any instruction can have to track
// with p memory ports and propagation distance d. Cross-validate it
// against a checked simulator run: walk every issue's dependence
// ancestry, count the distinct loads still inside the propagation
// window, and the empirical maximum must stay within the model's bound
// while being large enough to prove the measurement is not vacuous.
func TestMaxParentLoadsBoundsSimulator(t *testing.T) {
	const insts = 20_000
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config4Wide()
	cfg.Scheme = core.PosSel
	cfg.Check = core.CheckFull
	cfg.MaxInsts = insts
	cfg.Warmup = 0
	m, err := core.New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror the deterministic stream so the observer's per-seq events
	// can be joined with the dependence edges the events do not carry.
	mirrorGen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorGen.Generate(insts + 8_192)

	dist := int64(cfg.PropagationDistance())
	const window = 8192 // power of two well beyond the ROB
	lastIssue := make([]int64, window)
	issuedSeq := make([]int64, window)
	for i := range lastIssue {
		issuedSeq[i] = -1
	}

	// countParentLoads walks the ancestry of seq, following only
	// producers whose latest issue is still inside the propagation
	// window at the consumer's issue cycle, and counts distinct loads.
	var stack, seen []int64
	countParentLoads := func(seq, cycle int64) int {
		stack = stack[:0]
		seen = seen[:0]
		push := func(p int64) {
			if p < 0 || seq-p >= window {
				return
			}
			for _, s := range seen {
				if s == p {
					return
				}
			}
			seen = append(seen, p)
			stack = append(stack, p)
		}
		push(mirror[seq].Src1)
		push(mirror[seq].Src2)
		loads := 0
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			slot := p & (window - 1)
			if issuedSeq[slot] != p || cycle-lastIssue[slot] > dist {
				continue // never issued, overwritten, or already propagated out
			}
			if mirror[p].Class == isa.Load {
				loads++
			}
			push(mirror[p].Src1)
			push(mirror[p].Src2)
		}
		return loads
	}

	empMax := 0
	m.SetObserver(func(ev core.PipeEvent) {
		if ev.Kind != core.EvIssue || int(ev.Seq) >= len(mirror) {
			return
		}
		if n := countParentLoads(ev.Seq, ev.Cycle); n > empMax {
			empMax = n
		}
		slot := ev.Seq & (window - 1)
		lastIssue[slot] = ev.Cycle
		issuedSeq[slot] = ev.Seq
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	bound := MaxParentLoads(cfg.MemPorts, int(dist))
	if empMax > bound {
		t.Fatalf("simulator produced %d in-window parent loads; model bound MaxParentLoads(%d,%d) = %d",
			empMax, cfg.MemPorts, dist, bound)
	}
	if empMax < 2 {
		t.Fatalf("empirical maximum %d parent loads; measurement looks vacuous (bound %d)", empMax, bound)
	}
	t.Logf("empirical max parent loads %d, model bound %d", empMax, bound)
}
