package evstream

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
)

// validStreamBytes builds a small well-formed stream — events across
// cycle-delta shapes plus an interleaved checkpoint — for the seed
// corpus.
func validStreamBytes(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, Header{Spec: "fuzz", Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	events := []core.PipeEvent{
		{Cycle: 1, Seq: 0, PC: 0x400000, Class: isa.IntALU, Kind: core.EvFetch},
		{Cycle: 1, Seq: 0, PC: 0x400000, Class: isa.IntALU, Kind: core.EvDispatch},
		{Cycle: 2, Seq: 0, Kind: core.EvIssue},
		{Cycle: 9, Seq: 0, Kind: core.EvComplete},
		{Cycle: 9, Seq: 1, Kind: core.EvReplay},
		{Cycle: 10, Seq: 1, Kind: core.EvSquash},
		{Cycle: 11, Seq: 0, Kind: core.EvRetire},
	}
	for i, ev := range events {
		rec.Event(ev)
		if i == 3 {
			if err := rec.Checkpoint(9, []byte(`{"cycle":9}`)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := rec.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzEvstreamDecoder feeds arbitrary bytes to the stream decoder. The
// contract under attack: truncated pages, delta overflow, reserved
// bits and corrupt checkpoint headers must all surface as errors —
// never a panic, never an out-of-range event, never unbounded output
// from bounded input, and errors must stay sticky.
func FuzzEvstreamDecoder(f *testing.F) {
	valid := validStreamBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                           // truncated final record
	f.Add(valid[:len(magic)+1])                           // truncated header frame
	f.Add([]byte("SREVENT2\x00\x00"))                     // wrong version magic
	f.Add([]byte{})                                       // empty file
	f.Add(append(append([]byte{}, valid...), 0xC3, 0xFF)) // trailing garbage
	// Cycle-delta overflow: a near-2^64 uvarint after a varint-coded
	// cycle byte.
	overflow := append(append([]byte{}, valid...),
		cycVarint<<evCycShift, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	f.Add(overflow)
	// Corrupt checkpoint header: giant declared payload length.
	f.Add(append(append([]byte{}, valid...),
		ctlCheckpoint, 0x05, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Every record consumes at least one byte of input.
		maxRecords := len(data)
		n := 0
		var lastCycle int64
		for {
			rec, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if _, err2 := d.Next(); err2 == nil {
					t.Fatal("Next succeeded after a decode error")
				}
				break
			}
			switch rec.Kind {
			case RecEvent:
				ev := rec.Event
				if ev.Kind >= 8 {
					t.Fatalf("decoder returned out-of-range event kind %d", ev.Kind)
				}
				if ev.Class >= isa.NumClasses {
					t.Fatalf("decoder returned out-of-range class %d", ev.Class)
				}
				if ev.Cycle < lastCycle {
					t.Fatalf("event cycles went backwards: %d after %d", ev.Cycle, lastCycle)
				}
				lastCycle = ev.Cycle
			case RecCheckpoint:
				if rec.Cycle < 0 {
					t.Fatalf("decoder returned negative checkpoint cycle %d", rec.Cycle)
				}
				if len(rec.Checkpoint) > maxCheckpointLen {
					t.Fatalf("decoder returned %d-byte checkpoint payload", len(rec.Checkpoint))
				}
			default:
				t.Fatalf("decoder returned unknown record kind %d", rec.Kind)
			}
			n++
			if n > maxRecords {
				t.Fatalf("decoded %d records from %d input bytes", n, len(data))
			}
		}
	})
}

// FuzzCheckpointRoundTrip drives Recorder->Reader with fuzz-shaped
// checkpoint payloads interleaved among events and asserts exact
// recovery of cycles and payload bytes.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(int64(5), []byte(`{"cycle":5}`), uint8(3))
	f.Add(int64(0), []byte{}, uint8(0))
	f.Add(int64(1<<40), bytes.Repeat([]byte{0xAB}, 4096), uint8(200))
	f.Fuzz(func(t *testing.T, cycle int64, payload []byte, nRaw uint8) {
		if cycle < 0 {
			cycle = -cycle
		}
		if cycle < 0 { // math.MinInt64
			cycle = 0
		}
		n := int(nRaw) % 32

		var buf bytes.Buffer
		rec, err := NewRecorder(&buf, Header{Spec: "fuzz-ckpt"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			rec.Event(core.PipeEvent{Cycle: int64(i), Seq: int64(i), Kind: core.EvIssue})
		}
		if err := rec.Checkpoint(cycle, payload); err != nil {
			t.Fatal(err)
		}
		if err := rec.Checkpoint(cycle, payload); err != nil {
			t.Fatal(err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}

		d, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		events, ckpts := 0, 0
		for {
			r, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			switch r.Kind {
			case RecEvent:
				events++
			case RecCheckpoint:
				if r.Cycle != cycle {
					t.Fatalf("checkpoint cycle %d round-tripped to %d", cycle, r.Cycle)
				}
				if !bytes.Equal(r.Checkpoint, payload) {
					t.Fatalf("checkpoint payload corrupted: %d bytes in, %d out",
						len(payload), len(r.Checkpoint))
				}
				ckpts++
			}
		}
		if events != n || ckpts != 2 {
			t.Fatalf("round trip returned %d events and %d checkpoints, want %d and 2",
				events, ckpts, n)
		}
	})
}
