package evstream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// recordRun simulates one short run with a Recorder attached and
// returns the encoded stream plus the events as the sink saw them.
func recordRun(t testing.TB, cfg core.Config, seed int64) ([]byte, []core.PipeEvent) {
	t.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, Header{Spec: "test", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var seen []core.PipeEvent
	m.SetSink(sinkFunc(func(ev core.PipeEvent) {
		rec.Event(ev)
		seen = append(seen, ev)
	}))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != int64(len(seen)) {
		t.Fatalf("recorder counted %d events, sink saw %d", rec.Count(), len(seen))
	}
	return buf.Bytes(), seen
}

type sinkFunc func(core.PipeEvent)

func (f sinkFunc) Event(ev core.PipeEvent) { f(ev) }

func testConfig(scheme core.Scheme) core.Config {
	cfg := core.Config4Wide()
	cfg.Scheme = scheme
	cfg.Warmup = 500
	cfg.MaxInsts = 2_000
	return cfg
}

// TestRoundTrip: every event of a simulated run decodes back exactly —
// cycle, sequence, kind, and the PC/class payload on fetch and
// dispatch records.
func TestRoundTrip(t *testing.T) {
	for _, scheme := range []core.Scheme{core.PosSel, core.TkSel, core.SerialVerify} {
		blob, want := recordRun(t, testConfig(scheme), 1)
		d, err := NewReader(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		if h := d.Header(); h.Spec != "test" || h.Seed != 1 {
			t.Fatalf("header round-trip: %+v", h)
		}
		var got []core.PipeEvent
		for {
			rec, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if rec.Kind != RecEvent {
				t.Fatalf("unexpected record kind %d", rec.Kind)
			}
			got = append(got, rec.Event)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: decoded %d events, recorded %d", scheme, len(got), len(want))
		}
		for i := range want {
			w := want[i]
			if w.Kind != core.EvFetch && w.Kind != core.EvDispatch {
				// Only fetch/dispatch records carry PC and class.
				w.PC, w.Class = 0, 0
			}
			if got[i] != w {
				t.Fatalf("%v: event %d decoded as %+v, recorded %+v", scheme, i, got[i], w)
			}
		}
	}
}

// TestEventDensity pins the format's compactness target: at most six
// bytes per event averaged over a real run.
func TestEventDensity(t *testing.T) {
	blob, seen := recordRun(t, testConfig(core.PosSel), 1)
	if len(seen) == 0 {
		t.Fatal("run emitted no events")
	}
	if perEvent := float64(len(blob)) / float64(len(seen)); perEvent > 6 {
		t.Errorf("stream averages %.2f bytes/event, want <= 6", perEvent)
	}
}

// TestCheckpointRecords: checkpoints interleave with events and decode
// back with their cycle and payload intact.
func TestCheckpointRecords(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, Header{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Event(core.PipeEvent{Cycle: 3, Seq: 1, Kind: core.EvIssue})
	if err := rec.Checkpoint(10, []byte(`{"cycle":10}`)); err != nil {
		t.Fatal(err)
	}
	rec.Event(core.PipeEvent{Cycle: 12, Seq: 2, Kind: core.EvComplete})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	d, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.Next()
	if err != nil || r1.Kind != RecEvent || r1.Event.Cycle != 3 {
		t.Fatalf("first record %+v, %v", r1, err)
	}
	r2, err := d.Next()
	if err != nil || r2.Kind != RecCheckpoint || r2.Cycle != 10 || string(r2.Checkpoint) != `{"cycle":10}` {
		t.Fatalf("second record %+v, %v", r2, err)
	}
	r3, err := d.Next()
	if err != nil || r3.Kind != RecEvent || r3.Event.Cycle != 12 || r3.Event.Seq != 2 {
		t.Fatalf("third record %+v, %v", r3, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestSeekCycle: seeking lands on the first event at or past the
// target, and seeking past the end is a clear error, not a panic.
func TestSeekCycle(t *testing.T) {
	blob, seen := recordRun(t, testConfig(core.PosSel), 1)
	mid := seen[len(seen)/2].Cycle
	d, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := d.SeekCycle(mid)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cycle < mid {
		t.Errorf("seek to cycle %d landed on cycle %d", mid, ev.Cycle)
	}
	for _, s := range seen {
		if s.Cycle >= mid {
			if ev != s {
				t.Errorf("seek to cycle %d returned %+v, first recorded event there is %+v", mid, ev, s)
			}
			break
		}
	}

	d2, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	last := seen[len(seen)-1].Cycle
	if _, err := d2.SeekCycle(last + 1); !errors.Is(err, ErrPastEnd) {
		t.Errorf("seek past end returned %v, want ErrPastEnd", err)
	}
}

// TestUnread: a pushed-back record comes out again before the stream
// continues.
func TestUnread(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, Header{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Event(core.PipeEvent{Cycle: 1, Seq: 1, Kind: core.EvIssue})
	rec.Event(core.PipeEvent{Cycle: 2, Seq: 2, Kind: core.EvComplete})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	d.Unread(r1)
	again, err := d.Next()
	if err != nil || again.Kind != r1.Kind || again.Event != r1.Event {
		t.Fatalf("unread record came back as %+v, %v", again, err)
	}
	r2, err := d.Next()
	if err != nil || r2.Event.Seq != 2 {
		t.Fatalf("stream did not continue after unread: %+v, %v", r2, err)
	}
}

// TestDecoderRejects pins the validation surface: bad magic, reserved
// bits, oversized frames and truncation all error cleanly.
func TestDecoderRejects(t *testing.T) {
	if _, err := NewReader(strings.NewReader("SRTRACE1")); err == nil {
		t.Error("reader accepted a trace-file magic")
	}
	mk := func(extra ...byte) io.Reader {
		var buf bytes.Buffer
		rec, err := NewRecorder(&buf, Header{})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		buf.Write(extra)
		return bytes.NewReader(buf.Bytes())
	}
	cases := map[string][]byte{
		"reserved bit 6":       {evReserved | byte(core.EvIssue)},
		"reserved cycle code":  {cycReserved << evCycShift},
		"unknown control":      {0xFF},
		"spurious PC flag":     {evHasPC | byte(core.EvIssue), 0},
		"missing PC flag":      {byte(core.EvFetch), 0},
		"truncated seq delta":  {byte(core.EvIssue)},
		"oversized checkpoint": {ctlCheckpoint, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"truncated checkpoint": {ctlCheckpoint, 0x00, 0x05, 'a', 'b'},
		"bad event class":      {evHasPC | byte(core.EvFetch), 0, 0, byte(isa.NumClasses)},
		"cycle delta overflow": {cycVarint << evCycShift, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for name, raw := range cases {
		d, err := NewReader(mk(raw...))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", name, err)
		}
		if _, err := d.Next(); err == nil || err == io.EOF {
			t.Errorf("%s: decoder accepted the corrupt record (err=%v)", name, err)
		}
	}
}

// TestRecorderSticky: a failing writer latches; later events are
// dropped without further writes and Flush reports the first error.
func TestRecorderSticky(t *testing.T) {
	rec, err := NewRecorder(&limitWriter{n: len(magic) + 2 + pageSize}, Header{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*pageSize; i++ {
		rec.Event(core.PipeEvent{Cycle: int64(i), Seq: int64(i), Kind: core.EvIssue})
	}
	if rec.Err() == nil {
		t.Fatal("recorder never latched the write failure")
	}
	if err := rec.Flush(); err == nil {
		t.Fatal("flush reported success after a write failure")
	}
}

type limitWriter struct{ n int }

func (w *limitWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestRecordingZeroAlloc proves the sink property the escape gate
// enforces statically: steady-state recording does not allocate.
func TestRecordingZeroAlloc(t *testing.T) {
	rec, err := NewRecorder(io.Discard, Header{})
	if err != nil {
		t.Fatal(err)
	}
	ev := core.PipeEvent{Cycle: 1, Seq: 1, PC: 0x1000, Class: isa.Load, Kind: core.EvFetch}
	// Warm the page once before measuring.
	rec.Event(ev)
	avg := testing.AllocsPerRun(10_000, func() {
		ev.Cycle++
		ev.Seq++
		rec.Event(ev)
	})
	if avg != 0 {
		t.Errorf("recording allocates %.2f allocs/op, want 0", avg)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
}

// BenchmarkRecorderSteadyState is the benchguard-gated cost of one
// recorded event; it must report 0 allocs/op.
func BenchmarkRecorderSteadyState(b *testing.B) {
	rec, err := NewRecorder(io.Discard, Header{})
	if err != nil {
		b.Fatal(err)
	}
	ev := core.PipeEvent{PC: 0x1000, Class: isa.Load, Kind: core.EvFetch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Cycle = int64(i >> 3)
		ev.Seq = int64(i)
		rec.Event(ev)
	}
	if rec.Err() != nil {
		b.Fatal(rec.Err())
	}
}
