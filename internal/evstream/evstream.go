// Package evstream serializes the pipeline event stream to a compact
// binary format (.evs) and replays it. A recorded stream decouples
// observation from simulation the way internal/trace decouples
// workload generation: record a run once, then scrub through it —
// pipeview time travel, replayable validation findings — without
// re-simulating from cycle zero. Streams also carry serialized machine
// checkpoints, so a cycle range can be re-entered mid-run.
//
// Format (version 1): the magic "SREVENT1", a JSON header framed by a
// uvarint length, then records. An event record's first byte has bit 7
// clear: bits 0–2 the event kind, bits 3–4 a cycle-delta code (0 =
// same cycle, 1 = next cycle, 2 = unsigned varint delta follows; 3 is
// reserved), bit 5 a PC-payload flag (set on fetch and dispatch
// events, which append a zigzag-varint PC delta and a class byte), and
// bit 6 reserved. A zigzag-varint sequence-number delta always
// follows the first byte and any cycle delta. A control record's
// first byte has bit 7 set: 0x81 is a checkpoint — an unsigned varint
// absolute cycle, an unsigned varint payload length, and a serialized
// core.MachineState as JSON. Typical event records are two to three
// bytes; fetch records with their PC payload stay under eight.
//
// The Recorder is an allocation-free core.EventSink: events encode
// into a preallocated page that flushes to the underlying writer only
// when nearly full, so recording rides the simulator's hot loop
// without disturbing its zero-allocation property (the repolint escape
// gate proves this from the compiler's own escape analysis).
package evstream

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/isa"
)

// magic identifies version 1 event-stream files.
const magic = "SREVENT1"

const (
	// pageSize is the Recorder's buffer; events flush to the writer in
	// page units, never per event.
	pageSize = 64 << 10
	// maxEventLen bounds one encoded event record (first byte, three
	// varints, class byte); the page flushes when less than this
	// remains.
	maxEventLen = 1 + 3*binary.MaxVarintLen64 + 1

	// maxHeaderLen caps the framed JSON header a reader will accept.
	maxHeaderLen = 1 << 20
	// maxCheckpointLen caps one checkpoint payload (a serialized
	// machine is a few MB; 64 MB is far past any real configuration).
	maxCheckpointLen = 64 << 20

	// ctlCheckpoint is the checkpoint control record's first byte.
	ctlCheckpoint = 0x81
)

// First-byte layout of an event record.
const (
	evKindMask  = 0x07 // bits 0-2: core.PipeEventKind
	evCycShift  = 3    // bits 3-4: cycle-delta code
	evCycMask   = 0x03
	evHasPC     = 1 << 5 // bit 5: PC delta + class byte follow
	evReserved  = 1 << 6 // bit 6: must be zero
	ctlBit      = 1 << 7 // bit 7: control record
	cycSame     = 0
	cycNext     = 1
	cycVarint   = 2
	cycReserved = 3
)

// Stream-shape errors a caller may want to distinguish.
var (
	// ErrPastEnd reports a seek past the last recorded cycle.
	ErrPastEnd = errors.New("evstream: seek past end of stream")
	// errNonMonotonic is the Recorder's sticky error when events arrive
	// with a decreasing cycle stamp (static misuse of the sink).
	errNonMonotonic = errors.New("evstream: event cycle decreased")
)

// Header is the stream's self-description, stored as JSON right after
// the magic so `strings file.evs` shows what a stream holds.
type Header struct {
	// Spec is the human-readable run spec (scheme/bench/model flags).
	Spec string `json:"spec,omitempty"`
	// Seed is the workload seed the run used.
	Seed int64 `json:"seed,omitempty"`
	// Note is free-form provenance (which tool recorded the stream).
	Note string `json:"note,omitempty"`
}

// Recorder encodes pipeline events to an .evs stream. It implements
// core.EventSink; Event is allocation-free and safe to leave attached
// for a whole run. Errors are sticky: the first failure latches and
// every later call is a no-op, so the hot path never branches on I/O
// results — check Err (or Flush) once, after the run.
type Recorder struct {
	w    io.Writer
	page []byte
	n    int64

	lastCycle int64
	lastSeq   int64
	lastPC    uint64

	err error
}

// NewRecorder writes the magic and header and returns a Recorder.
// Call Flush when the run completes.
func NewRecorder(w io.Writer, hdr Header) (*Recorder, error) {
	blob, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("evstream: encoding header: %w", err)
	}
	frame := make([]byte, 0, len(magic)+binary.MaxVarintLen64+len(blob))
	frame = append(frame, magic...)
	frame = binary.AppendUvarint(frame, uint64(len(blob)))
	frame = append(frame, blob...)
	if _, err := w.Write(frame); err != nil {
		return nil, fmt.Errorf("evstream: writing header: %w", err)
	}
	return &Recorder{w: w, page: make([]byte, 0, pageSize)}, nil
}

// Event implements core.EventSink: encode one event into the page,
// flushing first if the page cannot hold a worst-case record.
func (r *Recorder) Event(ev core.PipeEvent) {
	if r.err != nil {
		return
	}
	if len(r.page) > pageSize-maxEventLen {
		r.flushPage()
		if r.err != nil {
			return
		}
	}

	delta := ev.Cycle - r.lastCycle
	if delta < 0 {
		r.err = errNonMonotonic
		return
	}
	b0 := byte(ev.Kind) & evKindMask
	hasPC := ev.Kind == core.EvFetch || ev.Kind == core.EvDispatch
	if hasPC {
		b0 |= evHasPC
	}
	switch delta {
	case 0:
		// cycSame is zero; nothing to set.
	case 1:
		b0 |= cycNext << evCycShift
	default:
		b0 |= cycVarint << evCycShift
	}
	r.page = append(r.page, b0)
	if delta > 1 {
		r.page = binary.AppendUvarint(r.page, uint64(delta))
	}
	r.page = binary.AppendVarint(r.page, ev.Seq-r.lastSeq)
	if hasPC {
		r.page = binary.AppendVarint(r.page, int64(ev.PC-r.lastPC))
		r.page = append(r.page, byte(ev.Class))
		r.lastPC = ev.PC
	}
	r.lastCycle = ev.Cycle
	r.lastSeq = ev.Seq
	r.n++
}

// Checkpoint appends a checkpoint control record: the serialized
// machine state for re-entering the stream at cycle. This is the cold
// path — it flushes the page and writes through directly.
func (r *Recorder) Checkpoint(cycle int64, payload []byte) error {
	if r.err != nil {
		return r.err
	}
	if cycle < 0 {
		r.err = fmt.Errorf("evstream: checkpoint at negative cycle %d", cycle)
		return r.err
	}
	if len(payload) > maxCheckpointLen {
		r.err = fmt.Errorf("evstream: checkpoint payload %d bytes exceeds the %d cap",
			len(payload), maxCheckpointLen)
		return r.err
	}
	r.flushPage()
	if r.err != nil {
		return r.err
	}
	frame := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	frame = append(frame, ctlCheckpoint)
	frame = binary.AppendUvarint(frame, uint64(cycle))
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	if _, err := r.w.Write(frame); err != nil {
		r.err = fmt.Errorf("evstream: %w", err)
		return r.err
	}
	if _, err := r.w.Write(payload); err != nil {
		r.err = fmt.Errorf("evstream: %w", err)
		return r.err
	}
	return nil
}

// flushPage drains the page to the writer; the raw write error latches
// (no wrapping here — this runs under the hot path's escape gate).
func (r *Recorder) flushPage() {
	if len(r.page) == 0 {
		return
	}
	_, err := r.w.Write(r.page)
	if err != nil {
		r.err = err
		return
	}
	r.page = r.page[:0]
}

// Count returns how many events have been recorded.
func (r *Recorder) Count() int64 { return r.n }

// Err returns the sticky error, if any.
func (r *Recorder) Err() error { return r.err }

// Flush drains buffered output; call it once after the run.
func (r *Recorder) Flush() error {
	r.flushPage()
	return r.err
}

// RecordKind distinguishes the record types a Reader returns.
type RecordKind uint8

const (
	// RecEvent is a pipeline event.
	RecEvent RecordKind = iota
	// RecCheckpoint is a serialized machine checkpoint.
	RecCheckpoint
)

// Record is one decoded stream record: an event, or a checkpoint with
// its payload.
type Record struct {
	Kind RecordKind
	// Event is the decoded event (RecEvent).
	Event core.PipeEvent
	// Cycle is the record's cycle stamp (both kinds).
	Cycle int64
	// Checkpoint is the serialized core.MachineState (RecCheckpoint).
	Checkpoint []byte
}

// Reader decodes an .evs stream sequentially.
type Reader struct {
	r   *bufio.Reader
	hdr Header

	lastCycle int64
	lastSeq   int64
	lastPC    uint64

	peeked  bool
	peekRec Record

	err error
}

// NewReader validates the magic, decodes the header, and returns a
// Reader.
func NewReader(rd io.Reader) (*Reader, error) {
	br := bufio.NewReader(rd)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("evstream: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("evstream: bad magic %q", head)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("evstream: reading header length: %w", err)
	}
	if hlen > maxHeaderLen {
		return nil, fmt.Errorf("evstream: header length %d exceeds the %d cap", hlen, maxHeaderLen)
	}
	blob := make([]byte, hlen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, fmt.Errorf("evstream: reading header: %w", err)
	}
	var hdr Header
	if err := json.Unmarshal(blob, &hdr); err != nil {
		return nil, fmt.Errorf("evstream: decoding header: %w", err)
	}
	return &Reader{r: br, hdr: hdr}, nil
}

// Header returns the stream's self-description.
func (d *Reader) Header() Header { return d.hdr }

// Next returns the next record, or io.EOF at the end of the stream.
// Errors (including io.EOF) are sticky.
func (d *Reader) Next() (Record, error) {
	if d.peeked {
		d.peeked = false
		return d.peekRec, nil
	}
	if d.err != nil {
		return Record{}, d.err
	}
	rec, err := d.decode()
	if err != nil {
		d.err = err
		return Record{}, err
	}
	return rec, nil
}

func (d *Reader) decode() (Record, error) {
	b0, err := d.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("evstream: %w", err)
	}
	if b0&ctlBit != 0 {
		return d.decodeControl(b0)
	}
	if b0&evReserved != 0 {
		return Record{}, fmt.Errorf("evstream: event record sets reserved bit 6 (byte 0x%02x)", b0)
	}
	kind := core.PipeEventKind(b0 & evKindMask)
	hasPC := b0&evHasPC != 0
	if wantPC := kind == core.EvFetch || kind == core.EvDispatch; hasPC != wantPC {
		return Record{}, fmt.Errorf("evstream: event kind %v with PC-payload flag %v", kind, hasPC)
	}

	cycle := d.lastCycle
	switch code := (b0 >> evCycShift) & evCycMask; code {
	case cycSame:
	case cycNext:
		cycle++
	case cycVarint:
		delta, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Record{}, fmt.Errorf("evstream: truncated cycle delta: %w", err)
		}
		if delta > uint64(math.MaxInt64-cycle) {
			return Record{}, fmt.Errorf("evstream: cycle delta %d overflows from cycle %d", delta, cycle)
		}
		cycle += int64(delta)
	default:
		return Record{}, fmt.Errorf("evstream: reserved cycle-delta code")
	}

	seqDelta, err := binary.ReadVarint(d.r)
	if err != nil {
		return Record{}, fmt.Errorf("evstream: truncated sequence delta: %w", err)
	}
	seq := d.lastSeq + seqDelta
	if (seqDelta > 0) != (seq > d.lastSeq) && seqDelta != 0 {
		return Record{}, fmt.Errorf("evstream: sequence delta %d overflows from %d", seqDelta, d.lastSeq)
	}

	ev := core.PipeEvent{Cycle: cycle, Seq: seq, Kind: kind}
	if hasPC {
		pcDelta, err := binary.ReadVarint(d.r)
		if err != nil {
			return Record{}, fmt.Errorf("evstream: truncated PC delta: %w", err)
		}
		classB, err := d.r.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("evstream: truncated class byte: %w", err)
		}
		if classB >= byte(isa.NumClasses) {
			return Record{}, fmt.Errorf("evstream: event class %d out of range", classB)
		}
		ev.PC = d.lastPC + uint64(pcDelta)
		ev.Class = isa.Class(classB)
		d.lastPC = ev.PC
	}
	d.lastCycle = cycle
	d.lastSeq = seq
	return Record{Kind: RecEvent, Event: ev, Cycle: cycle}, nil
}

func (d *Reader) decodeControl(b0 byte) (Record, error) {
	if b0 != ctlCheckpoint {
		return Record{}, fmt.Errorf("evstream: unknown control record 0x%02x", b0)
	}
	cycle, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Record{}, fmt.Errorf("evstream: truncated checkpoint cycle: %w", err)
	}
	if cycle > math.MaxInt64 {
		return Record{}, fmt.Errorf("evstream: checkpoint cycle %d overflows", cycle)
	}
	plen, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Record{}, fmt.Errorf("evstream: truncated checkpoint length: %w", err)
	}
	if plen > maxCheckpointLen {
		return Record{}, fmt.Errorf("evstream: checkpoint payload %d bytes exceeds the %d cap",
			plen, maxCheckpointLen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Record{}, fmt.Errorf("evstream: truncated checkpoint payload: %w", err)
	}
	return Record{Kind: RecCheckpoint, Cycle: int64(cycle), Checkpoint: payload}, nil
}

// SeekCycle scans forward to the first event at or past cycle and
// returns it (checkpoint records along the way are skipped). The
// returned event is consumed; the next Next call continues after it.
// A stream that ends first returns ErrPastEnd annotated with the last
// cycle seen.
func (d *Reader) SeekCycle(cycle int64) (core.PipeEvent, error) {
	last := int64(-1)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return core.PipeEvent{}, fmt.Errorf("%w: want cycle %d, stream ends at cycle %d",
				ErrPastEnd, cycle, last)
		}
		if err != nil {
			return core.PipeEvent{}, err
		}
		last = rec.Cycle
		if rec.Kind == RecEvent && rec.Event.Cycle >= cycle {
			return rec.Event, nil
		}
	}
}

// Unread pushes rec back so the next Next call returns it again; one
// record deep, mirroring bufio.
func (d *Reader) Unread(rec Record) {
	d.peeked = true
	d.peekRec = rec
}
