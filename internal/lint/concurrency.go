package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency audits the threaded packages (the batch engine and the
// HTTP service) for three disciplines the race detector can only catch
// dynamically:
//
//  1. Inferred mutex guards. For each struct that carries a sync.Mutex
//     (or RWMutex) field, the guarded set is inferred: every field
//     written in some method while that mutex is held. Every other
//     access to a guarded field — read or write, in any method — must
//     also hold the mutex. Constructors are free functions building
//     the value before publication, so they are exempt by shape; the
//     lock state is tracked lexically per block (an early Unlock
//     inside a nested branch does not end the outer critical section,
//     and a deferred Unlock holds to return).
//
//  2. Atomics-only fields. A field of a sync/atomic type must only be
//     touched through its methods (Load/Store/Add/...); and a plain
//     integer field that some call passes to an atomic.* function
//     (atomic.AddInt64(&s.n, 1)) is atomic everywhere — a plain read
//     or write elsewhere is a racy mixed access.
//
//  3. Tracked goroutine shutdown. Every `go` statement must have a
//     shutdown path the code can see: a WaitGroup.Done, a context
//     Done, or a receive on a quit channel (chan struct{}). This is
//     the SSE-leak class — a goroutine pinned to nothing outlives its
//     request.
//
// The rules are inference-based, so a deliberate exception is waived
// in place: //lint:allow(concurrency): <why>.
type Concurrency struct {
	// Paths lists the audited package import paths.
	Paths []string
}

// DefaultConcurrency audits the service and the batch engine — the
// only packages that spawn goroutines or share state under locks.
func DefaultConcurrency(module string) *Concurrency {
	return &Concurrency{Paths: []string{
		module + "/internal/serve",
		module + "/internal/sim",
	}}
}

func (*Concurrency) Name() string { return "concurrency" }

func (c *Concurrency) Check(u *Unit) error {
	for _, path := range c.Paths {
		if p := u.Pkg(path); p != nil {
			checkMutexGuards(u, c.Name(), p)
			checkAtomics(u, c.Name(), p)
			checkGoroutines(u, c.Name(), p)
		}
	}
	return nil
}

// ---- rule 1: inferred mutex guards ----

// fieldAccess is one selector touch of an owner-struct field inside a
// method, with the set of owner mutexes held at that point.
type fieldAccess struct {
	field  *types.Var
	mutex  map[*types.Var]bool
	pos    token.Pos
	write  bool
	method string
}

func checkMutexGuards(u *Unit, rule string, p *Package) {
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		mutexes := make(map[types.Object]bool)
		own := make(map[types.Object]bool)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			own[f] = true
			if isMutexType(f.Type()) {
				mutexes[f] = true
			}
		}
		if len(mutexes) == 0 {
			continue
		}
		var accesses []fieldAccess
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				rt := obj.Type().(*types.Signature).Recv().Type()
				if ptr, ok := rt.(*types.Pointer); ok {
					rt = ptr.Elem()
				}
				if rt != tn.Type() {
					continue
				}
				cs := &concScan{
					p: p, own: own, mutexes: mutexes,
					writes: writeRoots(fd.Body), method: fd.Name.Name,
					sink: &accesses,
				}
				cs.stmts(fd.Body.List, map[*types.Var]bool{})
			}
		}
		// Inferred guarded sets: field -> the mutexes it is written
		// under somewhere.
		guards := make(map[*types.Var]map[*types.Var]bool)
		for _, a := range accesses {
			if !a.write {
				continue
			}
			for m, held := range a.mutex {
				if held {
					if guards[a.field] == nil {
						guards[a.field] = make(map[*types.Var]bool)
					}
					guards[a.field][m] = true
				}
			}
		}
		for _, a := range accesses {
			for m := range guards[a.field] {
				if !a.mutex[m] {
					u.Report(rule, a.pos,
						"%s.%s is written under %s.%s elsewhere but accessed in %s without holding it; guard every access, or waive with //lint:allow(concurrency): <why>",
						name, a.field.Name(), name, m.Name(), a.method)
				}
			}
		}
	}
}

// concScan walks one method body tracking which owner mutexes are held
// lexically: Lock/Unlock calls at a block level flip the state for the
// rest of that block; nested blocks inherit a copy, so an early Unlock
// on a branch that returns does not end the enclosing critical
// section; a deferred Unlock never ends it. Function literals start
// with no locks held (they may run on another goroutine).
type concScan struct {
	p       *Package
	own     map[types.Object]bool
	mutexes map[types.Object]bool
	writes  map[*ast.SelectorExpr]bool
	method  string
	sink    *[]fieldAccess
}

func (c *concScan) stmts(list []ast.Stmt, held map[*types.Var]bool) {
	h := make(map[*types.Var]bool, len(held))
	for k, v := range held {
		h[k] = v
	}
	for _, s := range list {
		c.stmt(s, h)
	}
}

func (c *concScan) stmt(s ast.Stmt, h map[*types.Var]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if f, locks, ok := c.lockOp(s.X); ok {
			h[f] = locks
			return
		}
		c.node(s.X, h)
	case *ast.DeferStmt:
		if _, locks, ok := c.lockOp(s.Call); ok && !locks {
			return // defer mu.Unlock(): held to return
		}
		c.node(s.Call, h)
	case *ast.BlockStmt:
		c.stmts(s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		c.node(s.Cond, h)
		c.stmts(s.Body.List, h)
		if s.Else != nil {
			c.stmt(s.Else, h)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		if s.Cond != nil {
			c.node(s.Cond, h)
		}
		if s.Post != nil {
			c.stmt(s.Post, h)
		}
		c.stmts(s.Body.List, h)
	case *ast.RangeStmt:
		if s.Key != nil {
			c.node(s.Key, h)
		}
		if s.Value != nil {
			c.node(s.Value, h)
		}
		c.node(s.X, h)
		c.stmts(s.Body.List, h)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		if s.Tag != nil {
			c.node(s.Tag, h)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, e := range cl.List {
				c.node(e, h)
			}
			c.stmts(cl.Body, h)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, h)
		}
		c.stmt(s.Assign, h)
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body, h)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CommClause)
			if cl.Comm != nil {
				c.stmt(cl.Comm, h)
			}
			c.stmts(cl.Body, h)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, h)
	case nil:
	default:
		// Assignments, declarations, returns, sends, inc/dec, go
		// statements, branches: record the accesses they contain.
		c.node(s, h)
	}
}

// node records every owner-field access under n with the current lock
// state; function-literal bodies restart with no locks held.
func (c *concScan) node(n ast.Node, h map[*types.Var]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			c.stmts(x.Body.List, map[*types.Var]bool{})
			return false
		case *ast.SelectorExpr:
			c.record(x, h)
		}
		return true
	})
}

func (c *concScan) record(sel *ast.SelectorExpr, h map[*types.Var]bool) {
	s := c.p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal || !c.own[s.Obj()] {
		return
	}
	f := s.Obj().(*types.Var)
	if c.mutexes[f] {
		return // the mutex itself
	}
	held := make(map[*types.Var]bool, len(h))
	for k, v := range h {
		held[k] = v
	}
	*c.sink = append(*c.sink, fieldAccess{
		field: f, mutex: held, pos: sel.Sel.Pos(),
		write: c.writes[sel], method: c.method,
	})
}

// lockOp recognizes recv.mu.Lock()/Unlock()/RLock()/RUnlock() on an
// owner mutex field; locks reports whether the call acquires it.
func (c *concScan) lockOp(e ast.Expr) (f *types.Var, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return nil, false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	s := c.p.Info.Selections[inner]
	if s == nil || s.Kind() != types.FieldVal || !c.mutexes[s.Obj()] {
		return nil, false, false
	}
	return s.Obj().(*types.Var), locks, true
}

// writeRoots marks the selector expressions that are mutated: the root
// selector of every assignment target, inc/dec operand, and delete()
// first argument (map fields are mutated through their selector).
func writeRoots(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				out[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				mark(n.Args[0])
			}
		}
		return true
	})
	return out
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ---- rule 2: atomics-only fields ----

func checkAtomics(u *Unit, rule string, p *Package) {
	// Pass 1: fields sanctioned through atomic.* functions, and the
	// exact &field nodes those calls bless.
	fnFields := make(map[types.Object]bool)
	blessed := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[fn.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					fnFields[s.Obj()] = true
					blessed[sel] = true
				}
			}
			return true
		})
	}
	// Pass 2: every field selector, with enough of the parent chain to
	// tell a method call (s.n.Add(1)) from a plain touch.
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					checkAtomicUse(u, rule, p, sel, s, stack, fnFields, blessed)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

func checkAtomicUse(u *Unit, rule string, p *Package, sel *ast.SelectorExpr,
	s *types.Selection, stack []ast.Node, fnFields map[types.Object]bool, blessed map[*ast.SelectorExpr]bool) {

	field := s.Obj()
	owner := ownerName(s)
	switch {
	case isAtomicType(field.Type()):
		// Sanctioned shape: s.field.Method(...) — the parent is a
		// selector on this expression whose parent is the call.
		if len(stack) >= 2 {
			if psel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && psel.X == sel {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == psel {
					return
				}
			}
		}
		u.Report(rule, sel.Sel.Pos(),
			"atomic field %s.%s is touched plainly; atomics-only fields must go through their methods (Load/Store/Add/...)",
			owner, field.Name())
	case fnFields[field]:
		if blessed[sel] {
			return
		}
		u.Report(rule, sel.Sel.Pos(),
			"field %s.%s is updated through sync/atomic elsewhere but accessed plainly here; mixed plain/atomic access races",
			owner, field.Name())
	}
}

func ownerName(s *types.Selection) string {
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// ---- rule 3: tracked goroutine shutdown ----

func checkGoroutines(u *Unit, rule string, p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !trackedBody(p, lit.Body) {
					u.Report(rule, g.Pos(),
						"goroutine has no tracked shutdown path (no WaitGroup.Done, context Done, or quit-channel receive); tie it to a WaitGroup or cancellation, or waive with //lint:allow(concurrency): <why>")
				}
				return true
			}
			if !callCarriesContext(p, g.Call) {
				u.Report(rule, g.Pos(),
					"goroutine calls a function with no context or WaitGroup in sight; give it a tracked shutdown path, or waive with //lint:allow(concurrency): <why>")
			}
			return true
		})
	}
}

// trackedBody reports whether a goroutine body visibly participates in
// shutdown: it calls Done() on a WaitGroup or a context, or receives
// from a struct{} channel (the quit-channel idiom).
func trackedBody(p *Package, body *ast.BlockStmt) bool {
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			t := p.Info.Types[sel.X].Type
			if t == nil {
				return true
			}
			if isWaitGroup(t) || isContext(t) {
				tracked = true
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if t := p.Info.Types[n.X].Type; t != nil && isQuitChan(t) {
				tracked = true
			}
		}
		return true
	})
	return tracked
}

// callCarriesContext reports whether a `go f(...)` call hands the
// callee a context (and therefore a cancellation path).
func callCarriesContext(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := p.Info.Types[arg].Type; t != nil && isContext(t) {
			return true
		}
	}
	return false
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isQuitChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
