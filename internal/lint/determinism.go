package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the simulator's bit-identical-rerun contract on
// the pure packages: no wall-clock reads, no global random source, no
// goroutines (parallelism belongs in the batch engine, which replays
// results deterministically), and no iteration over a map whose order
// can leak into state or output. The one sanctioned map-range shape is
// key collection before a sort:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// This rule accepts no allow pragmas — see noPragmaRules.
type Determinism struct {
	// Paths are the import paths the rule covers.
	Paths []string
}

// DefaultDeterminism covers the packages whose outputs feed the
// paper's numbers: the pipeline model, the instruction stream, the
// workload generator, and the validation layer that judges them.
func DefaultDeterminism(module string) *Determinism {
	return &Determinism{Paths: []string{
		module + "/internal/core",
		module + "/internal/isa",
		module + "/internal/workload",
		module + "/internal/check",
	}}
}

func (*Determinism) Name() string { return "determinism" }

// wallClockFuncs are the time package functions that read the host
// clock (or schedule against it); any of them makes a run depend on
// when it happened.
var wallClockFuncs = map[string]bool{
	"time.Now": true, "time.Since": true, "time.Until": true,
	"time.Sleep": true, "time.After": true, "time.Tick": true,
	"time.NewTimer": true, "time.NewTicker": true, "time.AfterFunc": true,
}

// seededRandFuncs are the math/rand package-level functions that build
// an explicitly seeded source rather than consuming the global one.
var seededRandFuncs = map[string]bool{
	"math/rand.New": true, "math/rand.NewSource": true,
}

func (d *Determinism) Check(u *Unit) error {
	for _, path := range d.Paths {
		if p := u.Pkg(path); p != nil {
			d.checkPackage(u, p)
		}
	}
	return nil
}

func (d *Determinism) checkPackage(u *Unit, p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				u.Report(d.Name(), n.Pos(),
					"goroutine spawned in deterministic package %s; keep it sequential and let internal/sim parallelize runs", p.Types.Name())
			case *ast.Ident:
				// Covers qualified references too: the Sel of a
				// SelectorExpr is itself an Ident visited here.
				d.checkUse(u, p, n)
			case *ast.RangeStmt:
				d.checkRange(u, p, n)
			}
			return true
		})
	}
}

// checkUse flags references to wall-clock readers and to math/rand's
// global-source functions. Methods on an injected *rand.Rand (and the
// seeded constructors that make one) are the sanctioned randomness.
func (d *Determinism) checkUse(u *Unit, p *Package, id *ast.Ident) {
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on *rand.Rand) carry their own source
	}
	name := fn.Pkg().Path() + "." + fn.Name()
	switch {
	case wallClockFuncs[name]:
		u.Report(d.Name(), id.Pos(),
			"%s reads the wall clock; simulated time must come from the machine's cycle counter", name)
	case fn.Pkg().Path() == "math/rand" && !seededRandFuncs[name]:
		u.Report(d.Name(), id.Pos(),
			"%s draws from the global random source; inject a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", name)
	}
}

// checkRange flags iteration over a map when the body lets the
// unspecified order escape: writing anything declared outside the
// loop, returning, or branching out of an enclosing statement. The key
// collection idiom (every statement appends the key to one slice, for
// sorting afterwards) is order-insensitive and allowed.
func (d *Determinism) checkRange(u *Unit, p *Package, rs *ast.RangeStmt) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if keyCollectionBody(p, rs) {
		return
	}
	if id, ok := orderEscapes(p, rs); ok {
		u.Report(d.Name(), rs.Pos(),
			"map iteration order escapes through %q; iterate sorted keys instead (collect keys, sort, then range the slice)", id)
	}
}

// keyCollectionBody reports whether every statement in the range body
// is `s = append(s, k)` for the range's key variable k — the sanctioned
// collect-then-sort shape.
func keyCollectionBody(p *Package, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) == 0 {
		return false
	}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok || dst.Name != lhs.Name {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		if !ok || p.Info.Uses[arg] != p.Info.Defs[key] {
			return false
		}
	}
	return true
}

// orderEscapes reports whether the range body publishes iteration
// order: an assignment (or ++/--) to a variable declared outside the
// range statement, a return, a break/goto leaving the loop, or a send.
// It returns a description of the escape route.
func orderEscapes(p *Package, rs *ast.RangeStmt) (string, bool) {
	var route string
	inside := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	writesOuter := func(e ast.Expr) (string, bool) {
		// Peel selectors/indexes down to the base identifier: writing
		// x.f or x[i] mutates x.
		for {
			switch v := e.(type) {
			case *ast.SelectorExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.ParenExpr:
				e = v.X
			case *ast.Ident:
				if v.Name == "_" {
					return "", false
				}
				if obj := p.Info.Uses[v]; obj != nil && !inside(obj) {
					return v.Name, true
				}
				return "", false
			default:
				// Writes through a computed expression (function result,
				// composite literal) reach outside the loop's locals.
				return "a computed destination", true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if route != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					continue
				}
				if id, ok := writesOuter(lhs); ok {
					route = id
					return false
				}
			}
		case *ast.IncDecStmt:
			if id, ok := writesOuter(n.X); ok {
				route = id
				return false
			}
		case *ast.ReturnStmt:
			route = "an order-dependent return"
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				route = "an order-dependent " + n.Tok.String()
				return false
			}
		case *ast.SendStmt:
			route = "a channel send"
			return false
		case *ast.DeferStmt:
			route = "a deferred call"
			return false
		case *ast.CallExpr:
			// Direct output in iteration order (fmt.Print*, println).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
					route = "an output call (" + fn.FullName() + ")"
					return false
				}
			}
		}
		return true
	})
	return route, route != ""
}
