package lint

// Default is repolint's production analyzer suite for the module —
// eight rules: determinism over the simulator packages, the hot-path
// escape gate on the core (and the per-event paths of the event
// stream, the wire API and the service, plus the per-branch and
// per-load paths of the pluggable frontends), registry conformance,
// stats completeness, context hygiene on the batch engine and the
// service layer, snapshot completeness over every checkpoint pair,
// wire-API stability against the committed manifest, and concurrency
// discipline over the threaded packages.
func Default(module string) []Analyzer {
	return []Analyzer{
		DefaultDeterminism(module),
		DefaultEscape(module),
		EvstreamEscape(module),
		ApiEscape(module),
		ServeEscape(module),
		BpredEscape(module),
		PrefetchEscape(module),
		DefaultRegistry(module),
		DefaultStatsComplete(module),
		DefaultContextHygiene(module),
		DefaultSnapshotComplete(module),
		DefaultWireAPI(module),
		DefaultConcurrency(module),
	}
}
