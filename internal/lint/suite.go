package lint

// Default is repolint's production analyzer suite for the module:
// determinism over the simulator packages, the hot-path escape gate on
// the core (and the per-event paths of the event stream, the wire API
// and the service, plus the per-branch and per-load paths of the
// pluggable frontends), registry conformance, stats completeness, and
// context hygiene on the batch engine and the service layer.
func Default(module string) []Analyzer {
	return []Analyzer{
		DefaultDeterminism(module),
		DefaultEscape(module),
		EvstreamEscape(module),
		ApiEscape(module),
		ServeEscape(module),
		BpredEscape(module),
		PrefetchEscape(module),
		DefaultRegistry(module),
		DefaultStatsComplete(module),
		DefaultContextHygiene(module),
	}
}
