package lint

// Default is repolint's production analyzer suite for the module:
// determinism over the simulator packages, the hot-path escape gate on
// the core, registry conformance, stats completeness, and context
// hygiene on the batch engine.
func Default(module string) []Analyzer {
	return []Analyzer{
		DefaultDeterminism(module),
		DefaultEscape(module),
		EvstreamEscape(module),
		DefaultRegistry(module),
		DefaultStatsComplete(module),
		DefaultContextHygiene(module),
	}
}
