// Package lint is repolint's analysis framework: a stdlib-only static
// checker (go/parser + go/ast + go/types, no golang.org/x/tools) that
// proves the repository's structural invariants at compile time — the
// determinism contract of the simulator packages, the allocation-free
// hot path, replay-policy and checker registry conformance, stats
// completeness, and context hygiene in the batch engine.
//
// The framework loads every requested package from source, type-checks
// it against the module, and hands the typed syntax to a fixed suite
// of analyzers (see Default). Findings carry a rule name and a precise
// position; a finding can be waived in place with an allow pragma:
//
//	//lint:allow(<rule>): <reason>
//
// (the older `//lint:allow <rule> <reason>` spelling is equivalent) on
// the offending line or the line above it. Every waiver must give a
// reason — a bare pragma is itself a finding — and the full inventory
// is printable with `repolint -waivers`. The determinism, escape,
// snapshot and wireapi rules accept no pragmas at all — those
// invariants are load-bearing for the reproduction (bit-identical
// reruns and restores, a frozen wire format, zero-allocation cycle
// loop), so a waiver is itself reported as a finding; the snapshot
// rule's sanctioned exclusions live in its reviewed manifest instead
// (see snapshot_manifest.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	// Rule is the analyzer rule that fired (determinism, escape,
	// registry, stats, context, pragma).
	Rule string `json:"rule"`
	// File, Line and Col locate the violation. File is relative to the
	// module root when possible.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Msg explains the violation and, where one exists, the sanctioned
	// alternative.
	Msg string `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
}

// Analyzer is one invariant checker. Check inspects the loaded unit
// and reports findings through u.Report; the error return is for
// infrastructure failures (a build that would not run, an unreadable
// tree), never for findings.
type Analyzer interface {
	// Name is the rule name findings are filed under and pragmas refer
	// to.
	Name() string
	// Check runs the analyzer over the unit.
	Check(u *Unit) error
}

// Unit is one loaded, type-checked view of the module, shared by every
// analyzer in a run.
type Unit struct {
	// Root is the module root directory; Module its import path.
	Root   string
	Module string
	// Fset positions every file in Pkgs.
	Fset *token.FileSet
	// Pkgs holds the loaded packages in deterministic (sorted import
	// path) order.
	Pkgs []*Package

	// allow maps file -> line -> rules waived there (built from the
	// //lint:allow pragmas of every loaded file).
	allow    map[string]map[int][]string
	waivers  []Waiver
	findings []Finding
}

// Waiver is one well-formed allow pragma: where it is, which rule it
// waives, and the reason its author gave. The repo-wide inventory
// (`repolint -waivers`) is built from these.
type Waiver struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

func (w Waiver) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", w.File, w.Line, w.Rule, w.Reason)
}

// Pkg returns the loaded package with the given import path, or nil.
func (u *Unit) Pkg(path string) *Package {
	for _, p := range u.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// Report files a finding for rule at pos unless an allow pragma on the
// same or preceding line waives it. The pragma rule itself cannot be
// waived (a pragma complaining about pragmas must surface).
func (u *Unit) Report(rule string, pos token.Pos, format string, args ...any) {
	p := u.Fset.Position(pos)
	file := u.relFile(p.Filename)
	if rule != rulePragma {
		for _, r := range u.allow[p.Filename][p.Line] {
			if r == rule {
				return
			}
		}
		for _, r := range u.allow[p.Filename][p.Line-1] {
			if r == rule {
				return
			}
		}
	}
	u.findings = append(u.findings, Finding{
		Rule: rule, File: file, Line: p.Line, Col: p.Column,
		Msg: fmt.Sprintf(format, args...),
	})
}

// relFile rewrites an absolute filename relative to the module root
// for stable, machine-independent finding output.
func (u *Unit) relFile(name string) string {
	if rel, ok := strings.CutPrefix(name, u.Root+"/"); ok {
		return rel
	}
	return name
}

// rulePragma files findings about the pragmas themselves: malformed
// spellings and waivers of the unwaivable rules.
const rulePragma = "pragma"

// noPragmaRules are the rules whose findings cannot be allow-listed:
// the determinism contract, the zero-allocation hot path, checkpoint
// completeness and the frozen wire API are the repository's spine, and
// a local waiver would quietly void the global guarantee they exist to
// give. The snapshot rule's sanctioned gaps go through its reviewed
// manifest (snapshot_manifest.go), never through pragmas.
var noPragmaRules = map[string]bool{
	"determinism": true,
	"escape":      true,
	"snapshot":    true,
	"wireapi":     true,
}

// collectPragmas scans every loaded file for //lint:allow comments,
// builds the unit's allow map, and reports malformed or forbidden
// pragmas.
func (u *Unit) collectPragmas() {
	u.allow = make(map[string]map[int][]string)
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					u.collectPragma(c)
				}
			}
		}
	}
}

func (u *Unit) collectPragma(c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//lint:allow")
	if !ok {
		return
	}
	var rule, reason string
	if rest, paren := strings.CutPrefix(text, "("); paren {
		// //lint:allow(<rule>): <reason>
		name, tail, closed := strings.Cut(rest, ")")
		if !closed || name == "" || strings.ContainsAny(name, " \t") {
			u.Report(rulePragma, c.Pos(), "allow pragma names no rule; want //lint:allow <rule> <reason>")
			return
		}
		rule = name
		reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tail), ":"))
	} else {
		// //lint:allow <rule> <reason>
		fields := strings.Fields(text)
		if len(fields) == 0 {
			u.Report(rulePragma, c.Pos(), "allow pragma names no rule; want //lint:allow <rule> <reason>")
			return
		}
		rule = fields[0]
		reason = strings.Join(fields[1:], " ")
	}
	if reason == "" {
		u.Report(rulePragma, c.Pos(), "allow pragma for %q gives no reason; a waiver must say why", rule)
		return
	}
	if noPragmaRules[rule] {
		u.Report(rulePragma, c.Pos(),
			"rule %q cannot be waived: the %s invariant is global, fix the code instead", rule, rule)
		return
	}
	p := u.Fset.Position(c.Pos())
	u.waivers = append(u.waivers, Waiver{
		File: u.relFile(p.Filename), Line: p.Line, Rule: rule, Reason: reason,
	})
	byLine := u.allow[p.Filename]
	if byLine == nil {
		byLine = make(map[int][]string)
		u.allow[p.Filename] = byLine
	}
	byLine[p.Line] = append(byLine[p.Line], rule)
}

// Run loads the packages matched by patterns under the module rooted
// at (or above) dir, runs the analyzers, and returns the sorted
// findings. Analyzer errors (not findings) abort the run.
func Run(dir string, patterns []string, analyzers []Analyzer) ([]Finding, error) {
	u, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	for _, a := range analyzers {
		if err := a.Check(u); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name(), err)
		}
	}
	return u.Findings(), nil
}

// Waivers loads the packages matched by patterns and returns every
// well-formed allow pragma in them, sorted by position — the repo-wide
// waiver inventory `repolint -waivers` publishes as a CI artifact.
// Malformed or reasonless pragmas are not waivers; they surface as
// findings on a normal run.
func Waivers(dir string, patterns []string) ([]Waiver, error) {
	u, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	ws := append([]Waiver(nil), u.waivers...)
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return ws, nil
}

// Findings returns the findings reported so far, sorted by position
// then rule.
func (u *Unit) Findings() []Finding {
	fs := append([]Finding(nil), u.findings...)
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return fs
}
