package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SnapshotPair names one checkpoint method pair: every struct in
// PkgPath that declares both methods is audited for completeness.
type SnapshotPair struct {
	// PkgPath is the package holding the audited structs.
	PkgPath string
	// State and Restore name the capture and restore methods — e.g.
	// State/RestoreState for the substrates, snapshotState/restoreState
	// for the policySnapshotter policies, snapshot/Restore for the
	// machine itself.
	State, Restore string
}

// SnapshotComplete proves the checkpoint layer keeps up with the
// structs it serializes. Warm-start equivalence is a bit-identity
// contract (RetireHash and final Stats match a cold run), and its
// classic failure mode is silent: a newly added mutable field that the
// State()/RestoreState() pair never copies only diverges when a test
// happens to exercise it. This analyzer makes the gap structural: for
// every struct with a snapshot method pair, every field must be
// mentioned by BOTH methods — so deleting a field copy from either
// side fails the lint — or be named in the snapshot manifest
// (snapshot_manifest.go) with a reason (derived-on-reset geometry,
// scratch buffers, harness wiring). Stale manifest entries — a waiver
// for a field both methods in fact handle, or for a field no audited
// struct declares — are findings too, exactly like the escape gate's
// drift guard.
//
// "Mentioned" is a selector-level check against the owning struct's
// field objects, so indirect captures (h.il1.State(), cloneFills(
// h.fills), snapshotWindow(&m.win)) count at the call site. Embedded
// fields whose type is an empty struct (stateless hook providers like
// noopPolicy) are skipped.
type SnapshotComplete struct {
	// Pairs lists the audited packages and their method pairs.
	Pairs []SnapshotPair
	// Waivers maps "<pkg>.<Type>.<field>" to the reason that field is
	// deliberately absent from its snapshot.
	Waivers map[string]string
}

func (*SnapshotComplete) Name() string { return "snapshot" }

func (s *SnapshotComplete) Check(u *Unit) error {
	// known collects every waiver key that names a real field of an
	// audited struct; the rest of the manifest is stale.
	known := make(map[string]bool)
	all := true
	for _, pair := range s.Pairs {
		p := u.Pkg(pair.PkgPath)
		if p == nil {
			all = false
			continue
		}
		s.checkPackage(u, p, pair, known)
	}
	if !all {
		// Partial load (a fixture or a scoped run): unknown keys may
		// belong to the unloaded packages, so stale detection would lie.
		return nil
	}
	var stale []string
	for key := range s.Waivers {
		if !known[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		u.Report(s.Name(), s.stalePos(u, key),
			"snapshot manifest entry %q matches no audited struct field; delete the stale waiver", key)
	}
	return nil
}

// stalePos anchors an unknown-key finding to the package the key
// claims to belong to, falling back to the first audited package.
func (s *SnapshotComplete) stalePos(u *Unit, key string) token.Pos {
	for _, pair := range s.Pairs {
		p := u.Pkg(pair.PkgPath)
		if p == nil || len(p.Files) == 0 {
			continue
		}
		if pkgOfKey(key) == p.Types.Name() {
			return p.Files[0].Pos()
		}
	}
	for _, pair := range s.Pairs {
		if p := u.Pkg(pair.PkgPath); p != nil && len(p.Files) > 0 {
			return p.Files[0].Pos()
		}
	}
	return token.NoPos
}

func pkgOfKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return key[:i]
		}
	}
	return key
}

func (s *SnapshotComplete) checkPackage(u *Unit, p *Package, pair SnapshotPair, known map[string]bool) {
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		stateFn := methodDecl(p, tn.Type(), pair.State)
		restoreFn := methodDecl(p, tn.Type(), pair.Restore)
		if stateFn == nil || restoreFn == nil {
			continue
		}
		captured := mentionedFields(p, stateFn, st)
		restored := mentionedFields(p, restoreFn, st)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() && isEmptyStruct(f.Type()) {
				continue // stateless embedded hook provider (noopPolicy)
			}
			key := p.Types.Name() + "." + name + "." + f.Name()
			known[key] = true
			cap, res := captured[f], restored[f]
			_, waived := s.Waivers[key]
			switch {
			case cap && res:
				if waived {
					u.Report(s.Name(), f.Pos(),
						"snapshot manifest waives %s, but %s() and %s() both handle it; delete the stale waiver",
						key, pair.State, pair.Restore)
				}
			case waived:
				// Sanctioned gap; the manifest records why.
			case !cap && !res:
				u.Report(s.Name(), f.Pos(),
					"%s.%s is neither captured by %s() nor restored by %s(); a restored run would silently diverge — snapshot it, or waive it in the snapshot manifest with a reason",
					name, f.Name(), pair.State, pair.Restore)
			case !cap:
				u.Report(s.Name(), f.Pos(),
					"%s.%s is restored by %s() but never captured by %s(); snapshot it, or waive it in the snapshot manifest with a reason",
					name, f.Name(), pair.Restore, pair.State)
			default:
				u.Report(s.Name(), f.Pos(),
					"%s.%s is captured by %s() but never restored by %s(); snapshot it, or waive it in the snapshot manifest with a reason",
					name, f.Name(), pair.State, pair.Restore)
			}
		}
	}
}

// methodDecl finds the body of the method with the given name declared
// on recv (value or pointer receiver) in p.
func methodDecl(p *Package, recv types.Type, name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			rt := obj.Type().(*types.Signature).Recv().Type()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if rt == recv {
				return fd
			}
		}
	}
	return nil
}

// mentionedFields collects the fields of st that fd's body selects —
// any x.field where the selection resolves to one of st's own field
// objects, whatever x is.
func mentionedFields(p *Package, fd *ast.FuncDecl, st *types.Struct) map[*types.Var]bool {
	own := make(map[types.Object]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		own[st.Field(i)] = true
	}
	out := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := p.Info.Selections[sel]; s != nil && own[s.Obj()] {
			out[s.Obj().(*types.Var)] = true
		}
		return true
	})
	return out
}

func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
