package lint

import (
	"go/ast"
	"go/types"
)

// machineHotMethods are the Machine methods that run inside the warm
// cycle loop: the per-cycle step and its event pump, every pipeline
// stage they drive (fetch through retire), the scheduling and replay
// machinery, and the pooled-storage helpers they lean on. Reset-time
// and reporting code (New, Reset, init, Run, RunContext, Stats,
// describeHead, ...) is deliberately absent — allocation is fine
// there.
var machineHotMethods = []string{
	// Cycle loop and event wheel.
	"step", "runEvents", "schedule", "scheduleNow", "canceled",
	// Window and queue storage (pooled; must stay allocation-free).
	"allocUop", "freeUop", "lookup", "prod", "tailSeq",
	"lsqAt", "lsqPush", "lsqPopFront", "fqAt", "fqPush", "fqPopFront",
	// Front end.
	"fetch", "fetchQCap", "dispatch", "insert", "schedLatOf",
	// Scheduler: the word-parallel select scan and wakeup broadcast,
	// plus the slot-accessor API every stage reads the SoA window
	// through.
	"newBudget", "selectAndIssue", "issueScan", "issue", "squash",
	"forceIQ", "releaseIQ", "reacquireIQ", "handleBroadcast", "handleOpWake",
	"seqAt", "inIQ", "inRQ", "issuedState", "completedState",
	"allReady", "opReady", "producerOf", "opWokenAt",
	"wakeOperand", "clearOperand", "holdUntil", "setHoldUntil",
	"rqRetryAt", "setRQRetryAt", "needsReinsert", "unissue", "dataValidFor",
	// Execute and complete.
	"handleExec", "execLoad", "aliasingStore", "storeDataReadyAt",
	"handleComplete", "rearmOperand", "retire",
	// Replay machinery (shared by the policies).
	"handleKill", "replayLoad", "selectiveKill", "shadowKill",
	"startReinsert", "handleReinsertStart", "reinsertStep",
	"refetch", "valueKill", "handleSerialStep",
	// Observation taps (the monitors and the event sink hang off them).
	"emit", "emitFetch",
}

// hotFreeFuncs and hotAuxMethods extend the manifest beyond Machine:
// free functions and non-Machine receivers on the cycle path.
var (
	hotFreeFuncs  = []string{"newRingIter"}
	hotAuxMethods = map[string][]string{
		"fuBudget": {"take"},
		// The structure-of-arrays window primitives and the ring-order
		// bit iterator run inside the select scan, the wakeup broadcast
		// and every per-slot state transition — the hottest code in the
		// simulator.
		"schedWindow": {"test", "set", "clearBit", "refreshReady",
			"setOp", "clearOp", "clearSlot", "linkConsumer"},
		"ringIter": {"word", "next"},
		// The monitor's per-event and per-cycle taps run on every
		// emitted pipeline event under cheap/full checking; failf and
		// traceWindow are the violation path (cold by definition) and
		// reset/finish bracket the run.
		"monitor": {"record", "cycleEnd"},
	}
	// coldHookMethods are the sanctioned allocation points of the
	// policy and checker interfaces: reset sizes state before the run,
	// finish folds results after it, and the snapshot/restore pair runs
	// only from the checkpoint trigger outside the cycle loop.
	coldHookMethods = map[string]bool{
		"reset": true, "finish": true,
		"snapshotState": true, "restoreState": true,
	}
	// coldIfaceMethods are interface-conformance trivia excluded along
	// with the cold hooks when a policy/checker type's methods are
	// swept into the manifest.
	coldIfaceMethods = map[string]bool{"name": true, "minLevel": true}
)

// coreManifest computes the hot-path function set for the core
// package: the explicit Machine manifest above, plus — derived from
// the type-checked package so new schemes and monitors are covered the
// moment they register — every method of every type implementing
// replayPolicy or checker, except the cold reset/finish hooks. Stale
// explicit entries (a rename the manifest missed) are reported through
// u so the gate cannot silently narrow.
func coreManifest(u *Unit, p *Package) map[string]bool {
	manifest := make(map[string]bool)
	for _, m := range machineHotMethods {
		manifest["Machine."+m] = true
	}
	for _, f := range hotFreeFuncs {
		manifest[f] = true
	}
	for recv, methods := range hotAuxMethods {
		for _, m := range methods {
			manifest[recv+"."+m] = true
		}
	}

	// Sweep the policy and checker implementations. The noop embeddings
	// provide the default hook bodies, so their methods are hot too even
	// though the bare types satisfy neither interface.
	policyIface := ifaceType(p, "replayPolicy")
	checkerIface := ifaceType(p, "checker")
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ptr := types.NewPointer(named)
		hot := name == "noopPolicy" || name == "noopChecker" ||
			(policyIface != nil && types.Implements(ptr, policyIface)) ||
			(checkerIface != nil && types.Implements(ptr, checkerIface))
		if !hot {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i).Name()
			if coldHookMethods[m] || coldIfaceMethods[m] {
				continue
			}
			manifest[name+"."+m] = true
		}
	}

	// Guard against manifest drift: every explicit entry must name a
	// declared function, or the gate is quietly checking nothing.
	declared := make(map[string]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				declared[funcKey(fd)] = true
			}
		}
	}
	for key := range manifest {
		if !declared[key] {
			u.Report("escape", p.Files[0].Pos(),
				"hot-path manifest entry %q matches no declared function in %s; update internal/lint/hotpath.go", key, p.Path)
		}
	}
	return manifest
}

// evstreamHotFuncs are the event-stream recorder's per-event path: the
// sink tap the machine calls once per pipeline event, and the page
// flush it leans on. Recording must preserve the simulator's
// zero-allocation cycle loop, so these face the same escape gate as
// the core. Setup, checkpointing and the whole decode side are cold.
var evstreamHotFuncs = []string{"Recorder.Event", "Recorder.flushPage"}

// evstreamManifest computes the hot function set for the evstream
// package, with the same drift guard as the core manifest: a stale
// entry is reported, never silently dropped.
func evstreamManifest(u *Unit, p *Package) map[string]bool {
	return listManifest(u, p, evstreamHotFuncs)
}

// EvstreamEscape gates the event-stream recorder.
func EvstreamEscape(module string) *Escape {
	return &Escape{
		PkgPath:  module + "/internal/evstream",
		Manifest: evstreamManifest,
	}
}

// apiHotFuncs is the wire package's per-event serialization path: the
// allocation-free Progress encoder the SSE loop calls once per event
// per subscriber. TestAppendProgressZeroAlloc proves the property
// empirically; the gate proves it from escape analysis and names the
// function when an edit breaks it.
var apiHotFuncs = []string{"AppendProgress"}

func apiManifest(u *Unit, p *Package) map[string]bool {
	return listManifest(u, p, apiHotFuncs)
}

// ApiEscape gates the wire package's SSE serializer.
func ApiEscape(module string) *Escape {
	return &Escape{
		PkgPath:  module + "/internal/api",
		Manifest: apiManifest,
	}
}

// serveHotFuncs is the service's per-event path: the counter snapshot
// every SSE event and every /v1/info response is assembled from. The
// SSE loop reuses one buffer per subscriber, so this snapshot is the
// only code between ticks that could silently start allocating.
var serveHotFuncs = []string{"Server.progress"}

func serveManifest(u *Unit, p *Package) map[string]bool {
	return listManifest(u, p, serveHotFuncs)
}

// ServeEscape gates the service's progress snapshot path.
func ServeEscape(module string) *Escape {
	return &Escape{
		PkgPath:  module + "/internal/serve",
		Manifest: serveManifest,
	}
}

// bpredHotFuncs is the branch predictor's per-branch path: the lookup
// the front end makes for every fetched branch and the update the
// resolve path makes for every executed one, plus every component
// helper they drive — the combined tables, the TAGE tagged tables and
// their hash/allocation machinery, the BTB and the RAS. Construction,
// Reset and the State/RestoreState checkpoint pair are cold.
var bpredHotFuncs = []string{
	"Predictor.Lookup", "Predictor.Update",
	"Predictor.PushRAS", "Predictor.PopRAS",
	"Predictor.bimodalIdx", "Predictor.gshareIdx", "Predictor.selectorIdx",
	"counter.taken", "counter.update", "boolBit",
	"tage.lookup", "tage.update", "tage.allocate", "tage.age",
	"tage.index", "tage.tag", "tage.nextRand", "sat3", "weak3",
	"btb.set", "btb.lookup", "btb.insert",
	"ras.push", "ras.pop",
}

func bpredManifest(u *Unit, p *Package) map[string]bool {
	return listManifest(u, p, bpredHotFuncs)
}

// BpredEscape gates the branch predictor's per-branch path.
func BpredEscape(module string) *Escape {
	return &Escape{
		PkgPath:  module + "/internal/bpred",
		Manifest: bpredManifest,
	}
}

// prefetchHotFuncs is the stride prefetcher's per-load path: the core
// calls DemandUse and Observe on every first-issue load execution and
// MarkIssued on every fired prefetch, so all three (and the slot hash
// they share) live inside the simulator's zero-allocation cycle loop.
// Construction, Reset and the checkpoint pair are cold.
var prefetchHotFuncs = []string{
	"Prefetcher.Observe", "Prefetcher.MarkIssued", "Prefetcher.DemandUse",
	"Prefetcher.slot", "len64",
}

func prefetchManifest(u *Unit, p *Package) map[string]bool {
	return listManifest(u, p, prefetchHotFuncs)
}

// PrefetchEscape gates the prefetcher's per-load path.
func PrefetchEscape(module string) *Escape {
	return &Escape{
		PkgPath:  module + "/internal/prefetch",
		Manifest: prefetchManifest,
	}
}

// listManifest turns an explicit function list into a manifest with
// the standard drift guard: an entry naming no declared function is
// reported through u, never silently dropped — the gate must not
// quietly narrow to nothing after a rename.
func listManifest(u *Unit, p *Package, funcs []string) map[string]bool {
	manifest := make(map[string]bool, len(funcs))
	for _, f := range funcs {
		manifest[f] = true
	}
	declared := make(map[string]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				declared[funcKey(fd)] = true
			}
		}
	}
	for key := range manifest {
		if !declared[key] {
			u.Report("escape", p.Files[0].Pos(),
				"hot-path manifest entry %q matches no declared function in %s; update internal/lint/hotpath.go", key, p.Path)
		}
	}
	return manifest
}

// ifaceType resolves a package-scope interface by name.
func ifaceType(p *Package, name string) *types.Interface {
	obj := p.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// funcKey names a declaration the way the manifest does:
// "Recv.method" for methods, "name" for free functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
