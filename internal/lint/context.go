package lint

import (
	"go/ast"
	"go/types"
)

// ContextHygiene enforces cancellation discipline on the batch
// engine's public surface: blocking entry points thread a
// context.Context as their first parameter, nothing conjures a fresh
// context with context.Background/TODO (that silently detaches the
// work from the caller's cancellation), and no struct stores a
// Context — the standard library's own rule, because a stored context
// outlives the call it scoped.
type ContextHygiene struct {
	// Paths are the import paths the rule covers.
	Paths []string
}

// DefaultContextHygiene covers the batch simulation engine and the
// service layer on top of it (the wire client and the HTTP server),
// where a detached context would quietly sever a request from its
// client's disconnect or the server's shutdown.
func DefaultContextHygiene(module string) *ContextHygiene {
	return &ContextHygiene{Paths: []string{
		module + "/internal/sim",
		module + "/internal/api",
		module + "/internal/serve",
	}}
}

func (*ContextHygiene) Name() string { return "context" }

func (c *ContextHygiene) Check(u *Unit) error {
	for _, path := range c.Paths {
		if p := u.Pkg(path); p != nil {
			c.checkPackage(u, p)
		}
	}
	return nil
}

func (c *ContextHygiene) checkPackage(u *Unit, p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				c.checkStructFields(u, p, n)
			case *ast.SelectorExpr:
				if fn, ok := p.Info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
					u.Report(c.Name(), n.Pos(),
						"context.%s detaches the work from the caller's cancellation; thread the ctx parameter through instead", fn.Name())
				}
			case *ast.FuncDecl:
				c.checkSignature(u, p, n)
			}
			return true
		})
	}
}

func (c *ContextHygiene) checkStructFields(u *Unit, p *Package, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(p.Info.TypeOf(field.Type)) {
			u.Report(c.Name(), field.Pos(),
				"struct stores a context.Context; contexts scope one call and must be passed as parameters")
		}
	}
}

// checkSignature requires a context parameter, when present, to come
// first — the convention every caller and every wrapper relies on.
func (c *ContextHygiene) checkSignature(u *Unit, p *Package, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(p.Info.TypeOf(field.Type)) && pos != 0 {
			u.Report(c.Name(), field.Pos(),
				"%s takes a context.Context after other parameters; ctx comes first", fd.Name.Name)
		}
		pos += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
