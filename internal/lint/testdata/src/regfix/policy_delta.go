package regfix

// Registration outside init — finding.
func setupDelta() {
	registerPolicy(Gamma, "Delta", func() any { return nil })
}
