package regfix

// One file, one scheme, registered from init — no findings.
func init() {
	registerPolicy(Alpha, "Alpha", func() any { return nil })
}
