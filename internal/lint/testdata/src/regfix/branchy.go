package regfix

// Dispatch branches on scheme identity — one finding for the
// comparison, one for the switch. The range guard against numSchemes
// is the registry's own bound and stays clean.
func Dispatch(s Scheme) int {
	if s >= numSchemes {
		return -1
	}
	if s == Alpha {
		return 1
	}
	switch s {
	case Beta:
		return 2
	}
	return 0
}

// lateRegister calls registerPolicy from a non-policy file — finding.
func lateRegister() {
	registerPolicy(Gamma, "Late", func() any { return nil })
}
