package regfix

// Two schemes in one policy file — finding on the second call.
func init() {
	registerPolicy(Beta, "Beta", func() any { return nil })
	registerPolicy(Gamma, "Gamma", func() any { return nil })
}
