// Package regfix mimics the core package's registry shape — a Scheme
// enum, registerPolicy, and a checker interface — and seeds the
// conformance violations the registry analyzer must catch.
package regfix

// Scheme mirrors core.Scheme for the fixture.
type Scheme uint8

const (
	Alpha Scheme = iota
	Beta
	Gamma
	numSchemes
)

var policies [numSchemes]func() any

func registerPolicy(s Scheme, name string, build func() any) {
	if s >= numSchemes {
		panic(name)
	}
	policies[s] = build
}

// checker mirrors the core monitor interface.
type checker interface {
	name() string
	check() bool
}

var checkers []func() checker

func registerChecker(name string, build func() checker) {
	_ = name
	checkers = append(checkers, build)
}

// goodChecker is registered below — no finding.
type goodChecker struct{}

func (goodChecker) name() string { return "good" }
func (goodChecker) check() bool  { return true }

// strayChecker implements checker but is never registered — finding.
type strayChecker struct{}

func (strayChecker) name() string { return "stray" }
func (strayChecker) check() bool  { return false }

func init() {
	registerChecker("good", func() checker { return &goodChecker{} })
}
