// Package escapefix seeds hot-path allocations for the escape gate's
// own test: functions named hot* form the fixture manifest; coldSetup
// allocates legitimately outside it.
package escapefix

import "fmt"

// hotAlloc leaks a stack variable — the gate must flag it.
func hotAlloc() *int {
	x := 42
	return &x
}

// hotSlice grows a fresh slice every call — the gate must flag it.
func hotSlice(n int) []int {
	buf := make([]int, n)
	return buf
}

// hotGuard allocates only on the panic path; the cold-sink exemption
// must keep it clean.
func hotGuard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("escapefix: negative %d", n))
	}
	return n * 2
}

// hotClean stays on the stack — no finding.
func hotClean(a, b int) int {
	s := [4]int{a, b, a + b, a - b}
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// coldSetup allocates freely; it is not on the manifest.
func coldSetup(n int) []*int {
	out := make([]*int, 0, n)
	for i := 0; i < n; i++ {
		v := i
		out = append(out, &v)
	}
	return out
}

// use keeps every fixture function referenced so vet stays quiet.
var use = []any{hotAlloc, hotSlice, hotGuard, hotClean, coldSetup}
