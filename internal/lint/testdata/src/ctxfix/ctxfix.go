// Package ctxfix seeds context-hygiene violations: a stored context,
// a conjured one, and a misplaced ctx parameter.
package ctxfix

import "context"

// Engine stores a context in a struct — finding.
type Engine struct {
	ctx context.Context
	n   int
}

// Run detaches itself from the caller's cancellation — finding.
func Run(e *Engine) error {
	e.ctx = context.Background()
	return e.ctx.Err()
}

// Misordered takes its context after another parameter — finding.
func Misordered(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}

// WellFormed threads ctx first — no finding.
func WellFormed(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}
