// Package apifix seeds wire-API stability violations against its own
// committed manifest (testdata/apifix_manifest.json): a retagged field,
// a retyped field, a removed field, an unmanifested addition, a removed
// type, and an unmanifested new type — next to a type that matches the
// manifest exactly.
package apifix

// Bench matches the manifest exactly — clean.
type Bench struct {
	Name string `json:"name"`
}

// Spec diverges from the manifest four ways: Scheme changed its json
// tag, Width changed its type from int to int64, Extra is an addition
// the manifest does not know, and the manifest's Seed field is gone.
type Spec struct {
	Extra  string `json:"extra"`
	Scheme string `json:"kind"`
	Width  int64  `json:"width"`
}

// Info is not in the manifest at all — addition finding.
type Info struct {
	API string `json:"api"`
}

// The manifest also pins a Result type this package no longer declares
// — removed-type finding.
