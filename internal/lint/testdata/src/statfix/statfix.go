// Package statfix seeds stats-completeness violations: a counter the
// subtract method forgot, a field hidden from serialization, a struct
// field that cannot round-trip, and no wholesale reset — next to a
// properly waived high-water mark.
package statfix

// Stats mirrors the shape of core.Stats for the fixture. There is no
// `= Stats{}` reset anywhere in the package — finding at this decl.
type Stats struct {
	// Good is subtracted — no finding.
	Good int64
	// Missing is not subtracted — finding.
	Missing int64
	// Hidden is subtracted but json-omitted — finding.
	Hidden int64 `json:"-"`
	//lint:allow stats fixture high-water mark, deliberately not subtracted
	Waived int64
	// Depth's type hides unexported state with no JSON round-trip —
	// finding.
	Depth hist
}

// hist hides its counts.
type hist struct {
	counts []int
}

func (s *Stats) subtract(base *Stats) {
	s.Good -= base.Good
	s.Hidden -= base.Hidden
	s.Depth = base.Depth
}
