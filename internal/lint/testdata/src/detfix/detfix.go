// Package detfix seeds determinism violations for the analyzer's own
// test: wall-clock reads, the global random source, a goroutine, and
// map ranges that leak iteration order — next to the sanctioned
// shapes, which must stay finding-free.
package detfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock twice — two findings.
func Clock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// GlobalRand draws from the global source — one finding.
func GlobalRand() int {
	return rand.Intn(10)
}

// SeededRand injects a seeded source — sanctioned, no findings.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Spawn starts a goroutine — one finding.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// SumInOrder writes an outer accumulator from a map range — one
// finding (float addition makes the sum order-dependent).
func SumInOrder(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// PrintInOrder emits output from a map range — one finding.
func PrintInOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// SortedKeys collects keys then sorts — the sanctioned idiom, no
// findings.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Waived tries to pragma away a determinism finding; the pragma itself
// must be reported and the finding must still fire.
func Waived() int64 {
	//lint:allow determinism this waiver must be rejected
	return time.Now().UnixNano()
}
