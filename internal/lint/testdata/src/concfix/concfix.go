// Package concfix seeds concurrency-discipline violations: an
// unguarded read of a mutex-guarded field, a plain touch of an atomic
// field, a mixed plain/atomic access, and goroutines with no tracked
// shutdown path — next to the sanctioned shapes (defer-unlocked reads,
// atomic methods, WaitGroup/quit-channel/context goroutines).
package concfix

import (
	"context"
	"sync"
	"sync/atomic"
)

// counterBox shares state three ways: n under mu, hits through
// atomic.Int64 methods, raw through sync/atomic functions.
type counterBox struct {
	mu   sync.Mutex
	n    int
	hits atomic.Int64
	raw  int64
}

// bump writes n under the lock — this is what infers the guard.
func (b *counterBox) bump() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// peek reads n without the lock — finding.
func (b *counterBox) peek() int {
	return b.n
}

// good holds the lock to return — clean.
func (b *counterBox) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// count goes through the atomic's methods — clean.
func (b *counterBox) count() int64 {
	return b.hits.Load()
}

// leak hands out the atomic field plainly — finding.
func (b *counterBox) leak() *atomic.Int64 {
	return &b.hits
}

// addRaw updates raw through sync/atomic — this blesses the field.
func (b *counterBox) addRaw() {
	atomic.AddInt64(&b.raw, 1)
}

// rawPlain reads raw plainly after addRaw blessed it — finding.
func (b *counterBox) rawPlain() int64 {
	return b.raw
}

// spawnBad starts a goroutine with no shutdown path — finding.
func spawnBad() {
	go func() {
		for {
		}
	}()
}

// spawnGood ties the goroutine to a WaitGroup — clean.
func spawnGood(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// spawnQuit parks the goroutine on a quit channel — clean.
func spawnQuit(quit chan struct{}) {
	go func() {
		<-quit
	}()
}

func worker(ctx context.Context) { <-ctx.Done() }

// spawnCtx hands the callee a context — clean.
func spawnCtx(ctx context.Context) {
	go worker(ctx)
}

func helper() {}

// spawnNamed calls a function with no context in sight — finding.
func spawnNamed() {
	go helper()
}
