// Package snapfix seeds snapshot-completeness violations: a field the
// State/RestoreState pair never touches, a restore with no capture, a
// capture with no restore, and two stale manifest entries (one for a
// field the pair in fact handles, one for a field that does not exist)
// — next to a fully handled field and a properly waived scratch buffer.
package snapfix

// widgetState is the serializable snapshot carrier; its own fields are
// not audited (it declares no method pair).
type widgetState struct {
	Table []uint64
	Clock uint64
	Marks []uint8
}

// widget is the audited struct: it declares both State and
// RestoreState.
type widget struct {
	// table is captured and restored — clean.
	table []uint64
	// clock is captured and restored, but the test manifest still
	// waives it — stale-waiver finding here.
	clock uint64
	// seed is neither captured nor restored — finding.
	seed uint64
	// epoch is restored (zeroed) but never captured — finding.
	epoch uint64
	// marks is captured but never restored — finding.
	marks []uint8
	// scratch is neither, and waived with a reason — clean.
	scratch []int
}

func (w *widget) State() widgetState {
	return widgetState{
		Table: append([]uint64(nil), w.table...),
		Clock: w.clock,
		Marks: append([]uint8(nil), w.marks...),
	}
}

func (w *widget) RestoreState(st widgetState) {
	w.table = append(w.table[:0], st.Table...)
	w.clock = st.Clock
	w.epoch = 0
}

// use keeps the unexercised fields referenced so the fixture compiles
// without vet noise.
func (w *widget) use() uint64 {
	w.scratch = w.scratch[:0]
	return w.seed
}
