package lint

// This file is the snapshot manifest: the reviewed list of struct
// fields deliberately absent from their checkpoint pair, each with the
// reason. The SnapshotComplete analyzer reports every unlisted gap,
// and — like the escape gate — every stale entry: a waiver for a field
// the pair in fact handles, or for a field that no longer exists, is a
// finding, so the manifest cannot drift from the code.
//
// Keys are "<package>.<Type>.<field>". Three reasons recur:
//
//   - geometry/config: rebuilt by the constructor from the machine
//     Config a checkpoint travels with (masks, shifts, pool sizes);
//   - scratch: reusable buffers that are empty at every cycle boundary
//     a snapshot can be taken on;
//   - harness wiring: observer/checkpoint hooks that belong to the run
//     harness, not the simulated state (restore re-attaches them).
var snapshotWaivers = map[string]string{
	// cache: masks and shifts derive from Config geometry; the
	// hierarchy's epoch length derives from the worst-case fill path.
	"cache.Cache.setShift":     "derived from Config geometry by New; a checkpoint pairs state with the rebuilding Config",
	"cache.Cache.setMask":      "derived from Config geometry by New; a checkpoint pairs state with the rebuilding Config",
	"cache.Hierarchy.cfg":      "static configuration; NewHierarchy rebuilds the identical value from the machine Config",
	"cache.Hierarchy.epochLen": "derived from the configuration's worst-case fill latency; never mutated after construction",

	// bpred: configuration and the derived history mask.
	"bpred.Predictor.cfg":      "static configuration (RestoreState only reads it for shape checks); rebuilt by New",
	"bpred.Predictor.histMask": "derived from the configured history length by New; never mutated after construction",

	// prefetch/vpred/smpred: configuration and index/tag masks.
	"prefetch.Prefetcher.cfg":      "static configuration; rebuilt by New from the machine Config",
	"prefetch.Prefetcher.idxMask":  "derived from Config table geometry by New; never mutated after construction",
	"prefetch.Prefetcher.tagMask":  "derived from Config table geometry by New; never mutated after construction",
	"prefetch.Prefetcher.markMask": "derived from Config table geometry by New; never mutated after construction",
	"vpred.Predictor.cfg":          "static configuration; rebuilt by New from the machine Config",
	"vpred.Predictor.idxMask":      "derived from Config table geometry by New; never mutated after construction",
	"vpred.Predictor.tagMask":      "derived from Config table geometry by New; never mutated after construction",
	"smpred.Predictor.cfg":         "static configuration; rebuilt by New from the machine Config",
	"smpred.Predictor.idxMask":     "derived from Config table geometry by New; never mutated after construction",
	"smpred.Predictor.tagMask":     "derived from Config table geometry by New; never mutated after construction",

	// token: the pool size is configuration (RestoreState only reads it
	// for shape checks).
	"token.Allocator.n": "pool size is configuration; a checkpoint pairs state with the Config that rebuilds the pool",

	// core policies: the LoadDelay table geometry and latency cap
	// derive from the SMPred knobs at reset.
	"core.loaddelayPolicy.idxMask": "derived from SMPred geometry at reset; never mutated during a run",
	"core.loaddelayPolicy.idxBits": "derived from SMPred geometry at reset; never mutated during a run",
	"core.loaddelayPolicy.tagMask": "derived from SMPred geometry at reset; never mutated during a run",
	"core.loaddelayPolicy.maxLat":  "derived from the memory-path worst case at reset; never mutated during a run",

	// core.Machine: configuration and derived shapes are rebuilt by
	// init from the validated restore Config; the stream is re-created
	// and fast-forwarded to the SrcPos cursor; scratch worklists are
	// empty at the cycle boundaries snapshots are taken on; observer
	// and checkpoint hooks belong to the harness, not the run.
	"core.Machine.cfg":          "Restore validates the caller's Config against the snapshot's and hands it to init; the field itself is rebuilt, not copied",
	"core.Machine.src":          "streams are not serializable; Restore rebuilds position by fast-forwarding a fresh stream to the SrcPos cursor",
	"core.Machine.wheelMask":    "derived from the config's event horizon by init; never mutated during a run",
	"core.Machine.killStack":    "reusable DFS scratch, always empty between cycles where snapshots are taken",
	"core.Machine.refetchInsts": "reusable refetch scratch, always empty between cycles where snapshots are taken",
	"core.Machine.sink":         "event-sink attachment is harness wiring (tooling), not simulated state; EvCount carries the deterministic cursor",
	"core.Machine.ckptEvery":    "checkpoint cadence is harness wiring; SetCheckpoints re-arms it on the restored machine",
	"core.Machine.nextCkpt":     "checkpoint cadence is harness wiring; SetCheckpoints re-arms it on the restored machine",
	"core.Machine.ckptFn":       "checkpoint callback is harness wiring; functions are not serializable",
	"core.Machine.mon":          "monitor state is not checkpointed by contract; Restore rejects monitored configurations outright",
	"core.Machine.hashTarget":   "derived from Warmup+MaxInsts by init (MaxInsts may legitimately differ across a restore)",
	"core.Machine.ran":          "single-use guard; Restore clears it so the restored machine can run, nothing to capture",
}

// DefaultSnapshotComplete audits every checkpoint pair in the module:
// the six substrate State/RestoreState pairs, the policySnapshotter
// implementations, and the machine's own snapshot/Restore.
func DefaultSnapshotComplete(module string) *SnapshotComplete {
	in := func(p string) string { return module + "/internal/" + p }
	return &SnapshotComplete{
		Pairs: []SnapshotPair{
			{PkgPath: in("cache"), State: "State", Restore: "RestoreState"},
			{PkgPath: in("bpred"), State: "State", Restore: "RestoreState"},
			{PkgPath: in("prefetch"), State: "State", Restore: "RestoreState"},
			{PkgPath: in("token"), State: "State", Restore: "RestoreState"},
			{PkgPath: in("vpred"), State: "State", Restore: "RestoreState"},
			{PkgPath: in("smpred"), State: "State", Restore: "RestoreState"},
			{PkgPath: in("core"), State: "snapshotState", Restore: "restoreState"},
			{PkgPath: in("core"), State: "snapshot", Restore: "Restore"},
		},
		Waivers: snapshotWaivers,
	}
}
