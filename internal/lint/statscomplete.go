package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// StatsComplete proves the measurement plumbing keeps up with the
// Stats struct: every exported counter must be wiped between runs
// (the wholesale `stats = Stats{}` reset), accounted for in the warmup
// subtraction (or explicitly waived on its declaration line — high
// -water marks and whole-run digests are deliberately not subtracted),
// and reachable from JSON/checkpoint serialization (no json:"-",
// and struct-typed fields with unexported state must round-trip via
// MarshalJSON/UnmarshalJSON). The journal's checkpoint entry must
// carry the Stats type wholesale.
type StatsComplete struct {
	// PkgPath holds the Stats and PolicyStats structs.
	PkgPath string
	// JournalPath holds the checkpoint serialization; "" skips that
	// check (fixtures).
	JournalPath string
	// Required pins counters by owning struct name: each listed field
	// must exist (exported) on that struct, so a refactor cannot drop a
	// counter the paper's tables are built from. Missing entries are
	// findings on the struct declaration.
	Required map[string][]string
}

// DefaultStatsComplete covers core.Stats and the sim journal, and pins
// the frontend and LoadDelay counters the experiment tables consume.
func DefaultStatsComplete(module string) *StatsComplete {
	return &StatsComplete{
		PkgPath:     module + "/internal/core",
		JournalPath: module + "/internal/sim",
		Required: map[string][]string{
			"Stats": {
				"BranchLookups", "BranchMispredicts",
				"PrefetchIssued", "PrefetchUseful", "PrefetchLate",
			},
			"PolicyStats": {
				"LoadDelayPredicted", "LoadDelayCold", "LoadDelayUnder",
			},
		},
	}
}

func (*StatsComplete) Name() string { return "stats" }

func (s *StatsComplete) Check(u *Unit) error {
	p := u.Pkg(s.PkgPath)
	if p == nil {
		return nil
	}
	statsObj := structType(p, "Stats")
	if statsObj == nil {
		return nil
	}
	s.checkWholesaleReset(u, p)
	s.checkStruct(u, p, "Stats")
	s.checkStruct(u, p, "PolicyStats")
	if s.JournalPath != "" {
		s.checkJournal(u, p)
	}
	return nil
}

// structType resolves a package-scope struct declaration.
func structType(p *Package, name string) *types.TypeName {
	tn, ok := p.Types.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return tn
}

// checkWholesaleReset requires an assignment of the zero Stats
// composite somewhere in the package — the one reset shape that cannot
// miss a newly added field.
func (s *StatsComplete) checkWholesaleReset(u *Unit, p *Package) {
	found := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || found || len(as.Rhs) != 1 {
				return !found
			}
			cl, ok := as.Rhs[0].(*ast.CompositeLit)
			if !ok || len(cl.Elts) != 0 {
				return true
			}
			if id, ok := cl.Type.(*ast.Ident); ok && id.Name == "Stats" {
				found = true
			}
			return true
		})
	}
	if !found {
		tn := structType(p, "Stats")
		u.Report(s.Name(), tn.Pos(),
			"no wholesale `= Stats{}` reset in %s; per-field resets silently miss new counters", p.Types.Name())
	}
}

// checkStruct audits one stats struct: subtraction coverage and
// serialization reachability for every exported field.
func (s *StatsComplete) checkStruct(u *Unit, p *Package, name string) {
	tn := structType(p, name)
	if tn == nil {
		return
	}
	st := tn.Type().Underlying().(*types.Struct)
	subtracted := subtractMentions(p, tn.Type())
	present := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		present[st.Field(i).Name()] = true
	}
	for _, want := range s.Required[name] {
		if !present[want] {
			u.Report(s.Name(), tn.Pos(),
				"required counter %s.%s is missing; the experiment tables consume it, and it must stay journal-reachable and JSON round-trippable", name, want)
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() {
			continue
		}
		if tag := reflect.StructTag(st.Tag(i)); jsonOmitted(tag) {
			u.Report(s.Name(), field.Pos(),
				"%s.%s is hidden from serialization (json:\"-\"); checkpointed runs would silently drop it", name, field.Name())
		}
		if !subtracted[field.Name()] {
			u.Report(s.Name(), field.Pos(),
				"%s.%s is not handled by (*%s).subtract; subtract it for warmup accounting, or waive with //lint:allow stats <why>", name, field.Name(), name)
		}
		s.checkRoundTrip(u, name, field)
	}
}

// subtractMentions collects every field name the struct's subtract
// method touches (including nested delegation like Policy.subtract).
func subtractMentions(p *Package, recv types.Type) map[string]bool {
	out := make(map[string]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "subtract" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			rt := p.Info.Defs[fd.Name].(*types.Func).Type().(*types.Signature).Recv().Type()
			if ptr, ok := rt.(*types.Pointer); ok {
				rt = ptr.Elem()
			}
			if rt != recv {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					out[sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	return out
}

// checkRoundTrip requires struct-typed fields that hide unexported
// state to declare their own JSON round-trip, or a marshaled
// checkpoint would lose them.
func (s *StatsComplete) checkRoundTrip(u *Unit, owner string, field *types.Var) {
	named, ok := field.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	hidden := false
	for i := 0; i < st.NumFields(); i++ {
		if !st.Field(i).Exported() {
			hidden = true
			break
		}
	}
	if !hidden {
		return
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	if ms.Lookup(nil, "MarshalJSON") == nil || ms.Lookup(nil, "UnmarshalJSON") == nil {
		u.Report(s.Name(), field.Pos(),
			"%s.%s has unexported state in %s but no MarshalJSON/UnmarshalJSON pair; checkpoints would lose it", owner, field.Name(), named.Obj().Name())
	}
}

// checkJournal requires the checkpoint layer to serialize the Stats
// type wholesale: some struct in the journal package must carry a
// (possibly pointered) Stats field that is not json-omitted.
func (s *StatsComplete) checkJournal(u *Unit, core *Package) {
	jp := u.Pkg(s.JournalPath)
	if jp == nil {
		return
	}
	statsType := structType(core, "Stats").Type()
	scope := jp.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			t := st.Field(i).Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if t == statsType && !jsonOmitted(reflect.StructTag(st.Tag(i))) {
				return // found the wholesale carrier
			}
		}
	}
	u.Report(s.Name(), jp.Files[0].Pos(),
		"no struct in %s serializes core.Stats wholesale; the checkpoint journal must carry the full Stats", s.JournalPath)
}

// jsonOmitted reports whether a struct tag hides the field from
// encoding/json.
func jsonOmitted(tag reflect.StructTag) bool {
	v, ok := tag.Lookup("json")
	return ok && strings.Split(v, ",")[0] == "-"
}
