package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Escape is the hot-path allocation gate: it drives the real compiler
// (`go build -gcflags=-m -m`) over one package, parses the escape
// analysis it prints, and fails if any diagnosed heap allocation sits
// inside a function on the hot-path manifest. The benchmark suite
// measures 0 allocs/op empirically; this rule proves the same property
// from the compiler's own escape analysis, per function, at lint time
// — and names the function when someone breaks it.
//
// Allocations on cold sinks inside hot functions are exempt: the
// arguments of panic(...) and monitor.failf(...) box into interfaces
// (and so "escape"), but those calls execute only on the
// invariant-violation path, never in a clean run.
//
// This rule accepts no allow pragmas — see noPragmaRules.
type Escape struct {
	// PkgPath is the import path the gate compiles and judges.
	PkgPath string
	// Manifest computes the hot function set for the package; nil means
	// the core manifest (machine cycle loop, policy hooks, monitors).
	Manifest func(u *Unit, p *Package) map[string]bool
	// ColdSinks are the call shapes whose argument allocations are
	// exempt: "panic" matches the builtin, ".failf" any method of that
	// name. Nil means the default pair.
	ColdSinks []string
}

// DefaultEscape gates the pipeline core.
func DefaultEscape(module string) *Escape {
	return &Escape{PkgPath: module + "/internal/core"}
}

func (*Escape) Name() string { return "escape" }

func (e *Escape) Check(u *Unit) error {
	p := u.Pkg(e.PkgPath)
	if p == nil {
		return nil // package not in this run's pattern set
	}
	manifest := coreManifest
	if e.Manifest != nil {
		manifest = e.Manifest
	}
	hot := manifest(u, p)

	diags, err := e.compile(u, p)
	if err != nil {
		return err
	}

	funcs := indexFuncs(u.Fset, p)
	sinks := coldSinkRanges(u.Fset, p, e.coldSinks())
	seen := make(map[string]bool)
	for _, d := range diags {
		fd := enclosingFunc(funcs, d.file, d.line)
		if fd == nil || !hot[funcKey(fd)] {
			continue
		}
		if inColdSink(sinks, d) {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", d.file, d.line, d.col)
		if seen[key] {
			continue
		}
		seen[key] = true
		u.Report(e.Name(), posFor(u.Fset, p, d),
			"hot function %s heap-allocates: %s (move the allocation to reset, or pool it)", funcKey(fd), d.msg)
	}
	return nil
}

func (e *Escape) coldSinks() []string {
	if e.ColdSinks != nil {
		return e.ColdSinks
	}
	return []string{"panic", ".failf"}
}

// escDiag is one compiler escape diagnostic.
type escDiag struct {
	file      string // absolute path
	line, col int
	msg       string
}

// compile runs `go build -gcflags=-m -m` on the gated package (the Go
// build cache replays diagnostics on cache hits, so repeated lint runs
// stay cheap) and returns the heap-allocation diagnostics.
func (e *Escape) compile(u *Unit, p *Package) ([]escDiag, error) {
	rel, err := filepath.Rel(u.Root, p.Dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./"+filepath.ToSlash(rel))
	cmd.Dir = u.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m -m %s: %w\n%s", p.Path, err, out)
	}
	var diags []escDiag
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t") {
			continue // explanation/flow continuation lines
		}
		d, ok := parseDiag(line)
		if !ok {
			continue
		}
		if !strings.Contains(d.msg, "escapes to heap") && !strings.HasPrefix(d.msg, "moved to heap") {
			continue
		}
		// A string (or other) constant "escaping" into an interface is
		// static read-only data to the compiler — panic("msg") in an
		// inlined callee is the usual shape — and allocates nothing at
		// run time, so it is not a gate violation.
		if strings.HasPrefix(d.msg, `"`) && strings.Contains(d.msg, `" escapes to heap`) {
			continue
		}
		if !filepath.IsAbs(d.file) {
			d.file = filepath.Join(u.Root, d.file)
		}
		diags = append(diags, d)
	}
	return diags, sc.Err()
}

// parseDiag splits "file.go:12:34: message".
func parseDiag(s string) (escDiag, bool) {
	rest := s
	var parts [3]string
	for i := 0; i < 3; i++ {
		j := strings.Index(rest, ":")
		if j < 0 {
			return escDiag{}, false
		}
		parts[i], rest = rest[:j], rest[j+1:]
	}
	line, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || !strings.HasSuffix(parts[0], ".go") {
		return escDiag{}, false
	}
	msg := strings.TrimSuffix(strings.TrimSpace(rest), ":")
	return escDiag{file: parts[0], line: line, col: col, msg: msg}, true
}

// funcExtent is one declared function's file/line range.
type funcExtent struct {
	file       string
	start, end int
	decl       *ast.FuncDecl
}

func indexFuncs(fset *token.FileSet, p *Package) []funcExtent {
	var out []funcExtent
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.End())
			out = append(out, funcExtent{file: start.Filename, start: start.Line, end: end.Line, decl: fd})
		}
	}
	return out
}

func enclosingFunc(funcs []funcExtent, file string, line int) *ast.FuncDecl {
	for i := range funcs {
		fe := &funcs[i]
		if fe.file == file && fe.start <= line && line <= fe.end {
			return fe.decl
		}
	}
	return nil
}

// sinkRange is the source extent of one cold-sink call.
type sinkRange struct {
	file              string
	fromLine, fromCol int
	toLine, toCol     int
}

// coldSinkRanges collects the extents of every cold-sink call in the
// package, so diagnostics raised by their arguments can be exempted.
func coldSinkRanges(fset *token.FileSet, p *Package, sinks []string) []sinkRange {
	var out []sinkRange
	match := func(fun ast.Expr) bool {
		for _, s := range sinks {
			if name, isMethod := strings.CutPrefix(s, "."); isMethod {
				if sel, ok := fun.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
					return true
				}
			} else if id, ok := fun.(*ast.Ident); ok && id.Name == s {
				return true
			}
		}
		return false
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !match(call.Fun) {
				return true
			}
			from := fset.Position(call.Pos())
			to := fset.Position(call.End())
			out = append(out, sinkRange{
				file: from.Filename, fromLine: from.Line, fromCol: from.Column,
				toLine: to.Line, toCol: to.Column,
			})
			return true
		})
	}
	return out
}

func inColdSink(sinks []sinkRange, d escDiag) bool {
	for _, s := range sinks {
		if s.file != d.file {
			continue
		}
		afterStart := d.line > s.fromLine || (d.line == s.fromLine && d.col >= s.fromCol)
		beforeEnd := d.line < s.toLine || (d.line == s.toLine && d.col <= s.toCol)
		if afterStart && beforeEnd {
			return true
		}
	}
	return false
}

// posFor converts a diagnostic's file/line/col back into a token.Pos
// within the loaded package (for uniform Report output); diagnostics
// in files we did not parse fall back to the package's first file.
func posFor(fset *token.FileSet, p *Package, d escDiag) token.Pos {
	for _, f := range p.Files {
		tf := fset.File(f.Pos())
		if tf == nil || tf.Name() != d.file {
			continue
		}
		if d.line <= tf.LineCount() {
			return tf.LineStart(d.line) + token.Pos(d.col-1)
		}
	}
	return p.Files[0].Pos()
}
