package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// module resolves the module path once; the analyzers scope their
// rules by it.
func module(t testing.TB) string {
	t.Helper()
	m, err := lint.ModulePath(".")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fixturePkg returns the import path of one seeded-violation fixture.
func fixturePkg(t testing.TB, name string) string {
	return module(t) + "/internal/lint/testdata/src/" + name
}

// runFixture lints one fixture package with the given analyzers.
func runFixture(t *testing.T, name string, analyzers ...lint.Analyzer) []lint.Finding {
	t.Helper()
	findings, err := lint.Run(".", []string{"./internal/lint/testdata/src/" + name}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// golden compares findings against testdata/<name>.golden; -update
// rewrites the file.
func golden(t *testing.T, name string, findings []lint.Finding) {
	t.Helper()
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	got := b.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// Each analyzer must catch exactly the violations its fixture seeds —
// no more (the sanctioned shapes next to them stay clean), no fewer.

func TestDeterminismFixture(t *testing.T) {
	findings := runFixture(t, "detfix",
		&lint.Determinism{Paths: []string{fixturePkg(t, "detfix")}})
	golden(t, "detfix", findings)
}

func TestEscapeFixture(t *testing.T) {
	findings := runFixture(t, "escapefix", &lint.Escape{
		PkgPath: fixturePkg(t, "escapefix"),
		// The fixture manifest: every function named hot*.
		Manifest: func(u *lint.Unit, p *lint.Package) map[string]bool {
			hot := make(map[string]bool)
			for _, name := range p.Types.Scope().Names() {
				if strings.HasPrefix(name, "hot") {
					hot[name] = true
				}
			}
			return hot
		},
	})
	golden(t, "escapefix", findings)
}

func TestRegistryFixture(t *testing.T) {
	findings := runFixture(t, "regfix",
		&lint.Registry{PkgPath: fixturePkg(t, "regfix")})
	golden(t, "regfix", findings)
}

func TestStatsFixture(t *testing.T) {
	findings := runFixture(t, "statfix",
		&lint.StatsComplete{PkgPath: fixturePkg(t, "statfix")})
	golden(t, "statfix", findings)
}

func TestContextFixture(t *testing.T) {
	findings := runFixture(t, "ctxfix",
		&lint.ContextHygiene{Paths: []string{fixturePkg(t, "ctxfix")}})
	golden(t, "ctxfix", findings)
}

// TestRepoIsClean is the meta-test: the live tree must pass the full
// production suite with zero findings — and therefore with zero
// pragmas on the determinism and escape rules, since those waivers are
// themselves findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is slow under -short")
	}
	findings, err := lint.Run(".", []string{"./..."}, lint.Default(module(t)))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// BenchmarkRepolint times one full-suite run over the module; CI
// compares it against testdata/bench_baseline.txt via benchguard so
// the lint gate's wall-clock cost stays visible and bounded.
func BenchmarkRepolint(b *testing.B) {
	mod := module(b)
	for i := 0; i < b.N; i++ {
		findings, err := lint.Run(".", []string{"./..."}, lint.Default(mod))
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("tree not clean: %v", findings[0])
		}
	}
}
