package lint_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// module resolves the module path once; the analyzers scope their
// rules by it.
func module(t testing.TB) string {
	t.Helper()
	m, err := lint.ModulePath(".")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fixturePkg returns the import path of one seeded-violation fixture.
func fixturePkg(t testing.TB, name string) string {
	return module(t) + "/internal/lint/testdata/src/" + name
}

// runFixture lints one fixture package with the given analyzers.
func runFixture(t *testing.T, name string, analyzers ...lint.Analyzer) []lint.Finding {
	t.Helper()
	findings, err := lint.Run(".", []string{"./internal/lint/testdata/src/" + name}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// golden compares findings against testdata/<name>.golden; -update
// rewrites the file.
func golden(t *testing.T, name string, findings []lint.Finding) {
	t.Helper()
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	got := b.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// Each analyzer must catch exactly the violations its fixture seeds —
// no more (the sanctioned shapes next to them stay clean), no fewer.

func TestDeterminismFixture(t *testing.T) {
	findings := runFixture(t, "detfix",
		&lint.Determinism{Paths: []string{fixturePkg(t, "detfix")}})
	golden(t, "detfix", findings)
}

func TestEscapeFixture(t *testing.T) {
	findings := runFixture(t, "escapefix", &lint.Escape{
		PkgPath: fixturePkg(t, "escapefix"),
		// The fixture manifest: every function named hot*.
		Manifest: func(u *lint.Unit, p *lint.Package) map[string]bool {
			hot := make(map[string]bool)
			for _, name := range p.Types.Scope().Names() {
				if strings.HasPrefix(name, "hot") {
					hot[name] = true
				}
			}
			return hot
		},
	})
	golden(t, "escapefix", findings)
}

func TestRegistryFixture(t *testing.T) {
	findings := runFixture(t, "regfix",
		&lint.Registry{PkgPath: fixturePkg(t, "regfix")})
	golden(t, "regfix", findings)
}

func TestStatsFixture(t *testing.T) {
	findings := runFixture(t, "statfix", &lint.StatsComplete{
		PkgPath: fixturePkg(t, "statfix"),
		// Gone does not exist on the fixture Stats — required-counter
		// finding; Good does, so it stays silent.
		Required: map[string][]string{"Stats": {"Good", "Gone"}},
	})
	golden(t, "statfix", findings)
}

func TestContextFixture(t *testing.T) {
	findings := runFixture(t, "ctxfix",
		&lint.ContextHygiene{Paths: []string{fixturePkg(t, "ctxfix")}})
	golden(t, "ctxfix", findings)
}

func TestSnapshotFixture(t *testing.T) {
	pkg := fixturePkg(t, "snapfix")
	findings := runFixture(t, "snapfix", &lint.SnapshotComplete{
		Pairs: []lint.SnapshotPair{{PkgPath: pkg, State: "State", Restore: "RestoreState"}},
		Waivers: map[string]string{
			// Sanctioned gap — silent.
			"snapfix.widget.scratch": "fixture scratch buffer, empty at every snapshot boundary",
			// Both methods handle clock — stale-waiver finding.
			"snapfix.widget.clock": "stale on purpose: the pair handles this field",
			// No such field — stale-entry finding.
			"snapfix.widget.missing": "stale on purpose: the field does not exist",
		},
	})
	golden(t, "snapfix", findings)
}

func TestWireAPIFixture(t *testing.T) {
	findings := runFixture(t, "apifix", &lint.WireAPI{
		PkgPath:      fixturePkg(t, "apifix"),
		ManifestPath: "internal/lint/testdata/apifix_manifest.json",
	})
	golden(t, "apifix", findings)
}

func TestConcurrencyFixture(t *testing.T) {
	findings := runFixture(t, "concfix",
		&lint.Concurrency{Paths: []string{fixturePkg(t, "concfix")}})
	golden(t, "concfix", findings)
}

// TestWaiverInventory pins the `repolint -waivers` surface: the
// statfix fixture's one reasoned pragma must come back with its
// position, rule and reason intact.
func TestWaiverInventory(t *testing.T) {
	waivers, err := lint.Waivers(".", []string{"./internal/lint/testdata/src/statfix"})
	if err != nil {
		t.Fatal(err)
	}
	if len(waivers) != 1 {
		t.Fatalf("got %d waivers, want 1: %v", len(waivers), waivers)
	}
	w := waivers[0]
	if w.File != "internal/lint/testdata/src/statfix/statfix.go" || w.Rule != "stats" {
		t.Errorf("waiver = %+v", w)
	}
	if w.Reason != "fixture high-water mark, deliberately not subtracted" {
		t.Errorf("reason = %q", w.Reason)
	}
	if w.Line == 0 {
		t.Errorf("waiver has no line: %+v", w)
	}
}

// TestJSONSchema pins the machine-readable output CI consumes: the
// JSON encodings of a Finding and a Waiver are part of repolint's
// interface, so a renamed key must show up as a golden diff here, not
// as a broken pipeline.
func TestJSONSchema(t *testing.T) {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode([]lint.Finding{{
		Rule: "snapshot", File: "internal/core/snapshot.go", Line: 42, Col: 7,
		Msg: "example finding",
	}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode([]lint.Waiver{{
		File: "internal/sim/engine.go", Line: 7, Rule: "context",
		Reason: "example waiver",
	}}); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "json_schema.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("JSON schema diverges from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestRepoIsClean is the meta-test: the live tree must pass the full
// production suite with zero findings — and therefore with zero
// pragmas on the determinism, escape, snapshot and wireapi rules,
// since those waivers are themselves findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is slow under -short")
	}
	findings, err := lint.Run(".", []string{"./..."}, lint.Default(module(t)))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// BenchmarkRepolint times one full-suite run over the module; CI
// compares it against testdata/bench_baseline.txt via benchguard so
// the lint gate's wall-clock cost stays visible and bounded.
func BenchmarkRepolint(b *testing.B) {
	mod := module(b)
	for i := 0; i < b.N; i++ {
		findings, err := lint.Run(".", []string{"./..."}, lint.Default(mod))
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("tree not clean: %v", findings[0])
		}
	}
}
