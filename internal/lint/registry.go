package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Registry enforces the scheme and checker registry discipline on the
// pipeline core: every policy_*.go file registers exactly one scheme
// from its init (one file, one scheme — the file name is the index),
// registration happens nowhere else, every invariant checker type is
// registered, and no code branches on scheme identity — the registry's
// capability bits and the policy hooks are the only sanctioned
// dispatch (DESIGN.md §8).
type Registry struct {
	// PkgPath is the package holding the registries.
	PkgPath string
}

// DefaultRegistry covers the pipeline core.
func DefaultRegistry(module string) *Registry {
	return &Registry{PkgPath: module + "/internal/core"}
}

func (*Registry) Name() string { return "registry" }

func (r *Registry) Check(u *Unit) error {
	p := u.Pkg(r.PkgPath)
	if p == nil {
		return nil
	}
	r.checkPolicyFiles(u, p)
	r.checkCheckers(u, p)
	r.checkSchemeBranches(u, p)
	return nil
}

// checkPolicyFiles verifies the one-file-one-scheme layout: each
// policy_*.go contains exactly one registerPolicy call, inside init,
// and no other file calls registerPolicy at all.
func (r *Registry) checkPolicyFiles(u *Unit, p *Package) {
	for _, f := range p.Files {
		base := filepath.Base(u.Fset.Position(f.Pos()).Filename)
		isPolicyFile := strings.HasPrefix(base, "policy_") && strings.HasSuffix(base, ".go")
		var calls []*ast.CallExpr
		var inInit int
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "registerPolicy" {
					calls = append(calls, call)
					if fd.Name.Name == "init" && fd.Recv == nil {
						inInit++
					}
				}
				return true
			})
		}
		switch {
		case !isPolicyFile && len(calls) > 0:
			u.Report(r.Name(), calls[0].Pos(),
				"registerPolicy call outside a policy_*.go file; one scheme lives in one policy file")
		case isPolicyFile && len(calls) == 0:
			u.Report(r.Name(), f.Pos(),
				"%s registers no scheme; a policy file must register exactly one", base)
		case isPolicyFile && len(calls) > 1:
			u.Report(r.Name(), calls[1].Pos(),
				"%s registers %d schemes; a policy file must register exactly one", base, len(calls))
		case isPolicyFile && inInit != len(calls):
			u.Report(r.Name(), calls[0].Pos(),
				"registerPolicy must be called from the file's init function")
		}
	}
}

// checkCheckers verifies every type implementing the checker interface
// is registered via registerChecker — an unregistered monitor compiles
// fine and silently never runs.
func (r *Registry) checkCheckers(u *Unit, p *Package) {
	iface := ifaceType(p, "checker")
	if iface == nil {
		return
	}
	// Types mentioned inside registerChecker(...) calls.
	registered := make(map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "registerChecker" {
				return true
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if cl, ok := m.(*ast.CompositeLit); ok {
					if id, ok := cl.Type.(*ast.Ident); ok {
						registered[id.Name] = true
					}
				}
				return true
			})
			return true
		})
	}
	scope := p.Types.Scope()
	var names []string
	for _, name := range scope.Names() {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || name == "noopChecker" {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		if types.Implements(types.NewPointer(named), iface) && !registered[name] {
			u.Report(r.Name(), tn.Pos(),
				"checker %s implements the monitor interface but is never registered (add registerChecker in check_monitors.go)", name)
		}
	}
}

// checkSchemeBranches flags scheme-identity dispatch outside the
// registry: ==/!= against a scheme constant and switches over a Scheme
// value. Capability questions go through policyEntry bits or policy
// hooks, so the machine core stays scheme-agnostic.
func (r *Registry) checkSchemeBranches(u *Unit, p *Package) {
	schemeType := p.Types.Scope().Lookup("Scheme")
	if schemeType == nil {
		return
	}
	isSchemeConst := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		c, ok := p.Info.Uses[id].(*types.Const)
		// numSchemes is the registry's own bound, not a scheme identity.
		return ok && c.Type() == schemeType.Type() && c.Name() != "numSchemes"
	}
	for _, f := range p.Files {
		base := filepath.Base(u.Fset.Position(f.Pos()).Filename)
		if base == "policy.go" {
			continue // the registry itself
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) && (isSchemeConst(n.X) || isSchemeConst(n.Y)) {
					u.Report(r.Name(), n.Pos(),
						"branch on scheme identity; dispatch through a replayPolicy hook or a policyEntry capability bit instead")
				}
			case *ast.SwitchStmt:
				if n.Tag != nil {
					if t := p.Info.TypeOf(n.Tag); t != nil && t == schemeType.Type() {
						u.Report(r.Name(), n.Pos(),
							"switch over Scheme; dispatch through a replayPolicy hook or a policyEntry capability bit instead")
					}
				}
			}
			return true
		})
	}
}
