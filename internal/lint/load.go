package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the non-test syntax
// (repolint proves invariants about shipped code; test files get their
// discipline from the test runner itself) plus the type information
// the analyzers query.
type Package struct {
	// Path is the import path; Dir the absolute directory.
	Path string
	Dir  string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// File returns the syntax of the file with the given base name, or nil.
func (p *Package) File(fset *token.FileSet, base string) *ast.File {
	for _, f := range p.Files {
		if filepath.Base(fset.Position(f.Pos()).Filename) == base {
			return f
		}
	}
	return nil
}

// loader type-checks module packages from source, resolving module
// imports recursively and everything else (the standard library) via
// the stdlib source importer. Results are memoized per import path so
// the shared prefix of the dependency graph is checked once.
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Load builds a Unit: it finds the module root at or above dir,
// expands the patterns ("./..." walks the tree; an explicit directory
// loads just that package, even under testdata), and type-checks every
// matched package from source.
func Load(dir string, patterns []string) (*Unit, error) {
	root, module, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}

	paths, err := expand(root, module, patterns)
	if err != nil {
		return nil, err
	}
	u := &Unit{Root: root, Module: module, Fset: l.fset}
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		u.Pkgs = append(u.Pkgs, p)
	}
	u.collectPragmas()
	return u, nil
}

// ModulePath returns the module path of the module enclosing dir.
func ModulePath(dir string) (string, error) {
	_, module, err := moduleRoot(dir)
	return module, err
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// root directory and module path.
func moduleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod declares no module", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
	}
}

// expand resolves package patterns to import paths, sorted and
// de-duplicated. "./..." (or a "dir/..." form) walks the subtree,
// skipping testdata, vendor and hidden directories; a plain directory
// pattern matches exactly, with no skip list — that is how the test
// fixtures under testdata are loaded deliberately.
func expand(root, module string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		path, err := dirImportPath(root, module, dir)
		if err != nil {
			return err
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, filepath.FromSlash(base))
		}
		if !recursive {
			if hasGoFiles(base) {
				if err := add(base); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("lint: no Go files in %s", base)
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				return add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirImportPath maps a directory under the module root to its import
// path.
func dirImportPath(root, module, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	if abs == root {
		return module, nil
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, root)
	}
	return module + "/" + filepath.ToSlash(rel), nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
