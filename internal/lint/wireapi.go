package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

// APIField is one exported field of a wire type as the manifest pins
// it: the Go name, the fully qualified type, and the json struct tag
// (verbatim, options included; "" when the field has no json tag).
type APIField struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Tag  string `json:"tag"`
}

// APIManifest is the committed picture of the v1 wire surface: every
// exported struct type in the API package with its exported fields,
// sorted by name. encoding/json sorts the type map too, so the bytes
// are deterministic and diff-able.
type APIManifest struct {
	Package string                `json:"package"`
	Types   map[string][]APIField `json:"types"`
}

// WireAPI proves the v1 wire format stays frozen. PR 8's compatibility
// contract — field names, JSON tags and meanings never change; only
// additions are allowed — was guarded by golden fixtures, which only
// fail when a test happens to serialize the changed field. This
// analyzer checks the contract type-by-type against the committed
// manifest: a removed, renamed, retyped or tag-changed field is a
// finding wherever it hides, and an addition is a finding until the
// manifest is regenerated in the same change
// (`go run ./cmd/repolint -write-api-manifest`), which puts the new
// surface in front of review.
type WireAPI struct {
	// PkgPath is the wire API package.
	PkgPath string
	// ManifestPath locates the committed manifest, relative to the
	// module root.
	ManifestPath string
}

// apiManifestPath is where the live tree's manifest is committed.
const apiManifestPath = "internal/lint/api_manifest.json"

// DefaultWireAPI pins repro/internal/api against the committed
// manifest.
func DefaultWireAPI(module string) *WireAPI {
	return &WireAPI{PkgPath: module + "/internal/api", ManifestPath: apiManifestPath}
}

func (*WireAPI) Name() string { return "wireapi" }

func (w *WireAPI) Check(u *Unit) error {
	p := u.Pkg(w.PkgPath)
	if p == nil {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(u.Root, filepath.FromSlash(w.ManifestPath)))
	if err != nil {
		return fmt.Errorf("reading API manifest: %w", err)
	}
	var want APIManifest
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parsing API manifest %s: %w", w.ManifestPath, err)
	}
	got := DeriveAPIManifest(p)

	// pos anchors findings: the field if it exists, else the type, else
	// the package clause.
	pos := func(typeName, fieldName string) token.Pos {
		tn, _ := p.Types.Scope().Lookup(typeName).(*types.TypeName)
		if tn == nil {
			return p.Files[0].Pos()
		}
		if fieldName != "" {
			if st, ok := tn.Type().Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i).Name() == fieldName {
						return st.Field(i).Pos()
					}
				}
			}
		}
		return tn.Pos()
	}

	for _, name := range sortedKeys(want.Types) {
		if _, ok := got.Types[name]; !ok {
			u.Report(w.Name(), pos(name, ""),
				"wire type %s is in the API manifest but not in %s; v1 types are frozen — renaming or removing one breaks deployed clients", name, p.Types.Name())
		}
	}
	for _, name := range sortedKeys(got.Types) {
		gf := got.Types[name]
		wf, ok := want.Types[name]
		if !ok {
			u.Report(w.Name(), pos(name, ""),
				"wire type %s is not in the API manifest; additions must regenerate it in the same change: go run ./cmd/repolint -write-api-manifest", name)
			continue
		}
		wantByName := make(map[string]APIField, len(wf))
		for _, f := range wf {
			wantByName[f.Name] = f
		}
		gotByName := make(map[string]APIField, len(gf))
		for _, f := range gf {
			gotByName[f.Name] = f
		}
		for _, f := range wf {
			if _, ok := gotByName[f.Name]; !ok {
				u.Report(w.Name(), pos(name, ""),
					"wire field %s.%s (json %q) was removed or renamed; v1 fields are frozen — restore it", name, f.Name, f.Tag)
			}
		}
		for _, g := range gf {
			f, ok := wantByName[g.Name]
			if !ok {
				u.Report(w.Name(), pos(name, g.Name),
					"wire field %s.%s is not in the API manifest; additions must regenerate it in the same change: go run ./cmd/repolint -write-api-manifest", name, g.Name)
				continue
			}
			if g.Type != f.Type {
				u.Report(w.Name(), pos(name, g.Name),
					"wire field %s.%s changed type from %s to %s; v1 field types are frozen", name, g.Name, f.Type, g.Type)
			}
			if g.Tag != f.Tag {
				u.Report(w.Name(), pos(name, g.Name),
					"wire field %s.%s changed its json tag from %q to %q; the wire format is frozen", name, g.Name, f.Tag, g.Tag)
			}
		}
	}
	return nil
}

// DeriveAPIManifest computes the wire surface of a loaded package:
// every exported struct type's exported fields with fully qualified
// types and verbatim json tags, sorted by field name.
func DeriveAPIManifest(p *Package) APIManifest {
	m := APIManifest{Package: p.Path, Types: make(map[string][]APIField)}
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fields := []APIField{}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			tag, _ := reflect.StructTag(st.Tag(i)).Lookup("json")
			fields = append(fields, APIField{
				Name: f.Name(),
				Type: qualifiedType(p, f.Type()),
				Tag:  tag,
			})
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
		m.Types[name] = fields
	}
	return m
}

// qualifiedType prints a type with import paths for foreign packages,
// so the manifest survives moves of the lint package itself.
func qualifiedType(p *Package, t types.Type) string {
	return types.TypeString(t, func(other *types.Package) string {
		if other == p.Types {
			return ""
		}
		return other.Path()
	})
}

// WriteAPIManifest derives the manifest from the live tree rooted at
// (or above) dir and rewrites the committed file, returning its path.
// This is the sanctioned way to admit a wire-surface addition: the
// regenerated manifest lands in the same change as the new field.
func WriteAPIManifest(dir string) (string, error) {
	module, err := ModulePath(dir)
	if err != nil {
		return "", err
	}
	w := DefaultWireAPI(module)
	u, err := Load(dir, []string{"./internal/api"})
	if err != nil {
		return "", err
	}
	p := u.Pkg(w.PkgPath)
	if p == nil {
		return "", fmt.Errorf("lint: %s did not load", w.PkgPath)
	}
	m := DeriveAPIManifest(p)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(u.Root, filepath.FromSlash(w.ManifestPath))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
