package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The escape gate is only as strong as its manifest: this test pins
// the required coverage — the cycle loop, every one of the nine policy
// hooks on at least one concrete policy, and both monitor levels'
// event taps — and pins the sanctioned exclusions (reset/finish, the
// violation path) so neither side drifts silently.
func TestCoreManifestCoverage(t *testing.T) {
	u, err := Load(".", []string{"./internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	p := u.Pkg(u.Module + "/internal/core")
	if p == nil {
		t.Fatal("core package not loaded")
	}
	manifest := coreManifest(u, p)
	if f := u.Findings(); len(f) != 0 {
		t.Fatalf("manifest has stale entries: %v", f[0])
	}

	// The cycle loop and the stages it drives.
	for _, key := range []string{
		"Machine.step", "Machine.runEvents", "Machine.fetch",
		"Machine.dispatch", "Machine.selectAndIssue", "Machine.handleExec",
		"Machine.handleComplete", "Machine.retire", "Machine.emit",
		"Machine.emitFetch",
	} {
		if !manifest[key] {
			t.Errorf("manifest misses cycle-loop function %s", key)
		}
	}

	// All nine policy hooks, each on at least one implementation.
	hooks := []string{
		"onRename", "wakeupEligible", "onIssue", "onKill", "onSquash",
		"onVerify", "onStaleOperand", "onRetire", "onFlush",
	}
	for _, hook := range hooks {
		found := false
		for key := range manifest {
			if strings.HasSuffix(key, "."+hook) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("manifest covers no implementation of policy hook %s", hook)
		}
	}

	// The structure-of-arrays scheduler: the word-parallel select scan,
	// the broadcast-compare wakeup, the window bitmap primitives, the
	// ring-order bit iterator and the slot-accessor API. A rename or
	// split of any of these must re-enter the manifest or the escape
	// gate quietly stops watching the hottest code in the simulator.
	for _, key := range []string{
		"Machine.issueScan", "Machine.handleBroadcast",
		"Machine.seqAt", "Machine.unissue", "Machine.dataValidFor",
		"Machine.opReady", "Machine.wakeOperand", "Machine.clearOperand",
		"schedWindow.test", "schedWindow.set", "schedWindow.clearBit",
		"schedWindow.refreshReady", "schedWindow.setOp", "schedWindow.clearSlot",
		"ringIter.next", "newRingIter",
	} {
		if !manifest[key] {
			t.Errorf("manifest misses scheduler-window function %s", key)
		}
	}

	// Both monitor levels: the cheap per-event checkers and the full
	// per-cycle sweeps, plus the monitor's own taps.
	for _, key := range []string{
		"monitor.record", "monitor.cycleEnd",
		"retireChecker.event", "occupancyChecker.cycleEnd",
		"closureChecker.event", "memoryChecker.cycleEnd",
		"soaChecker.cycleEnd",
	} {
		if !manifest[key] {
			t.Errorf("manifest misses monitor function %s", key)
		}
	}

	// Sanctioned cold paths stay out: reset/finish may allocate, failf
	// and traceWindow run only on violations, and the checkpoint
	// snapshot/restore pair runs outside the cycle loop.
	for _, key := range []string{
		"tkselPolicy.reset", "serialPolicy.finish",
		"monitor.failf", "monitor.traceWindow", "Machine.init",
		"tkselPolicy.snapshotState", "tkselPolicy.restoreState",
		"serialPolicy.snapshotState", "serialPolicy.restoreState",
	} {
		if manifest[key] {
			t.Errorf("manifest wrongly includes cold function %s", key)
		}
	}
}

// TestEvstreamManifestCoverage pins the event-stream recorder's escape
// gate: the per-event sink tap and its page flush are watched, while
// setup, checkpointing and the decoder stay cold.
func TestEvstreamManifestCoverage(t *testing.T) {
	u, err := Load(".", []string{"./internal/evstream"})
	if err != nil {
		t.Fatal(err)
	}
	p := u.Pkg(u.Module + "/internal/evstream")
	if p == nil {
		t.Fatal("evstream package not loaded")
	}
	manifest := evstreamManifest(u, p)
	if f := u.Findings(); len(f) != 0 {
		t.Fatalf("manifest has stale entries: %v", f[0])
	}
	for _, key := range []string{"Recorder.Event", "Recorder.flushPage"} {
		if !manifest[key] {
			t.Errorf("manifest misses recording function %s", key)
		}
	}
	for _, key := range []string{
		"NewRecorder", "Recorder.Checkpoint", "Recorder.Flush",
		"Reader.Next", "Reader.decode", "Reader.SeekCycle",
	} {
		if manifest[key] {
			t.Errorf("manifest wrongly includes cold function %s", key)
		}
	}
}

// TestFrontendManifestCoverage pins the pluggable-frontend escape
// gates: the predictor's per-branch path (both organisations) and the
// prefetcher's per-load path are watched, while construction, Reset
// and the checkpoint pairs stay cold.
func TestFrontendManifestCoverage(t *testing.T) {
	u, err := Load(".", []string{"./internal/bpred", "./internal/prefetch"})
	if err != nil {
		t.Fatal(err)
	}
	bp := u.Pkg(u.Module + "/internal/bpred")
	pf := u.Pkg(u.Module + "/internal/prefetch")
	if bp == nil || pf == nil {
		t.Fatal("frontend packages not loaded")
	}
	bpm := bpredManifest(u, bp)
	pfm := prefetchManifest(u, pf)
	if f := u.Findings(); len(f) != 0 {
		t.Fatalf("manifest has stale entries: %v", f[0])
	}
	for _, key := range []string{
		"Predictor.Lookup", "Predictor.Update",
		"tage.lookup", "tage.update", "tage.allocate",
		"btb.lookup", "btb.insert", "ras.push", "ras.pop",
	} {
		if !bpm[key] {
			t.Errorf("bpred manifest misses per-branch function %s", key)
		}
	}
	for _, key := range []string{"New", "Predictor.Reset", "Predictor.State", "Predictor.RestoreState"} {
		if bpm[key] {
			t.Errorf("bpred manifest wrongly includes cold function %s", key)
		}
	}
	for _, key := range []string{
		"Prefetcher.Observe", "Prefetcher.MarkIssued", "Prefetcher.DemandUse",
	} {
		if !pfm[key] {
			t.Errorf("prefetch manifest misses per-load function %s", key)
		}
	}
	for _, key := range []string{"New", "Prefetcher.Reset", "Prefetcher.State", "Prefetcher.RestoreState"} {
		if pfm[key] {
			t.Errorf("prefetch manifest wrongly includes cold function %s", key)
		}
	}
}

// TestSnapshotManifestCoverage pins the snapshot manifest the same way
// the escape-gate tests pin theirs: the live tree must come back with
// zero findings (no unwaived gaps, no stale waivers), the
// deliberately-absent fields must be in the manifest, and the fields a
// checkpoint actually carries must NOT be — so neither the manifest
// nor the State/Restore pairs can drift silently.
func TestSnapshotManifestCoverage(t *testing.T) {
	u, err := Load(".", []string{
		"./internal/cache", "./internal/bpred", "./internal/prefetch",
		"./internal/token", "./internal/vpred", "./internal/smpred",
		"./internal/core",
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := DefaultSnapshotComplete(u.Module)
	if err := sc.Check(u); err != nil {
		t.Fatal(err)
	}
	for _, f := range u.Findings() {
		t.Errorf("%s", f)
	}

	// Sanctioned gaps stay in the manifest: derived geometry, scratch
	// buffers, harness wiring, the non-serializable stream.
	for _, key := range []string{
		"core.Machine.src", "core.Machine.mon", "core.Machine.ckptFn",
		"core.Machine.killStack", "cache.Hierarchy.epochLen",
		"token.Allocator.n", "bpred.Predictor.cfg",
		"core.loaddelayPolicy.maxLat",
	} {
		if _, ok := sc.Waivers[key]; !ok {
			t.Errorf("snapshot manifest misses sanctioned gap %s", key)
		}
	}

	// Fields the checkpoint pairs carry must not be waived — a waiver
	// for a handled field is the stale-entry finding the analyzer
	// reports, so the manifest going stale fails this test twice over.
	for _, key := range []string{
		"core.Machine.stats", "core.Machine.cycle", "core.Machine.win",
		"cache.Cache.sets", "token.Allocator.holder",
		"bpred.Predictor.history", "vpred.Predictor.table",
	} {
		if _, ok := sc.Waivers[key]; ok {
			t.Errorf("snapshot manifest wrongly waives checkpointed field %s", key)
		}
	}
}

// TestAPIManifestPinned proves the committed wire manifest matches the
// live API package byte-for-byte: any wire-surface change must
// regenerate it (go run ./cmd/repolint -write-api-manifest) in the
// same change, which is exactly what puts the new surface in front of
// review.
func TestAPIManifestPinned(t *testing.T) {
	u, err := Load(".", []string{"./internal/api"})
	if err != nil {
		t.Fatal(err)
	}
	p := u.Pkg(u.Module + "/internal/api")
	if p == nil {
		t.Fatal("api package not loaded")
	}
	derived, err := json.MarshalIndent(DeriveAPIManifest(p), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	derived = append(derived, '\n')
	committed, err := os.ReadFile(filepath.Join(u.Root, filepath.FromSlash(apiManifestPath)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(derived, committed) {
		t.Errorf("%s is stale; regenerate it with: go run ./cmd/repolint -write-api-manifest", apiManifestPath)
	}
}
