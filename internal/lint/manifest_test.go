package lint

import (
	"strings"
	"testing"
)

// The escape gate is only as strong as its manifest: this test pins
// the required coverage — the cycle loop, every one of the nine policy
// hooks on at least one concrete policy, and both monitor levels'
// event taps — and pins the sanctioned exclusions (reset/finish, the
// violation path) so neither side drifts silently.
func TestCoreManifestCoverage(t *testing.T) {
	u, err := Load(".", []string{"./internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	p := u.Pkg(u.Module + "/internal/core")
	if p == nil {
		t.Fatal("core package not loaded")
	}
	manifest := coreManifest(u, p)
	if f := u.Findings(); len(f) != 0 {
		t.Fatalf("manifest has stale entries: %v", f[0])
	}

	// The cycle loop and the stages it drives.
	for _, key := range []string{
		"Machine.step", "Machine.runEvents", "Machine.fetch",
		"Machine.dispatch", "Machine.selectAndIssue", "Machine.handleExec",
		"Machine.handleComplete", "Machine.retire", "Machine.emit",
	} {
		if !manifest[key] {
			t.Errorf("manifest misses cycle-loop function %s", key)
		}
	}

	// All nine policy hooks, each on at least one implementation.
	hooks := []string{
		"onRename", "wakeupEligible", "onIssue", "onKill", "onSquash",
		"onVerify", "onStaleOperand", "onRetire", "onFlush",
	}
	for _, hook := range hooks {
		found := false
		for key := range manifest {
			if strings.HasSuffix(key, "."+hook) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("manifest covers no implementation of policy hook %s", hook)
		}
	}

	// Both monitor levels: the cheap per-event checkers and the full
	// per-cycle sweeps, plus the monitor's own taps.
	for _, key := range []string{
		"monitor.record", "monitor.cycleEnd",
		"retireChecker.event", "occupancyChecker.cycleEnd",
		"closureChecker.event", "memoryChecker.cycleEnd",
	} {
		if !manifest[key] {
			t.Errorf("manifest misses monitor function %s", key)
		}
	}

	// Sanctioned cold paths stay out: reset/finish may allocate, failf
	// and traceWindow run only on violations.
	for _, key := range []string{
		"tkselPolicy.reset", "serialPolicy.finish",
		"monitor.failf", "monitor.traceWindow", "Machine.init",
	} {
		if manifest[key] {
			t.Errorf("manifest wrongly includes cold function %s", key)
		}
	}
}
