package isa

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU: "IntALU", FPALU: "FPALU", IntMult: "IntMult",
		IntDiv: "IntDiv", FPMult: "FPMult", FPDiv: "FPDiv",
		Load: "Load", Store: "Store", Branch: "Branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "Class(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
	if NumClasses.Valid() {
		t.Error("NumClasses should not be valid")
	}
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("Load and Store must be memory classes")
	}
	if IntALU.IsMem() || Branch.IsMem() {
		t.Error("IntALU/Branch must not be memory classes")
	}
	if Store.HasDest() || Branch.HasDest() {
		t.Error("Store/Branch must not produce register results")
	}
	if !Load.HasDest() || !IntALU.HasDest() || !FPDiv.HasDest() {
		t.Error("value-producing classes must report HasDest")
	}
}

func TestExecLatencyTable3(t *testing.T) {
	// Latencies straight from Table 3 of the paper.
	want := map[Class]int{
		IntALU: 1, FPALU: 2, IntMult: 3, IntDiv: 20,
		FPMult: 4, FPDiv: 24, Load: 1, Store: 1, Branch: 1,
	}
	for c, l := range want {
		if got := c.ExecLatency(); got != l {
			t.Errorf("%v latency = %d, want %d", c, got, l)
		}
	}
}

func TestInstValidate(t *testing.T) {
	valid := Inst{Seq: 10, PC: 0x1000, Class: IntALU, Src1: 3, Src2: -1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid inst rejected: %v", err)
	}
	cases := []struct {
		name string
		in   Inst
	}{
		{"invalid class", Inst{Seq: 1, Class: NumClasses, Src1: -1, Src2: -1}},
		{"negative seq", Inst{Seq: -2, Class: IntALU, Src1: -3, Src2: -3}},
		{"self dependence", Inst{Seq: 5, Class: IntALU, Src1: 5, Src2: -1}},
		{"future dependence", Inst{Seq: 5, Class: IntALU, Src1: -1, Src2: 9}},
		{"load without address", Inst{Seq: 5, Class: Load, Src1: -1, Src2: -1}},
		{"alu with address", Inst{Seq: 5, Class: IntALU, Src1: -1, Src2: -1, Addr: 64}},
		{"alu with branch outcome", Inst{Seq: 5, Class: IntALU, Src1: -1, Src2: -1, Taken: true}},
	}
	for _, tc := range cases {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid inst", tc.name)
		}
	}
}

func TestNumSources(t *testing.T) {
	cases := []struct {
		s1, s2 int64
		want   int
	}{{-1, -1, 0}, {0, -1, 1}, {-1, 4, 1}, {2, 3, 2}}
	for _, tc := range cases {
		in := Inst{Seq: 10, Class: IntALU, Src1: tc.s1, Src2: tc.s2}
		if got := in.NumSources(); got != tc.want {
			t.Errorf("NumSources(%d,%d) = %d, want %d", tc.s1, tc.s2, got, tc.want)
		}
	}
}

// Property: every valid class has a positive latency and a stable,
// non-empty name. Guards against someone adding a class without extending
// the tables.
func TestQuickClassTotality(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(raw % uint8(NumClasses))
		return c.Valid() && c.ExecLatency() >= 1 && c.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
