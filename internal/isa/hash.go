package isa

// HashInit seeds the retired-stream hash chain (see HashInst). Any odd
// non-zero constant works; this is splitmix64's increment.
const HashInit uint64 = 0x9E3779B97F4A7C15

// HashInst folds one instruction into a running stream hash. The chain
// is order-sensitive (each step mixes the previous digest), so two runs
// produce equal digests iff they retired the same instructions in the
// same order. The mix is a few multiplies per word — cheap enough to
// run on every retirement — rather than a cryptographic digest; the
// validation layer only needs collisions to be implausible, not
// adversarially hard.
func HashInst(h uint64, in *Inst) uint64 {
	h = hashWord(h, in.PC)
	h = hashWord(h, in.Addr)
	packed := uint64(in.Class) << 2
	if in.Taken {
		packed |= 1
	}
	if in.ValueRepeat {
		packed |= 2
	}
	h = hashWord(h, packed)
	h = hashWord(h, in.Target)
	return h
}

// hashWord is one round of a splitmix-style mix: xor the word in, then
// diffuse with a multiply and a shift-xor.
func hashWord(h, v uint64) uint64 {
	h ^= v
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}
