// Package isa defines the micro-operation model used by the simulator.
//
// The paper's platform is the Alpha ISA under SimpleScalar; the replay
// phenomena it studies depend only on instruction *classes* (which
// functional unit, which latency, whether the instruction touches memory
// or redirects control), not on Alpha encodings. This package therefore
// models a small RISC-like micro-op vocabulary with the operation classes
// and latencies of the paper's Table 3 machine.
package isa

import "fmt"

// Class identifies the functional class of a micro-op. It determines the
// functional unit required, the scheduled (assumed) latency, and how the
// pipeline treats the instruction.
type Class uint8

const (
	// IntALU is a single-cycle integer operation.
	IntALU Class = iota
	// FPALU is a two-cycle floating-point add/sub/convert.
	FPALU
	// IntMult is a three-cycle integer multiply.
	IntMult
	// IntDiv is a twenty-cycle integer divide.
	IntDiv
	// FPMult is a four-cycle floating-point multiply.
	FPMult
	// FPDiv is a 24-cycle floating-point divide.
	FPDiv
	// Load reads memory. Its scheduled latency assumes a DL1 hit; the
	// actual latency is resolved by the cache hierarchy at execute time,
	// which is the paper's source of scheduling misses.
	Load
	// Store writes memory. Stores compute an address and carry a data
	// operand; they never produce a register result.
	Store
	// Branch is a conditional or unconditional control transfer resolved
	// at execute.
	Branch
	// NumClasses is the number of distinct classes; keep it last.
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "FPALU", "IntMult", "IntDiv", "FPMult", "FPDiv",
	"Load", "Store", "Branch",
}

// String returns the mnemonic name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is one of the defined classes.
func (c Class) Valid() bool { return c < NumClasses }

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// HasDest reports whether the class produces a register result that
// dependents can consume.
func (c Class) HasDest() bool {
	switch c {
	case Store, Branch:
		return false
	default:
		return true
	}
}

// ExecLatency returns the execution latency, in cycles, of the class on
// the Table 3 machine, excluding any memory-hierarchy latency. For loads
// this is the address-generation cycle only; the cache adds the rest.
func (c Class) ExecLatency() int {
	switch c {
	case IntALU, Branch:
		return 1
	case FPALU:
		return 2
	case IntMult:
		return 3
	case IntDiv:
		return 20
	case FPMult:
		return 4
	case FPDiv:
		return 24
	case Load, Store:
		return 1 // address generation; cache latency is added at execute
	default:
		return 1
	}
}

// MaxExecLatency returns the largest ExecLatency over all classes. The
// simulator sizes its event wheel from it: no pipeline event can be
// scheduled further ahead than the memory round-trip plus this bound.
func MaxExecLatency() int {
	max := 0
	for c := IntALU; c < NumClasses; c++ {
		if l := c.ExecLatency(); l > max {
			max = l
		}
	}
	return max
}

// Inst is one dynamic instruction in a workload trace. Dependences are
// expressed positionally: Src1/Src2 give the sequence numbers of the
// producing dynamic instructions, or -1 when the operand is ready at
// dispatch (a register whose producer retired long ago, an immediate, ...).
//
// The generator guarantees Src1/Src2 < Seq, that producers have HasDest
// classes, and that memory instructions carry an address.
type Inst struct {
	// Seq is the dynamic sequence number, dense from 0.
	Seq int64
	// PC is the instruction address; static instructions keep a stable PC
	// so PC-indexed predictors observe realistic re-reference behaviour.
	PC uint64
	// Class is the functional class.
	Class Class
	// Src1 and Src2 are producer sequence numbers or -1.
	Src1, Src2 int64
	// Addr is the effective address for loads and stores (0 otherwise).
	Addr uint64
	// ValueRepeat reports, for loads, whether the loaded value equals
	// the same static site's previously loaded value — the value
	// locality that last-value prediction exploits. Ground truth
	// produced by the workload model.
	ValueRepeat bool
	// Taken reports the actual outcome for branches.
	Taken bool
	// Target is the branch target PC for taken branches.
	Target uint64
}

// Validate checks the structural invariants of a dynamic instruction.
// It is used by tests and by workload generators' self-checks.
func (in *Inst) Validate() error {
	if !in.Class.Valid() {
		return fmt.Errorf("isa: inst %d has invalid class %d", in.Seq, uint8(in.Class))
	}
	if in.Seq < 0 {
		return fmt.Errorf("isa: negative sequence number %d", in.Seq)
	}
	if in.Src1 >= in.Seq || in.Src2 >= in.Seq {
		return fmt.Errorf("isa: inst %d depends on itself or the future (src1=%d src2=%d)",
			in.Seq, in.Src1, in.Src2)
	}
	if in.Class.IsMem() && in.Addr == 0 {
		return fmt.Errorf("isa: memory inst %d has no address", in.Seq)
	}
	if !in.Class.IsMem() && in.Addr != 0 {
		return fmt.Errorf("isa: non-memory inst %d (%v) carries address %#x", in.Seq, in.Class, in.Addr)
	}
	if in.Class != Branch && (in.Taken || in.Target != 0) {
		return fmt.Errorf("isa: non-branch inst %d carries branch outcome", in.Seq)
	}
	if in.Class != Load && in.ValueRepeat {
		return fmt.Errorf("isa: non-load inst %d carries value locality", in.Seq)
	}
	return nil
}

// NumSources returns how many register source operands the instruction
// actually uses (0, 1 or 2).
func (in *Inst) NumSources() int {
	n := 0
	if in.Src1 >= 0 {
		n++
	}
	if in.Src2 >= 0 {
		n++
	}
	return n
}
