package smpred

import (
	"testing"
	"testing/quick"
)

func TestColdLookupPredictsHit(t *testing.T) {
	p := New(Config{})
	if c := p.Lookup(0x400000); c != 0 {
		t.Fatalf("cold confidence = %d, want 0", c)
	}
	_, tagMisses := p.Stats()
	if tagMisses != 1 {
		t.Fatalf("tagMisses = %d, want 1", tagMisses)
	}
}

func TestTrainingToSaturation(t *testing.T) {
	p := New(Config{})
	pc := uint64(0x401000)
	for i := 0; i < 5; i++ {
		p.Update(pc, true)
	}
	if c := p.Lookup(pc); c != MaxConfidence {
		t.Fatalf("confidence after 5 misses = %d, want %d", c, MaxConfidence)
	}
	for i := 0; i < 5; i++ {
		p.Update(pc, false)
	}
	if c := p.Lookup(pc); c != 0 {
		t.Fatalf("confidence after 5 hits = %d, want 0", c)
	}
}

func TestTagConflictReallocates(t *testing.T) {
	p := New(Config{Entries: 16, TagBits: 8})
	// Two PCs with the same index (word stride 16) but different tags.
	a := uint64(0x0) << 2
	b := uint64(16) << 2
	p.Update(a, true)
	p.Update(a, true)
	if c := p.Lookup(a); c != 2 {
		t.Fatalf("confidence(a) = %d, want 2", c)
	}
	// Training b evicts a's entry.
	p.Update(b, true)
	if c := p.Lookup(b); c != 1 {
		t.Fatalf("confidence(b) = %d, want 1 (fresh entry + one miss)", c)
	}
	if c := p.Lookup(a); c != 0 {
		t.Fatalf("confidence(a) after conflict = %d, want 0 (tag miss)", c)
	}
}

func TestInitialConfidenceSeedsNewEntries(t *testing.T) {
	p := New(Config{Entries: 16, TagBits: 8, InitialConfidence: 2})
	p.Update(0x40, false) // allocate at 2, decrement to 1
	if c := p.Lookup(0x40); c != 1 {
		t.Fatalf("confidence = %d, want 1", c)
	}
}

func TestReset(t *testing.T) {
	p := New(Config{})
	p.Update(0x40, true)
	p.Lookup(0x40)
	p.Reset()
	if c := p.Lookup(0x40); c != 0 {
		t.Fatal("state survived reset")
	}
	if lookups, _ := p.Stats(); lookups != 1 {
		t.Fatalf("stats not reset: lookups = %d", lookups)
	}
}

func TestNewPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted non-power-of-two entries")
		}
	}()
	New(Config{Entries: 1000})
}

func TestCoverageMeter(t *testing.T) {
	var m CoverageMeter
	// 10 loads at conf 0 (1 miss), 5 at conf 2 (4 misses), 5 at conf 3
	// (5 misses).
	for i := 0; i < 10; i++ {
		m.Record(0, i == 0)
	}
	for i := 0; i < 5; i++ {
		m.Record(2, i < 4)
	}
	for i := 0; i < 5; i++ {
		m.Record(3, true)
	}
	loads, misses := m.Totals()
	if loads != 20 || misses != 10 {
		t.Fatalf("totals = (%d,%d), want (20,10)", loads, misses)
	}
	if got := m.Coverage(0); got != 1.0 {
		t.Errorf("Coverage(0) = %v, want 1", got)
	}
	if got := m.Coverage(2); got != 0.9 {
		t.Errorf("Coverage(2) = %v, want 0.9", got)
	}
	if got := m.Coverage(3); got != 0.5 {
		t.Errorf("Coverage(3) = %v, want 0.5", got)
	}
	if got := m.PredictedFraction(2); got != 0.5 {
		t.Errorf("PredictedFraction(2) = %v, want 0.5", got)
	}
	if got := m.PredictedFraction(3); got != 0.25 {
		t.Errorf("PredictedFraction(3) = %v, want 0.25", got)
	}
}

func TestCoverageMeterEmpty(t *testing.T) {
	var m CoverageMeter
	if m.Coverage(1) != 0 || m.PredictedFraction(1) != 0 {
		t.Fatal("empty meter must report 0")
	}
}

// Property: coverage and predicted fraction are monotonically
// non-increasing in the threshold — raising the confidence bar can only
// shrink both sets. This is the structural fact behind Figure 9.
func TestQuickMonotoneInThreshold(t *testing.T) {
	f := func(events []struct {
		Conf   uint8
		Missed bool
	}) bool {
		var m CoverageMeter
		for _, e := range events {
			m.Record(Confidence(e.Conf)%(MaxConfidence+1), e.Missed)
		}
		for th := Confidence(1); th <= MaxConfidence; th++ {
			if m.Coverage(th) > m.Coverage(th-1) {
				return false
			}
			if m.PredictedFraction(th) > m.PredictedFraction(th-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: confidence is always within the 2-bit range whatever the
// training sequence.
func TestQuickConfidenceBounds(t *testing.T) {
	p := New(Config{Entries: 64, TagBits: 6})
	f := func(pcSeed uint16, missed bool) bool {
		pc := uint64(pcSeed) << 2
		p.Update(pc, missed)
		c := p.Lookup(pc)
		return c <= MaxConfidence
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
