// Package smpred implements the scheduling-miss predictor of §4.1: a
// tagged, 4k-entry, direct-mapped table indexed by load PC, with 2-bit
// saturating counters. The counter value is the *confidence* that the
// load will incur a scheduling miss (cache miss or store-to-load alias
// with unready data). Token allocation (package token) and the
// conservative scheduling policy both key off this confidence.
package smpred

import (
	"encoding/json"
	"fmt"
)

// Confidence is the 2-bit counter value, 0 (strongly hit) through
// 3 (strongly miss).
type Confidence uint8

// MaxConfidence is the saturation value of the 2-bit counters.
const MaxConfidence Confidence = 3

// Config sizes the predictor.
type Config struct {
	// Entries is the number of table entries; a power of two. The paper
	// uses 4096.
	Entries int
	// TagBits is how many PC bits (above the index) are kept as a tag.
	TagBits int
	// InitialConfidence seeds newly allocated entries. The paper does
	// not specify; we default to 0 (predict hit), the natural choice
	// since most loads hit.
	InitialConfidence Confidence
}

// Default returns the paper's predictor: tagged, 4k entries,
// direct-mapped.
func Default() Config {
	return Config{Entries: 4096, TagBits: 10, InitialConfidence: 0}
}

type entry struct {
	tag   uint64
	valid bool
	conf  Confidence
}

// Predictor is the tagged direct-mapped confidence table. The zero value
// is unusable; construct with New.
type Predictor struct {
	cfg     Config
	table   []entry
	idxMask uint64
	tagMask uint64

	lookups uint64
	// tagMisses counts lookups that found no matching entry (cold or
	// conflict), which predict "hit" with zero confidence.
	tagMisses uint64
}

// New builds a predictor; zero config fields take Default values.
// It panics if Entries is not a power of two (static configuration
// error).
func New(cfg Config) *Predictor {
	def := Default()
	if cfg.Entries == 0 {
		cfg.Entries = def.Entries
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = def.TagBits
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("smpred: entry count must be a power of two")
	}
	return &Predictor{
		cfg:     cfg,
		table:   make([]entry, cfg.Entries),
		idxMask: uint64(cfg.Entries - 1),
		tagMask: (1 << uint(cfg.TagBits)) - 1,
	}
}

func (p *Predictor) slot(pc uint64) (int, uint64) {
	word := pc >> 2
	return int(word & p.idxMask), (word >> uint(len64(p.idxMask))) & p.tagMask
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Lookup returns the miss confidence for the load at pc. A tag mismatch
// (cold or conflict) returns zero confidence: the load is assumed to
// hit, which is the common case.
func (p *Predictor) Lookup(pc uint64) Confidence {
	p.lookups++
	i, tag := p.slot(pc)
	e := p.table[i]
	if !e.valid || e.tag != tag {
		p.tagMisses++
		return 0
	}
	return e.conf
}

// Update trains the entry for pc with the load's actual outcome
// (missed = the load incurred a scheduling miss). On a tag mismatch the
// entry is reallocated to pc, per the paper's tagged table.
func (p *Predictor) Update(pc uint64, missed bool) {
	i, tag := p.slot(pc)
	e := &p.table[i]
	if !e.valid || e.tag != tag {
		*e = entry{tag: tag, valid: true, conf: p.cfg.InitialConfidence}
	}
	if missed {
		if e.conf < MaxConfidence {
			e.conf++
		}
	} else if e.conf > 0 {
		e.conf--
	}
}

// Stats returns lookup and tag-miss counts.
func (p *Predictor) Stats() (lookups, tagMisses uint64) {
	return p.lookups, p.tagMisses
}

// Reset clears the table and statistics.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = entry{}
	}
	p.lookups, p.tagMisses = 0, 0
}

// CoverageMeter accumulates the Figure 9 statistics: for each confidence
// threshold t, the fraction of actual scheduling misses whose load was
// predicted at confidence >= t (coverage), and the fraction of all load
// issues predicted to miss at confidence >= t.
type CoverageMeter struct {
	// loads[c] counts loads looked up with confidence exactly c.
	loads [MaxConfidence + 1]uint64
	// misses[c] counts loads with confidence exactly c that actually
	// incurred a scheduling miss.
	misses [MaxConfidence + 1]uint64
}

// Record notes one load with its predicted confidence and actual outcome.
func (m *CoverageMeter) Record(conf Confidence, missed bool) {
	m.loads[conf]++
	if missed {
		m.misses[conf]++
	}
}

// Coverage returns, for threshold t, the fraction of all scheduling
// misses covered by predictions at confidence >= t. Returns 0 when no
// misses were recorded.
func (m *CoverageMeter) Coverage(t Confidence) float64 {
	var covered, total uint64
	for c := Confidence(0); c <= MaxConfidence; c++ {
		total += m.misses[c]
		if c >= t {
			covered += m.misses[c]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// PredictedFraction returns the fraction of loads predicted to miss at
// confidence >= t. Returns 0 when no loads were recorded.
func (m *CoverageMeter) PredictedFraction(t Confidence) float64 {
	var pred, total uint64
	for c := Confidence(0); c <= MaxConfidence; c++ {
		total += m.loads[c]
		if c >= t {
			pred += m.loads[c]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pred) / float64(total)
}

// coverageMeterJSON is the meter's wire form: the per-confidence load
// and miss counts as slices.
type coverageMeterJSON struct {
	Loads  []uint64 `json:"loads"`
	Misses []uint64 `json:"misses"`
}

// MarshalJSON encodes the per-confidence counters so the sim engine
// can journal a run's Figure 9 data alongside its statistics.
func (m CoverageMeter) MarshalJSON() ([]byte, error) {
	return json.Marshal(coverageMeterJSON{
		Loads:  m.loads[:],
		Misses: m.misses[:],
	})
}

// UnmarshalJSON decodes a meter written by MarshalJSON. Journals from
// a build with a different confidence range are rejected rather than
// reinterpreted.
func (m *CoverageMeter) UnmarshalJSON(data []byte) error {
	var j coverageMeterJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Loads) != int(MaxConfidence)+1 || len(j.Misses) != int(MaxConfidence)+1 {
		return fmt.Errorf("smpred: coverage meter with %d/%d confidence levels, want %d",
			len(j.Loads), len(j.Misses), int(MaxConfidence)+1)
	}
	*m = CoverageMeter{}
	copy(m.loads[:], j.Loads)
	copy(m.misses[:], j.Misses)
	return nil
}

// Totals returns total loads and total misses recorded.
func (m *CoverageMeter) Totals() (loads, misses uint64) {
	for c := Confidence(0); c <= MaxConfidence; c++ {
		loads += m.loads[c]
		misses += m.misses[c]
	}
	return loads, misses
}
