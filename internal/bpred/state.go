package bpred

import "fmt"

// BTBEntryState is one branch-target-buffer entry's serialized form.
type BTBEntryState struct {
	PC      uint64 `json:"pc"`
	Target  uint64 `json:"target"`
	Valid   bool   `json:"valid,omitempty"`
	LastUse uint64 `json:"use,omitempty"`
}

// State is a Predictor's serializable contents. The 2-bit counter
// tables travel as byte slices (base64 in JSON); the BTB is set-major
// like cache.State. Geometry is not part of the state — a checkpoint
// pairs it with the Config that rebuilds the same shape.
type State struct {
	Bimodal  []byte `json:"bimodal"`
	Gshare   []byte `json:"gshare"`
	Selector []byte `json:"selector"`
	History  uint64 `json:"history"`

	BTB      []BTBEntryState `json:"btb"`
	BTBClock uint64          `json:"btb_clock"`

	RAS      []uint64 `json:"ras"`
	RASTop   int      `json:"ras_top"`
	RASDepth int      `json:"ras_depth"`

	Lookups     uint64 `json:"lookups"`
	Mispredicts uint64 `json:"mispredicts"`

	// Tage holds the tagged tables under KindTAGE (absent otherwise,
	// so combined-predictor checkpoints keep their historical bytes).
	Tage      []TageTableState `json:"tage,omitempty"`
	TageRand  uint64           `json:"tage_rand,omitempty"`
	TageTicks uint32           `json:"tage_ticks,omitempty"`
}

// TageTableState is one tagged table's serialized form, entry-major.
type TageTableState struct {
	Tags []uint16 `json:"tags"`
	Ctrs []int8   `json:"ctrs"`
	Us   []byte   `json:"us"`
}

// State snapshots the predictor for a checkpoint.
func (p *Predictor) State() State {
	st := State{
		Bimodal:  countersToBytes(p.bimodal),
		Gshare:   countersToBytes(p.gshare),
		Selector: countersToBytes(p.selector),
		History:  p.history,
		BTBClock: p.btb.clock,
		RAS:      append([]uint64(nil), p.ras.buf...),
		RASTop:   p.ras.top,
		RASDepth: p.ras.depth,

		Lookups:     p.lookups,
		Mispredicts: p.mispredicts,
	}
	for _, set := range p.btb.sets {
		for _, e := range set {
			st.BTB = append(st.BTB, BTBEntryState{
				PC: e.pc, Target: e.target, Valid: e.valid, LastUse: e.lastUse,
			})
		}
	}
	if t := p.tage; t != nil {
		st.TageRand = t.rng
		st.TageTicks = t.ticks
		st.Tage = make([]TageTableState, len(t.tables))
		for i, tbl := range t.tables {
			ts := TageTableState{
				Tags: make([]uint16, len(tbl)),
				Ctrs: make([]int8, len(tbl)),
				Us:   make([]byte, len(tbl)),
			}
			for j, e := range tbl {
				ts.Tags[j], ts.Ctrs[j], ts.Us[j] = e.tag, e.ctr, e.u
			}
			st.Tage[i] = ts
		}
	}
	return st
}

// RestoreState loads a snapshot taken from a predictor of identical
// configuration; a shape mismatch is an error.
func (p *Predictor) RestoreState(st State) error {
	btbWant := p.cfg.BTBEntries
	switch {
	case len(st.Bimodal) != len(p.bimodal) ||
		len(st.Gshare) != len(p.gshare) ||
		len(st.Selector) != len(p.selector):
		return fmt.Errorf("bpred: state tables %d/%d/%d do not match configuration %d/%d/%d",
			len(st.Bimodal), len(st.Gshare), len(st.Selector),
			len(p.bimodal), len(p.gshare), len(p.selector))
	case len(st.BTB) != btbWant:
		return fmt.Errorf("bpred: state BTB holds %d entries, configuration wants %d",
			len(st.BTB), btbWant)
	case len(st.RAS) != len(p.ras.buf):
		return fmt.Errorf("bpred: state RAS holds %d entries, configuration wants %d",
			len(st.RAS), len(p.ras.buf))
	case st.RASTop < 0 || st.RASTop >= len(p.ras.buf) ||
		st.RASDepth < 0 || st.RASDepth > len(p.ras.buf):
		return fmt.Errorf("bpred: state RAS cursor %d/%d out of range for %d entries",
			st.RASTop, st.RASDepth, len(p.ras.buf))
	case p.tage == nil && len(st.Tage) != 0:
		return fmt.Errorf("bpred: state carries %d TAGE tables but the configuration is %v",
			len(st.Tage), p.cfg.Kind)
	case p.tage != nil && len(st.Tage) != len(p.tage.tables):
		return fmt.Errorf("bpred: state holds %d TAGE tables, configuration wants %d",
			len(st.Tage), len(p.tage.tables))
	}
	if t := p.tage; t != nil {
		for i, ts := range st.Tage {
			n := len(t.tables[i])
			if len(ts.Tags) != n || len(ts.Ctrs) != n || len(ts.Us) != n {
				return fmt.Errorf("bpred: TAGE table %d state %d/%d/%d does not match %d entries",
					i, len(ts.Tags), len(ts.Ctrs), len(ts.Us), n)
			}
		}
	}
	bytesToCounters(p.bimodal, st.Bimodal)
	bytesToCounters(p.gshare, st.Gshare)
	bytesToCounters(p.selector, st.Selector)
	p.history = st.History
	i := 0
	for _, set := range p.btb.sets {
		for w := range set {
			e := st.BTB[i]
			set[w] = btbEntry{pc: e.PC, target: e.Target, valid: e.Valid, lastUse: e.LastUse}
			i++
		}
	}
	p.btb.clock = st.BTBClock
	copy(p.ras.buf, st.RAS)
	p.ras.top, p.ras.depth = st.RASTop, st.RASDepth
	p.lookups, p.mispredicts = st.Lookups, st.Mispredicts
	if t := p.tage; t != nil {
		for i, ts := range st.Tage {
			tbl := t.tables[i]
			for j := range tbl {
				tbl[j] = tageEntry{tag: ts.Tags[j], ctr: ts.Ctrs[j], u: ts.Us[j]}
			}
		}
		t.rng = st.TageRand
		t.ticks = st.TageTicks
	}
	return nil
}

func countersToBytes(cs []counter) []byte {
	out := make([]byte, len(cs))
	for i, c := range cs {
		out[i] = byte(c)
	}
	return out
}

func bytesToCounters(dst []counter, src []byte) {
	for i, b := range src {
		dst[i] = counter(b)
	}
}
