package bpred

import "fmt"

// BTBEntryState is one branch-target-buffer entry's serialized form.
type BTBEntryState struct {
	PC      uint64 `json:"pc"`
	Target  uint64 `json:"target"`
	Valid   bool   `json:"valid,omitempty"`
	LastUse uint64 `json:"use,omitempty"`
}

// State is a Predictor's serializable contents. The 2-bit counter
// tables travel as byte slices (base64 in JSON); the BTB is set-major
// like cache.State. Geometry is not part of the state — a checkpoint
// pairs it with the Config that rebuilds the same shape.
type State struct {
	Bimodal  []byte `json:"bimodal"`
	Gshare   []byte `json:"gshare"`
	Selector []byte `json:"selector"`
	History  uint64 `json:"history"`

	BTB      []BTBEntryState `json:"btb"`
	BTBClock uint64          `json:"btb_clock"`

	RAS      []uint64 `json:"ras"`
	RASTop   int      `json:"ras_top"`
	RASDepth int      `json:"ras_depth"`

	Lookups     uint64 `json:"lookups"`
	Mispredicts uint64 `json:"mispredicts"`
}

// State snapshots the predictor for a checkpoint.
func (p *Predictor) State() State {
	st := State{
		Bimodal:  countersToBytes(p.bimodal),
		Gshare:   countersToBytes(p.gshare),
		Selector: countersToBytes(p.selector),
		History:  p.history,
		BTBClock: p.btb.clock,
		RAS:      append([]uint64(nil), p.ras.buf...),
		RASTop:   p.ras.top,
		RASDepth: p.ras.depth,

		Lookups:     p.lookups,
		Mispredicts: p.mispredicts,
	}
	for _, set := range p.btb.sets {
		for _, e := range set {
			st.BTB = append(st.BTB, BTBEntryState{
				PC: e.pc, Target: e.target, Valid: e.valid, LastUse: e.lastUse,
			})
		}
	}
	return st
}

// RestoreState loads a snapshot taken from a predictor of identical
// configuration; a shape mismatch is an error.
func (p *Predictor) RestoreState(st State) error {
	btbWant := p.cfg.BTBEntries
	switch {
	case len(st.Bimodal) != len(p.bimodal) ||
		len(st.Gshare) != len(p.gshare) ||
		len(st.Selector) != len(p.selector):
		return fmt.Errorf("bpred: state tables %d/%d/%d do not match configuration %d/%d/%d",
			len(st.Bimodal), len(st.Gshare), len(st.Selector),
			len(p.bimodal), len(p.gshare), len(p.selector))
	case len(st.BTB) != btbWant:
		return fmt.Errorf("bpred: state BTB holds %d entries, configuration wants %d",
			len(st.BTB), btbWant)
	case len(st.RAS) != len(p.ras.buf):
		return fmt.Errorf("bpred: state RAS holds %d entries, configuration wants %d",
			len(st.RAS), len(p.ras.buf))
	case st.RASTop < 0 || st.RASTop >= len(p.ras.buf) ||
		st.RASDepth < 0 || st.RASDepth > len(p.ras.buf):
		return fmt.Errorf("bpred: state RAS cursor %d/%d out of range for %d entries",
			st.RASTop, st.RASDepth, len(p.ras.buf))
	}
	bytesToCounters(p.bimodal, st.Bimodal)
	bytesToCounters(p.gshare, st.Gshare)
	bytesToCounters(p.selector, st.Selector)
	p.history = st.History
	i := 0
	for _, set := range p.btb.sets {
		for w := range set {
			e := st.BTB[i]
			set[w] = btbEntry{pc: e.PC, target: e.Target, valid: e.Valid, lastUse: e.LastUse}
			i++
		}
	}
	p.btb.clock = st.BTBClock
	copy(p.ras.buf, st.RAS)
	p.ras.top, p.ras.depth = st.RASTop, st.RASDepth
	p.lookups, p.mispredicts = st.Lookups, st.Mispredicts
	return nil
}

func countersToBytes(cs []counter) []byte {
	out := make([]byte, len(cs))
	for i, c := range cs {
		out[i] = byte(c)
	}
	return out
}

func bytesToCounters(dst []counter, src []byte) {
	for i, b := range src {
		dst[i] = counter(b)
	}
}
