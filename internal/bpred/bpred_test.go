package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Fatalf("saturated-up counter = %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 || c.taken() {
		t.Fatalf("saturated-down counter = %d", c)
	}
}

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := New(Config{})
	pc := uint64(0x400100)
	target := uint64(0x400800)
	mis := 0
	for i := 0; i < 100; i++ {
		pr := p.Lookup(pc)
		if p.Update(pc, pr, true, target) {
			mis++
		}
	}
	if mis > 5 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", mis)
	}
	// After training, the BTB must supply the target.
	pr := p.Lookup(pc)
	if !pr.Taken || pr.Target != target {
		t.Fatalf("trained prediction = %+v", pr)
	}
}

func TestAlternatingBranchLearnedByGshare(t *testing.T) {
	// A strict T/NT alternation is hopeless for bimodal but trivial for
	// gshare with global history; the combined predictor must converge.
	p := New(Config{})
	pc := uint64(0x400200)
	mis := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		pr := p.Lookup(pc)
		if p.Update(pc, pr, taken, 0x400900) {
			mis++
		}
	}
	// Allow warmup; the tail must be near-perfect.
	misTail := 0
	for i := 0; i < 100; i++ {
		taken := i%2 == 0
		pr := p.Lookup(pc)
		if p.Update(pc, pr, taken, 0x400900) {
			misTail++
		}
	}
	if misTail > 4 {
		t.Fatalf("alternating branch mispredicted %d/100 after training", misTail)
	}
	_ = mis
}

func TestRandomBranchMispredictsOften(t *testing.T) {
	p := New(Config{})
	rng := rand.New(rand.NewSource(42))
	mis := 0
	n := 2000
	for i := 0; i < n; i++ {
		pc := uint64(0x400000 + (i%16)*4)
		taken := rng.Intn(2) == 0
		pr := p.Lookup(pc)
		if p.Update(pc, pr, taken, 0x500000) {
			mis++
		}
	}
	rate := float64(mis) / float64(n)
	if rate < 0.3 {
		t.Fatalf("random branches mispredicted only %.2f; predictor is cheating", rate)
	}
}

func TestStatsCount(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 7; i++ {
		pr := p.Lookup(0x1000)
		p.Update(0x1000, pr, true, 0x2000)
	}
	lookups, _ := p.Stats()
	if lookups != 7 {
		t.Fatalf("lookups = %d, want 7", lookups)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := newBTB(8, 2) // 4 sets, 2 ways
	// Five PCs mapping to the same set (stride 16 with >>2 indexing, 4 sets).
	pcs := []uint64{0x00, 0x10, 0x20, 0x30, 0x40}
	for _, pc := range pcs {
		b.insert(pc, pc+0x1000)
	}
	// Only the last two inserted survive in the 2-way set.
	if _, ok := b.lookup(0x00); ok {
		t.Error("oldest entry should have been evicted")
	}
	if tg, ok := b.lookup(0x40); !ok || tg != 0x1040 {
		t.Errorf("newest entry lookup = (%#x,%v)", tg, ok)
	}
}

func TestBTBUpdateInPlace(t *testing.T) {
	b := newBTB(8, 2)
	b.insert(0x100, 0x200)
	b.insert(0x100, 0x300)
	if tg, ok := b.lookup(0x100); !ok || tg != 0x300 {
		t.Fatalf("lookup after re-insert = (%#x,%v)", tg, ok)
	}
}

func TestRASLifoOrder(t *testing.T) {
	r := newRAS(4)
	r.push(1)
	r.push(2)
	r.push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.pop()
		if !ok || got != want {
			t.Fatalf("pop = (%d,%v), want %d", got, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("empty RAS returned a prediction")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := newRAS(2)
	r.push(1)
	r.push(2)
	r.push(3) // overwrites 1
	if v, _ := r.pop(); v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, _ := r.pop(); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	if _, ok := r.pop(); ok {
		t.Fatal("RAS should be empty after wrap")
	}
}

// Property: push/pop on the RAS behaves like a bounded stack for depths
// within capacity.
func TestQuickRASWithinCapacity(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 16 {
			vals = vals[:16]
		}
		r := newRAS(16)
		for _, v := range vals {
			r.push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got, ok := r.pop()
			if !ok || got != vals[i] {
				return false
			}
		}
		_, ok := r.pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Update returns true exactly when direction or (taken-)target
// disagrees with the prediction.
func TestQuickMispredictDefinition(t *testing.T) {
	p := New(Config{})
	f := func(pcSeed uint16, taken bool, tSeed uint16) bool {
		pc := uint64(pcSeed) << 2
		target := uint64(tSeed)<<2 + 4
		pr := p.Lookup(pc)
		mis := p.Update(pc, pr, taken, target)
		want := pr.Taken != taken || (taken && pr.Target != target)
		return mis == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
