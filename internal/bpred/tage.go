package bpred

import "math"

// tage is a tagged geometric-history direction predictor (Seznec &
// Michaud style) over the predictor's shared bimodal base table: a
// series of tagged tables indexed by pc hashed with geometrically
// growing slices of global history. The longest-history hit provides
// the prediction; on a direction mispredict an entry is allocated in a
// longer-history table among those whose useful counter has decayed to
// zero, and the useful counters age periodically so stale entries can
// be reclaimed. A table whose history length is zero is inert — it
// never hits and never allocates — so an all-zero history series
// degrades exactly to the bimodal base.
//
// Global history is capped at 64 bits and hashed directly from the
// uint64 snapshot carried in each Prediction, so updates recompute the
// lookup's indices without folded-history registers and the
// speculative-push/repair-on-mispredict discipline of the combined
// predictor carries over unchanged.
type tage struct {
	// tables[i] is the i-th tagged table, shortest history first.
	tables [][]tageEntry
	// histLens[i] is the history length of table i; masks[i] is the
	// matching history mask ((1<<len)-1, saturating at 64 bits).
	histLens []int
	masks    []uint64
	tagMask  uint16
	// rng is a deterministic xorshift state used only to skew
	// allocation between candidate tables.
	rng uint64
	// ticks counts updates toward the next useful-counter aging sweep.
	ticks uint32
}

// tageEntry is one tagged-table slot: a partial tag, a 3-bit signed
// prediction counter (-4..3; non-negative predicts taken), and a 2-bit
// useful counter gating reallocation.
type tageEntry struct {
	tag uint16
	ctr int8
	u   uint8
}

// tageRandSeed is the fixed nonzero xorshift seed; resets restore it
// so pooled machines replay bit-identically.
const tageRandSeed = 0x2545F4914F6CDD1D

// tageAgeInterval is the update count between useful-counter aging
// sweeps (a power of two; each sweep halves every u).
const tageAgeInterval = 1 << 18

func newTage(cfg Config) *tage {
	t := &tage{
		tables:   make([][]tageEntry, cfg.TageTables),
		histLens: geomHistLens(cfg.TageMinHist, cfg.TageMaxHist, cfg.TageTables),
		masks:    make([]uint64, cfg.TageTables),
		tagMask:  uint16(1<<cfg.TageTagBits) - 1,
		rng:      tageRandSeed,
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, cfg.TageEntries)
		t.masks[i] = histMaskFor(t.histLens[i])
	}
	return t
}

// geomHistLens spreads n history lengths geometrically from minH to
// maxH. The sentinel -1 in either bound yields all-zero lengths
// (inert tables; see Config.TageMinHist).
func geomHistLens(minH, maxH, n int) []int {
	out := make([]int, n)
	if minH < 0 || maxH < 0 {
		return out
	}
	for i := range out {
		if n == 1 || minH == maxH {
			out[i] = maxH
			continue
		}
		f := float64(minH) * math.Pow(float64(maxH)/float64(minH), float64(i)/float64(n-1))
		l := int(f + 0.5)
		if l > 64 {
			l = 64
		}
		out[i] = l
	}
	return out
}

// histMaskFor is the history mask for a length, saturating at 64 bits.
func histMaskFor(l int) uint64 {
	if l <= 0 {
		return 0
	}
	if l >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(l)) - 1
}

// maxHist is the longest table history, bounding the global register.
func (t *tage) maxHist() int {
	m := 1 // keep at least one history bit so the register still shifts
	for _, l := range t.histLens {
		if l > m {
			m = l
		}
	}
	return m
}

// index hashes pc with table i's history slice into a table slot.
func (t *tage) index(i int, pc, hist uint64) int {
	h := hist & t.masks[i]
	x := (pc >> 2) + uint64(i)*0x9E3779B97F4A7C15
	x ^= h ^ (h >> 17) ^ (h >> 34)
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int(x & uint64(len(t.tables[i])-1))
}

// tag computes the partial tag for pc in table i.
func (t *tage) tag(i int, pc, hist uint64) uint16 {
	h := hist & t.masks[i]
	x := (pc >> 2) * 0x9E3779B97F4A7C15
	x ^= h * 0xC2B2AE3D27D4EB4F
	x ^= uint64(i) << 7
	x ^= x >> 31
	return uint16(x) & t.tagMask
}

// lookup fills pr with the longest-history tagged hit (the bimodal
// base when none hits) and the alternate prediction beneath it.
func (t *tage) lookup(p *Predictor, pc uint64, pr *Prediction) {
	base := p.bimodal[p.bimodalIdx(pc)].taken()
	pr.Taken, pr.altTaken, pr.prov = base, base, 0
	for i := range t.tables {
		if t.histLens[i] == 0 {
			continue
		}
		e := &t.tables[i][t.index(i, pc, pr.history)]
		if e.tag == t.tag(i, pc, pr.history) {
			pr.altTaken = pr.Taken
			pr.Taken = e.ctr >= 0
			pr.prov = int8(i + 1)
		}
	}
	pr.provTaken = pr.Taken
}

// update trains the provider, maintains its useful counter against the
// alternate prediction, allocates into a longer table on a direction
// mispredict, and ages the useful counters on a fixed schedule.
func (t *tage) update(p *Predictor, pc uint64, pr Prediction, taken bool) {
	if pr.prov > 0 {
		i := int(pr.prov) - 1
		e := &t.tables[i][t.index(i, pc, pr.history)]
		e.ctr = sat3(e.ctr, taken)
		if pr.provTaken != pr.altTaken {
			if pr.provTaken == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		bi := p.bimodalIdx(pc)
		p.bimodal[bi] = p.bimodal[bi].update(taken)
	}
	if pr.provTaken != taken && int(pr.prov) < len(t.tables) {
		t.allocate(pc, pr.history, int(pr.prov), taken)
	}
	t.ticks++
	if t.ticks&(tageAgeInterval-1) == 0 {
		t.age()
	}
}

// allocate claims a slot in a longer-history table whose useful
// counter is zero, skewing the start table by one with probability 1/2
// so adjacent branches don't ping-pong over the same table. When every
// candidate is useful, their counters decay instead so a later
// mispredict can succeed.
func (t *tage) allocate(pc, hist uint64, from int, taken bool) {
	j := from // table index of the first longer table (prov is 1-based)
	if j+1 < len(t.tables) && t.nextRand()&1 == 1 {
		j++
	}
	for ; j < len(t.tables); j++ {
		if t.histLens[j] == 0 {
			continue
		}
		e := &t.tables[j][t.index(j, pc, hist)]
		if e.u == 0 {
			e.tag = t.tag(j, pc, hist)
			e.ctr = weak3(taken)
			return
		}
	}
	for j := from; j < len(t.tables); j++ {
		if t.histLens[j] == 0 {
			continue
		}
		e := &t.tables[j][t.index(j, pc, hist)]
		if e.u > 0 {
			e.u--
		}
	}
}

// age halves every useful counter, gracefully forgetting entries that
// stopped earning their keep.
func (t *tage) age() {
	for i := range t.tables {
		tbl := t.tables[i]
		for j := range tbl {
			tbl[j].u >>= 1
		}
	}
}

// reset restores the freshly constructed state (zero tables, seeded
// rng) so pooled machines replay bit-identically.
func (t *tage) reset() {
	for i := range t.tables {
		tbl := t.tables[i]
		for j := range tbl {
			tbl[j] = tageEntry{}
		}
	}
	t.rng = tageRandSeed
	t.ticks = 0
}

// nextRand steps the deterministic xorshift64 state.
func (t *tage) nextRand() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// sat3 steps a 3-bit signed saturating counter (-4..3) toward taken.
func sat3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

// weak3 is the weakly-biased initial counter for a fresh allocation.
func weak3(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}
