package bpred

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// smallTAGE is a compact TAGE geometry so fuzz and metamorphic runs
// exercise capacity pressure (evictions, allocation failures, useful-
// counter decay) without megabyte states.
func smallTAGE() Config {
	return Config{
		Kind:            KindTAGE,
		BimodalEntries:  256,
		GshareEntries:   64,
		SelectorEntries: 64,
		HistoryBits:     8,
		BTBEntries:      64,
		BTBAssoc:        2,
		RASEntries:      8,
		TageTables:      3,
		TageEntries:     64,
		TageTagBits:     7,
		TageMinHist:     2,
		TageMaxHist:     32,
	}
}

// refBimodal is a naive stand-alone re-implementation of the shared
// bimodal base table: 2-bit counters starting weakly-not-taken,
// indexed by word address.
type refBimodal []uint8

func newRefBimodal(entries int) refBimodal {
	r := make(refBimodal, entries)
	for i := range r {
		r[i] = 1
	}
	return r
}

func (r refBimodal) predict(pc uint64) bool {
	return r[(pc>>2)%uint64(len(r))] >= 2
}

func (r refBimodal) train(pc uint64, taken bool) {
	i := (pc >> 2) % uint64(len(r))
	if taken {
		if r[i] < 3 {
			r[i]++
		}
	} else if r[i] > 0 {
		r[i]--
	}
}

// TestTageZeroHistoryDegradesToBimodal is the metamorphic anchor for
// the TAGE organisation: with the -1 sentinel giving every tagged
// table a zero-length history, the tables are inert — they never hit
// and never allocate — so every direction prediction must equal the
// naive bimodal reference exactly, over a stream long enough to cross
// allocation and aging paths many times.
func TestTageZeroHistoryDegradesToBimodal(t *testing.T) {
	cfg := smallTAGE()
	cfg.TageMinHist, cfg.TageMaxHist = -1, -1
	p := New(cfg)
	ref := newRefBimodal(cfg.BimodalEntries)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50_000; i++ {
		pc := uint64(rng.Intn(512)) << 2
		// A mix of biased and noisy branches so counters move in both
		// directions.
		taken := rng.Intn(4) != 0
		if pc&0x10 != 0 {
			taken = rng.Intn(4) == 0
		}
		pr := p.Lookup(pc)
		if pr.Taken != ref.predict(pc) {
			t.Fatalf("branch %d at %#x: TAGE(hist=0) predicts %v, bimodal reference %v",
				i, pc, pr.Taken, ref.predict(pc))
		}
		p.Update(pc, pr, taken, pc+0x40)
		ref.train(pc, taken)
	}
}

// TestTageBeatsBimodalOnHistoryPattern is the converse sanity check:
// with real history lengths the tagged tables must learn a strict
// period-4 pattern a 2-bit bimodal counter cannot.
func TestTageBeatsBimodalOnHistoryPattern(t *testing.T) {
	p := New(smallTAGE())
	pc := uint64(0x400100)
	pattern := []bool{true, true, false, true}
	for i := 0; i < 2_000; i++ {
		pr := p.Lookup(pc)
		p.Update(pc, pr, pattern[i%len(pattern)], 0x400800)
	}
	mis := 0
	for i := 2_000; i < 2_400; i++ {
		pr := p.Lookup(pc)
		if p.Update(pc, pr, pattern[i%len(pattern)], 0x400800) {
			mis++
		}
	}
	if mis > 20 {
		t.Fatalf("period-4 pattern mispredicted %d/400 after training", mis)
	}
}

func TestTageStateRoundTrip(t *testing.T) {
	cfg := smallTAGE()
	p := New(cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5_000; i++ {
		pc := uint64(rng.Intn(256)) << 2
		pr := p.Lookup(pc)
		p.Update(pc, pr, rng.Intn(2) == 0, pc+4)
	}
	blob, err := json.Marshal(p.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	q := New(cfg)
	if err := q.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	qb, err := json.Marshal(q.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, qb) {
		t.Fatal("TAGE state did not survive a JSON round trip")
	}
}

func TestTageStateRejectsMismatch(t *testing.T) {
	st := New(smallTAGE()).State()
	if err := New(Default()).RestoreState(st); err == nil {
		t.Error("combined predictor accepted a TAGE state")
	}
	narrow := smallTAGE()
	narrow.TageTables = 2
	if err := New(narrow).RestoreState(st); err == nil {
		t.Error("RestoreState accepted a state with the wrong table count")
	}
	combined := New(Default()).State()
	if err := New(smallTAGE()).RestoreState(combined); err == nil {
		t.Error("TAGE predictor accepted a combined-predictor state")
	}
}

// FuzzTAGE holds the TAGE predictor to two properties over arbitrary
// branch streams and geometries:
//
//   - with zero-length histories (the -1 sentinel) every direction
//     prediction matches the naive bimodal reference model exactly;
//   - a State snapshot taken mid-stream, serialized through JSON and
//     restored into a fresh predictor continues bit-identically: the
//     restored twin produces the same Prediction and the same
//     mispredict verdict on every remaining branch, and the final
//     serialized states are byte-identical.
func FuzzTAGE(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), false, uint16(4),
		[]byte{1, 1, 2, 1, 0, 2, 1, 1, 2, 1, 0, 2, 9, 1, 3})
	f.Add(uint8(1), uint8(2), uint8(3), true, uint16(0),
		[]byte{5, 1, 7, 5, 0, 7, 5, 1, 7, 5, 1, 7})
	f.Add(uint8(3), uint8(1), uint8(5), false, uint16(100),
		bytes.Repeat([]byte{2, 1, 4, 2, 0, 4, 3, 1, 5}, 40))
	f.Fuzz(func(t *testing.T, tables, entLog, tagBits uint8, zeroHist bool, split uint16, data []byte) {
		cfg := smallTAGE()
		cfg.TageTables = 2 + int(tables%4)
		cfg.TageEntries = 1 << (4 + entLog%4)
		cfg.TageTagBits = 5 + int(tagBits%8)
		if zeroHist {
			cfg.TageMinHist, cfg.TageMaxHist = -1, -1
		}
		p := New(cfg)
		ref := newRefBimodal(cfg.BimodalEntries)

		var q *Predictor // restored twin, live after the snapshot point
		nOps := len(data) / 3
		splitAt := 0
		if nOps > 0 {
			splitAt = int(split) % nOps
		}
		for op := 0; op < nOps; op++ {
			if op == splitAt {
				blob, err := json.Marshal(p.State())
				if err != nil {
					t.Fatal(err)
				}
				var st State
				if err := json.Unmarshal(blob, &st); err != nil {
					t.Fatal(err)
				}
				q = New(cfg)
				if err := q.RestoreState(st); err != nil {
					t.Fatalf("restore mid-stream: %v", err)
				}
			}
			pcSel, takenRaw, tSel := data[op*3], data[op*3+1], data[op*3+2]
			pc := uint64(pcSel) << 2
			taken := takenRaw&1 == 1
			target := uint64(tSel)<<2 + 4

			pr := p.Lookup(pc)
			if zeroHist && pr.Taken != ref.predict(pc) {
				t.Fatalf("op %d at %#x: TAGE(hist=0) predicts %v, bimodal reference %v",
					op, pc, pr.Taken, ref.predict(pc))
			}
			mis := p.Update(pc, pr, taken, target)
			if zeroHist {
				ref.train(pc, taken)
			}
			if q != nil {
				qr := q.Lookup(pc)
				if qr != pr {
					t.Fatalf("op %d: restored twin predicts %+v, original %+v", op, qr, pr)
				}
				if qmis := q.Update(pc, qr, taken, target); qmis != mis {
					t.Fatalf("op %d: restored twin mispredict %v, original %v", op, qmis, mis)
				}
			}
		}
		if q != nil {
			pb, err := json.Marshal(p.State())
			if err != nil {
				t.Fatal(err)
			}
			qb, err := json.Marshal(q.State())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb, qb) {
				t.Fatal("final states diverged after mid-stream restore")
			}
		}
	})
}
