package bpred

// btb is a set-associative branch target buffer with LRU replacement.
type btb struct {
	sets  [][]btbEntry
	mask  uint64
	clock uint64
}

type btbEntry struct {
	pc      uint64
	target  uint64
	valid   bool
	lastUse uint64
}

func newBTB(entries, assoc int) *btb {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic("bpred: invalid BTB geometry")
	}
	nsets := entries / assoc
	if nsets&(nsets-1) != 0 {
		panic("bpred: BTB set count must be a power of two")
	}
	sets := make([][]btbEntry, nsets)
	backing := make([]btbEntry, entries)
	for i := range sets {
		sets[i], backing = backing[:assoc], backing[assoc:]
	}
	return &btb{sets: sets, mask: uint64(nsets - 1)}
}

func (b *btb) set(pc uint64) []btbEntry { return b.sets[(pc>>2)&b.mask] }

func (b *btb) lookup(pc uint64) (uint64, bool) {
	b.clock++
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].lastUse = b.clock
			return set[i].target, true
		}
	}
	return 0, false
}

func (b *btb) insert(pc, target uint64) {
	b.clock++
	set := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].target = target
			set[i].lastUse = b.clock
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = btbEntry{pc: pc, target: target, valid: true, lastUse: b.clock}
}

func (b *btb) reset() {
	for _, set := range b.sets {
		for i := range set {
			set[i] = btbEntry{}
		}
	}
	b.clock = 0
}

// ras is a circular return address stack. Overflow wraps and overwrites
// the oldest entry; underflow returns no prediction.
type ras struct {
	buf   []uint64
	top   int // index of the next push slot
	depth int // live entries, capped at len(buf)
}

func newRAS(entries int) *ras {
	if entries <= 0 {
		panic("bpred: RAS must have at least one entry")
	}
	return &ras{buf: make([]uint64, entries)}
}

func (r *ras) push(pc uint64) {
	r.buf[r.top] = pc
	r.top = (r.top + 1) % len(r.buf)
	if r.depth < len(r.buf) {
		r.depth++
	}
}

func (r *ras) reset() {
	r.top, r.depth = 0, 0
}

func (r *ras) pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.depth--
	return r.buf[r.top], true
}
