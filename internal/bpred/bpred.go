// Package bpred implements the branch prediction machinery of the
// paper's Table 3 machine: a combined predictor (4k-entry bimodal and
// 4k-entry gshare arbitrated by a 4k-entry selector), a 1k-entry 4-way
// branch target buffer, and a 16-entry return address stack. A TAGE
// organisation (geometric-history tagged tables over the same bimodal
// base) is selectable through Config.Kind for frontier studies; the
// BTB and RAS are shared by every kind.
//
// In the simulator the predictor steers the speculative front end;
// mispredictions are resolved when the branch executes and cost at least
// 11 cycles of redirection, matching Table 3.
package bpred

import (
	"fmt"
	"strings"
)

// Kind selects the direction-prediction organisation. The zero value
// is the paper's combined predictor, so zero-valued Configs keep their
// historical meaning.
type Kind int

const (
	// KindCombined is the paper's bimodal/gshare/selector combination.
	KindCombined Kind = iota
	// KindTAGE is a tagged geometric-history predictor over the
	// bimodal base table.
	KindTAGE
)

// kindNames is the canonical flag spelling per kind, indexed by Kind.
var kindNames = []string{"combined", "tage"}

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	if int(k) < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindNames lists the parseable predictor kinds in declaration order.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames)
	return out
}

// ParseKind resolves a flag spelling (case-insensitive) to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if strings.EqualFold(s, n) {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown branch predictor %q (have %s)",
		s, strings.Join(kindNames, ", "))
}

// counter is a 2-bit saturating counter; values 2..3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Config sizes each component. Zero values are replaced by the paper's
// configuration (see Default). The struct stays comparable (all plain
// ints) so pooled machines can test substrate reuse with == and
// checkpoints can demand exact configuration equality.
type Config struct {
	// Kind selects the direction predictor organisation. The BTB and
	// RAS below are shared by every kind.
	Kind Kind
	// BimodalEntries is the bimodal table size (power of two). Under
	// KindTAGE the same table is the base predictor.
	BimodalEntries int
	// GshareEntries is the gshare table size (power of two).
	GshareEntries int
	// SelectorEntries is the chooser table size (power of two).
	SelectorEntries int
	// HistoryBits is the global history length used by gshare.
	HistoryBits int
	// BTBEntries and BTBAssoc size the branch target buffer.
	BTBEntries, BTBAssoc int
	// RASEntries sizes the return address stack.
	RASEntries int

	// TageTables is the number of tagged tables (KindTAGE only).
	TageTables int
	// TageEntries is the per-table entry count (power of two).
	TageEntries int
	// TageTagBits is the partial-tag width (at most 16).
	TageTagBits int
	// TageMinHist and TageMaxHist bound the geometric history-length
	// series across the tagged tables. The sentinel -1 in either field
	// gives every table a literal zero-length history, which makes the
	// tagged tables inert: they never hit and never allocate, so the
	// predictor degrades exactly to its bimodal base.
	TageMinHist int
	TageMaxHist int
}

// Default returns the Table 3 configuration: 4k bimodal / 4k gshare /
// 4k selector, 12 history bits, 1k-entry 4-way BTB, 16-entry RAS.
func Default() Config {
	return Config{
		BimodalEntries:  4096,
		GshareEntries:   4096,
		SelectorEntries: 4096,
		HistoryBits:     12,
		BTBEntries:      1024,
		BTBAssoc:        4,
		RASEntries:      16,
	}
}

// DefaultTAGE returns the Default machine with the TAGE direction
// predictor: four 1k-entry tagged tables with 9-bit tags over a
// geometric 4..64 history series, on the shared 4k bimodal base.
func DefaultTAGE() Config {
	cfg := Default()
	cfg.Kind = KindTAGE
	cfg.TageTables = 4
	cfg.TageEntries = 1024
	cfg.TageTagBits = 9
	cfg.TageMinHist = 4
	cfg.TageMaxHist = 64
	return cfg
}

// Predictor is the direction predictor (combined or TAGE) plus BTB
// and RAS. The zero value is not usable; construct with New.
type Predictor struct {
	cfg      Config
	bimodal  []counter
	gshare   []counter
	selector []counter // high counter values prefer gshare
	history  uint64
	histMask uint64
	tage     *tage // nil under KindCombined
	btb      *btb
	ras      *ras

	lookups     uint64
	mispredicts uint64
}

// New constructs a predictor; zero config fields take Default values.
func New(cfg Config) *Predictor {
	def := Default()
	if cfg.BimodalEntries == 0 {
		cfg.BimodalEntries = def.BimodalEntries
	}
	if cfg.GshareEntries == 0 {
		cfg.GshareEntries = def.GshareEntries
	}
	if cfg.SelectorEntries == 0 {
		cfg.SelectorEntries = def.SelectorEntries
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = def.HistoryBits
	}
	if cfg.BTBEntries == 0 {
		cfg.BTBEntries = def.BTBEntries
	}
	if cfg.BTBAssoc == 0 {
		cfg.BTBAssoc = def.BTBAssoc
	}
	if cfg.RASEntries == 0 {
		cfg.RASEntries = def.RASEntries
	}
	if cfg.Kind == KindTAGE {
		tdef := DefaultTAGE()
		if cfg.TageTables == 0 {
			cfg.TageTables = tdef.TageTables
		}
		if cfg.TageEntries == 0 {
			cfg.TageEntries = tdef.TageEntries
		}
		if cfg.TageTagBits == 0 {
			cfg.TageTagBits = tdef.TageTagBits
		}
		if cfg.TageMinHist == 0 {
			cfg.TageMinHist = tdef.TageMinHist
		}
		if cfg.TageMaxHist == 0 {
			cfg.TageMaxHist = tdef.TageMaxHist
		}
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]counter, cfg.BimodalEntries),
		gshare:   make([]counter, cfg.GshareEntries),
		selector: make([]counter, cfg.SelectorEntries),
		histMask: (1 << cfg.HistoryBits) - 1,
		btb:      newBTB(cfg.BTBEntries, cfg.BTBAssoc),
		ras:      newRAS(cfg.RASEntries),
	}
	if cfg.Kind == KindTAGE {
		p.tage = newTage(cfg)
		p.histMask = histMaskFor(p.tage.maxHist())
	}
	// Weakly-not-taken start, weakly-prefer-bimodal chooser, matching
	// common sim-outorder initialization.
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.selector {
		p.selector[i] = 1
	}
	return p
}

// Prediction is the front end's view of one branch.
type Prediction struct {
	// Taken is the predicted direction.
	Taken bool
	// Target is the predicted target (0 when the BTB misses; a taken
	// prediction without a target still redirects fetch but only once
	// the target is computed, which the pipeline charges as a stall).
	Target uint64
	// usedGshare records which component produced the direction, for
	// the selector update.
	usedGshare bool
	// history snapshot for recovery-free speculative history updates.
	history uint64
	// prov is the TAGE provider: 0 for the bimodal base, i+1 for
	// tagged table i. provTaken/altTaken record the provider's and the
	// alternate's directions for the useful-counter update.
	prov      int8
	provTaken bool
	altTaken  bool
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 2) & uint64(len(p.bimodal)-1))
}

func (p *Predictor) gshareIdx(pc uint64) int {
	return int(((pc >> 2) ^ p.history) & uint64(len(p.gshare)-1))
}

func (p *Predictor) selectorIdx(pc uint64) int {
	return int((pc >> 2) & uint64(len(p.selector)-1))
}

// Lookup predicts the branch at pc and speculatively updates global
// history with the predicted direction.
func (p *Predictor) Lookup(pc uint64) Prediction {
	p.lookups++
	pr := Prediction{history: p.history}
	if p.tage != nil {
		p.tage.lookup(p, pc, &pr)
	} else {
		b := p.bimodal[p.bimodalIdx(pc)].taken()
		g := p.gshare[p.gshareIdx(pc)].taken()
		if p.selector[p.selectorIdx(pc)].taken() {
			pr.Taken, pr.usedGshare = g, true
		} else {
			pr.Taken = b
		}
	}
	if t, ok := p.btb.lookup(pc); ok {
		pr.Target = t
	}
	p.history = ((p.history << 1) | boolBit(pr.Taken)) & p.histMask
	return pr
}

// Update trains the predictor with the branch's actual outcome. pr must
// be the Prediction returned by the matching Lookup. It returns whether
// the direction or target was mispredicted.
func (p *Predictor) Update(pc uint64, pr Prediction, taken bool, target uint64) bool {
	if p.tage != nil {
		p.tage.update(p, pc, pr, taken)
	} else {
		// Recompute component predictions under the history the lookup
		// saw.
		saved := p.history
		p.history = pr.history
		bi, gi, si := p.bimodalIdx(pc), p.gshareIdx(pc), p.selectorIdx(pc)
		p.history = saved

		b := p.bimodal[bi].taken()
		g := p.gshare[gi].taken()
		p.bimodal[bi] = p.bimodal[bi].update(taken)
		p.gshare[gi] = p.gshare[gi].update(taken)
		// Train the selector toward whichever component was right, when
		// they disagree.
		if b != g {
			p.selector[si] = p.selector[si].update(g == taken)
		}
	}
	if taken {
		p.btb.insert(pc, target)
	}
	mis := pr.Taken != taken || (taken && pr.Target != target)
	if mis {
		p.mispredicts++
		// Repair global history: squash the wrong speculative bit and
		// insert the true outcome.
		p.history = ((pr.history << 1) | boolBit(taken)) & p.histMask
	}
	return mis
}

// Reset restores the predictor to its freshly constructed state so a
// pooled machine can reuse the tables across runs.
func (p *Predictor) Reset() {
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.selector {
		p.selector[i] = 1
	}
	p.history = 0
	if p.tage != nil {
		p.tage.reset()
	}
	p.btb.reset()
	p.ras.reset()
	p.lookups, p.mispredicts = 0, 0
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(retPC uint64) { p.ras.push(retPC) }

// PopRAS predicts a return target.
func (p *Predictor) PopRAS() (uint64, bool) { return p.ras.pop() }

// Stats returns lookup and misprediction counts.
func (p *Predictor) Stats() (lookups, mispredicts uint64) {
	return p.lookups, p.mispredicts
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
