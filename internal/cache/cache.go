// Package cache models the memory hierarchy of the paper's Table 3
// machine: split 32KB L1 caches, a unified 512KB L2, and main memory,
// with miss-status-holding registers (MSHRs) so that secondary accesses
// to a line whose fill is still in flight observe the residual fill
// latency. That last behaviour matters for this paper: §5.3 notes that
// load *scheduling* miss rates exceed cache miss rates precisely because
// every access to a still-in-flight line is a scheduling miss while only
// the first is a cache miss.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name is used in error messages and stats output.
	Name string
	// SizeBytes is the total capacity. Must be Assoc*LineBytes*nsets.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LineBytes is the line size; a power of two.
	LineBytes int
	// Latency is the access latency in cycles.
	Latency int
}

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 || c.Latency < 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by assoc*line %d",
			c.Name, c.SizeBytes, c.Assoc*c.LineBytes)
	}
	sets := c.SizeBytes / (c.Assoc * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	// lastUse drives true-LRU replacement within the set.
	lastUse uint64
}

// Cache is a single set-associative level with true-LRU replacement.
// It is a tag store only: data values are never simulated.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	useClock uint64
	accesses uint64
	misses   uint64
}

// New builds a cache from cfg. It panics on invalid geometry: cache
// geometry is static machine configuration, so a bad value is a
// programming error, not a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		setMask:  uint64(nsets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr maps a byte address to its line-granular address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.setShift }

// Access looks up addr, updates LRU state, and on a miss installs the
// line (evicting the LRU way). It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.useClock++
	la := addr >> c.setShift
	set := c.sets[la&c.setMask]
	tag := la // the full line address; trivially injective
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.useClock
			return true
		}
		if set[i].lastUse < set[victim].lastUse || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	c.misses++
	set[victim] = line{tag: tag, valid: true, lastUse: c.useClock}
	return false
}

// Probe reports whether addr currently hits without disturbing LRU or
// contents. Useful for tests and for modeling non-allocating checks.
func (c *Cache) Probe(addr uint64) bool {
	la := addr >> c.setShift
	set := c.sets[la&c.setMask]
	tag := la
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Stats returns cumulative access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.useClock, c.accesses, c.misses = 0, 0, 0
}
