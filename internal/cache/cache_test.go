package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 2}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Assoc: 1, LineBytes: 64, Latency: 1},
		{Name: "line-npot", SizeBytes: 1024, Assoc: 2, LineBytes: 48, Latency: 1},
		{Name: "indivisible", SizeBytes: 1000, Assoc: 2, LineBytes: 64, Latency: 1},
		{Name: "sets-npot", SizeBytes: 3 * 128, Assoc: 1, LineBytes: 64, Latency: 1},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1038) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x2000) {
		t.Fatal("different line hit cold")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Fatalf("stats = (%d,%d), want (4,2)", acc, miss)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 1024B, 2-way, 64B lines -> 8 sets. Addresses with identical bits
	// 6..8 share a set; stride 512 re-maps to set 0.
	c := New(small())
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a) // miss, install
	c.Access(b) // miss, install (set full)
	c.Access(a) // touch a so b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a should have survived")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := New(small())
	c.Access(0)
	c.Access(512) // set 0 now full: {0, 512}, 0 is LRU
	for i := 0; i < 10; i++ {
		c.Probe(0) // must not refresh recency
	}
	c.Access(1024) // should evict 0, the LRU way
	if c.Probe(0) {
		t.Error("probe refreshed LRU state")
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Access(0x40)
	c.Reset()
	if c.Probe(0x40) {
		t.Error("contents survived reset")
	}
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Error("stats survived reset")
	}
}

// Property: after an Access, an immediate re-Access of any address in the
// same line hits.
func TestQuickAccessThenHit(t *testing.T) {
	c := New(Config{Name: "q", SizeBytes: 8 << 10, Assoc: 4, LineBytes: 64, Latency: 2})
	f := func(addr uint64, off uint8) bool {
		c.Access(addr)
		return c.Access((addr &^ 63) | uint64(off&63))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: misses never exceed accesses, and a direct-mapped cache of one
// line thrashes (alternating lines always miss).
func TestQuickStatsSanity(t *testing.T) {
	c := New(Config{Name: "one", SizeBytes: 64, Assoc: 1, LineBytes: 64, Latency: 1})
	for i := 0; i < 100; i++ {
		c.Access(uint64(i%2) * 64)
	}
	acc, miss := c.Stats()
	if acc != 100 || miss != 100 {
		t.Fatalf("thrash stats = (%d,%d), want (100,100)", acc, miss)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	// Cold access: memory.
	r := h.Data(0x10000, 0)
	if r.Level != LevelMemory || r.Latency != 2+8+100 {
		t.Fatalf("cold access = %+v, want memory 110", r)
	}
	// Second access one cycle later: the fill is still in flight.
	r = h.Data(0x10008, 1)
	if r.Level != LevelInFlight {
		t.Fatalf("second access level = %v, want in-flight", r.Level)
	}
	if r.Latency != 109+2 {
		t.Fatalf("in-flight latency = %d, want 111", r.Latency)
	}
	// After the fill completes: DL1 hit.
	r = h.Data(0x10010, 200)
	if r.Level != LevelL1 || r.Latency != 2 {
		t.Fatalf("post-fill access = %+v, want L1 hit 2", r)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	// Fill a line, then evict it from DL1 with conflicting lines while it
	// stays in the larger L2.
	h.Data(0x0, 0)
	// DL1 is 32KB 4-way 64B: 128 sets, so stride 8192 conflicts in DL1.
	// L2 is 512KB 4-way 128B: 1024 sets, stride 8192 maps to different
	// L2 sets for the first few, so 0x0 survives in L2.
	for i := 1; i <= 4; i++ {
		h.Data(uint64(i)*8192, int64(i)*1000)
	}
	r := h.Data(0x0, 100000)
	if r.Level != LevelL2 {
		t.Fatalf("re-access level = %v, want L2", r.Level)
	}
	if r.Latency != 2+8 {
		t.Fatalf("L2 latency = %d, want 10", r.Latency)
	}
}

func TestHierarchyInstPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	r := h.Inst(0x4000, 0)
	if r.Level != LevelMemory {
		t.Fatalf("cold fetch level = %v", r.Level)
	}
	r = h.Inst(0x4000, 500)
	if r.Level != LevelL1 || r.Latency != 2 {
		t.Fatalf("warm fetch = %+v", r)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.Data(0x123400, 0)
	h.Reset()
	if r := h.Data(0x123400, 0); r.Level != LevelMemory {
		t.Fatalf("after reset, access = %+v, want cold memory miss", r)
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{LevelL1: "L1", LevelInFlight: "in-flight", LevelL2: "L2", LevelMemory: "memory"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}
