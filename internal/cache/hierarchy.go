package cache

import "fmt"

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = iota
	// LevelInFlight means the line missed earlier and its fill has not
	// completed; the access waits for the residual fill latency.
	LevelInFlight
	// LevelL2 means the access missed L1 and hit the unified L2.
	LevelL2
	// LevelMemory means the access went to main memory.
	LevelMemory
)

// String names the level for stats output.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelInFlight:
		return "in-flight"
	case LevelL2:
		return "L2"
	default:
		return "memory"
	}
}

// Result describes one data access.
type Result struct {
	// Latency is the total load-to-use latency in cycles.
	Latency int
	// Level is where the access was satisfied.
	Level Level
}

// HierarchyConfig assembles the Table 3 memory system.
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	// MemLatency is main-memory latency in cycles (100 in the paper).
	MemLatency int
}

// DefaultHierarchy returns the paper's Table 3 memory system: 32KB 2-way
// 64B IL1 (2 cycles), 32KB 4-way 64B DL1 (2 cycles), 512KB 4-way 128B
// unified L2 (8 cycles), 100-cycle main memory.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		IL1:        Config{Name: "IL1", SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64, Latency: 2},
		DL1:        Config{Name: "DL1", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, Latency: 2},
		L2:         Config{Name: "L2", SizeBytes: 512 << 10, Assoc: 4, LineBytes: 128, Latency: 8},
		MemLatency: 100,
	}
}

// Hierarchy is the two-level data/instruction memory system with MSHR
// tracking of in-flight fills.
//
// In-flight fills are kept in two epoch-rotated maps per side: entries
// are inserted into the current map and consulted in both. Every
// epochLen cycles the previous map — which by then can only contain
// entries whose fills completed — is cleared and becomes current. This
// bounds the tracking state (the old scheme kept cold streaming lines
// forever) and keeps the hot path free of per-line growth.
type Hierarchy struct {
	cfg HierarchyConfig
	il1 *Cache
	dl1 *Cache
	l2  *Cache
	// fills/fillsPrev map DL1 line address -> cycle the fill completes.
	fills, fillsPrev map[uint64]int64
	// instFills/instFillsPrev do the same for IL1 lines.
	instFills, instFillsPrev map[uint64]int64
	// epochLen is at least the worst-case fill latency, so a live
	// in-flight entry is always still present in one of the two maps.
	epochLen int64
	nextSwap int64
}

// NewHierarchy builds the hierarchy. Invalid geometry panics (static
// configuration error).
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	epoch := int64(cfg.IL1.Latency + cfg.DL1.Latency + cfg.L2.Latency + cfg.MemLatency + 64)
	return &Hierarchy{
		cfg:           cfg,
		il1:           New(cfg.IL1),
		dl1:           New(cfg.DL1),
		l2:            New(cfg.L2),
		fills:         make(map[uint64]int64),
		fillsPrev:     make(map[uint64]int64),
		instFills:     make(map[uint64]int64),
		instFillsPrev: make(map[uint64]int64),
		epochLen:      epoch,
		nextSwap:      epoch,
	}
}

// rotate retires the previous epoch's fill maps once every live entry
// in them must have completed.
func (h *Hierarchy) rotate(now int64) {
	if now < h.nextSwap {
		return
	}
	h.fills, h.fillsPrev = h.fillsPrev, h.fills
	clear(h.fills)
	h.instFills, h.instFillsPrev = h.instFillsPrev, h.instFills
	clear(h.instFills)
	h.nextSwap = now + h.epochLen
}

// inFlight looks up la in the current-then-previous epoch maps and
// reports the completion cycle of a still-outstanding fill.
func inFlight(cur, prev map[uint64]int64, la uint64, now int64) (int64, bool) {
	if ready, ok := cur[la]; ok && ready > now {
		return ready, true
	}
	if ready, ok := prev[la]; ok && ready > now {
		return ready, true
	}
	return 0, false
}

// Data performs a data access (load or store) at the given cycle and
// returns the latency and satisfying level. Write misses allocate, like
// SimpleScalar's default write-allocate policy.
func (h *Hierarchy) Data(addr uint64, now int64) Result {
	h.rotate(now)
	la := h.dl1.LineAddr(addr)
	if ready, ok := inFlight(h.fills, h.fillsPrev, la, now); ok {
		// Secondary access to an in-flight line: waits for the fill.
		return Result{Latency: int(ready-now) + h.cfg.DL1.Latency, Level: LevelInFlight}
	}
	if h.dl1.Access(addr) {
		return Result{Latency: h.cfg.DL1.Latency, Level: LevelL1}
	}
	var lat int
	var lvl Level
	if h.l2.Access(addr) {
		lat = h.cfg.DL1.Latency + h.cfg.L2.Latency
		lvl = LevelL2
	} else {
		lat = h.cfg.DL1.Latency + h.cfg.L2.Latency + h.cfg.MemLatency
		lvl = LevelMemory
	}
	h.fills[la] = now + int64(lat)
	return Result{Latency: lat, Level: lvl}
}

// Prefetch starts a data-side fill for the line containing addr, as a
// demand miss would, and returns true when a new fill was started.
// Lines already resident or in flight are left undisturbed (the probe
// does not touch LRU state). The fill shares the demand path's MSHR
// tracking, so a demand access arriving before it completes observes
// the residual latency as LevelInFlight — a late prefetch is still
// partially useful — and the fill maps are already checkpointed, so
// prefetch state warm-starts with the rest of the hierarchy.
func (h *Hierarchy) Prefetch(addr uint64, now int64) bool {
	h.rotate(now)
	la := h.dl1.LineAddr(addr)
	if _, ok := inFlight(h.fills, h.fillsPrev, la, now); ok {
		return false
	}
	if h.dl1.Probe(addr) {
		return false
	}
	var lat int
	if h.l2.Access(addr) {
		lat = h.cfg.DL1.Latency + h.cfg.L2.Latency
	} else {
		lat = h.cfg.DL1.Latency + h.cfg.L2.Latency + h.cfg.MemLatency
	}
	h.dl1.Access(addr) // install the line, evicting via true LRU
	h.fills[la] = now + int64(lat)
	return true
}

// Inst performs an instruction fetch access for the line containing pc.
func (h *Hierarchy) Inst(pc uint64, now int64) Result {
	h.rotate(now)
	la := h.il1.LineAddr(pc)
	if ready, ok := inFlight(h.instFills, h.instFillsPrev, la, now); ok {
		return Result{Latency: int(ready-now) + h.cfg.IL1.Latency, Level: LevelInFlight}
	}
	if h.il1.Access(pc) {
		return Result{Latency: h.cfg.IL1.Latency, Level: LevelL1}
	}
	var lat int
	var lvl Level
	if h.l2.Access(pc) {
		lat = h.cfg.IL1.Latency + h.cfg.L2.Latency
		lvl = LevelL2
	} else {
		lat = h.cfg.IL1.Latency + h.cfg.L2.Latency + h.cfg.MemLatency
		lvl = LevelMemory
	}
	h.instFills[la] = now + int64(lat)
	return Result{Latency: lat, Level: lvl}
}

// DL1 exposes the data cache (stats, probing in tests).
func (h *Hierarchy) DL1() *Cache { return h.dl1 }

// IL1 exposes the instruction cache.
func (h *Hierarchy) IL1() *Cache { return h.il1 }

// L2 exposes the unified second level.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// HitLatency returns the scheduled (assumed) load-to-use latency, i.e.
// the DL1 hit latency the scheduler speculates with.
func (h *Hierarchy) HitLatency() int { return h.cfg.DL1.Latency }

// CheckInvariants verifies the epoch-rotation bookkeeping at the given
// cycle: the next rotation is never scheduled further out than one
// epoch, and no in-flight fill completes later than a worst-case miss
// path allows. The validation layer (internal/check via core's memory
// monitor) calls this periodically on checked runs.
func (h *Hierarchy) CheckInvariants(now int64) error {
	if h.nextSwap > now+h.epochLen {
		return fmt.Errorf("cache: next epoch swap %d more than one epoch (%d) past cycle %d",
			h.nextSwap, h.epochLen, now)
	}
	dataWorst := now + int64(h.cfg.DL1.Latency+h.cfg.L2.Latency+h.cfg.MemLatency)
	for _, fills := range []map[uint64]int64{h.fills, h.fillsPrev} {
		for la, ready := range fills {
			if ready > dataWorst {
				return fmt.Errorf("cache: data fill for line %#x completes at %d, past the worst-case bound %d",
					la, ready, dataWorst)
			}
		}
	}
	instWorst := now + int64(h.cfg.IL1.Latency+h.cfg.L2.Latency+h.cfg.MemLatency)
	for _, fills := range []map[uint64]int64{h.instFills, h.instFillsPrev} {
		for la, ready := range fills {
			if ready > instWorst {
				return fmt.Errorf("cache: inst fill for line %#x completes at %d, past the worst-case bound %d",
					la, ready, instWorst)
			}
		}
	}
	return nil
}

// Reset clears all levels and in-flight state, keeping allocations.
func (h *Hierarchy) Reset() {
	h.il1.Reset()
	h.dl1.Reset()
	h.l2.Reset()
	clear(h.fills)
	clear(h.fillsPrev)
	clear(h.instFills)
	clear(h.instFillsPrev)
	h.nextSwap = h.epochLen
}
