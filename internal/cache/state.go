package cache

import "fmt"

// LineState is one cache line's serialized form.
type LineState struct {
	Tag     uint64 `json:"tag"`
	Valid   bool   `json:"valid,omitempty"`
	LastUse uint64 `json:"use,omitempty"`
}

// State is a Cache's serializable contents — tags and LRU state only,
// since the cache never holds data. Lines are set-major: way w of set s
// sits at index s*Assoc+w. The geometry itself is not part of the
// state; a checkpoint pairs it with the machine Config that rebuilds
// the same shape.
type State struct {
	Lines    []LineState `json:"lines"`
	UseClock uint64      `json:"use_clock"`
	Accesses uint64      `json:"accesses"`
	Misses   uint64      `json:"misses"`
}

// State snapshots the cache contents for a checkpoint.
func (c *Cache) State() State {
	st := State{
		Lines:    make([]LineState, 0, len(c.sets)*c.cfg.Assoc),
		UseClock: c.useClock,
		Accesses: c.accesses,
		Misses:   c.misses,
	}
	for _, set := range c.sets {
		for _, ln := range set {
			st.Lines = append(st.Lines, LineState{Tag: ln.tag, Valid: ln.valid, LastUse: ln.lastUse})
		}
	}
	return st
}

// RestoreState loads a snapshot taken from a cache of identical
// geometry; a shape mismatch is an error and leaves the cache
// unchanged.
func (c *Cache) RestoreState(st State) error {
	want := len(c.sets) * c.cfg.Assoc
	if len(st.Lines) != want {
		return fmt.Errorf("cache %s: state holds %d lines, geometry wants %d",
			c.cfg.Name, len(st.Lines), want)
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			ls := st.Lines[i]
			set[w] = line{tag: ls.Tag, valid: ls.Valid, lastUse: ls.LastUse}
			i++
		}
	}
	c.useClock, c.accesses, c.misses = st.UseClock, st.Accesses, st.Misses
	return nil
}

// HierarchyState is a Hierarchy's serializable contents: the three
// levels plus the epoch-rotated in-flight fill maps. epochLen is
// derived from the configuration, so only nextSwap needs saving.
type HierarchyState struct {
	IL1 State `json:"il1"`
	DL1 State `json:"dl1"`
	L2  State `json:"l2"`

	Fills         map[uint64]int64 `json:"fills,omitempty"`
	FillsPrev     map[uint64]int64 `json:"fills_prev,omitempty"`
	InstFills     map[uint64]int64 `json:"inst_fills,omitempty"`
	InstFillsPrev map[uint64]int64 `json:"inst_fills_prev,omitempty"`
	NextSwap      int64            `json:"next_swap"`
}

// State snapshots the hierarchy for a checkpoint.
func (h *Hierarchy) State() HierarchyState {
	return HierarchyState{
		IL1:           h.il1.State(),
		DL1:           h.dl1.State(),
		L2:            h.l2.State(),
		Fills:         cloneFills(h.fills),
		FillsPrev:     cloneFills(h.fillsPrev),
		InstFills:     cloneFills(h.instFills),
		InstFillsPrev: cloneFills(h.instFillsPrev),
		NextSwap:      h.nextSwap,
	}
}

// RestoreState loads a snapshot taken from a hierarchy of identical
// configuration.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if err := h.il1.RestoreState(st.IL1); err != nil {
		return err
	}
	if err := h.dl1.RestoreState(st.DL1); err != nil {
		return err
	}
	if err := h.l2.RestoreState(st.L2); err != nil {
		return err
	}
	copyFills(h.fills, st.Fills)
	copyFills(h.fillsPrev, st.FillsPrev)
	copyFills(h.instFills, st.InstFills)
	copyFills(h.instFillsPrev, st.InstFillsPrev)
	h.nextSwap = st.NextSwap
	return nil
}

func cloneFills(m map[uint64]int64) map[uint64]int64 {
	out := make(map[uint64]int64, len(m))
	for la, ready := range m {
		out[la] = ready
	}
	return out
}

func copyFills(dst, src map[uint64]int64) {
	clear(dst)
	for la, ready := range src {
		dst[la] = ready
	}
}
