package core

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// handleExec models the instruction reaching the execute stage:
// loads access the memory hierarchy and check store-to-load aliasing,
// resolving their actual latency; scheduling misses are detected at the
// (scheduled) completion stage and signal the kill one verify-latency
// later.
func (m *Machine) handleExec(ev event) {
	u := ev.u
	if u.gen != ev.gen || u.retired {
		return
	}

	m.emit(u, EvExecute)

	switch u.inst.Class {
	case isa.Load:
		m.execLoad(u)
	case isa.Store:
		// The store address enters the LSQ; data may still be pending
		// (split store-address/store-data). Warm the cache
		// (write-allocate) and complete.
		m.hier.Data(u.inst.Addr, m.cycle)
		u.actualLat = u.schedLat
		u.completeCycle = u.execStart + int64(u.actualLat)
		u.dataReadyAt = u.completeCycle
		m.schedule(u.completeCycle, event{kind: evComplete, u: u, gen: u.gen})
	default:
		u.actualLat = u.schedLat
		u.completeCycle = u.execStart + int64(u.actualLat)
		u.dataReadyAt = u.completeCycle
		m.schedule(u.completeCycle, event{kind: evComplete, u: u, gen: u.gen})
	}
}

// execLoad resolves a load's actual latency from forwarding or the
// cache hierarchy.
func (m *Machine) execLoad(u *uop) {
	var dataAt int64
	kind := missNone

	if s := m.aliasingStore(u); s != nil {
		sd := m.storeDataReadyAt(s)
		switch {
		case sd <= m.cycle:
			// Forwarded in time: behaves like a hit.
			dataAt = m.cycle + int64(u.schedLat)
		case sd == unknown:
			// The store's data producer hasn't even resolved; retry
			// after the kill with a short back-off.
			dataAt = unknown
			kind = missAlias
		default:
			dataAt = sd + 1
			kind = missAlias
		}
	} else {
		res := m.hier.Data(u.inst.Addr, m.cycle)
		lat := u.inst.Class.ExecLatency() + res.Latency
		dataAt = m.cycle + int64(lat)
		if lat > u.schedLat {
			kind = missCache
			switch res.Level {
			case cache.LevelInFlight:
				m.stats.MissInFlight++
			case cache.LevelL2:
				m.stats.MissL2++
			case cache.LevelMemory:
				m.stats.MissMemory++
			}
		}
		// The prefetcher observes each dynamic load once (replays of the
		// same load would retrain zero deltas): settle the accounting for
		// this demand line, then train and possibly start a fill.
		if m.pf != nil && u.issues == 1 {
			if m.pf.DemandUse(m.hier.DL1().LineAddr(u.inst.Addr)) {
				m.stats.PrefetchUseful++
				if res.Level == cache.LevelInFlight {
					m.stats.PrefetchLate++
				}
			}
			if pa, ok := m.pf.Observe(u.inst.PC, u.inst.Addr); ok && m.hier.Prefetch(pa, m.cycle) {
				m.stats.PrefetchIssued++
				m.pf.MarkIssued(m.hier.DL1().LineAddr(pa))
			}
		}
	}

	u.dataReadyAt = dataAt

	// Train the scheduling-miss predictor and the Figure 9 meter on the
	// first execution of each dynamic load; conservative-delayed loads
	// are recorded against what would have happened to a speculative
	// schedule.
	if u.issues == 1 {
		missedNow := kind != missNone
		m.sp.Update(u.inst.PC, missedNow)
		m.meter.Record(u.conf, missedNow)
	}

	if u.conservative {
		// Pessimistically scheduled: dependents were never woken, so
		// there is no scheduling miss to recover — the load simply
		// broadcasts once the latency is known and completes when the
		// data arrives.
		if dataAt == unknown {
			// Unresolvable alias: retry execution shortly.
			m.unissue(u)
			m.setHoldUntil(u, m.cycle+4)
			return
		}
		bc := m.cycle + 1
		if t := dataAt - int64(m.cfg.SchedToExec); t > bc {
			bc = t
		}
		u.broadcastCycle = bc
		m.schedule(bc, event{kind: evBroadcast, u: u, gen: u.gen})
		u.actualLat = int(dataAt - u.execStart)
		u.completeCycle = dataAt
		m.schedule(u.completeCycle, event{kind: evComplete, u: u, gen: u.gen})
		return
	}

	if kind == missNone {
		u.actualLat = int(dataAt - u.execStart)
		u.completeCycle = dataAt
		// Completion never precedes the advertised wakeup broadcast: a
		// load scheduled past its actual latency (LoadDelay's inflated
		// predictions) must stay live until its dependents are woken,
		// or retirement would recycle the uop out from under the
		// pending broadcast event.
		if u.broadcastCycle != unknown && u.completeCycle < u.broadcastCycle {
			u.completeCycle = u.broadcastCycle
		}
		m.schedule(u.completeCycle, event{kind: evComplete, u: u, gen: u.gen})
		return
	}

	u.missed = true
	u.missKind = kind
	u.everMissed = true
	// Detected at the scheduled completion stage; the kill reaches the
	// scheduler VerifyLatency later (together: the propagation
	// distance).
	detect := u.execStart + int64(u.schedLat)
	m.schedule(detect+int64(m.cfg.VerifyLatency), event{kind: evKill, u: u, gen: u.gen})
}

// aliasingStore returns the youngest older in-window store writing the
// load's (word-granular) address, or nil.
func (m *Machine) aliasingStore(u *uop) *uop {
	var found *uop
	for i := 0; i < m.lsqLen; i++ {
		s := m.lsqAt(i)
		if s.seq() >= u.seq() {
			break
		}
		if s.inst.Class == isa.Store && s.inst.Addr>>3 == u.inst.Addr>>3 {
			found = s
		}
	}
	return found
}

// storeDataReadyAt returns when the store's data value is available for
// forwarding, or unknown.
func (m *Machine) storeDataReadyAt(s *uop) int64 {
	if s.storeDataSeq < 0 {
		return s.execStart
	}
	p := m.lookup(s.storeDataSeq)
	if p == nil {
		// Producer retired: data long available.
		return s.execStart
	}
	if p.dataReadyAt != unknown {
		at := p.dataReadyAt
		if at < s.execStart {
			at = s.execStart
		}
		return at
	}
	return unknown
}

// handleComplete models the completion stage for an instruction whose
// scheduled execution finished. The completion verifies the schedule:
// an instruction that consumed a value which was not actually valid
// (its producer mis-scheduled) must not complete — under DSel this is
// the poison bit arriving at completion; under the precise schemes the
// kill normally beat us here and this path is a safety net.
func (m *Machine) handleComplete(ev event) {
	u := ev.u
	if u.gen != ev.gen || u.retired || m.completedState(u) {
		return
	}

	// Ground-truth poison check. Stores are exempt on their data
	// operand: they issue on address readiness alone (split
	// store-address/store-data), and data lateness is handled by the
	// forwarding check at dependent loads.
	nsrc := 2
	if u.inst.Class == isa.Store {
		nsrc = 1
	}
	bad := false
	for i := 0; i < nsrc; i++ {
		if u.srcSeq(i) >= 0 && !m.dataValidFor(m.prod(u, i), u.execStart) {
			bad = true
		}
	}
	if bad {
		// Consumed a stale value: squash, clear the stale operands and
		// wait for the producers' re-broadcasts. Schemes that reach this
		// path by design (DSel's poison bit, SerialVerify's wavefront)
		// do not count it as a safety replay.
		if m.pol.countsSafetyReplay() {
			m.stats.SafetyReplays++
		}
		m.squash(u)
		for i := 0; i < nsrc; i++ {
			p := m.prod(u, i)
			if u.srcSeq(i) >= 0 && !m.dataValidFor(p, u.execStart) {
				m.clearOperand(u, i)
				m.rearmOperand(u, i)
				m.pol.onStaleOperand(m, u, i, p)
			}
		}
		return
	}

	// Value verification: only now, with the memory access done, is the
	// predicted value checked — the non-deterministic verification delay
	// of §3.5 (cache-miss latencies included).
	if u.valuePredicted && m.vp != nil {
		correct := u.inst.ValueRepeat
		m.vp.Update(u.inst.PC, correct, true)
		if !correct {
			u.valueWrong = true
			m.stats.ValueMispredicts++
			m.valueKill(u)
		}
	} else if u.isLoad() && m.vp != nil {
		// Train the last-value table on unpredicted loads too.
		m.vp.Update(u.inst.PC, u.inst.ValueRepeat, false)
	}

	m.win.set(m.win.completed, u.slot)
	m.win.clearBit(m.win.pendStore, u.slot)
	m.emit(u, EvComplete)
	if u.dataReadyAt == unknown || u.dataReadyAt < m.cycle {
		u.dataReadyAt = m.cycle
	}
	if m.inRQ(u) {
		// Verified: the replay-queue entry is reclaimed.
		m.win.clearBit(m.win.inRQ, u.slot)
		m.rqCount--
	}

	// Branch resolution unblocks a mispredict-stalled front end.
	if u.inst.Class == isa.Branch && u.seq() == m.blockedOnSeq {
		m.blockedOnSeq = -1
		m.fetchStall = m.cycle + 1
	}

	// Verified: the policy decides when the issue-queue entry is
	// released (TkSel broadcasts the token complete state first; the
	// default is an immediate release).
	m.pol.onVerify(m, u)
}

// rearmOperand ensures a cleared operand will be woken again: if the
// producer is in flight with known timing, schedule a targeted wake;
// if it is waiting or replaying, its re-issue broadcast covers it.
func (m *Machine) rearmOperand(c *uop, i int) {
	if m.opReady(c, i) {
		return
	}
	p := m.prod(c, i)
	if p == nil {
		// No in-window producer (never renamed one, or it retired):
		// the value is architecturally available.
		m.wakeOperand(c, i, m.cycle)
		return
	}
	switch {
	case m.completedState(p):
		m.schedule(m.cycle+1, event{kind: evOpWake, u: c, op: i})
	case m.issuedState(p) && p.completeCycle != unknown:
		m.schedule(p.completeCycle+1, event{kind: evOpWake, u: c, op: i})
	case m.issuedState(p):
		m.schedule(p.execStart+1, event{kind: evOpWake, u: c, op: i})
	}
	// Otherwise: p waits in the queue; its issue broadcast will wake us.
}

// retire commits up to Width completed instructions from the ROB head,
// recycling their uops through the pool.
func (m *Machine) retire() {
	for n := 0; n < m.cfg.Width && m.robCount > 0; n++ {
		u := m.rob[m.robHead]
		if !m.completedState(u) {
			return
		}
		u.retired = true
		m.emit(u, EvRetire)
		m.releaseIQ(u)
		if m.inRQ(u) {
			m.win.clearBit(m.win.inRQ, u.slot)
			m.rqCount--
		}
		if u.inst.Class.IsMem() {
			// LSQ head must be this instruction (program order).
			if m.lsqLen > 0 && m.lsqAt(0) == u {
				m.lsqPopFront()
			}
		}
		m.win.clearSlot(u.slot)
		m.rob[m.robHead] = nil
		m.robHead = (m.robHead + 1) % len(m.rob)
		m.robCount--
		m.headSeq++
		// The retire-stream digest stops at the run target: the final
		// cycle may overshoot by up to Width-1 retirements, and those
		// must not make the digest depend on retire bandwidth.
		if m.stats.Retired < m.hashTarget {
			m.retireHash = isa.HashInst(m.retireHash, &u.inst)
		}
		m.stats.Retired++
		m.pol.onRetire(m, u)
		m.freeUop(u)
	}
}
