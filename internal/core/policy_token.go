package core

import (
	"repro/internal/token"
)

func init() {
	registerPolicy(TkSel, "TkSel", func() replayPolicy {
		return &tkselPolicy{}
	})
}

// renameEntry is one rename-vector ring slot; seq tags the occupant
// (-1 when empty).
type renameEntry struct {
	seq int64
	vec token.Vector
}

// tkselPolicy is token-based selective replay (§4.2), the paper's
// contribution: predicted-miss loads get tokens and replay precisely
// (PosSel-equivalent); token-less misses fall back to re-insert. The
// policy owns the token pool and the rename-table dependence-vector
// model; both are sized at reset and reused across runs.
type tkselPolicy struct {
	noopPolicy
	// alloc is the fixed pool of token names.
	alloc *token.Allocator
	// renameVec is the rename-table dependence-vector model: the vector
	// stored for each value-producing instruction, kept for recently
	// retired producers too (pruned as the window advances). A ring of
	// 2*ROBSize tagged entries indexed by seq: a producer's vector is
	// created at dispatch and deleted ROBSize retirements later, so an
	// occupant is always dead before its slot is reused.
	renameVec []renameEntry
}

func (p *tkselPolicy) scheme() Scheme { return TkSel }

// supportsValuePrediction: the token vector propagates through the
// rename table in program order, independent of issue timing, so the
// arbitrary verification boundary of §3.5 is recoverable.
func (p *tkselPolicy) supportsValuePrediction() bool { return true }

// usesTokenPool: the scheme allocates from the Config.Tokens pool, so
// Config.Validate requires a positive pool size (tokenPoolUser probe).
func (p *tkselPolicy) usesTokenPool() bool { return true }

func (p *tkselPolicy) reset(m *Machine) {
	if p.alloc == nil || p.alloc.Size() != m.cfg.Tokens {
		p.alloc = token.NewAllocator(m.cfg.Tokens)
	} else {
		p.alloc.Reset()
	}
	if len(p.renameVec) != 2*m.cfg.ROBSize {
		p.renameVec = make([]renameEntry, 2*m.cfg.ROBSize)
	}
	for i := range p.renameVec {
		p.renameVec[i] = renameEntry{seq: -1}
	}
}

// onRename: propagate the token vector in program order through the
// rename table (the vector is the union of the sources' vectors),
// allocate a token for the load, and store the destination's vector.
func (p *tkselPolicy) onRename(m *Machine, u *uop, wantValue bool) bool {
	var v token.Vector
	for i := 0; i < 2; i++ {
		if seq := u.srcSeq(i); seq >= 0 {
			v = v.Merge(p.vecGet(seq))
		}
	}
	u.depVec = v

	if u.isLoad() {
		// Value-predicted loads are speculation heads: they need a
		// token for the arbitrary-delay verification kill, so they
		// allocate at elevated priority — and without a token the
		// prediction is simply not used (the safe fallback).
		allocConf := u.conf
		if wantValue && allocConf < 2 {
			allocConf = 2
		}
		if id, ok, stolenFrom := p.alloc.Allocate(u.seq(), allocConf); ok {
			m.stats.Policy.TokensGranted++
			if stolenFrom >= 0 {
				m.stats.Policy.TokenSteals++
				p.reclaimToken(m, id, stolenFrom)
			}
			u.tokenID = id
			u.depVec = u.depVec.With(id)
		} else {
			m.stats.Policy.TokenDenials++
			wantValue = false
		}
	}

	if u.inst.Class.HasDest() {
		p.vecSet(u.seq(), u.depVec)
	}
	return wantValue
}

// onIssue: release the issue-queue entry at issue when the dependence
// vector is empty — no outstanding token head can invalidate the
// instruction, and the re-insert safety path recovers from the ROB,
// not the queue.
func (p *tkselPolicy) onIssue(m *Machine, u *uop) {
	if m.inIQ(u) && u.depVec.Empty() && u.tokenID < 0 {
		m.releaseIQ(u)
	}
}

func (p *tkselPolicy) onKill(m *Machine, u *uop) {
	hadToken := u.tokenID >= 0
	if hadToken {
		m.stats.Policy.MissesWithToken++
	} else if u.tokenStolen {
		m.stats.Policy.MissTokenStolen++
	} else {
		m.stats.Policy.MissTokenRefused++
	}
	m.replayLoad(u)
	if u.valuePredicted {
		return
	}
	if hadToken {
		// Token head: the kill state on the token's two wires
		// invalidates exactly the instructions carrying the token bit —
		// behaviourally the position-based precise kill.
		m.selectiveKill(u)
	} else {
		m.startReinsert(u)
	}
}

func (p *tkselPolicy) onVerify(m *Machine, u *uop) {
	if u.tokenID >= 0 {
		p.completeToken(m, u)
	}
	if u.depVec.Empty() {
		m.releaseIQ(u)
	}
}

func (p *tkselPolicy) onRetire(m *Machine, u *uop) {
	if u.tokenID >= 0 {
		// Safety: tokens are normally released at completion.
		p.alloc.Release(u.tokenID)
		u.tokenID = -1
	}
	p.vecDel(u.seq() - int64(m.cfg.ROBSize))
}

// onFlush reclaims the token of a uop a refetch-style recovery removed
// from the window without retiring it, so the name returns to the pool
// and stale vector bits are stripped.
func (p *tkselPolicy) onFlush(m *Machine, u *uop) {
	if u.tokenID < 0 {
		return
	}
	old := u.tokenID
	u.tokenID = -1
	holder := p.alloc.Holder(old)
	p.alloc.Release(old)
	p.reclaimToken(m, old, holder)
}

// completeToken broadcasts the token "complete" state (Table 2, "10"):
// release the token and clear its bit everywhere; instructions whose
// vector empties release their issue entries if already issued.
func (p *tkselPolicy) completeToken(m *Machine, u *uop) {
	id := u.tokenID
	u.tokenID = -1
	p.alloc.Release(id)
	for i := 0; i < m.robCount; i++ {
		w := m.rob[(m.robHead+i)%len(m.rob)]
		if !w.depVec.Has(id) {
			continue
		}
		w.depVec = w.depVec.Without(id)
		if w.depVec.Empty() && m.issuedState(w) && m.inIQ(w) {
			m.releaseIQ(w)
		}
	}
	for i := range p.renameVec {
		e := &p.renameVec[i]
		if e.seq >= 0 && e.vec.Has(id) {
			e.vec = e.vec.Without(id)
		}
	}
}

// reclaimToken broadcasts the reclaim state (Table 2, "11"): clear the
// token's bit from every in-window instruction and every rename-table
// vector, and strip the old head.
func (p *tkselPolicy) reclaimToken(m *Machine, id int, oldHead int64) {
	for i := 0; i < m.robCount; i++ {
		u := m.rob[(m.robHead+i)%len(m.rob)]
		u.depVec = u.depVec.Without(id)
		if u.seq() == oldHead {
			u.tokenID = -1
			u.tokenStolen = true
		}
	}
	for i := range p.renameVec {
		e := &p.renameVec[i]
		if e.seq >= 0 && e.vec.Has(id) {
			e.vec = e.vec.Without(id)
		}
	}
}

// vecGet returns the dependence vector renamed for seq (zero when none
// is live).
func (p *tkselPolicy) vecGet(seq int64) token.Vector {
	e := &p.renameVec[seq%int64(len(p.renameVec))]
	if e.seq != seq {
		var zero token.Vector
		return zero
	}
	return e.vec
}

func (p *tkselPolicy) vecSet(seq int64, v token.Vector) {
	p.renameVec[seq%int64(len(p.renameVec))] = renameEntry{seq: seq, vec: v}
}

func (p *tkselPolicy) vecDel(seq int64) {
	if seq < 0 {
		return
	}
	e := &p.renameVec[seq%int64(len(p.renameVec))]
	if e.seq == seq {
		e.seq = -1
	}
}

// tokensInUse exposes the pool occupancy for the conformance suite.
func (p *tkselPolicy) tokensInUse() int { return p.alloc.InUse() }
