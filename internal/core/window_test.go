package core

import (
	"testing"

	"repro/internal/isa"
)

// This file is the property-test battery for the structure-of-arrays
// window primitives: the word-parallel operations (ring-order bit
// iteration, the ready-summary refresh, the broadcast-compare wakeup)
// are cross-checked against naive per-slot references on windows whose
// sizes straddle the word boundaries — 63, 64, 65, 127, 128 — so the
// masking of the last partial word and the two-segment ring split are
// exercised, not just the aligned easy case.

// fuzzSizes are the window sizes the fuzz targets cycle through:
// one-word partial, exact one word, just past one word, two-word
// partial, exact two words, the paper's two machines, and an odd
// five-word partial.
var fuzzSizes = [...]int{63, 64, 65, 127, 128, 256, 301}

// splitmix64 is the fuzz targets' deterministic expander: one input
// seed fans out into as many plane words as a case needs.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fillPlane populates a bitmap plane from the seed, masking bits at
// and above size so the plane is well-formed like a live window's.
func fillPlane(bm []uint64, size int, rng *uint64) {
	for i := range bm {
		bm[i] = splitmix64(rng)
	}
	if tail := size & 63; tail != 0 {
		bm[len(bm)-1] &= ^uint64(0) >> (64 - uint(tail))
	}
}

// FuzzBitmapOps cross-checks the window's word-parallel primitives
// against slot-at-a-time references: ringIter must enumerate exactly
// the set bits of [head, head+count) oldest-first (including across
// the wrap and in the last partial word), clearing the yielded bit
// mid-iteration must not disturb the sequence, and the single-bit
// test/set/clear ops must behave like an independent boolean array.
func FuzzBitmapOps(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint16(63), uint64(1))
	f.Add(uint8(1), uint16(63), uint16(64), uint64(2))   // whole ring, wraps
	f.Add(uint8(2), uint16(64), uint16(1), uint64(3))    // second word start
	f.Add(uint8(3), uint16(126), uint16(127), uint64(4)) // partial-word wrap
	f.Add(uint8(4), uint16(127), uint16(128), uint64(5))
	f.Add(uint8(6), uint16(300), uint16(301), uint64(6)) // last slot of a partial word
	f.Fuzz(func(t *testing.T, sizeSel uint8, head, count uint16, seed uint64) {
		size := fuzzSizes[int(sizeSel)%len(fuzzSizes)]
		h := int(head) % size
		n := int(count) % (size + 1)
		rng := seed

		var w schedWindow
		w.init(size)
		fillPlane(w.inIQ, size, &rng)

		// Reference: walk the ring slot by slot.
		var want []int32
		for i := 0; i < n; i++ {
			slot := int32((h + i) % size)
			if w.test(w.inIQ, slot) {
				want = append(want, slot)
			}
		}

		it := newRingIter(w.inIQ, h, n, size)
		for i, wantSlot := range want {
			got, ok := it.next()
			if !ok {
				t.Fatalf("size=%d head=%d count=%d: iterator ended at %d of %d slots", size, h, n, i, len(want))
			}
			if got != wantSlot {
				t.Fatalf("size=%d head=%d count=%d: slot %d = %d, want %d", size, h, n, i, got, wantSlot)
			}
		}
		if got, ok := it.next(); ok {
			t.Fatalf("size=%d head=%d count=%d: iterator yielded extra slot %d", size, h, n, got)
		}

		// Clearing the yielded bit mid-iteration (the select scan and
		// re-insert drain both do this) must not change the sequence.
		it = newRingIter(w.inIQ, h, n, size)
		for i := 0; ; i++ {
			got, ok := it.next()
			if !ok {
				if i != len(want) {
					t.Fatalf("destructive pass ended at %d of %d slots", i, len(want))
				}
				break
			}
			if i >= len(want) || got != want[i] {
				t.Fatalf("destructive pass slot %d = %d, want sequence %v", i, got, want)
			}
			w.clearBit(w.inIQ, got)
		}
		for _, slot := range want {
			if w.test(w.inIQ, slot) {
				t.Fatalf("slot %d still set after clearBit", slot)
			}
		}

		// Single-bit ops against an independent boolean model.
		model := make([]bool, size)
		fillPlane(w.issued, size, &rng)
		for i := 0; i < size; i++ {
			model[i] = w.test(w.issued, int32(i))
		}
		for op := 0; op < 3*size; op++ {
			slot := int32(splitmix64(&rng) % uint64(size))
			switch splitmix64(&rng) % 3 {
			case 0:
				w.set(w.issued, slot)
				model[slot] = true
			case 1:
				w.clearBit(w.issued, slot)
				model[slot] = false
			case 2:
				if w.test(w.issued, slot) != model[slot] {
					t.Fatalf("test(%d) = %v, model %v", slot, w.test(w.issued, slot), model[slot])
				}
			}
		}
		for i := 0; i < size; i++ {
			if w.test(w.issued, int32(i)) != model[i] {
				t.Fatalf("final state: bit %d = %v, model %v", i, w.test(w.issued, int32(i)), model[i])
			}
		}
	})
}

// FuzzReadySummary cross-checks the ready-plane maintenance: after an
// arbitrary interleaving of setOp/clearOp/needMask transitions, every
// slot's summary bit must equal the naive recomputation from the
// operand lanes, and clearSlot must leave no state behind in any
// plane.
func FuzzReadySummary(f *testing.F) {
	f.Add(uint8(0), uint64(1))
	f.Add(uint8(3), uint64(42))
	f.Add(uint8(4), uint64(7))
	f.Fuzz(func(t *testing.T, sizeSel uint8, seed uint64) {
		size := fuzzSizes[int(sizeSel)%len(fuzzSizes)]
		rng := seed
		var w schedWindow
		w.init(size)
		for op := 0; op < 4*size; op++ {
			slot := int32(splitmix64(&rng) % uint64(size))
			lane := int(splitmix64(&rng) % 2)
			switch splitmix64(&rng) % 4 {
			case 0:
				w.needMask[slot] = uint8(splitmix64(&rng) % 4)
				w.refreshReady(slot)
			case 1:
				w.setOp(lane, slot, int64(op))
			case 2:
				w.clearOp(lane, slot)
			case 3:
				// A vacated slot is all-clear by definition (it is not
				// live; insert's refreshReady re-derives the summary when
				// a new occupant arrives), so it is exempt from the
				// summary invariant below.
				w.clearSlot(slot)
				for _, bm := range [][]uint64{w.ready, w.opReady[0], w.opReady[1], w.opTagged[0], w.opTagged[1]} {
					if w.test(bm, slot) {
						t.Fatalf("slot %d: state bit survived clearSlot", slot)
					}
				}
				continue
			}
			// Invariant after every step, for the touched slot.
			var got uint8
			if w.test(w.opReady[0], slot) {
				got |= 1
			}
			if w.test(w.opReady[1], slot) {
				got |= 2
			}
			if want := w.needMask[slot]&^got == 0; w.test(w.ready, slot) != want {
				t.Fatalf("slot %d: ready bit %v, recomputed %v (need %b have %b)",
					slot, w.test(w.ready, slot), want, w.needMask[slot], got)
			}
		}
		// Clear everything; every plane must read empty.
		for i := 0; i < size; i++ {
			w.clearSlot(int32(i))
		}
		for _, bm := range [][]uint64{
			w.inIQ, w.inRQ, w.issued, w.completed, w.ready, w.loads, w.pendStore, w.reinsert,
			w.opTagged[0], w.opTagged[1], w.opReady[0], w.opReady[1],
		} {
			for wi, word := range bm {
				if word != 0 {
					t.Fatalf("plane word %d = %#x after clearing every slot", wi, word)
				}
			}
		}
	})
}

// FuzzBroadcastCompare drives the real wakeup path — handleBroadcast's
// word-parallel tag match — on a hand-built window and checks it wakes
// exactly the operands a naive per-slot walk says it should: tagged
// with the producer's sequence number and not already ready. Already
// ready operands must keep their original wokenAt (the guard the
// countdown-timer invalidation depends on).
func FuzzBroadcastCompare(f *testing.F) {
	f.Add(uint8(8), uint64(1))
	f.Add(uint8(40), uint64(2))
	f.Add(uint8(100), uint64(3))
	f.Fuzz(func(t *testing.T, pop uint8, seed uint64) {
		cfg := Config4Wide()
		cfg.IQSize = cfg.ROBSize // let the chain fill the whole window
		cfg.MaxInsts = 1 << 30
		// A dependent chain: retirement serializes at one per cycle while
		// fetch runs at full width, so the window genuinely fills.
		m, err := New(cfg, &synthStream{next: func(seq int64) isa.Inst {
			return isa.Inst{PC: 0x400000, Class: isa.IntALU, Src1: seq - 1, Src2: -1}
		}})
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + int(pop)%(cfg.ROBSize-2)
		rng := seed
		// Dispatch n instructions through the real insert path.
		for i := 0; m.robCount < n && i < 100_000; i++ {
			m.step()
		}
		if m.robCount < n {
			t.Fatalf("window stuck at %d of %d uops", m.robCount, n)
		}
		m.cycle += 100 // broadcasts land at a fresh cycle
		type opstate struct {
			tagged, ready bool
			tag, wokenAt  int64
		}
		// Rewire random waiting operands to random producers so the tag
		// planes carry collisions and non-matches in the same words.
		w := &m.win
		for i := 1; i < m.robCount; i++ {
			u := m.rob[(m.robHead+i)%len(m.rob)]
			if splitmix64(&rng)%2 == 0 {
				continue
			}
			p := m.rob[(m.robHead+int(splitmix64(&rng)%uint64(i)))%len(m.rob)]
			lane := int(splitmix64(&rng) % 2)
			w.tag[lane][u.slot] = p.seq()
			w.set(w.opTagged[lane], u.slot)
			w.linkConsumer(lane, p.slot, u.slot)
			if splitmix64(&rng)%2 == 0 {
				w.clearOp(lane, u.slot)
			} else {
				w.setOp(lane, u.slot, m.cycle-int64(splitmix64(&rng)%5))
			}
		}
		p := m.rob[(m.robHead+int(splitmix64(&rng)%uint64(m.robCount)))%len(m.rob)]
		pseq := p.seq()

		before := make(map[[2]int32]opstate)
		for i := 0; i < m.robCount; i++ {
			u := m.rob[(m.robHead+i)%len(m.rob)]
			for lane := 0; lane < 2; lane++ {
				before[[2]int32{u.slot, int32(lane)}] = opstate{
					tagged:  w.test(w.opTagged[lane], u.slot),
					ready:   w.test(w.opReady[lane], u.slot),
					tag:     w.tag[lane][u.slot],
					wokenAt: w.wokenAt[lane][u.slot],
				}
			}
		}

		m.handleBroadcast(event{kind: evBroadcast, u: p, gen: p.gen})

		for i := 0; i < m.robCount; i++ {
			u := m.rob[(m.robHead+i)%len(m.rob)]
			for lane := 0; lane < 2; lane++ {
				prev := before[[2]int32{u.slot, int32(lane)}]
				ready := w.test(w.opReady[lane], u.slot)
				woken := w.wokenAt[lane][u.slot]
				switch {
				case prev.ready:
					if !ready || woken != prev.wokenAt {
						t.Fatalf("slot %d lane %d: already-ready operand disturbed (ready=%v wokenAt %d -> %d)",
							u.slot, lane, ready, prev.wokenAt, woken)
					}
				case prev.tagged && prev.tag == pseq:
					if !ready || woken != m.cycle {
						t.Fatalf("slot %d lane %d: matching operand not woken (ready=%v wokenAt=%d cycle=%d)",
							u.slot, lane, ready, woken, m.cycle)
					}
				default:
					if ready {
						t.Fatalf("slot %d lane %d: non-matching operand woken (tag %d, broadcast %d)",
							u.slot, lane, prev.tag, pseq)
					}
				}
			}
		}
	})
}
