package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
)

func TestRunIsDeterministic(t *testing.T) {
	run := func() *Stats {
		p, _ := workload.ByName("twolf")
		gen, _ := workload.NewGenerator(p, 99)
		cfg := Config4Wide()
		cfg.Scheme = TkSel
		cfg.MaxInsts = 15_000
		cfg.Warmup = 5_000
		m, _ := New(cfg, gen)
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.TotalIssues != b.TotalIssues ||
		a.LoadSchedMisses != b.LoadSchedMisses || a.Policy.MissesWithToken != b.Policy.MissesWithToken ||
		a.SquashedIssues != b.SquashedIssues {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestRunTwiceFails(t *testing.T) {
	p, _ := workload.ByName("gap")
	gen, _ := workload.NewGenerator(p, 1)
	cfg := Config4Wide()
	cfg.MaxInsts = 1000
	m, _ := New(cfg, gen)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	p, _ := workload.ByName("gap")
	gen, _ := workload.NewGenerator(p, 1)
	cfg := Config4Wide()
	cfg.Width = -1
	if _, err := New(cfg, gen); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestWarmupSubtraction(t *testing.T) {
	p, _ := workload.ByName("gap")
	base := func(warmup int64) *Stats {
		gen, _ := workload.NewGenerator(p, 7)
		cfg := Config4Wide()
		cfg.MaxInsts = 10_000
		cfg.Warmup = warmup
		m, _ := New(cfg, gen)
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cold := base(0)
	warm := base(20_000)
	// Retirement proceeds in batches of up to Width, so the measured
	// count may overshoot by a few.
	for _, st := range []*Stats{warm, cold} {
		if st.Retired < 10_000-8 || st.Retired > 10_000+8 {
			t.Fatalf("retired counts wrong: %d / %d", warm.Retired, cold.Retired)
		}
	}
	// Warm measurement must not include the compulsory-miss start-up:
	// higher IPC than the cold-start window.
	if warm.IPC() <= cold.IPC() {
		t.Errorf("warm IPC %.3f should exceed cold IPC %.3f", warm.IPC(), cold.IPC())
	}
}

// Window invariants checked every cycle while stepping a live machine.
func TestWindowInvariants(t *testing.T) {
	p, _ := workload.ByName("vpr")
	gen, _ := workload.NewGenerator(p, 3)
	cfg := Config4Wide()
	cfg.Scheme = TkSel
	cfg.MaxInsts = 20_000
	m, _ := New(cfg, gen)
	for m.stats.Retired < cfg.MaxInsts {
		m.step()
		if m.robCount < 0 || m.robCount > cfg.ROBSize {
			t.Fatalf("cycle %d: robCount %d out of range", m.cycle, m.robCount)
		}
		// TkSel's replay slot reservation may transiently exceed by a
		// few entries, never wildly.
		if m.iqCount < 0 || m.iqCount > cfg.IQSize+8 {
			t.Fatalf("cycle %d: iqCount %d out of range", m.cycle, m.iqCount)
		}
		if m.lsqLen > cfg.LSQSize {
			t.Fatalf("cycle %d: LSQ %d over capacity", m.cycle, m.lsqLen)
		}
		// LSQ stays in program order.
		for i := 1; i < m.lsqLen; i++ {
			if m.lsqAt(i).seq() <= m.lsqAt(i-1).seq() {
				t.Fatalf("cycle %d: LSQ out of order", m.cycle)
			}
		}
		// ROB sequence density.
		if m.robCount > 0 {
			head := m.rob[m.robHead]
			if head.seq() != m.headSeq {
				t.Fatalf("cycle %d: head seq %d != headSeq %d", m.cycle, head.seq(), m.headSeq)
			}
		}
	}
}

// Retirement must be strictly in program order with no gaps.
func TestRetireInOrder(t *testing.T) {
	p, _ := workload.ByName("gcc")
	gen, _ := workload.NewGenerator(p, 5)
	cfg := Config4Wide()
	cfg.Scheme = NonSel
	cfg.MaxInsts = 10_000
	m, _ := New(cfg, gen)
	prevHead := int64(0)
	for m.stats.Retired < cfg.MaxInsts {
		m.step()
		if m.headSeq < prevHead {
			t.Fatalf("headSeq went backward: %d -> %d", prevHead, m.headSeq)
		}
		prevHead = m.headSeq
	}
	if m.headSeq != m.stats.Retired {
		t.Fatalf("headSeq %d != retired %d", m.headSeq, m.stats.Retired)
	}
}

// Property: on random mixed streams, every scheme preserves the basic
// accounting identities.
func TestQuickSchemeAccounting(t *testing.T) {
	f := func(seed int64, schemeRaw uint8) bool {
		scheme := Scheme(schemeRaw % uint8(numSchemes))
		rng := rand.New(rand.NewSource(seed))
		// producers tracks recent value-producing sequence numbers so
		// dependences honor the isa.Inst contract.
		var producers []int64
		pick := func() int64 {
			if len(producers) == 0 || rng.Intn(2) == 0 {
				return -1
			}
			return producers[len(producers)-1-rng.Intn(min(4, len(producers)))]
		}
		pat := func(seq int64) isa.Inst {
			r := rng.Float64()
			var in isa.Inst
			switch {
			case r < 0.25:
				in = isa.Inst{PC: 0x400000 + uint64(seq%64)*4, Class: isa.Load,
					Src1: pick(), Src2: -1, Addr: 0x1000_0000 + uint64(rng.Intn(64))*64}
			case r < 0.33:
				in = isa.Inst{PC: 0x400200 + uint64(seq%32)*4, Class: isa.Store,
					Src1: -1, Src2: pick(),
					Addr: 0x1000_0000 + uint64(rng.Intn(64))*64}
			default:
				in = isa.Inst{PC: 0x400400 + uint64(seq%64)*4, Class: isa.IntALU,
					Src1: pick(), Src2: -1}
			}
			if in.Class.HasDest() {
				producers = append(producers, seq)
				if len(producers) > 16 {
					producers = producers[1:]
				}
			}
			return in
		}
		cfg := Config4Wide()
		cfg.Scheme = scheme
		cfg.MaxInsts = 3000
		m, err := New(cfg, &synthStream{next: pat})
		if err != nil {
			return false
		}
		st, err := m.Run()
		if err != nil {
			return false
		}
		return st.Retired >= 3000 &&
			st.TotalIssues >= st.FirstIssues &&
			st.FirstIssues >= uint64(st.Retired)-uint64(cfg.ROBSize) &&
			st.Policy.MissesWithToken <= st.LoadSchedMisses &&
			st.LoadIssues <= st.TotalIssues
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Store producers referenced by loads via forwarding must behave: a
// load right after a store to the same address whose data is long ready
// forwards without a scheduling miss.
func TestStoreToLoadForwardingHit(t *testing.T) {
	pat := func(seq int64) isa.Inst {
		switch seq % 8 {
		case 0:
			return isa.Inst{PC: 0x400000, Class: isa.Store, Src1: -1, Src2: -1,
				Addr: 0x1000_0000 + uint64(seq%4)*8}
		case 1:
			return isa.Inst{PC: 0x400004, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x1000_0000 + uint64((seq-1)%4)*8}
		default:
			return isa.Inst{PC: 0x400010, Class: isa.IntALU, Src1: -1, Src2: -1}
		}
	}
	cfg := Config4Wide()
	cfg.MaxInsts = 4000
	m, _ := New(cfg, &synthStream{next: pat})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.AliasMisses > 0 {
		t.Errorf("ready store data still caused %d alias misses", st.AliasMisses)
	}
}

// A load aliasing a store whose data producer is a long-latency divide
// must incur an alias scheduling miss and still complete.
func TestStoreToLoadAliasMiss(t *testing.T) {
	pat := func(seq int64) isa.Inst {
		switch seq % 8 {
		case 0:
			return isa.Inst{PC: 0x400000, Class: isa.IntDiv, Src1: -1, Src2: -1}
		case 1:
			// Store whose data is the divide: data late by ~20 cycles.
			return isa.Inst{PC: 0x400004, Class: isa.Store, Src1: -1, Src2: seq - 1,
				Addr: 0x1000_0000 + uint64(seq%4)*8}
		case 2:
			return isa.Inst{PC: 0x400008, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x1000_0000 + uint64((seq-1)%4)*8}
		default:
			return isa.Inst{PC: 0x400010, Class: isa.IntALU, Src1: -1, Src2: -1}
		}
	}
	cfg := Config4Wide()
	cfg.MaxInsts = 4000
	m, _ := New(cfg, &synthStream{next: pat})
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.AliasMisses == 0 {
		t.Error("late store data never caused an alias scheduling miss")
	}
}
