package core

// DSel is delayed selective replay (§3.4.2): NonSel's kill in the
// scheduler, but issued instructions keep flowing with poison bits and
// a completion bus re-validates independents when they complete
// cleanly. The shared shadowPolicy implementation lives in
// policy_nonsel.go.
func init() {
	registerPolicy(DSel, "DSel", func() replayPolicy {
		return &shadowPolicy{s: DSel}
	})
}
