package core

import (
	"testing"

	"repro/internal/workload"
)

// The precision property behind TkSel (§4.2): because dependence vectors
// are merged in program order through the rename table, a set token bit
// must always point at a true transitive ancestor of the instruction —
// otherwise a token kill would invalidate independent instructions and
// the scheme would not be "precise ... the same as in the position-based
// selective replay".
//
// The test shadows the machine with its own ancestor bookkeeping built
// purely from the instruction stream (sequence-numbered source edges +
// which loads held a token at dispatch) and checks every dispatched
// instruction's vector against it.
func TestTkSelVectorPrecision(t *testing.T) {
	p, _ := workload.ByName("twolf") // high miss rate: heavy token churn
	gen, _ := workload.NewGenerator(p, 21)
	cfg := Config4Wide()
	cfg.Scheme = TkSel
	cfg.Tokens = 4 // small pool: constant stealing/reclaiming
	cfg.MaxInsts = 25_000
	m, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}

	// tokenAncestors[seq] = the set of token-holding-load seqs in the
	// instruction's transitive ancestry (at their dispatch times).
	tokenAncestors := map[int64]map[int64]bool{}
	prune := int64(0)

	checked := 0
	lastSeen := int64(-1)
	for m.stats.Retired < cfg.MaxInsts {
		m.step()
		// Examine instructions dispatched this cycle.
		for seq := lastSeen + 1; seq < m.tailSeq(); seq++ {
			u := m.lookup(seq)
			if u == nil {
				continue
			}
			anc := map[int64]bool{}
			for i := 0; i < 2; i++ {
				src := u.srcSeq(i)
				if src < 0 {
					continue
				}
				for a := range tokenAncestors[src] {
					anc[a] = true
				}
				if sp := m.lookup(src); sp != nil && sp.tokenID >= 0 {
					anc[src] = true
				} else if sp == nil {
					// Retired producer: if it ever held a token the
					// token has been released; nothing to add.
					_ = sp
				} else if sp.isLoad() && sp.tokenID < 0 {
					// May have held a token at ITS dispatch that was
					// since reclaimed; the vector machinery must have
					// cleared the bit, which the check below verifies.
					_ = sp
				}
			}
			// Also: a source that currently holds a token is an
			// ancestor head by definition (handled above); now verify
			// the machine's vector.
			for id := 0; id < cfg.Tokens; id++ {
				if !u.depVec.Has(id) {
					continue
				}
				holder := m.pol.(*tkselPolicy).alloc.Holder(id)
				if holder < 0 {
					t.Fatalf("seq %d: vector bit %d set but token is free", seq, id)
				}
				if holder != seq && !ancestorHasSeq(tokenAncestors, u, holder, m) {
					t.Fatalf("seq %d: vector bit %d points at seq %d, which is not an ancestor",
						seq, id, holder)
				}
				checked++
			}
			tokenAncestors[seq] = anc
			lastSeen = seq
		}
		// Prune bookkeeping far behind the window.
		for ; prune < m.headSeq-512; prune++ {
			delete(tokenAncestors, prune)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d vector bits checked; workload too quiet", checked)
	}
}

// ancestorHasSeq reports whether target appears in u's transitive
// ancestry per the shadow bookkeeping (direct sources included).
func ancestorHasSeq(tokenAncestors map[int64]map[int64]bool, u *uop, target int64, m *Machine) bool {
	for i := 0; i < 2; i++ {
		src := u.srcSeq(i)
		if src < 0 {
			continue
		}
		if src == target || tokenAncestors[src][target] {
			return true
		}
	}
	return false
}
