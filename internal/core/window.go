package core

import (
	"math/bits"

	"repro/internal/isa"
)

// schedWindow is the structure-of-arrays scheduler window: the hot
// per-uop scheduling state — queue membership, issue/completion status,
// operand readiness, source tags, latency class and replay timers —
// lives in parallel arrays indexed by window slot, with the boolean
// planes packed into uint64 bitmap words. The wakeup/select loop then
// runs word-parallel: select is a TrailingZeros64 priority scan over a
// candidate word composed from five planes, and wakeup is a
// broadcast-compare of the producer tag against the waiting-operand
// tag arrays. A uop's slot is fixed for its whole window residency
// (slot = seq mod ROBSize — the ROB ring never compacts), so the slot
// index stored on the uop at dispatch stays valid until retirement.
//
// Everything outside this file goes through the slot-accessor API (the
// Machine methods below), so the policies, monitors and tests never
// touch the packed representation directly.
type schedWindow struct {
	size  int // slots (== ROBSize)
	words int // bitmap words, (size+63)/64

	// Scheduling-state planes. A bit may be set only while its slot is
	// occupied; vacating a slot clears every plane.
	inIQ      []uint64 // occupies an issue-queue entry
	inRQ      []uint64 // occupies a replay-queue entry (Figure 4b model)
	issued    []uint64 // currently issued (selected, in flight)
	completed []uint64 // finished execution with verified data
	ready     []uint64 // every needed operand (speculatively) ready
	loads     []uint64 // latency class == Load (memory-dependence gate)
	// pendStore marks stores that have neither issued nor completed:
	// the first set bit in ring order is the oldest unissued store the
	// §5.1 load gate compares against (replacing the per-select LSQ
	// scan — the LSQ holds exactly the in-window memory ops in program
	// order, so the two formulations agree).
	pendStore []uint64
	reinsert  []uint64 // flushed, awaiting program-order re-insertion

	// Per-operand wakeup state, one lane per source operand. opTagged
	// marks operands renamed to a live in-window producer; opReady
	// marks (speculatively) available operands. The broadcast-compare
	// scans opTagged &^ opReady and matches tag against the producer's
	// sequence number.
	opTagged [2][]uint64
	opReady  [2][]uint64
	tag      [2][]int64
	wokenAt  [2][]int64

	// consMask is the wakeup broadcast's sparse index: one bitmap row
	// per producer slot and operand lane, marking the slots whose lane
	// was renamed to that producer. The broadcast then touches only the
	// producer's own row instead of scanning every waiting operand in
	// the window. Rows may carry stale bits after a consumer slot is
	// recycled; the broadcast's tag compare filters (and lazily clears)
	// them, so the row is a superset index, never ground truth — the
	// tag arrays stay the authority. A row is zeroed when its producer
	// slot vacates.
	consMask [2][]uint64 // lane-major, row = [slot*words, (slot+1)*words)

	// Replay timers and the select scan's per-slot operands.
	holdUntil []int64
	rqRetryAt []int64
	class     []isa.Class
	// needMask encodes which operand lanes gate readiness: bit i set
	// when lane i must be ready before select. Stores wait only on the
	// address operand (lane 0); the data operand is tracked for
	// forwarding but never gates issue.
	needMask []uint8
}

// init (re)shapes the window for size slots, reusing the arrays when
// the size is unchanged and zeroing all state either way.
func (w *schedWindow) init(size int) {
	words := (size + 63) / 64
	if w.size != size {
		w.size, w.words = size, words
		alloc := func() []uint64 { return make([]uint64, words) }
		w.inIQ, w.inRQ, w.issued, w.completed = alloc(), alloc(), alloc(), alloc()
		w.ready, w.loads, w.pendStore, w.reinsert = alloc(), alloc(), alloc(), alloc()
		for lane := 0; lane < 2; lane++ {
			w.opTagged[lane], w.opReady[lane] = alloc(), alloc()
			w.tag[lane] = make([]int64, size)
			w.wokenAt[lane] = make([]int64, size)
			w.consMask[lane] = make([]uint64, size*words)
		}
		w.holdUntil = make([]int64, size)
		w.rqRetryAt = make([]int64, size)
		w.class = make([]isa.Class, size)
		w.needMask = make([]uint8, size)
	}
	for _, bm := range [][]uint64{
		w.inIQ, w.inRQ, w.issued, w.completed, w.ready, w.loads, w.pendStore, w.reinsert,
		w.opTagged[0], w.opTagged[1], w.opReady[0], w.opReady[1],
	} {
		for i := range bm {
			bm[i] = 0
		}
	}
	for lane := 0; lane < 2; lane++ {
		for i := 0; i < size; i++ {
			w.tag[lane][i] = -1
			w.wokenAt[lane][i] = 0
		}
		for i := range w.consMask[lane] {
			w.consMask[lane][i] = 0
		}
	}
	for i := 0; i < size; i++ {
		w.holdUntil[i], w.rqRetryAt[i] = 0, 0
		w.class[i], w.needMask[i] = 0, 0
	}
}

// test/set/clear are the single-bit primitives every plane shares.
func (w *schedWindow) test(bm []uint64, slot int32) bool {
	return bm[slot>>6]>>(uint(slot)&63)&1 != 0
}

func (w *schedWindow) set(bm []uint64, slot int32) {
	bm[slot>>6] |= 1 << (uint(slot) & 63)
}

func (w *schedWindow) clearBit(bm []uint64, slot int32) {
	bm[slot>>6] &^= 1 << (uint(slot) & 63)
}

// refreshReady recomputes the slot's all-operands-ready summary bit
// from the operand lanes and the need mask. Called on every operand
// transition so the select scan's ready plane is always current.
func (w *schedWindow) refreshReady(slot int32) {
	got := uint8(w.opReady[0][slot>>6] >> (uint(slot) & 63) & 1)
	got |= uint8(w.opReady[1][slot>>6]>>(uint(slot)&63)&1) << 1
	if w.needMask[slot]&^got == 0 {
		w.set(w.ready, slot)
	} else {
		w.clearBit(w.ready, slot)
	}
}

// setOp marks operand lane of slot (speculatively) ready as of cycle
// at. Unconditional — callers that must preserve an earlier wokenAt
// (broadcast, targeted wakes) guard on opReady first, as the
// pointer-based scheduler did.
func (w *schedWindow) setOp(lane int, slot int32, at int64) {
	w.set(w.opReady[lane], slot)
	w.wokenAt[lane][slot] = at
	w.refreshReady(slot)
}

// clearOp invalidates operand lane of slot.
func (w *schedWindow) clearOp(lane int, slot int32) {
	w.clearBit(w.opReady[lane], slot)
	w.refreshReady(slot)
}

// clearSlot erases every plane and array entry for a slot: called when
// the slot is vacated (retire, refetch flush) and when a new occupant
// is installed, so stale bits can never leak into a word scan.
func (w *schedWindow) clearSlot(slot int32) {
	w.clearBit(w.inIQ, slot)
	w.clearBit(w.inRQ, slot)
	w.clearBit(w.issued, slot)
	w.clearBit(w.completed, slot)
	w.clearBit(w.ready, slot)
	w.clearBit(w.loads, slot)
	w.clearBit(w.pendStore, slot)
	w.clearBit(w.reinsert, slot)
	for lane := 0; lane < 2; lane++ {
		w.clearBit(w.opTagged[lane], slot)
		w.clearBit(w.opReady[lane], slot)
		w.tag[lane][slot] = -1
		w.wokenAt[lane][slot] = 0
	}
	w.holdUntil[slot], w.rqRetryAt[slot] = 0, 0
	w.class[slot], w.needMask[slot] = 0, 0
	for lane := 0; lane < 2; lane++ {
		row := w.consMask[lane][int(slot)*w.words : (int(slot)+1)*w.words]
		for i := range row {
			row[i] = 0
		}
	}
}

// linkConsumer records in the producer slot's broadcast row that
// cslot's operand lane was renamed to it. Paired with every tag write
// that names a live producer, so a producer's row always covers its
// live tag-matching consumers.
func (w *schedWindow) linkConsumer(lane int, pslot, cslot int32) {
	w.consMask[lane][int(pslot)*w.words+int(cslot>>6)] |= 1 << (uint(cslot) & 63)
}

// ringIter iterates the set bits of one bitmap plane over the occupied
// window ring [head, head+count), oldest slot first — the ring splits
// into at most two ascending slot segments, and within a segment the
// scan is a TrailingZeros64 walk over masked words. The iterator is a
// plain value; it allocates nothing.
type ringIter struct {
	bm    []uint64
	segLo [2]int
	segHi [2]int // exclusive; lo >= hi means the segment is empty
	seg   int
	wi    int
	cur   uint64
}

// newRingIter positions an iterator over bm's bits within the ring
// [head, head+count) of a size-slot window.
func newRingIter(bm []uint64, head, count, size int) ringIter {
	n1 := count
	if head+n1 > size {
		n1 = size - head
	}
	it := ringIter{bm: bm}
	it.segLo[0], it.segHi[0] = head, head+n1
	it.segLo[1], it.segHi[1] = 0, count-n1
	it.wi = head >> 6
	it.cur = it.word(0, it.wi)
	return it
}

// word returns bm's word wi masked to segment seg's slot bounds.
func (it *ringIter) word(seg, wi int) uint64 {
	lo, hi := it.segLo[seg], it.segHi[seg]
	if lo >= hi {
		return 0
	}
	v := it.bm[wi]
	if base := wi << 6; base < lo {
		v &= ^uint64(0) << (uint(lo - base))
	}
	if top := (wi + 1) << 6; top > hi {
		v &= ^uint64(0) >> (uint(top - hi))
	}
	return v
}

// next returns the next set slot in ring order, or ok=false when the
// ring is exhausted. Clearing the returned slot's bit (or any earlier
// bit) while iterating is safe: the current word is cached.
func (it *ringIter) next() (int32, bool) {
	for {
		if it.cur != 0 {
			b := bits.TrailingZeros64(it.cur)
			it.cur &= it.cur - 1
			return int32(it.wi<<6 | b), true
		}
		it.wi++
		if it.seg == 0 && it.wi<<6 >= it.segHi[0] {
			it.seg = 1
			it.wi = 0
		}
		if it.seg == 1 && it.wi<<6 >= it.segHi[1] {
			return 0, false
		}
		it.cur = it.word(it.seg, it.wi)
	}
}

// --- Slot-accessor API -------------------------------------------------
//
// Everything outside the scheduler core — the nine policies, the
// invariant monitors, the tests — reads and writes window state through
// these Machine methods, keyed by the uop. The packed representation
// stays private to this file.

// seqAt converts a ring slot back to its occupant's sequence number
// (valid only for occupied slots).
func (m *Machine) seqAt(slot int32) int64 {
	d := int(slot) - m.robHead
	if d < 0 {
		d += m.win.size
	}
	return m.headSeq + int64(d)
}

// inIQ reports whether u currently holds an issue-queue entry.
func (m *Machine) inIQ(u *uop) bool { return m.win.test(m.win.inIQ, u.slot) }

// inRQ reports whether u currently holds a replay-queue entry.
func (m *Machine) inRQ(u *uop) bool { return m.win.test(m.win.inRQ, u.slot) }

// issuedState reports whether u is currently issued (selected, in
// flight toward / through execution).
func (m *Machine) issuedState(u *uop) bool { return m.win.test(m.win.issued, u.slot) }

// completedState reports whether u finished execution with valid data.
func (m *Machine) completedState(u *uop) bool { return m.win.test(m.win.completed, u.slot) }

// allReady reports whether every operand u waits on is (speculatively)
// ready — the select precondition.
func (m *Machine) allReady(u *uop) bool { return m.win.test(m.win.ready, u.slot) }

// opReady reports operand i's (speculative) readiness.
func (m *Machine) opReady(u *uop, i int) bool { return m.win.test(m.win.opReady[i], u.slot) }

// producerOf returns the sequence number of operand i's in-window
// producer at rename time, or -1.
func (m *Machine) producerOf(u *uop, i int) int64 { return m.win.tag[i][u.slot] }

// opWokenAt returns the cycle operand i last became ready (drives the
// §3.3 countdown-timer invalidation).
func (m *Machine) opWokenAt(u *uop, i int) int64 { return m.win.wokenAt[i][u.slot] }

// wakeOperand marks operand i ready as of cycle at.
func (m *Machine) wakeOperand(u *uop, i int, at int64) { m.win.setOp(i, u.slot, at) }

// clearOperand invalidates operand i.
func (m *Machine) clearOperand(u *uop, i int) { m.win.clearOp(i, u.slot) }

// holdUntil returns the cycle before which u may not be re-selected.
func (m *Machine) holdUntil(u *uop) int64 { return m.win.holdUntil[u.slot] }

// setHoldUntil blocks u's re-selection until cycle cy.
func (m *Machine) setHoldUntil(u *uop, cy int64) { m.win.holdUntil[u.slot] = cy }

// rqRetryAt returns the replay-queue blind-retry cycle.
func (m *Machine) rqRetryAt(u *uop) int64 { return m.win.rqRetryAt[u.slot] }

// setRQRetryAt arms the replay-queue blind retry.
func (m *Machine) setRQRetryAt(u *uop, cy int64) { m.win.rqRetryAt[u.slot] = cy }

// needsReinsert reports whether u awaits program-order re-insertion.
func (m *Machine) needsReinsert(u *uop) bool { return m.win.test(m.win.reinsert, u.slot) }

// unissue returns an issued (or completed-candidate) uop to the
// waiting state, invalidating any in-flight events for the old issue.
func (m *Machine) unissue(u *uop) {
	m.win.clearBit(m.win.issued, u.slot)
	m.win.clearBit(m.win.completed, u.slot)
	if m.win.class[u.slot] == isa.Store {
		m.win.set(m.win.pendStore, u.slot)
	}
	u.missed = false
	u.missKind = missNone
	u.broadcastCycle = unknown
	u.completeCycle = unknown
	u.dataReadyAt = unknown
	u.squashes++
	u.gen++
}

// dataValidFor reports whether producer p's result was actually valid
// when consumed at cycle `at` — the simulator's ground truth standing
// in for poison bits.
func (m *Machine) dataValidFor(p *uop, at int64) bool {
	if p == nil || p.retired {
		return true
	}
	if p.valuePredicted && !p.valueWrong {
		// Consumers ride the predicted value; validity is settled by the
		// load's own verification (valueKill on a wrong prediction).
		return true
	}
	return m.win.test(m.win.completed, p.slot) && p.dataReadyAt <= at
}
