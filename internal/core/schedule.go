package core

import (
	"fmt"

	"repro/internal/isa"
)

// fuBudget tracks per-cycle functional-unit and port availability.
type fuBudget struct {
	intALU, fpALU, intMulDiv, fpMulDiv, memPorts, total int
}

func (m *Machine) newBudget() fuBudget {
	return fuBudget{
		intALU:    m.cfg.IntALU,
		fpALU:     m.cfg.FPALU,
		intMulDiv: m.cfg.IntMulDiv,
		fpMulDiv:  m.cfg.FPMulDiv,
		memPorts:  m.cfg.MemPorts,
		total:     m.cfg.Width,
	}
}

// take consumes capacity for one instruction of the given class,
// reporting whether it fit.
func (b *fuBudget) take(c isa.Class) bool {
	if b.total == 0 {
		return false
	}
	var slot *int
	switch c {
	case isa.IntALU, isa.Branch:
		slot = &b.intALU
	case isa.FPALU:
		slot = &b.fpALU
	case isa.IntMult, isa.IntDiv:
		slot = &b.intMulDiv
	case isa.FPMult, isa.FPDiv:
		slot = &b.fpMulDiv
	case isa.Load, isa.Store:
		slot = &b.memPorts
	default:
		return false
	}
	if *slot == 0 {
		return false
	}
	*slot--
	b.total--
	return true
}

// selectAndIssue implements the atomic wakeup/select loop: scan the
// window oldest-first, issue ready instructions up to the machine width
// and functional-unit limits. Issued instructions stay in the issue
// queue until verified (the Figure 4a issue-queue-based replay model).
func (m *Machine) selectAndIssue() {
	budget := m.newBudget()

	// Memory-dependence policy (§5.1): a load may not issue while an
	// older store has not issued.
	oldestUnissuedStore := unknown
	for i := 0; i < m.lsqLen; i++ {
		s := m.lsqAt(i)
		if s.inst.Class == isa.Store && !s.issued && !s.completed {
			oldestUnissuedStore = s.seq()
			break
		}
	}

	for i := 0; i < m.robCount && budget.total > 0; i++ {
		u := m.rob[(m.robHead+i)%len(m.rob)]
		if u.issued || u.completed || u.retired {
			continue
		}
		if u.holdUntil > m.cycle {
			continue
		}
		switch {
		case u.inIQ:
			// Normal wakeup/select from the issue queue.
			if !u.allReady() {
				continue
			}
			if u.isLoad() && u.seq() > oldestUnissuedStore {
				continue
			}
			// Under the replay-queue model, issue admits into the
			// bounded replay queue.
			if m.cfg.ReplayQueue && m.rqCount >= m.cfg.rqSize() {
				continue
			}
		case u.inRQ:
			// Figure 4b: a squashed replay-queue instruction cannot
			// observe wakeups; it re-issues blindly after its retry
			// delay and will squash again at completion if its inputs
			// are still invalid.
			if u.rqRetryAt > m.cycle {
				continue
			}
			if u.isLoad() && u.seq() > oldestUnissuedStore {
				continue
			}
		default:
			continue
		}
		if !budget.take(u.inst.Class) {
			continue
		}
		if u.inRQ {
			m.stats.RQReplays++
		}
		m.issue(u)
	}
}

// issue marks u selected this cycle and schedules its pipeline events.
func (m *Machine) issue(u *uop) {
	u.issued = true
	u.issues++
	u.issueCycle = m.cycle
	u.execStart = m.cycle + int64(m.cfg.SchedToExec)
	u.completeCycle = unknown
	u.dataReadyAt = unknown
	u.broadcastCycle = unknown
	u.missed = false
	u.missKind = missNone
	u.poisoned = false

	m.stats.TotalIssues++
	if u.issues == 1 {
		m.stats.FirstIssues++
	}
	m.emit(u, EvIssue)
	if u.isLoad() {
		m.stats.LoadIssues++
	}

	// Speculative wakeup: dependents become selectable schedLat cycles
	// after issue, projecting the speculative execution wavefront.
	// Conservative-scheduled loads defer the broadcast until the actual
	// latency is known at execute.
	if u.inst.Class.HasDest() && !u.conservative {
		u.broadcastCycle = m.cycle + int64(u.schedLat)
		m.schedule(u.broadcastCycle, event{kind: evBroadcast, u: u, gen: u.gen})
	}
	m.schedule(u.execStart, event{kind: evExec, u: u, gen: u.gen})

	// Scheme-specific issue work (e.g. TkSel's early issue-queue entry
	// release when the dependence vector is empty).
	m.pol.onIssue(m, u)

	// Replay-queue model: every instruction leaves the issue queue at
	// issue and waits for verification in the replay queue instead.
	if m.cfg.ReplayQueue && !u.inRQ {
		m.releaseIQ(u)
		u.inRQ = true
		m.rqCount++
		if uint64(m.rqCount) > m.stats.Policy.RQOccupancyMax {
			m.stats.Policy.RQOccupancyMax = uint64(m.rqCount)
		}
	}
}

// squash returns u to the waiting state; under the replay-queue model
// it also arms the blind retry that stands in for wakeup observation.
// A squashed instruction that holds no scheduler slot of any kind
// (possible when a kill reaches an early-released entry) re-acquires an
// issue-queue slot so it can ever issue again.
func (m *Machine) squash(u *uop) {
	m.emit(u, EvSquash)
	u.unissue()
	m.pol.onSquash(m, u)
	if u.inRQ {
		u.rqRetryAt = m.cycle + int64(m.cfg.rqRetryDelay())
		return
	}
	if !u.inIQ && !u.needsReinsert {
		if !m.reacquireIQ(u) {
			m.forceIQ(u)
		}
	}
}

// forceIQ models the architecturally reserved replay slot when the
// issue queue is momentarily full (possible only under TkSel's early
// release): the occupancy count overshoots transiently rather than
// orphaning the instruction. Every counted entry is a live in-window
// uop, so the overshoot is bounded by the window population — the
// invariant iqCount <= robCount must always hold, and the high-water
// overshoot is recorded for regression tests.
func (m *Machine) forceIQ(u *uop) {
	u.inIQ = true
	m.iqCount++
	m.stats.IQOverflowSquashes++
	if over := uint64(m.iqCount - m.cfg.IQSize); over > m.stats.IQOvershootMax {
		m.stats.IQOvershootMax = over
	}
	if m.iqCount > m.robCount {
		panic(fmt.Sprintf("core: IQ occupancy %d exceeds window population %d at cycle %d",
			m.iqCount, m.robCount, m.cycle))
	}
}

// releaseIQ frees u's issue-queue entry.
func (m *Machine) releaseIQ(u *uop) {
	if u.inIQ {
		u.inIQ = false
		m.iqCount--
	}
}

// reacquireIQ puts a previously released instruction back into the
// queue (re-insert replay). Returns false when the queue is full.
func (m *Machine) reacquireIQ(u *uop) bool {
	if u.inIQ {
		return true
	}
	if m.iqCount >= m.cfg.IQSize {
		return false
	}
	u.inIQ = true
	m.iqCount++
	return true
}

// handleBroadcast delivers a producer's wakeup tag to its consumers.
func (m *Machine) handleBroadcast(ev event) {
	p := ev.u
	if p.gen != ev.gen || p.retired {
		return
	}
	pseq := p.seq()
	for _, cseq := range p.consumers {
		c := m.lookup(cseq)
		if c == nil {
			continue
		}
		for i := 0; i < 2; i++ {
			if c.src[i].producer == pseq && !c.src[i].ready {
				c.src[i].ready = true
				c.src[i].wokenAt = m.cycle
			}
		}
	}
}

// handleOpWake revalidates one operand if the producer's data is now
// actually available (completion-bus / completion-group effects). If
// the producer was squashed meanwhile, its re-issue broadcast covers
// the wakeup and this event does nothing.
func (m *Machine) handleOpWake(ev event) {
	c := ev.u
	if c.retired {
		return
	}
	op := &c.src[ev.op]
	if op.ready || op.producer < 0 {
		return
	}
	p := m.lookup(op.producer)
	if p == nil || (p.completed && p.dataReadyAt <= m.cycle) {
		op.ready = true
		op.wokenAt = m.cycle
		return
	}
	// Producer still in flight with a known completion: re-arm; if it
	// is waiting or replaying, its next broadcast will wake us instead.
	if p.issued && p.completeCycle != unknown {
		m.schedule(p.completeCycle+1, event{kind: evOpWake, u: c, op: ev.op})
	} else if p.issued {
		m.schedule(p.execStart+1, event{kind: evOpWake, u: c, op: ev.op})
	}
}
