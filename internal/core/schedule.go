package core

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// fuBudget tracks per-cycle functional-unit and port availability.
type fuBudget struct {
	intALU, fpALU, intMulDiv, fpMulDiv, memPorts, total int
}

func (m *Machine) newBudget() fuBudget {
	return fuBudget{
		intALU:    m.cfg.IntALU,
		fpALU:     m.cfg.FPALU,
		intMulDiv: m.cfg.IntMulDiv,
		fpMulDiv:  m.cfg.FPMulDiv,
		memPorts:  m.cfg.MemPorts,
		total:     m.cfg.Width,
	}
}

// take consumes capacity for one instruction of the given class,
// reporting whether it fit.
func (b *fuBudget) take(c isa.Class) bool {
	if b.total == 0 {
		return false
	}
	var slot *int
	switch c {
	case isa.IntALU, isa.Branch:
		slot = &b.intALU
	case isa.FPALU:
		slot = &b.fpALU
	case isa.IntMult, isa.IntDiv:
		slot = &b.intMulDiv
	case isa.FPMult, isa.FPDiv:
		slot = &b.fpMulDiv
	case isa.Load, isa.Store:
		slot = &b.memPorts
	default:
		return false
	}
	if *slot == 0 {
		return false
	}
	*slot--
	b.total--
	return true
}

// selectAndIssue implements the atomic wakeup/select loop: scan the
// window oldest-first, issue ready instructions up to the machine width
// and functional-unit limits. Issued instructions stay in the issue
// queue until verified (the Figure 4a issue-queue-based replay model).
//
// The scan is word-parallel over the structure-of-arrays window: each
// 64-slot word's selection candidates are one boolean expression over
// the state planes — (inIQ AND ready) OR (inRQ AND NOT inIQ), minus
// issued and completed — and candidates pop out oldest-first via
// TrailingZeros64 across the ring's (at most two) ascending segments.
// Per-candidate conditions that can change mid-scan (replay timers,
// the replay-queue admission bound, the functional-unit budget) are
// checked live, exactly as the per-uop scan they replace did.
func (m *Machine) selectAndIssue() {
	budget := m.newBudget()
	w := &m.win

	// Memory-dependence policy (§5.1): a load may not issue while an
	// older store has not issued. The oldest unissued store is the
	// first pendStore bit in ring order; like the LSQ scan this
	// replaces, it is computed once per cycle, not refreshed mid-scan.
	oldestUnissuedStore := unknown
	it := newRingIter(w.pendStore, m.robHead, m.robCount, w.size)
	if slot, ok := it.next(); ok {
		oldestUnissuedStore = m.seqAt(slot)
	}

	n1 := m.robCount
	if m.robHead+n1 > w.size {
		n1 = w.size - m.robHead
	}
	if m.issueScan(&budget, m.robHead, m.robHead+n1, oldestUnissuedStore) {
		m.issueScan(&budget, 0, m.robCount-n1, oldestUnissuedStore)
	}
}

// issueScan runs the candidate scan over one ascending slot segment
// [lo, hi), issuing until the width budget is exhausted. Reports
// whether the scan may continue into the next segment.
func (m *Machine) issueScan(budget *fuBudget, lo, hi int, oldestStore int64) bool {
	if lo >= hi {
		return true
	}
	w := &m.win
	for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
		cand := (w.inIQ[wi]&w.ready[wi] | w.inRQ[wi]&^w.inIQ[wi]) &^ w.issued[wi] &^ w.completed[wi]
		if base := wi << 6; base < lo {
			cand &= ^uint64(0) << (uint(lo - base))
		}
		if top := (wi + 1) << 6; top > hi {
			cand &= ^uint64(0) >> (uint(top - hi))
		}
		for cand != 0 {
			if budget.total == 0 {
				return false
			}
			b := bits.TrailingZeros64(cand)
			cand &= cand - 1
			slot := int32(wi<<6 | b)
			if w.holdUntil[slot] > m.cycle {
				continue
			}
			if w.test(w.inIQ, slot) {
				// Normal wakeup/select from the issue queue. Under the
				// replay-queue model, issue admits into the bounded
				// replay queue — checked live, since each issue grows it.
				if m.cfg.ReplayQueue && m.rqCount >= m.cfg.rqSize() {
					continue
				}
				if w.test(w.loads, slot) && m.seqAt(slot) > oldestStore {
					continue
				}
				if !budget.take(w.class[slot]) {
					continue
				}
				m.issue(m.rob[slot])
				continue
			}
			// Figure 4b: a squashed replay-queue instruction cannot
			// observe wakeups; it re-issues blindly after its retry
			// delay and will squash again at completion if its inputs
			// are still invalid.
			if w.rqRetryAt[slot] > m.cycle {
				continue
			}
			if w.test(w.loads, slot) && m.seqAt(slot) > oldestStore {
				continue
			}
			if !budget.take(w.class[slot]) {
				continue
			}
			m.stats.RQReplays++
			m.issue(m.rob[slot])
		}
	}
	return budget.total > 0
}

// issue marks u selected this cycle and schedules its pipeline events.
func (m *Machine) issue(u *uop) {
	m.win.set(m.win.issued, u.slot)
	if m.win.class[u.slot] == isa.Store {
		m.win.clearBit(m.win.pendStore, u.slot)
	}
	u.issues++
	u.issueCycle = m.cycle
	u.execStart = m.cycle + int64(m.cfg.SchedToExec)
	u.completeCycle = unknown
	u.dataReadyAt = unknown
	u.broadcastCycle = unknown
	u.missed = false
	u.missKind = missNone
	u.poisoned = false

	m.stats.TotalIssues++
	if u.issues == 1 {
		m.stats.FirstIssues++
	}
	m.emit(u, EvIssue)
	if u.isLoad() {
		m.stats.LoadIssues++
	}

	// Speculative wakeup: dependents become selectable schedLat cycles
	// after issue, projecting the speculative execution wavefront.
	// Conservative-scheduled loads defer the broadcast until the actual
	// latency is known at execute.
	if u.inst.Class.HasDest() && !u.conservative {
		u.broadcastCycle = m.cycle + int64(u.schedLat)
		m.schedule(u.broadcastCycle, event{kind: evBroadcast, u: u, gen: u.gen})
	}
	m.schedule(u.execStart, event{kind: evExec, u: u, gen: u.gen})

	// Scheme-specific issue work (e.g. TkSel's early issue-queue entry
	// release when the dependence vector is empty).
	m.pol.onIssue(m, u)

	// Replay-queue model: every instruction leaves the issue queue at
	// issue and waits for verification in the replay queue instead.
	if m.cfg.ReplayQueue && !m.inRQ(u) {
		m.releaseIQ(u)
		m.win.set(m.win.inRQ, u.slot)
		m.rqCount++
		if uint64(m.rqCount) > m.stats.Policy.RQOccupancyMax {
			m.stats.Policy.RQOccupancyMax = uint64(m.rqCount)
		}
	}
}

// squash returns u to the waiting state; under the replay-queue model
// it also arms the blind retry that stands in for wakeup observation.
// A squashed instruction that holds no scheduler slot of any kind
// (possible when a kill reaches an early-released entry) re-acquires an
// issue-queue slot so it can ever issue again.
func (m *Machine) squash(u *uop) {
	m.emit(u, EvSquash)
	m.unissue(u)
	m.pol.onSquash(m, u)
	if m.inRQ(u) {
		m.setRQRetryAt(u, m.cycle+int64(m.cfg.rqRetryDelay()))
		return
	}
	if !m.inIQ(u) && !m.needsReinsert(u) {
		if !m.reacquireIQ(u) {
			m.forceIQ(u)
		}
	}
}

// forceIQ models the architecturally reserved replay slot when the
// issue queue is momentarily full (possible only under TkSel's early
// release): the occupancy count overshoots transiently rather than
// orphaning the instruction. Every counted entry is a live in-window
// uop, so the overshoot is bounded by the window population — the
// invariant iqCount <= robCount must always hold, and the high-water
// overshoot is recorded for regression tests.
func (m *Machine) forceIQ(u *uop) {
	m.win.set(m.win.inIQ, u.slot)
	m.iqCount++
	m.stats.IQOverflowSquashes++
	if over := uint64(m.iqCount - m.cfg.IQSize); over > m.stats.IQOvershootMax {
		m.stats.IQOvershootMax = over
	}
	if m.iqCount > m.robCount {
		panic(fmt.Sprintf("core: IQ occupancy %d exceeds window population %d at cycle %d",
			m.iqCount, m.robCount, m.cycle))
	}
}

// releaseIQ frees u's issue-queue entry.
func (m *Machine) releaseIQ(u *uop) {
	if m.win.test(m.win.inIQ, u.slot) {
		m.win.clearBit(m.win.inIQ, u.slot)
		m.iqCount--
	}
}

// reacquireIQ puts a previously released instruction back into the
// queue (re-insert replay). Returns false when the queue is full.
func (m *Machine) reacquireIQ(u *uop) bool {
	if m.win.test(m.win.inIQ, u.slot) {
		return true
	}
	if m.iqCount >= m.cfg.IQSize {
		return false
	}
	m.win.set(m.win.inIQ, u.slot)
	m.iqCount++
	return true
}

// handleBroadcast delivers a producer's wakeup tag to its consumers as
// a broadcast-compare: every waiting operand lane (tagged, not yet
// ready) in the producer's broadcast row matches its source tag
// against the producer's sequence number, word-parallel. The row is a
// sparse superset index (rename sets a bit for every tag write naming
// a live producer; recycled consumer slots may leave stale bits), so
// the tag compare is the authority — matching bits wake, stale bits
// are cleared in passing. Slot-tag equality is exactly consumer-list
// membership, so this wakes the same set the consumer walk it
// replaces did.
func (m *Machine) handleBroadcast(ev event) {
	p := ev.u
	if p.gen != ev.gen || p.retired {
		return
	}
	pseq := p.seq()
	w := &m.win
	for lane := 0; lane < 2; lane++ {
		tags := w.tag[lane]
		row := w.consMask[lane][int(p.slot)*w.words : (int(p.slot)+1)*w.words]
		for wi := 0; wi < w.words; wi++ {
			pend := row[wi] & w.opTagged[lane][wi] &^ w.opReady[lane][wi]
			for pend != 0 {
				b := bits.TrailingZeros64(pend)
				pend &= pend - 1
				slot := int32(wi<<6 | b)
				if tags[slot] == pseq {
					w.setOp(lane, slot, m.cycle)
				} else {
					row[wi] &^= 1 << uint(b)
				}
			}
		}
	}
}

// handleOpWake revalidates one operand if the producer's data is now
// actually available (completion-bus / completion-group effects). If
// the producer was squashed meanwhile, its re-issue broadcast covers
// the wakeup and this event does nothing.
func (m *Machine) handleOpWake(ev event) {
	c := ev.u
	if c.retired {
		return
	}
	if m.opReady(c, ev.op) || m.producerOf(c, ev.op) < 0 {
		return
	}
	p := m.lookup(m.producerOf(c, ev.op))
	if p == nil || (m.completedState(p) && p.dataReadyAt <= m.cycle) {
		m.wakeOperand(c, ev.op, m.cycle)
		return
	}
	// Producer still in flight with a known completion: re-arm; if it
	// is waiting or replaying, its next broadcast will wake us instead.
	if m.issuedState(p) && p.completeCycle != unknown {
		m.schedule(p.completeCycle+1, event{kind: evOpWake, u: c, op: ev.op})
	} else if m.issuedState(p) {
		m.schedule(p.execStart+1, event{kind: evOpWake, u: c, op: ev.op})
	}
}
