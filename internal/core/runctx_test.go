package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

func runCtxMachine(t *testing.T, maxInsts int64) *Machine {
	t.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config4Wide()
	cfg.MaxInsts = maxInsts
	cfg.Warmup = 0
	m, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A cancel during a long run must surface context.Canceled promptly
// rather than simulating to completion.
func TestRunContextCancel(t *testing.T) {
	m := runCtxMachine(t, 1<<40)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st, err := m.RunContext(ctx)
	if st != nil || err == nil {
		t.Fatalf("canceled run returned (%v, %v), want error", st, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// The check runs every cancelCheckInterval cycles; even a slow
	// machine covers that in well under the deadline below.
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v, not prompt", d)
	}
}

// A deadline is observed the same way as an explicit cancel.
func TestRunContextDeadline(t *testing.T) {
	m := runCtxMachine(t, 1<<40)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := m.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// RunContext with a background context must be bit-identical to Run:
// the cancellation hook cannot perturb simulation results.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a := runCtxMachine(t, 20_000)
	b := runCtxMachine(t, 20_000)
	sa, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("RunContext(Background) diverges from Run:\n  Run:        %+v\n  RunContext: %+v", *sa, *sb)
	}
}
