package core

func init() {
	registerPolicy(SerialVerify, "SerialVerify", func() replayPolicy {
		return &serialPolicy{}
	})
}

// serialChain tracks one invalid speculative wavefront under serial
// verification, across the dependence levels it reaches — including
// continuations through chained misses (a replayed load whose tainted
// address misses again extends its parent wavefront, which is how the
// paper's 800-level propagations arise).
type serialChain struct {
	maxDepth int
}

// serialChainID names one wavefront: a 1-based index into the serial
// policy's chain table, with 0 meaning "not on a wavefront". Uops and
// events carry the index rather than a pointer so starting a wavefront
// appends to a reused table instead of allocating a fresh object —
// the hot path stays allocation-free once the table is warm.
type serialChainID int32

// serialPolicy propagates verification one dependence level per cycle
// (§2.1, Figure 2a); it exists to reproduce Figure 3's
// runaway-wavefront behaviour. The policy owns every wavefront started
// during the run; the depth histogram is folded into the stats
// namespace when the run finishes.
type serialPolicy struct {
	noopPolicy
	// chains collects every wavefront by value; entries are appended at
	// kill time and never removed, so the backing array is reused
	// across runs (reset trims the length, not the capacity).
	chains []serialChain
}

func (p *serialPolicy) scheme() Scheme { return SerialVerify }

func (p *serialPolicy) reset(*Machine) { p.chains = p.chains[:0] }

// chain resolves a wavefront id to its table entry.
func (p *serialPolicy) chain(id serialChainID) *serialChain { return &p.chains[id-1] }

// wakeupEligible: serial verification has no parallel dependence
// tracking — the register-file scoreboard shows a value was written
// (possibly invalid), so newly renamed consumers see the operand as
// available and the invalid wavefront keeps propagating into fresh
// instructions (§2.1, Figure 2a).
func (p *serialPolicy) wakeupEligible(prod *uop) bool { return prod.issues > 0 }

// countsSafetyReplay: a stale execution caught at completion IS the
// serial wavefront advancing one level, not an implementation gap.
func (p *serialPolicy) countsSafetyReplay() bool { return false }

func (p *serialPolicy) onKill(m *Machine, u *uop) {
	m.replayLoad(u)
	if u.valuePredicted {
		return
	}
	p.serialKill(m, u)
}

// serialKill starts (or continues) the one-level-per-cycle serial
// verification wave of §2.1/Figure 2a. A miss by a load that is itself
// already on a wavefront (serially invalidated earlier, or executed
// with a tainted address) extends that wavefront rather than starting
// a new one — per the paper's footnote, propagation is sustained
// through newly inserted instructions and chained misses, far past the
// window size.
func (p *serialPolicy) serialKill(m *Machine, load *uop) {
	id := load.serialChain
	depth := load.serialDepth
	if id == 0 {
		p.chains = append(p.chains, serialChain{})
		id = serialChainID(len(p.chains))
		depth = 0
		load.serialChain = id
	}
	m.scheduleNow(event{kind: evSerialStep, u: load, depth: depth, chain: id})
}

// onStaleOperand: under serial verification a stale execution is the
// invalid wavefront advancing one level; the consumer inherits the
// producer's chain so chained misses keep extending it.
func (p *serialPolicy) onStaleOperand(m *Machine, u *uop, op int, prod *uop) {
	if prod == nil || prod.serialChain == 0 {
		return
	}
	if u.serialChain == 0 || prod.serialDepth+1 > u.serialDepth {
		u.serialChain = prod.serialChain
		u.serialDepth = prod.serialDepth + 1
		if ch := p.chain(u.serialChain); u.serialDepth > ch.maxDepth {
			ch.maxDepth = u.serialDepth
		}
	}
}

// finish folds the wavefront depth histogram (Figure 3) into the
// per-scheme stats namespace.
func (p *serialPolicy) finish(m *Machine) {
	for i := range p.chains {
		m.stats.Policy.SerialDepth.Add(p.chains[i].maxDepth)
	}
}

// handleSerialStep advances one wavefront one dependence level: every
// consumer whose operand still rides the invalid value is cleared,
// squashed if issued, and scheduled to propagate further next cycle.
// Only the serial policy schedules evSerialStep events, so the policy
// assertion cannot fail.
func (m *Machine) handleSerialStep(ev event) {
	pol := m.pol.(*serialPolicy)
	ch := pol.chain(ev.chain)
	if ev.depth > ch.maxDepth {
		ch.maxDepth = ev.depth
	}
	p := ev.u
	if p.retired {
		return
	}
	pseq := p.seq()
	for _, cseq := range p.consumers {
		c := m.lookup(cseq)
		if c == nil || m.completedState(c) {
			continue
		}
		touched := false
		for i := 0; i < 2; i++ {
			if m.producerOf(c, i) == pseq && m.opReady(c, i) && !m.dataValidFor(p, m.cycle) {
				m.clearOperand(c, i)
				touched = true
			}
		}
		if !touched {
			continue
		}
		if m.issuedState(c) {
			m.squash(c)
			m.stats.SquashedIssues++
		}
		c.serialChain = ev.chain
		c.serialDepth = ev.depth + 1
		m.schedule(m.cycle+1, event{kind: evSerialStep, u: c, depth: ev.depth + 1, chain: ev.chain})
	}
}
