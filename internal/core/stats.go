package core

import "repro/internal/stats"

// Stats aggregates one simulation's measurements. All counters are
// event counts over the measured run.
type Stats struct {
	// Cycles is the total simulated cycles.
	Cycles int64
	// Retired is the number of committed instructions.
	Retired int64

	// TotalIssues counts every issue event, including replays.
	TotalIssues uint64
	// FirstIssues counts instructions issued at least once.
	FirstIssues uint64
	// LoadIssues counts load issue events.
	LoadIssues uint64

	// LoadSchedMisses counts load scheduling-miss detections (an issued
	// load whose actual latency exceeded the scheduled latency).
	LoadSchedMisses uint64
	// CacheMisses and AliasMisses split LoadSchedMisses by cause.
	CacheMisses, AliasMisses uint64
	// MissOnFirstIssue counts misses detected on a load's first issue;
	// the remainder are misses of replayed issues.
	MissOnFirstIssue uint64
	// MissInFlight/MissL2/MissMemory split cache-latency misses by the
	// level that satisfied them.
	MissInFlight, MissL2, MissMemory uint64

	// SquashedIssues counts issue events canceled by replay (the
	// "replays" of Table 5 / Figure 12).
	SquashedIssues uint64
	// ReinsertEvents counts re-insert replays; ReinsertedInsts the
	// instructions pushed back through the scheduler by them.
	ReinsertEvents, ReinsertedInsts uint64
	// RefetchEvents counts refetch replays (Refetch scheme).
	RefetchEvents uint64
	// RQReplays counts blind re-issues from the replay queue (Figure 4b
	// model); the queue cannot observe wakeups, so the same instruction
	// may replay several times per miss.
	RQReplays uint64
	// SafetyReplays counts instructions caught completing with invalid
	// data by the simulator's ground-truth check (should be rare; large
	// values indicate a scheme implementation gap).
	SafetyReplays uint64

	// IQOverflowSquashes counts squashes that re-entered a full issue
	// queue through the architecturally reserved replay slot (possible
	// only under TkSel's early release), transiently overshooting the
	// occupancy count. IQOvershootMax is the high-water overshoot
	// (entries beyond IQSize); it is bounded by the in-window
	// population and checked by an invariant at the overflow site.
	IQOverflowSquashes uint64
	//lint:allow stats high-water mark over the whole run, not a warmup-subtractable counter
	IQOvershootMax uint64

	// BranchLookups/BranchMispredicts are front-end branch stats.
	BranchLookups, BranchMispredicts uint64

	// ConservativeDelayed counts loads scheduled pessimistically under
	// the Conservative scheme.
	ConservativeDelayed uint64

	// ValuePredictions counts loads whose consumers used a predicted
	// value; ValueMispredicts counts wrong ones; ValueKilledInsts the
	// dependents squashed by value-misprediction recovery.
	ValuePredictions, ValueMispredicts, ValueKilledInsts uint64

	// PrefetchIssued counts data-side fills started by the prefetcher;
	// PrefetchUseful the prefetched lines a demand load later touched
	// before eviction; PrefetchLate the useful subset whose fill was
	// still in flight at demand time (timeliness). Tagged omitempty so
	// prefetch-free runs keep their historical JSON bytes — the golden
	// equivalence matrix pins them.
	PrefetchIssued uint64 `json:",omitempty"`
	PrefetchUseful uint64 `json:",omitempty"`
	PrefetchLate   uint64 `json:",omitempty"`

	// RetireHash is the order-sensitive digest of the retired
	// instruction stream over the first Warmup+MaxInsts retirements
	// (isa.HashInst chain). Two runs of the same spec must agree on it
	// regardless of check level, scheme-internal timing, or machine
	// pooling; the validation layer compares it against the
	// magic-scheduler oracle's digest of the same stream.
	//lint:allow stats whole-run digest; subtracting a warmup snapshot is meaningless for a hash chain
	RetireHash uint64

	// Policy holds the per-scheme measurements, maintained by the
	// active replay policy (zero for schemes that do not use them).
	Policy PolicyStats
}

// PolicyStats namespaces the measurements owned by the replay policies.
// Counters here are incremented only by the scheme they belong to, so a
// run under any other scheme reports them as zero.
type PolicyStats struct {
	// MissesWithToken counts scheduling misses whose load held a token
	// (TkSel; Table 6's numerator). Together with MissTokenStolen and
	// MissTokenRefused it partitions LoadSchedMisses under TkSel.
	MissesWithToken uint64
	// MissTokenStolen counts scheduling misses whose load had a token
	// that was reclaimed before the kill; MissTokenRefused counts
	// misses whose load never got one.
	MissTokenStolen, MissTokenRefused uint64

	// TokensGranted counts successful token allocations at rename;
	// TokenSteals the grants satisfied by reclaiming a live token;
	// TokenDenials the refused requests (TkSel).
	TokensGranted, TokenSteals, TokenDenials uint64

	// RQOccupancyMax is the replay-queue occupancy high-water mark
	// under the Figure 4b model.
	//lint:allow stats high-water mark over the whole run, not a warmup-subtractable counter
	RQOccupancyMax uint64

	// SerialDepth is the per-miss wavefront propagation depth histogram
	// under SerialVerify (Figure 3).
	//lint:allow stats distributional; keeps full history, folded once at end of Run
	SerialDepth stats.Histogram

	// LoadDelayPredicted counts loads the LoadDelay scheme scheduled at
	// a table-predicted latency; LoadDelayCold counts loads held
	// conservatively because their PC had no table entry;
	// LoadDelayUnder counts predicted loads whose actual latency still
	// exceeded the prediction (the residual scheduling misses). Tagged
	// omitempty like the prefetch counters so the nine legacy schemes'
	// JSON bytes are unchanged.
	LoadDelayPredicted uint64 `json:",omitempty"`
	LoadDelayCold      uint64 `json:",omitempty"`
	LoadDelayUnder     uint64 `json:",omitempty"`
}

// subtract removes a warmup snapshot from the counters. RQOccupancyMax
// is a high-water mark over the whole run and is left alone; the
// serial-depth histogram keeps its full history (it is folded once at
// the end of Run, after subtraction).
func (p *PolicyStats) subtract(base *PolicyStats) {
	p.MissesWithToken -= base.MissesWithToken
	p.MissTokenStolen -= base.MissTokenStolen
	p.MissTokenRefused -= base.MissTokenRefused
	p.TokensGranted -= base.TokensGranted
	p.TokenSteals -= base.TokenSteals
	p.TokenDenials -= base.TokenDenials
	p.LoadDelayPredicted -= base.LoadDelayPredicted
	p.LoadDelayCold -= base.LoadDelayCold
	p.LoadDelayUnder -= base.LoadDelayUnder
}

// subtract removes a warmup snapshot from the numeric counters so the
// reported statistics cover only the measured region. The serial-depth
// histogram and predictor meter intentionally keep their full history
// (they are distributional, and warmup barely shifts them).
func (s *Stats) subtract(base *Stats) {
	s.Cycles -= base.Cycles
	s.Retired -= base.Retired
	s.TotalIssues -= base.TotalIssues
	s.FirstIssues -= base.FirstIssues
	s.LoadIssues -= base.LoadIssues
	s.LoadSchedMisses -= base.LoadSchedMisses
	s.CacheMisses -= base.CacheMisses
	s.MissOnFirstIssue -= base.MissOnFirstIssue
	s.MissInFlight -= base.MissInFlight
	s.MissL2 -= base.MissL2
	s.MissMemory -= base.MissMemory
	s.AliasMisses -= base.AliasMisses
	s.SquashedIssues -= base.SquashedIssues
	s.ReinsertEvents -= base.ReinsertEvents
	s.ReinsertedInsts -= base.ReinsertedInsts
	s.RefetchEvents -= base.RefetchEvents
	s.RQReplays -= base.RQReplays
	s.SafetyReplays -= base.SafetyReplays
	// IQOverflowSquashes is a counter and subtracts like the rest;
	// IQOvershootMax is a high-water mark over the whole run and is
	// deliberately left alone.
	s.IQOverflowSquashes -= base.IQOverflowSquashes
	s.BranchLookups -= base.BranchLookups
	s.BranchMispredicts -= base.BranchMispredicts
	s.ConservativeDelayed -= base.ConservativeDelayed
	s.ValuePredictions -= base.ValuePredictions
	s.ValueMispredicts -= base.ValueMispredicts
	s.ValueKilledInsts -= base.ValueKilledInsts
	s.PrefetchIssued -= base.PrefetchIssued
	s.PrefetchUseful -= base.PrefetchUseful
	s.PrefetchLate -= base.PrefetchLate
	s.Policy.subtract(&base.Policy)
}

// Clone returns a deep copy of the statistics, safe to keep after the
// machine that produced them is reset for another run.
func (s *Stats) Clone() Stats {
	out := *s
	out.Policy.SerialDepth = s.Policy.SerialDepth.Clone()
	return out
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// LoadMissRate returns load scheduling misses per load issue (Table 5,
// column 2).
func (s *Stats) LoadMissRate() float64 {
	return stats.Ratio(s.LoadSchedMisses, s.LoadIssues)
}

// ReplayRate returns replayed issues per total issue (Table 5, column
// 3): the fraction of issue bandwidth spent re-executing.
func (s *Stats) ReplayRate() float64 {
	if s.TotalIssues == 0 {
		return 0
	}
	return float64(s.TotalIssues-s.FirstIssues) / float64(s.TotalIssues)
}

// TokenCoverage returns the fraction of scheduling misses recovered
// with a token (Table 6).
func (s *Stats) TokenCoverage() float64 {
	return stats.Ratio(s.Policy.MissesWithToken, s.LoadSchedMisses)
}

// PrefetchAccuracy returns useful prefetches per issued prefetch.
func (s *Stats) PrefetchAccuracy() float64 {
	return stats.Ratio(s.PrefetchUseful, s.PrefetchIssued)
}

// PrefetchCoverage returns the fraction of would-be cache scheduling
// misses the prefetcher absorbed: useful prefetches over useful
// prefetches plus the cache misses that still happened.
func (s *Stats) PrefetchCoverage() float64 {
	return stats.Ratio(s.PrefetchUseful, s.PrefetchUseful+s.CacheMisses)
}

// PrefetchTimeliness returns the fraction of useful prefetches that
// completed before their demand access arrived.
func (s *Stats) PrefetchTimeliness() float64 {
	if s.PrefetchUseful == 0 {
		return 0
	}
	return 1 - stats.Ratio(s.PrefetchLate, s.PrefetchUseful)
}
