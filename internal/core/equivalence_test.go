package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

var updateEquiv = flag.Bool("update-equiv", false,
	"rewrite testdata/equivalence.golden with current simulator output")

// equivSpec is one run of the scheduler-equivalence battery: a scheme ×
// workload × check-level point, with the model variants (replay queue,
// value prediction, 8-wide) that exercise every scheduler-state
// transition the structure-of-arrays window has to reproduce.
type equivSpec struct {
	scheme Scheme
	bench  string
	check  CheckLevel
	wide8  bool
	rq     bool
	vp     bool
}

func (s equivSpec) key() string {
	k := fmt.Sprintf("%v/%s/check=%v", s.scheme, s.bench, s.check)
	if s.wide8 {
		k += "/8wide"
	}
	if s.rq {
		k += "/rq"
	}
	if s.vp {
		k += "/vp"
	}
	return k
}

func (s equivSpec) config() Config {
	cfg := Config4Wide()
	if s.wide8 {
		cfg = Config8Wide()
	}
	cfg.Scheme = s.scheme
	cfg.Check = s.check
	cfg.ReplayQueue = s.rq
	cfg.ValuePrediction = s.vp
	cfg.MaxInsts = 8_000
	cfg.Warmup = 2_000
	return cfg
}

// equivSpecs enumerates the battery. Coverage goals, not volume: every
// scheme at every check level, the replay-queue model (inRQ/rqRetryAt
// state), value prediction (collapsed dependences and value kills), and
// an 8-wide window whose 256 slots span four bitmap words.
func equivSpecs() []equivSpec {
	var specs []equivSpec
	for _, s := range Schemes() {
		for _, bench := range []string{"gcc", "mcf", "twolf"} {
			for _, lvl := range []CheckLevel{CheckOff, CheckCheap, CheckFull} {
				specs = append(specs, equivSpec{scheme: s, bench: bench, check: lvl})
			}
		}
		// Multi-word window: ROB 256 = four uint64 words.
		specs = append(specs, equivSpec{scheme: s, bench: "gcc", check: CheckFull, wide8: true})
	}
	// Replay-queue model (Figure 4b): blind re-issues, rqRetryAt state.
	for _, s := range []Scheme{PosSel, IDSel, NonSel, DSel} {
		for _, lvl := range []CheckLevel{CheckOff, CheckFull} {
			specs = append(specs, equivSpec{scheme: s, bench: "mcf", check: lvl, rq: true})
		}
	}
	// Value prediction: collapsed rename dependences and value kills.
	for _, s := range []Scheme{IDSel, TkSel, ReInsert, Refetch} {
		for _, lvl := range []CheckLevel{CheckOff, CheckFull} {
			specs = append(specs, equivSpec{scheme: s, bench: "gcc", check: lvl, vp: true})
		}
	}
	return specs
}

// runEquivSpec executes one battery point and renders its result line:
// the retire-stream digest, the cycle count, and the full Stats as
// deterministic JSON.
func runEquivSpec(t *testing.T, spec equivSpec) string {
	t.Helper()
	prof, err := workload.ByName(spec.bench)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(spec.config(), gen)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("%s: %v", spec.key(), err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%s retirehash=%016x cycles=%d stats=%s",
		spec.key(), st.RetireHash, st.Cycles, blob)
}

// TestSchedulerEquivalenceGolden is the differential suite that made
// the structure-of-arrays window rewrite safe to attempt: every scheme
// × workload × check-level point must reproduce the committed
// pre-rewrite goldens bit for bit — same RetireHash, same cycle count,
// same full Stats. The golden file was generated from the pointer-
// chasing scheduler this battery replaced; any diff is a behavioural
// divergence in the bitmap window, never acceptable drift.
func TestSchedulerEquivalenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence battery is slow under -short")
	}
	specs := equivSpecs()
	lines := make([]string, 0, len(specs))
	for _, spec := range specs {
		lines = append(lines, runEquivSpec(t, spec))
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "equivalence.golden")
	if *updateEquiv {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate on a KNOWN-GOOD scheduler with -update-equiv): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report per-line so a single diverging spec names itself.
	wantLines := map[string]string{}
	for _, l := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		if k, _, ok := strings.Cut(l, " "); ok {
			wantLines[k] = l
		}
	}
	for _, l := range lines {
		k, _, _ := strings.Cut(l, " ")
		w, ok := wantLines[k]
		if !ok {
			t.Errorf("spec %s has no golden entry (new spec? regenerate with -update-equiv on a known-good scheduler)", k)
			continue
		}
		delete(wantLines, k)
		if l != w {
			t.Errorf("scheduler diverged from pre-rewrite golden:\n  want %s\n  got  %s", w, l)
		}
	}
	for k := range wantLines {
		t.Errorf("golden entry %s was not exercised", k)
	}
}
