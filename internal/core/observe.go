package core

import "repro/internal/isa"

// PipeEventKind labels one pipeline lifecycle event.
type PipeEventKind uint8

const (
	// EvDispatch: the instruction entered the window (rename/dispatch).
	EvDispatch PipeEventKind = iota
	// EvIssue: selected by the scheduler (speculatively).
	EvIssue
	// EvExecute: reached the execute stage.
	EvExecute
	// EvComplete: completed with valid data (verified).
	EvComplete
	// EvSquash: invalidated as a dependent of a replay event; will
	// re-issue.
	EvSquash
	// EvRetire: committed.
	EvRetire
	// EvFetch: the instruction entered the front end from the trace.
	EvFetch
	// EvReplay: a mis-scheduled load returned to the waiting state (the
	// replay root; its invalidated dependents get EvSquash).
	EvReplay
	numPipeEventKinds
)

// String returns a one-letter mnemonic used by timeline renderers.
func (k PipeEventKind) String() string {
	switch k {
	case EvDispatch:
		return "D"
	case EvIssue:
		return "I"
	case EvExecute:
		return "X"
	case EvComplete:
		return "C"
	case EvSquash:
		return "!"
	case EvRetire:
		return "R"
	case EvFetch:
		return "F"
	case EvReplay:
		return "r"
	}
	return "?"
}

// PipeEvent is one observed lifecycle event, delivered to the machine's
// event sink as it happens.
type PipeEvent struct {
	Cycle int64
	Seq   int64
	PC    uint64
	Class isa.Class
	Kind  PipeEventKind
}

// EventSink receives every pipeline lifecycle event as it is emitted.
// Sinks are tooling (stream recording, pipeline visualization,
// debugging) and must not perturb the simulation; implementations on
// the hot path (internal/evstream's Recorder) must not allocate per
// event.
type EventSink interface {
	Event(PipeEvent)
}

// funcSink adapts a bare callback to the EventSink interface so
// SetObserver keeps working on top of the unified sink path.
type funcSink struct{ f func(PipeEvent) }

func (s funcSink) Event(ev PipeEvent) { s.f(ev) }

// SetSink installs the machine's event sink, receiving every pipeline
// lifecycle event (fetch through retire). Observation is for tooling
// and has no effect on simulation; pass nil to disable. Must be set
// after New/Reset and before Run.
func (m *Machine) SetSink(s EventSink) { m.sink = s }

// SetObserver installs a callback receiving every pipeline lifecycle
// event; it is SetSink with a function adapter. Pass nil to disable.
func (m *Machine) SetObserver(f func(PipeEvent)) {
	if f == nil {
		m.sink = nil
		return
	}
	m.sink = funcSink{f: f}
}

// EventCount returns how many pipeline events the machine has emitted
// so far. The count advances identically whether or not a sink or
// monitor is attached, so it is a deterministic cursor into the
// machine's event stream (Violation.Cursor indexes with it).
func (m *Machine) EventCount() int64 { return m.evCount }

func (m *Machine) emit(u *uop, kind PipeEventKind) {
	m.evCount++
	if m.mon != nil {
		m.mon.record(m, u, kind)
	}
	if m.sink == nil {
		return
	}
	m.sink.Event(PipeEvent{
		Cycle: m.cycle, Seq: u.seq(), PC: u.inst.PC, Class: u.inst.Class, Kind: kind,
	})
}

// emitFetch emits the front-end fetch event. Fetch happens before a
// uop exists, so it bypasses the monitor (whose checkers observe
// in-window instructions) and feeds only the sink; the event count
// still advances so stream cursors cover the full lifecycle.
func (m *Machine) emitFetch(in isa.Inst) {
	m.evCount++
	if m.sink == nil {
		return
	}
	m.sink.Event(PipeEvent{
		Cycle: m.cycle, Seq: in.Seq, PC: in.PC, Class: in.Class, Kind: EvFetch,
	})
}
