package core

import "repro/internal/isa"

// PipeEventKind labels one pipeline lifecycle event.
type PipeEventKind uint8

const (
	// EvDispatch: the instruction entered the window (rename/dispatch).
	EvDispatch PipeEventKind = iota
	// EvIssue: selected by the scheduler (speculatively).
	EvIssue
	// EvExecute: reached the execute stage.
	EvExecute
	// EvComplete: completed with valid data (verified).
	EvComplete
	// EvSquash: invalidated by a replay event; will re-issue.
	EvSquash
	// EvRetire: committed.
	EvRetire
)

// String returns a one-letter mnemonic used by timeline renderers.
func (k PipeEventKind) String() string {
	switch k {
	case EvDispatch:
		return "D"
	case EvIssue:
		return "I"
	case EvExecute:
		return "X"
	case EvComplete:
		return "C"
	case EvSquash:
		return "!"
	default:
		return "R"
	}
}

// PipeEvent is one observed lifecycle event, delivered to the machine's
// observer as it happens.
type PipeEvent struct {
	Cycle int64
	Seq   int64
	PC    uint64
	Class isa.Class
	Kind  PipeEventKind
}

// SetObserver installs a callback receiving every pipeline lifecycle
// event. Observation is for tooling (pipeline visualization, debugging)
// and has no effect on simulation; pass nil to disable. Must be set
// before Run.
func (m *Machine) SetObserver(f func(PipeEvent)) { m.observer = f }

func (m *Machine) emit(u *uop, kind PipeEventKind) {
	if m.mon != nil {
		m.mon.record(m, u, kind)
	}
	if m.observer == nil {
		return
	}
	m.observer(PipeEvent{
		Cycle: m.cycle, Seq: u.seq(), PC: u.inst.PC, Class: u.inst.Class, Kind: kind,
	})
}
