package core

import (
	"testing"

	"repro/internal/isa"
)

// synthStream replays a fixed pattern function as an endless stream.
type synthStream struct {
	next func(seq int64) isa.Inst
	seq  int64
}

func (s *synthStream) Next() isa.Inst {
	in := s.next(s.seq)
	in.Seq = s.seq
	s.seq++
	return in
}

func runSynth(t *testing.T, cfg Config, f func(seq int64) isa.Inst) *Stats {
	t.Helper()
	m, err := New(cfg, &synthStream{next: f})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// Fully independent single-cycle ALU ops must sustain the machine
// width.
func TestMicroIndependentALUs(t *testing.T) {
	cfg := Config4Wide()
	cfg.MaxInsts = 20_000
	st := runSynth(t, cfg, func(seq int64) isa.Inst {
		return isa.Inst{PC: 0x400000 + uint64(seq%64)*4, Class: isa.IntALU, Src1: -1, Src2: -1}
	})
	if ipc := st.IPC(); ipc < 3.5 {
		t.Fatalf("independent ALU IPC = %.3f, want ~4", ipc)
	}
}

// A strict serial dependence chain of single-cycle ops must sustain
// close to 1 IPC (back-to-back wakeup/select).
func TestMicroSerialChain(t *testing.T) {
	cfg := Config4Wide()
	cfg.MaxInsts = 20_000
	st := runSynth(t, cfg, func(seq int64) isa.Inst {
		return isa.Inst{PC: 0x400000 + uint64(seq%64)*4, Class: isa.IntALU, Src1: seq - 1, Src2: -1}
	})
	if ipc := st.IPC(); ipc < 0.9 || ipc > 1.05 {
		t.Fatalf("serial chain IPC = %.3f, want ~1 (back-to-back issue)", ipc)
	}
}

// Hot-set loads that always hit must not replay and should sustain the
// memory-port bandwidth (2 ports + 2 ALU slots at 4-wide).
func TestMicroHitLoads(t *testing.T) {
	cfg := Config4Wide()
	cfg.MaxInsts = 20_000
	st := runSynth(t, cfg, func(seq int64) isa.Inst {
		if seq%2 == 0 {
			return isa.Inst{PC: 0x400000, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x1000_0000 + uint64(seq%32)*64}
		}
		return isa.Inst{PC: 0x400004, Class: isa.IntALU, Src1: seq - 1, Src2: -1}
	})
	if st.LoadMissRate() > 0.01 {
		t.Fatalf("hit loads missing at %.4f", st.LoadMissRate())
	}
	if ipc := st.IPC(); ipc < 2.5 {
		t.Fatalf("hit-load IPC = %.3f, want near 4", ipc)
	}
}
