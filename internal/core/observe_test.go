package core

import (
	"testing"

	"repro/internal/isa"
)

func TestObserverLifecycle(t *testing.T) {
	pat := missingLoadPattern(16, 2)
	cfg := Config4Wide()
	cfg.MaxInsts = 400
	m, err := New(cfg, &synthStream{next: pat})
	if err != nil {
		t.Fatal(err)
	}
	events := map[int64][]PipeEvent{}
	m.SetObserver(func(ev PipeEvent) {
		events[ev.Seq] = append(events[ev.Seq], ev)
	})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	sawReplay := false
	for seq := int64(0); seq < 400; seq++ {
		evs := events[seq]
		if len(evs) == 0 {
			t.Fatalf("no events for seq %d", seq)
		}
		// Lifecycle sanity: starts with fetch then dispatch, ends with
		// retire, cycles non-decreasing.
		if evs[0].Kind != EvFetch {
			t.Fatalf("seq %d: first event %v", seq, evs[0].Kind)
		}
		if last := evs[len(evs)-1]; last.Kind != EvRetire {
			t.Fatalf("seq %d: last event %v", seq, last.Kind)
		}
		counts := map[PipeEventKind]int{}
		for i, ev := range evs {
			if i > 0 && ev.Cycle < evs[i-1].Cycle {
				t.Fatalf("seq %d: time went backward", seq)
			}
			counts[ev.Kind]++
			if ev.Kind == EvReplay {
				sawReplay = true
			}
		}
		if counts[EvFetch] != 1 || counts[EvDispatch] != 1 ||
			counts[EvRetire] != 1 || counts[EvComplete] != 1 {
			t.Fatalf("seq %d: fetch/dispatch/complete/retire counts %v", seq, counts)
		}
		// Every replay root and squashed dependent re-issues:
		// issues = replays + squashes + 1.
		if counts[EvIssue] != counts[EvReplay]+counts[EvSquash]+1 {
			t.Fatalf("seq %d: %d issues for %d replays + %d squashes",
				seq, counts[EvIssue], counts[EvReplay], counts[EvSquash])
		}
	}
	if !sawReplay {
		t.Fatal("missing-load pattern produced no replay events")
	}
}

func TestObserverKindStrings(t *testing.T) {
	want := map[PipeEventKind]string{
		EvDispatch: "D", EvIssue: "I", EvExecute: "X",
		EvComplete: "C", EvSquash: "!", EvRetire: "R",
		EvFetch: "F", EvReplay: "r",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if numPipeEventKinds != 8 {
		t.Fatalf("numPipeEventKinds = %d; the .evs codec packs the kind in 3 bits", numPipeEventKinds)
	}
}

func TestObserverDisabledByDefault(t *testing.T) {
	// No observer set: the machine must run identically (smoke).
	cfg := Config4Wide()
	cfg.MaxInsts = 200
	m, _ := New(cfg, &synthStream{next: func(seq int64) isa.Inst {
		return isa.Inst{PC: 0x400000, Class: isa.IntALU, Src1: -1, Src2: -1}
	}})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
