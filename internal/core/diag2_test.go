package core

import (
	"testing"

	"repro/internal/workload"
)

// TestDiagLossAccounting attributes cycles to front-end and back-end
// stall causes per benchmark. Diagnostic; run with -v.
func TestDiagLossAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, wide8 := range []bool{false, true} {
		for _, bench := range []string{"gcc", "gzip", "mcf", "eon", "vortex"} {
			p, _ := workload.ByName(bench)
			gen, _ := workload.NewGenerator(p, 1)
			cfg := Config4Wide()
			if wide8 {
				cfg = Config8Wide()
			}
			cfg.MaxInsts = 60_000
			cfg.Warmup = 60_000
			m, _ := New(cfg, gen)

			var blockedBr, stalledIL1, fqEmpty, iqFull, robFull, winEmpty int64
			var issueSum, measured int64
			var holdHead, issuedHead int64
			for m.stats.Retired < cfg.MaxInsts+cfg.Warmup && m.cycle < 3_000_000 {
				pre := m.stats.TotalIssues
				m.step()
				if m.stats.Retired < cfg.Warmup {
					continue
				}
				measured++
				issueSum += int64(m.stats.TotalIssues - pre)
				if m.blockedOnSeq >= 0 {
					blockedBr++
				}
				if m.cycle < m.fetchStall {
					stalledIL1++
				}
				if m.fqLen == 0 {
					fqEmpty++
				}
				if m.iqCount >= m.cfg.IQSize {
					iqFull++
				}
				if m.robCount >= m.cfg.ROBSize {
					robFull++
				}
				if m.robCount == 0 {
					winEmpty++
				} else {
					h := m.rob[m.robHead]
					if !m.completedState(h) && m.holdUntil(h) > m.cycle {
						holdHead++
					}
					if !m.completedState(h) && m.issuedState(h) {
						issuedHead++
					}
				}
			}
			c := float64(measured)
			t.Logf("%-7s %s IPC~%.2f | brBlk=%.2f il1=%.2f fqEmpty=%.2f iqFull=%.2f robFull=%.2f winEmpty=%.2f holdHead=%.2f issHead=%.2f issues/cyc=%.2f",
				bench, map[bool]string{false: "4w", true: "8w"}[wide8],
				float64(60_000)/c,
				float64(blockedBr)/c, float64(stalledIL1)/c, float64(fqEmpty)/c,
				float64(iqFull)/c, float64(robFull)/c, float64(winEmpty)/c,
				float64(holdHead)/c, float64(issuedHead)/c, float64(issueSum)/c)
		}
	}
}
