package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// The replay-queue model (Figure 4b) trades issue-queue capacity for
// blind replays: these tests pin both sides of the trade.

func runRQ(t *testing.T, scheme Scheme, rq bool, iqSize int, pattern func(int64) isa.Inst, insts int64) *Stats {
	t.Helper()
	cfg := Config4Wide()
	cfg.Scheme = scheme
	cfg.ReplayQueue = rq
	if iqSize > 0 {
		cfg.IQSize = iqSize
	}
	cfg.MaxInsts = insts
	m, err := New(cfg, &synthStream{next: pattern})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("rq=%v: %v", rq, err)
	}
	return st
}

func TestRQConfigValidation(t *testing.T) {
	cfg := Config4Wide()
	cfg.ReplayQueue = true
	cfg.Scheme = TkSel
	if err := cfg.Validate(); err == nil {
		t.Fatal("replay-queue model must reject re-insert-based schemes")
	}
	cfg.Scheme = PosSel
	if err := cfg.Validate(); err != nil {
		t.Fatalf("PosSel + replay queue rejected: %v", err)
	}
	cfg.RQSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative RQSize accepted")
	}
}

// With a tiny issue queue and long-latency misses, releasing entries at
// issue (Figure 4b) must recover window capacity: the replay-queue
// model beats the issue-queue model.
func TestRQRecoversWindowCapacity(t *testing.T) {
	// Frequent memory misses whose dependents clog a tiny IQ.
	pat := missingLoadPattern(12, 2)
	iq, rq := runRQ(t, PosSel, false, 12, pat, 6000), runRQ(t, PosSel, true, 12, pat, 6000)
	if rq.IPC() <= iq.IPC() {
		t.Errorf("replay-queue IPC %.3f should beat issue-queue IPC %.3f with a 12-entry IQ",
			rq.IPC(), iq.IPC())
	}
}

// The flip side (§3.1): instructions cannot react to replay events once
// they leave the scheduler, so the same instructions replay multiple
// times — blind RQ replays must appear, and total issues exceed the
// issue-queue model's.
func TestRQIncursMultipleReplays(t *testing.T) {
	pat := missingLoadPattern(12, 4)
	iq, rq := runRQ(t, PosSel, false, 0, pat, 6000), runRQ(t, PosSel, true, 0, pat, 6000)
	if rq.RQReplays == 0 {
		t.Fatal("no blind replay-queue replays recorded")
	}
	if iq.RQReplays != 0 {
		t.Fatal("issue-queue model recorded RQ replays")
	}
	if rq.TotalIssues <= iq.TotalIssues {
		t.Errorf("RQ issues %d should exceed IQ issues %d (multiple replays)",
			rq.TotalIssues, iq.TotalIssues)
	}
}

// The replay queue's occupancy accounting must stay consistent across
// a stressful workload.
func TestRQOccupancyInvariant(t *testing.T) {
	p, _ := workload.ByName("mcf")
	gen, _ := workload.NewGenerator(p, 4)
	cfg := Config4Wide()
	cfg.Scheme = NonSel
	cfg.ReplayQueue = true
	cfg.RQSize = 48
	cfg.MaxInsts = 15_000
	m, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	for m.stats.Retired < cfg.MaxInsts {
		m.step()
		if m.rqCount < 0 || m.rqCount > cfg.RQSize {
			t.Fatalf("cycle %d: rqCount %d out of [0,%d]", m.cycle, m.rqCount, cfg.RQSize)
		}
		// Cross-check against ground truth occasionally.
		if m.cycle%1024 == 0 {
			n := 0
			for i := 0; i < m.robCount; i++ {
				if m.inRQ(m.rob[(m.robHead+i)%len(m.rob)]) {
					n++
				}
			}
			if n != m.rqCount {
				t.Fatalf("cycle %d: rqCount %d != actual %d", m.cycle, m.rqCount, n)
			}
		}
	}
}

// A bounded replay queue must throttle issue rather than overflow, and
// the machine still completes.
func TestRQBoundedQueue(t *testing.T) {
	pat := missingLoadPattern(8, 3)
	st := runRQ(t, DSel, true, 0, pat, 4000)
	if st.Retired < 4000 {
		t.Fatalf("retired %d", st.Retired)
	}
	// Tight queue.
	cfg := Config4Wide()
	cfg.Scheme = DSel
	cfg.ReplayQueue = true
	cfg.RQSize = 8
	cfg.MaxInsts = 4000
	m, _ := New(cfg, &synthStream{next: pat})
	st2, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Retired < 4000 {
		t.Fatalf("tight queue retired %d", st2.Retired)
	}
	if st2.IPC() >= st.IPC() {
		t.Errorf("8-entry RQ IPC %.3f should trail unbounded RQ IPC %.3f", st2.IPC(), st.IPC())
	}
}

// All supported scheme × replay-queue combinations must complete the
// calibrated workloads.
func TestRQAllSupportedSchemes(t *testing.T) {
	p, _ := workload.ByName("twolf")
	for _, s := range []Scheme{PosSel, IDSel, NonSel, DSel} {
		gen, _ := workload.NewGenerator(p, 2)
		cfg := Config4Wide()
		cfg.Scheme = s
		cfg.ReplayQueue = true
		cfg.MaxInsts = 8000
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if st.Retired < 8000 {
			t.Errorf("%v retired %d", s, st.Retired)
		}
	}
}
