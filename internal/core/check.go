package core

import (
	"fmt"
	"sort"
	"strings"
)

// CheckLevel selects how much invariant monitoring a machine performs
// while it runs. Checks observe through the same hook points as the
// pipeline-event observer, so enabling them perturbs nothing
// architectural: a checked run retires the identical instruction stream
// as an unchecked one (cmd/validate proves this per spec via the
// retired-stream hash).
type CheckLevel uint8

const (
	// CheckOff disables monitoring entirely; the hot path pays one
	// pointer nil-test per emitted event and allocates nothing.
	CheckOff CheckLevel = iota
	// CheckCheap enables the O(1)-per-event monitors: retire ordering,
	// occupancy bounds, wakeup justification, sampled token conservation.
	CheckCheap
	// CheckFull additionally enables the O(window) sweeps: full ROB/IQ
	// reconciliation, replay-closure verification at completion, LSQ and
	// cache-epoch scans.
	CheckFull
	numCheckLevels
)

// String returns the level's flag spelling (off/cheap/full).
func (l CheckLevel) String() string {
	switch l {
	case CheckOff:
		return "off"
	case CheckCheap:
		return "cheap"
	case CheckFull:
		return "full"
	}
	return fmt.Sprintf("CheckLevel(%d)", uint8(l))
}

// Valid reports whether l is a defined level.
func (l CheckLevel) Valid() bool { return l < numCheckLevels }

// ParseCheckLevel resolves a flag spelling to a level.
func ParseCheckLevel(name string) (CheckLevel, error) {
	for l := CheckOff; l < numCheckLevels; l++ {
		if strings.EqualFold(name, l.String()) {
			return l, nil
		}
	}
	return CheckOff, fmt.Errorf("core: unknown check level %q (want %s)",
		name, strings.Join(CheckLevelNames(), ", "))
}

// CheckLevelNames lists the levels in ascending strictness.
func CheckLevelNames() []string {
	out := make([]string, numCheckLevels)
	for l := CheckOff; l < numCheckLevels; l++ {
		out[l] = l.String()
	}
	return out
}

// Violation is one invariant failure caught by a checker, with the
// machine's recent pipeline-event history for diagnosis.
type Violation struct {
	// Checker is the registered name of the monitor that fired.
	Checker string
	// Cycle and Seq locate the failure (Seq is -1 when the violation is
	// not tied to one instruction).
	Cycle int64
	Seq   int64
	// Msg describes the broken invariant.
	Msg string
	// Cursor is the machine's event count when the violation fired: the
	// number of pipeline events emitted up to and including the
	// offending one (see Machine.EventCount). A recorded event stream
	// for the same run replays deterministically to this index, so the
	// cursor locates the violation in an .evs stream without rerunning.
	Cursor int64
	// Trace is the cycle-stamped window of pipeline events leading up to
	// the violation (oldest first); its depth is Config.TraceDepth.
	Trace []PipeEvent
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d seq %d [%s] %s", v.Cycle, v.Seq, v.Checker, v.Msg)
}

// CheckError is the error a checked run returns when monitors caught
// violations; the run stops at the first offending cycle.
type CheckError struct {
	Scheme     Scheme
	Violations []Violation
}

func (e *CheckError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d invariant violation(s) under %v", len(e.Violations), e.Scheme)
	for i := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(e.Violations[i].String())
	}
	return b.String()
}

// checker is one registered invariant monitor. Implementations observe
// a machine through three hooks and report failures via monitor.failf;
// they must not mutate any machine state (the zero-perturbation
// guarantee rests on that discipline, and is enforced empirically by
// the cross-level hash comparison in internal/check).
type checker interface {
	// name labels the checker in violations and registry listings.
	name() string
	// minLevel is the cheapest level that enables this checker.
	minLevel() CheckLevel
	// reset prepares the checker for a run of m; it is the checker's one
	// allocation point (mirroring replayPolicy.reset).
	reset(m *Machine)
	// event observes one pipeline lifecycle event as it is emitted.
	event(m *Machine, u *uop, kind PipeEventKind)
	// cycleEnd runs after every machine step, with the cycle's final
	// state visible.
	cycleEnd(m *Machine)
	// finish runs once after the run's last cycle.
	finish(m *Machine)
}

// noopChecker provides default no-op hooks for checkers that only need
// a subset; embed it and override what the monitor watches.
type noopChecker struct{}

func (noopChecker) reset(*Machine)                      {}
func (noopChecker) event(*Machine, *uop, PipeEventKind) {}
func (noopChecker) cycleEnd(*Machine)                   {}
func (noopChecker) finish(*Machine)                     {}

// checkerEntry pairs a registered checker name with its constructor.
type checkerEntry struct {
	name  string
	build func() checker
}

// checkerRegistry holds the registered monitors in registration order;
// checkerByName guards against duplicates, mirroring the replay-policy
// registry.
var (
	checkerRegistry []checkerEntry
	checkerByName   = map[string]int{}
)

// registerChecker adds a monitor constructor at init time; duplicate
// names panic, same as registerPolicy.
func registerChecker(name string, build func() checker) {
	if _, dup := checkerByName[name]; dup {
		panic(fmt.Sprintf("core: duplicate checker %q", name))
	}
	c := build()
	if c.name() != name {
		panic(fmt.Sprintf("core: checker %q registered under name %q", c.name(), name))
	}
	checkerByName[name] = len(checkerRegistry)
	checkerRegistry = append(checkerRegistry, checkerEntry{name: name, build: build})
}

// CheckerNames lists the registered invariant monitors, sorted.
func CheckerNames() []string {
	out := make([]string, 0, len(checkerRegistry))
	for _, e := range checkerRegistry {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}

// defaultTraceDepth is the monitor's trace-window depth when
// Config.TraceDepth is zero. Power of two for the ring index mask.
const defaultTraceDepth = 64

// maxViolations bounds how many violations one run collects before the
// monitor stops recording (the first is almost always the story; the
// cap keeps a badly broken scheme from flooding memory).
const maxViolations = 16

// monitor drives the enabled checkers and keeps the rolling trace
// window. It exists only on machines with cfg.Check > CheckOff, so the
// disabled path costs one nil test per emit.
type monitor struct {
	level    CheckLevel
	checkers []checker

	// trace is a ring of the last Config.traceDepth() pipeline events;
	// its length is a power of two (reset sizes it) so the ring index is
	// a mask.
	trace    []PipeEvent
	traceLen int
	tracePos int

	violations []Violation
}

func newMonitor(level CheckLevel) *monitor {
	mon := &monitor{level: level, trace: make([]PipeEvent, defaultTraceDepth)}
	for _, e := range checkerRegistry {
		c := e.build()
		if c.minLevel() <= level {
			mon.checkers = append(mon.checkers, c)
		}
	}
	return mon
}

func (mon *monitor) reset(m *Machine) {
	if depth := m.cfg.traceDepth(); len(mon.trace) != depth {
		mon.trace = make([]PipeEvent, depth)
	}
	mon.traceLen, mon.tracePos = 0, 0
	mon.violations = mon.violations[:0]
	for _, c := range mon.checkers {
		c.reset(m)
	}
}

// record taps one pipeline event into the trace ring and fans it out to
// the checkers.
func (mon *monitor) record(m *Machine, u *uop, kind PipeEventKind) {
	mon.trace[mon.tracePos] = PipeEvent{
		Cycle: m.cycle, Seq: u.seq(), PC: u.inst.PC, Class: u.inst.Class, Kind: kind,
	}
	mon.tracePos = (mon.tracePos + 1) & (len(mon.trace) - 1)
	if mon.traceLen < len(mon.trace) {
		mon.traceLen++
	}
	for _, c := range mon.checkers {
		c.event(m, u, kind)
	}
}

func (mon *monitor) cycleEnd(m *Machine) {
	for _, c := range mon.checkers {
		c.cycleEnd(m)
	}
}

func (mon *monitor) finish(m *Machine) {
	for _, c := range mon.checkers {
		c.finish(m)
	}
}

// failf records one violation with a snapshot of the trace window.
// Allocation happens only here — a clean checked run allocates nothing
// after reset.
func (mon *monitor) failf(m *Machine, checkerName string, seq int64, format string, args ...any) {
	if len(mon.violations) >= maxViolations {
		return
	}
	mon.violations = append(mon.violations, Violation{
		Checker: checkerName,
		Cycle:   m.cycle,
		Seq:     seq,
		Msg:     fmt.Sprintf(format, args...),
		Cursor:  m.evCount,
		Trace:   mon.traceWindow(),
	})
}

// traceWindow copies the ring out oldest-first.
func (mon *monitor) traceWindow() []PipeEvent {
	out := make([]PipeEvent, mon.traceLen)
	size := len(mon.trace)
	start := (mon.tracePos - mon.traceLen + size) & (size - 1)
	for i := 0; i < mon.traceLen; i++ {
		out[i] = mon.trace[(start+i)&(size-1)]
	}
	return out
}

// err packages the collected violations, or nil when the run is clean.
func (mon *monitor) err(scheme Scheme) error {
	if len(mon.violations) == 0 {
		return nil
	}
	return &CheckError{Scheme: scheme, Violations: append([]Violation(nil), mon.violations...)}
}

// Violations returns the invariant violations collected so far; empty
// on a clean run. Valid during and after Run.
func (m *Machine) Violations() []Violation {
	if m.mon == nil {
		return nil
	}
	return m.mon.violations
}
