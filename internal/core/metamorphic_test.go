package core

import (
	"encoding/json"
	"testing"

	"repro/internal/isa"
)

// TestWindowSizeMetamorphic is the metamorphic half of the
// structure-of-arrays equivalence argument: for a dataflow-bound
// workload whose window occupancy never reaches the smallest bound,
// the ROB size — and with it the bitmap word count, the slot = seq mod
// ROBSize mapping, and whether the ring wraps mid-word — must be
// architecturally invisible. Sizes 63/64/65/127/128 straddle both
// word boundaries, so a masking bug in the last partial word, a
// two-segment scan bug, or a slot-aliasing bug each breaks a
// different pair while leaving the aligned 128-slot case green.
func TestWindowSizeMetamorphic(t *testing.T) {
	// The workload: a dependent chain punctuated by a striding load
	// every 5th instruction (DL1 misses drive real scheduling replays)
	// and a chain-dependent branch every 16th whose frequent
	// mispredictions block fetch until resolution — bounding how far
	// the front end can run ahead, and with it the occupancy.
	pattern := func(seq int64) isa.Inst {
		in := isa.Inst{PC: 0x400000 + uint64(seq%8)*4, Src1: seq - 1, Src2: -1}
		switch {
		case seq%8 == 7:
			in.Class = isa.Branch
			// Deterministic but aperiodic outcomes, so no predictor
			// (counter or history based) can learn the pattern.
			in.Taken = (uint64(seq)*0x9e3779b97f4a7c15)>>61&1 != 0
			in.Target = in.PC + 4
		case seq%5 == 0:
			in.Class = isa.Load
			in.Addr = uint64(seq) * 1024 // stride past the DL1: scheduling misses
		default:
			in.Class = isa.IntALU
		}
		if seq == 0 {
			in.Src1 = -1
		}
		return in
	}

	sizes := []int{63, 64, 65, 127, 128}
	for _, sc := range []Scheme{PosSel, NonSel, ReInsert, DSel} {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			var refStats string
			var refOcc int
			for _, size := range sizes {
				cfg := Config4Wide()
				cfg.Scheme = sc
				cfg.ROBSize = size
				// Held constant; only the ROB varies. The 8-entry LSQ is
				// the occupancy governor: LSQ entries are held until
				// retirement and dispatch is in-order, so with a load
				// every 5th instruction the window can never span more
				// than 8 loads ≈ 44 instructions — structurally below the
				// smallest ROB under test, whatever the replay dynamics.
				cfg.IQSize, cfg.LSQSize = 48, 8
				cfg.MaxInsts = 6000
				cfg.Warmup = 0
				cfg.Check = CheckFull
				m, err := New(cfg, &synthStream{next: pattern})
				if err != nil {
					t.Fatal(err)
				}
				// Stepped manually (not Run) so every cycle's occupancy is
				// observable; the digest fields Run would fill are set by
				// hand before marshaling.
				maxOcc := 0
				for m.stats.Retired < cfg.MaxInsts && m.cycle < 1_000_000 {
					m.step()
					if m.robCount > maxOcc {
						maxOcc = m.robCount
					}
				}
				if m.stats.Retired < cfg.MaxInsts {
					t.Fatalf("ROB=%d: stalled at %d retired", size, m.stats.Retired)
				}
				if v := m.Violations(); len(v) != 0 {
					t.Fatalf("ROB=%d: invariant violation: %v", size, v[0])
				}
				m.stats.Cycles = m.cycle
				m.stats.RetireHash = m.retireHash
				blob, err := json.Marshal(m.Stats())
				if err != nil {
					t.Fatal(err)
				}
				if size == sizes[0] {
					refStats, refOcc = string(blob), maxOcc
					// The property must not hold vacuously: the workload
					// has to keep a real population in flight while never
					// touching the smallest window's capacity.
					if maxOcc >= size {
						t.Fatalf("occupancy %d reached the ROB bound %d; the workload no longer isolates the window size", maxOcc, size)
					}
					if maxOcc < 8 {
						t.Fatalf("occupancy peaked at %d; the workload is too serial to exercise the window", maxOcc)
					}
					continue
				}
				if maxOcc != refOcc {
					t.Errorf("ROB=%d: peak occupancy %d, ROB=%d saw %d", size, maxOcc, sizes[0], refOcc)
				}
				if string(blob) != refStats {
					t.Errorf("ROB=%d diverged from ROB=%d:\n got %s\nwant %s", size, sizes[0], blob, refStats)
				}
			}
		})
	}
}
