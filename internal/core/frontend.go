package core

import (
	"repro/internal/isa"
)

// fetchQCap bounds the fetch buffer: a few front-end pipelines' worth.
// (The backing ring is larger so a refetch replay can push the whole
// window back through the front end; this cap only throttles fetch.)
func (m *Machine) fetchQCap() int { return m.cfg.Width * (m.cfg.FrontEndDepth + 2) }

// fetch models the in-order front end: up to Width instructions per
// cycle from the trace, stopping at the first taken branch; IL1 misses
// stall fetch; a mispredicted branch blocks fetch until it resolves
// (the trace is the correct path, so wrong-path instructions are
// modeled as a fetch bubble — the standard trace-driven treatment; the
// resulting minimum misprediction penalty matches Table 3's ">= 11
// cycles").
func (m *Machine) fetch() {
	if m.blockedOnSeq >= 0 || m.cycle < m.fetchStall {
		return
	}
	for n := 0; n < m.cfg.Width; n++ {
		if m.fqLen >= m.fetchQCap() {
			return
		}
		if !m.haveNext {
			m.nextInst = m.src.Next()
			m.srcPos++
			m.haveNext = true
		}
		in := m.nextInst

		// Instruction cache: access once per new line.
		line := in.PC >> 6
		if !m.haveLastLine || line != m.lastLine {
			m.haveLastLine = true
			m.lastLine = line
			res := m.hier.Inst(in.PC, m.cycle)
			if res.Latency > m.cfg.Hierarchy.IL1.Latency {
				// Miss: deliver nothing more this cycle and stall for
				// the extra fill latency.
				m.fetchStall = m.cycle + int64(res.Latency-m.cfg.Hierarchy.IL1.Latency)
				return
			}
		}

		m.haveNext = false
		mispred := false
		if in.Class == isa.Branch {
			m.stats.BranchLookups++
			pr := m.bp.Lookup(in.PC)
			if m.bp.Update(in.PC, pr, in.Taken, in.Target) {
				mispred = true
				m.stats.BranchMispredicts++
			}
		}
		m.fqPush(fetchEntry{
			inst:    in,
			readyAt: m.cycle + int64(m.cfg.FrontEndDepth),
		})
		m.emitFetch(in)
		if mispred {
			// Block fetch until the branch resolves at execute.
			m.blockedOnSeq = in.Seq
			return
		}
		if in.Class == isa.Branch && in.Taken {
			// Fetch stops at the first taken branch in a cycle.
			return
		}
	}
}

// dispatch moves instructions from the front end into the window:
// rename (producer linking, token-vector propagation), ROB/IQ/LSQ
// allocation, scheduling-miss prediction and token allocation for
// loads. Stalls while a re-insert replay is draining.
func (m *Machine) dispatch() {
	if m.reinsertActive {
		return
	}
	for n := 0; n < m.cfg.Width; n++ {
		if m.fqLen == 0 || m.fqAt(0).readyAt > m.cycle {
			return
		}
		if m.robCount >= m.cfg.ROBSize || m.iqCount >= m.cfg.IQSize {
			return
		}
		in := m.fqAt(0).inst
		if in.Class.IsMem() && m.lsqLen >= m.cfg.LSQSize {
			return
		}
		m.fqPopFront()
		m.insert(in)
	}
}

// insert renames and installs one instruction into the window, reusing
// a pooled uop.
func (m *Machine) insert(in isa.Inst) {
	u := m.allocUop()
	u.inst = in
	u.tokenID = -1
	u.broadcastCycle = unknown
	u.completeCycle = unknown
	u.dataReadyAt = unknown
	u.storeDataSeq = -1
	u.schedLat = m.schedLatOf(in)

	// Install the window-slot state: the slot is fixed for the uop's
	// whole residency (slot = seq mod ROBSize — the ROB ring never
	// compacts), so the scheduler's structure-of-arrays planes key off
	// it from here on.
	w := &m.win
	slot := int32((m.robHead + m.robCount) % w.size)
	u.slot = slot
	w.clearSlot(slot)
	w.set(w.inIQ, slot)
	w.class[slot] = in.Class
	switch in.Class {
	case isa.Load:
		w.set(w.loads, slot)
	case isa.Store:
		w.set(w.pendStore, slot)
	}
	// needMask: which operand lanes gate select. Stores wait on the
	// address operand only; the data operand is tracked for forwarding.
	if in.Class == isa.Store {
		if in.Src1 >= 0 {
			w.needMask[slot] = 1
		}
	} else {
		if in.Src1 >= 0 {
			w.needMask[slot] |= 1
		}
		if in.Src2 >= 0 {
			w.needMask[slot] |= 2
		}
	}

	// Rename: wire source operands to in-window producers.
	for i := 0; i < 2; i++ {
		seq := u.srcSeq(i)
		if seq < 0 {
			continue
		}
		p := m.lookup(seq)
		if p == nil || !p.inst.Class.HasDest() {
			// Producer retired (value architecturally available) — or,
			// defensively, the stream violated the contract and named a
			// producer with no register result, which would otherwise
			// never wake this operand.
			w.setOp(i, slot, 0)
			continue
		}
		w.tag[i][slot] = seq
		w.set(w.opTagged[i], slot)
		w.linkConsumer(i, p.slot, slot)
		p.consumers = append(p.consumers, u.seq())
		if m.completedState(p) {
			w.setOp(i, slot, p.completeCycle)
		} else if p.valuePredicted && !p.valueWrong {
			// The producer load's value was predicted at rename: the
			// dependence is collapsed and the operand is available now,
			// pending the load's eventual verification.
			w.setOp(i, slot, m.cycle)
		} else if m.issuedState(p) && p.broadcastCycle != unknown && p.broadcastCycle <= m.cycle {
			// The speculative wakeup already flew past; the operand is
			// ready in the scheduler's eyes.
			w.setOp(i, slot, p.broadcastCycle)
		} else if m.pol.wakeupEligible(p) {
			// The scheme's dependence tracking considers the operand
			// (speculatively) available already — serial verification,
			// whose register-file scoreboard shows a possibly invalid
			// value was written (§2.1, Figure 2a).
			w.setOp(i, slot, m.cycle)
		}
	}
	// Operand-free instructions never get a setOp call; compute their
	// always-ready summary bit explicitly.
	w.refreshReady(slot)
	if in.Class == isa.Store {
		u.storeDataSeq = in.Src2
	}

	// Loads: predict scheduling misses and propose value prediction;
	// the policy's rename hook does the scheme-specific work (token
	// vectors and allocation, conservative classification) and decides
	// whether the proposed prediction is actually consumed.
	wantValue := false
	if in.Class == isa.Load {
		u.conf = m.sp.Lookup(in.PC)
		wantValue = m.cfg.ValuePrediction && m.vp.Predict(in.PC)
	}
	if m.pol.onRename(m, u, wantValue) {
		u.valuePredicted = true
		m.stats.ValuePredictions++
	}

	// Window allocation.
	m.rob[(m.robHead+m.robCount)%len(m.rob)] = u
	m.robCount++
	m.iqCount++
	if in.Class.IsMem() {
		m.lsqPush(u)
	}
	m.emit(u, EvDispatch)
}

// schedLatOf returns the latency the scheduler assumes for a class:
// fixed execution latencies, with loads assumed to hit the DL1.
func (m *Machine) schedLatOf(in isa.Inst) int {
	if in.Class == isa.Load {
		return in.Class.ExecLatency() + m.cfg.Hierarchy.DL1.Latency
	}
	return in.Class.ExecLatency()
}
