package core

import (
	"repro/internal/isa"
	"repro/internal/token"
)

// fetchQCap bounds the fetch buffer: a few front-end pipelines' worth.
// (The backing ring is larger so a refetch replay can push the whole
// window back through the front end; this cap only throttles fetch.)
func (m *Machine) fetchQCap() int { return m.cfg.Width * (m.cfg.FrontEndDepth + 2) }

// fetch models the in-order front end: up to Width instructions per
// cycle from the trace, stopping at the first taken branch; IL1 misses
// stall fetch; a mispredicted branch blocks fetch until it resolves
// (the trace is the correct path, so wrong-path instructions are
// modeled as a fetch bubble — the standard trace-driven treatment; the
// resulting minimum misprediction penalty matches Table 3's ">= 11
// cycles").
func (m *Machine) fetch() {
	if m.blockedOnSeq >= 0 || m.cycle < m.fetchStall {
		return
	}
	for n := 0; n < m.cfg.Width; n++ {
		if m.fqLen >= m.fetchQCap() {
			return
		}
		if !m.haveNext {
			m.nextInst = m.src.Next()
			m.haveNext = true
		}
		in := m.nextInst

		// Instruction cache: access once per new line.
		line := in.PC >> 6
		if !m.haveLastLine || line != m.lastLine {
			m.haveLastLine = true
			m.lastLine = line
			res := m.hier.Inst(in.PC, m.cycle)
			if res.Latency > m.cfg.Hierarchy.IL1.Latency {
				// Miss: deliver nothing more this cycle and stall for
				// the extra fill latency.
				m.fetchStall = m.cycle + int64(res.Latency-m.cfg.Hierarchy.IL1.Latency)
				return
			}
		}

		m.haveNext = false
		mispred := false
		if in.Class == isa.Branch {
			m.stats.BranchLookups++
			pr := m.bp.Lookup(in.PC)
			if m.bp.Update(in.PC, pr, in.Taken, in.Target) {
				mispred = true
				m.stats.BranchMispredicts++
			}
		}
		m.fqPush(fetchEntry{
			inst:    in,
			readyAt: m.cycle + int64(m.cfg.FrontEndDepth),
		})
		if mispred {
			// Block fetch until the branch resolves at execute.
			m.blockedOnSeq = in.Seq
			return
		}
		if in.Class == isa.Branch && in.Taken {
			// Fetch stops at the first taken branch in a cycle.
			return
		}
	}
}

// dispatch moves instructions from the front end into the window:
// rename (producer linking, token-vector propagation), ROB/IQ/LSQ
// allocation, scheduling-miss prediction and token allocation for
// loads. Stalls while a re-insert replay is draining.
func (m *Machine) dispatch() {
	if m.reinsertActive {
		return
	}
	for n := 0; n < m.cfg.Width; n++ {
		if m.fqLen == 0 || m.fqAt(0).readyAt > m.cycle {
			return
		}
		if m.robCount >= m.cfg.ROBSize || m.iqCount >= m.cfg.IQSize {
			return
		}
		in := m.fqAt(0).inst
		if in.Class.IsMem() && m.lsqLen >= m.cfg.LSQSize {
			return
		}
		m.fqPopFront()
		m.insert(in)
	}
}

// insert renames and installs one instruction into the window, reusing
// a pooled uop.
func (m *Machine) insert(in isa.Inst) {
	u := m.allocUop()
	u.inst = in
	u.inIQ = true
	u.tokenID = -1
	u.broadcastCycle = unknown
	u.completeCycle = unknown
	u.dataReadyAt = unknown
	u.storeDataSeq = -1
	u.schedLat = m.schedLatOf(in)
	u.src[0].producer = -1
	u.src[1].producer = -1

	// Rename: wire source operands to in-window producers.
	for i := 0; i < 2; i++ {
		seq := u.srcSeq(i)
		if seq < 0 {
			continue
		}
		p := m.lookup(seq)
		if p == nil || !p.inst.Class.HasDest() {
			// Producer retired (value architecturally available) — or,
			// defensively, the stream violated the contract and named a
			// producer with no register result, which would otherwise
			// never wake this operand.
			u.src[i].ready = true
			u.src[i].wokenAt = 0
			continue
		}
		u.src[i].producer = seq
		p.consumers = append(p.consumers, u.seq())
		if p.completed {
			u.src[i].ready = true
			u.src[i].wokenAt = p.completeCycle
		} else if p.valuePredicted && !p.valueWrong {
			// The producer load's value was predicted at rename: the
			// dependence is collapsed and the operand is available now,
			// pending the load's eventual verification.
			u.src[i].ready = true
			u.src[i].wokenAt = m.cycle
		} else if p.issued && p.broadcastCycle != unknown && p.broadcastCycle <= m.cycle {
			// The speculative wakeup already flew past; the operand is
			// ready in the scheduler's eyes.
			u.src[i].ready = true
			u.src[i].wokenAt = p.broadcastCycle
		} else if m.cfg.Scheme == SerialVerify && p.issues > 0 {
			// Serial verification has no parallel dependence tracking:
			// the register-file scoreboard shows a value was written
			// (possibly invalid), so newly renamed consumers see the
			// operand as available and the invalid wavefront keeps
			// propagating into fresh instructions (§2.1, Figure 2a).
			u.src[i].ready = true
			u.src[i].wokenAt = m.cycle
		}
	}
	if in.Class == isa.Store {
		u.storeDataSeq = in.Src2
	}

	// Token-vector propagation in program order through the rename
	// table (TkSel); the vector is the union of the sources' vectors.
	if m.cfg.Scheme == TkSel {
		var v token.Vector
		for i := 0; i < 2; i++ {
			if seq := u.srcSeq(i); seq >= 0 {
				v = v.Merge(m.renameVecGet(seq))
			}
		}
		u.depVec = v
	}

	// Loads: predict scheduling misses; allocate tokens; attempt value
	// prediction.
	if in.Class == isa.Load {
		u.conf = m.sp.Lookup(in.PC)
		wantValue := m.cfg.ValuePrediction && m.vp.Predict(in.PC)
		switch m.cfg.Scheme {
		case TkSel:
			// Value-predicted loads are speculation heads: they need a
			// token for the arbitrary-delay verification kill, so they
			// allocate at elevated priority — and without a token the
			// prediction is simply not used (the safe fallback).
			allocConf := u.conf
			if wantValue && allocConf < 2 {
				allocConf = 2
			}
			if id, ok, stolenFrom := m.alloc.Allocate(u.seq(), allocConf); ok {
				if stolenFrom >= 0 {
					m.reclaimToken(id, stolenFrom)
				}
				u.tokenID = id
				u.depVec = u.depVec.With(id)
			} else {
				wantValue = false
			}
		case Conservative:
			if u.conf >= 2 {
				u.conservative = true
				m.stats.ConservativeDelayed++
			}
		}
		if wantValue {
			u.valuePredicted = true
			m.stats.ValuePredictions++
		}
	}

	if in.Class.HasDest() && m.cfg.Scheme == TkSel {
		m.renameVecSet(in.Seq, u.depVec)
	}

	// Window allocation.
	m.rob[(m.robHead+m.robCount)%len(m.rob)] = u
	m.robCount++
	m.iqCount++
	if in.Class.IsMem() {
		m.lsqPush(u)
	}
	m.emit(u, EvDispatch)
}

// schedLatOf returns the latency the scheduler assumes for a class:
// fixed execution latencies, with loads assumed to hit the DL1.
func (m *Machine) schedLatOf(in isa.Inst) int {
	if in.Class == isa.Load {
		return in.Class.ExecLatency() + m.cfg.Hierarchy.DL1.Latency
	}
	return in.Class.ExecLatency()
}

// reclaimToken broadcasts the reclaim state (Table 2, "11"): clear the
// token's bit from every in-window instruction and every rename-table
// vector, and strip the old head.
func (m *Machine) reclaimToken(id int, oldHead int64) {
	for i := 0; i < m.robCount; i++ {
		u := m.rob[(m.robHead+i)%len(m.rob)]
		u.depVec = u.depVec.Without(id)
		if u.seq() == oldHead {
			u.tokenID = -1
			u.tokenStolen = true
		}
	}
	for i := range m.renameVec {
		e := &m.renameVec[i]
		if e.seq >= 0 && e.vec.Has(id) {
			e.vec = e.vec.Without(id)
		}
	}
}
