// Package core implements the paper's execution engine: a cycle-level
// out-of-order superscalar pipeline with speculative scheduling
// (instructions are woken up and selected several cycles before they
// execute) and the full design space of scheduling replay schemes from
// §3–§4 of the paper, built around the issue-queue-based replay model
// of Figure 4a.
package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/prefetch"
	"repro/internal/smpred"
	"repro/internal/vpred"
)

// Scheme selects the scheduling replay scheme the machine runs.
type Scheme uint8

const (
	// PosSel is position-based selective replay (§3.4.3): the ideal
	// scheme that invalidates exactly the transitive dependents of a
	// mis-scheduled load. It is the paper's normalization baseline.
	PosSel Scheme = iota
	// IDSel is ID-based selective replay (§3.4.1): replay behaviour is
	// identical to PosSel — the schemes differ only in the hardware name
	// space (full load-ID vectors vs. position matrices), which the
	// analytic package costs out.
	IDSel
	// NonSel is non-selective (squashing) replay (§3.3, Alpha
	// 21264-style): a scheduling miss flushes everything between the
	// schedule and execute stages and invalidates every operand woken
	// within the propagation distance, dependent or not.
	NonSel
	// DSel is delayed selective replay (§3.4.2): NonSel's kill in the
	// scheduler, but issued instructions keep flowing with poison bits
	// and a completion bus re-validates independents when they complete
	// cleanly.
	DSel
	// TkSel is token-based selective replay (§4.2), the paper's
	// contribution: predicted-miss loads get tokens and replay precisely
	// (PosSel-equivalent); token-less misses fall back to re-insert.
	TkSel
	// ReInsert recovers every miss by flushing younger instructions
	// from the scheduler and re-inserting them from the ROB in program
	// order (§4.2's safety mechanism, evaluated standalone in Fig 13).
	ReInsert
	// Refetch treats a scheduling miss like a branch misprediction:
	// flush and refetch all younger instructions (§3.2).
	Refetch
	// Conservative schedules pessimistically (§5.4, after Yoaz et al.):
	// loads with high predicted-miss confidence do not speculatively
	// wake dependents; wrong hit-predictions recover via re-insert.
	Conservative
	// SerialVerify propagates verification one dependence level per
	// cycle (§2.1, Figure 2a); it exists to reproduce Figure 3's
	// runaway-wavefront behaviour.
	SerialVerify
	// LoadDelay tracks observed load latencies per PC and delays
	// dependent wakeup to the predicted latency instead of speculating
	// on a hit (after Diavastos & Carlson's real-time load-delay
	// tracking): a load whose table predicts a long latency broadcasts
	// late, and a cold load waits for its actual latency. Scheduling
	// misses only happen when a load beats its own prediction's
	// history, so replay pressure trades against delayed wakeup.
	LoadDelay
	numSchemes
)

// String returns the scheme's registered name as used in the paper's
// figures.
func (s Scheme) String() string {
	if s < numSchemes && policyRegistry[s].name != "" {
		return policyRegistry[s].name
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Valid reports whether s is a defined scheme with a registered policy.
func (s Scheme) Valid() bool {
	return s < numSchemes && policyRegistry[s].build != nil
}

// Schemes lists all implemented replay schemes.
func Schemes() []Scheme {
	out := make([]Scheme, numSchemes)
	for i := range out {
		out[i] = Scheme(i)
	}
	return out
}

// Config describes one machine. Construct from Config4Wide/Config8Wide
// and adjust, or build from scratch and Validate.
type Config struct {
	// Name labels the configuration in output.
	Name string
	// Width is the fetch/issue/commit width.
	Width int
	// ROBSize, IQSize, LSQSize size the window structures.
	ROBSize, IQSize, LSQSize int
	// MemPorts is the number of general memory ports (load/store issue
	// slots per cycle).
	MemPorts int
	// IntALU, FPALU, IntMulDiv, FPMulDiv are functional-unit counts.
	IntALU, FPALU, IntMulDiv, FPMulDiv int

	// SchedToExec is the pipeline distance from the schedule stage to
	// execute (5 in Figure 1).
	SchedToExec int
	// VerifyLatency is the delay from miss detection at completion to
	// the kill signal reaching the scheduler (1 in the paper); the
	// propagation distance is SchedToExec+VerifyLatency.
	VerifyLatency int
	// FrontEndDepth is the fetch-to-dispatch latency in cycles (the
	// fetch/decode/rename/queue stages of the 13-stage pipe).
	FrontEndDepth int
	// ReinsertPenalty is the delay from detecting a miss to starting
	// re-insert replay (4 in §4.2).
	ReinsertPenalty int

	// Tokens is the token pool size for TkSel (8 at 4-wide, 16 at
	// 8-wide in the paper).
	Tokens int

	// ReplayQueue selects the replay-queue-based model of Figure 4b
	// (the paper's future work, §3.1) instead of the default
	// issue-queue-based model: instructions release their issue-queue
	// entry as soon as they issue, and issued-unverified instructions
	// wait in a separate replay queue. The queue cannot observe wakeup
	// activity, so a squashed instruction re-issues blindly after
	// RQRetryDelay and may replay multiple times until its inputs are
	// actually valid — exactly the trade-off the paper describes.
	ReplayQueue bool
	// RQSize bounds issued-unverified instructions under the
	// replay-queue model (0 = ROBSize).
	RQSize int
	// RQRetryDelay is the blind re-issue delay after a squash under the
	// replay-queue model (0 = the propagation distance).
	RQRetryDelay int

	// ValuePrediction enables load value prediction (§3.5's motivating
	// data-speculation technique): confidently predicted loads hand
	// their consumers a value at rename, collapsing the dependence.
	// Verification happens only when the load's memory access completes
	// — a non-deterministic delay — so only replay schemes that track
	// dependences in a full name space (IDSel) or in rename order
	// (TkSel, ReInsert, Refetch) can recover mispredictions; the
	// timing-based schemes are rejected, mirroring the paper's
	// data-dependence-enforcement argument.
	ValuePrediction bool
	// VPred configures the value predictor.
	VPred vpred.Config

	// Scheme is the replay scheme to run.
	Scheme Scheme

	// Check selects the invariant-monitoring level (see CheckLevel).
	// Monitoring observes through the emit hooks and never perturbs
	// architectural state; off costs one nil test per event.
	Check CheckLevel
	// TraceDepth is the monitor's replay-back horizon: how many recent
	// pipeline events each Violation carries for diagnosis. Must be a
	// power of two (the ring index is a mask); 0 means the default 64.
	TraceDepth int

	// Hierarchy, Bpred, SMPred and Prefetch configure the substrates.
	// Prefetch's zero value (KindOff) keeps the paper's prefetch-free
	// machine.
	Hierarchy cache.HierarchyConfig
	Bpred     bpred.Config
	SMPred    smpred.Config
	Prefetch  prefetch.Config

	// MaxInsts is how many instructions to retire before stopping.
	MaxInsts int64
	// Warmup is how many instructions to retire before measurement
	// begins (caches, predictors and window state stay warm; numeric
	// counters reset). The paper fast-forwards into its benchmarks the
	// same way.
	Warmup int64
}

// Config4Wide returns the paper's Table 3 4-wide machine.
func Config4Wide() Config {
	return Config{
		Name:  "4-wide",
		Width: 4, ROBSize: 128, IQSize: 64, LSQSize: 64,
		MemPorts: 2, IntALU: 4, FPALU: 2, IntMulDiv: 2, FPMulDiv: 2,
		SchedToExec: 5, VerifyLatency: 1, FrontEndDepth: 6,
		ReinsertPenalty: 4, Tokens: 8,
		Scheme:    PosSel,
		Hierarchy: cache.DefaultHierarchy(),
		Bpred:     bpred.Default(),
		SMPred:    smpred.Default(),
		MaxInsts:  200_000,
	}
}

// Config8Wide returns the paper's Table 3 8-wide machine.
func Config8Wide() Config {
	c := Config4Wide()
	c.Name = "8-wide"
	c.Width = 8
	c.ROBSize, c.IQSize, c.LSQSize = 256, 128, 128
	c.MemPorts = 4
	c.IntALU, c.FPALU, c.IntMulDiv, c.FPMulDiv = 8, 4, 4, 4
	c.Tokens = 16
	return c
}

// PropagationDistance returns SchedToExec+VerifyLatency, the paper's
// propagation distance (6 on both Table 3 machines).
func (c Config) PropagationDistance() int { return c.SchedToExec + c.VerifyLatency }

// Validate reports structural problems with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0:
		return fmt.Errorf("core: width %d must be positive", c.Width)
	case c.ROBSize < c.Width || c.IQSize <= 0 || c.LSQSize <= 0:
		return fmt.Errorf("core: window sizes too small (rob=%d iq=%d lsq=%d)",
			c.ROBSize, c.IQSize, c.LSQSize)
	case c.MemPorts <= 0:
		return fmt.Errorf("core: need at least one memory port")
	case c.IntALU <= 0:
		return fmt.Errorf("core: need at least one integer ALU")
	case c.SchedToExec < 1 || c.VerifyLatency < 1:
		return fmt.Errorf("core: schedule-to-execute %d and verify latency %d must be >= 1",
			c.SchedToExec, c.VerifyLatency)
	case c.FrontEndDepth < 1:
		return fmt.Errorf("core: front-end depth %d must be >= 1", c.FrontEndDepth)
	case c.ReinsertPenalty < 0:
		return fmt.Errorf("core: negative re-insert penalty")
	case !c.Scheme.Valid():
		return fmt.Errorf("core: invalid scheme %d", uint8(c.Scheme))
	case !c.Check.Valid():
		return fmt.Errorf("core: invalid check level %d", uint8(c.Check))
	case c.TraceDepth < 0 || c.TraceDepth&(c.TraceDepth-1) != 0:
		return fmt.Errorf("core: trace depth %d must be a power of two (or 0 for the default)",
			c.TraceDepth)
	case policyRegistry[c.Scheme].tokens && c.Tokens <= 0:
		return fmt.Errorf("core: %v needs a positive token count", c.Scheme)
	case c.MaxInsts <= 0:
		return fmt.Errorf("core: MaxInsts must be positive")
	case c.Warmup < 0:
		return fmt.Errorf("core: negative warmup")
	case c.RQSize < 0 || c.RQRetryDelay < 0:
		return fmt.Errorf("core: negative replay-queue parameters")
	case c.ReplayQueue && !policyRegistry[c.Scheme].rq:
		return fmt.Errorf("core: the replay-queue model supports %s, not %v",
			schemeNamesWhere(func(e policyEntry) bool { return e.rq }), c.Scheme)
	case c.ValuePrediction && !policyRegistry[c.Scheme].vp:
		return fmt.Errorf("core: value prediction needs a replay scheme that does not rely on "+
			"enforced dependence order (%s), not %v (§3.5)",
			schemeNamesWhere(func(e policyEntry) bool { return e.vp }), c.Scheme)
	case c.ValuePrediction && c.ReplayQueue:
		return fmt.Errorf("core: value prediction with the replay-queue model is not supported")
	}
	return nil
}

// traceDepth returns the effective monitor trace-window depth.
func (c Config) traceDepth() int {
	if c.TraceDepth > 0 {
		return c.TraceDepth
	}
	return defaultTraceDepth
}

// rqSize returns the effective replay-queue capacity.
func (c Config) rqSize() int {
	if c.RQSize > 0 {
		return c.RQSize
	}
	return c.ROBSize
}

// rqRetryDelay returns the effective blind re-issue delay.
func (c Config) rqRetryDelay() int {
	if c.RQRetryDelay > 0 {
		return c.RQRetryDelay
	}
	return c.PropagationDistance()
}
