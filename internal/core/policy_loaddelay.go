package core

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/smpred"
)

func init() {
	registerPolicy(LoadDelay, "LoadDelay", func() replayPolicy {
		return &loaddelayPolicy{}
	})
}

// loaddelayPolicy tracks observed load latencies per PC and schedules
// each load's wakeup broadcast at the predicted latency instead of
// speculating on a hit (after Diavastos & Carlson's real-time
// load-delay tracking). A load whose PC hits the table inflates its
// scheduled latency to the table's running estimate, so dependents wake
// when the data is expected rather than assumed; a cold PC schedules
// conservatively and waits for the actual latency. Scheduling misses
// remain possible only when a load's latency exceeds its own history
// (the table decays toward faster observations), and those residual
// misses recover by re-insert like the other prediction-based schemes.
type loaddelayPolicy struct {
	noopPolicy
	// table is the direct-mapped, tagged latency table, indexed like
	// the scheduling-miss predictor (it borrows SMPred's geometry
	// knobs: same entry count and tag width).
	table   []ldEntry
	idxMask uint64
	idxBits uint
	tagMask uint64
	// maxLat caps trained latencies at the worst-case memory path so
	// an inflated schedule can never push events past the wheel
	// horizon.
	maxLat int
}

// ldEntry is one latency-table entry: the last predicted latency for a
// load PC, jumped up to slower observations and decayed halfway toward
// faster ones.
type ldEntry struct {
	tag   uint64
	valid bool
	lat   int32
}

func (p *loaddelayPolicy) scheme() Scheme { return LoadDelay }

func (p *loaddelayPolicy) reset(m *Machine) {
	n := m.cfg.SMPred.Entries
	if n == 0 {
		n = smpred.Default().Entries
	}
	if len(p.table) != n {
		p.table = make([]ldEntry, n)
	} else {
		for i := range p.table {
			p.table[i] = ldEntry{}
		}
	}
	p.idxMask = uint64(n - 1)
	p.idxBits = uint(bits.Len64(p.idxMask))
	tb := m.cfg.SMPred.TagBits
	if tb == 0 {
		tb = smpred.Default().TagBits
	}
	p.tagMask = (1 << uint(tb)) - 1
	h := m.cfg.Hierarchy
	p.maxLat = isa.MaxExecLatency() + 2*h.DL1.Latency + h.L2.Latency + h.MemLatency
}

// slot mirrors the scheduling-miss predictor's word-granular indexing.
func (p *loaddelayPolicy) slot(pc uint64) (int, uint64) {
	word := pc >> 2
	return int(word & p.idxMask), (word >> p.idxBits) & p.tagMask
}

// lookup returns the predicted latency for a load PC, if the table
// holds one.
func (p *loaddelayPolicy) lookup(pc uint64) (int, bool) {
	i, tag := p.slot(pc)
	e := &p.table[i]
	if !e.valid || e.tag != tag {
		return 0, false
	}
	return int(e.lat), true
}

// train folds one observed latency into the PC's entry: slower
// observations are adopted immediately (the safe direction — the next
// prediction covers them), faster ones decay the estimate halfway so a
// single early hit does not discard a miss history.
func (p *loaddelayPolicy) train(pc uint64, lat int) {
	if lat <= 0 {
		return
	}
	if lat > p.maxLat {
		lat = p.maxLat
	}
	i, tag := p.slot(pc)
	e := &p.table[i]
	if !e.valid || e.tag != tag {
		*e = ldEntry{tag: tag, valid: true, lat: int32(lat)}
		return
	}
	switch l := int32(lat); {
	case l > e.lat:
		e.lat = l
	case l < e.lat:
		e.lat -= (e.lat - l + 1) / 2
	}
}

func (p *loaddelayPolicy) onRename(m *Machine, u *uop, wantValue bool) bool {
	if u.isLoad() {
		if lat, ok := p.lookup(u.inst.PC); ok {
			if lat > u.schedLat {
				u.schedLat = lat
			}
			m.stats.Policy.LoadDelayPredicted++
		} else {
			// Cold PC: no history to delay against, so schedule
			// pessimistically — dependents wake only once the actual
			// latency is known at execute.
			u.conservative = true
			m.stats.Policy.LoadDelayCold++
		}
	}
	return wantValue
}

// onKill fires only for predicted loads that beat their history (cold
// loads schedule conservatively and cannot miss): adopt the observed
// latency and recover by re-insert.
func (p *loaddelayPolicy) onKill(m *Machine, u *uop) {
	m.stats.Policy.LoadDelayUnder++
	if u.dataReadyAt != unknown {
		p.train(u.inst.PC, int(u.dataReadyAt-u.execStart))
	}
	m.replayLoad(u)
	m.startReinsert(u)
}

// onVerify trains on each load's first execution only: a replayed
// execution observes the residual latency of a fill its own miss
// started, and decaying toward that would oscillate the entry between
// miss and hit latencies (the miss itself already trained upward in
// onKill).
func (p *loaddelayPolicy) onVerify(m *Machine, u *uop) {
	if u.isLoad() && u.issues == 1 {
		p.train(u.inst.PC, u.actualLat)
	}
	m.releaseIQ(u)
}
