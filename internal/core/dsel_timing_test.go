package core

import (
	"testing"

	"repro/internal/isa"
)

// The defining DSel penalty (§3.4.2, the BR-after-AND example): when a
// kill arrives, a ready-but-unissued instruction whose operand was
// woken inside the shadow loses the operand even though it is
// independent of the miss, and re-validates only at its parent's
// completion (the completion bus), several cycles after the original
// wakeup. Tested at mechanism level by driving shadowKill directly.
func TestDSelShadowInvalidation(t *testing.T) {
	cfg := Config4Wide()
	cfg.Scheme = DSel
	cfg.MaxInsts = 100
	m, err := New(cfg, &synthStream{next: func(seq int64) isa.Inst {
		return isa.Inst{PC: 0x400000, Class: isa.IntALU, Src1: -1, Src2: -1}
	}})
	if err != nil {
		t.Fatal(err)
	}
	m.cycle = 100

	// Hand-build the scenario: a missing load, an in-flight independent
	// parent P (issued, past execute, completing at 108), and a waiting
	// consumer C whose operand from P was woken two cycles ago.
	load := &uop{inst: isa.Inst{Seq: 0, Class: isa.Load, Addr: 0x40, Src1: -1, Src2: -1},
		missed: true,
		issueCycle: 91, execStart: 96, dataReadyAt: 207,
		completeCycle: unknown, broadcastCycle: 94, tokenID: -1, storeDataSeq: -1}
	parent := &uop{inst: isa.Inst{Seq: 1, Class: isa.IntALU, Src1: -1, Src2: -1},
		issueCycle: 97, execStart: 102, broadcastCycle: 98, completeCycle: 103,
		dataReadyAt: 103, tokenID: -1, storeDataSeq: -1}
	consumer := &uop{inst: isa.Inst{Seq: 2, Class: isa.IntALU, Src1: 1, Src2: -1},
		tokenID: -1, storeDataSeq: -1,
		broadcastCycle: unknown, completeCycle: unknown, dataReadyAt: unknown}
	parent.consumers = []int64{2}
	m.rob[0], m.rob[1], m.rob[2] = load, parent, consumer
	m.robCount, m.headSeq = 3, 0
	// Install the window-slot state insert() would have built.
	for i, u := range [...]*uop{load, parent, consumer} {
		u.slot = int32(i)
		m.win.clearSlot(u.slot)
		m.win.set(m.win.inIQ, u.slot)
		m.win.class[u.slot] = u.inst.Class
		m.win.refreshReady(u.slot)
	}
	m.win.set(m.win.loads, load.slot)
	m.win.set(m.win.issued, load.slot)
	m.win.set(m.win.issued, parent.slot)
	m.win.needMask[consumer.slot] = 1
	m.win.tag[0][consumer.slot] = 1
	m.win.set(m.win.opTagged[0], consumer.slot)
	m.win.setOp(0, consumer.slot, 98)

	// The parent's in-flight completion, as issue() would have scheduled.
	m.schedule(parent.completeCycle, event{kind: evComplete, u: parent})

	m.shadowKill(load, false)

	if m.opReady(consumer, 0) {
		t.Fatal("shadow-woken operand survived the kill")
	}
	if m.issuedState(consumer) {
		t.Fatal("DSel must not flush unissued instructions into issued state")
	}
	// The re-arm must fire at the parent's completion + 1, not before.
	reawoken := int64(-1)
	for c := int64(101); c < 120 && reawoken < 0; c++ {
		m.cycle = c
		m.runEvents()
		if m.opReady(consumer, 0) {
			reawoken = c
		}
		slot := c & m.wheelMask
		m.wheel[slot] = m.wheel[slot][:0]
	}
	if reawoken != parent.completeCycle+1 {
		t.Fatalf("operand re-validated at %d, want parent completion+1 = %d",
			reawoken, parent.completeCycle+1)
	}
	// Net effect: the consumer lost (completion+1) - wakeup = 6 cycles
	// of schedule-to-execute overlap — the §3.4.2 bubble. (98 is the
	// original wakeup cycle; wokenAt was refreshed by the re-wake.)
	if bubble := reawoken - 98; bubble < 3 {
		t.Fatalf("bubble %d cycles; expected the schedule-to-execute overlap loss", bubble)
	}
}

// Token reclaim (Table 2 state "11"): with a single-token pool and
// competing predicted-miss loads, steals must occur, the stolen heads
// must lose selective coverage, and the machine must stay correct.
func TestTkSelTokenReclaim(t *testing.T) {
	// Two alternating always-missing load sites: they both train to high
	// confidence, but only one token exists.
	pat := func(seq int64) isa.Inst {
		switch seq % 8 {
		case 0:
			return isa.Inst{PC: 0x400000, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x4000_0000 + uint64(seq)*64}
		case 4:
			return isa.Inst{PC: 0x400040, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x5000_0000 + uint64(seq)*64}
		default:
			return isa.Inst{PC: 0x400010 + uint64(seq%8)*4, Class: isa.IntALU, Src1: -1, Src2: -1}
		}
	}
	cfg := Config4Wide()
	cfg.Scheme = TkSel
	cfg.Tokens = 1
	cfg.MaxInsts = 4000
	m, err := New(cfg, &synthStream{next: pat})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired < 4000 {
		t.Fatalf("retired %d", st.Retired)
	}
	if st.Policy.MissTokenStolen == 0 && st.Policy.MissTokenRefused == 0 {
		t.Error("single-token pool under dual miss streams should lose coverage somewhere")
	}
	if st.TokenCoverage() > 0.9 {
		t.Errorf("coverage %.2f with one token and two concurrent miss streams is implausible",
			st.TokenCoverage())
	}
}
