package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/bpred"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// coldRun executes one run of cfg from cycle zero, optionally
// collecting a JSON-serialized checkpoint every `every` cycles, and
// returns the final stats plus the checkpoint blobs.
func coldRun(t *testing.T, cfg Config, seed int64, every int64) (*Stats, [][]byte) {
	t.Helper()
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	if every > 0 {
		m.SetCheckpoints(every, func(st *MachineState) {
			blob, err := json.Marshal(st)
			if err != nil {
				t.Errorf("checkpoint marshal: %v", err)
				return
			}
			blobs = append(blobs, blob)
		})
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, blobs
}

// resumeRun restores a serialized checkpoint into a fresh machine under
// cfg and runs it to completion.
func resumeRun(t *testing.T, cfg Config, seed int64, blob []byte) *Stats {
	t.Helper()
	var ms MachineState
	if err := json.Unmarshal(blob, &ms); err != nil {
		t.Fatalf("checkpoint unmarshal: %v", err)
	}
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(cfg, gen2, &ms); err != nil {
		t.Fatalf("restore: %v", err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func statsJSON(t *testing.T, st *Stats) string {
	t.Helper()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestWarmStartEquivalence is the contract the checkpoint layer exists
// to honour: for every scheme, resuming from EVERY checkpoint of a run
// reproduces the cold run's RetireHash and full final Stats exactly —
// and taking checkpoints does not perturb the run that takes them.
func TestWarmStartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-start battery is slow under -short")
	}
	for _, s := range Schemes() {
		s := s
		t.Run(fmt.Sprint(s), func(t *testing.T) {
			t.Parallel()
			cfg := Config4Wide()
			cfg.Scheme = s
			cfg.Warmup = 1_000
			cfg.MaxInsts = 4_000
			if s == TkSel {
				// Exercise the value-prediction state too on the scheme
				// with the richest policy snapshot.
				cfg.ValuePrediction = true
			}
			if s == LoadDelay {
				// Exercise the frontend state too: the TAGE tables and
				// the stride prefetcher ride this scheme's checkpoints.
				cfg.Bpred = bpred.DefaultTAGE()
				cfg.Prefetch = prefetch.DefaultStride()
			}

			plain, _ := coldRun(t, cfg, 1, 0)
			cold, blobs := coldRun(t, cfg, 1, 1_000)
			if statsJSON(t, plain) != statsJSON(t, cold) {
				t.Fatalf("taking checkpoints perturbed the run:\n  plain %s\n  ckpt  %s",
					statsJSON(t, plain), statsJSON(t, cold))
			}
			if len(blobs) == 0 {
				t.Fatal("run produced no checkpoints")
			}
			want := statsJSON(t, cold)
			for i, blob := range blobs {
				warm := resumeRun(t, cfg, 1, blob)
				if warm.RetireHash != cold.RetireHash {
					t.Errorf("checkpoint %d: retire hash %016x, cold run %016x",
						i, warm.RetireHash, cold.RetireHash)
				}
				if got := statsJSON(t, warm); got != want {
					t.Errorf("checkpoint %d: stats diverged\n  cold %s\n  warm %s", i, want, got)
				}
			}
		})
	}
}

// TestWarmStartExtendedTail is the sim-layer use case: a checkpoint
// taken under a short measured tail seeds a longer run of the same
// configuration, and the result matches simulating the long run cold.
func TestWarmStartExtendedTail(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-start battery is slow under -short")
	}
	short := Config4Wide()
	short.Scheme = TkSel
	short.Warmup = 1_000
	short.MaxInsts = 2_000
	long := short
	long.MaxInsts = 6_000

	_, blobs := coldRun(t, short, 1, 1_500)
	if len(blobs) == 0 {
		t.Fatal("short run produced no checkpoints")
	}
	cold, _ := coldRun(t, long, 1, 0)
	warm := resumeRun(t, long, 1, blobs[0])
	if warm.RetireHash != cold.RetireHash {
		t.Errorf("retire hash %016x, cold long run %016x", warm.RetireHash, cold.RetireHash)
	}
	if got, want := statsJSON(t, warm), statsJSON(t, cold); got != want {
		t.Errorf("stats diverged\n  cold %s\n  warm %s", want, got)
	}
}

// TestRestoreRejects pins the guard rails: configuration drift beyond
// MaxInsts, monitored runs, and exhausted checkpoints are errors, not
// silent corruption.
func TestRestoreRejects(t *testing.T) {
	cfg := Config4Wide()
	cfg.Scheme = PosSel
	cfg.Warmup = 500
	cfg.MaxInsts = 1_500
	_, blobs := coldRun(t, cfg, 1, 400)
	if len(blobs) == 0 {
		t.Fatal("run produced no checkpoints")
	}
	var ms MachineState
	if err := json.Unmarshal(blobs[0], &ms); err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() (*Machine, workload.Stream) {
		gen, err := workload.NewGenerator(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		gen2, err := workload.NewGenerator(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		return m, gen2
	}

	m, gen := fresh()
	drift := cfg
	drift.ROBSize *= 2
	if err := m.Restore(drift, gen, &ms); err == nil {
		t.Error("restore accepted a configuration with a different ROB size")
	}

	m, gen = fresh()
	checked := cfg
	checked.Check = CheckCheap
	if err := m.Restore(checked, gen, &ms); err == nil {
		t.Error("restore accepted a monitored run")
	}

	m, gen = fresh()
	done := cfg
	done.MaxInsts = 1
	done.Warmup = 0
	if err := m.Restore(done, gen, &ms); err == nil {
		t.Error("restore accepted a checkpoint past the run's retirement target")
	}

	m, gen = fresh()
	bad := ms
	bad.Rob = append([]int32(nil), ms.Rob...)
	bad.Rob[0] = int32(cfg.ROBSize) + 7
	if err := m.Restore(cfg, gen, &bad); err == nil {
		t.Error("restore accepted an out-of-range pool reference")
	}
}
