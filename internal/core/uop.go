package core

import (
	"math"

	"repro/internal/isa"
	"repro/internal/smpred"
	"repro/internal/token"
)

// unknown marks a cycle that has not been determined yet.
const unknown int64 = math.MaxInt64

// uop is one in-flight dynamic instruction with its scheduling state.
type uop struct {
	inst isa.Inst

	// slot is the uop's window slot — its index into the scheduler's
	// structure-of-arrays state (see window.go). Fixed at dispatch
	// (slot = seq mod ROBSize) and valid until the slot is vacated; the
	// hot scheduling state (queue membership, issue/completion status,
	// operand readiness, replay timers) lives in the window arrays
	// under this index, accessed through the Machine's slot-accessor
	// API.
	slot int32
	// squashes counts how many times the instruction was invalidated
	// and returned to the waiting state.
	squashes int
	// issues counts issue events (first issue plus replays).
	issues int
	// gen increments whenever the instruction is squashed; in-flight
	// events carry the gen they were scheduled under and are dropped on
	// mismatch.
	gen int
	// life increments whenever the uop object is recycled for a new
	// dynamic instruction (the window pools uops instead of allocating).
	// Every scheduled event is stamped with the life it was scheduled
	// under; a mismatch means the event targets a dead occupant.
	life int

	// issueCycle is the cycle of the most recent issue.
	issueCycle int64
	// execStart is issueCycle + SchedToExec for the current issue.
	execStart int64
	// schedLat is the latency the scheduler assumed (loads: agen + DL1
	// hit).
	schedLat int
	// actualLat is the execution latency resolved at execute time for
	// the current issue (loads: agen + memory latency); equals schedLat
	// for non-loads.
	actualLat int
	// broadcastCycle is when the current issue's wakeup tag reaches
	// consumers (normally issueCycle+schedLat; conservative loads defer
	// it to execute time; unknown until scheduled).
	broadcastCycle int64
	// completeCycle is when the current issue completes (execStart +
	// actualLat); unknown until execution resolves it.
	completeCycle int64
	// dataReadyAt is when the result value is actually available to
	// consumers; unknown until resolved.
	dataReadyAt int64

	// consumers are the sequence numbers of in-window instructions with
	// an operand fed by this instruction. Sequence numbers, not
	// pointers: consumers may be recycled (retired or flushed) while the
	// producer lives on, and a window lookup naturally skips the dead.
	consumers []int64

	// missed reports the current issue incurred a scheduling miss
	// (resolved at execute for loads).
	missed bool
	// missLevel is the cache level that caused the miss, for stats.
	missKind missKind
	// everMissed reports any issue of this load mis-scheduled (for
	// per-load statistics and predictor training).
	everMissed bool

	// poisoned marks a DSel instruction that consumed a speculative
	// value sourced from a mis-scheduled load (poison bit, §3.4.2).
	poisoned bool

	// conf is the scheduling-miss confidence looked up at dispatch
	// (loads only).
	conf smpred.Confidence
	// conservative marks a load scheduled pessimistically under the
	// Conservative scheme.
	conservative bool

	// valuePredicted marks a load whose consumers received a predicted
	// value at rename; valueWrong records the verification outcome once
	// the load's memory access completes.
	valuePredicted bool
	valueWrong     bool

	// tokenID is the token held by this load, or -1 (TkSel).
	tokenID int
	// tokenStolen records that a token this load held was reclaimed
	// for a higher-confidence load (coverage-loss accounting).
	tokenStolen bool
	// depVec is the token dependence vector propagated at rename.
	depVec token.Vector

	// predTaken/predTarget record the branch prediction made at fetch.
	predTaken  bool
	predTarget uint64
	mispred    bool

	// storeDataSeq is the store's data producer (Src2) — kept explicit
	// because stores issue on address readiness only, with the data
	// operand tracked for forwarding (split store-address/store-data).
	// -1 when the data is immediately available.
	storeDataSeq int64

	// retired marks the instruction as committed (or flushed dead by
	// refetch replay).
	retired bool

	// killMark de-duplicates BFS visits within one kill broadcast.
	killMark int64

	// serialChain/serialDepth place the instruction on an invalid
	// wavefront under SerialVerify: set when serial invalidation (or a
	// stale-data execution) reaches it, so chained misses extend the
	// parent wavefront's depth. The chain is a 1-based index into the
	// serial policy's chain table (0 = not on a wavefront); an index
	// instead of a pointer keeps wavefront starts allocation-free — the
	// table's backing array is reused across runs.
	serialChain serialChainID
	serialDepth int
}

// missKind classifies a scheduling miss for statistics.
type missKind uint8

const (
	missNone missKind = iota
	// missCache is an access-latency misprediction (DL1 miss or
	// secondary access to an in-flight line).
	missCache
	// missAlias is a store-to-load alias whose store data was not ready.
	missAlias
)

func (u *uop) seq() int64 { return u.inst.Seq }

// isLoad reports whether the instruction is a load.
func (u *uop) isLoad() bool { return u.inst.Class == isa.Load }

// opCount returns how many register source operands the uop waits on.
func (u *uop) opCount() int {
	n := 0
	if u.inst.Src1 >= 0 {
		n++
	}
	if u.inst.Src2 >= 0 {
		n++
	}
	return n
}

// srcSeq returns the producer sequence of operand i (or -1).
func (u *uop) srcSeq(i int) int64 {
	if i == 0 {
		return u.inst.Src1
	}
	return u.inst.Src2
}

// recycle prepares a pooled uop for reuse by a new dynamic instruction:
// every field reverts to its zero value except life (bumped so stale
// events referencing the old occupant are dropped) and the consumers
// backing array (kept so the steady state stays allocation-free).
func (u *uop) recycle() {
	cons := u.consumers[:0]
	life := u.life + 1
	*u = uop{consumers: cons, life: life}
}

