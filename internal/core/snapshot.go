package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/smpred"
	"repro/internal/token"
	"repro/internal/vpred"
	"repro/internal/workload"
)

// MachineState is a complete serializable snapshot of a running
// machine at a cycle boundary: the window, queues, event wheel, every
// substrate's tables, the policy's private state, the statistics and
// the stream cursors. A machine restored from it (Restore) continues
// the run bit-identically to one that simulated from cycle zero — the
// warm-start equivalence tests prove RetireHash and final Stats match
// across all ten schemes.
//
// Everything is stored verbatim (ring heads included) so restore is a
// field-for-field copy rather than a reconstruction; uop references
// (ROB, LSQ, free list, wheel events) travel as pool indices. The
// encoding is plain JSON — encoding/json sorts map keys, so a
// snapshot's bytes are deterministic for a given machine state.
type MachineState struct {
	Config Config `json:"config"`
	Cycle  int64  `json:"cycle"`

	// Window and uop storage: Rob/Lsq/Free hold pool indices (-1 for an
	// empty ROB slot), Pool holds every pool entry whether live or free.
	Rob      []int32     `json:"rob"`
	RobHead  int         `json:"rob_head"`
	RobCount int         `json:"rob_count"`
	HeadSeq  int64       `json:"head_seq"`
	Pool     []UopState  `json:"pool"`
	Free     []int32     `json:"free"`
	Window   WindowState `json:"window"`

	IQCount int `json:"iq_count"`
	RQCount int `json:"rq_count"`

	Lsq     []int32 `json:"lsq"`
	LsqHead int     `json:"lsq_head"`
	LsqLen  int     `json:"lsq_len"`

	FetchQ       []FetchEntryState `json:"fetch_q"`
	FqHead       int               `json:"fq_head"`
	FqLen        int               `json:"fq_len"`
	NextInst     isa.Inst          `json:"next_inst"`
	HaveNext     bool              `json:"have_next"`
	FetchStall   int64             `json:"fetch_stall"`
	BlockedOnSeq int64             `json:"blocked_on_seq"`
	LastLine     uint64            `json:"last_line"`
	HaveLastLine bool              `json:"have_last_line"`

	// Wheel holds the pending future events, sparse by wheel slot. The
	// restoring machine derives the same wheel length from the config,
	// so slot indices line up.
	Wheel []WheelSlotState `json:"wheel,omitempty"`

	ReinsertActive  bool `json:"reinsert_active"`
	ReinsertPending int  `json:"reinsert_pending"`

	Stats      Stats                `json:"stats"`
	Meter      smpred.CoverageMeter `json:"meter"`
	RetireHash uint64               `json:"retire_hash"`
	EvCount    int64                `json:"ev_count"`
	// SrcPos is how many instructions the workload stream has produced;
	// Restore rebuilds the stream position by fast-forwarding a fresh
	// stream this many instructions.
	SrcPos   int64 `json:"src_pos"`
	Warmed   bool  `json:"warmed"`
	WarmBase Stats `json:"warm_base"`

	// Substrates.
	Hier   cache.HierarchyState `json:"hier"`
	Bpred  bpred.State          `json:"bpred"`
	SMPred smpred.State         `json:"smpred"`
	VPred  *vpred.State         `json:"vpred,omitempty"`
	// Prefetch is present exactly when the configuration runs a
	// prefetcher; the in-flight fill maps it feeds live in Hier.
	Prefetch *prefetch.State `json:"prefetch,omitempty"`

	// Policy is the replay policy's private state; nil for the schemes
	// that keep none (everything but TkSel and SerialVerify).
	Policy *PolicyState `json:"policy,omitempty"`
}

// UopState is one uop-pool entry's serialized form, mirroring the uop
// struct field for field.
type UopState struct {
	Inst isa.Inst `json:"inst"`
	Slot int32    `json:"slot"`

	Squashes int `json:"squashes,omitempty"`
	Issues   int `json:"issues,omitempty"`
	Gen      int `json:"gen,omitempty"`
	Life     int `json:"life,omitempty"`

	IssueCycle     int64 `json:"issue_cycle,omitempty"`
	ExecStart      int64 `json:"exec_start,omitempty"`
	SchedLat       int   `json:"sched_lat,omitempty"`
	ActualLat      int   `json:"actual_lat,omitempty"`
	BroadcastCycle int64 `json:"broadcast_cycle,omitempty"`
	CompleteCycle  int64 `json:"complete_cycle,omitempty"`
	DataReadyAt    int64 `json:"data_ready_at,omitempty"`

	Consumers []int64 `json:"consumers,omitempty"`

	Missed     bool  `json:"missed,omitempty"`
	MissKind   uint8 `json:"miss_kind,omitempty"`
	EverMissed bool  `json:"ever_missed,omitempty"`
	Poisoned   bool  `json:"poisoned,omitempty"`

	Conf         uint8 `json:"conf,omitempty"`
	Conservative bool  `json:"conservative,omitempty"`

	ValuePredicted bool `json:"value_predicted,omitempty"`
	ValueWrong     bool `json:"value_wrong,omitempty"`

	TokenID     int    `json:"token_id"`
	TokenStolen bool   `json:"token_stolen,omitempty"`
	DepVec      uint64 `json:"dep_vec,omitempty"`

	PredTaken  bool   `json:"pred_taken,omitempty"`
	PredTarget uint64 `json:"pred_target,omitempty"`
	Mispred    bool   `json:"mispred,omitempty"`

	StoreDataSeq int64 `json:"store_data_seq"`
	Retired      bool  `json:"retired,omitempty"`
	KillMark     int64 `json:"kill_mark,omitempty"`

	SerialChain int32 `json:"serial_chain,omitempty"`
	SerialDepth int   `json:"serial_depth,omitempty"`
}

// WindowState is the structure-of-arrays scheduler window, copied
// wholesale: bitmap planes as uint64 words, per-lane arrays, timers
// and per-slot classes.
type WindowState struct {
	InIQ      []uint64 `json:"in_iq"`
	InRQ      []uint64 `json:"in_rq"`
	Issued    []uint64 `json:"issued"`
	Completed []uint64 `json:"completed"`
	Ready     []uint64 `json:"ready"`
	Loads     []uint64 `json:"loads"`
	PendStore []uint64 `json:"pend_store"`
	Reinsert  []uint64 `json:"reinsert"`

	OpTagged [2][]uint64 `json:"op_tagged"`
	OpReady  [2][]uint64 `json:"op_ready"`
	Tag      [2][]int64  `json:"tag"`
	WokenAt  [2][]int64  `json:"woken_at"`
	ConsMask [2][]uint64 `json:"cons_mask"`

	HoldUntil []int64     `json:"hold_until"`
	RQRetryAt []int64     `json:"rq_retry_at"`
	Class     []isa.Class `json:"class"`
	NeedMask  []uint8     `json:"need_mask"`
}

// FetchEntryState is one fetch-ring entry.
type FetchEntryState struct {
	Inst    isa.Inst `json:"inst"`
	ReadyAt int64    `json:"ready_at"`
}

// WheelSlotState holds one wheel slot's pending events.
type WheelSlotState struct {
	Slot   int64        `json:"slot"`
	Events []EventState `json:"events"`
}

// EventState is one scheduled event; U is the target uop's pool index.
type EventState struct {
	Kind  uint8 `json:"kind"`
	U     int32 `json:"u"`
	Gen   int   `json:"gen,omitempty"`
	Life  int   `json:"life,omitempty"`
	Op    int   `json:"op,omitempty"`
	Depth int   `json:"depth,omitempty"`
	Chain int32 `json:"chain,omitempty"`
}

// RenameVecState is one rename-table dependence-vector ring entry
// (TkSel).
type RenameVecState struct {
	Seq int64  `json:"seq"`
	Vec uint64 `json:"vec,omitempty"`
}

// LoadDelayEntryState is one latency-table entry (LoadDelay).
type LoadDelayEntryState struct {
	Tag   uint64 `json:"tag"`
	Valid bool   `json:"valid,omitempty"`
	Lat   int32  `json:"lat"`
}

// PolicyState carries the replay policy's private state. Only the
// fields for the snapshotted scheme are populated: Tokens/RenameVec
// for TkSel, SerialChains (per-chain max depths) for SerialVerify,
// LoadDelay (the positional latency table) for LoadDelay.
type PolicyState struct {
	Tokens       *token.State          `json:"tokens,omitempty"`
	RenameVec    []RenameVecState      `json:"rename_vec,omitempty"`
	SerialChains []int                 `json:"serial_chains,omitempty"`
	LoadDelay    []LoadDelayEntryState `json:"load_delay,omitempty"`
}

// policySnapshotter is the optional capability a policy with private
// run state implements so checkpoints can carry it (mirroring the
// tokenPoolUser probe). Policies built purely from noopPolicy hooks
// need no state beyond what reset rebuilds.
type policySnapshotter interface {
	snapshotState() *PolicyState
	restoreState(st *PolicyState) error
}

// snapshot captures the complete machine state. It allocates freely —
// checkpointing is a cold path driven from RunContext, outside the
// cycle loop's allocation budget.
func (m *Machine) snapshot() *MachineState {
	poolIdx := make(map[*uop]int32, len(m.pool))
	for i := range m.pool {
		poolIdx[&m.pool[i]] = int32(i)
	}
	uref := func(u *uop) int32 {
		if u == nil {
			return -1
		}
		return poolIdx[u]
	}

	st := &MachineState{
		Config:   m.cfg,
		Cycle:    m.cycle,
		Rob:      make([]int32, len(m.rob)),
		RobHead:  m.robHead,
		RobCount: m.robCount,
		HeadSeq:  m.headSeq,
		Pool:     make([]UopState, len(m.pool)),
		Free:     make([]int32, len(m.free)),
		IQCount:  m.iqCount,
		RQCount:  m.rqCount,
		Lsq:      make([]int32, len(m.lsq)),
		LsqHead:  m.lsqHead,
		LsqLen:   m.lsqLen,

		FetchQ:       make([]FetchEntryState, len(m.fetchQ)),
		FqHead:       m.fqHead,
		FqLen:        m.fqLen,
		NextInst:     m.nextInst,
		HaveNext:     m.haveNext,
		FetchStall:   m.fetchStall,
		BlockedOnSeq: m.blockedOnSeq,
		LastLine:     m.lastLine,
		HaveLastLine: m.haveLastLine,

		ReinsertActive:  m.reinsertActive,
		ReinsertPending: m.reinsertPending,

		Stats:      m.stats,
		Meter:      m.meter,
		RetireHash: m.retireHash,
		EvCount:    m.evCount,
		SrcPos:     m.srcPos,
		Warmed:     m.warmed,
		WarmBase:   m.warmBase,

		Hier:   m.hier.State(),
		Bpred:  m.bp.State(),
		SMPred: m.sp.State(),
	}
	for i, u := range m.rob {
		st.Rob[i] = uref(u)
	}
	for i := range m.pool {
		st.Pool[i] = snapshotUop(&m.pool[i])
	}
	for i, u := range m.free {
		st.Free[i] = uref(u)
	}
	for i, u := range m.lsq {
		st.Lsq[i] = uref(u)
	}
	for i, fe := range m.fetchQ {
		st.FetchQ[i] = FetchEntryState{Inst: fe.inst, ReadyAt: fe.readyAt}
	}
	st.Window = snapshotWindow(&m.win)
	for slot := range m.wheel {
		evs := m.wheel[slot]
		if len(evs) == 0 {
			continue
		}
		ws := WheelSlotState{Slot: int64(slot), Events: make([]EventState, len(evs))}
		for i, ev := range evs {
			ws.Events[i] = EventState{
				Kind: uint8(ev.kind), U: uref(ev.u), Gen: ev.gen, Life: ev.life,
				Op: ev.op, Depth: ev.depth, Chain: int32(ev.chain),
			}
		}
		st.Wheel = append(st.Wheel, ws)
	}
	if m.vp != nil {
		vs := m.vp.State()
		st.VPred = &vs
	}
	if m.pf != nil {
		ps := m.pf.State()
		st.Prefetch = &ps
	}
	if ps, ok := m.pol.(policySnapshotter); ok {
		st.Policy = ps.snapshotState()
	}
	return st
}

func snapshotUop(u *uop) UopState {
	return UopState{
		Inst: u.inst, Slot: u.slot,
		Squashes: u.squashes, Issues: u.issues, Gen: u.gen, Life: u.life,
		IssueCycle: u.issueCycle, ExecStart: u.execStart,
		SchedLat: u.schedLat, ActualLat: u.actualLat,
		BroadcastCycle: u.broadcastCycle, CompleteCycle: u.completeCycle,
		DataReadyAt: u.dataReadyAt,
		Consumers:   append([]int64(nil), u.consumers...),
		Missed:      u.missed, MissKind: uint8(u.missKind),
		EverMissed: u.everMissed, Poisoned: u.poisoned,
		Conf: uint8(u.conf), Conservative: u.conservative,
		ValuePredicted: u.valuePredicted, ValueWrong: u.valueWrong,
		TokenID: u.tokenID, TokenStolen: u.tokenStolen, DepVec: uint64(u.depVec),
		PredTaken: u.predTaken, PredTarget: u.predTarget, Mispred: u.mispred,
		StoreDataSeq: u.storeDataSeq, Retired: u.retired, KillMark: u.killMark,
		SerialChain: int32(u.serialChain), SerialDepth: u.serialDepth,
	}
}

func restoreUop(u *uop, st *UopState) {
	cons := append(u.consumers[:0], st.Consumers...)
	*u = uop{
		inst: st.Inst, slot: st.Slot,
		squashes: st.Squashes, issues: st.Issues, gen: st.Gen, life: st.Life,
		issueCycle: st.IssueCycle, execStart: st.ExecStart,
		schedLat: st.SchedLat, actualLat: st.ActualLat,
		broadcastCycle: st.BroadcastCycle, completeCycle: st.CompleteCycle,
		dataReadyAt: st.DataReadyAt,
		consumers:   cons,
		missed:      st.Missed, missKind: missKind(st.MissKind),
		everMissed: st.EverMissed, poisoned: st.Poisoned,
		conf: smpred.Confidence(st.Conf), conservative: st.Conservative,
		valuePredicted: st.ValuePredicted, valueWrong: st.ValueWrong,
		tokenID: st.TokenID, tokenStolen: st.TokenStolen, depVec: token.Vector(st.DepVec),
		predTaken: st.PredTaken, predTarget: st.PredTarget, mispred: st.Mispred,
		storeDataSeq: st.StoreDataSeq, retired: st.Retired, killMark: st.KillMark,
		serialChain: serialChainID(st.SerialChain), serialDepth: st.SerialDepth,
	}
}

func snapshotWindow(w *schedWindow) WindowState {
	cp64 := func(s []uint64) []uint64 { return append([]uint64(nil), s...) }
	cpi := func(s []int64) []int64 { return append([]int64(nil), s...) }
	st := WindowState{
		InIQ: cp64(w.inIQ), InRQ: cp64(w.inRQ), Issued: cp64(w.issued),
		Completed: cp64(w.completed), Ready: cp64(w.ready), Loads: cp64(w.loads),
		PendStore: cp64(w.pendStore), Reinsert: cp64(w.reinsert),
		HoldUntil: cpi(w.holdUntil), RQRetryAt: cpi(w.rqRetryAt),
		Class:    append([]isa.Class(nil), w.class...),
		NeedMask: append([]uint8(nil), w.needMask...),
	}
	for lane := 0; lane < 2; lane++ {
		st.OpTagged[lane] = cp64(w.opTagged[lane])
		st.OpReady[lane] = cp64(w.opReady[lane])
		st.Tag[lane] = cpi(w.tag[lane])
		st.WokenAt[lane] = cpi(w.wokenAt[lane])
		st.ConsMask[lane] = cp64(w.consMask[lane])
	}
	return st
}

func restoreWindow(w *schedWindow, st *WindowState) error {
	check64 := func(name string, dst, src []uint64) error {
		if len(src) != len(dst) {
			return fmt.Errorf("core: snapshot window plane %s has %d words, want %d",
				name, len(src), len(dst))
		}
		copy(dst, src)
		return nil
	}
	checkI := func(name string, dst, src []int64) error {
		if len(src) != len(dst) {
			return fmt.Errorf("core: snapshot window array %s has %d slots, want %d",
				name, len(src), len(dst))
		}
		copy(dst, src)
		return nil
	}
	for _, p := range []struct {
		name string
		dst  []uint64
		src  []uint64
	}{
		{"in_iq", w.inIQ, st.InIQ}, {"in_rq", w.inRQ, st.InRQ},
		{"issued", w.issued, st.Issued}, {"completed", w.completed, st.Completed},
		{"ready", w.ready, st.Ready}, {"loads", w.loads, st.Loads},
		{"pend_store", w.pendStore, st.PendStore}, {"reinsert", w.reinsert, st.Reinsert},
		{"op_tagged0", w.opTagged[0], st.OpTagged[0]}, {"op_tagged1", w.opTagged[1], st.OpTagged[1]},
		{"op_ready0", w.opReady[0], st.OpReady[0]}, {"op_ready1", w.opReady[1], st.OpReady[1]},
		{"cons_mask0", w.consMask[0], st.ConsMask[0]}, {"cons_mask1", w.consMask[1], st.ConsMask[1]},
	} {
		if err := check64(p.name, p.dst, p.src); err != nil {
			return err
		}
	}
	for _, p := range []struct {
		name string
		dst  []int64
		src  []int64
	}{
		{"tag0", w.tag[0], st.Tag[0]}, {"tag1", w.tag[1], st.Tag[1]},
		{"woken_at0", w.wokenAt[0], st.WokenAt[0]}, {"woken_at1", w.wokenAt[1], st.WokenAt[1]},
		{"hold_until", w.holdUntil, st.HoldUntil}, {"rq_retry_at", w.rqRetryAt, st.RQRetryAt},
	} {
		if err := checkI(p.name, p.dst, p.src); err != nil {
			return err
		}
	}
	if len(st.Class) != len(w.class) || len(st.NeedMask) != len(w.needMask) {
		return fmt.Errorf("core: snapshot window class/need arrays %d/%d, want %d/%d",
			len(st.Class), len(st.NeedMask), len(w.class), len(w.needMask))
	}
	copy(w.class, st.Class)
	copy(w.needMask, st.NeedMask)
	return nil
}

// Restore rebuilds the machine mid-run from a checkpoint. cfg must
// match the snapshot's configuration in every field except MaxInsts —
// the warm-start use case is extending or shortening the measured tail
// of an otherwise identical run — and monitoring must be off on both
// sides (checker state is not checkpointed). src must be a fresh
// stream of the same workload and seed; Restore fast-forwards it to
// the snapshot's cursor. After Restore the machine runs exactly as if
// it had simulated from cycle zero under cfg.
func (m *Machine) Restore(cfg Config, src workload.Stream, st *MachineState) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	a, b := cfg, st.Config
	a.MaxInsts, b.MaxInsts = 0, 0
	if a != b {
		return fmt.Errorf("core: restore configuration differs from the checkpoint's (only MaxInsts may change)")
	}
	if cfg.Check != CheckOff {
		return fmt.Errorf("core: cannot restore a checkpoint into a monitored run (checker state is not checkpointed)")
	}
	if st.Stats.Retired >= cfg.Warmup+cfg.MaxInsts {
		return fmt.Errorf("core: checkpoint already retired %d instructions, past the run's %d target",
			st.Stats.Retired, cfg.Warmup+cfg.MaxInsts)
	}
	if err := validateShape(cfg, st); err != nil {
		return err
	}

	// Rebuild all storage shapes for cfg, then overwrite contents.
	m.init(cfg, src)

	if st.SrcPos < 0 {
		return fmt.Errorf("core: negative stream cursor %d", st.SrcPos)
	}
	for i := int64(0); i < st.SrcPos; i++ {
		m.src.Next()
	}
	m.srcPos = st.SrcPos

	m.cycle = st.Cycle
	for i := range m.pool {
		restoreUop(&m.pool[i], &st.Pool[i])
	}
	for i, ref := range st.Rob {
		if ref < 0 {
			m.rob[i] = nil
		} else {
			m.rob[i] = &m.pool[ref]
		}
	}
	m.robHead, m.robCount, m.headSeq = st.RobHead, st.RobCount, st.HeadSeq
	m.free = m.free[:0]
	for _, ref := range st.Free {
		m.free = append(m.free, &m.pool[ref])
	}
	if err := restoreWindow(&m.win, &st.Window); err != nil {
		return err
	}
	m.iqCount, m.rqCount = st.IQCount, st.RQCount
	for i, ref := range st.Lsq {
		if ref < 0 {
			m.lsq[i] = nil
		} else {
			m.lsq[i] = &m.pool[ref]
		}
	}
	m.lsqHead, m.lsqLen = st.LsqHead, st.LsqLen
	for i, fe := range st.FetchQ {
		m.fetchQ[i] = fetchEntry{inst: fe.Inst, readyAt: fe.ReadyAt}
	}
	m.fqHead, m.fqLen = st.FqHead, st.FqLen
	m.nextInst, m.haveNext = st.NextInst, st.HaveNext
	m.fetchStall = st.FetchStall
	m.blockedOnSeq = st.BlockedOnSeq
	m.lastLine, m.haveLastLine = st.LastLine, st.HaveLastLine

	for i := range m.wheel {
		m.wheel[i] = m.wheel[i][:0]
	}
	for _, ws := range st.Wheel {
		list := m.wheel[ws.Slot][:0]
		for _, es := range ws.Events {
			list = append(list, event{
				kind: evKind(es.Kind), u: &m.pool[es.U], gen: es.Gen, life: es.Life,
				op: es.Op, depth: es.Depth, chain: serialChainID(es.Chain),
			})
		}
		m.wheel[ws.Slot] = list
	}

	m.reinsertActive, m.reinsertPending = st.ReinsertActive, st.ReinsertPending

	m.stats = st.Stats
	m.meter = st.Meter
	m.retireHash = st.RetireHash
	m.evCount = st.EvCount
	m.warmed = st.Warmed
	m.warmBase = st.WarmBase

	if err := m.hier.RestoreState(st.Hier); err != nil {
		return err
	}
	if err := m.bp.RestoreState(st.Bpred); err != nil {
		return err
	}
	if err := m.sp.RestoreState(st.SMPred); err != nil {
		return err
	}
	switch {
	case m.vp != nil && st.VPred != nil:
		if err := m.vp.RestoreState(*st.VPred); err != nil {
			return err
		}
	case m.vp != nil || st.VPred != nil:
		return fmt.Errorf("core: snapshot and configuration disagree about value prediction")
	}
	switch {
	case m.pf != nil && st.Prefetch != nil:
		if err := m.pf.RestoreState(*st.Prefetch); err != nil {
			return err
		}
	case m.pf != nil || st.Prefetch != nil:
		return fmt.Errorf("core: snapshot and configuration disagree about prefetching")
	}

	ps, needs := m.pol.(policySnapshotter)
	switch {
	case needs && st.Policy == nil:
		return fmt.Errorf("core: snapshot is missing %v policy state", cfg.Scheme)
	case !needs && st.Policy != nil:
		return fmt.Errorf("core: snapshot carries policy state %v does not use", cfg.Scheme)
	case needs:
		if err := ps.restoreState(st.Policy); err != nil {
			return err
		}
	}

	m.ran = false
	return nil
}

// validateShape rejects snapshots whose array shapes or references do
// not fit the configuration, before any machine state is touched.
func validateShape(cfg Config, st *MachineState) error {
	n := cfg.ROBSize
	switch {
	case len(st.Rob) != n || len(st.Pool) != n || len(st.Free) > n:
		return fmt.Errorf("core: snapshot rob/pool/free %d/%d/%d do not fit ROB size %d",
			len(st.Rob), len(st.Pool), len(st.Free), n)
	case len(st.Lsq) != cfg.LSQSize:
		return fmt.Errorf("core: snapshot LSQ %d does not fit size %d", len(st.Lsq), cfg.LSQSize)
	case st.RobHead < 0 || st.RobHead >= n || st.RobCount < 0 || st.RobCount > n:
		return fmt.Errorf("core: snapshot ROB cursor %d/%d out of range", st.RobHead, st.RobCount)
	case st.LsqHead < 0 || st.LsqHead >= cfg.LSQSize || st.LsqLen < 0 || st.LsqLen > cfg.LSQSize:
		return fmt.Errorf("core: snapshot LSQ cursor %d/%d out of range", st.LsqHead, st.LsqLen)
	}
	fqCap := cfg.ROBSize + cfg.Width*(cfg.FrontEndDepth+2)
	if len(st.FetchQ) != fqCap || st.FqHead < 0 || st.FqHead >= fqCap ||
		st.FqLen < 0 || st.FqLen > fqCap {
		return fmt.Errorf("core: snapshot fetch ring %d (cursor %d/%d) does not fit capacity %d",
			len(st.FetchQ), st.FqHead, st.FqLen, fqCap)
	}
	ref := func(r int32) bool { return r >= -1 && int(r) < n }
	for _, r := range st.Rob {
		if !ref(r) {
			return fmt.Errorf("core: snapshot ROB entry references pool index %d", r)
		}
	}
	for _, r := range st.Free {
		if r < 0 || !ref(r) {
			return fmt.Errorf("core: snapshot free list references pool index %d", r)
		}
	}
	for _, r := range st.Lsq {
		if !ref(r) {
			return fmt.Errorf("core: snapshot LSQ entry references pool index %d", r)
		}
	}
	hz := horizonFor(cfg)
	for _, ws := range st.Wheel {
		if ws.Slot < 0 || ws.Slot >= hz {
			return fmt.Errorf("core: snapshot wheel slot %d outside the %d-cycle horizon", ws.Slot, hz)
		}
		for _, es := range ws.Events {
			if es.U < 0 || !ref(es.U) {
				return fmt.Errorf("core: snapshot event references pool index %d", es.U)
			}
			if evKind(es.Kind) > evSerialStep {
				return fmt.Errorf("core: snapshot event kind %d unknown", es.Kind)
			}
		}
	}
	for i := range st.Pool {
		if s := st.Pool[i].Slot; s < 0 || int(s) >= n {
			return fmt.Errorf("core: snapshot pool entry %d has window slot %d outside 0..%d",
				i, s, n-1)
		}
	}
	return nil
}

// snapshotState captures the token pool and the rename-vector ring
// verbatim (empty slots included — the ring is positional).
func (p *tkselPolicy) snapshotState() *PolicyState {
	st := &PolicyState{RenameVec: make([]RenameVecState, len(p.renameVec))}
	tok := p.alloc.State()
	st.Tokens = &tok
	for i, e := range p.renameVec {
		st.RenameVec[i] = RenameVecState{Seq: e.seq, Vec: uint64(e.vec)}
	}
	return st
}

func (p *tkselPolicy) restoreState(st *PolicyState) error {
	if st.Tokens == nil {
		return fmt.Errorf("core: TkSel snapshot is missing the token pool")
	}
	if len(st.RenameVec) != len(p.renameVec) {
		return fmt.Errorf("core: TkSel snapshot rename ring holds %d slots, want %d",
			len(st.RenameVec), len(p.renameVec))
	}
	if err := p.alloc.RestoreState(*st.Tokens); err != nil {
		return err
	}
	for i, e := range st.RenameVec {
		p.renameVec[i] = renameEntry{seq: e.Seq, vec: token.Vector(e.Vec)}
	}
	return nil
}

// snapshotState captures every wavefront's running maximum depth; the
// chain table is append-only, so the depths are the whole state.
func (p *serialPolicy) snapshotState() *PolicyState {
	st := &PolicyState{SerialChains: make([]int, len(p.chains))}
	for i := range p.chains {
		st.SerialChains[i] = p.chains[i].maxDepth
	}
	return st
}

func (p *serialPolicy) restoreState(st *PolicyState) error {
	p.chains = p.chains[:0]
	for _, d := range st.SerialChains {
		p.chains = append(p.chains, serialChain{maxDepth: d})
	}
	return nil
}

// snapshotState captures the latency table verbatim (empty slots
// included — the table is positional, direct-mapped).
func (p *loaddelayPolicy) snapshotState() *PolicyState {
	st := &PolicyState{LoadDelay: make([]LoadDelayEntryState, len(p.table))}
	for i, e := range p.table {
		st.LoadDelay[i] = LoadDelayEntryState{Tag: e.tag, Valid: e.valid, Lat: e.lat}
	}
	return st
}

func (p *loaddelayPolicy) restoreState(st *PolicyState) error {
	if len(st.LoadDelay) != len(p.table) {
		return fmt.Errorf("core: LoadDelay snapshot table holds %d entries, want %d",
			len(st.LoadDelay), len(p.table))
	}
	for i, e := range st.LoadDelay {
		p.table[i] = ldEntry{tag: e.Tag, valid: e.Valid, lat: e.Lat}
	}
	return nil
}
