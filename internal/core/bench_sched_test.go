package core

import (
	"testing"

	"repro/internal/workload"
)

// drainIssuable issues everything the scheduler can until the window
// reaches a fixed point, so the benchmark iterations below measure the
// pure wakeup/select scan — the every-cycle cost the structure-of-
// arrays window exists to shrink — rather than one-off issue work.
func drainIssuable(m *Machine) {
	for i := 0; i < 4*len(m.rob); i++ {
		before := m.stats.TotalIssues
		m.selectAndIssue()
		if m.stats.TotalIssues == before {
			return
		}
	}
}

// broadcastTarget picks the live window uop with the most consumers,
// the worst-case producer for a wakeup broadcast.
func broadcastTarget(tb testing.TB, m *Machine) *uop {
	tb.Helper()
	var best *uop
	for _, u := range m.rob {
		if u == nil || u.retired {
			continue
		}
		if best == nil || len(u.consumers) > len(best.consumers) {
			best = u
		}
	}
	if best == nil {
		tb.Fatal("warm machine has an empty window")
	}
	return best
}

// BenchmarkWakeupSelect measures the scheduler stage in isolation on a
// warm, saturated window: the oldest-first select scan at both window
// widths (128 slots = two bitmap words, 256 = four) and the wakeup
// broadcast that re-arms it. The warm point is deep into mcf — the
// memory-bound workload whose cache misses keep the window full of
// waiting instructions (82 of 128 and 128 of 256 occupied at the
// measured instant), the regime the select scan's cost actually
// matters in. These are the benchguard-pinned numbers the SoA rewrite
// is accountable to.
func BenchmarkWakeupSelect(b *testing.B) {
	b.Run("select-4wide", func(b *testing.B) {
		m := steadyMachineAt4(b, "mcf", 50_000)
		drainIssuable(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.selectAndIssue()
		}
	})
	b.Run("select-8wide", func(b *testing.B) {
		m := steadyMachineAt(b, "mcf", 50_000, CheckOff)
		drainIssuable(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.selectAndIssue()
		}
	})
	b.Run("wakeup-broadcast", func(b *testing.B) {
		m := steadyMachineAt(b, "mcf", 50_000, CheckOff)
		p := broadcastTarget(b, m)
		ev := event{kind: evBroadcast, u: p, gen: p.gen, life: p.life}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.handleBroadcast(ev)
		}
	})
}

// steadyMachineAt4 is steadyMachineAt for the paper's 4-wide machine
// (128-slot window), so the select benchmark covers the two-word
// bitmap case as well as the 8-wide four-word one.
func steadyMachineAt4(tb testing.TB, bench string, warmCycles int) *Machine {
	tb.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		tb.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := Config4Wide()
	cfg.MaxInsts = 1 << 60 // stepped manually; never reached
	m, err := New(cfg, gen)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < warmCycles; i++ {
		m.step()
	}
	return m
}
