package core

// redirectGap is the refetch scheme's pipeline redirect delay before
// flushed instructions re-enter the front end (on top of the front-end
// depth, matching the ">= 11 cycle" branch-recovery cost of Table 3).
const redirectGap = 3

// handleKill is the scheduler's reaction to a load scheduling miss
// arriving on the kill wire, dispatched to the configured scheme.
func (m *Machine) handleKill(ev event) {
	u := ev.u
	if u.gen != ev.gen || u.retired || !u.missed {
		return
	}
	m.stats.LoadSchedMisses++
	if u.issues == 1 {
		m.stats.MissOnFirstIssue++
	}
	switch u.missKind {
	case missCache:
		m.stats.CacheMisses++
	case missAlias:
		m.stats.AliasMisses++
	}

	// The policy counts its recovery stats, returns the load to the
	// waiting state (replayLoad) and invalidates dependents with the
	// scheme's mechanism. Value-predicted loads skip the invalidation:
	// dependents ride the predicted value, not the load's memory
	// timing, so the scheduling miss delays only the load's own
	// verification.
	m.pol.onKill(m, u)
}

// replayLoad returns the mis-scheduled load to the waiting state; it
// re-issues once its data is close enough that the re-execution hits
// (cache fill arrived / store data forwardable).
func (m *Machine) replayLoad(u *uop) {
	dataAt := u.dataReadyAt
	m.emit(u, EvReplay)
	m.unissue(u)
	if m.cfg.ReplayQueue {
		// Figure 4b: the load waits in the replay queue; its own
		// latency is known, so the retry aligns with the fill.
	} else if !m.reacquireIQ(u) {
		// The queue is momentarily full (possible only under TkSel's
		// early release). The replay slot is architecturally reserved;
		// forceIQ lets the count exceed transiently and accounts for
		// the overshoot.
		m.forceIQ(u)
	}
	if dataAt == unknown {
		// Alias on a store whose data producer is unresolved: poll.
		m.setHoldUntil(u, m.cycle+4)
	} else {
		h := dataAt - int64(m.cfg.SchedToExec)
		if h <= m.cycle {
			h = m.cycle + 1
		}
		m.setHoldUntil(u, h)
	}
	m.setRQRetryAt(u, m.holdUntil(u))
}

// selectiveKill precisely invalidates the transitive dependents of the
// squashed root: exactly position-based replay's effect (and the token
// kill's, for token heads — the rename-propagated dependence vectors
// identify the same set). Cleared instructions re-wake when their
// producers re-issue and re-broadcast.
func (m *Machine) selectiveKill(root *uop) {
	stack := append(m.killStack[:0], root)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pseq := p.seq()
		for _, cseq := range p.consumers {
			c := m.lookup(cseq)
			if c == nil || m.completedState(c) {
				continue
			}
			touched := false
			for i := 0; i < 2; i++ {
				if m.producerOf(c, i) == pseq && m.opReady(c, i) {
					m.clearOperand(c, i)
					touched = true
				}
			}
			if !touched {
				continue
			}
			if m.issuedState(c) {
				m.squash(c)
				m.stats.SquashedIssues++
			}
			if c.killMark != m.cycle {
				c.killMark = m.cycle
				stack = append(stack, c)
			}
		}
	}
	m.killStack = stack[:0]
}

// shadowKill is the timestamp-based invalidation shared by NonSel and
// DSel (§3.3): every operand woken within the propagation distance has
// a non-zero countdown timer and is invalidated. NonSel additionally
// flushes the whole schedule-to-execute pipeline region
// (flushPipeline); DSel lets issued instructions flow, poisoned results
// squashing at completion and clean completions revalidating their
// consumers (the evOpWake re-arms modeling the completion bus).
func (m *Machine) shadowKill(load *uop, flushPipeline bool) {
	P := int64(m.cfg.PropagationDistance())

	if flushPipeline {
		for i := 0; i < m.robCount; i++ {
			w := m.rob[(m.robHead+i)%len(m.rob)]
			if m.issuedState(w) && !m.completedState(w) && w.execStart > m.cycle {
				m.squash(w)
				m.stats.SquashedIssues++
			}
		}
	}

	for i := 0; i < m.robCount; i++ {
		w := m.rob[(m.robHead+i)%len(m.rob)]
		if w.retired || m.completedState(w) {
			continue
		}
		for op := 0; op < 2; op++ {
			if !m.opReady(w, op) || w.srcSeq(op) < 0 {
				continue
			}
			if m.cycle-m.opWokenAt(w, op) > P {
				// Timer expired: the parent verified long ago.
				continue
			}
			if m.prod(w, op) == nil {
				continue
			}
			// Note: when the parent has already completed, the kill still
			// clears the timer-marked operand; the instruction re-wakes
			// only when the completion group replays (NonSel) or the
			// completion bus refires (DSel) — modeled as a one-cycle
			// re-arm. Issued DSel instructions keep flowing (poison is
			// handled at their completion); their cleared ready state
			// only matters for future replays.
			m.clearOperand(w, op)
			m.rearmOperand(w, op)
		}
	}
}

// startReinsert schedules re-insert replay: after the detection
// penalty, every instruction younger than the load is flushed from the
// scheduler and re-inserted from the ROB in program order at dispatch
// bandwidth; dispatch stalls meanwhile (§4.2).
func (m *Machine) startReinsert(load *uop) {
	// The paper's 4-cycle penalty runs from detection; the kill already
	// consumed VerifyLatency of it.
	delay := int64(m.cfg.ReinsertPenalty - m.cfg.VerifyLatency)
	if delay < 0 {
		delay = 0
	}
	m.schedule(m.cycle+delay, event{kind: evReinsertStart, u: load})
}

func (m *Machine) handleReinsertStart(ev event) {
	load := ev.u
	if load.retired {
		return
	}
	m.stats.ReinsertEvents++
	for i := 0; i < m.robCount; i++ {
		w := m.rob[(m.robHead+i)%len(m.rob)]
		if w.seq() <= load.seq() || w.retired || m.completedState(w) || m.needsReinsert(w) {
			continue
		}
		if m.issuedState(w) {
			// A flushed load that already discovered its own miss must
			// not re-issue into the still-outstanding fill: keep it held
			// until its data is near, as replayLoad would have.
			if w.isLoad() && w.dataReadyAt != unknown && w.dataReadyAt > m.cycle {
				if h := w.dataReadyAt - int64(m.cfg.SchedToExec); h > m.holdUntil(w) {
					m.setHoldUntil(w, h)
				}
			}
			m.unissue(w)
			m.stats.SquashedIssues++
		}
		m.releaseIQ(w)
		m.win.set(m.win.reinsert, w.slot)
		m.reinsertPending++
	}
	m.reinsertActive = m.reinsertPending > 0
}

// reinsertStep drains flagged instructions in program order at dispatch
// bandwidth, restoring correct operand status from the map table as
// each re-enters the scheduler. Overlapping re-insert replays simply
// flag more instructions; the program-order window scan serves them
// all.
func (m *Machine) reinsertStep() {
	if !m.reinsertActive {
		return
	}
	it := newRingIter(m.win.reinsert, m.robHead, m.robCount, m.win.size)
	for n := 0; n < m.cfg.Width; n++ {
		slot, ok := it.next()
		if !ok {
			break
		}
		w := m.rob[slot]
		if !m.reacquireIQ(w) {
			return // queue full; resume next cycle
		}
		m.win.clearBit(m.win.reinsert, slot)
		m.reinsertPending--
		m.stats.ReinsertedInsts++
		for op := 0; op < 2; op++ {
			if w.srcSeq(op) < 0 {
				continue
			}
			if m.dataValidFor(m.prod(w, op), m.cycle) {
				m.wakeOperand(w, op, m.cycle)
			} else {
				m.clearOperand(w, op)
				m.rearmOperand(w, op)
			}
		}
	}
	if m.reinsertPending == 0 {
		m.reinsertActive = false
	}
}

// refetch implements §3.2: treat the scheduling miss like a branch
// misprediction — flush every younger instruction from the machine and
// refetch it through the front end. Flushed uops recycle through the
// pool immediately; their instructions re-enter via the fetch ring.
func (m *Machine) refetch(load *uop) {
	m.stats.RefetchEvents++
	flushFrom := load.seq() + 1
	tail := m.tailSeq()
	if flushFrom >= tail {
		return
	}

	insts := m.refetchInsts[:0]
	for seq := flushFrom; seq < tail; seq++ {
		w := m.lookup(seq)
		insts = append(insts, w.inst)
		if m.issuedState(w) {
			m.stats.SquashedIssues++
		}
		m.releaseIQ(w)
		m.pol.onFlush(m, w)
		w.retired = true // dead: events and consumer walks skip it
		w.gen++
		m.win.clearSlot(w.slot)
		m.rob[(m.robHead+int(seq-m.headSeq))%len(m.rob)] = nil
		m.freeUop(w)
	}
	m.robCount = int(flushFrom - m.headSeq)

	// Truncate the LSQ at the flush point.
	for i := 0; i < m.lsqLen; i++ {
		if m.lsqAt(i).seq() >= flushFrom {
			m.lsqLen = i
			break
		}
	}

	// Rebuild the front end: flushed instructions come back first, then
	// whatever was already fetched, all paying redirect + refill.
	for i := 0; i < m.fqLen; i++ {
		insts = append(insts, m.fqAt(i).inst)
	}
	m.fqHead, m.fqLen = 0, 0
	base := m.cycle + redirectGap + int64(m.cfg.FrontEndDepth)
	for n, in := range insts {
		m.fqPush(fetchEntry{inst: in, readyAt: base + int64(n/m.cfg.Width)})
	}
	m.refetchInsts = insts[:0]
}

// valueKill recovers a wrong value prediction: every transitive
// dependent — including ones that already completed on the bogus value
// — is squashed and re-wakes off the load's now-correct result. This is
// the arbitrary-boundary replay of Figure 8b, possible here because the
// dependence name space (token vector / full IDs / program order) does
// not rely on issue timing.
func (m *Machine) valueKill(root *uop) {
	stack := append(m.killStack[:0], root)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pseq := p.seq()
		for _, cseq := range p.consumers {
			c := m.lookup(cseq)
			if c == nil {
				continue
			}
			touched := false
			for i := 0; i < 2; i++ {
				if m.producerOf(c, i) == pseq && (m.opReady(c, i) || m.completedState(c)) {
					m.clearOperand(c, i)
					touched = true
				}
			}
			if !touched {
				continue
			}
			if m.issuedState(c) || m.completedState(c) {
				m.squash(c)
				m.stats.SquashedIssues++
				m.stats.ValueKilledInsts++
			}
			for i := 0; i < 2; i++ {
				if m.producerOf(c, i) == pseq && !m.opReady(c, i) {
					m.rearmOperand(c, i)
				}
			}
			if c.killMark != m.cycle {
				c.killMark = m.cycle
				stack = append(stack, c)
			}
		}
	}
	m.killStack = stack[:0]
}
