package core

import (
	"testing"

	"repro/internal/workload"
)

// FuzzCheckedMachine drives randomized (config, seed) pairs through
// full-level checked runs: whatever corner the fuzzer finds, every
// invariant monitor and the run itself must hold. The seed corpus
// covers all ten schemes plus the replay-queue, value-prediction and
// tight-token corners from the golden configurations.
func FuzzCheckedMachine(f *testing.F) {
	for i, s := range Schemes() {
		f.Add(int64(i+1), uint8(s), uint8(i), uint16(0), uint8(0), false, false)
	}
	f.Add(int64(99), uint8(TkSel), uint8(6), uint16(8), uint8(1), false, false)
	f.Add(int64(7), uint8(PosSel), uint8(4), uint16(4), uint8(0), true, false)
	f.Add(int64(8), uint8(PosSel), uint8(1), uint16(0), uint8(0), false, true)
	f.Fuzz(func(t *testing.T, seed int64, schemeRaw, benchRaw uint8, iqSize uint16, tok uint8, rq, vp bool) {
		schemes := Schemes()
		cfg := Config4Wide()
		cfg.Scheme = schemes[int(schemeRaw)%len(schemes)]
		cfg.Check = CheckFull
		cfg.MaxInsts = 3_000
		cfg.Warmup = 500
		if iqSize > 0 {
			cfg.IQSize = 1 + int(iqSize)%96
		}
		if tok > 0 {
			cfg.Tokens = 1 + int(tok)%31
		}
		cfg.ReplayQueue = rq
		cfg.ValuePrediction = vp
		if err := cfg.Validate(); err != nil {
			t.Skip(err) // not every tuple is a legal machine
		}
		prof, err := workload.ByName(workload.Benchmarks[int(benchRaw)%len(workload.Benchmarks)])
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(prof, seed)
		if err != nil {
			t.Skip(err)
		}
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("checked run violated invariants: %v", err)
		}
	})
}
