package core

import (
	"testing"

	"repro/internal/workload"
)

// TestDiagBottlenecks is a diagnostic aid, not a correctness test: it
// prints IPC under progressively idealized workloads to localize
// performance modeling losses. Run with -v.
func TestDiagBottlenecks(t *testing.T) {
	base, _ := workload.ByName("gcc")

	variants := []struct {
		name   string
		mutate func(*workload.Profile)
	}{
		{"baseline", func(p *workload.Profile) {}},
		{"no-branches", func(p *workload.Profile) { p.BranchFrac = 0 }},
		{"no-miss", func(p *workload.Profile) { p.ColdFrac, p.WarmFrac = 0, 0; p.AliasFrac = 0 }},
		{"no-stores", func(p *workload.Profile) { p.StoreFrac = 0; p.AliasFrac = 0 }},
		{"wide-deps", func(p *workload.Profile) { p.DepMean = 8 }},
		{"ideal", func(p *workload.Profile) {
			p.BranchFrac = 0
			p.ColdFrac, p.WarmFrac, p.AliasFrac = 0, 0, 0
			p.StoreFrac = 0
			p.DepMean = 12
		}},
	}
	for _, v := range variants {
		p := base
		v.mutate(&p)
		gen, err := workload.NewGenerator(p, 42)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config4Wide()
		cfg.MaxInsts = 60_000
		cfg.Warmup = 40_000
		m, _ := New(cfg, gen)

		// Drive manually and sample machine state after warmup.
		var sumIQ, sumROB, sumFQ, emptyWin, headWait int64
		var headNotReady, headHold, headIssued int64
		var measured int64
		var warmCycle int64
		var warmBase Stats
		for m.stats.Retired < cfg.MaxInsts+cfg.Warmup && m.cycle < 2_000_000 {
			m.step()
			if m.stats.Retired < cfg.Warmup {
				continue
			}
			if warmCycle == 0 {
				warmCycle = m.cycle
				warmBase = m.stats
			}
			measured++
			sumIQ += int64(m.iqCount)
			sumROB += int64(m.robCount)
			sumFQ += int64(m.fqLen)
			if m.robCount == 0 {
				emptyWin++
				continue
			}
			h := m.rob[m.robHead]
			if !m.completedState(h) {
				headWait++
				switch {
				case m.issuedState(h):
					headIssued++
				case m.holdUntil(h) > m.cycle:
					headHold++
				case !m.allReady(h):
					headNotReady++
				}
			}
		}
		m.stats.Cycles = m.cycle
		m.stats.subtract(&warmBase)
		m.stats.Cycles = m.cycle - warmCycle
		st := &m.stats
		c := float64(measured)
		mis := 0.0
		if st.BranchLookups > 0 {
			mis = float64(st.BranchMispredicts) / float64(st.BranchLookups)
		}
		ia, im := m.hier.IL1().Stats()
		da, dm := m.hier.DL1().Stats()
		l2a, l2m := m.hier.L2().Stats()
		t.Logf("%-12s IPC=%.3f missRate=%.4f brMis=%.3f | avgIQ=%.1f avgROB=%.1f avgFQ=%.1f emptyWin=%.2f headIssued=%.2f headHold=%.2f headNotReady=%.2f | il1 %d/%d dl1 %d/%d l2 %d/%d",
			v.name, st.IPC(), st.LoadMissRate(), mis,
			float64(sumIQ)/c, float64(sumROB)/c, float64(sumFQ)/c,
			float64(emptyWin)/c, float64(headIssued)/c, float64(headHold)/c, float64(headNotReady)/c,
			im, ia, dm, da, l2m, l2a)
	}
}
