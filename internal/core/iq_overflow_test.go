package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

// overflowStream is a synthetic workload built to corner the TkSel
// issue queue: a serial integer-divide chain drains the queue slowly,
// a crowd of dependent ALU waiters keeps it pinned full, and a cold
// load each period — dependence-free, so its tokenless issue releases
// its queue slot immediately — always misses. By the time the miss is
// detected the freed slot has been re-dispatched into, so the squash
// must take the escape hatch.
type overflowStream struct {
	seq  int64
	addr uint64
}

const ofPeriod = 8

func (s *overflowStream) Next() isa.Inst {
	i := s.seq
	s.seq++
	in := isa.Inst{Seq: i, PC: 0x1000 + uint64(i%ofPeriod)*4, Src1: -1, Src2: -1}
	switch i % ofPeriod {
	case 0: // serial divide chain: one long-latency drain per period
		in.Class = isa.IntDiv
		if i >= ofPeriod {
			in.Src1 = i - ofPeriod
		}
	case 6: // cold load: a never-seen line, so issuing it is always a scheduling miss
		in.Class = isa.Load
		s.addr += 4096
		in.Addr = s.addr
	default: // waiters pinned in the queue behind this period's divide
		in.Class = isa.IntALU
		in.Src1 = (i / ofPeriod) * ofPeriod
	}
	return in
}

// The issue-queue escape hatch: a squash must re-enter the IQ even
// when it is full (under TkSel, issue-time early release can hand the
// slot away before the kill lands). The transient over-count must stay
// bounded — the squashed instructions already live in the window, so
// occupancy can never exceed the in-flight population — and every use
// of the hatch must be accounted in the stats.
func TestIQOverflowEscapeHatchBounded(t *testing.T) {
	// The synthetic stream exercises the hatch deterministically; the
	// full monitors enforce the occupancy bounds every cycle.
	cfg := Config4Wide()
	cfg.Scheme = TkSel
	cfg.Tokens = 1
	cfg.IQSize = 12
	cfg.Check = CheckFull
	cfg.MaxInsts = 8_000
	m, err := New(cfg, &overflowStream{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	if st.IQOverflowSquashes == 0 {
		t.Fatal("synthetic pressure workload never exercised the escape hatch; invariant checks vacuous")
	}
	if max := st.IQOvershootMax; max > uint64(cfg.ROBSize-cfg.IQSize) {
		t.Fatalf("overshoot high-water %d exceeds ROB-IQ headroom %d", max, cfg.ROBSize-cfg.IQSize)
	}

	// The real workload keeps the bounds honest under organic pressure
	// (whether or not the hatch fires there).
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		gen, err := workload.NewGenerator(prof, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config4Wide()
		cfg.Scheme = TkSel
		// A small queue under a large window maximizes the pressure on
		// the replay slot reservation.
		cfg.IQSize = 16
		cfg.MaxInsts = 40_000
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		for m.stats.Retired < cfg.MaxInsts {
			// forceIQ panics if occupancy ever exceeds the window
			// population; stepping to completion exercises it.
			m.step()
			if m.iqCount > m.robCount {
				t.Fatalf("cycle %d: IQ occupancy %d exceeds window population %d",
					m.cycle, m.iqCount, m.robCount)
			}
		}
		if max := m.stats.IQOvershootMax; max > uint64(cfg.ROBSize-cfg.IQSize) {
			t.Fatalf("seed %d: overshoot high-water %d exceeds ROB-IQ headroom %d",
				seed, max, cfg.ROBSize-cfg.IQSize)
		}
		if m.stats.IQOverflowSquashes > 0 && m.stats.IQOvershootMax == 0 {
			t.Fatalf("seed %d: %d overflow squashes recorded with zero overshoot high-water",
				seed, m.stats.IQOverflowSquashes)
		}
	}
}
