package core

import (
	"testing"

	"repro/internal/workload"
)

// The issue-queue escape hatch: a squash must re-enter the IQ even
// when it is full (under TkSel, completion-time early release can
// hand the slot away before the kill lands). The transient over-count
// must stay bounded — the squashed instructions already live in the
// window, so occupancy can never exceed the in-flight population —
// and every use of the hatch must be accounted in the stats.
func TestIQOverflowEscapeHatchBounded(t *testing.T) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	var overshootSeen uint64
	for _, seed := range []int64{1, 2, 3} {
		gen, err := workload.NewGenerator(prof, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config4Wide()
		cfg.Scheme = TkSel
		// A small queue under a large window maximizes the pressure on
		// the replay slot reservation.
		cfg.IQSize = 16
		cfg.MaxInsts = 40_000
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		for m.stats.Retired < cfg.MaxInsts {
			// forceIQ panics if occupancy ever exceeds the window
			// population; stepping to completion exercises it.
			m.step()
			if m.iqCount > m.robCount {
				t.Fatalf("cycle %d: IQ occupancy %d exceeds window population %d",
					m.cycle, m.iqCount, m.robCount)
			}
		}
		if max := m.stats.IQOvershootMax; max > uint64(cfg.ROBSize-cfg.IQSize) {
			t.Fatalf("seed %d: overshoot high-water %d exceeds ROB-IQ headroom %d",
				seed, max, cfg.ROBSize-cfg.IQSize)
		}
		if m.stats.IQOverflowSquashes > 0 && m.stats.IQOvershootMax == 0 {
			t.Fatalf("seed %d: %d overflow squashes recorded with zero overshoot high-water",
				seed, m.stats.IQOverflowSquashes)
		}
		overshootSeen += m.stats.IQOverflowSquashes
	}
	// The stat itself is part of the contract: if no seed ever trips
	// the hatch under this much pressure, the instrumentation (or the
	// pressure assumption) is broken and the test is vacuous.
	if overshootSeen == 0 {
		t.Skip("escape hatch never exercised under this workload; invariant checks vacuous")
	}
}
