package core

import (
	"math/bits"

	"repro/internal/isa"
	"repro/internal/token"
)

// This file holds the built-in invariant monitors. Each registers
// itself like a replay policy does; see DESIGN.md §10 for the checker
// contract and how to add one.

func init() {
	registerChecker("retire", func() checker { return &retireChecker{} })
	registerChecker("occupancy", func() checker { return &occupancyChecker{} })
	registerChecker("wakeup", func() checker { return &wakeupChecker{} })
	registerChecker("token", func() checker { return &tokenChecker{} })
	registerChecker("replay-closure", func() checker { return &closureChecker{} })
	registerChecker("memory", func() checker { return &memoryChecker{} })
	registerChecker("window-soa", func() checker { return &soaChecker{} })
}

// retireChecker verifies in-order, exactly-once commitment: the retired
// sequence numbers are dense, every retiring instruction matches the
// window head, executed at least once, and was squashed strictly fewer
// times than it issued (its final issue survived).
type retireChecker struct {
	noopChecker
	lastSeq int64
}

func (c *retireChecker) name() string         { return "retire" }
func (c *retireChecker) minLevel() CheckLevel { return CheckCheap }
func (c *retireChecker) reset(*Machine)       { c.lastSeq = -1 }

func (c *retireChecker) event(m *Machine, u *uop, kind PipeEventKind) {
	if kind != EvRetire {
		return
	}
	seq := u.seq()
	if c.lastSeq >= 0 && seq != c.lastSeq+1 {
		m.mon.failf(m, c.name(), seq, "out-of-order retire: seq %d after %d", seq, c.lastSeq)
	}
	c.lastSeq = seq
	if seq != m.headSeq {
		m.mon.failf(m, c.name(), seq, "retiring seq %d is not the window head %d", seq, m.headSeq)
	}
	if !m.completedState(u) {
		m.mon.failf(m, c.name(), seq, "retiring without completion")
	}
	if u.issues < 1 {
		m.mon.failf(m, c.name(), seq, "retiring with %d executions", u.issues)
	}
	if u.squashes >= u.issues {
		m.mon.failf(m, c.name(), seq, "retiring with %d squashes of %d issues (no surviving execution)",
			u.squashes, u.issues)
	}
}

// occupancyChecker verifies the window bookkeeping: ROB/IQ/RQ/LSQ
// occupancy bounds every cycle, and (at full level) a complete window
// reconciliation — dense live sequence numbers, per-uop queue flags
// summing to the counters, and pool conservation.
type occupancyChecker struct {
	noopChecker
	full bool
}

func (c *occupancyChecker) name() string         { return "occupancy" }
func (c *occupancyChecker) minLevel() CheckLevel { return CheckCheap }
func (c *occupancyChecker) reset(m *Machine)     { c.full = m.cfg.Check >= CheckFull }

func (c *occupancyChecker) cycleEnd(m *Machine) {
	switch {
	case m.robCount < 0 || m.robCount > m.cfg.ROBSize:
		m.mon.failf(m, c.name(), -1, "ROB occupancy %d out of [0,%d]", m.robCount, m.cfg.ROBSize)
	case m.iqCount < 0 || m.iqCount > m.robCount:
		m.mon.failf(m, c.name(), -1, "IQ occupancy %d outside window population %d", m.iqCount, m.robCount)
	case m.iqCount > m.cfg.IQSize && m.stats.IQOverflowSquashes == 0:
		m.mon.failf(m, c.name(), -1, "IQ occupancy %d exceeds %d without a recorded overflow squash",
			m.iqCount, m.cfg.IQSize)
	case m.rqCount < 0 || m.rqCount > m.cfg.rqSize():
		m.mon.failf(m, c.name(), -1, "RQ occupancy %d out of [0,%d]", m.rqCount, m.cfg.rqSize())
	case m.lsqLen < 0 || m.lsqLen > m.cfg.LSQSize:
		m.mon.failf(m, c.name(), -1, "LSQ occupancy %d out of [0,%d]", m.lsqLen, m.cfg.LSQSize)
	}
	if m.robCount > 0 {
		head := m.rob[m.robHead]
		if head == nil || head.seq() != m.headSeq {
			m.mon.failf(m, c.name(), m.headSeq, "window head does not carry headSeq %d", m.headSeq)
			return
		}
	}
	if !c.full {
		return
	}
	inIQ, inRQ := 0, 0
	for i := 0; i < m.robCount; i++ {
		w := m.rob[(m.robHead+i)%len(m.rob)]
		want := m.headSeq + int64(i)
		if w == nil {
			m.mon.failf(m, c.name(), want, "nil window slot at seq %d", want)
			return
		}
		if w.seq() != want {
			m.mon.failf(m, c.name(), w.seq(), "window slot holds seq %d, want %d", w.seq(), want)
			return
		}
		if w.retired {
			m.mon.failf(m, c.name(), w.seq(), "retired uop still in the window")
		}
		if m.inIQ(w) {
			inIQ++
		}
		if m.inRQ(w) {
			inRQ++
		}
	}
	if inIQ != m.iqCount {
		m.mon.failf(m, c.name(), -1, "IQ count %d but %d window uops hold entries", m.iqCount, inIQ)
	}
	if inRQ != m.rqCount {
		m.mon.failf(m, c.name(), -1, "RQ count %d but %d window uops hold entries", m.rqCount, inRQ)
	}
	if len(m.free)+m.robCount != len(m.pool) {
		m.mon.failf(m, c.name(), -1, "uop pool leak: %d free + %d live != %d pooled",
			len(m.free), m.robCount, len(m.pool))
	}
}

// wakeupChecker verifies scoreboard/ready-bit consistency: an operand
// marked ready must have a cause — producer out of the window, producer
// issued at least once (its broadcast or completion woke us), a live
// value prediction, or the scheme's own wakeup rule (serial
// verification's scoreboard). Issue must only select fully ready
// instructions (except the replay queue's blind re-issues, which cannot
// observe wakeups by design).
type wakeupChecker struct{ noopChecker }

func (c *wakeupChecker) name() string         { return "wakeup" }
func (c *wakeupChecker) minLevel() CheckLevel { return CheckCheap }

func (c *wakeupChecker) event(m *Machine, u *uop, kind PipeEventKind) {
	switch kind {
	case EvDispatch:
		if !m.inIQ(u) || m.issuedState(u) || m.completedState(u) {
			m.mon.failf(m, c.name(), u.seq(), "dispatched in a non-waiting state (inIQ=%v issued=%v completed=%v)",
				m.inIQ(u), m.issuedState(u), m.completedState(u))
		}
		if want := m.headSeq + int64(m.robCount) - 1; u.seq() != want {
			m.mon.failf(m, c.name(), u.seq(), "dispatched seq %d is not the window tail %d", u.seq(), want)
		}
		c.checkOperands(m, u)
	case EvIssue:
		if !m.issuedState(u) || u.issues < 1 || m.completedState(u) || u.retired {
			m.mon.failf(m, c.name(), u.seq(), "issued in an inconsistent state (issued=%v issues=%d completed=%v retired=%v)",
				m.issuedState(u), u.issues, m.completedState(u), u.retired)
		}
		if !m.inRQ(u) && !m.allReady(u) {
			m.mon.failf(m, c.name(), u.seq(), "issued with an operand not ready")
		}
		c.checkOperands(m, u)
	}
}

func (c *wakeupChecker) checkOperands(m *Machine, u *uop) {
	for i := 0; i < 2; i++ {
		if u.srcSeq(i) < 0 || !m.opReady(u, i) {
			continue
		}
		p := m.prod(u, i)
		if p == nil || !p.inst.Class.HasDest() {
			continue // producer retired or produces no register value
		}
		// issues is cumulative, so a producer squashed after waking us
		// still justifies the stale-but-legal ready bit (the safety
		// check at completion is what catches actually-consumed staleness).
		if p.issues > 0 || m.completedState(p) || (p.valuePredicted && !p.valueWrong) || m.pol.wakeupEligible(p) {
			continue
		}
		m.mon.failf(m, c.name(), u.seq(), "operand %d ready with never-issued producer %d", i, p.seq())
	}
}

// tokenChecker verifies TkSel's token conservation: every held token's
// head is a live in-window load that knows it holds the token, the
// pool's in-use count matches the holder table, and (at full level)
// every window holder and dependence-vector bit resolves to an in-use
// token. A non-TkSel run disables the checker at reset.
type tokenChecker struct {
	noopChecker
	pol  *tkselPolicy
	full bool
}

func (c *tokenChecker) name() string         { return "token" }
func (c *tokenChecker) minLevel() CheckLevel { return CheckCheap }

func (c *tokenChecker) reset(m *Machine) {
	c.pol, _ = m.pol.(*tkselPolicy)
	c.full = m.cfg.Check >= CheckFull
}

func (c *tokenChecker) cycleEnd(m *Machine) {
	if c.pol == nil {
		return
	}
	// The cheap level samples: token state only changes at rename,
	// completion and kill, and a leak stays visible forever.
	if !c.full && m.cycle&63 != 0 {
		return
	}
	a := c.pol.alloc
	inUse := 0
	var live token.Vector
	for id := 0; id < a.Size(); id++ {
		h := a.Holder(id)
		if h < 0 {
			continue
		}
		inUse++
		live = live.With(id)
		if h < m.headSeq || h >= m.tailSeq() {
			m.mon.failf(m, c.name(), h, "token %d held by out-of-window seq %d (window [%d,%d))",
				id, h, m.headSeq, m.tailSeq())
			continue
		}
		w := m.lookup(h)
		if w == nil || w.tokenID != id {
			m.mon.failf(m, c.name(), h, "token %d's head seq %d does not hold it back", id, h)
		}
	}
	if inUse != a.InUse() {
		m.mon.failf(m, c.name(), -1, "token pool reports %d in use, holder table has %d", a.InUse(), inUse)
	}
	if !c.full {
		return
	}
	holders := 0
	for i := 0; i < m.robCount; i++ {
		w := m.rob[(m.robHead+i)%len(m.rob)]
		if w.tokenID >= 0 {
			holders++
			if a.Holder(w.tokenID) != w.seq() {
				m.mon.failf(m, c.name(), w.seq(), "uop holds token %d allocated to seq %d",
					w.tokenID, a.Holder(w.tokenID))
			}
		}
		if w.depVec.Merge(live) != live {
			m.mon.failf(m, c.name(), w.seq(), "dependence vector %b carries bits of free tokens (live %b)",
				uint64(w.depVec), uint64(live))
		}
	}
	if holders != inUse {
		m.mon.failf(m, c.name(), -1, "token conservation: %d in-window holders vs %d tokens in use",
			holders, inUse)
	}
	for i := range c.pol.renameVec {
		e := &c.pol.renameVec[i]
		if e.seq >= 0 && e.vec.Merge(live) != live {
			m.mon.failf(m, c.name(), e.seq, "rename vector %b carries bits of free tokens (live %b)",
				uint64(e.vec), uint64(live))
		}
	}
}

// closureChecker verifies replay closure at the completion gate. The
// direct property — every transitive consumer of a squashed load result
// re-executes before retiring — is scheme-dependent at kill time (DSel
// deliberately defers invalidation to completion-poison, NonSel
// over-kills), so the checker asserts its contrapositive where all
// schemes converge: no instruction may complete having consumed a value
// that was not actually valid at its execution, and only completed
// instructions retire (retireChecker). Together these force any
// consumer of a mis-scheduled result to re-execute with valid data
// before commit, whichever replay mechanism got it there.
type closureChecker struct{ noopChecker }

func (c *closureChecker) name() string         { return "replay-closure" }
func (c *closureChecker) minLevel() CheckLevel { return CheckFull }

func (c *closureChecker) event(m *Machine, u *uop, kind PipeEventKind) {
	if kind != EvComplete {
		return
	}
	if u.issues < 1 || u.execStart > m.cycle {
		m.mon.failf(m, c.name(), u.seq(), "completing before executing (issues=%d execStart=%d)",
			u.issues, u.execStart)
	}
	if u.dataReadyAt > m.cycle {
		m.mon.failf(m, c.name(), u.seq(), "completing at cycle %d before its data arrives at %d",
			m.cycle, u.dataReadyAt)
	}
	nsrc := 2
	if u.inst.Class == isa.Store {
		nsrc = 1 // stores complete on address readiness alone
	}
	for i := 0; i < nsrc; i++ {
		if u.srcSeq(i) >= 0 && !m.dataValidFor(m.prod(u, i), u.execStart) {
			m.mon.failf(m, c.name(), u.seq(),
				"completed consuming stale data from producer %d (replay closure broken)", u.srcSeq(i))
		}
	}
}

// memoryChecker verifies LSQ and cache-epoch sanity: the LSQ holds
// exactly the in-window memory instructions in program order, and the
// hierarchy's epoch-rotated in-flight fill maps obey their rotation and
// latency bounds. Throttled — the scans are O(LSQ + fill entries) and
// the state drifts slowly.
type memoryChecker struct{ noopChecker }

func (c *memoryChecker) name() string         { return "memory" }
func (c *memoryChecker) minLevel() CheckLevel { return CheckFull }

func (c *memoryChecker) cycleEnd(m *Machine) {
	if m.cycle&255 != 0 {
		return
	}
	prev := int64(-1)
	for i := 0; i < m.lsqLen; i++ {
		w := m.lsqAt(i)
		if w == nil {
			m.mon.failf(m, c.name(), -1, "nil LSQ slot %d of %d", i, m.lsqLen)
			return
		}
		seq := w.seq()
		switch {
		case !w.inst.Class.IsMem():
			m.mon.failf(m, c.name(), seq, "non-memory %v in the LSQ", w.inst.Class)
		case seq <= prev:
			m.mon.failf(m, c.name(), seq, "LSQ out of program order: seq %d after %d", seq, prev)
		case seq < m.headSeq || seq >= m.tailSeq():
			m.mon.failf(m, c.name(), seq, "LSQ entry outside the window [%d,%d)", m.headSeq, m.tailSeq())
		}
		prev = seq
	}
	if err := m.hier.CheckInvariants(m.cycle); err != nil {
		m.mon.failf(m, c.name(), -1, "cache hierarchy: %v", err)
	}
}

// soaChecker verifies the structure-of-arrays window's internal
// coherence: every live slot's bitmap planes agree with the uop and
// with each other (derived bits like the ready summary and pendStore
// recompute to their stored values), every dead slot is fully clear,
// and the plane population counts reconcile with the queue counters.
// This is the self-check side of the SoA rewrite's bit-identity
// argument: the per-uop state the old layout carried implicitly is now
// re-derived and compared every cycle at full check level.
type soaChecker struct{ noopChecker }

func (c *soaChecker) name() string         { return "window-soa" }
func (c *soaChecker) minLevel() CheckLevel { return CheckFull }

func (c *soaChecker) cycleEnd(m *Machine) {
	// Sampled, like tokenChecker's cheap level: bitmap incoherence is
	// sticky (a wrong bit persists until its slot is vacated), so a
	// 16-cycle sampling interval still catches real divergence while
	// keeping the full-level sweep from dominating the cycle cost.
	if m.cycle&15 != 0 {
		return
	}
	w := &m.win
	liveSlot := func(slot int32) bool {
		d := int(slot) - m.robHead
		if d < 0 {
			d += w.size
		}
		return d < m.robCount
	}
	for i := 0; i < m.robCount; i++ {
		slot := int32((m.robHead + i) % w.size)
		u := m.rob[slot]
		if u == nil {
			return // occupancyChecker reports the hole
		}
		if u.slot != slot {
			m.mon.failf(m, c.name(), u.seq(), "uop carries slot %d but lives in slot %d", u.slot, slot)
			continue
		}
		if got := m.seqAt(slot); got != u.seq() {
			m.mon.failf(m, c.name(), u.seq(), "seqAt(%d)=%d disagrees with resident seq %d", slot, got, u.seq())
		}
		if w.class[slot] != u.inst.Class {
			m.mon.failf(m, c.name(), u.seq(), "class plane holds %v, uop is %v", w.class[slot], u.inst.Class)
		}
		if w.test(w.loads, slot) != u.isLoad() {
			m.mon.failf(m, c.name(), u.seq(), "loads plane bit %v for class %v", w.test(w.loads, slot), u.inst.Class)
		}
		if w.test(w.completed, slot) && !w.test(w.issued, slot) {
			m.mon.failf(m, c.name(), u.seq(), "completed without the issued bit")
		}
		wantPend := u.inst.Class == isa.Store && !w.test(w.issued, slot) && !w.test(w.completed, slot)
		if w.test(w.pendStore, slot) != wantPend {
			m.mon.failf(m, c.name(), u.seq(), "pendStore bit %v, want %v (issued=%v completed=%v)",
				w.test(w.pendStore, slot), wantPend, w.test(w.issued, slot), w.test(w.completed, slot))
		}
		var rdy uint8
		for lane := 0; lane < 2; lane++ {
			tagged := w.test(w.opTagged[lane], slot)
			if tagged != (w.tag[lane][slot] >= 0) {
				m.mon.failf(m, c.name(), u.seq(), "operand %d tagged bit %v but tag %d", lane, tagged, w.tag[lane][slot])
			}
			if tagged && w.tag[lane][slot] != u.srcSeq(lane) {
				m.mon.failf(m, c.name(), u.seq(), "operand %d tag %d, uop names producer %d",
					lane, w.tag[lane][slot], u.srcSeq(lane))
			}
			if w.test(w.opReady[lane], slot) {
				rdy |= 1 << uint(lane)
			}
			// Row coverage: a live operand tagged with a live in-window
			// producer must appear in that producer's broadcast row, or
			// the producer's wakeup would skip it.
			if tagged && w.tag[lane][slot] >= m.headSeq {
				if p := m.lookup(w.tag[lane][slot]); p != nil {
					if w.consMask[lane][int(p.slot)*w.words+int(slot>>6)]>>(uint(slot)&63)&1 == 0 {
						m.mon.failf(m, c.name(), u.seq(),
							"operand %d tagged to live producer %d but absent from its broadcast row", lane, p.seq())
					}
				}
			}
		}
		if want := w.needMask[slot]&^rdy == 0; w.test(w.ready, slot) != want {
			m.mon.failf(m, c.name(), u.seq(), "ready summary bit %v, recomputed %v (need %b ready %b)",
				w.test(w.ready, slot), want, w.needMask[slot], rdy)
		}
	}
	inIQ, inRQ := 0, 0
	for wi := 0; wi < w.words; wi++ {
		inIQ += bits.OnesCount64(w.inIQ[wi])
		inRQ += bits.OnesCount64(w.inRQ[wi])
		stateBits := w.inIQ[wi] | w.inRQ[wi] | w.issued[wi] | w.completed[wi] |
			w.pendStore[wi] | w.reinsert[wi] | w.opTagged[0][wi] | w.opTagged[1][wi]
		for stateBits != 0 {
			slot := int32(wi<<6 | bits.TrailingZeros64(stateBits))
			stateBits &= stateBits - 1
			if !liveSlot(slot) {
				m.mon.failf(m, c.name(), -1, "dead slot %d holds window state bits", slot)
				return
			}
		}
	}
	if inIQ != m.iqCount {
		m.mon.failf(m, c.name(), -1, "inIQ plane population %d, counter %d", inIQ, m.iqCount)
	}
	if inRQ != m.rqCount {
		m.mon.failf(m, c.name(), -1, "inRQ plane population %d, counter %d", inRQ, m.rqCount)
	}
}
