package core

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/prefetch"
	"repro/internal/smpred"
	"repro/internal/vpred"
	"repro/internal/workload"
)

// Machine is one simulated processor instance. Build with New, run with
// Run. Run may be called once per New or Reset; Reset restores the
// machine for a fresh run while reusing the previous run's allocations,
// so a pool of machines can serve many simulations without rebuilding
// the window, event wheel or cache arrays each time.
//
// The cycle loop is allocation-free in steady state: uops are recycled
// through a fixed pool, events live on a circular wheel, and the
// window-side queues (fetch buffer, LSQ, rename vectors) are rings.
type Machine struct {
	cfg  Config
	src  workload.Stream
	hier *cache.Hierarchy
	bp   *bpred.Predictor
	sp   *smpred.Predictor
	// pol is the replay policy: all scheme-specific behaviour and state
	// (token pool, rename vectors, serial chains, ...) lives behind it.
	pol replayPolicy
	// vp is the load value predictor (nil unless ValuePrediction).
	vp *vpred.Predictor
	// pf is the data prefetcher (nil unless Prefetch.Kind is set), fed
	// by execLoad and filling DL1 through the hierarchy's demand MSHRs.
	pf *prefetch.Prefetcher

	cycle int64

	// rob is the reorder buffer, a ring of in-window uops. headSeq is
	// the sequence number at robHead; sequence numbers are dense, so
	// window lookup is arithmetic.
	rob      []*uop
	robHead  int
	robCount int
	headSeq  int64

	// win is the structure-of-arrays scheduler window: the hot per-uop
	// scheduling state packed into bitmap planes and parallel arrays
	// indexed by window slot (see window.go). The ROB ring and the
	// window arrays advance together — slot = seq mod ROBSize.
	win schedWindow

	// pool is the uop arena; free holds recycled entries. The window
	// admits at most ROBSize live uops, so the pool never grows.
	pool []uop
	free []*uop

	// iqCount tracks occupied issue-queue entries.
	iqCount int
	// rqCount tracks issued-unverified instructions under the
	// replay-queue model.
	rqCount int
	// lsq is a ring holding in-window loads and stores in program
	// order: lsqLen live entries starting at lsqHead.
	lsq     []*uop
	lsqHead int
	lsqLen  int

	// Front end: fetchQ is a ring of fetched instructions waiting out
	// the front-end depth. Its capacity is ROBSize+fetchQCap — enough
	// for a refetch replay to push the whole window back through it.
	// nextInst is the read-ahead from the trace.
	fetchQ       []fetchEntry
	fqHead       int
	fqLen        int
	nextInst     isa.Inst
	haveNext     bool
	fetchStall   int64 // no fetch until this cycle
	blockedOnSeq int64 // mispredicted branch gating fetch, -1 if none
	lastLine     uint64
	haveLastLine bool

	// wheel is the cycle-indexed event queue: slot cycle&wheelMask holds
	// the events for that cycle. The horizon (wheel length) exceeds the
	// largest possible scheduling lead — a main-memory round trip plus
	// pipeline depths — and schedule panics if an event would lap it.
	wheel     [][]event
	wheelMask int64

	// Re-insert replay state: reinsertPending counts flagged
	// instructions awaiting program-order re-insertion.
	reinsertActive  bool
	reinsertPending int

	// killStack is the reusable DFS worklist for selective and value
	// kills; refetchInsts is the reusable scratch for the refetch
	// scheme's front-end rebuild.
	killStack    []*uop
	refetchInsts []isa.Inst

	stats Stats
	// meter feeds Figure 9 (predictor coverage); recorded on each
	// load's first execution.
	meter smpred.CoverageMeter
	// sink receives pipeline lifecycle events (tooling only: stream
	// recording, visualization); nil when nothing is attached.
	sink EventSink
	// evCount counts every emitted pipeline event, advancing identically
	// with or without a sink or monitor attached; it is the
	// deterministic cursor recorded streams and Violation.Cursor index
	// with.
	evCount int64
	// srcPos counts instructions drawn from the workload stream — the
	// cursor a checkpoint needs to rebuild the stream position by
	// fast-forwarding a fresh generator.
	srcPos int64
	// Warm-up bookkeeping, promoted from RunContext locals so
	// checkpoints capture it: warmed flips once Warmup instructions have
	// retired, and warmBase is the statistics snapshot at that boundary
	// (subtracted from the final numbers).
	warmed   bool
	warmBase Stats
	// Checkpointing: when ckptFn is set, RunContext hands it a fresh
	// machine snapshot every ckptEvery cycles (see SetCheckpoints).
	ckptEvery int64
	nextCkpt  int64
	ckptFn    func(*MachineState)
	// mon drives the invariant monitors; nil when cfg.Check is off, so
	// the disabled path costs one nil test per emitted event.
	mon *monitor

	// retireHash chains the retired instruction stream into a digest
	// (always on; the validation layer compares it across check levels
	// and against the oracle). hashTarget stops the chain at
	// Warmup+MaxInsts so the final cycle's overshoot retirements do not
	// make the digest depend on retire bandwidth.
	retireHash uint64
	hashTarget int64

	ran bool
}

type fetchEntry struct {
	inst isa.Inst
	// readyAt is when the instruction becomes eligible for dispatch.
	readyAt int64
}

type evKind uint8

const (
	// evExec: the uop reaches the execute stage.
	evExec evKind = iota
	// evBroadcast: the uop broadcasts its result tag (wakeup).
	evBroadcast
	// evComplete: the uop reaches completion with valid data.
	evComplete
	// evKill: a load scheduling miss's kill signal reaches the
	// scheduler.
	evKill
	// evOpWake: targeted revalidation of one operand (completion bus /
	// completion-group effects).
	evOpWake
	// evReinsertStart: begin re-insert replay for the payload load.
	evReinsertStart
	// evSerialStep: one level of serial verification propagation.
	evSerialStep
)

type event struct {
	kind evKind
	u    *uop
	gen  int
	// life is the uop-pool incarnation the event was scheduled under;
	// stamped by schedule/scheduleNow, checked before dispatching so an
	// event never acts on a recycled uop.
	life int
	// op is the operand index for evOpWake.
	op int
	// depth is the propagation level for evSerialStep.
	depth int
	// chain tracks an in-progress serial propagation (1-based index
	// into the serial policy's chain table).
	chain serialChainID
}

// New builds a machine over the given workload stream. The stream must
// produce valid instructions (see isa.Inst.Validate); the workload
// generator guarantees this.
func New(cfg Config, src workload.Stream) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{}
	m.init(cfg, src)
	return m, nil
}

// Reset rebuilds the machine for a new run over a (possibly different)
// configuration and stream, reusing the previous run's allocations
// wherever the sizes still fit. A reset machine behaves identically to
// a freshly constructed one; the experiment runner pools machines
// across its sweep on the strength of that guarantee.
func (m *Machine) Reset(cfg Config, src workload.Stream) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.init(cfg, src)
	return nil
}

// horizonFor bounds how far ahead any event can be scheduled: the worst
// case is a load completing off a main-memory fill observed through an
// in-flight line (two DL1 latencies plus L2 plus memory), stacked on
// the schedule-to-execute depth, verification, the re-insert delay and
// the longest functional-unit latency, with slack for the +1-style
// nudges handlers apply. Rounded up to a power of two, minimum 64.
func horizonFor(cfg Config) int64 {
	h := cfg.Hierarchy
	lead := cfg.SchedToExec + cfg.VerifyLatency + cfg.ReinsertPenalty +
		isa.MaxExecLatency() +
		2*h.DL1.Latency + h.IL1.Latency + h.L2.Latency + h.MemLatency + 32
	n := int64(64)
	for n < int64(lead) {
		n <<= 1
	}
	return n
}

// init (re)builds all run state. Size-dependent storage is reallocated
// only when the configuration demands a different shape.
func (m *Machine) init(cfg Config, src workload.Stream) {
	reuseHier := m.hier != nil && m.cfg.Hierarchy == cfg.Hierarchy
	reuseBp := m.bp != nil && m.cfg.Bpred == cfg.Bpred
	reuseSp := m.sp != nil && m.cfg.SMPred == cfg.SMPred
	reuseVp := m.vp != nil && cfg.ValuePrediction && m.cfg.VPred == cfg.VPred
	reusePf := m.pf != nil && cfg.Prefetch.Kind != prefetch.KindOff &&
		m.cfg.Prefetch == cfg.Prefetch

	m.cfg = cfg
	m.src = src

	if reuseHier {
		m.hier.Reset()
	} else {
		m.hier = cache.NewHierarchy(cfg.Hierarchy)
	}
	if reuseBp {
		m.bp.Reset()
	} else {
		m.bp = bpred.New(cfg.Bpred)
	}
	if reuseSp {
		m.sp.Reset()
	} else {
		m.sp = smpred.New(cfg.SMPred)
	}
	switch {
	case !cfg.ValuePrediction:
		m.vp = nil
	case reuseVp:
		m.vp.Reset()
	default:
		m.vp = vpred.New(cfg.VPred)
	}
	if reusePf {
		m.pf.Reset()
	} else {
		m.pf = prefetch.New(cfg.Prefetch) // nil for KindOff
	}

	m.cycle = 0

	if len(m.rob) != cfg.ROBSize {
		m.rob = make([]*uop, cfg.ROBSize)
		m.pool = make([]uop, cfg.ROBSize)
		m.free = make([]*uop, 0, cfg.ROBSize)
	} else {
		for i := range m.rob {
			m.rob[i] = nil
		}
		m.free = m.free[:0]
	}
	for i := range m.pool {
		m.pool[i] = uop{consumers: m.pool[i].consumers[:0]}
		m.free = append(m.free, &m.pool[i])
	}
	m.robHead, m.robCount, m.headSeq = 0, 0, 0
	m.win.init(cfg.ROBSize)
	m.iqCount, m.rqCount = 0, 0

	if len(m.lsq) != cfg.LSQSize {
		m.lsq = make([]*uop, cfg.LSQSize)
	} else {
		for i := range m.lsq {
			m.lsq[i] = nil
		}
	}
	m.lsqHead, m.lsqLen = 0, 0

	fqCap := cfg.ROBSize + cfg.Width*(cfg.FrontEndDepth+2)
	if len(m.fetchQ) != fqCap {
		m.fetchQ = make([]fetchEntry, fqCap)
	}
	m.fqHead, m.fqLen = 0, 0
	m.nextInst = isa.Inst{}
	m.haveNext = false
	m.fetchStall = 0
	m.blockedOnSeq = -1
	m.lastLine, m.haveLastLine = 0, false

	hz := horizonFor(cfg)
	if int64(len(m.wheel)) != hz {
		m.wheel = make([][]event, hz)
	} else {
		for i := range m.wheel {
			m.wheel[i] = m.wheel[i][:0]
		}
	}
	m.wheelMask = hz - 1

	m.reinsertActive, m.reinsertPending = false, 0

	// The policy survives resets to the same scheme so its private
	// state (token pool, rename-vector ring, chain slices) is reused;
	// reset is the policy's one allocation point.
	if m.pol == nil || m.pol.scheme() != cfg.Scheme {
		m.pol = newPolicy(cfg.Scheme)
	}
	m.pol.reset(m)

	m.killStack = m.killStack[:0]
	m.refetchInsts = m.refetchInsts[:0]

	// The monitor survives resets at the same level so its checkers'
	// private state is reused; like the policy, reset is its one
	// allocation point.
	if cfg.Check > CheckOff {
		if m.mon == nil || m.mon.level != cfg.Check {
			m.mon = newMonitor(cfg.Check)
		}
		m.mon.reset(m)
	} else {
		m.mon = nil
	}
	m.retireHash = isa.HashInit
	m.hashTarget = cfg.Warmup + cfg.MaxInsts

	m.stats = Stats{}
	m.meter = smpred.CoverageMeter{}
	m.sink = nil
	m.evCount = 0
	m.srcPos = 0
	m.warmed = cfg.Warmup == 0
	m.warmBase = Stats{}
	m.ckptEvery, m.nextCkpt, m.ckptFn = 0, 0, nil
	m.ran = false
}

// SetCheckpoints asks RunContext to hand fn a freshly allocated
// machine snapshot every `every` cycles (the first at or after cycle
// `every`). Snapshots are taken at cycle boundaries, outside the hot
// loop's allocation budget; pass every <= 0 or a nil fn to disable.
// Must be set after New/Reset and before Run.
func (m *Machine) SetCheckpoints(every int64, fn func(*MachineState)) {
	if every <= 0 || fn == nil {
		m.ckptEvery, m.nextCkpt, m.ckptFn = 0, 0, nil
		return
	}
	m.ckptEvery = every
	m.nextCkpt = m.cycle + every
	m.ckptFn = fn
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns the accumulated statistics; valid after Run. The
// pointer aliases machine state: callers keeping results past a Reset
// must copy (see Stats.Clone).
func (m *Machine) Stats() *Stats { return &m.stats }

// Meter returns the scheduling-miss predictor coverage meter (Figure 9
// data); valid after Run. Like Stats, copy before reusing the machine.
func (m *Machine) Meter() *smpred.CoverageMeter { return &m.meter }

// ValuePredictor exposes the load value predictor (nil unless value
// prediction is enabled).
func (m *Machine) ValuePredictor() *vpred.Predictor { return m.vp }

// deadlockWindow is how many cycles without a retirement trigger a
// diagnostic panic; real stalls (memory misses, re-inserts) are two
// orders of magnitude shorter.
const deadlockWindow = 200_000

// cancelCheckInterval is the cycle granularity of RunContext's
// cancellation check: a power of two, so the per-cycle cost is a nil
// check plus a mask, and a cancel or deadline is noticed within a few
// microseconds of simulated work — far below any run's wall time.
const cancelCheckInterval = 4096

// canceled reports whether the run's context was canceled. done is
// ctx.Done(), hoisted by the caller so the common case (background
// context, off-boundary cycle) costs no channel or mutex operations.
func (m *Machine) canceled(done <-chan struct{}) bool {
	if done == nil || m.cycle&(cancelCheckInterval-1) != 0 {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Run simulates Warmup instructions unmeasured, then MaxInsts measured
// instructions, and returns the statistics.
func (m *Machine) Run() (*Stats, error) {
	return m.RunContext(context.Background())
}

// RunContext is Run with cancellation: the context's cancel or
// deadline is checked every cancelCheckInterval cycles, and a canceled
// run returns the context's error (wrapped) with the machine left
// mid-flight. The machine is single-shot either way — Reset before
// reusing it, as a batch engine's pool does.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	if m.ran {
		return nil, fmt.Errorf("core: machine already ran")
	}
	m.ran = true
	done := ctx.Done()
	lastRetire := m.cycle
	lastCount := m.stats.Retired
	target := m.cfg.Warmup + m.cfg.MaxInsts
	for m.stats.Retired < target {
		m.step()
		if m.mon != nil && len(m.mon.violations) > 0 {
			m.stats.Cycles = m.cycle
			return nil, m.mon.err(m.cfg.Scheme)
		}
		if m.canceled(done) {
			return nil, fmt.Errorf("core: run canceled at cycle %d: %w", m.cycle, ctx.Err())
		}
		if !m.warmed && m.stats.Retired >= m.cfg.Warmup {
			m.warmed = true
			m.warmBase = m.stats
			m.warmBase.Cycles = m.cycle
		}
		if m.stats.Retired != lastCount {
			lastCount = m.stats.Retired
			lastRetire = m.cycle
		} else if m.cycle-lastRetire > deadlockWindow {
			return nil, fmt.Errorf("core: no retirement for %d cycles at cycle %d (scheme %v, head %s)",
				deadlockWindow, m.cycle, m.cfg.Scheme, m.describeHead())
		}
		if m.ckptFn != nil && m.cycle >= m.nextCkpt {
			m.ckptFn(m.snapshot())
			m.nextCkpt = m.cycle + m.ckptEvery
		}
	}
	m.stats.Cycles = m.cycle
	if m.cfg.Warmup > 0 {
		m.stats.subtract(&m.warmBase)
	}
	m.stats.RetireHash = m.retireHash
	m.pol.finish(m)
	if m.mon != nil {
		m.mon.finish(m)
		if err := m.mon.err(m.cfg.Scheme); err != nil {
			return nil, err
		}
	}
	return &m.stats, nil
}

// step advances one cycle. Phase order matters: kills must apply before
// completions so a dependent detected mis-scheduled never completes in
// the same cycle, and retirement sees the cycle's final state.
func (m *Machine) step() {
	m.cycle++
	m.runEvents()
	m.retire()
	m.reinsertStep()
	m.selectAndIssue()
	m.dispatch()
	m.fetch()
	slot := m.cycle & m.wheelMask
	m.wheel[slot] = m.wheel[slot][:0]
	if m.mon != nil {
		m.mon.cycleEnd(m)
	}
}

// runEvents drains this cycle's event list in schedule order. Handlers
// may append more events for the same cycle (e.g. a kill scheduling an
// operand wake); the loop picks those up. Events whose uop was recycled
// since scheduling are stale and skipped.
func (m *Machine) runEvents() {
	slot := m.cycle & m.wheelMask
	list := m.wheel[slot]
	for i := 0; i < len(list); i++ {
		ev := list[i]
		if ev.u.life != ev.life {
			list = m.wheel[slot]
			continue
		}
		switch ev.kind {
		case evKill:
			// Kills run before anything else this cycle; they were
			// scheduled first (detection precedes dependent completion
			// by construction).
			m.handleKill(ev)
		case evExec:
			m.handleExec(ev)
		case evBroadcast:
			m.handleBroadcast(ev)
		case evComplete:
			m.handleComplete(ev)
		case evOpWake:
			m.handleOpWake(ev)
		case evReinsertStart:
			m.handleReinsertStart(ev)
		case evSerialStep:
			m.handleSerialStep(ev)
		}
		list = m.wheel[slot]
	}
}

func (m *Machine) schedule(cycle int64, ev event) {
	if cycle <= m.cycle {
		cycle = m.cycle + 1
	}
	if cycle-m.cycle >= int64(len(m.wheel)) {
		panic(fmt.Sprintf("core: event %d cycles ahead overflows the %d-cycle event wheel",
			cycle-m.cycle, len(m.wheel)))
	}
	ev.life = ev.u.life
	slot := cycle & m.wheelMask
	m.wheel[slot] = append(m.wheel[slot], ev)
}

// scheduleNow appends an event to the current cycle's list (used by
// handlers that fan out work within the cycle).
func (m *Machine) scheduleNow(ev event) {
	ev.life = ev.u.life
	slot := m.cycle & m.wheelMask
	m.wheel[slot] = append(m.wheel[slot], ev)
}

// allocUop takes a recycled uop from the pool. The window admits at
// most ROBSize live uops, so the pool cannot run dry.
func (m *Machine) allocUop() *uop {
	n := len(m.free)
	if n == 0 {
		panic("core: uop pool empty")
	}
	u := m.free[n-1]
	m.free = m.free[:n-1]
	u.recycle()
	return u
}

// freeUop returns a retired or flushed uop to the pool. The life bump
// invalidates any events still in flight against it.
func (m *Machine) freeUop(u *uop) {
	u.life++
	m.free = append(m.free, u)
}

// lookup returns the in-window uop with the given sequence number, or
// nil when it has retired (or never dispatched).
func (m *Machine) lookup(seq int64) *uop {
	if seq < m.headSeq || seq >= m.headSeq+int64(m.robCount) {
		return nil
	}
	return m.rob[(m.robHead+int(seq-m.headSeq))%len(m.rob)]
}

// prod resolves operand i's producing uop, or nil when the operand had
// no in-window producer at rename or the producer has since left the
// window (retired — value architecturally available).
func (m *Machine) prod(u *uop, i int) *uop {
	seq := m.win.tag[i][u.slot]
	if seq < 0 {
		return nil
	}
	return m.lookup(seq)
}

// tailSeq returns the sequence number one past the youngest in-window
// instruction.
func (m *Machine) tailSeq() int64 { return m.headSeq + int64(m.robCount) }

// lsqAt returns the i-th oldest LSQ entry.
func (m *Machine) lsqAt(i int) *uop { return m.lsq[(m.lsqHead+i)%len(m.lsq)] }

func (m *Machine) lsqPush(u *uop) {
	if m.lsqLen >= len(m.lsq) {
		panic("core: LSQ ring overflow")
	}
	m.lsq[(m.lsqHead+m.lsqLen)%len(m.lsq)] = u
	m.lsqLen++
}

func (m *Machine) lsqPopFront() {
	m.lsq[m.lsqHead] = nil
	m.lsqHead = (m.lsqHead + 1) % len(m.lsq)
	m.lsqLen--
}

// fqAt returns the i-th oldest fetch-buffer entry.
func (m *Machine) fqAt(i int) *fetchEntry { return &m.fetchQ[(m.fqHead+i)%len(m.fetchQ)] }

func (m *Machine) fqPush(fe fetchEntry) {
	if m.fqLen >= len(m.fetchQ) {
		panic("core: fetch ring overflow")
	}
	m.fetchQ[(m.fqHead+m.fqLen)%len(m.fetchQ)] = fe
	m.fqLen++
}

func (m *Machine) fqPopFront() {
	m.fqHead = (m.fqHead + 1) % len(m.fetchQ)
	m.fqLen--
}

func (m *Machine) describeHead() string {
	if m.robCount == 0 {
		return "empty window"
	}
	u := m.rob[m.robHead]
	return fmt.Sprintf("seq=%d class=%v issued=%v completed=%v inIQ=%v ready=%v hold=%d",
		u.seq(), u.inst.Class, m.issuedState(u), m.completedState(u), m.inIQ(u),
		m.allReady(u), m.holdUntil(u))
}
