package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/smpred"
	"repro/internal/token"
	"repro/internal/vpred"
	"repro/internal/workload"
)

// Machine is one simulated processor instance. Build with New, run with
// Run. A Machine is single-use: Run may be called once.
type Machine struct {
	cfg  Config
	src  workload.Stream
	hier *cache.Hierarchy
	bp   *bpred.Predictor
	sp   *smpred.Predictor
	// alloc is the token pool (TkSel only, nil otherwise).
	alloc *token.Allocator
	// vp is the load value predictor (nil unless ValuePrediction).
	vp *vpred.Predictor

	cycle int64

	// rob is the reorder buffer, a ring of in-window uops. headSeq is
	// the sequence number at robHead; sequence numbers are dense, so
	// window lookup is arithmetic.
	rob      []*uop
	robHead  int
	robCount int
	headSeq  int64

	// iqCount tracks occupied issue-queue entries.
	iqCount int
	// rqCount tracks issued-unverified instructions under the
	// replay-queue model.
	rqCount int
	// lsq holds in-window loads and stores in program order.
	lsq []*uop

	// Front end: fetchQ holds fetched instructions waiting out the
	// front-end depth. nextInst is the read-ahead from the trace.
	fetchQ       []fetchEntry
	nextInst     isa.Inst
	haveNext     bool
	fetchStall   int64 // no fetch until this cycle
	blockedOnSeq int64 // mispredicted branch gating fetch, -1 if none
	lastLine     uint64
	haveLastLine bool

	// events is the cycle-indexed event queue.
	events map[int64][]event

	// Re-insert replay state: reinsertPending counts flagged
	// instructions awaiting program-order re-insertion.
	reinsertActive  bool
	reinsertPending int

	// serialChains collects every wavefront under SerialVerify; the
	// depth histogram is folded at the end of Run.
	serialChains []*serialChain

	// renameVec is the rename-table dependence-vector model for TkSel:
	// the vector stored for each value-producing instruction, kept for
	// recently retired producers too (pruned as the window advances).
	renameVec map[int64]token.Vector

	stats Stats
	// meter feeds Figure 9 (predictor coverage); recorded on each
	// load's first execution.
	meter smpred.CoverageMeter
	// observer receives pipeline lifecycle events (tooling only).
	observer func(PipeEvent)

	ran bool
}

type fetchEntry struct {
	inst isa.Inst
	// readyAt is when the instruction becomes eligible for dispatch.
	readyAt int64
}

type evKind uint8

const (
	// evExec: the uop reaches the execute stage.
	evExec evKind = iota
	// evBroadcast: the uop broadcasts its result tag (wakeup).
	evBroadcast
	// evComplete: the uop reaches completion with valid data.
	evComplete
	// evKill: a load scheduling miss's kill signal reaches the
	// scheduler.
	evKill
	// evOpWake: targeted revalidation of one operand (completion bus /
	// completion-group effects).
	evOpWake
	// evReinsertStart: begin re-insert replay for the payload load.
	evReinsertStart
	// evSerialStep: one level of serial verification propagation.
	evSerialStep
)

type event struct {
	kind evKind
	u    *uop
	gen  int
	// op is the operand index for evOpWake.
	op int
	// depth is the propagation level for evSerialStep.
	depth int
	// chain tracks an in-progress serial propagation.
	chain *serialChain
}

// serialChain tracks one invalid speculative wavefront under serial
// verification, across the dependence levels it reaches — including
// continuations through chained misses (a replayed load whose tainted
// address misses again extends its parent wavefront, which is how the
// paper's 800-level propagations arise).
type serialChain struct {
	maxDepth int
}

// New builds a machine over the given workload stream. The stream must
// produce valid instructions (see isa.Inst.Validate); the workload
// generator guarantees this.
func New(cfg Config, src workload.Stream) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:          cfg,
		src:          src,
		hier:         cache.NewHierarchy(cfg.Hierarchy),
		bp:           bpred.New(cfg.Bpred),
		sp:           smpred.New(cfg.SMPred),
		rob:          make([]*uop, cfg.ROBSize),
		events:       make(map[int64][]event),
		renameVec:    make(map[int64]token.Vector),
		blockedOnSeq: -1,
	}
	if cfg.Scheme == TkSel {
		m.alloc = token.NewAllocator(cfg.Tokens)
	}
	if cfg.ValuePrediction {
		m.vp = vpred.New(cfg.VPred)
	}
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns the accumulated statistics; valid after Run.
func (m *Machine) Stats() *Stats { return &m.stats }

// Meter returns the scheduling-miss predictor coverage meter (Figure 9
// data); valid after Run.
func (m *Machine) Meter() *smpred.CoverageMeter { return &m.meter }

// ValuePredictor exposes the load value predictor (nil unless value
// prediction is enabled).
func (m *Machine) ValuePredictor() *vpred.Predictor { return m.vp }

// deadlockWindow is how many cycles without a retirement trigger a
// diagnostic panic; real stalls (memory misses, re-inserts) are two
// orders of magnitude shorter.
const deadlockWindow = 200_000

// Run simulates Warmup instructions unmeasured, then MaxInsts measured
// instructions, and returns the statistics.
func (m *Machine) Run() (*Stats, error) {
	if m.ran {
		return nil, fmt.Errorf("core: machine already ran")
	}
	m.ran = true
	lastRetire := int64(0)
	lastCount := int64(0)
	target := m.cfg.Warmup + m.cfg.MaxInsts
	var base Stats
	warm := m.cfg.Warmup == 0
	for m.stats.Retired < target {
		m.step()
		if !warm && m.stats.Retired >= m.cfg.Warmup {
			warm = true
			base = m.stats
			base.Cycles = m.cycle
		}
		if m.stats.Retired != lastCount {
			lastCount = m.stats.Retired
			lastRetire = m.cycle
		} else if m.cycle-lastRetire > deadlockWindow {
			return nil, fmt.Errorf("core: no retirement for %d cycles at cycle %d (scheme %v, head %s)",
				deadlockWindow, m.cycle, m.cfg.Scheme, m.describeHead())
		}
	}
	m.stats.Cycles = m.cycle
	if m.cfg.Warmup > 0 {
		m.stats.subtract(&base)
	}
	for _, ch := range m.serialChains {
		m.stats.SerialDepth.Add(ch.maxDepth)
	}
	return &m.stats, nil
}

// step advances one cycle. Phase order matters: kills must apply before
// completions so a dependent detected mis-scheduled never completes in
// the same cycle, and retirement sees the cycle's final state.
func (m *Machine) step() {
	m.cycle++
	m.runEvents()
	m.retire()
	m.reinsertStep()
	m.selectAndIssue()
	m.dispatch()
	m.fetch()
	delete(m.events, m.cycle)
}

// runEvents drains this cycle's event list in schedule order. Handlers
// may append more events for the same cycle (e.g. a kill scheduling an
// operand wake); the loop picks those up.
func (m *Machine) runEvents() {
	list := m.events[m.cycle]
	for i := 0; i < len(list); i++ {
		ev := list[i]
		switch ev.kind {
		case evKill:
			// Kills run before anything else this cycle; they were
			// scheduled first (detection precedes dependent completion
			// by construction).
			m.handleKill(ev)
		case evExec:
			m.handleExec(ev)
		case evBroadcast:
			m.handleBroadcast(ev)
		case evComplete:
			m.handleComplete(ev)
		case evOpWake:
			m.handleOpWake(ev)
		case evReinsertStart:
			m.handleReinsertStart(ev)
		case evSerialStep:
			m.handleSerialStep(ev)
		}
		list = m.events[m.cycle]
	}
}

func (m *Machine) schedule(cycle int64, ev event) {
	if cycle <= m.cycle {
		cycle = m.cycle + 1
	}
	m.events[cycle] = append(m.events[cycle], ev)
}

// scheduleNow appends an event to the current cycle's list (used by
// handlers that fan out work within the cycle).
func (m *Machine) scheduleNow(ev event) {
	m.events[m.cycle] = append(m.events[m.cycle], ev)
}

// lookup returns the in-window uop with the given sequence number, or
// nil when it has retired (or never dispatched).
func (m *Machine) lookup(seq int64) *uop {
	if seq < m.headSeq || seq >= m.headSeq+int64(m.robCount) {
		return nil
	}
	return m.rob[(m.robHead+int(seq-m.headSeq))%len(m.rob)]
}

// tailSeq returns the sequence number one past the youngest in-window
// instruction.
func (m *Machine) tailSeq() int64 { return m.headSeq + int64(m.robCount) }

func (m *Machine) describeHead() string {
	if m.robCount == 0 {
		return "empty window"
	}
	u := m.rob[m.robHead]
	return fmt.Sprintf("seq=%d class=%v issued=%v completed=%v inIQ=%v ready=%v hold=%d",
		u.seq(), u.inst.Class, u.issued, u.completed, u.inIQ, u.allReady(), u.holdUntil)
}
