package core

import (
	"testing"

	"repro/internal/isa"
)

// Value prediction (§3.5's motivating data-speculation technique)
// collapses load-use dependences; these tests pin the speedup, the
// misprediction recovery, and the scheme restrictions.

// valueChainPattern: a hot (always-hitting) load whose value is highly
// repetitive, followed by a chain of dependents — the best case for
// value prediction.
func valueChainPattern(repeat bool, chain int) func(int64) isa.Inst {
	period := int64(chain + 1)
	return func(seq int64) isa.Inst {
		pos := seq % period
		if pos == 0 {
			return isa.Inst{PC: 0x400000, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x1000_0000 + uint64(seq%8)*64, ValueRepeat: repeat}
		}
		return isa.Inst{PC: 0x400004 + uint64(pos)*4, Class: isa.IntALU,
			Src1: seq - 1, Src2: -1}
	}
}

func runVP(t *testing.T, scheme Scheme, vp bool, pat func(int64) isa.Inst, insts int64) *Stats {
	t.Helper()
	cfg := Config4Wide()
	cfg.Scheme = scheme
	cfg.ValuePrediction = vp
	cfg.MaxInsts = insts
	m, err := New(cfg, &synthStream{next: pat})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatalf("vp=%v: %v", vp, err)
	}
	return st
}

func TestVPConfigValidation(t *testing.T) {
	cfg := Config4Wide()
	cfg.ValuePrediction = true
	for _, s := range []Scheme{PosSel, NonSel, DSel, Conservative, SerialVerify} {
		cfg.Scheme = s
		if err := cfg.Validate(); err == nil {
			t.Errorf("%v must reject value prediction (timing-based dependence tracking)", s)
		}
	}
	for _, s := range []Scheme{IDSel, TkSel, ReInsert, Refetch} {
		cfg.Scheme = s
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v should support value prediction: %v", s, err)
		}
	}
	cfg.Scheme = IDSel
	cfg.ReplayQueue = true
	if err := cfg.Validate(); err == nil {
		t.Error("value prediction + replay queue must be rejected")
	}
}

// A perfectly repetitive load value feeding a serial chain: value
// prediction must collapse the load-use latency and speed the chain up.
func TestVPCollapsesDependence(t *testing.T) {
	pat := valueChainPattern(true, 4)
	off := runVP(t, TkSel, false, pat, 8000)
	on := runVP(t, TkSel, true, valueChainPattern(true, 4), 8000)
	if on.ValuePredictions == 0 {
		t.Fatal("no value predictions consumed")
	}
	if on.ValueMispredicts != 0 {
		t.Fatalf("%d mispredicts on a perfectly repetitive value", on.ValueMispredicts)
	}
	if on.IPC() <= off.IPC()*1.05 {
		t.Errorf("value prediction IPC %.3f should clearly beat baseline %.3f", on.IPC(), off.IPC())
	}
}

// A never-repeating value must train the predictor down: after warmup,
// predictions stop (reset-on-miss confidence) and mispredictions stay
// bounded.
func TestVPBacksOffOnUnpredictableValues(t *testing.T) {
	st := runVP(t, TkSel, true, valueChainPattern(false, 4), 8000)
	if st.ValueMispredicts > 10 {
		t.Errorf("%d value mispredicts; confidence should shut prediction off", st.ValueMispredicts)
	}
}

// Misprediction recovery: values that usually repeat but sometimes
// don't cause valueKills that must squash completed dependents and
// still retire correct state.
func TestVPMispredictRecovery(t *testing.T) {
	n := 0
	pat := func(seq int64) isa.Inst {
		pos := seq % 5
		if pos == 0 {
			n++
			return isa.Inst{PC: 0x400000, Class: isa.Load, Src1: -1, Src2: -1,
				Addr: 0x1000_0000 + uint64(seq%8)*64, ValueRepeat: n%6 != 0}
		}
		return isa.Inst{PC: 0x400004 + uint64(pos)*4, Class: isa.IntALU,
			Src1: seq - 1, Src2: -1}
	}
	st := runVP(t, TkSel, true, pat, 10_000)
	if st.ValueMispredicts == 0 {
		t.Fatal("pattern produced no mispredictions")
	}
	if st.ValueKilledInsts == 0 {
		t.Fatal("mispredictions squashed no dependents")
	}
	if st.Retired < 10_000 {
		t.Fatalf("retired %d", st.Retired)
	}
}

// The §3.5 punchline: value prediction breaks pointer-chase
// serialization. Each missing load's *address* depends on the previous
// load's value, so without prediction the memory latencies serialize;
// with a (repetitive) predicted value the misses overlap.
func TestVPBreaksPointerChase(t *testing.T) {
	chase := func() func(int64) isa.Inst {
		return func(seq int64) isa.Inst {
			pos := seq % 4
			if pos == 0 {
				var src int64 = -1
				if seq > 0 {
					src = seq - 1 // chains back to the previous load's value
				}
				return isa.Inst{PC: 0x400000, Class: isa.Load, Src1: src, Src2: -1,
					Addr: 0x4000_0000 + uint64(seq)*64, ValueRepeat: true}
			}
			return isa.Inst{PC: 0x400004 + uint64(pos)*4, Class: isa.IntALU,
				Src1: seq - 1, Src2: -1}
		}
	}
	off := runVP(t, TkSel, false, chase(), 3000)
	on := runVP(t, TkSel, true, chase(), 3000)
	if on.IPC() <= off.IPC()*1.5 {
		t.Errorf("value prediction over a pointer chase: IPC %.3f vs %.3f; expected >1.5x",
			on.IPC(), off.IPC())
	}
}

// Value prediction must also work under plain re-insert replay (the
// other rename-order scheme) and under IDSel.
func TestVPOtherSchemes(t *testing.T) {
	for _, s := range []Scheme{IDSel, ReInsert} {
		st := runVP(t, s, true, valueChainPattern(true, 3), 6000)
		if st.ValuePredictions == 0 {
			t.Errorf("%v: no predictions", s)
		}
		if st.Retired < 6000 {
			t.Errorf("%v retired %d", s, st.Retired)
		}
	}
}
