package core

func init() {
	registerPolicy(PosSel, "PosSel", func() replayPolicy {
		return &selectivePolicy{s: PosSel}
	})
}

// selectivePolicy implements position-based (§3.4.3) and ID-based
// (§3.4.1) selective replay. Replay behaviour is identical — a
// scheduling miss invalidates exactly the transitive dependents of the
// mis-scheduled load — the schemes differ only in the hardware name
// space (position matrices vs. full load-ID vectors), which the
// analytic package costs out and which decides whether the scheme
// survives value speculation's arbitrary verification boundary. PosSel
// registers here; the ID-based variant lives in policy_idsel.go.
type selectivePolicy struct {
	noopPolicy
	s Scheme
	// fullNameSpace marks the ID-based variant: dependence names do
	// not rely on issue timing, so value prediction is recoverable.
	fullNameSpace bool
}

func (p *selectivePolicy) scheme() Scheme                { return p.s }
func (p *selectivePolicy) supportsValuePrediction() bool { return p.fullNameSpace }
func (p *selectivePolicy) supportsReplayQueue() bool     { return true }

func (p *selectivePolicy) onKill(m *Machine, u *uop) {
	m.replayLoad(u)
	if u.valuePredicted {
		// Dependents ride the predicted value; only the load's own
		// verification is delayed (recovery happens at value check).
		return
	}
	m.selectiveKill(u)
}
