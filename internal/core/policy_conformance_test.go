package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// TestPolicyRegistryComplete checks the scheme registry end to end:
// every enum value has a policy, names round-trip through ParseScheme
// (case-insensitively), and the error for an unknown name lists every
// valid one.
func TestPolicyRegistryComplete(t *testing.T) {
	names := SchemeNames()
	if len(names) != int(numSchemes) {
		t.Fatalf("SchemeNames() returned %d entries, want %d", len(names), numSchemes)
	}
	for s := Scheme(0); s < numSchemes; s++ {
		pol := newPolicy(s)
		if pol.scheme() != s {
			t.Errorf("newPolicy(%v).scheme() = %v", s, pol.scheme())
		}
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
		got, err = ParseScheme(strings.ToUpper(s.String()))
		if err != nil || got != s {
			t.Errorf("ParseScheme upper(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme accepted an unknown name")
	} else {
		for _, n := range names {
			if !strings.Contains(err.Error(), n) {
				t.Errorf("unknown-scheme error %q omits valid name %q", err, n)
			}
		}
	}
}

// conformanceConfigs returns every (scheme, bpred, prefetcher) cell
// plus the replay-queue and value-prediction variants each scheme's
// policy claims to support (on the default frontend). A new scheme or
// frontend lands in the matrix with zero bespoke test code: the
// registry and the kind lists drive the cross product.
func conformanceConfigs() []Config {
	frontends := []struct {
		bp bpred.Config
		pf prefetch.Config
	}{
		{bpred.Default(), prefetch.Config{}},
		{bpred.DefaultTAGE(), prefetch.Config{}},
		{bpred.Default(), prefetch.DefaultStride()},
		{bpred.DefaultTAGE(), prefetch.DefaultStride()},
	}
	var out []Config
	for s := Scheme(0); s < numSchemes; s++ {
		cfg := Config4Wide()
		cfg.Scheme = s
		cfg.MaxInsts = 8_000
		for _, fe := range frontends {
			c := cfg
			c.Bpred = fe.bp
			c.Prefetch = fe.pf
			out = append(out, c)
		}
		if policyRegistry[s].rq {
			rq := cfg
			rq.ReplayQueue = true
			rq.IQSize = 24
			out = append(out, rq)
		}
		if policyRegistry[s].vp {
			vp := cfg
			vp.ValuePrediction = true
			out = append(out, vp)
		}
	}
	return out
}

func conformanceLabel(cfg Config) string {
	l := cfg.Scheme.String()
	if cfg.Bpred.Kind != bpred.KindCombined {
		l += "+" + cfg.Bpred.Kind.String()
	}
	if cfg.Prefetch.Kind != prefetch.KindOff {
		l += "+" + cfg.Prefetch.Kind.String()
	}
	if cfg.ReplayQueue {
		l += "+rq"
	}
	if cfg.ValuePrediction {
		l += "+vp"
	}
	return l
}

// TestSchemeConformance steps a machine through a real workload under
// every scheme (and each scheme's replay-queue/value-prediction
// variants), asserting the structural invariants every policy must
// preserve each cycle:
//
//   - uop conservation: in-window population plus the free pool always
//     equals the ROB size (no leaks, no double-frees);
//   - the issue-queue count never exceeds the window population;
//   - replay-slot occupancy (replay-queue entries) never exceeds the
//     window population, and is zero outside the Figure 4b model;
//   - token conservation (TkSel): the allocator's in-use count equals
//     the number of in-window instructions holding a token.
func TestSchemeConformance(t *testing.T) {
	for _, cfg := range conformanceConfigs() {
		cfg := cfg
		t.Run(conformanceLabel(cfg), func(t *testing.T) {
			t.Parallel()
			p, err := workload.ByName("gcc")
			if err != nil {
				t.Fatal(err)
			}
			gen, err := workload.NewGenerator(p, 7)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(cfg, gen)
			if err != nil {
				t.Fatal(err)
			}
			m.ran = true // stepping manually
			for m.stats.Retired < cfg.MaxInsts {
				m.step()
				if m.robCount+len(m.free) != cfg.ROBSize {
					t.Fatalf("cycle %d: %d in window + %d free != %d ROB entries (uop leak)",
						m.cycle, m.robCount, len(m.free), cfg.ROBSize)
				}
				if m.iqCount < 0 || m.iqCount > m.robCount {
					t.Fatalf("cycle %d: IQ count %d outside [0,%d]", m.cycle, m.iqCount, m.robCount)
				}
				if m.rqCount < 0 || m.rqCount > m.robCount {
					t.Fatalf("cycle %d: replay-queue count %d outside [0,%d]",
						m.cycle, m.rqCount, m.robCount)
				}
				if !cfg.ReplayQueue && m.rqCount != 0 {
					t.Fatalf("cycle %d: replay-queue count %d without the replay-queue model",
						m.cycle, m.rqCount)
				}
				if tk, ok := m.pol.(*tkselPolicy); ok {
					held := 0
					for i := 0; i < m.robCount; i++ {
						if m.rob[(m.robHead+i)%len(m.rob)].tokenID >= 0 {
							held++
						}
					}
					if tk.tokensInUse() != held {
						t.Fatalf("cycle %d: allocator reports %d tokens in use, window holds %d",
							m.cycle, tk.tokensInUse(), held)
					}
				}
				if m.cycle > 4_000_000 {
					t.Fatal("conformance run wedged")
				}
			}
		})
	}
}

// TestMachineResetBitIdentical checks the Reset contract the experiment
// runner's machine pool depends on: a reset machine produces exactly
// the statistics of a fresh one, including when the reset crosses
// schemes (so policy state from a previous scheme cannot bleed over).
func TestMachineResetBitIdentical(t *testing.T) {
	fresh := func(cfg Config) Stats {
		t.Helper()
		p, _ := workload.ByName("vpr")
		gen, err := workload.NewGenerator(p, 11)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Clone()
	}
	for s := Scheme(0); s < numSchemes; s++ {
		cfg := Config4Wide()
		cfg.Scheme = s
		cfg.MaxInsts = 6_000
		want := fresh(cfg)

		// Same machine, reset through every other scheme first, then
		// back to s: any policy-private state surviving the chain wrong
		// would shift counters.
		p, _ := workload.ByName("vpr")
		m := &Machine{}
		for o := Scheme(0); o < numSchemes; o++ {
			ocfg := Config4Wide()
			ocfg.Scheme = o
			ocfg.MaxInsts = 2_000
			if o%2 == 1 {
				// Alternate frontends through the chain so TAGE tables
				// and prefetcher state from a previous run cannot bleed
				// into the final measured run either.
				ocfg.Bpred = bpred.DefaultTAGE()
				ocfg.Prefetch = prefetch.DefaultStride()
			}
			gen, _ := workload.NewGenerator(p, 3)
			if err := m.Reset(ocfg, gen); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		}
		gen, _ := workload.NewGenerator(p, 11)
		if err := m.Reset(cfg, gen); err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Clone(); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: reset machine diverges from fresh machine\nfresh: %+v\nreset: %+v",
				s, want, got)
		}
	}
}

// TestTokenMissPartition pins the normalized token accounting: under
// TkSel every load scheduling miss lands in exactly one of the three
// policy counters (held a token / token stolen before the kill / never
// got one), and the policy counters mirror the allocator's own
// bookkeeping. Under every other scheme the namespace stays zero.
func TestTokenMissPartition(t *testing.T) {
	run := func(s Scheme) (*Stats, *Machine) {
		t.Helper()
		p, _ := workload.ByName("mcf")
		gen, err := workload.NewGenerator(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config4Wide()
		cfg.Scheme = s
		cfg.MaxInsts = 20_000
		cfg.Tokens = 4 // small pool so steals and refusals actually occur
		m, err := New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, m
	}

	st, m := run(TkSel)
	ps := &st.Policy
	if got := ps.MissesWithToken + ps.MissTokenStolen + ps.MissTokenRefused; got != st.LoadSchedMisses {
		t.Errorf("token partition %d+%d+%d = %d, want LoadSchedMisses %d",
			ps.MissesWithToken, ps.MissTokenStolen, ps.MissTokenRefused, got, st.LoadSchedMisses)
	}
	if st.LoadSchedMisses == 0 || ps.MissesWithToken == 0 {
		t.Error("workload too quiet to exercise the token partition")
	}
	allocs, steals, refused := m.pol.(*tkselPolicy).alloc.Stats()
	if ps.TokensGranted != allocs || ps.TokenSteals != steals || ps.TokenDenials != refused {
		t.Errorf("policy counters grant=%d steal=%d deny=%d diverge from allocator %d/%d/%d",
			ps.TokensGranted, ps.TokenSteals, ps.TokenDenials, allocs, steals, refused)
	}
	if ps.TokenSteals == 0 || ps.TokenDenials == 0 {
		t.Error("4-token pool on mcf should see steals and refusals")
	}

	for s := Scheme(0); s < numSchemes; s++ {
		if s == TkSel {
			continue
		}
		st, _ := run(s)
		ps := st.Policy
		if ps.MissesWithToken != 0 || ps.MissTokenStolen != 0 || ps.MissTokenRefused != 0 ||
			ps.TokensGranted != 0 || ps.TokenSteals != 0 || ps.TokenDenials != 0 {
			t.Errorf("%v: token counters nonzero: %+v", s, ps)
		}
	}
}
