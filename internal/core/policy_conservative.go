package core

// Conservative schedules high-confidence predicted-miss loads
// pessimistically (§5.4, after Yoaz et al.), so their dependents never
// wake speculatively and only wrong hit-predictions pay the re-insert.
// The shared reinsertPolicy implementation lives in policy_reinsert.go;
// the conservative flag enables the pessimistic classification at
// rename.
func init() {
	registerPolicy(Conservative, "Conservative", func() replayPolicy {
		return &reinsertPolicy{s: Conservative, conservative: true}
	})
}
