package core

func init() {
	registerPolicy(Refetch, "Refetch", func() replayPolicy {
		return &refetchPolicy{}
	})
}

// refetchPolicy treats a scheduling miss like a branch misprediction
// (§3.2): flush every younger instruction from the machine and refetch
// it through the front end. The recovery boundary is program order, so
// value prediction is recoverable.
type refetchPolicy struct {
	noopPolicy
}

func (p *refetchPolicy) scheme() Scheme                { return Refetch }
func (p *refetchPolicy) supportsValuePrediction() bool { return true }

func (p *refetchPolicy) onKill(m *Machine, u *uop) {
	m.replayLoad(u)
	if u.valuePredicted {
		return
	}
	m.refetch(u)
}
