package core

import (
	"context"
	"testing"

	"repro/internal/bpred"
	"repro/internal/prefetch"
	"repro/internal/workload"
)

// steadyMachine builds a machine on a realistic workload and steps it
// past the start-up transient, so pools, wheel slots, rename ring and
// the cache fill maps are all at their steady-state high-water marks.
func steadyMachine(tb testing.TB, bench string, warmCycles int) *Machine {
	return steadyMachineAt(tb, bench, warmCycles, CheckOff)
}

// steadyMachineAt is steadyMachine with an invariant-monitor level, so
// the monitored hot path is held to the same allocation discipline.
func steadyMachineAt(tb testing.TB, bench string, warmCycles int, level CheckLevel) *Machine {
	tb.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		tb.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := Config8Wide()
	cfg.Check = level
	cfg.MaxInsts = 1 << 60 // stepped manually; never reached
	m, err := New(cfg, gen)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < warmCycles; i++ {
		m.step()
	}
	return m
}

// BenchmarkMachineSteadyState measures the per-cycle cost of the warm
// simulator loop. The headline number is allocs/op: the hot path —
// event wheel, uop pool, LSQ/fetch rings, rename ring, epoch-rotated
// fill maps — must run allocation-free once warm.
func BenchmarkMachineSteadyState(b *testing.B) {
	m := steadyMachine(b, "gcc", 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step()
	}
	b.StopTimer()
	if m.stats.Retired == 0 {
		b.Fatal("machine made no progress")
	}
	b.ReportMetric(float64(m.stats.Retired)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkMachineSteadyStateCancellable measures the same warm loop
// through the RunContext body: step plus the periodic cancellation
// check against a live (cancellable) context. Guarded by benchguard,
// it pins the batch engine's cancellation hook to the zero-alloc
// budget and to within noise of the uncancellable loop.
func BenchmarkMachineSteadyStateCancellable(b *testing.B) {
	m := steadyMachine(b, "gcc", 50_000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := ctx.Done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step()
		if m.canceled(done) {
			b.Fatal("context canceled mid-benchmark")
		}
	}
	b.StopTimer()
	if m.stats.Retired == 0 {
		b.Fatal("machine made no progress")
	}
	b.ReportMetric(float64(m.stats.Retired)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkMachineSteadyStateFrontend measures the warm loop with the
// full frontier frontend live: the LoadDelay scheme, the TAGE
// predictor and the stride prefetcher. Guarded by the zero-alloc CI
// gate, it pins the pluggable frontends to the same allocation-free
// discipline as the paper's default machine.
func BenchmarkMachineSteadyStateFrontend(b *testing.B) {
	prof, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config8Wide()
	cfg.Scheme = LoadDelay
	cfg.Bpred = bpred.DefaultTAGE()
	cfg.Prefetch = prefetch.DefaultStride()
	cfg.MaxInsts = 1 << 60
	m, err := New(cfg, gen)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		m.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step()
	}
	b.StopTimer()
	if m.stats.Retired == 0 {
		b.Fatal("machine made no progress")
	}
	b.ReportMetric(float64(m.stats.Retired)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkMachineSteadyStateCheckCheap and ...CheckFull measure the
// warm loop with the invariant monitors live. Guarded by benchguard,
// they pin both monitor levels to zero steady-state allocations (the
// monitors only allocate when recording a violation) and make the
// monitoring overhead a tracked number rather than folklore. The
// Check=off number is BenchmarkMachineSteadyState above, whose
// baseline entry proves disabled monitoring stays free.
func BenchmarkMachineSteadyStateCheckCheap(b *testing.B) {
	benchmarkChecked(b, CheckCheap)
}

func BenchmarkMachineSteadyStateCheckFull(b *testing.B) {
	benchmarkChecked(b, CheckFull)
}

func benchmarkChecked(b *testing.B, level CheckLevel) {
	m := steadyMachineAt(b, "gcc", 50_000, level)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.step()
	}
	b.StopTimer()
	if m.stats.Retired == 0 {
		b.Fatal("machine made no progress")
	}
	if len(m.Violations()) != 0 {
		b.Fatalf("monitors fired during the benchmark: %v", m.Violations())
	}
	b.ReportMetric(float64(m.stats.Retired)/b.Elapsed().Seconds(), "sim-insts/s")
}

// TestSteadyStateAllocBudget is the enforced form of the benchmark: a
// warm machine stepping a memory-heavy workload must average (almost)
// zero heap allocations per simulated cycle. The tolerance absorbs
// rare residual growth (a wheel slot or consumer list reaching a new
// high-water mark late), not a per-cycle leak.
func TestSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is slow under -short")
	}
	m := steadyMachine(t, "mcf", 60_000)
	const cyclesPerRun = 2000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < cyclesPerRun; i++ {
			m.step()
		}
	})
	perCycle := avg / cyclesPerRun
	if perCycle > 0.02 {
		t.Fatalf("steady-state hot path allocates %.4f allocs/cycle (%.0f per %d cycles); budget is 0.02",
			perCycle, avg, cyclesPerRun)
	}
}

// The monitored hot path is held to the same budget: full-level
// checking may cost cycles, never allocations.
func TestCheckedSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is slow under -short")
	}
	m := steadyMachineAt(t, "mcf", 60_000, CheckFull)
	const cyclesPerRun = 2000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < cyclesPerRun; i++ {
			m.step()
		}
	})
	if perCycle := avg / cyclesPerRun; perCycle > 0.02 {
		t.Fatalf("monitored hot path allocates %.4f allocs/cycle; budget is 0.02", perCycle)
	}
	if len(m.Violations()) != 0 {
		t.Fatalf("monitors fired: %v", m.Violations())
	}
}

// Every scheme must stay on the pooled hot path: no per-cycle
// allocations once warm. All ten run, not just the ones with
// auxiliary replay structures — the structure-of-arrays window is
// shared state, and a scheme-specific path that strays off it (a
// closure in a kill walk, a slice in a policy hook) is exactly what
// this sweep exists to catch. Each scheme also runs with the TAGE
// predictor and the stride prefetcher live, holding the pluggable
// frontends to the same discipline.
func TestSteadyStateAllocBudgetSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is slow under -short")
	}
	for _, sc := range Schemes() {
		for _, frontend := range []string{"", "+tage+stride"} {
			sc, frontend := sc, frontend
			t.Run(sc.String()+frontend, func(t *testing.T) {
				prof, err := workload.ByName("gcc")
				if err != nil {
					t.Fatal(err)
				}
				gen, err := workload.NewGenerator(prof, 1)
				if err != nil {
					t.Fatal(err)
				}
				cfg := Config4Wide()
				cfg.Scheme = sc
				cfg.MaxInsts = 1 << 60
				if frontend != "" {
					cfg.Bpred = bpred.DefaultTAGE()
					cfg.Prefetch = prefetch.DefaultStride()
				}
				m, err := New(cfg, gen)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 60_000; i++ {
					m.step()
				}
				const cyclesPerRun = 2000
				avg := testing.AllocsPerRun(5, func() {
					for i := 0; i < cyclesPerRun; i++ {
						m.step()
					}
				})
				if perCycle := avg / cyclesPerRun; perCycle > 0.02 {
					t.Fatalf("%v%s: %.4f allocs/cycle over budget", sc, frontend, perCycle)
				}
			})
		}
	}
}
