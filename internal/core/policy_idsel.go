package core

// IDSel is the full-name-space variant of selective replay (§3.4.1):
// the shared selectivePolicy implementation lives in policy_possel.go,
// and the fullNameSpace flag is what makes value prediction
// recoverable under this scheme.
func init() {
	registerPolicy(IDSel, "IDSel", func() replayPolicy {
		return &selectivePolicy{s: IDSel, fullNameSpace: true}
	})
}
